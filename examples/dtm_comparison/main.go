// DTM comparison: run a slice of the benchmark suite under every thermal
// management mechanism — the fixed baselines (toggle1, toggle2), the
// hand-built proportional controller M, the control-theoretic P/PI/PID
// policies, and the scaling backups — and print percent-of-baseline
// performance next to emergency residency (the Section 7 evaluation in
// miniature).
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/sim"
)

func main() {
	benchmarks := []string{"gcc", "mesa", "equake", "art"}
	policies := []string{"toggle1", "toggle2", "M", "P", "PI", "PID", "fscale"}
	const insts = 1_500_000

	for _, name := range benchmarks {
		prof, err := bench.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		base, err := sim.Run(sim.Config{Workload: prof, MaxInsts: insts})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (baseline IPC %.3f, %.1f%% emergency, category %s)\n",
			name, base.IPC, 100*base.EmergencyFrac(), bench.CategoryOf(name))
		for _, pol := range policies {
			cfg := sim.Config{Workload: prof, MaxInsts: insts}
			if err := bench.ApplyPolicy(&cfg, pol, 0); err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			perf := 100 * res.IPC / base.IPC
			if pol == "fscale" {
				// Scaling changes the clock, so compare wall-clock
				// throughput instead of IPC.
				perf = 100 * res.InstsPerSecond() / base.InstsPerSecond()
			}
			fmt.Printf("  %-8s %6.1f%% of baseline, emergency %5.2f%%, mean duty %.2f, stalls %d\n",
				pol, perf, 100*res.EmergencyFrac(), res.AvgDuty, res.StallCycles)
		}
		fmt.Println()
	}
}
