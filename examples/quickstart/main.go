// Quickstart: simulate one benchmark with and without control-theoretic
// DTM and print the headline comparison — the smallest end-to-end use of
// the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/sim"
)

func main() {
	prof, err := bench.ByName("gcc")
	if err != nil {
		log.Fatal(err)
	}
	const insts = 1_000_000

	// 1. Uncontrolled baseline: how hot does gcc run?
	base, err := sim.Run(sim.Config{Workload: prof, MaxInsts: insts})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:  IPC %.3f, %5.1f W avg, %.1f%% of cycles in thermal emergency\n",
		base.IPC, base.AvgChipPower, 100*base.EmergencyFrac())

	// 2. The same run under a tuned PI controller driving fetch toggling.
	cfg := sim.Config{Workload: prof, MaxInsts: insts}
	if err := bench.ApplyPolicy(&cfg, "PI", 0); err != nil {
		log.Fatal(err)
	}
	ctl, err := sim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PI-DTM:    IPC %.3f (%.1f%% of baseline), %.1f%% emergency, mean duty %.2f\n",
		ctl.IPC, 100*ctl.IPC/base.IPC, 100*ctl.EmergencyFrac(), ctl.AvgDuty)

	// 3. Where was the hot spot?
	fmt.Println("\nper-structure maxima (baseline):")
	for _, b := range base.Blocks {
		fmt.Printf("  %-8s max %.2f C\n", b.Name, b.MaxTemp)
	}
}
