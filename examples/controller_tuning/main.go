// Controller tuning walk-through: build the thermal plant of Section 3.2
// from the floorplan, tune P/PI/PD/PID controllers by phase-margin design,
// and compare their closed-loop step responses (settling time, overshoot,
// retained duty) — the analysis the paper alludes to with "controllers can
// be designed with guaranteed settling times".
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/control"
)

func main() {
	plant := bench.Plant()
	fmt.Printf("plant: K=%.1f K/duty, tau=%.0f us, delay=%.0f ns\n\n",
		plant.K, plant.Tau*1e6, plant.Delay*1e9)

	const (
		setpoint  = 111.1
		emergency = 111.3
		sink      = 100.0
		ts        = 667e-9
	)

	fmt.Printf("%-5s %-28s %-12s %-10s %-10s %s\n",
		"kind", "gains (Kp, Ki, Kd)", "phase margin", "settle", "overshoot", "mean duty")
	for _, kind := range []control.Kind{control.KindP, control.KindPI, control.KindPD, control.KindPID} {
		g, err := control.Tune(plant, control.Spec{Kind: kind})
		if err != nil {
			log.Fatalf("%v: %v", kind, err)
		}
		pm, _, err := control.OpenLoopPhaseMargin(plant, g)
		if err != nil {
			log.Fatalf("%v: %v", kind, err)
		}
		ctl := control.NewPID(g, setpoint, 0.2, ts)
		tr := control.SimulateLoop(plant, ctl, control.LoopConfig{
			Ambient:  sink,
			Duration: 5e-3,
			Levels:   8, // the paper's 8 discrete toggling settings
		})
		settle := tr.SettlingTime(setpoint, 0.15)
		fmt.Printf("%-5v Kp=%6.2f Ki=%9.0f Kd=%7.1e  %6.1f deg   %7.2f us  %6.3f C   %.3f\n",
			kind, g.Kp, g.Ki, g.Kd, pm*180/3.141592653589793,
			settle*1e6, tr.Overshoot(setpoint), tr.MeanDuty())
		if hot := tr.MaxTemp(); hot > emergency {
			fmt.Printf("      WARNING: %v exceeded the emergency threshold (%.3f C)\n", kind, hot)
		}
	}

	// Demonstrate the integral-windup hazard of Section 3.3: a long cool
	// period followed by a hot burst, with and without anti-windup.
	fmt.Println("\nintegral windup (PI, cool 2 ms then full demand):")
	demand := func(t float64) float64 {
		if t < 2e-3 {
			return 0.05
		}
		return 1.0
	}
	for _, disable := range []bool{false, true} {
		g := control.MustTune(plant, control.Spec{Kind: control.KindPI})
		ctl := control.NewPID(g, setpoint, 0.2, ts)
		ctl.DisableAntiWindup = disable
		tr := control.SimulateLoop(plant, ctl, control.LoopConfig{
			Ambient: sink, Duration: 6e-3, Demand: demand,
		})
		label := "with anti-windup"
		if disable {
			label = "without anti-windup"
		}
		fmt.Printf("  %-20s max temp %.3f C, overshoot %.3f C\n",
			label, tr.MaxTemp(), tr.Overshoot(setpoint))
	}
}
