// Hotspot analysis: reproduces the two modeling arguments of Sections 4
// and 6 —
//
//  1. localized heating is orders of magnitude faster than chip-wide
//     heating, so per-structure modeling is mandatory; and
//  2. boxcar power averaging (the prior art's temperature proxy) both
//     misses real emergencies and raises false triggers relative to the
//     thermal-RC model.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/sim"
	"repro/internal/thermal"
)

func main() {
	// Part 1: time-constant separation (pure model analysis).
	net := thermal.New(thermal.DefaultConfig())
	chip := thermal.NewChipModel(0.34, 60, 45)
	fmt.Println("thermal time constants:")
	for i := 0; i < net.NumBlocks(); i++ {
		fmt.Printf("  %-8s %8.0f us\n", net.Block(i).ID, net.TimeConstant(i)*1e6)
	}
	fmt.Printf("  %-8s %8.1f s  (%.0fx slower than the slowest block)\n\n",
		"chip", chip.TimeConstant(), chip.TimeConstant()/net.LongestTimeConstant())

	// A full-power step: how long until the hottest block crosses the
	// emergency threshold vs how far the chip-wide model has moved.
	power := make([]float64, net.NumBlocks())
	for i := range power {
		power[i] = net.Block(i).PeakPower
	}
	const emergency = 111.3
	cyclesPerStep := uint64(1000)
	var cycle uint64
	for !net.AnyAbove(emergency) && cycle < 10_000_000 {
		net.StepN(power, cyclesPerStep)
		chip.Step(55, float64(cyclesPerStep)/1.5e9)
		cycle += cyclesPerStep
	}
	idx, _ := net.Hottest()
	fmt.Printf("full-power step: block %v crossed %.1f C after %.0f us;\n",
		net.Block(idx).ID, emergency, float64(cycle)/1.5e9*1e6)
	fmt.Printf("the chip-wide node had warmed only %.4f C of its %.0f C rise\n\n",
		chip.T-45, 55*0.34)

	// Part 2: proxy-vs-model comparison on a hot and a bursty benchmark.
	for _, name := range []string{"gcc", "art"} {
		prof, err := bench.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Workload:     prof,
			MaxInsts:     2_000_000,
			ProxyWindows: []int{10_000, 500_000},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d true emergency cycles\n", name, res.EmergencyCycles)
		for _, p := range res.Proxies {
			fmt.Printf("  per-structure boxcar %6dK: missed %6.2f%% of emergencies, %6.2f%% false triggers\n",
				p.Window/1000, 100*p.PerStruct.MissedFrac(), 100*p.PerStruct.FalseFrac())
			fmt.Printf("  chip-wide     boxcar %6dK: missed %6.2f%%, %6.2f%% false triggers\n",
				p.Window/1000, 100*p.ChipWide.MissedFrac(), 100*p.ChipWide.FalseFrac())
		}
	}
}
