package dtm

// AdaptiveGain is an adjustable-gain integral controller for per-core DVFS
// regulation in the shape of Rao et al. (arXiv:1507.06357): a pure integral
// law on the frequency factor whose gain is scheduled on the magnitude of
// the temperature error — a small gain near the setpoint for smooth
// regulation, a large gain far from it for fast engagement and recovery.
//
// Unlike the paper's fetch-duty policies, Sample returns a frequency
// factor: the simulator applies it as DVFS (clock gating at factor f with
// dynamic power scaled by f^2, net f^3 power at f throughput). The
// integral state IS the actuator setting, so clamping the state to
// [FMin, 1] doubles as anti-windup.
type AdaptiveGain struct {
	// Setpoint is the target temperature for the core's hottest block.
	Setpoint float64
	// KiLow is the integral gain while |error| <= Knee (fine regulation).
	KiLow float64
	// KiHigh is the integral gain while |error| > Knee (fast slewing).
	KiHigh float64
	// Knee is the error magnitude in Celsius where the gain switches.
	Knee float64
	// FMin is the lowest frequency factor the controller will command.
	FMin float64

	f float64
}

// Default adjustable-gain parameters: the low gain moves the frequency
// ~2%/sample per degree of error near the setpoint; the high gain slews an
// order of magnitude faster once the error exceeds the knee, reaching FMin
// from full speed in ~4 samples under a 1 C-past-knee excursion.
const (
	defaultKiLow  = 0.02
	defaultKiHigh = 0.2
	defaultKnee   = 0.3
	defaultFMin   = 0.25
)

// NewAdaptiveGain returns the controller with default gains at the given
// setpoint.
func NewAdaptiveGain(setpoint float64) *AdaptiveGain {
	return &AdaptiveGain{
		Setpoint: setpoint,
		KiLow:    defaultKiLow,
		KiHigh:   defaultKiHigh,
		Knee:     defaultKnee,
		FMin:     defaultFMin,
		f:        1,
	}
}

// Name implements Policy.
func (a *AdaptiveGain) Name() string { return "agi" }

// Sample implements Policy over the core's sampled block temperatures,
// returning the frequency factor in [FMin, 1]. The error is computed from
// the hottest block, the paper's convention for every controller.
func (a *AdaptiveGain) Sample(temps []float64) float64 {
	e := a.Setpoint - hottest(temps)
	ki := a.KiLow
	if e > a.Knee || e < -a.Knee {
		ki = a.KiHigh
	}
	a.f += ki * e
	if a.f > 1 {
		a.f = 1
	}
	if a.f < a.FMin {
		a.f = a.FMin
	}
	return a.f
}

// Reset implements Policy.
func (a *AdaptiveGain) Reset() { a.f = 1 }

// FreqFactor returns the currently commanded frequency factor.
func (a *AdaptiveGain) FreqFactor() float64 { return a.f }
