package dtm

import "testing"

func TestHierarchyNameAndReset(t *testing.T) {
	h := NewHierarchy(NewToggle2(110.3, 2), NewFreqScaling(111.2, 0.5, 2), 111.2)
	if h.Name() != "toggle2>fscale" {
		t.Errorf("name = %q", h.Name())
	}
	h.SampleHierarchy(temps(112))
	if h.Escalations() != 1 {
		t.Errorf("escalations = %d", h.Escalations())
	}
	h.Reset()
	if h.Escalations() != 0 || h.Backup.Engaged() {
		t.Error("reset incomplete")
	}
}

func TestHierarchyEscalatesOnlyPastBackupTrigger(t *testing.T) {
	h := NewHierarchy(NewToggle2(110.3, 2), NewFreqScaling(110.3, 0.5, 2), 111.2)
	// The effective backup trigger is the escalation threshold when the
	// backup's own is lower, so the backup does not fire with the primary.
	d, f, stall := h.SampleHierarchy(temps(110.8))
	if d != 0.5 {
		t.Errorf("primary duty = %v, want engaged 0.5", d)
	}
	if f != 1 || stall != 0 {
		t.Errorf("backup engaged below escalation threshold (f=%v)", f)
	}
	d, f, stall = h.SampleHierarchy(temps(111.25))
	if f != 0.5 || stall == 0 {
		t.Errorf("backup did not escalate: f=%v stall=%d", f, stall)
	}
	if h.PowerFactor() != 0.5 {
		t.Errorf("power factor = %v", h.PowerFactor())
	}
	_ = d
}

// TestHierarchyDoesNotMutateBackup pins the constructor-side-effect fix:
// NewHierarchy used to overwrite the caller's Scaling.Trigger with the
// escalation threshold, silently reconfiguring a Scaling the caller might
// also deploy standalone. The escalation threshold now lives in the
// hierarchy and is applied at sample time.
func TestHierarchyDoesNotMutateBackup(t *testing.T) {
	backup := NewFreqScaling(110.3, 0.5, 2)
	h := NewHierarchy(NewToggle2(110.3, 2), backup, 111.2)
	if backup.Trigger != 110.3 {
		t.Fatalf("NewHierarchy mutated backup.Trigger to %v", backup.Trigger)
	}

	// Standalone use of the same Scaling still engages at its own trigger.
	if f, _ := backup.Sample(temps(110.8)); f != 0.5 {
		t.Errorf("standalone backup did not engage at its own trigger: f=%v", f)
	}
	backup.Reset()

	// Inside the hierarchy the effective trigger is the escalation
	// threshold; 110.8 is above the backup's own trigger but must not
	// escalate.
	if _, f, _ := h.SampleHierarchy(temps(110.8)); f != 1 {
		t.Errorf("hierarchy escalated below BackupTrigger: f=%v", f)
	}
	if _, f, _ := h.SampleHierarchy(temps(111.3)); f != 0.5 {
		t.Errorf("hierarchy did not escalate above BackupTrigger: f=%v", f)
	}
	if backup.Trigger != 110.3 {
		t.Fatalf("sampling mutated backup.Trigger to %v", backup.Trigger)
	}

	// A backup whose own trigger is higher than the escalation threshold
	// keeps it: the effective trigger is the max of the two.
	strict := NewFreqScaling(111.5, 0.5, 2)
	h2 := NewHierarchy(NewToggle2(110.3, 2), strict, 111.2)
	if _, f, _ := h2.SampleHierarchy(temps(111.3)); f != 1 {
		t.Errorf("escalated below the backup's own higher trigger: f=%v", f)
	}

	// Reset restores the hierarchy without disturbing the backup config.
	h.Reset()
	if backup.Trigger != 110.3 || backup.Engaged() || h.Escalations() != 0 {
		t.Error("Reset disturbed backup configuration or left state behind")
	}
}

func TestHierarchySampleReturnsPrimaryDuty(t *testing.T) {
	h := NewHierarchy(NewToggle1(110.3, 1), NewFreqScaling(111.2, 0.5, 1), 111.2)
	if d := h.Sample(temps(109)); d != 1 {
		t.Errorf("cool duty = %v", d)
	}
	if d := h.Sample(temps(111)); d != 0 {
		t.Errorf("hot duty = %v", d)
	}
}

func TestNewHierarchyPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil members accepted")
		}
	}()
	NewHierarchy(nil, nil, 111.2)
}
