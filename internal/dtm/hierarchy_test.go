package dtm

import "testing"

func TestHierarchyNameAndReset(t *testing.T) {
	h := NewHierarchy(NewToggle2(110.3, 2), NewFreqScaling(111.2, 0.5, 2), 111.2)
	if h.Name() != "toggle2>fscale" {
		t.Errorf("name = %q", h.Name())
	}
	h.SampleHierarchy(temps(112))
	if h.Escalations() != 1 {
		t.Errorf("escalations = %d", h.Escalations())
	}
	h.Reset()
	if h.Escalations() != 0 || h.Backup.Engaged() {
		t.Error("reset incomplete")
	}
}

func TestHierarchyEscalatesOnlyPastBackupTrigger(t *testing.T) {
	h := NewHierarchy(NewToggle2(110.3, 2), NewFreqScaling(110.3, 0.5, 2), 111.2)
	// The constructor must lift the backup trigger to the escalation
	// threshold so the backup does not fire with the primary.
	d, f, stall := h.SampleHierarchy(temps(110.8))
	if d != 0.5 {
		t.Errorf("primary duty = %v, want engaged 0.5", d)
	}
	if f != 1 || stall != 0 {
		t.Errorf("backup engaged below escalation threshold (f=%v)", f)
	}
	d, f, stall = h.SampleHierarchy(temps(111.25))
	if f != 0.5 || stall == 0 {
		t.Errorf("backup did not escalate: f=%v stall=%d", f, stall)
	}
	if h.PowerFactor() != 0.5 {
		t.Errorf("power factor = %v", h.PowerFactor())
	}
	_ = d
}

func TestHierarchySampleReturnsPrimaryDuty(t *testing.T) {
	h := NewHierarchy(NewToggle1(110.3, 1), NewFreqScaling(111.2, 0.5, 1), 111.2)
	if d := h.Sample(temps(109)); d != 1 {
		t.Errorf("cool duty = %v", d)
	}
	if d := h.Sample(temps(111)); d != 0 {
		t.Errorf("hot duty = %v", d)
	}
}

func TestNewHierarchyPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil members accepted")
		}
	}()
	NewHierarchy(nil, nil, 111.2)
}
