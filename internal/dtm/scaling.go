package dtm

import "fmt"

// Scaling models the paper's two global scaling mechanisms (Section 2.1):
// clock-frequency scaling and combined voltage/frequency scaling. Unlike
// the microarchitectural policies, scaling slows the whole processor and
// each engage/disengage costs a long resynchronization stall, so it must be
// held for a substantial policy delay.
//
// Power effect: dynamic power is proportional to f*V^2. Frequency-only
// scaling cuts power linearly with the factor; voltage/frequency scaling
// (V tracking f) cuts it cubically.
type Scaling struct {
	// Trigger is the engagement threshold in Celsius.
	Trigger float64
	// Factor is the scaled clock ratio in (0,1), e.g. 0.5 = half speed.
	Factor float64
	// VoltageToo scales supply voltage with frequency (cubic power law).
	VoltageToo bool
	// ResyncCycles is the pipeline stall on every engage/disengage while
	// the clock re-locks (the paper cites up to a millisecond; default
	// 15000 cycles = 10 us at 1.5 GHz).
	ResyncCycles uint64
	// PolicyDelay is the minimum number of samples scaling stays
	// engaged.
	PolicyDelay int

	engaged   bool
	remaining int
	switches  uint64
}

// DefaultResyncCycles is the default re-lock stall.
const DefaultResyncCycles = 15000

// NewFreqScaling returns frequency-only scaling.
func NewFreqScaling(trigger, factor float64, policyDelay int) *Scaling {
	return newScaling(trigger, factor, policyDelay, false)
}

// NewVoltageScaling returns combined voltage/frequency scaling.
func NewVoltageScaling(trigger, factor float64, policyDelay int) *Scaling {
	return newScaling(trigger, factor, policyDelay, true)
}

func newScaling(trigger, factor float64, policyDelay int, voltage bool) *Scaling {
	if factor <= 0 || factor >= 1 {
		panic(fmt.Sprintf("dtm: scaling factor %g outside (0,1)", factor))
	}
	return &Scaling{
		Trigger:      trigger,
		Factor:       factor,
		VoltageToo:   voltage,
		ResyncCycles: DefaultResyncCycles,
		PolicyDelay:  policyDelay,
	}
}

// Name returns the mechanism name.
func (s *Scaling) Name() string {
	if s.VoltageToo {
		return "vfscale"
	}
	return "fscale"
}

// Reset clears engagement state.
func (s *Scaling) Reset() { s.engaged, s.remaining, s.switches = false, 0, 0 }

// Engaged reports whether scaling is currently active.
func (s *Scaling) Engaged() bool { return s.engaged }

// Switches returns the number of engage/disengage transitions.
func (s *Scaling) Switches() uint64 { return s.switches }

// Sample updates engagement from the hottest block temperature and returns
// the current frequency factor (1 when disengaged) plus any resync stall
// incurred by a transition this sample.
func (s *Scaling) Sample(temps []float64) (freqFactor float64, stall uint64) {
	return s.SampleAt(temps, s.Trigger)
}

// SampleAt is Sample with an explicit engagement threshold, letting a
// composing mechanism (the hierarchy) raise the effective trigger for one
// deployment without mutating the Scaling it was handed.
func (s *Scaling) SampleAt(temps []float64, trigger float64) (freqFactor float64, stall uint64) {
	hot := hottest(temps) > trigger
	was := s.engaged
	if hot {
		s.engaged = true
		s.remaining = s.PolicyDelay
	} else if s.engaged {
		// Same policy-delay semantics as Toggle: the count of
		// below-trigger samples held engaged after the last trigger.
		if s.remaining > 0 {
			s.remaining--
		} else {
			s.engaged = false
		}
	}
	if s.engaged != was {
		s.switches++
		stall = s.ResyncCycles
	}
	if s.engaged {
		return s.Factor, stall
	}
	return 1, stall
}

// PowerFactor returns the multiplier applied to dynamic power while running
// at the current setting.
func (s *Scaling) PowerFactor() float64 {
	if !s.engaged {
		return 1
	}
	if s.VoltageToo {
		return s.Factor * s.Factor * s.Factor
	}
	return s.Factor
}
