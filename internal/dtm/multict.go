package dtm

import (
	"fmt"

	"repro/internal/control"
)

// MultiCT is the per-structure refinement of the paper's CT-DTM: instead
// of one controller watching the hottest sensor (tuned against the longest
// block time constant), each block gets its own PID tuned against that
// block's *own* thermal plant (its R*Papp gain and RC time constant), and
// the actuator takes the most conservative (minimum) duty any controller
// demands.
//
// The motivation comes straight out of the loop analysis (see
// control/analysis_test.go): a single controller designed for the 180 µs
// dcache has almost no phase margin left when the 49 µs branch predictor
// is the active hot spot. Per-block tuning restores the design margin for
// every structure.
type MultiCT struct {
	kind control.Kind
	ctls []*control.PID
}

// NewMultiCT builds one tuned controller per plant. All controllers share
// the setpoint, sensor range and sampling period.
func NewMultiCT(kind control.Kind, plants []control.Plant, setpoint, sensorRange, ts float64) (*MultiCT, error) {
	if len(plants) == 0 {
		return nil, fmt.Errorf("dtm: MultiCT needs at least one plant")
	}
	m := &MultiCT{kind: kind}
	for i, p := range plants {
		g, err := control.Tune(p, control.Spec{Kind: kind})
		if err != nil {
			return nil, fmt.Errorf("dtm: tuning block %d: %w", i, err)
		}
		m.ctls = append(m.ctls, control.NewPID(g, setpoint, sensorRange, ts))
	}
	return m, nil
}

// Name implements Policy.
func (m *MultiCT) Name() string { return "m" + m.kind.String() }

// Reset implements Policy.
func (m *MultiCT) Reset() {
	for _, c := range m.ctls {
		c.Reset()
	}
}

// Controllers exposes the per-block controllers (tests/ablation).
func (m *MultiCT) Controllers() []*control.PID { return m.ctls }

// Sample implements Policy: every block's controller sees its own sensor;
// the pipeline runs at the lowest duty any of them demands.
func (m *MultiCT) Sample(temps []float64) float64 {
	if len(temps) != len(m.ctls) {
		panic(fmt.Sprintf("dtm: MultiCT with %d controllers sampled %d sensors",
			len(m.ctls), len(temps)))
	}
	duty := 1.0
	for i, c := range m.ctls {
		if u := c.Update(temps[i]); u < duty {
			duty = u
		}
	}
	return duty
}
