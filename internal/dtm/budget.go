package dtm

import (
	"fmt"

	"repro/internal/control"
)

// PowerBudget is a hierarchical global-budget + local-PI controller in the
// ControlPULP shape (arXiv:2306.09501): a slow outer layer divides a
// chip-wide power budget across cores in proportion to each core's thermal
// headroom, and a fast inner layer runs one PI fetch-duty controller per
// core, with the local duty additionally capped so the core's recent power
// draw stays inside its allocation.
//
// It is not a Policy — its unit of control is the whole chip, so the
// multicore simulator calls SampleAll with per-core observations and gets
// all duties back in one allocation-free pass.
type PowerBudget struct {
	// Budget is the chip-wide power budget in watts.
	Budget float64
	// Period is the number of local samples per global reallocation
	// (the outer layer runs Period times slower than the inner PIs).
	Period int
	// Setpoint is the per-core temperature target used both by the local
	// PIs and by the headroom computation.
	Setpoint float64

	locals  []*control.PID
	alloc   []float64
	samples int
}

// minHeadroom floors a core's headroom share so a core at or above the
// setpoint still receives a sliver of budget rather than a hard zero — the
// local PI, not the allocator, is responsible for pulling it down.
const minHeadroom = 0.05

// NewPowerBudget builds the hierarchical controller for the given core
// count: budget watts chip-wide, per-core PIs from gains g at the given
// setpoint/sensorRange/ts, reallocating every period samples.
func NewPowerBudget(cores int, budget float64, g control.Gains, setpoint, sensorRange, ts float64, period int) *PowerBudget {
	if cores < 1 {
		panic("dtm: PowerBudget needs at least one core")
	}
	if budget <= 0 {
		panic(fmt.Sprintf("dtm: non-positive power budget %g", budget))
	}
	if period < 1 {
		period = 1
	}
	b := &PowerBudget{
		Budget:   budget,
		Period:   period,
		Setpoint: setpoint,
		locals:   make([]*control.PID, cores),
		alloc:    make([]float64, cores),
	}
	for i := range b.locals {
		b.locals[i] = control.NewPID(g, setpoint, sensorRange, ts)
	}
	b.Reset()
	return b
}

// Name identifies the controller in tables.
func (b *PowerBudget) Name() string { return "budget" }

// Cores returns the number of cores the controller manages.
func (b *PowerBudget) Cores() int { return len(b.locals) }

// Alloc returns core i's current power allocation in watts.
func (b *PowerBudget) Alloc(i int) float64 { return b.alloc[i] }

// Local exposes core i's inner PI (tests and ablations).
func (b *PowerBudget) Local(i int) *control.PID { return b.locals[i] }

// Reset restores even allocations and resets every local PI.
func (b *PowerBudget) Reset() {
	for i := range b.locals {
		b.locals[i].Reset()
		b.alloc[i] = b.Budget / float64(len(b.locals))
	}
	b.samples = 0
}

// SampleAll runs one sampling step: hot[i] is core i's hottest observed
// temperature, power[i] its average power since the last sample, and
// duties[i] receives the fetch duty to apply. Every Period calls the
// global layer first redistributes the budget by thermal headroom
// h_i = max(minHeadroom, Setpoint - hot_i); every call the local PIs run
// and their output is capped at alloc_i/power_i when the core overdraws.
// All three slices must have length Cores(); nothing is allocated.
func (b *PowerBudget) SampleAll(hot, power, duties []float64) {
	n := len(b.locals)
	if len(hot) != n || len(power) != n || len(duties) != n {
		panic(fmt.Sprintf("dtm: SampleAll slices %d/%d/%d for %d cores",
			len(hot), len(power), len(duties), n))
	}
	if b.samples%b.Period == 0 {
		total := 0.0
		for i := 0; i < n; i++ {
			h := b.Setpoint - hot[i]
			if h < minHeadroom {
				h = minHeadroom
			}
			total += h
		}
		for i := 0; i < n; i++ {
			h := b.Setpoint - hot[i]
			if h < minHeadroom {
				h = minHeadroom
			}
			b.alloc[i] = b.Budget * h / total
		}
	}
	b.samples++
	for i := 0; i < n; i++ {
		d := b.locals[i].Update(hot[i])
		if power[i] > b.alloc[i] {
			// The duty scales fetch, which scales power roughly
			// linearly, so alloc/power is the duty that would bring the
			// core back inside its allocation.
			if lim := b.alloc[i] / power[i]; d > lim {
				d = lim
			}
		}
		duties[i] = d
	}
}
