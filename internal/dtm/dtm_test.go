package dtm

import (
	"math"
	"testing"

	"repro/internal/control"
)

func temps(max float64) []float64 { return []float64{100, 101, max, 100.5} }

func TestNoDTMAlwaysFullSpeed(t *testing.T) {
	p := NoDTM{}
	if p.Name() != "none" {
		t.Error("name")
	}
	if p.Sample(temps(150)) != 1 {
		t.Error("NoDTM throttled")
	}
	p.Reset()
}

func TestToggle1EngageDisengage(t *testing.T) {
	tg := NewToggle1(110.3, 2)
	if tg.Name() != "toggle1" {
		t.Errorf("name = %q", tg.Name())
	}
	if d := tg.Sample(temps(109)); d != 1 {
		t.Errorf("cool duty = %v", d)
	}
	if d := tg.Sample(temps(111)); d != 0 {
		t.Errorf("hot duty = %v, want 0", d)
	}
	// Below trigger: stays engaged for PolicyDelay samples.
	if d := tg.Sample(temps(109)); d != 0 {
		t.Errorf("duty during policy delay = %v, want 0", d)
	}
	if d := tg.Sample(temps(109)); d != 0 {
		t.Errorf("duty during policy delay 2 = %v, want 0", d)
	}
	if d := tg.Sample(temps(109)); d != 1 {
		t.Errorf("duty after policy delay = %v, want 1", d)
	}
}

func TestToggleRetriggerExtendsDelay(t *testing.T) {
	tg := NewToggle2(110.3, 3)
	tg.Sample(temps(111))
	tg.Sample(temps(109)) // delay 2 left
	tg.Sample(temps(111)) // re-trigger: delay back to 3
	d := 0.0
	for i := 0; i < 3; i++ {
		d = tg.Sample(temps(109))
	}
	if d != 0.5 {
		t.Errorf("duty = %v during extended delay, want 0.5", d)
	}
	if d = tg.Sample(temps(109)); d != 1 {
		t.Errorf("duty = %v after extended delay, want 1", d)
	}
	tg.Reset()
	if d := tg.Sample(temps(109)); d != 1 {
		t.Errorf("duty after reset = %v", d)
	}
}

func TestManualProportionalBand(t *testing.T) {
	m := NewManual(110.3, 111.3)
	cases := []struct{ temp, want float64 }{
		{109, 1}, {110.3, 1}, {110.8, 0.5}, {111.3, 0}, {112, 0},
	}
	for _, c := range cases {
		if got := m.Sample(temps(c.temp)); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("M(%v) = %v, want %v", c.temp, got, c.want)
		}
	}
	if m.Name() != "M" {
		t.Error("name")
	}
}

func TestNewManualPanicsOnInvertedBand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted band accepted")
		}
	}()
	NewManual(111.3, 110.3)
}

func TestCTPolicyDrivesFromHottestBlock(t *testing.T) {
	plant := control.Plant{K: 12, Tau: 180e-6, Delay: 333.5e-9}
	g := control.MustTune(plant, control.Spec{Kind: control.KindPI})
	ctl := control.NewPID(g, 111.1, 0.2, 667e-9)
	p := NewCT(control.KindPI, ctl)
	if p.Name() != "PI" {
		t.Errorf("name = %q", p.Name())
	}
	if d := p.Sample(temps(100)); d != 1 {
		t.Errorf("cool duty = %v", d)
	}
	if d := p.Sample(temps(112)); d != 0 {
		t.Errorf("hot duty = %v", d)
	}
	p.Reset()
	if p.Controller().Integral() != 0 {
		t.Error("reset did not clear controller")
	}
}

func TestHottestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("hottest(nil) did not panic")
		}
	}()
	NoDTMWrapper{}.Sample(nil)
}

// NoDTMWrapper exercises hottest via a policy that uses it.
type NoDTMWrapper struct{ Manual }

func (NoDTMWrapper) Sample(ts []float64) float64 {
	m := Manual{Low: 1, High: 2}
	return m.Sample(ts)
}

func TestManagerSamplingCadence(t *testing.T) {
	tg := NewToggle1(110.3, 1)
	m := NewManager(tg)
	m.Interval = 10
	// Non-sample cycles return the held duty without consulting policy.
	d, stall := m.Step(1, temps(120))
	if d != 1 || stall != 0 {
		t.Errorf("off-cycle step = %v,%v", d, stall)
	}
	d, _ = m.Step(10, temps(120))
	if d != 0 {
		t.Errorf("sample-cycle duty = %v, want 0", d)
	}
	if m.Duty() != 0 {
		t.Error("manager did not hold duty")
	}
	if m.Engagements() != 1 {
		t.Errorf("engagements = %d", m.Engagements())
	}
}

func TestManagerQuantizesCTDuty(t *testing.T) {
	plant := control.Plant{K: 12, Tau: 180e-6, Delay: 333.5e-9}
	g := control.Gains{Kp: 2.5} // P-only: easy to predict raw duty
	ctl := control.NewPID(g, 111.1, 0.2, 667e-9)
	m := NewManager(NewCT(control.KindP, ctl))
	m.Interval = 1
	_ = plant
	// error = 0.1 -> raw duty 0.25 -> nearest of 8 levels = 2/7.
	d, _ := m.Step(0, []float64{111.0})
	if math.Abs(d-2.0/7) > 1e-9 {
		t.Errorf("quantized duty = %v, want 2/7", d)
	}
}

func TestManagerInterruptCost(t *testing.T) {
	tg := NewToggle1(110.3, 1)
	m := NewManager(tg)
	m.Interval = 1
	m.Mechanism = Interrupt
	_, stall := m.Step(0, temps(109))
	if stall != 0 {
		t.Errorf("no-transition stall = %d", stall)
	}
	_, stall = m.Step(1, temps(112))
	if stall != DefaultInterruptCost {
		t.Errorf("engage stall = %d, want %d", stall, DefaultInterruptCost)
	}
	_, stall = m.Step(2, temps(112))
	if stall != 0 {
		t.Errorf("steady stall = %d", stall)
	}
	// One cool sample is absorbed by the policy delay...
	_, stall = m.Step(3, temps(100))
	if stall != 0 {
		t.Errorf("held stall = %d, want 0", stall)
	}
	// ...then the disengage transition raises the second interrupt.
	_, stall = m.Step(4, temps(100))
	if stall != DefaultInterruptCost {
		t.Errorf("disengage stall = %d, want %d", stall, DefaultInterruptCost)
	}
}

func TestManagerNilPolicyDefaultsToNone(t *testing.T) {
	m := NewManager(nil)
	d, _ := m.Step(0, temps(150))
	if d != 1 {
		t.Errorf("nil-policy duty = %v", d)
	}
	m.Reset()
}

func TestScalingEngagement(t *testing.T) {
	s := NewFreqScaling(110.3, 0.5, 2)
	if s.Name() != "fscale" {
		t.Error("name")
	}
	f, stall := s.Sample(temps(109))
	if f != 1 || stall != 0 {
		t.Errorf("cool = %v,%v", f, stall)
	}
	f, stall = s.Sample(temps(112))
	if f != 0.5 || stall != DefaultResyncCycles {
		t.Errorf("engage = %v,%v", f, stall)
	}
	if s.PowerFactor() != 0.5 {
		t.Errorf("freq-only power factor = %v, want 0.5", s.PowerFactor())
	}
	// Holds through the 2-sample policy delay, then disengages with
	// another resync stall.
	s.Sample(temps(109))
	f, stall = s.Sample(temps(109))
	if f != 0.5 || stall != 0 {
		t.Errorf("held sample = %v,%v, want 0.5,0", f, stall)
	}
	f, stall = s.Sample(temps(109))
	if f != 1 || stall != DefaultResyncCycles {
		t.Errorf("disengage = %v,%v", f, stall)
	}
	if s.Switches() != 2 {
		t.Errorf("switches = %d", s.Switches())
	}
}

func TestVoltageScalingCubicPower(t *testing.T) {
	s := NewVoltageScaling(110.3, 0.5, 1)
	if s.Name() != "vfscale" {
		t.Error("name")
	}
	s.Sample(temps(112))
	if got := s.PowerFactor(); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("V/f power factor = %v, want 0.125", got)
	}
	s.Reset()
	if s.PowerFactor() != 1 || s.Engaged() {
		t.Error("reset did not clear scaling")
	}
}

func TestScalingPanicsOnBadFactor(t *testing.T) {
	for _, f := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("factor %v accepted", f)
				}
			}()
			NewFreqScaling(110, f, 1)
		}()
	}
}
