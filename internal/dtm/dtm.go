// Package dtm implements the dynamic thermal management policies the paper
// evaluates (Sections 2 and 5.3):
//
// Non-control-theoretic (Brooks & Martonosi):
//   - fixed fetch toggling: toggle1 (fetch fully disabled while engaged)
//     and toggle2 (fetch every other cycle), engaged at a trigger
//     threshold and held for a policy delay;
//   - a hand-built proportional controller "M" whose toggling rate equals
//     the percentage error in temperature across a fixed band;
//   - fetch throttling and speculation control (pipeline-level actuators);
//   - frequency and voltage/frequency scaling (sim-level actuators).
//
// Control-theoretic (this paper): P, PI and PID controllers driving the
// variable fetch-toggling actuator through 8 discrete duty levels.
//
// A Manager owns the sampling cadence (1000 cycles), the trigger mechanism
// (direct hardware signal vs a 250-cycle interrupt handler) and actuator
// quantization.
package dtm

import (
	"fmt"

	"repro/internal/control"
)

// Policy maps sampled block temperatures to a fetch duty in [0,1]
// (1 = full speed).
type Policy interface {
	Name() string
	// Sample is invoked once per sampling interval with the current
	// per-block temperatures and returns the fetch duty to apply.
	Sample(temps []float64) float64
	// Reset clears internal state for a fresh run.
	Reset()
}

func hottest(temps []float64) float64 {
	if len(temps) == 0 {
		panic("dtm: Sample with no temperatures")
	}
	m := temps[0]
	for _, v := range temps[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// NoDTM is the uncontrolled baseline.
type NoDTM struct{}

// Name implements Policy.
func (NoDTM) Name() string { return "none" }

// Sample implements Policy: always full speed.
func (NoDTM) Sample([]float64) float64 { return 1 }

// Reset implements Policy.
func (NoDTM) Reset() {}

// Toggle is the fixed-strength fetch-toggling policy: when any block
// exceeds Trigger, the duty drops to EngagedDuty for at least PolicyDelay
// samples; it disengages once the temperature falls back below Trigger.
type Toggle struct {
	// Trigger is the engagement threshold in Celsius.
	Trigger float64
	// EngagedDuty is the duty while engaged: 0 for toggle1, 0.5 for
	// toggle2 (1 - 1/N for toggleN).
	EngagedDuty float64
	// PolicyDelay is the minimum number of samples the policy stays
	// engaged once triggered (Section 2.1's "policy delay").
	PolicyDelay int

	label     string
	engaged   bool
	remaining int
}

// NewToggle1 returns the paper's toggle1 baseline at the given trigger.
func NewToggle1(trigger float64, policyDelay int) *Toggle {
	return &Toggle{Trigger: trigger, EngagedDuty: 0, PolicyDelay: policyDelay, label: "toggle1"}
}

// NewToggle2 returns the toggle2 baseline (fetch every other cycle).
func NewToggle2(trigger float64, policyDelay int) *Toggle {
	return &Toggle{Trigger: trigger, EngagedDuty: 0.5, PolicyDelay: policyDelay, label: "toggle2"}
}

// Name implements Policy.
func (t *Toggle) Name() string {
	if t.label != "" {
		return t.label
	}
	return fmt.Sprintf("toggle(duty=%g)", t.EngagedDuty)
}

// Sample implements Policy.
func (t *Toggle) Sample(temps []float64) float64 {
	hot := hottest(temps) > t.Trigger
	if hot {
		t.engaged = true
		t.remaining = t.PolicyDelay
	} else if t.engaged {
		// PolicyDelay counts the below-trigger samples the policy
		// stays engaged after the last trigger.
		if t.remaining > 0 {
			t.remaining--
		} else {
			t.engaged = false
		}
	}
	if t.engaged {
		return t.EngagedDuty
	}
	return 1
}

// Reset implements Policy.
func (t *Toggle) Reset() { t.engaged, t.remaining = false, 0 }

// Manual is the hand-built proportional controller "M" of Section 5.3: the
// toggling rate equals the percentage error in temperature across the band
// [Low, High] — at or below Low the pipeline runs at full speed; at or
// above High fetch stops completely; halfway it toggles every other cycle.
type Manual struct {
	Low, High float64
}

// NewManual returns M with the paper's band: trigger (D-1) to emergency D.
func NewManual(low, high float64) *Manual {
	if high <= low {
		panic(fmt.Sprintf("dtm: manual band [%g,%g] inverted", low, high))
	}
	return &Manual{Low: low, High: high}
}

// Name implements Policy.
func (m *Manual) Name() string { return "M" }

// Sample implements Policy.
func (m *Manual) Sample(temps []float64) float64 {
	t := hottest(temps)
	frac := (t - m.Low) / (m.High - m.Low)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return 1 - frac
}

// Reset implements Policy.
func (m *Manual) Reset() {}

// CT is a control-theoretic policy wrapping a PID controller (Section 3):
// the controller output is the fetch duty, quantized by the Manager.
type CT struct {
	ctl  *control.PID
	kind control.Kind
}

// NewCT builds a CT policy from a tuned controller.
func NewCT(kind control.Kind, ctl *control.PID) *CT {
	if ctl == nil {
		panic("dtm: nil controller")
	}
	return &CT{ctl: ctl, kind: kind}
}

// Name implements Policy.
func (c *CT) Name() string { return c.kind.String() }

// Sample implements Policy: the controller observes the hottest block (the
// per-block sensor with the largest thermal error drives the response).
func (c *CT) Sample(temps []float64) float64 {
	return c.ctl.Update(hottest(temps))
}

// Reset implements Policy.
func (c *CT) Reset() { c.ctl.Reset() }

// Controller exposes the wrapped PID (tests and ablations).
func (c *CT) Controller() *control.PID { return c.ctl }

// Mechanism selects how a thermal trigger reaches the actuator
// (Section 2.1).
type Mechanism int

const (
	// Direct is the microarchitectural mechanism: the sensor directly
	// asserts a signal; no overhead.
	Direct Mechanism = iota
	// Interrupt raises an OS interrupt on every engage/disengage
	// transition, stalling the pipeline for InterruptCost cycles.
	Interrupt
)

// DefaultInterruptCost is the paper's 250-cycle handler overhead.
const DefaultInterruptCost = 250

// Manager owns sampling cadence, actuator quantization and trigger
// mechanism, and is stepped every cycle by the simulator.
type Manager struct {
	Policy Policy
	// Interval is the sampling period in cycles (paper: 1000).
	Interval uint64
	// Levels quantizes the duty to n discrete actuator settings
	// (paper: 8); 0 or 1 leaves the duty continuous.
	Levels int
	// Mechanism is the trigger mechanism; Interrupt charges
	// InterruptCost stall cycles per engage/disengage transition.
	Mechanism     Mechanism
	InterruptCost uint64

	duty        float64
	act         Actuation
	engagements uint64
}

// DefaultSampleInterval is the paper's 1000-cycle controller period.
const DefaultSampleInterval = 1000

// NewManager wires a policy with the paper's defaults.
func NewManager(p Policy) *Manager {
	if p == nil {
		p = NoDTM{}
	}
	return &Manager{
		Policy:        p,
		Interval:      DefaultSampleInterval,
		Levels:        8,
		Mechanism:     Direct,
		InterruptCost: DefaultInterruptCost,
		duty:          1,
		act:           FullSpeed(),
	}
}

// Reset restores initial state.
func (m *Manager) Reset() {
	m.duty = 1
	m.act = FullSpeed()
	m.engagements = 0
	m.Policy.Reset()
}

// Duty returns the currently applied duty.
func (m *Manager) Duty() float64 { return m.duty }

// Engagements returns the number of full-speed -> throttled transitions.
func (m *Manager) Engagements() uint64 { return m.engagements }

// Step is called once per cycle with the current block temperatures. It
// returns the fetch duty to apply and any stall cycles imposed by the
// trigger mechanism this cycle. Policies driving knobs beyond the duty
// should be stepped through StepActuation instead.
func (m *Manager) Step(cycle uint64, temps []float64) (duty float64, stall uint64) {
	a, stall := m.StepActuation(cycle, temps)
	return a.FetchDuty, stall
}
