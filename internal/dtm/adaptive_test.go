package dtm

import (
	"testing"

	"repro/internal/control"
)

func TestAdaptiveGainSlewsAndRecovers(t *testing.T) {
	a := NewAdaptiveGain(111.1)
	if got := a.Sample([]float64{100, 100}); got != 1 {
		t.Fatalf("cold core throttled: f=%v", got)
	}
	// Far above the setpoint the high gain engages: the factor must fall
	// fast and clamp at FMin.
	for i := 0; i < 10; i++ {
		a.Sample([]float64{115})
	}
	if a.FreqFactor() != a.FMin {
		t.Errorf("f=%v after sustained overshoot, want clamp at %v", a.FreqFactor(), a.FMin)
	}
	// Back below the setpoint it recovers toward full speed.
	for i := 0; i < 500; i++ {
		a.Sample([]float64{105})
	}
	if a.FreqFactor() != 1 {
		t.Errorf("f=%v after sustained headroom, want 1", a.FreqFactor())
	}
	a.Sample([]float64{115})
	low := a.FreqFactor()
	a.Reset()
	if a.FreqFactor() != 1 || low >= 1 {
		t.Errorf("Reset left f=%v (pre-reset %v)", a.FreqFactor(), low)
	}
}

// The gain schedule must move faster outside the knee than inside it for
// the same sign of error.
func TestAdaptiveGainSchedule(t *testing.T) {
	near := NewAdaptiveGain(111.1)
	far := NewAdaptiveGain(111.1)
	near.Sample([]float64{111.3}) // |e| = 0.2 < knee
	far.Sample([]float64{112.6})  // |e| = 1.5 > knee
	dNear := 1 - near.FreqFactor()
	dFar := 1 - far.FreqFactor()
	if dNear <= 0 || dFar <= 0 {
		t.Fatalf("no throttle response: near %v far %v", dNear, dFar)
	}
	// Per unit error the far response must be KiHigh/KiLow times stronger.
	if dFar/1.5 <= 2*dNear/0.2 {
		t.Errorf("gain schedule flat: near %v/degree, far %v/degree", dNear/0.2, dFar/1.5)
	}
}

func budgetForTest(cores int) *PowerBudget {
	g := control.Gains{Kp: 0.5, Ki: 20000}
	return NewPowerBudget(cores, 20*float64(cores), g, 111.1, 0.2, 1000.0/1.5e9, 8)
}

func TestPowerBudgetRedistributes(t *testing.T) {
	b := budgetForTest(4)
	sum := 0.0
	for i := 0; i < 4; i++ {
		sum += b.Alloc(i)
	}
	if diff := sum - b.Budget; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("initial allocations sum to %v, budget %v", sum, b.Budget)
	}
	// Core 0 hot at the setpoint, the rest cool: the global layer must
	// shift budget away from core 0, preserving the total.
	hot := []float64{111.1, 104, 104, 104}
	power := []float64{5, 5, 5, 5}
	duties := make([]float64, 4)
	b.SampleAll(hot, power, duties)
	if b.Alloc(0) >= b.Alloc(1) {
		t.Errorf("hot core alloc %v not below cool core alloc %v", b.Alloc(0), b.Alloc(1))
	}
	sum = 0
	for i := 0; i < 4; i++ {
		sum += b.Alloc(i)
	}
	if diff := sum - b.Budget; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("allocations sum to %v after redistribution, budget %v", sum, b.Budget)
	}
	for i := 1; i < 4; i++ {
		if b.Alloc(i) != b.Alloc(1) {
			t.Errorf("equal-headroom cores unequal: alloc[%d]=%v alloc[1]=%v", i, b.Alloc(i), b.Alloc(1))
		}
	}
}

func TestPowerBudgetCapsOverdraw(t *testing.T) {
	b := budgetForTest(2)
	hot := []float64{104, 104} // cool: local PIs wind up to full duty
	duties := make([]float64, 2)
	for i := 0; i < 2000; i++ {
		b.SampleAll(hot, []float64{5, 5}, duties)
	}
	if duties[0] != 1 || duties[1] != 1 {
		t.Fatalf("cool wound-up duties %v, want full speed", duties)
	}
	// Core 0 draws twice its allocation; its duty must be capped at
	// alloc/power while core 1 stays at full speed.
	b.SampleAll(hot, []float64{40, 5}, duties)
	want := b.Alloc(0) / 40
	if d := duties[0] - want; d > 1e-9 || d < -1e-9 {
		t.Errorf("overdrawing core duty %v, want cap %v", duties[0], want)
	}
	if duties[1] != 1 {
		t.Errorf("in-budget cool core duty %v, want 1", duties[1])
	}
}

func TestPowerBudgetReallocatesOnPeriodOnly(t *testing.T) {
	b := budgetForTest(2)
	duties := make([]float64, 2)
	power := []float64{5, 5}
	b.SampleAll([]float64{111.1, 104}, power, duties)
	skewed := b.Alloc(0)
	// Mid-period the headroom picture inverts, but allocations must hold
	// until the next global tick.
	for i := 1; i < b.Period; i++ {
		b.SampleAll([]float64{104, 111.1}, power, duties)
		if b.Alloc(0) != skewed {
			t.Fatalf("alloc moved mid-period at sample %d", i)
		}
	}
	b.SampleAll([]float64{104, 111.1}, power, duties)
	if b.Alloc(0) <= skewed {
		t.Errorf("alloc %v did not recover after period tick (was %v)", b.Alloc(0), skewed)
	}
}

func TestPowerBudgetSampleAllocFree(t *testing.T) {
	b := budgetForTest(4)
	hot := []float64{111, 108, 104, 112}
	power := []float64{8, 6, 3, 9}
	duties := make([]float64, 4)
	allocs := testing.AllocsPerRun(100, func() {
		b.SampleAll(hot, power, duties)
	})
	if allocs != 0 {
		t.Errorf("SampleAll allocates %v/op", allocs)
	}
}
