package dtm

import (
	"fmt"

	"repro/internal/control"
)

// Actuation is the full set of microarchitectural knobs a DTM policy can
// drive (Section 2.1's mechanism menu): fetch-toggling duty, fetch-width
// throttling, and speculation control.
type Actuation struct {
	// FetchDuty is the fetch-toggling duty in [0,1]; 1 = ungated.
	FetchDuty float64
	// FetchLimit caps instructions fetched per cycle; 0 = full width.
	FetchLimit int
	// MaxUnresolved stalls fetch beyond this many in-flight unresolved
	// control transfers; 0 = disabled.
	MaxUnresolved int
}

// FullSpeed is the actuation with every mechanism disengaged.
func FullSpeed() Actuation { return Actuation{FetchDuty: 1} }

// Engaged reports whether any mechanism is restricting the pipeline.
func (a Actuation) Engaged() bool {
	return a.FetchDuty < 1 || a.FetchLimit > 0 || a.MaxUnresolved > 0
}

// Actuator is implemented by policies that drive knobs beyond the fetch
// duty. Plain Policy implementations are wrapped as duty-only actuations
// by the Manager.
type Actuator interface {
	Policy
	SampleActuation(temps []float64) Actuation
}

// Throttle is Brooks & Martonosi's fetch throttling: when engaged,
// instruction fetch still happens every cycle but its width is limited.
// The paper points out this cannot cool fetch-side hot spots (branch
// predictor, I-cache) because their access count per cycle is unchanged.
type Throttle struct {
	Trigger     float64
	Limit       int // fetched instructions per cycle while engaged
	PolicyDelay int

	engaged   bool
	remaining int
}

// NewThrottle builds the throttling policy.
func NewThrottle(trigger float64, limit, policyDelay int) *Throttle {
	if limit < 1 {
		panic(fmt.Sprintf("dtm: throttle limit %d < 1", limit))
	}
	return &Throttle{Trigger: trigger, Limit: limit, PolicyDelay: policyDelay}
}

// Name implements Policy.
func (t *Throttle) Name() string { return "throttle" }

// Reset implements Policy.
func (t *Throttle) Reset() { t.engaged, t.remaining = false, 0 }

// Sample implements Policy (duty view: throttling never gates fetch).
func (t *Throttle) Sample(temps []float64) float64 {
	t.SampleActuation(temps)
	return 1
}

// SampleActuation implements Actuator.
func (t *Throttle) SampleActuation(temps []float64) Actuation {
	hot := hottest(temps) > t.Trigger
	if hot {
		t.engaged = true
		t.remaining = t.PolicyDelay
	} else if t.engaged {
		if t.remaining > 0 {
			t.remaining--
		} else {
			t.engaged = false
		}
	}
	a := FullSpeed()
	if t.engaged {
		a.FetchLimit = t.Limit
	}
	return a
}

// SpecControl is Brooks & Martonosi's speculation control: when engaged,
// fetch stalls while more than MaxBranches unresolved branches are in
// flight. The paper notes it is ineffective for programs with excellent
// branch prediction, whose pipelines rarely hold that many unresolved
// branches.
type SpecControl struct {
	Trigger     float64
	MaxBranches int
	PolicyDelay int

	engaged   bool
	remaining int
}

// NewSpecControl builds the speculation-control policy.
func NewSpecControl(trigger float64, maxBranches, policyDelay int) *SpecControl {
	if maxBranches < 1 {
		panic(fmt.Sprintf("dtm: speculation bound %d < 1", maxBranches))
	}
	return &SpecControl{Trigger: trigger, MaxBranches: maxBranches, PolicyDelay: policyDelay}
}

// Name implements Policy.
func (s *SpecControl) Name() string { return "specctl" }

// Reset implements Policy.
func (s *SpecControl) Reset() { s.engaged, s.remaining = false, 0 }

// Sample implements Policy.
func (s *SpecControl) Sample(temps []float64) float64 {
	s.SampleActuation(temps)
	return 1
}

// SampleActuation implements Actuator.
func (s *SpecControl) SampleActuation(temps []float64) Actuation {
	hot := hottest(temps) > s.Trigger
	if hot {
		s.engaged = true
		s.remaining = s.PolicyDelay
	} else if s.engaged {
		if s.remaining > 0 {
			s.remaining--
		} else {
			s.engaged = false
		}
	}
	a := FullSpeed()
	if s.engaged {
		a.MaxUnresolved = s.MaxBranches
	}
	return a
}

// StepActuation is the Manager's full-actuation sampling entry point: like
// Step, but returning every knob. Policies that only produce a duty are
// wrapped as duty-only actuations.
func (m *Manager) StepActuation(cycle uint64, temps []float64) (Actuation, uint64) {
	if m.Interval == 0 || cycle%m.Interval != 0 {
		return m.act, 0
	}
	var a Actuation
	if ap, ok := m.Policy.(Actuator); ok {
		a = ap.SampleActuation(temps)
	} else {
		d := m.Policy.Sample(temps)
		if m.Levels > 1 {
			d = control.Quantize(d, m.Levels)
		}
		a = Actuation{FetchDuty: d}
	}
	transition := m.act.Engaged() != a.Engaged()
	if a.Engaged() && !m.act.Engaged() {
		m.engagements++
	}
	m.act = a
	m.duty = a.FetchDuty
	if transition && m.Mechanism == Interrupt {
		return a, m.InterruptCost
	}
	return a, 0
}
