package dtm

import "fmt"

// Hierarchy realizes the deployment the paper sketches in Section 2.1: "a
// low-cost mechanism like toggling might be used with a high trigger
// threshold. Only when temperature gets truly close to emergency would
// auxiliary mechanisms like voltage/frequency scaling be employed."
//
// The primary policy (typically a CT fetch-toggling controller) runs at
// every sample; when the hottest block exceeds BackupTrigger — the primary
// has failed to contain the excursion — the backup scaling mechanism
// engages until the temperature falls back below the primary's operating
// region, absorbing its resynchronization stall.
type Hierarchy struct {
	Primary Policy
	Backup  *Scaling
	// BackupTrigger is the escalation threshold (just under the
	// emergency level).
	BackupTrigger float64

	escalations uint64
}

// NewHierarchy composes a primary policy with a scaling backup.
func NewHierarchy(primary Policy, backup *Scaling, backupTrigger float64) *Hierarchy {
	if primary == nil || backup == nil {
		panic("dtm: hierarchy needs both a primary policy and a backup")
	}
	if backup.Trigger < backupTrigger {
		// The backup's own trigger must not undercut the escalation
		// threshold, or it would engage before the primary has a
		// chance (defeating the hierarchy).
		backup.Trigger = backupTrigger
	}
	return &Hierarchy{Primary: primary, Backup: backup, BackupTrigger: backupTrigger}
}

// Name implements Policy.
func (h *Hierarchy) Name() string {
	return fmt.Sprintf("%s>%s", h.Primary.Name(), h.Backup.Name())
}

// Reset implements Policy.
func (h *Hierarchy) Reset() {
	h.Primary.Reset()
	h.Backup.Reset()
	h.escalations = 0
}

// Escalations returns how many times the backup engaged.
func (h *Hierarchy) Escalations() uint64 { return h.escalations }

// Sample implements Policy: the primary's duty, unless escalated.
func (h *Hierarchy) Sample(temps []float64) float64 {
	d, _, _ := h.SampleHierarchy(temps)
	return d
}

// SampleHierarchy returns the fetch duty from the primary, the frequency
// factor from the backup (1 when not escalated) and any resync stall.
func (h *Hierarchy) SampleHierarchy(temps []float64) (duty, freqFactor float64, stall uint64) {
	duty = h.Primary.Sample(temps)
	wasEngaged := h.Backup.Engaged()
	freqFactor, stall = h.Backup.Sample(temps)
	if h.Backup.Engaged() && !wasEngaged {
		h.escalations++
	}
	return duty, freqFactor, stall
}

// PowerFactor exposes the backup's current dynamic-power multiplier.
func (h *Hierarchy) PowerFactor() float64 { return h.Backup.PowerFactor() }
