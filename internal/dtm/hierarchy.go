package dtm

import "fmt"

// Hierarchy realizes the deployment the paper sketches in Section 2.1: "a
// low-cost mechanism like toggling might be used with a high trigger
// threshold. Only when temperature gets truly close to emergency would
// auxiliary mechanisms like voltage/frequency scaling be employed."
//
// The primary policy (typically a CT fetch-toggling controller) runs at
// every sample; when the hottest block exceeds BackupTrigger — the primary
// has failed to contain the excursion — the backup scaling mechanism
// engages until the temperature falls back below the primary's operating
// region, absorbing its resynchronization stall.
type Hierarchy struct {
	Primary Policy
	Backup  *Scaling
	// BackupTrigger is the escalation threshold (just under the
	// emergency level).
	BackupTrigger float64

	escalations uint64
}

// NewHierarchy composes a primary policy with a scaling backup. The backup
// is used as handed in: the hierarchy applies its escalation threshold at
// sample time (the effective trigger is the larger of the backup's own and
// BackupTrigger), so the same *Scaling can be shared with a standalone
// deployment without being silently reconfigured.
func NewHierarchy(primary Policy, backup *Scaling, backupTrigger float64) *Hierarchy {
	if primary == nil || backup == nil {
		panic("dtm: hierarchy needs both a primary policy and a backup")
	}
	return &Hierarchy{Primary: primary, Backup: backup, BackupTrigger: backupTrigger}
}

// Name implements Policy.
func (h *Hierarchy) Name() string {
	return fmt.Sprintf("%s>%s", h.Primary.Name(), h.Backup.Name())
}

// Reset implements Policy.
func (h *Hierarchy) Reset() {
	h.Primary.Reset()
	h.Backup.Reset()
	h.escalations = 0
}

// Escalations returns how many times the backup engaged.
func (h *Hierarchy) Escalations() uint64 { return h.escalations }

// Sample implements Policy: the primary's duty, unless escalated.
func (h *Hierarchy) Sample(temps []float64) float64 {
	d, _, _ := h.SampleHierarchy(temps)
	return d
}

// SampleHierarchy returns the fetch duty from the primary, the frequency
// factor from the backup (1 when not escalated) and any resync stall. The
// backup engages at the effective trigger: the escalation threshold, or
// the backup's own trigger if that is higher, so the backup never engages
// before the primary has a chance (which would defeat the hierarchy).
func (h *Hierarchy) SampleHierarchy(temps []float64) (duty, freqFactor float64, stall uint64) {
	duty = h.Primary.Sample(temps)
	trigger := h.BackupTrigger
	if h.Backup.Trigger > trigger {
		trigger = h.Backup.Trigger
	}
	wasEngaged := h.Backup.Engaged()
	freqFactor, stall = h.Backup.SampleAt(temps, trigger)
	if h.Backup.Engaged() && !wasEngaged {
		h.escalations++
	}
	return duty, freqFactor, stall
}

// PowerFactor exposes the backup's current dynamic-power multiplier.
func (h *Hierarchy) PowerFactor() float64 { return h.Backup.PowerFactor() }
