package dtm

import (
	"testing"

	"repro/internal/control"
)

func twoPlants() []control.Plant {
	return []control.Plant{
		{K: 12, Tau: 180e-6, Delay: 333.5e-9}, // slow block
		{K: 12, Tau: 49e-6, Delay: 333.5e-9},  // fast block (bpred-like)
	}
}

func TestMultiCTBasics(t *testing.T) {
	m, err := NewMultiCT(control.KindPI, twoPlants(), 111.1, 0.2, 667e-9)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "mPI" {
		t.Errorf("name = %q", m.Name())
	}
	if len(m.Controllers()) != 2 {
		t.Fatalf("controllers = %d", len(m.Controllers()))
	}
	if d := m.Sample([]float64{100, 100}); d != 1 {
		t.Errorf("cool duty = %v", d)
	}
	// One hot block drives the duty down even if the other is cool.
	if d := m.Sample([]float64{100, 112}); d != 0 {
		t.Errorf("hot-block duty = %v, want 0", d)
	}
	m.Reset()
	for _, c := range m.Controllers() {
		if c.Integral() != 0 {
			t.Error("reset incomplete")
		}
	}
}

func TestMultiCTSampleLengthChecked(t *testing.T) {
	m, _ := NewMultiCT(control.KindPI, twoPlants(), 111.1, 0.2, 667e-9)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched sensor count accepted")
		}
	}()
	m.Sample([]float64{100})
}

func TestNewMultiCTValidation(t *testing.T) {
	if _, err := NewMultiCT(control.KindPI, nil, 111.1, 0.2, 667e-9); err == nil {
		t.Error("empty plant list accepted")
	}
}

// The per-block design must back off the proportional gain for the fast
// block (its loop magnitude at the shared crossover is larger), restoring
// the phase margin a single longest-tau design lacks there.
func TestMultiCTPerBlockTuning(t *testing.T) {
	m, err := NewMultiCT(control.KindPI, twoPlants(), 111.1, 0.2, 667e-9)
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := m.Controllers()[0], m.Controllers()[1]
	if fast.Kp >= slow.Kp {
		t.Errorf("fast-block Kp %v >= slow-block Kp %v", fast.Kp, slow.Kp)
	}
	// And the fast block's own-tuned loop must have a healthy margin,
	// unlike the slow-tuned gains applied to the fast plant.
	fastPlant := twoPlants()[1]
	pmOwn, _, err := control.OpenLoopPhaseMargin(fastPlant, fast.Gains)
	if err != nil {
		t.Fatal(err)
	}
	pmBorrowed, _, err := control.OpenLoopPhaseMargin(fastPlant, slow.Gains)
	if err != nil {
		t.Fatal(err)
	}
	if pmOwn <= pmBorrowed {
		t.Errorf("own-tuned margin %.3f not above borrowed %.3f", pmOwn, pmBorrowed)
	}
}
