package workload

import (
	"math"
	"math/bits"
)

// rng is a small deterministic xorshift64* generator. The simulator cannot
// use math/rand's global state because every benchmark run must be exactly
// reproducible from its profile seed (the paper uses SimpleScalar EIO
// traces "to ensure reproducible results ... across multiple simulations").
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{state: seed}
}

// next returns the next 64-bit value.
func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform int in [0, n). It panics if n <= 0.
//
// Bounded sampling uses Lemire's multiply-shift method: map the 64-bit
// draw into [0, n) via the high word of a 128-bit product, rejecting the
// few draws that land in the short first interval so every value is
// exactly equally likely. The previous `next() % n` mapping carried a
// modulo bias of up to 2^-64·n toward small values — negligible for the
// tiny bounds used here, but wrong in principle and cheap to fix.
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("workload: intn on non-positive bound")
	}
	bound := uint64(n)
	hi, lo := bits.Mul64(r.next(), bound)
	if lo < bound {
		thresh := -bound % bound
		for lo < thresh {
			hi, lo = bits.Mul64(r.next(), bound)
		}
	}
	return int(hi)
}

// geomCap bounds a single geometric sample. The inverse-CDF transform can
// in principle return astronomically large values on pathological uniform
// draws (p ≈ 2^-53); capping at 2^20 keeps dependence distances finite
// without measurably biasing any realistic mean (for DepMean ≤ 1000 the
// probability mass above the cap is < 1e-450).
const geomCap = 1 << 20

// geometric returns a sample >= 1 from a geometric distribution with the
// given mean (mean must be >= 1).
//
// Sampling is by closed-form inversion of the geometric CDF:
// n = 1 + floor(log(u)/log(1-p)) with u uniform in (0, 1] and p = 1/mean.
// The previous implementation counted Bernoulli failures but stopped at
// 64, silently truncating the tail; for DepMean 100 that biased the
// sampled mean down to ~47, so high-ILP profiles received roughly half
// the dependence distance (and thus far less ILP) than specified.
func (r *rng) geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	// r.float() is uniform in [0, 1); flip it to (0, 1] so log(u) is finite.
	u := 1 - r.float()
	n := 1 + int(math.Log(u)/math.Log(1-p))
	if n < 1 {
		return 1
	}
	if n > geomCap {
		return geomCap
	}
	return n
}

// bernoulli returns true with probability p.
func (r *rng) bernoulli(p float64) bool { return r.float() < p }
