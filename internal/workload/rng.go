package workload

// rng is a small deterministic xorshift64* generator. The simulator cannot
// use math/rand's global state because every benchmark run must be exactly
// reproducible from its profile seed (the paper uses SimpleScalar EIO
// traces "to ensure reproducible results ... across multiple simulations").
type rng struct {
	state uint64
}

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{state: seed}
}

// next returns the next 64-bit value.
func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("workload: intn on non-positive bound")
	}
	return int(r.next() % uint64(n))
}

// geometric returns a sample >= 1 from a geometric distribution with the
// given mean (mean must be >= 1).
func (r *rng) geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for r.float() > p && n < 64 {
		n++
	}
	return n
}

// bernoulli returns true with probability p.
func (r *rng) bernoulli(p float64) bool { return r.float() < p }
