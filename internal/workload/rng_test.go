package workload

// Distributional regression tests for the workload RNG. Two historical
// bugs motivate them: geometric() truncated its tail at 64 (biasing the
// sampled mean of DepMean-100 profiles down to ~47), and intn() used a
// plain modulo that over-weights small values for bounds near 2^64.

import (
	"math"
	"testing"
)

// geomStats samples the geometric distribution n times and returns the
// sample mean and variance.
func geomStats(seed uint64, mean float64, n int) (m, v float64) {
	r := newRNG(seed)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := float64(r.geometric(mean))
		sum += x
		sumSq += x * x
	}
	m = sum / float64(n)
	v = sumSq/float64(n) - m*m
	return m, v
}

// TestGeometricMeanAndVariance checks the first two moments for a spread
// of means. A geometric on {1, 2, ...} with mean m has p = 1/m and
// variance m(m-1); the old 64-capped sampler fails the mean check for
// every mean above ~20.
func TestGeometricMeanAndVariance(t *testing.T) {
	const n = 200_000
	for _, mean := range []float64{1.5, 4, 20, 100, 400} {
		m, v := geomStats(77, mean, n)
		wantVar := mean * (mean - 1)
		// Standard error of the mean is sqrt(var/n); allow 5 sigma.
		meanTol := 5 * math.Sqrt(wantVar/n)
		if math.Abs(m-mean) > meanTol {
			t.Errorf("mean %g: sample mean %v (tol %v)", mean, m, meanTol)
		}
		if wantVar > 0 && math.Abs(v-wantVar) > 0.08*wantVar {
			t.Errorf("mean %g: sample variance %v, want ~%v", mean, v, wantVar)
		}
	}
}

// TestGeometricDepMeanRegression pins the exact bug the inverse-CDF
// rewrite fixed: a DepMean of 100 must actually yield a mean dependence
// distance of ~100. The failure-counting sampler capped at 64 returned a
// mean of ~47 here.
func TestGeometricDepMeanRegression(t *testing.T) {
	m, _ := geomStats(101, 100, 200_000)
	if math.Abs(m-100) > 2 {
		t.Fatalf("DepMean 100 yields mean dependence distance %v, want ~100", m)
	}
}

// TestGeometricSupport checks the sample range: always >= 1, and never
// above the documented cap.
func TestGeometricSupport(t *testing.T) {
	r := newRNG(5)
	for i := 0; i < 100_000; i++ {
		n := r.geometric(50)
		if n < 1 || n > geomCap {
			t.Fatalf("geometric(50) = %d out of [1, %d]", n, geomCap)
		}
	}
	if r.geometric(1) != 1 || r.geometric(0.25) != 1 {
		t.Error("geometric with mean <= 1 must return 1")
	}
}

// TestIntnChiSquaredUniform applies a chi-squared goodness-of-fit test to
// intn(k) for several bounds. With df = k-1 the 99.9th percentile for
// df=9 is 27.9 and for df=31 is 61.1; a fixed seed makes the draw
// deterministic, so the generous 1e-3 significance never flakes.
func TestIntnChiSquaredUniform(t *testing.T) {
	for _, tc := range []struct {
		k      int
		chiMax float64
	}{
		{10, 27.9},
		{32, 61.1},
	} {
		r := newRNG(1234)
		const n = 100_000
		counts := make([]int, tc.k)
		for i := 0; i < n; i++ {
			x := r.intn(tc.k)
			if x < 0 || x >= tc.k {
				t.Fatalf("intn(%d) = %d out of range", tc.k, x)
			}
			counts[x]++
		}
		expect := float64(n) / float64(tc.k)
		var chi2 float64
		for _, c := range counts {
			d := float64(c) - expect
			chi2 += d * d / expect
		}
		if chi2 > tc.chiMax {
			t.Errorf("intn(%d) chi^2 = %v > %v", tc.k, chi2, tc.chiMax)
		}
	}
}

// TestIntnLargeBoundUnbiased detects modulo bias directly. For the bound
// 3<<61, 2^64 mod bound = 2^62, so a plain `next() % bound` returns a
// value below 2^62 with probability 3/4 instead of the uniform 2/3. The
// Lemire rejection sampler must land within noise of 2/3.
func TestIntnLargeBoundUnbiased(t *testing.T) {
	const (
		bound = 3 << 61
		split = 1 << 62
		n     = 200_000
	)
	r := newRNG(4321)
	below := 0
	for i := 0; i < n; i++ {
		if r.intn(bound) < split {
			below++
		}
	}
	f := float64(below) / n
	// 5 sigma of a Bernoulli(2/3) proportion over n draws is ~0.0053.
	if math.Abs(f-2.0/3.0) > 0.006 {
		t.Errorf("P(intn(3<<61) < 1<<62) = %v, want ~2/3 (3/4 indicates modulo bias)", f)
	}
}

// TestRNGDeterministicFromSeed pins that the unbiased samplers remain a
// pure function of the seed — the workload reproducibility contract.
func TestRNGDeterministicFromSeed(t *testing.T) {
	a, b := newRNG(99), newRNG(99)
	for i := 0; i < 10_000; i++ {
		if x, y := a.intn(1000), b.intn(1000); x != y {
			t.Fatalf("intn diverged at draw %d: %d vs %d", i, x, y)
		}
		if x, y := a.geometric(30), b.geometric(30); x != y {
			t.Fatalf("geometric diverged at draw %d: %d vs %d", i, x, y)
		}
	}
}
