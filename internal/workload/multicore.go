package workload

import "hash/fnv"

// Core-to-core thermal interaction scenarios for multicore runs: each
// returns one Profile per core, all sharing the scenario name. The hot
// phase is an art-like FP kernel (tight loops, streaming working set) that
// drives a core toward the emergency threshold; the cool phase is a
// vpr-like branchy integer mix that idles well below it.

// hotPhase returns the thermally aggressive phase template.
func hotPhase(insts uint64) Phase {
	return Phase{
		Insts:            insts,
		Mix:              Mix{IntALU: 20, FPALU: 30, FPMult: 10, Load: 22, Store: 8, Branch: 8, Call: 0.5},
		DepMean:          12,
		NumLoops:         4,
		BodySize:         64,
		LoopIters:        200,
		BranchRandomFrac: 0.02,
		BranchBias:       0.7,
		WorkingSet:       64 << 10,
		StreamFrac:       0.95,
	}
}

// coolPhase returns the thermally benign phase template.
func coolPhase(insts uint64) Phase {
	return Phase{
		Insts:            insts,
		Mix:              Mix{IntALU: 42, IntMult: 2, Load: 22, Store: 10, Branch: 16, Call: 1},
		DepMean:          2.5,
		NumLoops:         24,
		BodySize:         40,
		LoopIters:        20,
		BranchRandomFrac: 0.4,
		BranchBias:       0.45,
		WorkingSet:       4 << 20,
		StreamFrac:       0.15,
	}
}

// coreSeed derives a stable per-core seed from the scenario name.
func coreSeed(scenario string, core int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(scenario))
	h.Write([]byte{byte(core), byte(core >> 8)})
	return h.Sum64()
}

// HotNeighbor returns the hot-neighbor scenario: core 0 runs the hot
// kernel continuously while every other core runs cool — the victim cores
// heat only through lateral cross-core coupling and any chip-level
// controller's reaction.
func HotNeighbor(cores int) []Profile {
	const name = "hotneighbor"
	ps := make([]Profile, cores)
	for c := range ps {
		ph := coolPhase(1 << 20)
		if c == 0 {
			ph = hotPhase(1 << 20)
		}
		ps[c] = Profile{Name: name, Seed: coreSeed(name, c), Phases: []Phase{ph}}
	}
	return ps
}

// Migration returns the thread-migration scenario: a single hot thread
// hops core to core every period instructions (core c is hot in phase c),
// so each core sees a heating burst followed by cooling while its
// neighbor heats.
func Migration(cores int, period uint64) []Profile {
	const name = "migration"
	ps := make([]Profile, cores)
	for c := range ps {
		phases := make([]Phase, cores)
		for p := range phases {
			if p == c {
				phases[p] = hotPhase(period)
			} else {
				phases[p] = coolPhase(period)
			}
		}
		ps[c] = Profile{Name: name, Seed: coreSeed(name, c), Phases: phases}
	}
	return ps
}

// Staggered returns the staggered-phases scenario: every core alternates
// hot and cool phases of period instructions, with odd cores half a
// period out of phase — adjacent cores take turns being the hot one.
func Staggered(cores int, period uint64) []Profile {
	const name = "staggered"
	ps := make([]Profile, cores)
	for c := range ps {
		var phases []Phase
		if c%2 == 0 {
			phases = []Phase{hotPhase(period), coolPhase(period)}
		} else {
			phases = []Phase{coolPhase(period), hotPhase(period)}
		}
		ps[c] = Profile{Name: name, Seed: coreSeed(name, c), Phases: phases}
	}
	return ps
}
