package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Source supplies instructions to the pipeline: the live Generator or a
// recorded trace (TraceSource). This mirrors SimpleScalar's EIO mechanism
// (Section 5.4): the paper records external I/O traces so every simulation
// of a benchmark replays identically; here a recorded micro-op trace plays
// the same role.
type Source interface {
	// Next returns the next correct-path micro-op.
	Next() isa.MicroOp
	// PeekPC returns the next correct-path fetch address.
	PeekPC() uint64
	// WrongPath synthesizes a wrong-path micro-op at pc.
	WrongPath(pc uint64) isa.MicroOp
}

var _ Source = (*Generator)(nil)

// Trace file layout: magic, version, count, then per-op records with
// varint-delta encoding (PCs and addresses are strongly local, so deltas
// keep traces a few bytes per op).
const (
	traceMagic   = 0x54524143 // "TRAC"
	traceVersion = 1
)

// op record flags.
const (
	flagTaken = 1 << iota
	flagHasSrc1
	flagHasSrc2
	flagHasDest
	flagHasAddr
	flagHasTarget
)

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WriteTrace records n correct-path micro-ops from src to w. The stream it
// consumes is exactly the stream a pipeline would have fetched, so a
// replayed simulation is instruction-identical to a live one.
func WriteTrace(w io.Writer, src Source, n uint64) error {
	bw := bufio.NewWriter(w)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint64(hdr[8:], n)
	if _, err := bw.Write(hdr[:16]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:k])
		return err
	}
	var prevPC, prevAddr, prevTarget uint64
	for i := uint64(0); i < n; i++ {
		op := src.Next()
		var flags byte
		if op.Taken {
			flags |= flagTaken
		}
		if op.Src1 != isa.RegNone {
			flags |= flagHasSrc1
		}
		if op.Src2 != isa.RegNone {
			flags |= flagHasSrc2
		}
		if op.Dest != isa.RegNone {
			flags |= flagHasDest
		}
		if op.Class.IsMem() {
			flags |= flagHasAddr
		}
		if op.Class.IsCtrl() {
			flags |= flagHasTarget
		}
		if err := bw.WriteByte(byte(op.Class)); err != nil {
			return err
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		if err := putUvarint(zigzag(int64(op.PC) - int64(prevPC))); err != nil {
			return err
		}
		prevPC = op.PC
		if flags&flagHasSrc1 != 0 {
			if err := bw.WriteByte(byte(op.Src1)); err != nil {
				return err
			}
		}
		if flags&flagHasSrc2 != 0 {
			if err := bw.WriteByte(byte(op.Src2)); err != nil {
				return err
			}
		}
		if flags&flagHasDest != 0 {
			if err := bw.WriteByte(byte(op.Dest)); err != nil {
				return err
			}
		}
		if flags&flagHasAddr != 0 {
			if err := putUvarint(zigzag(int64(op.Addr) - int64(prevAddr))); err != nil {
				return err
			}
			prevAddr = op.Addr
		}
		if flags&flagHasTarget != 0 {
			if err := putUvarint(zigzag(int64(op.Target) - int64(prevTarget))); err != nil {
				return err
			}
			prevTarget = op.Target
		}
	}
	return bw.Flush()
}

// TraceSource replays a recorded trace as an instruction Source. When the
// trace is exhausted it wraps around (with continuing sequence numbers),
// so arbitrarily long simulations can run from a finite recording.
type TraceSource struct {
	ops   []isa.MicroOp
	pos   int
	seq   uint64
	wpRnd *rng
	// classHist drives wrong-path synthesis with the trace's own mix.
	classHist [isa.NumOpClasses]int
	wsLo      uint64
	wsSpan    uint64
}

// ReadTrace loads a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*TraceSource, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("workload: not a trace file")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %d", v)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	if n == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	const maxTraceOps = 1 << 28
	if n > maxTraceOps {
		return nil, fmt.Errorf("workload: trace with %d ops exceeds limit", n)
	}
	ts := &TraceSource{
		ops:   make([]isa.MicroOp, 0, n),
		wpRnd: newRNG(0x7ace7ace7ace7ace),
		wsLo:  ^uint64(0),
	}
	var prevPC, prevAddr, prevTarget uint64
	for i := uint64(0); i < n; i++ {
		cls, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("workload: truncated trace: %w", err)
		}
		if int(cls) >= isa.NumOpClasses {
			return nil, fmt.Errorf("workload: bad op class %d", cls)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		op := isa.MicroOp{
			Class: isa.OpClass(cls),
			Seq:   i,
			Src1:  isa.RegNone,
			Src2:  isa.RegNone,
			Dest:  isa.RegNone,
			Taken: flags&flagTaken != 0,
		}
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		op.PC = uint64(int64(prevPC) + unzigzag(d))
		prevPC = op.PC
		if flags&flagHasSrc1 != 0 {
			b, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			op.Src1 = int16(b)
		}
		if flags&flagHasSrc2 != 0 {
			b, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			op.Src2 = int16(b)
		}
		if flags&flagHasDest != 0 {
			b, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			op.Dest = int16(b)
		}
		if flags&flagHasAddr != 0 {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			op.Addr = uint64(int64(prevAddr) + unzigzag(d))
			prevAddr = op.Addr
			if op.Addr < ts.wsLo {
				ts.wsLo = op.Addr
			}
			if op.Addr > ts.wsLo+ts.wsSpan {
				ts.wsSpan = op.Addr - ts.wsLo
			}
		}
		if flags&flagHasTarget != 0 {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			op.Target = uint64(int64(prevTarget) + unzigzag(d))
			prevTarget = op.Target
		}
		ts.classHist[op.Class]++
		ts.ops = append(ts.ops, op)
	}
	if ts.wsSpan == 0 {
		ts.wsSpan = 4096
	}
	return ts, nil
}

// Len returns the number of recorded ops.
func (ts *TraceSource) Len() int { return len(ts.ops) }

// Next implements Source, wrapping at the end of the recording.
func (ts *TraceSource) Next() isa.MicroOp {
	op := ts.ops[ts.pos]
	op.Seq = ts.seq
	ts.seq++
	ts.pos++
	if ts.pos == len(ts.ops) {
		ts.pos = 0
	}
	return op
}

// PeekPC implements Source.
func (ts *TraceSource) PeekPC() uint64 { return ts.ops[ts.pos].PC }

// WrongPath implements Source: synthesized non-control ops whose class mix
// follows the recording and whose loads fall inside the recorded
// working-set span.
func (ts *TraceSource) WrongPath(pc uint64) isa.MicroOp {
	// Sample a non-control, non-store class from the histogram.
	total := 0
	for c := 0; c < isa.NumOpClasses; c++ {
		cls := isa.OpClass(c)
		if cls.IsCtrl() || cls == isa.OpStore || cls == isa.OpNop {
			continue
		}
		total += ts.classHist[c]
	}
	cls := isa.OpIntALU
	if total > 0 {
		x := int(ts.wpRnd.next() % uint64(total))
		for c := 0; c < isa.NumOpClasses; c++ {
			cc := isa.OpClass(c)
			if cc.IsCtrl() || cc == isa.OpStore || cc == isa.OpNop {
				continue
			}
			if x < ts.classHist[c] {
				cls = cc
				break
			}
			x -= ts.classHist[c]
		}
	}
	op := isa.MicroOp{
		Seq:   ^uint64(0),
		PC:    pc,
		Class: cls,
		Src1:  int16(ts.wpRnd.intn(32)),
		Src2:  isa.RegNone,
		Dest:  int16(ts.wpRnd.intn(32)),
	}
	if cls.IsFP() {
		op.Src1 += 32
		op.Dest += 32
	}
	if cls == isa.OpLoad {
		op.Addr = ts.wsLo + (ts.wpRnd.next()%ts.wsSpan)&^7
	}
	return op
}
