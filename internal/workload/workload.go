// Package workload generates the deterministic synthetic instruction
// streams that stand in for the paper's SPEC CPU2000 benchmarks.
//
// The paper's experiments consume each benchmark only through its dynamic
// behaviour: instruction mix, attainable ILP (dependence distances), branch
// predictability, memory locality, and program phases — these together
// determine per-structure utilization, hence per-structure power and
// temperature. A Profile parameterizes exactly those properties; a
// Generator expands it into a reproducible dynamic micro-op trace with a
// static code structure (loops, embedded forward branches, leaf function
// calls) so that the *real* branch predictor and caches, not probability
// knobs, produce the miss behaviour.
package workload

import (
	"fmt"

	"repro/internal/isa"
)

// Mix is the instruction-class composition of a phase. Weights are
// relative; they need not sum to one. Call weight implies a matching
// Return executed at the end of each called function.
type Mix struct {
	IntALU  float64
	IntMult float64
	IntDiv  float64
	FPALU   float64
	FPMult  float64
	FPDiv   float64
	Load    float64
	Store   float64
	Branch  float64
	Call    float64
}

// total returns the sum of weights.
func (m Mix) total() float64 {
	return m.IntALU + m.IntMult + m.IntDiv + m.FPALU + m.FPMult + m.FPDiv +
		m.Load + m.Store + m.Branch + m.Call
}

// Phase describes one homogeneous region of program behaviour.
type Phase struct {
	// Insts is the number of dynamic instructions spent in the phase per
	// visit; phases repeat round-robin.
	Insts uint64
	// Mix is the class composition.
	Mix Mix
	// DepMean is the mean register dependence distance in instructions;
	// small values serialize execution (low ILP), large values expose
	// parallelism.
	DepMean float64
	// LoopIters is the iteration count of each inner loop visit.
	LoopIters int
	// BodySize is the static instruction count of each loop body.
	BodySize int
	// NumLoops is the number of distinct static loops in the phase;
	// NumLoops*BodySize*4 bytes is the phase's code footprint.
	NumLoops int
	// BranchRandomFrac is the fraction of static conditional branches
	// with i.i.d. random outcomes (unpredictable); the rest follow
	// loop-style or short periodic patterns the predictor can learn.
	BranchRandomFrac float64
	// BranchBias is the taken probability of the random branches.
	BranchBias float64
	// WorkingSet is the data working-set size in bytes for non-streaming
	// references.
	WorkingSet uint64
	// StreamFrac is the fraction of static memory slots that stream
	// sequentially (high spatial locality); the rest index the working
	// set pseudo-randomly.
	StreamFrac float64
}

// Profile identifies a benchmark: a seed and its phases.
type Profile struct {
	Name   string
	Seed   uint64
	Phases []Phase
}

// Validate checks profile invariants.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile has no name")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload %s: no phases", p.Name)
	}
	for i, ph := range p.Phases {
		if ph.Insts == 0 {
			return fmt.Errorf("workload %s phase %d: zero length", p.Name, i)
		}
		if ph.Mix.total() <= 0 {
			return fmt.Errorf("workload %s phase %d: empty mix", p.Name, i)
		}
		if ph.BodySize < 4 {
			return fmt.Errorf("workload %s phase %d: body size %d < 4", p.Name, i, ph.BodySize)
		}
		if ph.NumLoops < 1 || ph.LoopIters < 1 {
			return fmt.Errorf("workload %s phase %d: loops %d iters %d", p.Name, i, ph.NumLoops, ph.LoopIters)
		}
		if ph.DepMean < 1 {
			return fmt.Errorf("workload %s phase %d: DepMean %g < 1", p.Name, i, ph.DepMean)
		}
		if ph.BranchRandomFrac < 0 || ph.BranchRandomFrac > 1 ||
			ph.BranchBias < 0 || ph.BranchBias > 1 ||
			ph.StreamFrac < 0 || ph.StreamFrac > 1 {
			return fmt.Errorf("workload %s phase %d: fraction out of [0,1]", p.Name, i)
		}
		if ph.WorkingSet == 0 {
			return fmt.Errorf("workload %s phase %d: zero working set", p.Name, i)
		}
	}
	return nil
}

// branch outcome patterns for static branches.
const (
	patLoop     = iota // taken except on loop exit (handled separately)
	patPeriodic        // not-taken once every period executions
	patRandom          // i.i.d. with bias
)

// slot is one static instruction in a loop or function body.
type slot struct {
	class  isa.OpClass
	dest   int16
	src1   int16
	src2   int16
	stream bool   // memory slots: streaming vs random
	stride uint64 // streaming stride in bytes
	patt   int    // branch slots: outcome pattern
	period int    // patPeriodic period
	bias   float64
	skip   int // forward-branch skip distance in slots
	callee int // call slots: function index
	// count is the dynamic execution count of this static slot; it
	// drives periodic branch patterns and streaming address progressions.
	count uint64
}

// body is a static code region: a loop body or function body.
type body struct {
	base  uint64 // PC of first slot
	slots []slot
}

// phaseProgram is the compiled static structure of one phase.
type phaseProgram struct {
	spec  Phase
	loops []body
	funcs []body
	// dataBase is the start of this phase's data region.
	dataBase uint64
}

// Generator expands a Profile into a dynamic micro-op stream.
type Generator struct {
	prof   Profile
	phases []phaseProgram
	rnd    *rng // dynamic randomness (branch outcomes, data addresses)
	wpRnd  *rng // wrong-path synthesis

	// Dynamic position.
	phaseIdx   int
	phaseInsts uint64 // instructions emitted in current phase visit
	loopIdx    int
	iter       int
	slotIdx    int
	skip       int
	inFunc     bool
	funcIdx    int
	funcSlot   int
	retPC      uint64

	seq uint64

	// One-op lookahead so the pipeline can probe the next fetch PC
	// (PeekPC) before consuming the op.
	pending    isa.MicroOp
	hasPending bool
}

// Code layout constants.
const (
	codeBase   = 0x0010_0000
	funcRegion = 0x0400_0000 // functions live far from loop bodies
	dataBase   = 0x4000_0000
	stackBase  = 0x7fff_0000
	phaseSpan  = 0x0040_0000 // code span reserved per phase
)

// numFuncs is the number of leaf functions generated per phase.
const numFuncs = 8

// funcBodySize is the static size of each leaf function, including the
// final return.
const funcBodySize = 16

// NewGenerator compiles the profile's static structure and returns a
// generator positioned at the first instruction. It returns an error if the
// profile is invalid.
func NewGenerator(prof Profile) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		prof:  prof,
		rnd:   newRNG(prof.Seed),
		wpRnd: newRNG(prof.Seed ^ 0xdeadbeefcafef00d),
	}
	structRnd := newRNG(prof.Seed ^ 0xabcdef0123456789)
	for pi, ph := range prof.Phases {
		pp := phaseProgram{spec: ph, dataBase: dataBase + uint64(pi)*0x0800_0000}
		base := uint64(codeBase + uint64(pi)*phaseSpan)
		for li := 0; li < ph.NumLoops; li++ {
			b := g.buildBody(structRnd, ph, base, ph.BodySize, true)
			base += uint64(ph.BodySize) * 4
			pp.loops = append(pp.loops, b)
		}
		fbase := uint64(funcRegion + uint64(pi)*phaseSpan)
		for fi := 0; fi < numFuncs; fi++ {
			b := g.buildBody(structRnd, ph, fbase, funcBodySize, false)
			fbase += uint64(funcBodySize) * 4
			pp.funcs = append(pp.funcs, b)
		}
		g.phases = append(g.phases, pp)
	}
	return g, nil
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// buildBody creates one static body. Loop bodies end in a backward
// conditional branch; function bodies end in a return and contain no calls
// or control transfers (leaf functions keep the RAS depth bounded at one).
func (g *Generator) buildBody(rnd *rng, ph Phase, base uint64, size int, isLoop bool) body {
	b := body{base: base, slots: make([]slot, size)}
	// Running ring of recent destination registers for dependence wiring.
	intRing := make([]int16, 0, 64)
	fpRing := make([]int16, 0, 64)
	pickSrc := func(fp bool) int16 {
		ring := intRing
		if fp {
			ring = fpRing
		}
		if len(ring) == 0 {
			if fp {
				return 32
			}
			return 0
		}
		d := rnd.geometric(ph.DepMean)
		if d > len(ring) {
			d = len(ring)
		}
		return ring[len(ring)-d]
	}
	nextInt, nextFP := int16(0), int16(32)
	for i := 0; i < size; i++ {
		s := &b.slots[i]
		last := i == size-1
		switch {
		case last && isLoop:
			s.class = isa.OpBranch
			s.patt = patLoop
			s.src1 = pickSrc(false)
			s.src2 = isa.RegNone
			s.dest = isa.RegNone
			b.slots[i] = *s
			continue
		case last && !isLoop:
			s.class = isa.OpReturn
			s.src1, s.src2, s.dest = isa.RegNone, isa.RegNone, isa.RegNone
			continue
		}
		cls := g.sampleClass(rnd, ph.Mix, isLoop)
		s.class = cls
		switch cls {
		case isa.OpBranch:
			s.src1 = pickSrc(false)
			s.src2, s.dest = isa.RegNone, isa.RegNone
			if rnd.bernoulli(ph.BranchRandomFrac) {
				s.patt = patRandom
				s.bias = ph.BranchBias
			} else {
				s.patt = patPeriodic
				s.period = 2 + rnd.intn(7)
			}
			// Forward skip of 1..4 slots, bounded by body end.
			s.skip = 1 + rnd.intn(4)
			if i+1+s.skip >= size {
				s.skip = size - 2 - i
				if s.skip < 1 {
					// No room: degrade to an ALU op.
					s.class = isa.OpIntALU
					s.dest = nextInt
					nextInt = (nextInt + 1) % 32
					intRing = append(intRing, s.dest)
				}
			}
		case isa.OpCall:
			s.src1, s.src2, s.dest = isa.RegNone, isa.RegNone, isa.RegNone
			s.callee = rnd.intn(numFuncs)
		case isa.OpLoad:
			s.src1 = pickSrc(false)
			s.src2 = isa.RegNone
			s.dest = nextInt
			nextInt = (nextInt + 1) % 32
			intRing = append(intRing, s.dest)
			s.stream = rnd.bernoulli(ph.StreamFrac)
			s.stride = 8
		case isa.OpStore:
			s.src1 = pickSrc(false)
			s.src2 = pickSrc(false)
			s.dest = isa.RegNone
			s.stream = rnd.bernoulli(ph.StreamFrac)
			s.stride = 8
		case isa.OpFPALU, isa.OpFPMult, isa.OpFPDiv:
			s.src1 = pickSrc(true)
			s.src2 = pickSrc(true)
			s.dest = nextFP
			nextFP = 32 + (nextFP-32+1)%32
			fpRing = append(fpRing, s.dest)
		default: // integer ALU/mult/div
			s.src1 = pickSrc(false)
			s.src2 = pickSrc(false)
			s.dest = nextInt
			nextInt = (nextInt + 1) % 32
			intRing = append(intRing, s.dest)
		}
	}
	return b
}

// sampleClass draws an op class from the mix. Function bodies exclude
// control (calls/branches) so they remain leaves.
func (g *Generator) sampleClass(rnd *rng, m Mix, allowCtrl bool) isa.OpClass {
	type wc struct {
		w float64
		c isa.OpClass
	}
	ws := []wc{
		{m.IntALU, isa.OpIntALU}, {m.IntMult, isa.OpIntMult}, {m.IntDiv, isa.OpIntDiv},
		{m.FPALU, isa.OpFPALU}, {m.FPMult, isa.OpFPMult}, {m.FPDiv, isa.OpFPDiv},
		{m.Load, isa.OpLoad}, {m.Store, isa.OpStore},
	}
	if allowCtrl {
		ws = append(ws, wc{m.Branch, isa.OpBranch}, wc{m.Call, isa.OpCall})
	}
	var total float64
	for _, w := range ws {
		total += w.w
	}
	x := rnd.float() * total
	for _, w := range ws {
		if x < w.w {
			return w.c
		}
		x -= w.w
	}
	return isa.OpIntALU
}

// Next returns the next correct-path micro-op. The stream is unbounded;
// the caller decides when to stop.
func (g *Generator) Next() isa.MicroOp {
	if !g.hasPending {
		g.pending = g.nextInternal()
		g.hasPending = true
	}
	op := g.pending
	g.pending = g.nextInternal()
	return op
}

// PeekPC returns the PC of the next correct-path micro-op without
// consuming it — the pipeline's fetch probe address.
func (g *Generator) PeekPC() uint64 {
	if !g.hasPending {
		g.pending = g.nextInternal()
		g.hasPending = true
	}
	return g.pending.PC
}

func (g *Generator) nextInternal() isa.MicroOp {
	pp := &g.phases[g.phaseIdx]
	var op isa.MicroOp

	if g.inFunc {
		fb := &pp.funcs[g.funcIdx]
		s := &fb.slots[g.funcSlot]
		op = g.materialize(pp, fb, g.funcSlot, s)
		if s.class == isa.OpReturn {
			op.Taken = true
			op.Target = g.retPC
			g.inFunc = false
		} else {
			g.funcSlot++
		}
		g.account(&op)
		return op
	}

	lb := &pp.loops[g.loopIdx]
	// Skip slots jumped over by a taken forward branch.
	for g.skip > 0 {
		g.skip--
		g.slotIdx++
	}
	if g.slotIdx >= len(lb.slots) {
		// Shouldn't happen (last slot is the loop branch) but guard:
		g.slotIdx = len(lb.slots) - 1
	}
	s := &lb.slots[g.slotIdx]
	op = g.materialize(pp, lb, g.slotIdx, s)

	switch s.class {
	case isa.OpBranch:
		if s.patt == patLoop {
			lastIter := g.iter >= pp.spec.LoopIters-1
			op.Taken = !lastIter
			op.Target = lb.base // back edge
			if lastIter {
				g.iter = 0
				g.loopIdx = (g.loopIdx + 1) % len(pp.loops)
			} else {
				g.iter++
			}
			g.slotIdx = 0
		} else {
			taken := false
			switch s.patt {
			case patPeriodic:
				taken = s.count%uint64(s.period) != 0
			case patRandom:
				taken = g.rnd.bernoulli(s.bias)
			}
			op.Taken = taken
			op.Target = op.PC + 4 + uint64(s.skip)*4
			if taken {
				g.skip = s.skip
			}
			g.slotIdx++
		}
	case isa.OpCall:
		op.Taken = true
		op.Target = pp.funcs[s.callee].base
		g.inFunc = true
		g.funcIdx = s.callee
		g.funcSlot = 0
		g.retPC = op.PC + 4
		g.slotIdx++
	default:
		g.slotIdx++
	}
	g.account(&op)
	return op
}

// materialize fills in the dynamic fields of a slot execution.
func (g *Generator) materialize(pp *phaseProgram, b *body, idx int, s *slot) isa.MicroOp {
	pc := b.base + uint64(idx)*4
	n := s.count
	s.count = n + 1
	op := isa.MicroOp{
		Seq:   g.seq,
		PC:    pc,
		Class: s.class,
		Src1:  s.src1,
		Src2:  s.src2,
		Dest:  s.dest,
	}
	g.seq++
	if s.class.IsMem() {
		if s.stream {
			span := pp.spec.WorkingSet
			op.Addr = pp.dataBase + (uint64(idx)*4096+n*s.stride)%span
		} else {
			op.Addr = pp.dataBase + (g.rnd.next()%pp.spec.WorkingSet)&^7
		}
	}
	return op
}

// account advances phase bookkeeping after emitting an op.
func (g *Generator) account(op *isa.MicroOp) {
	g.phaseInsts++
	if g.phaseInsts >= g.phases[g.phaseIdx].spec.Insts && !g.inFunc {
		// Switch phases only at a function-return-free point.
		g.phaseInsts = 0
		g.phaseIdx = (g.phaseIdx + 1) % len(g.phases)
		g.loopIdx, g.iter, g.slotIdx, g.skip = 0, 0, 0, 0
	}
}

// Clone returns an independent deep copy of the generator: the same
// profile and static code structure, positioned at the same dynamic point
// with identical RNG state, so the clone emits exactly the op stream the
// original would have. Slot execution counts (which drive periodic branch
// patterns and streaming address progressions) are part of the dynamic
// state and are copied, which is why the static bodies must be deep-copied
// rather than shared.
func (g *Generator) Clone() *Generator {
	q := *g
	rnd, wpRnd := *g.rnd, *g.wpRnd
	q.rnd, q.wpRnd = &rnd, &wpRnd
	q.phases = append(g.phases[:0:0], g.phases...)
	for i := range q.phases {
		pp := &q.phases[i]
		pp.loops = append(pp.loops[:0:0], pp.loops...)
		for j := range pp.loops {
			pp.loops[j].slots = append(pp.loops[j].slots[:0:0], pp.loops[j].slots...)
		}
		pp.funcs = append(pp.funcs[:0:0], pp.funcs...)
		for j := range pp.funcs {
			pp.funcs[j].slots = append(pp.funcs[j].slots[:0:0], pp.funcs[j].slots...)
		}
	}
	return &q
}

// PhaseIndex returns the index of the phase the generator is currently
// emitting. Surrogate execution keys its calibrations on this: a phase
// switch invalidates every activity statistic sampled under the old mix.
func (g *Generator) PhaseIndex() int { return g.phaseIdx }

// PhaseInstsRemaining returns how many more instructions the current phase
// visit will emit before the generator switches phases (an upper bound: a
// visit inside a called function defers the switch to the next return-free
// point). Macro-stepped replay uses it to drop back to cycle-exact
// simulation before a phase transition.
func (g *Generator) PhaseInstsRemaining() uint64 {
	spec := g.phases[g.phaseIdx].spec.Insts
	if g.phaseInsts >= spec {
		return 0
	}
	return spec - g.phaseInsts
}

// Skip credits n correct-path micro-ops to the phase accounting without
// emitting them, so phase transitions still trigger at the right totals.
// Surrogate replay uses it to keep the instruction stream aligned with the
// analytically simulated instruction count.
//
// The program position — loop/function cursor, branch history, RNG draws,
// the pending lookahead — is deliberately left untouched. A phase's
// instruction stream is statistically stationary, so resuming at the
// pre-skip position is as representative as fast-forwarding; crucially it
// is also CONSISTENT with the microarchitectural state frozen through the
// replay leg. Fast-forwarding the position would make the caches and
// predictors face an arbitrary point of the loop-set sweep they never
// observed, injecting a miss storm after every replay splice that real
// execution does not have (and would be re-measured as if it were
// steady-state behaviour by the next calibration window). Skipping within
// one phase is O(1); the rare skip that would cross a phase boundary
// falls back to emitting ops so the switch happens at the same
// return-free point it would in real execution.
func (g *Generator) Skip(n uint64) {
	if g.phaseInsts+n < g.phases[g.phaseIdx].spec.Insts {
		g.phaseInsts += n
		return
	}
	if n > 0 && g.hasPending {
		g.hasPending = false
		n--
	}
	for ; n > 0; n-- {
		g.nextInternal()
	}
}

// WrongPath synthesizes a wrong-path micro-op at the given PC: the ops a
// real pipeline would fetch and partially execute past a mispredicted
// branch. They carry the current phase's mix (so their cache/ALU pollution
// is representative) but are always non-control, and the generator's
// correct-path state is untouched.
func (g *Generator) WrongPath(pc uint64) isa.MicroOp {
	ph := g.phases[g.phaseIdx].spec
	cls := g.sampleClass(g.wpRnd, ph.Mix, false)
	op := isa.MicroOp{
		Seq:   ^uint64(0), // never commits
		PC:    pc,
		Class: cls,
		Src1:  int16(g.wpRnd.intn(32)),
		Src2:  isa.RegNone,
		Dest:  isa.RegNone,
	}
	if cls.IsMem() {
		op.Addr = g.phases[g.phaseIdx].dataBase + (g.wpRnd.next()%ph.WorkingSet)&^7
		if cls == isa.OpStore {
			// Wrong-path stores never write the cache; model them
			// as loads for pollution purposes.
			op.Class = isa.OpLoad
		}
		op.Dest = int16(g.wpRnd.intn(32))
	} else if cls.IsFP() {
		op.Src1 = int16(32 + g.wpRnd.intn(32))
		op.Dest = int16(32 + g.wpRnd.intn(32))
	} else {
		op.Dest = int16(g.wpRnd.intn(32))
	}
	return op
}

// CodeFootprint returns the total static code size in bytes across phases
// (loops plus functions) — the I-cache pressure of the profile.
func (g *Generator) CodeFootprint() uint64 {
	var total uint64
	for _, pp := range g.phases {
		for _, b := range pp.loops {
			total += uint64(len(b.slots)) * 4
		}
		for _, b := range pp.funcs {
			total += uint64(len(b.slots)) * 4
		}
	}
	return total
}
