package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func testProfile() Profile {
	return Profile{
		Name: "test",
		Seed: 42,
		Phases: []Phase{{
			Insts:            200_000,
			Mix:              Mix{IntALU: 40, Load: 20, Store: 10, Branch: 12, FPALU: 5, Call: 1},
			DepMean:          4,
			LoopIters:        50,
			BodySize:         40,
			NumLoops:         8,
			BranchRandomFrac: 0.2,
			BranchBias:       0.5,
			WorkingSet:       1 << 16,
			StreamFrac:       0.6,
		}},
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	good := testProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	mutate := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Phases = nil },
		func(p *Profile) { p.Phases[0].Insts = 0 },
		func(p *Profile) { p.Phases[0].Mix = Mix{} },
		func(p *Profile) { p.Phases[0].BodySize = 2 },
		func(p *Profile) { p.Phases[0].NumLoops = 0 },
		func(p *Profile) { p.Phases[0].LoopIters = 0 },
		func(p *Profile) { p.Phases[0].DepMean = 0.5 },
		func(p *Profile) { p.Phases[0].BranchRandomFrac = 1.5 },
		func(p *Profile) { p.Phases[0].WorkingSet = 0 },
	}
	for i, m := range mutate {
		p := testProfile()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: invalid profile accepted", i)
		}
		if _, err := NewGenerator(p); err == nil {
			t.Errorf("mutation %d: NewGenerator accepted invalid profile", i)
		}
	}
}

func TestDeterministicStreams(t *testing.T) {
	g1, err := NewGenerator(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(testProfile())
	for i := 0; i < 50_000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	p2 := testProfile()
	p2.Seed = 43
	g1, _ := NewGenerator(testProfile())
	g2, _ := NewGenerator(p2)
	same := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if g1.Next().Class == g2.Next().Class {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical class streams")
	}
}

func TestMixApproximatelyRealized(t *testing.T) {
	g, _ := NewGenerator(testProfile())
	counts := make(map[isa.OpClass]int)
	const n = 300_000
	for i := 0; i < n; i++ {
		counts[g.Next().Class]++
	}
	frac := func(c isa.OpClass) float64 { return float64(counts[c]) / n }
	// Loads requested at 20/88 ~ 0.227 of sampled slots; loop-end
	// branches, returns and skipped slots perturb this, so use wide
	// bounds — the mix must be *recognizable*, not exact.
	if f := frac(isa.OpLoad); f < 0.10 || f > 0.35 {
		t.Errorf("load fraction = %v, want ~0.15-0.30", f)
	}
	if f := frac(isa.OpIntALU); f < 0.25 || f > 0.60 {
		t.Errorf("intalu fraction = %v", f)
	}
	if f := frac(isa.OpBranch); f < 0.05 || f > 0.30 {
		t.Errorf("branch fraction = %v", f)
	}
	if counts[isa.OpCall] == 0 || counts[isa.OpReturn] == 0 {
		t.Error("no calls or returns generated")
	}
	if counts[isa.OpCall] != counts[isa.OpReturn] {
		// Allow an in-flight call at the cut.
		if d := counts[isa.OpCall] - counts[isa.OpReturn]; d < 0 || d > 1 {
			t.Errorf("calls %d vs returns %d", counts[isa.OpCall], counts[isa.OpReturn])
		}
	}
}

func TestControlFlowConsistency(t *testing.T) {
	g, _ := NewGenerator(testProfile())
	var prev isa.MicroOp
	havePrev := false
	teleports := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		op := g.Next()
		if havePrev {
			if prev.NextPC() != op.PC {
				teleports++
			}
		}
		if op.Class.IsCtrl() && op.Class != isa.OpBranch && !op.Taken {
			t.Fatalf("unconditional control not taken: %+v", op)
		}
		if op.Class == isa.OpBranch && op.Taken && op.Target == 0 {
			t.Fatalf("taken branch without target: %+v", op)
		}
		prev, havePrev = op, true
	}
	// Teleports happen only at loop-set wrap and phase switches — rare.
	if teleports > n/1000 {
		t.Errorf("%d control-flow teleports in %d ops", teleports, n)
	}
}

func TestReturnsMatchCallSites(t *testing.T) {
	g, _ := NewGenerator(testProfile())
	var callRet []uint64
	for i := 0; i < 200_000; i++ {
		op := g.Next()
		if op.Class == isa.OpCall {
			callRet = append(callRet, op.PC+4)
		}
		if op.Class == isa.OpReturn {
			if len(callRet) == 0 {
				t.Fatal("return without call")
			}
			want := callRet[len(callRet)-1]
			callRet = callRet[:len(callRet)-1]
			if op.Target != want {
				t.Fatalf("return to %#x, want %#x", op.Target, want)
			}
		}
	}
}

func TestMemoryAddressesWithinWorkingSet(t *testing.T) {
	g, _ := NewGenerator(testProfile())
	ws := testProfile().Phases[0].WorkingSet
	for i := 0; i < 100_000; i++ {
		op := g.Next()
		if op.Class.IsMem() {
			if op.Addr < dataBase || op.Addr >= dataBase+0x0800_0000 {
				t.Fatalf("address %#x outside data region", op.Addr)
			}
			off := op.Addr - dataBase
			if off >= ws+4096*uint64(testProfile().Phases[0].BodySize) {
				t.Fatalf("address offset %#x far outside working set %#x", off, ws)
			}
		}
	}
}

func TestSequenceNumbersMonotone(t *testing.T) {
	g, _ := NewGenerator(testProfile())
	for i := uint64(0); i < 10_000; i++ {
		if op := g.Next(); op.Seq != i {
			t.Fatalf("seq = %d at position %d", op.Seq, i)
		}
	}
}

func TestWrongPathOpsAreNonControlAndDoNotPerturb(t *testing.T) {
	g, _ := NewGenerator(testProfile())
	for i := 0; i < 1000; i++ {
		g.Next()
	}
	// Interleave wrong-path generation with a reference stream.
	gRef, _ := NewGenerator(testProfile())
	for i := 0; i < 1000; i++ {
		gRef.Next()
	}
	for i := 0; i < 5000; i++ {
		wp := g.WrongPath(0x9000_0000 + uint64(i)*4)
		if wp.Class.IsCtrl() {
			t.Fatalf("wrong-path control op: %v", wp.Class)
		}
		if wp.Class == isa.OpStore {
			t.Fatal("wrong-path store must be converted to load")
		}
		a, b := g.Next(), gRef.Next()
		if a != b {
			t.Fatalf("wrong-path generation perturbed correct path at %d", i)
		}
	}
}

func TestPhaseSwitching(t *testing.T) {
	p := Profile{
		Name: "phased",
		Seed: 7,
		Phases: []Phase{
			{Insts: 5000, Mix: Mix{IntALU: 100}, DepMean: 3, LoopIters: 10,
				BodySize: 20, NumLoops: 2, WorkingSet: 4096},
			{Insts: 5000, Mix: Mix{FPALU: 100}, DepMean: 3, LoopIters: 10,
				BodySize: 20, NumLoops: 2, WorkingSet: 4096},
		},
	}
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	var intOps, fpOps [4]int // per quarter of the stream
	const n = 20_000
	for i := 0; i < n; i++ {
		op := g.Next()
		q := i / (n / 4)
		if op.Class == isa.OpIntALU {
			intOps[q]++
		}
		if op.Class == isa.OpFPALU {
			fpOps[q]++
		}
	}
	// Quarters 0 and 2 are int-heavy; 1 and 3 FP-heavy.
	if !(intOps[0] > fpOps[0] && fpOps[1] > intOps[1] &&
		intOps[2] > fpOps[2] && fpOps[3] > intOps[3]) {
		t.Errorf("phases not alternating: int=%v fp=%v", intOps, fpOps)
	}
}

func TestCodeFootprint(t *testing.T) {
	g, _ := NewGenerator(testProfile())
	want := uint64(8*40+numFuncs*funcBodySize) * 4
	if got := g.CodeFootprint(); got != want {
		t.Errorf("footprint = %d, want %d", got, want)
	}
}

func TestStreamingAddressesHaveSpatialLocality(t *testing.T) {
	p := testProfile()
	p.Phases[0].StreamFrac = 1.0
	g, _ := NewGenerator(p)
	// Track per-PC address deltas: for streaming slots they must equal
	// the stride.
	last := make(map[uint64]uint64)
	strided, total := 0, 0
	for i := 0; i < 100_000; i++ {
		op := g.Next()
		if !op.Class.IsMem() {
			continue
		}
		if prev, ok := last[op.PC]; ok {
			total++
			d := int64(op.Addr) - int64(prev)
			if d == 8 || d < 0 { // stride or working-set wrap
				strided++
			}
		}
		last[op.PC] = op.Addr
	}
	if total == 0 {
		t.Fatal("no repeated memory slots observed")
	}
	if f := float64(strided) / float64(total); f < 0.95 {
		t.Errorf("strided fraction = %v, want ~1.0", f)
	}
}

func TestRNGBasics(t *testing.T) {
	r := newRNG(0) // zero seed must be remapped
	if r.state == 0 {
		t.Error("zero seed not remapped")
	}
	var mean float64
	const n = 10_000
	for i := 0; i < n; i++ {
		f := r.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float out of range: %v", f)
		}
		mean += f
	}
	mean /= n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("uniform mean = %v", mean)
	}
	g := newRNG(9)
	m := 0.0
	for i := 0; i < n; i++ {
		m += float64(g.geometric(4))
	}
	if m /= n; math.Abs(m-4) > 0.5 {
		t.Errorf("geometric mean = %v, want ~4", m)
	}
	if g.geometric(0.5) != 1 {
		t.Error("geometric with mean<1 should return 1")
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("intn(0) did not panic")
		}
	}()
	newRNG(1).intn(0)
}

// Property: any structurally valid random profile produces well-formed
// micro-ops — PCs inside the code regions, word-aligned, register indices
// in range, memory addresses 8-byte aligned (random) or stride-aligned
// (streaming), and control ops with coherent targets.
func TestGeneratorWellFormedProperty(t *testing.T) {
	f := func(seed uint64, body8, loops8, iters8 uint8, dep float64) bool {
		p := Profile{
			Name: "prop",
			Seed: seed,
			Phases: []Phase{{
				Insts:            10_000,
				Mix:              Mix{IntALU: 30, FPALU: 8, Load: 15, Store: 8, Branch: 10, Call: 1},
				DepMean:          1 + mod1(dep)*15,
				LoopIters:        int(iters8%60) + 2,
				BodySize:         int(body8%96) + 8,
				NumLoops:         int(loops8%20) + 1,
				BranchRandomFrac: 0.3,
				BranchBias:       0.5,
				WorkingSet:       1 << 16,
				StreamFrac:       0.5,
			}},
		}
		g, err := NewGenerator(p)
		if err != nil {
			return false
		}
		for i := 0; i < 20_000; i++ {
			op := g.Next()
			if op.PC%4 != 0 {
				return false
			}
			inLoops := op.PC >= codeBase && op.PC < codeBase+phaseSpan
			inFuncs := op.PC >= funcRegion && op.PC < funcRegion+phaseSpan
			if !inLoops && !inFuncs {
				return false
			}
			for _, r := range []int16{op.Src1, op.Src2, op.Dest} {
				if r != -1 && (r < 0 || r >= 64) {
					return false
				}
			}
			if op.Class.IsMem() && op.Addr == 0 {
				return false
			}
			if op.Class.IsCtrl() && op.Class != isa.OpBranch && !op.Taken {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// mod1 maps any float (incl. NaN/Inf) into [0,1).
func mod1(x float64) float64 {
	if x != x || x > 1e18 || x < -1e18 { // NaN or huge
		return 0.5
	}
	if x < 0 {
		x = -x
	}
	return x - float64(uint64(x))
}
