package workload

import (
	"bytes"
	"testing"

	"repro/internal/isa"
)

func TestTraceRoundTrip(t *testing.T) {
	g, err := NewGenerator(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	const n = 50_000
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, n); err != nil {
		t.Fatal(err)
	}
	ts, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != n {
		t.Fatalf("trace len = %d, want %d", ts.Len(), n)
	}
	// Replay must be op-for-op identical to a fresh generator.
	ref, _ := NewGenerator(testProfile())
	for i := 0; i < n; i++ {
		want := ref.Next()
		if ts.PeekPC() != want.PC {
			t.Fatalf("op %d: PeekPC %#x, want %#x", i, ts.PeekPC(), want.PC)
		}
		got := ts.Next()
		if got != want {
			t.Fatalf("op %d differs:\n got %+v\nwant %+v", i, got, want)
		}
	}
	// Wrap-around: sequence numbers keep increasing, ops repeat.
	first := ts.Next()
	if first.Seq != n {
		t.Errorf("wrapped seq = %d, want %d", first.Seq, n)
	}
	refWrap, _ := NewGenerator(testProfile())
	want := refWrap.Next()
	want.Seq = n
	if first != want {
		t.Errorf("wrapped op differs: %+v vs %+v", first, want)
	}
}

func TestTraceCompactness(t *testing.T) {
	g, _ := NewGenerator(testProfile())
	const n = 20_000
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, n); err != nil {
		t.Fatal(err)
	}
	if perOp := float64(buf.Len()) / n; perOp > 12 {
		t.Errorf("trace uses %.1f bytes/op, want compact (< 12)", perOp)
	}
}

func TestTraceWrongPathSynthesis(t *testing.T) {
	g, _ := NewGenerator(testProfile())
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, 10_000); err != nil {
		t.Fatal(err)
	}
	ts, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sawLoad := false
	for i := 0; i < 2000; i++ {
		wp := ts.WrongPath(0x9000_0000)
		if wp.Class.IsCtrl() || wp.Class == isa.OpStore {
			t.Fatalf("wrong-path class %v", wp.Class)
		}
		if wp.Class == isa.OpLoad {
			sawLoad = true
			if wp.Addr == 0 {
				t.Fatal("wrong-path load without address")
			}
		}
	}
	if !sawLoad {
		t.Error("wrong-path synthesis never produced a load despite loads in trace")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(make([]byte, 16))); err == nil {
		t.Error("zero magic accepted")
	}
	// Truncated body.
	g, _ := NewGenerator(testProfile())
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g, 1000); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadTrace(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40), -9e15} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip %d -> %d", v, got)
		}
	}
}
