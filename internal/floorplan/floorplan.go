// Package floorplan describes the physical layout abstraction behind the
// paper's localized thermal model (Section 4): the set of architectural
// blocks tracked per-structure, their die areas, and the derivation of
// lumped thermal resistances and capacitances from silicon material
// constants (Section 4.3).
//
// The paper derives areas from an MIPS R10000 die photo scaled two process
// generations to 0.18 um; the exact per-structure values used here are the
// reconstruction documented in DESIGN.md.
package floorplan

import (
	"fmt"
	"math"
)

// BlockID identifies one architectural block tracked by the thermal model.
type BlockID int

// The seven structures studied in the paper (Section 5.2) plus the
// whole-chip node used for package-level modeling.
const (
	LSQ BlockID = iota
	Window
	RegFile
	BPred
	DCache
	IntExec
	FPExec
	NumBlocks // number of per-structure blocks (excludes Chip)

	// Chip is the whole-die node used for the chip-wide package model
	// (heat spreader + heatsink, Table 3's final row).
	Chip BlockID = NumBlocks
)

var blockNames = [...]string{
	LSQ:     "LSQ",
	Window:  "window",
	RegFile: "regfile",
	BPred:   "bpred",
	DCache:  "dcache",
	IntExec: "intexec",
	FPExec:  "fpexec",
	Chip:    "chip",
}

// String returns the block's short name as used in the paper's tables.
// Tiled IDs (see Tile) render as "c<core>.<name>", e.g. "c2.fpexec".
func (b BlockID) String() string {
	if b >= 0 && int(b) < len(blockNames) {
		return blockNames[b]
	}
	if b >= CoreStride {
		local := LocalOf(b)
		if int(local) < len(blockNames) {
			return fmt.Sprintf("c%d.%s", CoreOf(b), blockNames[local])
		}
	}
	return fmt.Sprintf("block(%d)", int(b))
}

// Blocks returns the per-structure block IDs in table order.
func Blocks() []BlockID {
	ids := make([]BlockID, NumBlocks)
	for i := range ids {
		ids[i] = BlockID(i)
	}
	return ids
}

// Silicon material and geometry constants (Section 4.3). The paper assumes
// a thinned wafer of 0.1 mm and derives per-block values from published
// silicon data [12]; Rho/Cv below are the reconstruction that reproduces the
// legible Table 3 entries (see DESIGN.md).
const (
	// WaferThickness is the thinned die thickness t in meters.
	WaferThickness = 0.1e-3
	// SiliconResistivity rho is the effective thermal resistivity of the
	// die stack in m*K/W.
	SiliconResistivity = 0.01
	// SiliconVolumetricHeatCapacity cv in J/(m^3*K).
	SiliconVolumetricHeatCapacity = 1.75e6
)

// Block carries the physical parameters of one lumped node.
type Block struct {
	ID BlockID
	// Area is the block die area in m^2.
	Area float64
	// PeakPower is the calibrated Wattch peak power in W (Table 3).
	PeakPower float64
	// R is the normal (die-to-heatsink) thermal resistance in K/W.
	R float64
	// C is the thermal capacitance in J/K.
	C float64
	// Neighbors lists physically adjacent blocks (for the tangential
	// resistance extension, Figure 3B).
	Neighbors []BlockID
}

// RC returns the block thermal time constant in seconds.
func (b *Block) RC() float64 { return b.R * b.C }

// NormalResistance returns the first-principles normal thermal resistance
// R = rho*t/A for a block of the given area (Equation preceding Eq. 4).
func NormalResistance(area float64) float64 {
	return SiliconResistivity * WaferThickness / area
}

// Capacitance returns the first-principles thermal capacitance
// C = cv * t * A.
func Capacitance(area float64) float64 {
	return SiliconVolumetricHeatCapacity * WaferThickness * area
}

// TangentialResistance evaluates the paper's Equation 4: the lateral
// resistance for heat flowing uniformly and circularly outward from the
// center of a block of the given area through the die of thickness t,
// integrated from an inner radius r0 out to the block boundary:
//
//	R_tan = integral( rho/(2*pi*r*t) dr ) = rho/(2*pi*t) * ln(r1/r0)
//
// where r1 = sqrt(A/pi). The paper concludes R_tan is orders of magnitude
// larger than R_nor and ignores it in the simplified model (Figure 3C);
// thermal.Network supports it as an extension so that conclusion can be
// checked (BenchmarkAblationTangential).
func TangentialResistance(area float64) float64 {
	r1 := math.Sqrt(area / math.Pi)
	r0 := r1 / 100 // innermost 1% radius; the log keeps this insensitive
	return SiliconResistivity / (2 * math.Pi * WaferThickness) * math.Log(r1/r0)
}

// Default returns the reconstruction of Table 3: the seven per-structure
// blocks with their areas, calibrated peak powers and lumped R/C values,
// plus adjacency for the tangential extension. The Neighbors lists are the
// derived adjacency of DefaultLayout (layout_test enforces the match).
//
// R and C are stated explicitly (not recomputed from area) because the
// paper's table itself carries rounded per-structure values whose RC
// constants differ between blocks; the explicit values match the two
// legible entries (window 81 us, bpred 49 us) and keep every block in the
// "tens to hundreds of microseconds" regime the paper reports.
func Default() []Block {
	return []Block{
		{ID: LSQ, Area: 5.0e-6, PeakPower: 6.5, R: 2.00, C: 6.00e-5,
			Neighbors: []BlockID{Window, RegFile, BPred}},
		{ID: Window, Area: 9.0e-6, PeakPower: 11.0, R: 1.20, C: 6.75e-5,
			Neighbors: []BlockID{LSQ, RegFile, IntExec, FPExec}},
		{ID: RegFile, Area: 2.5e-6, PeakPower: 4.5, R: 3.00, C: 2.00e-5,
			Neighbors: []BlockID{Window, LSQ, BPred}},
		{ID: BPred, Area: 3.5e-6, PeakPower: 5.5, R: 2.45, C: 2.00e-5,
			Neighbors: []BlockID{RegFile, LSQ, DCache}},
		{ID: DCache, Area: 1.0e-5, PeakPower: 13.0, R: 1.00, C: 1.80e-4,
			Neighbors: []BlockID{BPred}},
		{ID: IntExec, Area: 5.0e-6, PeakPower: 6.8, R: 2.00, C: 5.00e-5,
			Neighbors: []BlockID{Window, FPExec}},
		{ID: FPExec, Area: 5.0e-6, PeakPower: 7.0, R: 2.00, C: 7.00e-5,
			Neighbors: []BlockID{Window, IntExec}},
	}
}

// ChipBlock returns the whole-chip node of Table 3's final row: package
// thermal resistance 0.34 K/W (Table 4 caption) and heatsink capacitance
// 60 J/K (Section 4.1), giving the ~minute-scale chip RC the paper cites.
func ChipBlock() Block {
	return Block{ID: Chip, Area: 3.0e-4, PeakPower: 55, R: 0.34, C: 60}
}

// FirstPrinciples returns blocks whose R and C are derived purely from
// area via NormalResistance/Capacitance, for studying the sensitivity of
// the model to the lumped-value reconstruction.
func FirstPrinciples() []Block {
	bs := Default()
	for i := range bs {
		bs[i].R = NormalResistance(bs[i].Area)
		bs[i].C = Capacitance(bs[i].Area)
	}
	return bs
}
