package floorplan

import (
	"math"
	"testing"
)

func TestBlockNames(t *testing.T) {
	want := map[BlockID]string{
		LSQ: "LSQ", Window: "window", RegFile: "regfile", BPred: "bpred",
		DCache: "dcache", IntExec: "intexec", FPExec: "fpexec", Chip: "chip",
	}
	for id, name := range want {
		if id.String() != name {
			t.Errorf("%d.String() = %q, want %q", id, id.String(), name)
		}
	}
	if got := BlockID(99).String(); got != "c12.bpred" {
		t.Errorf("tiled block name = %q, want c12.bpred", got)
	}
	if got := BlockID(-3).String(); got != "block(-3)" {
		t.Errorf("unknown block name = %q", got)
	}
}

func TestBlocksOrder(t *testing.T) {
	bs := Blocks()
	if len(bs) != int(NumBlocks) {
		t.Fatalf("Blocks() len = %d, want %d", len(bs), NumBlocks)
	}
	for i, b := range bs {
		if int(b) != i {
			t.Errorf("Blocks()[%d] = %v", i, b)
		}
	}
}

func TestDefaultTableValues(t *testing.T) {
	bs := Default()
	if len(bs) != int(NumBlocks) {
		t.Fatalf("Default() has %d blocks, want %d", len(bs), NumBlocks)
	}
	// The two legible Table 3 RC entries must be matched exactly.
	rc := map[BlockID]float64{Window: 81e-6, BPred: 49e-6}
	for _, b := range bs {
		if want, ok := rc[b.ID]; ok {
			if got := b.RC(); math.Abs(got-want) > 1e-9 {
				t.Errorf("%v RC = %v, want %v", b.ID, got, want)
			}
		}
		// Every block in the tens-to-hundreds-of-microseconds regime.
		if got := b.RC(); got < 10e-6 || got > 1e-3 {
			t.Errorf("%v RC = %v outside [10us, 1ms]", b.ID, got)
		}
		if b.Area <= 0 || b.PeakPower <= 0 || b.R <= 0 || b.C <= 0 {
			t.Errorf("%v has non-positive parameters: %+v", b.ID, b)
		}
	}
}

func TestDefaultNeighborsSymmetric(t *testing.T) {
	bs := Default()
	adj := make(map[BlockID]map[BlockID]bool)
	for _, b := range bs {
		adj[b.ID] = make(map[BlockID]bool)
		for _, nb := range b.Neighbors {
			adj[b.ID][nb] = true
		}
	}
	for _, b := range bs {
		for _, nb := range b.Neighbors {
			if !adj[nb][b.ID] {
				t.Errorf("adjacency not symmetric: %v->%v", b.ID, nb)
			}
		}
	}
}

func TestChipBlock(t *testing.T) {
	c := ChipBlock()
	if c.R != 0.34 || c.C != 60 {
		t.Errorf("chip R/C = %v/%v, want 0.34/60", c.R, c.C)
	}
	// The paper's Section 4.1 sanity check: ~minute-scale time constant.
	if rc := c.RC(); rc < 10 || rc > 60 {
		t.Errorf("chip RC = %v s, want tens of seconds", rc)
	}
}

func TestNormalResistanceScalesInverselyWithArea(t *testing.T) {
	r1 := NormalResistance(1e-6)
	r2 := NormalResistance(2e-6)
	if math.Abs(r1/r2-2) > 1e-12 {
		t.Errorf("R(A)/R(2A) = %v, want 2", r1/r2)
	}
	// rho*t/A with the package constants.
	want := SiliconResistivity * WaferThickness / 1e-6
	if math.Abs(r1-want) > 1e-12 {
		t.Errorf("R(1e-6) = %v, want %v", r1, want)
	}
}

func TestCapacitanceScalesWithArea(t *testing.T) {
	c1 := Capacitance(1e-6)
	c2 := Capacitance(3e-6)
	if math.Abs(c2/c1-3) > 1e-12 {
		t.Errorf("C(3A)/C(A) = %v, want 3", c2/c1)
	}
}

// Section 4.3's conclusion: the tangential resistance is orders of magnitude
// larger than the normal resistance for every modeled block, so lateral
// coupling is ignorable to first order.
func TestTangentialDominatesNormal(t *testing.T) {
	for _, b := range Default() {
		rt := TangentialResistance(b.Area)
		if rt < 10*b.R {
			t.Errorf("%v: Rtan=%v not >> Rnor=%v", b.ID, rt, b.R)
		}
	}
}

func TestFirstPrinciplesConsistent(t *testing.T) {
	for _, b := range FirstPrinciples() {
		if math.Abs(b.R-NormalResistance(b.Area)) > 1e-12 {
			t.Errorf("%v first-principles R mismatch", b.ID)
		}
		if math.Abs(b.C-Capacitance(b.Area)) > 1e-12 {
			t.Errorf("%v first-principles C mismatch", b.ID)
		}
		// The first-principles RC is rho*cv*t^2 regardless of area.
		want := SiliconResistivity * SiliconVolumetricHeatCapacity *
			WaferThickness * WaferThickness
		if math.Abs(b.RC()-want) > 1e-12 {
			t.Errorf("%v first-principles RC = %v, want %v", b.ID, b.RC(), want)
		}
	}
}

func TestDefaultLayoutValidates(t *testing.T) {
	l := DefaultLayout()
	if err := l.Validate(Default(), 0.01); err != nil {
		t.Fatal(err)
	}
}

// The adjacency derived from the placed rectangles must match the
// hand-written Neighbors lists used by the thermal model.
func TestLayoutAdjacencyMatchesNeighbors(t *testing.T) {
	adj := DefaultLayout().Adjacency(0.5e-3)
	for _, b := range Default() {
		want := map[BlockID]bool{}
		for _, nb := range b.Neighbors {
			want[nb] = true
		}
		got := map[BlockID]bool{}
		for _, nb := range adj[b.ID] {
			got[nb] = true
		}
		for nb := range want {
			if !got[nb] {
				t.Errorf("%v: layout lacks neighbor %v", b.ID, nb)
			}
		}
		for nb := range got {
			if !want[nb] {
				t.Errorf("%v: layout has extra neighbor %v", b.ID, nb)
			}
		}
	}
}

func TestSharedEdgeGeometry(t *testing.T) {
	a := Rect{X: 0, Y: 0, W: 1, H: 1}
	b := Rect{X: 1, Y: 0.5, W: 1, H: 1} // abuts on the right, half overlap
	if got := SharedEdge(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("shared edge = %v, want 0.5", got)
	}
	c := Rect{X: 1, Y: 1, W: 1, H: 1} // corner only
	if got := SharedEdge(a, c); got != 0 {
		t.Errorf("corner contact shared edge = %v, want 0", got)
	}
	d := Rect{X: 5, Y: 5, W: 1, H: 1} // disjoint
	if got := SharedEdge(a, d); got != 0 {
		t.Errorf("disjoint shared edge = %v", got)
	}
	e := Rect{X: 0.2, Y: 1, W: 0.5, H: 1} // abuts on top
	if got := SharedEdge(a, e); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("top shared edge = %v, want 0.5", got)
	}
}

func TestLayoutValidateCatchesDefects(t *testing.T) {
	l := DefaultLayout()
	// Remove a block.
	delete(l.Rects, LSQ)
	if err := l.Validate(Default(), 0.01); err == nil {
		t.Error("missing rectangle accepted")
	}
	// Wrong area.
	l = DefaultLayout()
	r := l.Rects[LSQ]
	r.W *= 2
	l.Rects[LSQ] = r
	if err := l.Validate(Default(), 0.01); err == nil {
		t.Error("wrong-area rectangle accepted")
	}
	// Overlap.
	l = DefaultLayout()
	r = l.Rects[LSQ]
	r.X = l.Rects[RegFile].X
	r.Y = l.Rects[RegFile].Y
	l.Rects[LSQ] = r
	if err := l.Validate(Default(), 0.5); err == nil {
		t.Error("overlapping rectangles accepted")
	}
}

func TestCenterDistancePositive(t *testing.T) {
	l := DefaultLayout()
	if d := l.CenterDistance(IntExec, DCache); d <= 0 || d > 10e-3 {
		t.Errorf("center distance = %v", d)
	}
	if d := l.CenterDistance(IntExec, IntExec); d != 0 {
		t.Errorf("self distance = %v", d)
	}
}
