package floorplan

import (
	"fmt"
	"math"
	"sort"
)

// This file adds the geometric layer under the lumped model: a 2D
// floorplan of block rectangles from which physical adjacency (the
// Neighbors lists driving the tangential-resistance extension) and
// center-to-center distances are *derived* rather than asserted. The
// paper's areas come from an MIPS R10000 die photo; the rectangle
// placement below is the corresponding reconstruction, laid out so that
// derived adjacency matches the hand-written lists in Default().

// Rect is an axis-aligned rectangle in meters.
type Rect struct {
	X, Y, W, H float64
}

// Area returns the rectangle area in m^2.
func (r Rect) Area() float64 { return r.W * r.H }

// Center returns the rectangle's center point.
func (r Rect) Center() (x, y float64) { return r.X + r.W/2, r.Y + r.H/2 }

// overlap1D returns the overlap length of [a0,a1) and [b0,b1).
func overlap1D(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// SharedEdge returns the length of the boundary shared by two rectangles
// (0 when they do not abut). Rectangles sharing only a corner return 0.
func SharedEdge(a, b Rect) float64 {
	const eps = 1e-9
	// Vertical shared edge: a's right against b's left or vice versa.
	if math.Abs(a.X+a.W-b.X) < eps || math.Abs(b.X+b.W-a.X) < eps {
		return overlap1D(a.Y, a.Y+a.H, b.Y, b.Y+b.H)
	}
	// Horizontal shared edge.
	if math.Abs(a.Y+a.H-b.Y) < eps || math.Abs(b.Y+b.H-a.Y) < eps {
		return overlap1D(a.X, a.X+a.W, b.X, b.X+b.W)
	}
	return 0
}

// Layout is a placed floorplan.
type Layout struct {
	Rects map[BlockID]Rect
}

// DefaultLayout returns the reconstructed placement. The die strip is
// (5 mm x 7.9 mm of tracked structures); widths are 1 or 2 "columns" of
// 2.5 mm so every block's area matches Table 3 exactly.
//
//	y (mm)
//	8.2 ┌──────────────┐
//	    │    dcache    │   5.0 x 2.0
//	6.2 ├──────┬╌╌╌╌╌╌╌┤   (right of dcache's lower lip: routing/dead space)
//	    │ bpred│       │   2.5 x 1.4
//	4.8 ├──────┤  LSQ  │   LSQ 2.5 x 2.0
//	    │regfil│       │   2.5 x 1.0
//	3.8 ├──────┴───────┤
//	    │    window    │   5.0 x 1.8
//	2.0 ├──────┬───────┤
//	    │intexe│fpexec │   2.5 x 2.0 each
//	0.0 └──────┴───────┘
//
// The geometry is authoritative: Default()'s Neighbors lists equal
// Adjacency(0.5mm) of this placement (enforced by tests).
func DefaultLayout() Layout {
	const mm = 1e-3
	r := map[BlockID]Rect{
		// Bottom row: the two execution clusters side by side.
		IntExec: {X: 0, Y: 0, W: 2.5 * mm, H: 2.0 * mm},
		FPExec:  {X: 2.5 * mm, Y: 0, W: 2.5 * mm, H: 2.0 * mm},
		// The window spans the die width above the execution units.
		Window: {X: 0, Y: 2.0 * mm, W: 5.0 * mm, H: 1.8 * mm},
		// Register file and LSQ side by side above the window.
		RegFile: {X: 0, Y: 3.8 * mm, W: 2.5 * mm, H: 1.0 * mm},
		LSQ:     {X: 2.5 * mm, Y: 3.8 * mm, W: 2.5 * mm, H: 2.0 * mm},
		// The branch predictor above the register file.
		BPred: {X: 0, Y: 4.8 * mm, W: 2.5 * mm, H: 1.4 * mm},
		// The data cache caps the strip (the sliver right of bpred's
		// top, above the LSQ, is routing/dead space).
		DCache: {X: 0, Y: 6.2 * mm, W: 5.0 * mm, H: 2.0 * mm},
	}
	return Layout{Rects: r}
}

// Adjacency derives each block's neighbor list from shared boundary
// length: blocks are neighbors when they abut with a shared edge of at
// least minEdge meters. Lists are sorted for determinism.
func (l Layout) Adjacency(minEdge float64) map[BlockID][]BlockID {
	ids := make([]BlockID, 0, len(l.Rects))
	for id := range l.Rects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make(map[BlockID][]BlockID, len(ids))
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			if SharedEdge(l.Rects[a], l.Rects[b]) >= minEdge {
				out[a] = append(out[a], b)
			}
		}
	}
	return out
}

// Validate checks a layout for overlaps and area consistency against the
// given block set (areas must match within tol fractionally).
func (l Layout) Validate(blocks []Block, tol float64) error {
	for _, b := range blocks {
		r, ok := l.Rects[b.ID]
		if !ok {
			return fmt.Errorf("floorplan: no rectangle for %v", b.ID)
		}
		if r.W <= 0 || r.H <= 0 {
			return fmt.Errorf("floorplan: degenerate rectangle for %v", b.ID)
		}
		if a := r.Area(); math.Abs(a-b.Area) > tol*b.Area {
			return fmt.Errorf("floorplan: %v area %.3e != table %.3e", b.ID, a, b.Area)
		}
	}
	// Pairwise overlap check.
	ids := make([]BlockID, 0, len(l.Rects))
	for id := range l.Rects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			ra, rb := l.Rects[a], l.Rects[b]
			ox := overlap1D(ra.X, ra.X+ra.W, rb.X, rb.X+rb.W)
			oy := overlap1D(ra.Y, ra.Y+ra.H, rb.Y, rb.Y+rb.H)
			if ox > 1e-9 && oy > 1e-9 {
				return fmt.Errorf("floorplan: %v overlaps %v", a, b)
			}
		}
	}
	return nil
}

// CenterDistance returns the center-to-center distance of two blocks in
// meters.
func (l Layout) CenterDistance(a, b BlockID) float64 {
	ax, ay := l.Rects[a].Center()
	bx, by := l.Rects[b].Center()
	return math.Hypot(ax-bx, ay-by)
}
