package floorplan

import (
	"reflect"
	"testing"
)

func TestTileOneMatchesDefault(t *testing.T) {
	if !reflect.DeepEqual(Tile(1), Default()) {
		t.Fatal("Tile(1) must be exactly the paper's single-core floorplan")
	}
}

func TestTileIDRoundTrip(t *testing.T) {
	for c := 0; c < 5; c++ {
		for _, b := range Blocks() {
			id := TileID(c, b)
			if CoreOf(id) != c || LocalOf(id) != b {
				t.Fatalf("TileID(%d,%v)=%v round-trips to core %d local %v",
					c, b, id, CoreOf(id), LocalOf(id))
			}
		}
	}
	if got := TileID(2, FPExec).String(); got != "c2.fpexec" {
		t.Errorf("tiled ID renders %q", got)
	}
}

// Block order must be core-major with the paper's order inside each core —
// the thermal network indexes blocks positionally, so sim code relies on
// index i meaning core i/NumBlocks, local block i%NumBlocks.
func TestTileBlockOrder(t *testing.T) {
	blocks := Tile(4)
	if len(blocks) != 4*int(NumBlocks) {
		t.Fatalf("Tile(4) has %d blocks", len(blocks))
	}
	for i, b := range blocks {
		c, local := i/int(NumBlocks), BlockID(i%int(NumBlocks))
		if b.ID != TileID(c, local) {
			t.Fatalf("block %d is %v, want %v", i, b.ID, TileID(c, local))
		}
		ref := Default()[local]
		if b.Area != ref.Area || b.PeakPower != ref.PeakPower || b.R != ref.R || b.C != ref.C {
			t.Errorf("block %v does not replicate %v's R/C/area/power", b.ID, local)
		}
	}
}

// Adjacency must be symmetric, including across core boundaries, and every
// cross-core pair must connect blocks of grid-adjacent cores.
func TestTileAdjacencySymmetric(t *testing.T) {
	for _, n := range []int{2, 4} {
		blocks := Tile(n)
		adj := make(map[BlockID]map[BlockID]bool, len(blocks))
		for _, b := range blocks {
			set := make(map[BlockID]bool, len(b.Neighbors))
			for _, nb := range b.Neighbors {
				set[nb] = true
			}
			adj[b.ID] = set
		}
		cross := 0
		cols := TileCols(n)
		for _, b := range blocks {
			for _, nb := range b.Neighbors {
				if !adj[nb][b.ID] {
					t.Fatalf("n=%d: %v lists %v but not vice versa", n, b.ID, nb)
				}
				ca, cb := CoreOf(b.ID), CoreOf(nb)
				if ca == cb {
					continue
				}
				cross++
				dx := ca%cols - cb%cols
				dy := ca/cols - cb/cols
				if dx*dx+dy*dy != 1 {
					t.Errorf("n=%d: cross-core edge %v-%v spans non-adjacent cores", n, b.ID, nb)
				}
			}
		}
		if cross == 0 {
			t.Errorf("n=%d: no cross-core adjacency derived", n)
		}
	}
}

// Specific cross-core abutments at the shared die edge must be present:
// horizontally, core 0's FPExec touches core 1's IntExec; vertically (in
// the 2x2 grid), core 0's DCache touches core 2's IntExec and FPExec.
func TestTileCrossCoreAbutments(t *testing.T) {
	has := func(blocks []Block, a, b BlockID) bool {
		for _, blk := range blocks {
			if blk.ID != a {
				continue
			}
			for _, nb := range blk.Neighbors {
				if nb == b {
					return true
				}
			}
		}
		return false
	}
	two := Tile(2)
	for _, pair := range [][2]BlockID{
		{TileID(0, FPExec), TileID(1, IntExec)},
		{TileID(0, Window), TileID(1, Window)},
		{TileID(0, LSQ), TileID(1, RegFile)},
		{TileID(0, DCache), TileID(1, DCache)},
	} {
		if !has(two, pair[0], pair[1]) {
			t.Errorf("Tile(2): missing horizontal abutment %v-%v", pair[0], pair[1])
		}
	}
	four := Tile(4)
	for _, pair := range [][2]BlockID{
		{TileID(0, DCache), TileID(2, IntExec)},
		{TileID(0, DCache), TileID(2, FPExec)},
		{TileID(1, DCache), TileID(3, IntExec)},
	} {
		if !has(four, pair[0], pair[1]) {
			t.Errorf("Tile(4): missing vertical abutment %v-%v", pair[0], pair[1])
		}
	}
}

// Every derived neighbor pair must produce a finite, positive Equation-4
// tangential resistance — the solver divides by it.
func TestTileTangentialResistancePositive(t *testing.T) {
	blocks := Tile(4)
	areas := make(map[BlockID]float64, len(blocks))
	for _, b := range blocks {
		areas[b.ID] = b.Area
	}
	for _, b := range blocks {
		for _, nb := range b.Neighbors {
			r := TangentialResistance(b.Area) + TangentialResistance(areas[nb])
			if !(r > 0) || r > 1e6 {
				t.Errorf("pair %v-%v: tangential series resistance %v", b.ID, nb, r)
			}
		}
	}
}

// The tiled layout geometry must validate against the tiled block set the
// same way DefaultLayout validates against Default().
func TestTileLayoutValidates(t *testing.T) {
	for _, n := range []int{1, 2, 4, 9} {
		if err := TileLayout(n).Validate(Tile(n), 0.02); err != nil {
			t.Errorf("TileLayout(%d): %v", n, err)
		}
	}
}
