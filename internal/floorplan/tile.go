package floorplan

import "math"

// This file generalizes the single-core floorplan to N-core dies: Tile(n)
// replicates the paper's 5 mm x 8.2 mm core layout in a grid and derives
// every Neighbors list — within-core and across core boundaries — from the
// tiled geometry. Cross-core lateral coupling then falls out of the same
// Equation-4 tangential-resistance machinery the solver already applies to
// within-core adjacency: abutting blocks of neighboring cores (e.g. one
// core's FPExec against the next core's IntExec) exchange heat through the
// series combination of their lateral resistances, no new solver code.

// CoreStride is the BlockID stride between consecutive cores: each core
// owns NumBlocks per-structure IDs plus a reserved slot aligned with the
// whole-chip node (so core 0's IDs coincide with the classic single-core
// numbering, Chip included).
const CoreStride = NumBlocks + 1

// TileID returns the BlockID of a core's local block in a tiled floorplan.
// TileID(0, b) == b, so single-core code is unaffected.
func TileID(core int, local BlockID) BlockID {
	return BlockID(core*int(CoreStride)) + local
}

// CoreOf returns the core index a tiled BlockID belongs to.
func CoreOf(id BlockID) int { return int(id) / int(CoreStride) }

// LocalOf returns the within-core block a tiled BlockID refers to.
func LocalOf(id BlockID) BlockID { return id % CoreStride }

// TileCols returns the number of grid columns Tile/TileLayout use for n
// cores: the smallest square-ish grid (ceil(sqrt(n)) columns, row-major).
func TileCols(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

// TileLayout places n copies of DefaultLayout in a TileCols(n)-column grid
// of abutting 5 mm x 8.2 mm dies, core c at column c%cols, row c/cols.
// Horizontally adjacent cores share the x = 5 mm die edge (FPExec↔IntExec,
// Window↔Window, LSQ↔RegFile/BPred, DCache↔DCache abutments); vertically
// adjacent cores share the y = 8.2 mm edge (DCache↔IntExec/FPExec).
func TileLayout(n int) Layout {
	base := DefaultLayout()
	if n <= 1 {
		return base
	}
	const dieW, dieH = 5.0e-3, 8.2e-3
	cols := TileCols(n)
	rects := make(map[BlockID]Rect, n*int(NumBlocks))
	for c := 0; c < n; c++ {
		dx := float64(c%cols) * dieW
		dy := float64(c/cols) * dieH
		for id, r := range base.Rects {
			r.X += dx
			r.Y += dy
			rects[TileID(c, id)] = r
		}
	}
	return Layout{Rects: rects}
}

// tileMinEdge is the shared-edge threshold for derived adjacency, the same
// 0.5 mm the single-core layout tests pin Default()'s lists against.
const tileMinEdge = 0.5e-3

// Tile returns the block set of an n-core floorplan: n copies of the
// Table 3 blocks with IDs remapped by TileID and Neighbors derived from
// TileLayout's geometry, so cross-core abutments appear in the lists
// exactly like within-core ones. Tile(1) returns Default() verbatim.
// Blocks are ordered core-major with the paper's block order inside each
// core, so index i models core i/NumBlocks, local block i%NumBlocks.
func Tile(n int) []Block {
	if n < 1 {
		panic("floorplan: Tile needs at least one core")
	}
	if n == 1 {
		return Default()
	}
	adj := TileLayout(n).Adjacency(tileMinEdge)
	blocks := make([]Block, 0, n*int(NumBlocks))
	for c := 0; c < n; c++ {
		for _, b := range Default() {
			id := TileID(c, b.ID)
			b.ID = id
			b.Neighbors = adj[id]
			blocks = append(blocks, b)
		}
	}
	return blocks
}
