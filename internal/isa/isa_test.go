package isa

import (
	"testing"
	"testing/quick"
)

func TestOpClassNames(t *testing.T) {
	want := map[OpClass]string{
		OpNop: "nop", OpIntALU: "intalu", OpIntMult: "intmult",
		OpIntDiv: "intdiv", OpFPALU: "fpalu", OpFPMult: "fpmult",
		OpFPDiv: "fpdiv", OpLoad: "load", OpStore: "store",
		OpBranch: "branch", OpJump: "jump", OpCall: "call", OpReturn: "return",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if OpClass(200).String() != "opclass(200)" {
		t.Errorf("unknown class name = %q", OpClass(200).String())
	}
	if len(want) != NumOpClasses {
		t.Errorf("name table covers %d of %d classes", len(want), NumOpClasses)
	}
}

func TestClassPredicates(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpIntALU.IsMem() {
		t.Error("IsMem wrong")
	}
	for _, c := range []OpClass{OpBranch, OpJump, OpCall, OpReturn} {
		if !c.IsCtrl() {
			t.Errorf("%v not control", c)
		}
	}
	if OpLoad.IsCtrl() {
		t.Error("load is not control")
	}
	for _, c := range []OpClass{OpFPALU, OpFPMult, OpFPDiv} {
		if !c.IsFP() {
			t.Errorf("%v not FP", c)
		}
	}
	if OpIntMult.IsFP() {
		t.Error("intmult is not FP")
	}
}

func TestLatenciesPositiveAndOrdered(t *testing.T) {
	for c := OpClass(0); int(c) < NumOpClasses; c++ {
		if c.Latency() < 1 {
			t.Errorf("%v latency %d < 1", c, c.Latency())
		}
	}
	if !(OpIntALU.Latency() < OpIntMult.Latency() && OpIntMult.Latency() < OpIntDiv.Latency()) {
		t.Error("integer latency ordering broken")
	}
	if !(OpFPALU.Latency() < OpFPMult.Latency() && OpFPMult.Latency() < OpFPDiv.Latency()) {
		t.Error("FP latency ordering broken")
	}
}

func TestNextPCSemantics(t *testing.T) {
	br := MicroOp{PC: 0x100, Class: OpBranch, Target: 0x200, Taken: true}
	if br.NextPC() != 0x200 {
		t.Errorf("taken branch NextPC = %#x", br.NextPC())
	}
	br.Taken = false
	if br.NextPC() != 0x104 {
		t.Errorf("not-taken branch NextPC = %#x", br.NextPC())
	}
	jmp := MicroOp{PC: 0x100, Class: OpJump, Target: 0x300} // Taken irrelevant
	if jmp.NextPC() != 0x300 {
		t.Errorf("jump NextPC = %#x", jmp.NextPC())
	}
	alu := MicroOp{PC: 0x100, Class: OpIntALU}
	if alu.NextPC() != alu.FallThrough() || alu.NextPC() != 0x104 {
		t.Errorf("ALU NextPC = %#x", alu.NextPC())
	}
}

// Property: NextPC is always either the fall-through or the target, and
// non-control ops always fall through.
func TestNextPCProperty(t *testing.T) {
	f := func(pc, target uint64, cls uint8, taken bool) bool {
		op := MicroOp{
			PC:     pc &^ 3,
			Class:  OpClass(cls % uint8(NumOpClasses)),
			Target: target,
			Taken:  taken,
		}
		next := op.NextPC()
		if !op.Class.IsCtrl() {
			return next == op.FallThrough()
		}
		return next == op.FallThrough() || next == op.Target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
