// Package isa defines the micro-operation vocabulary consumed by the
// cycle-level pipeline model.
//
// The paper's simulator (SimpleScalar sim-outorder extended per Section 5.1)
// operates on Alpha binaries; every experiment in the paper, however, only
// depends on the *class* of each instruction (which functional unit it
// occupies, whether it touches memory, whether it is a control transfer) and
// on its dataflow dependences. This package therefore models instructions as
// micro-ops tagged with an operation class, source/destination registers and
// — for memory and control operations — an effective address or branch
// target/outcome supplied by the workload generator.
package isa

import "fmt"

// OpClass identifies the functional-unit class of a micro-op.
type OpClass uint8

// Operation classes. The set mirrors sim-outorder's FU classes for the
// simulated Alpha-21264-like configuration of Table 2.
const (
	OpNop OpClass = iota
	OpIntALU
	OpIntMult
	OpIntDiv
	OpFPALU
	OpFPMult
	OpFPDiv
	OpLoad
	OpStore
	OpBranch // conditional branch
	OpJump   // unconditional direct jump
	OpCall   // subroutine call (pushes return-address stack)
	OpReturn // subroutine return (pops return-address stack)
	numOpClasses
)

// NumOpClasses is the number of distinct operation classes.
const NumOpClasses = int(numOpClasses)

var opNames = [...]string{
	OpNop:     "nop",
	OpIntALU:  "intalu",
	OpIntMult: "intmult",
	OpIntDiv:  "intdiv",
	OpFPALU:   "fpalu",
	OpFPMult:  "fpmult",
	OpFPDiv:   "fpdiv",
	OpLoad:    "load",
	OpStore:   "store",
	OpBranch:  "branch",
	OpJump:    "jump",
	OpCall:    "call",
	OpReturn:  "return",
}

// String returns the lower-case mnemonic for the class.
func (c OpClass) String() string {
	if int(c) < len(opNames) {
		return opNames[c]
	}
	return fmt.Sprintf("opclass(%d)", uint8(c))
}

// IsMem reports whether the class accesses the data cache.
func (c OpClass) IsMem() bool { return c == OpLoad || c == OpStore }

// IsCtrl reports whether the class is a control transfer.
func (c OpClass) IsCtrl() bool {
	return c == OpBranch || c == OpJump || c == OpCall || c == OpReturn
}

// IsFP reports whether the class executes on the floating-point cluster.
func (c OpClass) IsFP() bool {
	return c == OpFPALU || c == OpFPMult || c == OpFPDiv
}

// Latency returns the execution latency in cycles for the class, matching
// sim-outorder's defaults for the configuration in Table 2. Memory classes
// return the latency of address generation only; cache access latency is
// added by the memory hierarchy model.
func (c OpClass) Latency() int {
	switch c {
	case OpIntALU, OpBranch, OpJump, OpCall, OpReturn, OpNop:
		return 1
	case OpIntMult:
		return 3
	case OpIntDiv:
		return 20
	case OpFPALU:
		return 2
	case OpFPMult:
		return 4
	case OpFPDiv:
		return 12
	case OpLoad, OpStore:
		return 1
	default:
		return 1
	}
}

// NumArchRegs is the number of architectural registers visible to the
// dependence model (32 integer + 32 floating point, Alpha-style).
const NumArchRegs = 64

// RegNone marks an absent register operand.
const RegNone = -1

// MicroOp is one dynamic instruction as produced by a workload and consumed
// by the pipeline.
type MicroOp struct {
	// Seq is the dynamic sequence number (0-based fetch order).
	Seq uint64
	// PC is the (synthetic) program counter of the instruction.
	PC uint64
	// Class is the operation class.
	Class OpClass
	// Src1, Src2 are architectural source registers, or RegNone.
	Src1, Src2 int16
	// Dest is the architectural destination register, or RegNone.
	Dest int16
	// Addr is the effective address for loads and stores.
	Addr uint64
	// Target is the branch/jump target PC for control transfers.
	Target uint64
	// Taken is the resolved direction for conditional branches; jumps,
	// calls and returns are always taken.
	Taken bool
}

// FallThrough returns the next sequential PC after the op (fixed 4-byte
// encoding, Alpha-style).
func (m *MicroOp) FallThrough() uint64 { return m.PC + 4 }

// NextPC returns the PC the instruction actually transfers control to.
func (m *MicroOp) NextPC() uint64 {
	if m.Class.IsCtrl() && (m.Taken || m.Class != OpBranch) {
		return m.Target
	}
	return m.FallThrough()
}
