package bench

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/dtm"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Multicore scenario and policy registries: the core-to-core interaction
// workloads of ROADMAP item 4 and the controllers they face off — the
// paper's PID replicated per core, the adjustable-gain integral DVFS
// controller (arXiv:1507.06357), and the hierarchical global-budget +
// local-PI controller (arXiv:2306.09501 shape).

// MulticorePhaseInsts is the phase length for the migration/staggered
// scenarios: long enough (≈ a thermal time constant at typical IPC) for a
// hot phase to push a core toward the threshold before it moves on.
const MulticorePhaseInsts = 512 << 10

// CoreBudgetWatts is the per-core share of the chip power budget for the
// hierarchical controller — near the hot kernel's unthrottled draw, so
// the budget binds on hot cores while cool cores keep headroom.
const CoreBudgetWatts = 22.0

// MulticoreWorkloads lists the core-interaction scenarios.
func MulticoreWorkloads() []string { return []string{"hotneighbor", "migration", "staggered"} }

// MulticorePolicies lists the controllers the multicore face-off runs.
func MulticorePolicies() []string { return []string{"none", "PID", "agi", "budget"} }

// MulticoreProfiles returns the per-core workload profiles of a named
// scenario at the given core count.
func MulticoreProfiles(scenario string, cores int) ([]workload.Profile, error) {
	switch scenario {
	case "hotneighbor":
		return workload.HotNeighbor(cores), nil
	case "migration":
		return workload.Migration(cores, MulticorePhaseInsts), nil
	case "staggered":
		return workload.Staggered(cores, MulticorePhaseInsts), nil
	default:
		return nil, fmt.Errorf("bench: unknown multicore scenario %q", scenario)
	}
}

// NewMulticoreRun builds a multicore simulation config: the named scenario
// on cores cores under the named policy, with insts committed instructions
// per core.
func NewMulticoreRun(scenario, policy string, cores int, insts uint64) (sim.MulticoreConfig, error) {
	profiles, err := MulticoreProfiles(scenario, cores)
	if err != nil {
		return sim.MulticoreConfig{}, err
	}
	cfg := sim.MulticoreConfig{
		Workloads: profiles,
		MaxInsts:  insts,
	}
	ts := float64(dtm.DefaultSampleInterval) / 1.5e9
	switch policy {
	case "none":
	case "PID":
		cfg.Managers = make([]*dtm.Manager, cores)
		for c := range cfg.Managers {
			p, err := NewPolicy("PID", 0)
			if err != nil {
				return sim.MulticoreConfig{}, err
			}
			cfg.Managers[c] = dtm.NewManager(p)
		}
	case "agi":
		cfg.DVFS = make([]*dtm.AdaptiveGain, cores)
		for c := range cfg.DVFS {
			cfg.DVFS[c] = dtm.NewAdaptiveGain(PISetpoint)
		}
	case "budget":
		g, err := control.Tune(Plant(), control.Spec{Kind: control.KindPI})
		if err != nil {
			return sim.MulticoreConfig{}, err
		}
		cfg.Budget = dtm.NewPowerBudget(cores, CoreBudgetWatts*float64(cores),
			g, PISetpoint, PISensorRange, ts, 8)
	default:
		return sim.MulticoreConfig{}, fmt.Errorf("bench: unknown multicore policy %q", policy)
	}
	return cfg, nil
}
