// Package bench is the benchmark registry: 18 synthetic proxies for the
// SPEC CPU2000 subset the paper simulates (Section 5.4, Tables 4-6), each a
// workload.Profile calibrated to land in the paper's four thermal
// categories (Table 5), plus the policy factory that builds each DTM
// configuration evaluated in Section 7.
//
// The proxies do not reproduce SPEC's computation — only the thermal
// envelope the experiments consume: instruction mix, ILP, branch
// predictability, memory locality, burstiness. Names are kept so rows in
// regenerated tables line up with the paper's.
package bench

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/dtm"
	"repro/internal/floorplan"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Category is a Table 5 thermal class.
type Category string

// Table 5 categories.
const (
	Extreme Category = "extreme"
	High    Category = "high"
	Medium  Category = "medium"
	Low     Category = "low"
)

// categories assigns each benchmark its intended class (Table 5
// reconstruction; the paper's own assignment is partially illegible, so
// the split follows the legible Table 4 descriptions: art is bursty with
// real emergencies; mesa/facerec/eon/vortex sit just under emergency for
// most of their run without entering it; the extreme tier sees sustained
// or bursty emergencies.
var categories = map[string]Category{
	"gcc": Extreme, "art": Extreme, "equake": Extreme,
	"mesa": High, "facerec": High, "eon": High, "vortex": High, "fma3d": High,
	"gzip": Medium, "wupwise": Medium, "parser": Medium, "perlbmk": Medium, "bzip2": Medium,
	"vpr": Low, "crafty": Low, "twolf": Low, "apsi": Low, "gap": Low,
}

// CategoryOf returns the benchmark's thermal class ("" if unknown).
func CategoryOf(name string) Category { return categories[name] }

// Names returns all benchmark names in the paper's table order.
func Names() []string {
	return []string{
		"gzip", "wupwise", "vpr", "gcc", "mesa", "art", "equake", "crafty",
		"facerec", "fma3d", "parser", "eon", "perlbmk", "gap", "vortex",
		"bzip2", "twolf", "apsi",
	}
}

// hotMix is a convenience: a mix that keeps the integer core, memory and
// branch units all busy.
func intMix(branchy float64) workload.Mix {
	return workload.Mix{
		IntALU: 42, IntMult: 2, Load: 22, Store: 10, Branch: branchy, Call: 1,
	}
}

func fpMix(fpShare float64) workload.Mix {
	return workload.Mix{
		IntALU: 20, FPALU: fpShare, FPMult: fpShare / 3, Load: 22, Store: 8,
		Branch: 8, Call: 0.5,
	}
}

// phase is a small helper for single-phase profiles.
func phase(mix workload.Mix, dep float64, loops, body, iters int,
	randFrac, bias float64, ws uint64, stream float64) workload.Phase {
	return workload.Phase{
		Insts:            4 << 20,
		Mix:              mix,
		DepMean:          dep,
		LoopIters:        iters,
		BodySize:         body,
		NumLoops:         loops,
		BranchRandomFrac: randFrac,
		BranchBias:       bias,
		WorkingSet:       ws,
		StreamFrac:       stream,
	}
}

// All returns the 18 proxy profiles in table order.
func All() []workload.Profile {
	ps := make([]workload.Profile, 0, 18)
	for _, n := range Names() {
		p, err := ByName(n)
		if err != nil {
			panic(err) // registry and Names must agree
		}
		ps = append(ps, p)
	}
	return ps
}

// ByName returns one benchmark profile.
func ByName(name string) (workload.Profile, error) {
	var phases []workload.Phase
	switch name {
	case "gzip":
		// Medium: integer compression — decent but not extreme
		// activity, some stress, no emergencies.
		phases = []workload.Phase{phase(intMix(12), 2.35, 12, 48, 60, 0.30, 0.5, 512<<10, 0.5)}
	case "wupwise":
		// Medium: streaming FP with good ILP, brushes the stress band.
		phases = []workload.Phase{phase(fpMix(22), 7, 8, 56, 80, 0.06, 0.6, 2<<20, 0.85)}
	case "vpr":
		// Low: placement/routing — pointer-chasing, poor locality,
		// hard branches, low ILP; thermally cold.
		phases = []workload.Phase{phase(intMix(16), 2.5, 24, 40, 20, 0.4, 0.45, 4<<20, 0.15)}
	case "gcc":
		// Extreme: very high sustained integer activity with a large
		// code footprint and high window/bpred pressure.
		phases = []workload.Phase{phase(intMix(14), 10, 20, 64, 90, 0.04, 0.6, 96<<10, 0.8)}
	case "mesa":
		// The paper's signature case: sits above the stress level for
		// almost its entire run yet spends almost no time in actual
		// emergency.
		phases = []workload.Phase{phase(fpMix(12), 5.5, 10, 60, 100, 0.05, 0.55, 256<<10, 0.75)}
	case "art":
		// Extreme and bursty: cool scan phases alternating with hot
		// dense-compute bursts (Table 4: few stress cycles, but over
		// half of them are emergencies).
		cool := phase(fpMix(10), 3.0, 10, 44, 30, 0.25, 0.5, 4<<20, 0.3)
		cool.Insts = 1 << 20
		hot := phase(fpMix(30), 12, 4, 64, 200, 0.02, 0.7, 64<<10, 0.95)
		hot.Insts = 768 << 10
		phases = []workload.Phase{cool, hot}
	case "equake":
		// Extreme: FP earthquake simulation, streaming memory with
		// dense FP bursts.
		phases = []workload.Phase{phase(fpMix(26), 10, 8, 60, 120, 0.03, 0.6, 1<<20, 0.9)}
	case "crafty":
		// Low: branchy chess integer code with modest ILP.
		phases = []workload.Phase{phase(intMix(18), 2.2, 20, 44, 25, 0.4, 0.5, 2<<20, 0.3)}
	case "facerec":
		// High: FP image processing, long high-utilization stretches
		// just below emergency.
		phases = []workload.Phase{phase(fpMix(13), 5.0, 8, 56, 90, 0.04, 0.6, 512<<10, 0.8)}
	case "fma3d":
		// High: FP crash simulation.
		phases = []workload.Phase{phase(fpMix(21), 10, 12, 52, 70, 0.06, 0.55, 1<<20, 0.75)}
	case "parser":
		// Medium: integer parsing, mispredict-prone.
		phases = []workload.Phase{phase(intMix(16), 3.5, 16, 44, 40, 0.3, 0.5, 1<<20, 0.4)}
	case "eon":
		// High: C++ ray tracing; mixed int/FP held just under
		// emergency.
		phases = []workload.Phase{phase(fpMix(13), 5.0, 10, 56, 80, 0.04, 0.55, 384<<10, 0.7)}
	case "perlbmk":
		// Medium: interpreter; branchy with medium ILP.
		phases = []workload.Phase{phase(intMix(15), 3.2, 18, 48, 45, 0.25, 0.5, 1<<20, 0.4)}
	case "gap":
		// Low-medium: group theory integer workload.
		phases = []workload.Phase{phase(intMix(12), 3, 14, 44, 35, 0.25, 0.5, 2<<20, 0.4)}
	case "vortex":
		// High: object database; integer with high IPC and store
		// traffic, hovering below emergency.
		m := intMix(11)
		m.Store = 16
		phases = []workload.Phase{phase(m, 4.2, 12, 56, 85, 0.04, 0.6, 512<<10, 0.7)}
	case "bzip2":
		// Medium: compression; similar to gzip, lower ILP.
		phases = []workload.Phase{phase(intMix(13), 3.2, 12, 48, 50, 0.22, 0.5, 1<<20, 0.5)}
	case "twolf":
		// Low: place-and-route, poor locality and low ILP.
		phases = []workload.Phase{phase(intMix(15), 2.4, 22, 40, 22, 0.38, 0.45, 4<<20, 0.2)}
	case "apsi":
		// Low: FP meteorology at modest intensity.
		phases = []workload.Phase{phase(fpMix(9), 3, 14, 48, 35, 0.2, 0.5, 4<<20, 0.5)}
	default:
		return workload.Profile{}, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	return workload.Profile{
		Name:   name,
		Seed:   seedFor(name),
		Phases: phases,
	}, nil
}

// seedFor derives a stable per-benchmark seed from the name.
func seedFor(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Paper operating points (see DESIGN.md "Reconstructed numeric constants").
const (
	// EmergencyTemp is the thermal-emergency threshold D.
	EmergencyTemp = 111.3
	// NonCTTrigger is the toggle1/M trigger (D - 1).
	NonCTTrigger = 110.3
	// PSetpoint / PSensorRange configure the P controller.
	PSetpoint, PSensorRange = 110.8, 0.5
	// PISetpoint / PISensorRange configure PI and PID (trigger D-0.4,
	// engagement within 0.2 of the setpoint).
	PISetpoint, PISensorRange = 111.1, 0.2
	// LowSetpoint is the alternative setpoint studied in Section 7.
	LowSetpoint = 110.6
	// PolicyDelaySamples is the hold time for fixed policies, in
	// controller samples.
	PolicyDelaySamples = 5
)

// BlockPlants returns one design plant per floorplan block: gain
// K = R*Papp (the block's own thermal resistance times its calibrated
// activity swing) and tau = the block's own RC, for the per-structure
// MultiCT refinement.
func BlockPlants() []control.Plant {
	samplePeriod := float64(dtm.DefaultSampleInterval) / 1.5e9
	var plants []control.Plant
	for _, b := range floorplan.Default() {
		plants = append(plants, control.Plant{
			K:     b.R * b.PeakPower * 0.9,
			Tau:   b.RC(),
			Delay: samplePeriod / 2,
		})
	}
	return plants
}

// Plant returns the controller design plant (Section 3.2): steady-state
// gain from fetch duty to hottest-block temperature, the longest block RC
// as tau, and half the sampling period as loop delay.
func Plant() control.Plant {
	var k, tau float64
	for _, b := range floorplan.Default() {
		if g := b.R * b.PeakPower * 0.9; g > k {
			k = g
		}
		if rc := b.RC(); rc > tau {
			tau = rc
		}
	}
	samplePeriod := float64(dtm.DefaultSampleInterval) / 1.5e9
	return control.Plant{K: k, Tau: tau, Delay: samplePeriod / 2}
}

// NewPolicy builds a named DTM policy at the paper's operating points.
// setpointOverride, when nonzero, replaces the controller setpoint (the
// Section 7 setpoint study).
func NewPolicy(name string, setpointOverride float64) (dtm.Policy, error) {
	sp := func(def float64) float64 {
		if setpointOverride != 0 {
			return setpointOverride
		}
		return def
	}
	ts := float64(dtm.DefaultSampleInterval) / 1.5e9
	plant := Plant()
	switch name {
	case "none":
		return dtm.NoDTM{}, nil
	case "toggle1":
		return dtm.NewToggle1(NonCTTrigger, PolicyDelaySamples), nil
	case "toggle2":
		return dtm.NewToggle2(NonCTTrigger, PolicyDelaySamples), nil
	case "M":
		return dtm.NewManual(NonCTTrigger, EmergencyTemp), nil
	case "throttle":
		return dtm.NewThrottle(NonCTTrigger, 1, PolicyDelaySamples), nil
	case "specctl":
		return dtm.NewSpecControl(NonCTTrigger, 1, PolicyDelaySamples), nil
	case "P":
		g, err := control.Tune(plant, control.Spec{Kind: control.KindP})
		if err != nil {
			return nil, err
		}
		return dtm.NewCT(control.KindP, control.NewPID(g, sp(PSetpoint), PSensorRange, ts)), nil
	case "PI":
		g, err := control.Tune(plant, control.Spec{Kind: control.KindPI})
		if err != nil {
			return nil, err
		}
		return dtm.NewCT(control.KindPI, control.NewPID(g, sp(PISetpoint), PISensorRange, ts)), nil
	case "PID":
		g, err := control.Tune(plant, control.Spec{Kind: control.KindPID})
		if err != nil {
			return nil, err
		}
		return dtm.NewCT(control.KindPID, control.NewPID(g, sp(PISetpoint), PISensorRange, ts)), nil
	case "mPI":
		return dtm.NewMultiCT(control.KindPI, BlockPlants(), sp(PISetpoint), PISensorRange, ts)
	case "mPID":
		return dtm.NewMultiCT(control.KindPID, BlockPlants(), sp(PISetpoint), PISensorRange, ts)
	default:
		return nil, fmt.Errorf("bench: unknown policy %q", name)
	}
}

// ApplyPolicy configures cfg for the named policy (including the scaling
// mechanisms, which are not Manager policies).
func ApplyPolicy(cfg *sim.Config, name string, setpointOverride float64) error {
	switch name {
	case "fscale":
		cfg.Scaling = dtm.NewFreqScaling(NonCTTrigger, 0.5, PolicyDelaySamples)
		return nil
	case "vfscale":
		cfg.Scaling = dtm.NewVoltageScaling(NonCTTrigger, 0.5, PolicyDelaySamples)
		return nil
	}
	p, err := NewPolicy(name, setpointOverride)
	if err != nil {
		return err
	}
	if _, ok := p.(dtm.NoDTM); ok {
		cfg.Manager = nil
		return nil
	}
	cfg.Manager = dtm.NewManager(p)
	return nil
}
