package bench

import (
	"testing"

	"repro/internal/control"
	"repro/internal/dtm"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestRegistryCompleteAndValid(t *testing.T) {
	names := Names()
	if len(names) != 18 {
		t.Fatalf("suite has %d benchmarks, want 18", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate benchmark %q", n)
		}
		seen[n] = true
		p, err := ByName(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: invalid profile: %v", n, err)
		}
		if p.Name != n {
			t.Errorf("profile name %q != %q", p.Name, n)
		}
		if CategoryOf(n) == "" {
			t.Errorf("%s has no category", n)
		}
		// Every profile must actually generate.
		gen, err := workload.NewGenerator(p)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		gen.Next()
	}
	if len(All()) != 18 {
		t.Error("All() does not return 18 profiles")
	}
}

func TestCategoriesPartitionSuite(t *testing.T) {
	count := map[Category]int{}
	for _, n := range Names() {
		count[CategoryOf(n)]++
	}
	if count[Extreme] < 3 || count[High] < 4 || count[Medium] < 4 || count[Low] < 4 {
		t.Errorf("category sizes = %v", count)
	}
	if CategoryOf("nonexistent") != "" {
		t.Error("unknown benchmark has a category")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("spectral"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSeedsAreStableAndDistinct(t *testing.T) {
	if seedFor("gcc") != seedFor("gcc") {
		t.Error("seed not stable")
	}
	seen := map[uint64]string{}
	for _, n := range Names() {
		s := seedFor(n)
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision: %s and %s", n, prev)
		}
		seen[s] = n
	}
}

func TestPlantParameters(t *testing.T) {
	p := Plant()
	if p.K <= 0 || p.Tau <= 0 || p.Delay <= 0 {
		t.Fatalf("plant = %+v", p)
	}
	// Tau is the longest block RC: 180 us from the Table 3 values.
	if p.Tau != 180e-6 {
		t.Errorf("tau = %v, want 180e-6", p.Tau)
	}
	// Delay is half the 667 ns sampling period.
	if p.Delay < 300e-9 || p.Delay > 400e-9 {
		t.Errorf("delay = %v", p.Delay)
	}
}

func TestNewPolicyAllNames(t *testing.T) {
	for _, name := range []string{"none", "toggle1", "toggle2", "M", "P", "PI", "PID"} {
		p, err := NewPolicy(name, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name != "none" && p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := NewPolicy("bangbang", 0); err != nil {
	} else {
		t.Error("unknown policy accepted")
	}
}

func TestNewPolicySetpointOverride(t *testing.T) {
	p, err := NewPolicy("PI", 110.6)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := p.(*dtm.CT)
	if !ok {
		t.Fatal("PI policy is not a CT policy")
	}
	if ct.Controller().Setpoint != 110.6 {
		t.Errorf("setpoint = %v, want 110.6", ct.Controller().Setpoint)
	}
}

func TestApplyPolicy(t *testing.T) {
	var cfg sim.Config
	if err := ApplyPolicy(&cfg, "PI", 0); err != nil {
		t.Fatal(err)
	}
	if cfg.Manager == nil || cfg.Manager.Policy.Name() != "PI" {
		t.Error("manager not configured")
	}
	cfg = sim.Config{}
	if err := ApplyPolicy(&cfg, "none", 0); err != nil {
		t.Fatal(err)
	}
	if cfg.Manager != nil {
		t.Error("none policy created a manager")
	}
	cfg = sim.Config{}
	if err := ApplyPolicy(&cfg, "fscale", 0); err != nil {
		t.Fatal(err)
	}
	if cfg.Scaling == nil || cfg.Scaling.VoltageToo {
		t.Error("fscale not configured")
	}
	cfg = sim.Config{}
	if err := ApplyPolicy(&cfg, "vfscale", 0); err != nil {
		t.Fatal(err)
	}
	if cfg.Scaling == nil || !cfg.Scaling.VoltageToo {
		t.Error("vfscale not configured")
	}
	if err := ApplyPolicy(&cfg, "bogus", 0); err == nil {
		t.Error("bogus policy accepted")
	}
}

// The thresholds relate as the paper requires.
func TestOperatingPointOrdering(t *testing.T) {
	if !(NonCTTrigger < PSetpoint && PSetpoint < PISetpoint && PISetpoint < EmergencyTemp) {
		t.Error("threshold ordering broken")
	}
	if PISetpoint-PISensorRange != 110.9 {
		t.Errorf("PI engagement threshold = %v, want 110.9 (within 0.2+0.2 of D)",
			PISetpoint-PISensorRange)
	}
}

// The paper's PI/PID tuning must be feasible for the registry plant.
func TestControllersTunableForPlant(t *testing.T) {
	p := Plant()
	for _, k := range []control.Kind{control.KindP, control.KindPI, control.KindPID} {
		if _, err := control.Tune(p, control.Spec{Kind: k}); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

// Category conformance: each tier exhibits its defining thermal behaviour.
// This runs the actual simulator on representative members; the full-suite
// version lives in the benchmark harness.
func TestCategoryConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("category conformance needs full-length runs")
	}
	runOne := func(name string, insts uint64) *sim.Result {
		prof, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{Workload: prof, MaxInsts: insts})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Extreme: sustained (gcc) and bursty (art) emergencies.
	if r := runOne("gcc", 1_500_000); r.EmergencyFrac() < 0.05 {
		t.Errorf("gcc emergency frac = %v, want extreme", r.EmergencyFrac())
	}
	if r := runOne("art", 2_500_000); r.EmergencyCycles == 0 {
		t.Error("art burst produced no emergencies")
	}
	// High: mesa rides the stress band without emergencies.
	if r := runOne("mesa", 1_500_000); r.EmergencyFrac() > 0.02 || r.StressFrac() < 0.2 {
		t.Errorf("mesa emerg=%v stress=%v, want stress-without-emergency",
			r.EmergencyFrac(), r.StressFrac())
	}
	// Low: twolf never stresses.
	if r := runOne("twolf", 800_000); r.StressCycles != 0 {
		t.Errorf("twolf stress cycles = %d, want 0", r.StressCycles)
	}
}
