// Package sensor models the two temperature-observation mechanisms the
// paper compares in Section 6:
//
//   - idealized per-block thermal sensors that read the RC model's true
//     temperature (the paper's assumption for its DTM experiments), with an
//     optional noise/offset extension (Section 4.2 flags real-sensor
//     modeling as future work); and
//   - the prior art's boxcar power averages used as a temperature proxy,
//     both per-structure (trigger when Pavg*R + Tsink exceeds the
//     threshold) and chip-wide (trigger when Pavg exceeds a wattage
//     threshold, 47 W here vs Brooks & Martonosi's 24/25 W at their scale).
//
// The Comparator counts, cycle by cycle, the proxy's missed emergencies and
// false triggers against the RC model (Tables 9 and 10).
package sensor

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Sensor reads block temperatures, optionally with offset and quantization
// error; the paper's experiments use the ideal configuration.
type Sensor struct {
	// Offset is added to every reading (calibration error).
	Offset float64
	// Quantum, when positive, quantizes readings to multiples of itself
	// (ADC resolution).
	Quantum float64
}

// Read returns the sensor's view of a true temperature.
func (s Sensor) Read(trueTemp float64) float64 {
	v := trueTemp + s.Offset
	if s.Quantum > 0 {
		// math.Round, not int64(x+0.5): the conversion truncates toward
		// zero, which mis-rounds readings that land negative after a
		// calibration offset (e.g. -1.2 quanta would round to -0.7 -> 0).
		v = s.Quantum * math.Round(v/s.Quantum)
	}
	return v
}

// StructProxy is the per-structure boxcar power-average temperature proxy:
// for each block, a moving average of its power over a window; the block
// "triggers" when Tsink + Pavg*R crosses the emergency threshold.
type StructProxy struct {
	boxcars   []*stats.Boxcar
	r         []float64
	sink      float64
	threshold float64
}

// NewStructProxy builds a proxy over blocks with the given thermal
// resistances, heatsink temperature and trigger threshold.
func NewStructProxy(rs []float64, window int, sink, threshold float64) *StructProxy {
	if len(rs) == 0 {
		panic("sensor: no blocks for proxy")
	}
	p := &StructProxy{r: append([]float64(nil), rs...), sink: sink, threshold: threshold}
	for range rs {
		p.boxcars = append(p.boxcars, stats.NewBoxcar(window))
	}
	return p
}

// Step folds in this cycle's per-block power and reports whether any block
// triggers.
func (p *StructProxy) Step(power []float64) bool {
	if len(power) != len(p.boxcars) {
		panic(fmt.Sprintf("sensor: %d powers for %d blocks", len(power), len(p.boxcars)))
	}
	hot := false
	for i, bc := range p.boxcars {
		avg := bc.Add(power[i])
		if p.sink+avg*p.r[i] > p.threshold {
			hot = true
		}
	}
	return hot
}

// ImpliedTemp returns the proxy's implied temperature for block i.
func (p *StructProxy) ImpliedTemp(i int) float64 {
	return p.sink + p.boxcars[i].Avg()*p.r[i]
}

// ChipProxy is the chip-wide boxcar power proxy: a single moving average of
// total chip power with a wattage trigger threshold.
type ChipProxy struct {
	boxcar    *stats.Boxcar
	threshold float64
}

// NewChipProxy builds a chip-wide proxy with the given window and trigger
// threshold in watts.
func NewChipProxy(window int, thresholdWatts float64) *ChipProxy {
	return &ChipProxy{boxcar: stats.NewBoxcar(window), threshold: thresholdWatts}
}

// Step folds in total chip power and reports whether the proxy triggers.
func (p *ChipProxy) Step(chipPower float64) bool {
	return p.boxcar.Add(chipPower) > p.threshold
}

// Avg returns the current average chip power.
func (p *ChipProxy) Avg() float64 { return p.boxcar.Avg() }

// Comparison tallies proxy-vs-model agreement over a run (one row of
// Table 9 or 10).
type Comparison struct {
	Cycles uint64
	// TrueEmergency counts cycles the RC model reports an emergency.
	TrueEmergency uint64
	// ProxyTrigger counts cycles the proxy triggers.
	ProxyTrigger uint64
	// Missed counts cycles with a true emergency the proxy did not flag.
	Missed uint64
	// False counts cycles the proxy flagged without a true emergency.
	False uint64
}

// Record tallies one cycle.
func (c *Comparison) Record(trueEmergency, proxyTrigger bool) {
	c.Cycles++
	if trueEmergency {
		c.TrueEmergency++
		if !proxyTrigger {
			c.Missed++
		}
	}
	if proxyTrigger {
		c.ProxyTrigger++
		if !trueEmergency {
			c.False++
		}
	}
}

// MissedFrac returns missed emergency cycles as a fraction of true
// emergency cycles (0 when there were none).
func (c *Comparison) MissedFrac() float64 {
	if c.TrueEmergency == 0 {
		return 0
	}
	return float64(c.Missed) / float64(c.TrueEmergency)
}

// FalseFrac returns false-trigger cycles as a fraction of all cycles.
func (c *Comparison) FalseFrac() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.False) / float64(c.Cycles)
}
