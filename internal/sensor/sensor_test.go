package sensor

import (
	"math"
	"testing"
)

func TestIdealSensorPassesThrough(t *testing.T) {
	s := Sensor{}
	if got := s.Read(111.25); got != 111.25 {
		t.Errorf("ideal read = %v", got)
	}
}

func TestSensorOffsetAndQuantum(t *testing.T) {
	s := Sensor{Offset: 0.5, Quantum: 0.25}
	got := s.Read(110.9) // 111.4 -> quantized to 111.5? 111.4/0.25=445.6 -> 446*0.25=111.5
	if math.Abs(got-111.5) > 1e-9 {
		t.Errorf("read = %v, want 111.5", got)
	}
}

func TestStructProxyTriggersAtImpliedTemp(t *testing.T) {
	// One block: R=2, sink=100, threshold=111.3 => triggers when
	// Pavg > 5.65 W.
	p := NewStructProxy([]float64{2.0}, 4, 100, 111.3)
	if p.Step([]float64{5.0}) {
		t.Error("triggered below threshold")
	}
	// Window now [5,6,6,6]: avg 5.75 -> implied 111.5 > 111.3.
	var hot bool
	for i := 0; i < 3; i++ {
		hot = p.Step([]float64{6.0})
	}
	if !hot {
		t.Error("did not trigger at 5.75 W average")
	}
	if it := p.ImpliedTemp(0); math.Abs(it-111.5) > 1e-9 {
		t.Errorf("implied temp = %v, want 111.5", it)
	}
}

func TestStructProxyPanicsOnMismatch(t *testing.T) {
	p := NewStructProxy([]float64{1, 2}, 4, 100, 111.3)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Step did not panic")
		}
	}()
	p.Step([]float64{1})
}

func TestNewStructProxyPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty proxy accepted")
		}
	}()
	NewStructProxy(nil, 4, 100, 111.3)
}

func TestChipProxyThreshold(t *testing.T) {
	p := NewChipProxy(2, 47)
	if p.Step(46) {
		t.Error("triggered below threshold")
	}
	p.Step(50)
	if !p.Step(50) {
		t.Error("did not trigger above threshold")
	}
	if p.Avg() != 50 {
		t.Errorf("avg = %v", p.Avg())
	}
}

// The boxcar's lag is the proxy's core flaw: a short hot burst inside a
// long window is invisible — the "missed emergency" failure mode of
// Section 6.
func TestLongWindowMissesBurst(t *testing.T) {
	long := NewStructProxy([]float64{2.0}, 1000, 100, 111.3)
	short := NewStructProxy([]float64{2.0}, 10, 100, 111.3)
	longHot, shortHot := false, false
	for i := 0; i < 2000; i++ {
		p := 1.0
		if i >= 1500 && i < 1520 {
			p = 10.0 // 20-cycle burst, steady state would be 120 C
		}
		if long.Step([]float64{p}) {
			longHot = true
		}
		if short.Step([]float64{p}) {
			shortHot = true
		}
	}
	if longHot {
		t.Error("1000-cycle window saw the 20-cycle burst; lag model broken")
	}
	if !shortHot {
		t.Error("10-cycle window missed the burst")
	}
}

func TestComparisonTallies(t *testing.T) {
	var c Comparison
	c.Record(true, true)   // agree hot
	c.Record(true, false)  // missed
	c.Record(false, true)  // false trigger
	c.Record(false, false) // agree cool
	if c.Cycles != 4 || c.TrueEmergency != 2 || c.ProxyTrigger != 2 {
		t.Errorf("tallies = %+v", c)
	}
	if c.Missed != 1 || c.False != 1 {
		t.Errorf("missed/false = %d/%d", c.Missed, c.False)
	}
	if c.MissedFrac() != 0.5 {
		t.Errorf("missed frac = %v", c.MissedFrac())
	}
	if c.FalseFrac() != 0.25 {
		t.Errorf("false frac = %v", c.FalseFrac())
	}
	var empty Comparison
	if empty.MissedFrac() != 0 || empty.FalseFrac() != 0 {
		t.Error("empty comparison fractions not 0")
	}
}

func TestSelectSensorsCoversHotBlocks(t *testing.T) {
	// Three blocks: #0 hottest in the first half, #2 hottest in the
	// second half, #1 never hottest.
	series := [][]float64{
		{112, 112, 112, 104, 104, 104},
		{106, 106, 106, 106, 106, 106},
		{103, 103, 103, 111, 111, 111},
	}
	res, err := SelectSensors(series, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, i := range res.Blocks {
		got[i] = true
	}
	if !got[0] || !got[2] {
		t.Errorf("selected %v, want {0,2}", res.Blocks)
	}
	if res.MaxError != 0 {
		t.Errorf("max error = %v, want 0 with both hot blocks covered", res.MaxError)
	}
}

func TestSelectSensorsOneSensorPicksWorstCaseMinimizer(t *testing.T) {
	series := [][]float64{
		{112, 100}, // great at t0, terrible at t1
		{109, 109}, // decent everywhere
	}
	res, err := SelectSensors(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sensor 0 alone: worst error = 110-ish... trueMax = {112,109};
	// with sensor 0: errors {0, 9}; with sensor 1: {3, 0}. Worst-case
	// minimizer is sensor 1.
	if len(res.Blocks) != 1 || res.Blocks[0] != 1 {
		t.Errorf("selected %v, want [1]", res.Blocks)
	}
	if res.MaxError != 3 {
		t.Errorf("max error = %v, want 3", res.MaxError)
	}
}

func TestSelectSensorsValidation(t *testing.T) {
	if _, err := SelectSensors(nil, 1); err == nil {
		t.Error("no traces accepted")
	}
	if _, err := SelectSensors([][]float64{{}}, 1); err == nil {
		t.Error("empty traces accepted")
	}
	if _, err := SelectSensors([][]float64{{1}, {1, 2}}, 1); err == nil {
		t.Error("ragged traces accepted")
	}
	if _, err := SelectSensors([][]float64{{1}}, 5); err == nil {
		t.Error("k > blocks accepted")
	}
}

func TestSelectSensorsFullSetZeroError(t *testing.T) {
	series := [][]float64{{5, 1}, {1, 5}, {3, 3}}
	res, err := SelectSensors(series, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxError != 0 || res.MeanError != 0 {
		t.Errorf("full coverage error = %v/%v", res.MaxError, res.MeanError)
	}
}

func TestSensorNegativeOffsetRounding(t *testing.T) {
	// A calibration offset that drives the reading negative used to be
	// mis-rounded by int64(x+0.5) truncating toward zero.
	s := Sensor{Offset: -102, Quantum: 1}
	if got := s.Read(100.4); got != -2 { // -1.6 quanta -> nearest is -2
		t.Errorf("Read(100.4) with offset -102 = %v, want -2", got)
	}
	if got := s.Read(100.8); got != -1 { // -1.2 quanta -> nearest is -1
		t.Errorf("Read(100.8) with offset -102 = %v, want -1", got)
	}
	// Positive readings keep the old behavior.
	s = Sensor{Quantum: 0.25}
	if got := s.Read(111.4); math.Abs(got-111.5) > 1e-9 {
		t.Errorf("Read(111.4) = %v, want 111.5", got)
	}
}
