package sensor

import "fmt"

// Bank is a per-core array of sensors for a tiled multicore die: one Sensor
// per core, applied to that core's contiguous slice of the flat block
// temperature vector (blocks are core-major, floorplan.Tile order). Reads
// are allocation-free — callers own the destination slice.
type Bank struct {
	sensors []Sensor
	bpc     int
}

// NewBank builds a bank from explicit per-core sensors over blocksPerCore
// blocks each.
func NewBank(sensors []Sensor, blocksPerCore int) *Bank {
	if len(sensors) == 0 || blocksPerCore <= 0 {
		panic("sensor: empty bank")
	}
	return &Bank{sensors: append([]Sensor(nil), sensors...), bpc: blocksPerCore}
}

// UniformBank builds a bank of cores identical sensors.
func UniformBank(cores, blocksPerCore int, s Sensor) *Bank {
	sensors := make([]Sensor, cores)
	for i := range sensors {
		sensors[i] = s
	}
	return NewBank(sensors, blocksPerCore)
}

// Cores returns the number of cores the bank covers.
func (b *Bank) Cores() int { return len(b.sensors) }

// BlocksPerCore returns the per-core block count.
func (b *Bank) BlocksPerCore() int { return b.bpc }

// Read fills dst with the given core's observed block temperatures from the
// flat true-temperature vector and returns dst[:blocksPerCore].
func (b *Bank) Read(core int, temps []float64, dst []float64) []float64 {
	if core < 0 || core >= len(b.sensors) {
		panic(fmt.Sprintf("sensor: core %d out of bank range %d", core, len(b.sensors)))
	}
	lo := core * b.bpc
	if len(temps) < lo+b.bpc {
		panic(fmt.Sprintf("sensor: %d temps for core %d of %d-block bank", len(temps), core, b.bpc))
	}
	if len(dst) < b.bpc {
		panic("sensor: dst too short")
	}
	s := b.sensors[core]
	for i := 0; i < b.bpc; i++ {
		dst[i] = s.Read(temps[lo+i])
	}
	return dst[:b.bpc]
}
