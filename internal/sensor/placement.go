package sensor

import (
	"fmt"
	"math"
)

// This file addresses the sensor-placement question the paper defers
// ("the number of sensors is likely to be limited, and they may not be
// co-located with the most likely hot spots", Section 4.2): given recorded
// per-block temperature traces, choose the K blocks whose sensors best
// track the true hottest temperature across workloads.

// PlacementResult reports a chosen sensor subset and its residual error.
type PlacementResult struct {
	// Blocks are the selected block indices, in selection order.
	Blocks []int
	// MaxError is the worst-case underestimate of the true hottest
	// temperature across all samples: max_t [ max_i T_i(t) -
	// max_{i in Blocks} T_i(t) ].
	MaxError float64
	// MeanError is the same underestimate averaged over samples.
	MeanError float64
}

// coverageError evaluates a sensor set against the traces.
func coverageError(series [][]float64, chosen []int) (maxErr, meanErr float64) {
	if len(series) == 0 || len(series[0]) == 0 {
		return 0, 0
	}
	n := len(series[0])
	var sum float64
	for t := 0; t < n; t++ {
		trueMax := math.Inf(-1)
		for i := range series {
			if v := series[i][t]; v > trueMax {
				trueMax = v
			}
		}
		seen := math.Inf(-1)
		for _, i := range chosen {
			if v := series[i][t]; v > seen {
				seen = v
			}
		}
		e := trueMax - seen
		if e < 0 {
			e = 0
		}
		if e > maxErr {
			maxErr = e
		}
		sum += e
	}
	return maxErr, sum / float64(n)
}

// maxExhaustiveSubsets bounds the exact search; with the paper's seven
// blocks every k is far below it.
const maxExhaustiveSubsets = 200_000

// SelectSensors chooses k sensor locations from the per-block temperature
// traces (series[i][t] is block i's temperature at sample t), minimizing
// the worst-case underestimate of the hottest temperature (ties broken on
// the mean). When the subset space is small — always true for the paper's
// seven blocks — the search is exhaustive and therefore optimal; larger
// problems fall back to greedy selection, which can be myopic. Traces from
// several workloads should be concatenated so the placement generalizes.
func SelectSensors(series [][]float64, k int) (PlacementResult, error) {
	if len(series) == 0 {
		return PlacementResult{}, fmt.Errorf("sensor: no traces")
	}
	n := len(series[0])
	if n == 0 {
		return PlacementResult{}, fmt.Errorf("sensor: empty traces")
	}
	for i, s := range series {
		if len(s) != n {
			return PlacementResult{}, fmt.Errorf("sensor: trace %d has %d samples, want %d", i, len(s), n)
		}
	}
	if k <= 0 || k > len(series) {
		return PlacementResult{}, fmt.Errorf("sensor: k=%d outside [1,%d]", k, len(series))
	}
	if binomial(len(series), k) <= maxExhaustiveSubsets {
		return selectExhaustive(series, k), nil
	}
	return selectGreedy(series, k), nil
}

// binomial returns C(n,k) saturating at a large bound.
func binomial(n, k int) int {
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c > 10*maxExhaustiveSubsets {
			return c
		}
	}
	return c
}

func selectExhaustive(series [][]float64, k int) PlacementResult {
	best := PlacementResult{MaxError: math.Inf(1), MeanError: math.Inf(1)}
	subset := make([]int, k)
	var walk func(start, depth int)
	walk = func(start, depth int) {
		if depth == k {
			mx, mean := coverageError(series, subset)
			if mx < best.MaxError-1e-12 ||
				(math.Abs(mx-best.MaxError) <= 1e-12 && mean < best.MeanError) {
				best = PlacementResult{
					Blocks:    append([]int(nil), subset...),
					MaxError:  mx,
					MeanError: mean,
				}
			}
			return
		}
		for i := start; i < len(series); i++ {
			subset[depth] = i
			walk(i+1, depth+1)
		}
	}
	walk(0, 0)
	return best
}

func selectGreedy(series [][]float64, k int) PlacementResult {
	var chosen []int
	used := make([]bool, len(series))
	for len(chosen) < k {
		best := -1
		bestMax, bestMean := math.Inf(1), math.Inf(1)
		for i := range series {
			if used[i] {
				continue
			}
			mx, mean := coverageError(series, append(chosen, i))
			if mx < bestMax-1e-12 || (math.Abs(mx-bestMax) <= 1e-12 && mean < bestMean) {
				best, bestMax, bestMean = i, mx, mean
			}
		}
		chosen = append(chosen, best)
		used[best] = true
	}
	mx, mean := coverageError(series, chosen)
	return PlacementResult{Blocks: chosen, MaxError: mx, MeanError: mean}
}
