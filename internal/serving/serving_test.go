package serving

// Tests for the drainer, the chaos source and the quantile helper.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestDrainerCancelsAndAwaits(t *testing.T) {
	d := NewDrainer(context.Background())
	var sawCancel, finished atomic.Bool
	err := d.Go(func(ctx context.Context) {
		<-ctx.Done()
		sawCancel.Store(true)
		finished.Store(true)
	})
	if err != nil {
		t.Fatalf("Go: %v", err)
	}
	if !d.Shutdown(2 * time.Second) {
		t.Fatal("drain timed out")
	}
	if !sawCancel.Load() || !finished.Load() {
		t.Fatal("background goroutine not cancelled-then-awaited")
	}
	if err := d.Go(func(context.Context) {}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Go after shutdown = %v, want ErrDraining", err)
	}
}

func TestDrainerTimesOutOnStuckWork(t *testing.T) {
	d := NewDrainer(context.Background())
	release := make(chan struct{})
	if err := d.Go(func(context.Context) { <-release }); err != nil {
		t.Fatalf("Go: %v", err)
	}
	if d.Shutdown(20 * time.Millisecond) {
		t.Fatal("drain reported success with work still running")
	}
	close(release)
	if !d.Shutdown(2 * time.Second) {
		t.Fatal("second drain should succeed once work finishes")
	}
}

func TestChaosProbabilities(t *testing.T) {
	// p=0 never fires, p=1 always fires; a nil source is inert.
	never := NewChaos(1, 0, 0, time.Millisecond)
	always := NewChaos(1, 1, 1, time.Microsecond)
	for i := 0; i < 100; i++ {
		if err := never.DiskFault("read"); err != nil {
			t.Fatalf("p=0 injected a fault: %v", err)
		}
		if err := always.DiskFault("read"); err == nil {
			t.Fatal("p=1 did not inject a fault")
		}
	}
	var nilChaos *Chaos
	if err := nilChaos.DiskFault("read"); err != nil {
		t.Fatalf("nil chaos injected a fault: %v", err)
	}
	if err := nilChaos.MaybeDelay(context.Background()); err != nil {
		t.Fatalf("nil chaos delayed: %v", err)
	}
}

func TestChaosSeedReproducible(t *testing.T) {
	a := NewChaos(42, 0.5, 0, 0)
	b := NewChaos(42, 0.5, 0, 0)
	for i := 0; i < 200; i++ {
		ea, eb := a.DiskFault("op"), b.DiskFault("op")
		if (ea == nil) != (eb == nil) {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestChaosDelayHonorsCancellation(t *testing.T) {
	c := NewChaos(7, 0, 1, 10*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := c.MaybeDelay(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay did not abort on cancellation")
	}
}

func TestQuantiles(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms
	}
	qs := Quantiles(samples, 0, 0.5, 0.95, 0.99, 1)
	want := []time.Duration{
		1 * time.Millisecond,
		50500 * time.Microsecond, // interpolated median of 1..100
		95050 * time.Microsecond,
		99010 * time.Microsecond,
		100 * time.Millisecond,
	}
	for i := range want {
		diff := qs[i] - want[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > 100*time.Microsecond {
			t.Errorf("quantile %d = %v, want ~%v", i, qs[i], want[i])
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	// Input order must not matter and the input must not be mutated.
	shuffled := []time.Duration{30, 10, 20}
	if got := Quantile(shuffled, 1); got != 30 {
		t.Errorf("max of shuffled = %v, want 30", got)
	}
	if shuffled[0] != 30 {
		t.Error("Quantile mutated its input")
	}
}
