package serving

// Drainer gives background batch goroutines a managed lifecycle: they run
// under a cancellable context and register in a WaitGroup, so shutdown can
// cancel-then-await them instead of letting them outlive the process'
// graceful-exit window.

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrDraining is returned by Go once shutdown has begun.
var ErrDraining = errors.New("serving: shutting down, not accepting new work")

// Drainer tracks background goroutines for graceful shutdown.
type Drainer struct {
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	closing bool
}

// NewDrainer derives the shared background context from parent.
func NewDrainer(parent context.Context) *Drainer {
	ctx, cancel := context.WithCancel(parent)
	return &Drainer{ctx: ctx, cancel: cancel}
}

// Context is the context background work must honor; it is cancelled when
// Shutdown begins.
func (d *Drainer) Context() context.Context { return d.ctx }

// Go runs f on a tracked goroutine. It refuses with ErrDraining once
// Shutdown has begun, so no work can slip in behind the drain.
func (d *Drainer) Go(f func(ctx context.Context)) error {
	d.mu.Lock()
	if d.closing {
		d.mu.Unlock()
		return ErrDraining
	}
	d.wg.Add(1)
	d.mu.Unlock()
	go func() {
		defer d.wg.Done()
		f(d.ctx)
	}()
	return nil
}

// Draining reports whether Shutdown has begun.
func (d *Drainer) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closing
}

// Shutdown cancels the background context and waits up to timeout for all
// tracked goroutines to finish. It reports whether the drain completed
// (true) or timed out with work still running (false). Subsequent calls
// just wait again.
func (d *Drainer) Shutdown(timeout time.Duration) bool {
	d.mu.Lock()
	d.closing = true
	d.mu.Unlock()
	d.cancel()

	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return true
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}
