package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestRequestIDsUnique(t *testing.T) {
	ids := NewRequestIDs()
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := ids.Next()
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
	}
}

func TestWriteErrorShedSetsRetryAfter(t *testing.T) {
	rec := httptest.NewRecorder()
	var logged []string
	logf := func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	shed := &ShedError{Reason: "queue full", RetryAfter: 250 * time.Millisecond}
	WriteError(rec, logf, "req-1", http.StatusTooManyRequests, shed)

	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want 1 (sub-second hint rounds up)", got)
	}
	var resp ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if resp.RequestID != "req-1" || resp.Status != 429 || resp.RetryAfterSeconds != 1 {
		t.Fatalf("bad error body: %+v", resp)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "req-1") {
		t.Fatalf("log lines = %q, want one mentioning req-1", logged)
	}
}

func TestWriteJSONReportsEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	if err := WriteJSON(rec, http.StatusOK, func() {}); err == nil {
		t.Fatal("encoding a func must fail, got nil error")
	}
}

func TestStatusForRunError(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{context.Canceled, StatusClientClosedRequest},
		{fmt.Errorf("sim aborted: %w", context.Canceled), StatusClientClosedRequest},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{fmt.Errorf("run: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{errors.New("thermal solver diverged"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := StatusForRunError(c.err); got != c.want {
			t.Errorf("StatusForRunError(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestInstrumentCountsStatusClasses(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewServingMetrics(reg)
	handler := func(status int) http.HandlerFunc {
		return Instrument(m, func(w http.ResponseWriter, _ *http.Request) {
			if status == http.StatusOK {
				fmt.Fprintln(w, "ok") // implicit 200 via Write
				return
			}
			w.WriteHeader(status)
		})
	}
	for _, status := range []int{200, 400, 429, 500, 499} {
		req := httptest.NewRequest(http.MethodGet, "/x", nil)
		handler(status).ServeHTTP(httptest.NewRecorder(), req)
	}
	if got := m.ResponsesOK.Value(); got != 1 {
		t.Errorf("2xx = %d, want 1", got)
	}
	if got := m.ResponsesClientError.Value(); got != 2 {
		t.Errorf("4xx = %d, want 2 (400 + 429)", got)
	}
	if got := m.ResponsesServerError.Value(); got != 1 {
		t.Errorf("5xx = %d, want 1", got)
	}
	if got := m.ResponsesClientGone.Value(); got != 1 {
		t.Errorf("499 = %d, want 1", got)
	}
	if got := m.RequestSeconds.Count(); got != 5 {
		t.Errorf("latency observations = %d, want 5", got)
	}
}
