package serving

// Latency-sample aggregation shared by cmd/loadgen's report and the
// serving tests: exact quantiles over a recorded sample set (loadgen runs
// are short enough that keeping every sample is cheaper and more precise
// than a streaming sketch).

import (
	"math"
	"sort"
	"time"
)

// Quantile returns the q-quantile (0 <= q <= 1) of samples using linear
// interpolation between order statistics. It returns 0 for an empty set
// and does not modify samples.
func Quantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return quantileSorted(sorted, q)
}

// Quantiles returns the requested quantiles in one sort.
func Quantiles(samples []time.Duration, qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	if len(samples) == 0 {
		return out
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []time.Duration, q float64) time.Duration {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}
