package serving

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2, MaxQueue: 0, MaxWait: 50 * time.Millisecond}, nil)
	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	rel2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	rel1()
	rel1() // idempotent: a double release must not free a second slot
	if got := a.InFlight(); got != 1 {
		t.Fatalf("InFlight after release = %d, want 1", got)
	}
	rel2()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after both releases = %d, want 0", got)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewServingMetrics(reg)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 0, MaxWait: time.Second}, m)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()

	start := time.Now()
	_, err = a.Acquire(context.Background())
	elapsed := time.Since(start)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("want *ShedError, got %v", err)
	}
	if shed.Reason != "queue full" {
		t.Fatalf("Reason = %q, want queue full", shed.Reason)
	}
	if shed.RetryAfterSeconds() < 1 {
		t.Fatalf("RetryAfterSeconds = %d, want >= 1", shed.RetryAfterSeconds())
	}
	// The whole point of a zero queue: the shed is immediate, not a
	// MaxWait-long stall.
	if elapsed > 100*time.Millisecond {
		t.Fatalf("queue-full shed took %v, want immediate", elapsed)
	}
	if got := m.ShedQueueFull.Value(); got != 1 {
		t.Fatalf("ShedQueueFull = %d, want 1", got)
	}
}

func TestAdmissionQueueWaitTimeout(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewServingMetrics(reg)
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 4, MaxWait: 30 * time.Millisecond}, m)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()

	_, err = a.Acquire(context.Background())
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("want *ShedError, got %v", err)
	}
	if shed.Reason != "wait timeout" {
		t.Fatalf("Reason = %q, want wait timeout", shed.Reason)
	}
	if got := m.ShedWaitTimeout.Value(); got != 1 {
		t.Fatalf("ShedWaitTimeout = %d, want 1", got)
	}
	if got := a.Queued(); got != 0 {
		t.Fatalf("Queued after timeout = %d, want 0", got)
	}
}

func TestAdmissionQueuedRequestGetsFreedSlot(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1, MaxWait: 2 * time.Second}, nil)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	got := make(chan error, 1)
	go func() {
		rel2, err := a.Acquire(context.Background())
		if err == nil {
			rel2()
		}
		got <- err
	}()
	// Let the waiter enter the queue, then free the slot.
	for i := 0; i < 200 && a.Queued() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if a.Queued() != 1 {
		t.Fatalf("waiter never queued")
	}
	rel()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued acquire never completed")
	}
}

func TestAdmissionContextCancelWhileQueued(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1, MaxWait: 5 * time.Second}, nil)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer rel()

	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		got <- err
	}()
	for i := 0; i < 200 && a.Queued() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire never returned")
	}
}

// TestAdmissionBoundHoldsUnderContention hammers the controller from many
// goroutines and asserts the concurrency invariant: the number of callers
// between Acquire success and release never exceeds MaxInFlight.
func TestAdmissionBoundHoldsUnderContention(t *testing.T) {
	const limit = 3
	a := NewAdmission(AdmissionConfig{MaxInFlight: limit, MaxQueue: 2, MaxWait: 5 * time.Millisecond}, nil)
	var (
		cur, peak, admitted, shed int64
		mu                        sync.Mutex
		wg                        sync.WaitGroup
	)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rel, err := a.Acquire(context.Background())
				if err != nil {
					mu.Lock()
					shed++
					mu.Unlock()
					continue
				}
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				admitted++
				mu.Unlock()
				time.Sleep(100 * time.Microsecond)
				mu.Lock()
				cur--
				mu.Unlock()
				rel()
			}
		}()
	}
	wg.Wait()
	if peak > limit {
		t.Fatalf("observed %d concurrent holders, limit %d", peak, limit)
	}
	if admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if a.InFlight() != 0 || a.Queued() != 0 {
		t.Fatalf("leaked state: inflight=%d queued=%d", a.InFlight(), a.Queued())
	}
}
