package serving

// Chaos is the fault-injection hook behind cmd/serve's -chaos flag: it
// makes degradation testable by injecting probabilistic disk-cache
// failures (exercising runner.Cache's retry-with-backoff) and slow-sim
// delays (exercising deadlines and admission backpressure) without
// touching the simulation itself. A seeded generator keeps a chaos run
// reproducible.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Chaos injects faults with fixed probabilities. The zero value and the
// nil pointer are inert, so call sites need no conditionals.
type Chaos struct {
	mu  sync.Mutex
	rng *rand.Rand

	// FailProb is the probability that a guarded disk operation fails
	// with an injected error.
	FailProb float64
	// SlowProb is the probability that MaybeDelay stalls for SlowDelay.
	SlowProb float64
	// SlowDelay is the injected stall duration.
	SlowDelay time.Duration
}

// NewChaos builds a seeded chaos source. failProb and slowProb are
// clamped to [0, 1].
func NewChaos(seed int64, failProb, slowProb float64, slowDelay time.Duration) *Chaos {
	return &Chaos{
		rng:       rand.New(rand.NewSource(seed)),
		FailProb:  clamp01(failProb),
		SlowProb:  clamp01(slowProb),
		SlowDelay: slowDelay,
	}
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// roll draws one uniform sample; safe on nil and on the zero value.
func (c *Chaos) roll(p float64) bool {
	if c == nil || p <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(0))
	}
	return c.rng.Float64() < p
}

// DiskFault returns an injected error with probability FailProb. It has
// the signature runner.Cache expects from its fault hook.
func (c *Chaos) DiskFault(op string) error {
	if c == nil {
		return nil
	}
	if c.roll(c.FailProb) {
		return fmt.Errorf("chaos: injected %s fault", op)
	}
	return nil
}

// MaybeDelay stalls for SlowDelay with probability SlowProb, honoring ctx
// cancellation; the returned error is the context error when the stall
// was interrupted, nil otherwise.
func (c *Chaos) MaybeDelay(ctx context.Context) error {
	if c == nil || c.SlowDelay <= 0 || !c.roll(c.SlowProb) {
		return nil
	}
	t := time.NewTimer(c.SlowDelay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}
