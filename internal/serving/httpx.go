package serving

// HTTP plumbing shared by the serve handlers: request-ID minting,
// structured JSON error responses, run-error → status mapping (including
// the nginx-style 499 for clients that hang up mid-simulation), and a
// latency/status-class instrumentation middleware over the telemetry
// registry.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// StatusClientClosedRequest is the conventional (nginx) status for "the
// client went away before the response was ready". It is never actually
// received by that client; it exists so logs and metrics distinguish
// client disconnects from real server errors.
const StatusClientClosedRequest = 499

// RequestIDs mints unique request identifiers: a per-process prefix plus a
// monotone counter, e.g. "a1b2c3-000042".
type RequestIDs struct {
	prefix string
	n      atomic.Uint64
}

// NewRequestIDs builds a minter whose prefix is derived from the process
// identity and start time, so IDs from different server instances do not
// collide in shared logs.
func NewRequestIDs() *RequestIDs {
	return &RequestIDs{prefix: fmt.Sprintf("%x-%x", os.Getpid(), time.Now().UnixNano()&0xffffff)}
}

// Next returns a fresh request ID.
func (r *RequestIDs) Next() string {
	return fmt.Sprintf("%s-%06d", r.prefix, r.n.Add(1))
}

// ErrorResponse is the structured JSON body of every non-2xx response.
type ErrorResponse struct {
	Error             string `json:"error"`
	Status            int    `json:"status"`
	RequestID         string `json:"request_id,omitempty"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// WriteJSON encodes v as indented JSON. Unlike json.NewEncoder().Encode
// fire-and-forget, it reports the encode/write error so handlers can log
// it (by then the status line is gone — logging is all that is left).
func WriteJSON(w http.ResponseWriter, status int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WriteError emits a structured JSON error response. A *ShedError also
// sets the Retry-After header. logf (nil = silent) receives a one-line
// record of the failure, and of the encode error if writing the body
// itself failed.
func WriteError(w http.ResponseWriter, logf func(format string, args ...any), reqID string, status int, err error) {
	resp := ErrorResponse{Error: err.Error(), Status: status, RequestID: reqID}
	var shed *ShedError
	if errors.As(err, &shed) {
		resp.RetryAfterSeconds = shed.RetryAfterSeconds()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", resp.RetryAfterSeconds))
	}
	if logf != nil {
		logf("req %s: %d %v", reqID, status, err)
	}
	if werr := WriteJSON(w, status, resp); werr != nil && logf != nil {
		logf("req %s: writing error response: %v", reqID, werr)
	}
}

// Health is the JSON readiness body cmd/serve answers on /healthz: the
// remaining-capacity view a cluster prober or operator needs (live
// inflight and queue depth against their bounds, whether a persistent run
// cache is attached, uptime). The HTTP status keeps the old plain-probe
// contract — 200 while serving, 503 while draining — so load balancers
// and scripts that only look at the code are unchanged.
type Health struct {
	Status        string  `json:"status"`
	InFlight      int     `json:"inflight"`
	QueueDepth    int     `json:"queue_depth"`
	MaxInFlight   int     `json:"max_inflight"`
	MaxQueue      int     `json:"max_queue"`
	CacheDir      bool    `json:"cache_dir"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// StatusForRunError maps a simulation error to an HTTP status: client
// disconnect (context.Canceled propagated through the request context) to
// 499, an expired per-request deadline to 504, anything else to 500.
func StatusForRunError(err error) int {
	switch {
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// statusRecorder captures the response status for the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Instrument wraps h with end-to-end latency and status-class accounting
// against m (nil m returns h unchanged).
func Instrument(m *telemetry.ServingMetrics, h http.HandlerFunc) http.HandlerFunc {
	if m == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		m.RequestSeconds.Observe(time.Since(start).Seconds())
		switch {
		case rec.status == StatusClientClosedRequest:
			m.ResponsesClientGone.Inc()
		case rec.status >= 500:
			m.ResponsesServerError.Inc()
		case rec.status >= 400:
			m.ResponsesClientError.Inc()
		default:
			m.ResponsesOK.Inc()
		}
	}
}
