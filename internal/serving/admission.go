// Package serving is the production-hardening layer behind cmd/serve: a
// bounded admission controller (semaphore-limited concurrency plus a short
// bounded wait queue, overflow shed fast with 429 semantics), structured
// JSON error responses with request IDs, graceful-drain tracking for
// background batch goroutines, a deterministic chaos/fault-injection hook,
// and the latency-quantile helper cmd/loadgen reports with.
//
// The design mirrors the paper's actuator lesson: the admission semaphore
// is the bounded actuator, the wait queue is the (anti-windup-clamped)
// integrator, and overflow is shed immediately instead of being allowed to
// wind up into unbounded goroutine backlog.
package serving

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// AdmissionConfig bounds the serving layer's concurrency.
type AdmissionConfig struct {
	// MaxInFlight is the number of simulations allowed to execute
	// concurrently; <= 0 uses GOMAXPROCS.
	MaxInFlight int
	// MaxQueue is the number of requests allowed to wait for a slot once
	// all MaxInFlight slots are taken. 0 means no queue: overflow sheds
	// immediately.
	MaxQueue int
	// MaxWait bounds how long a queued request may wait for a slot before
	// it is shed; <= 0 uses 250ms.
	MaxWait time.Duration
}

// withDefaults resolves zero values.
func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 250 * time.Millisecond
	}
	return c
}

// ShedError reports that admission control rejected a request. Handlers
// translate it into 429 Too Many Requests with a Retry-After hint.
type ShedError struct {
	// Reason distinguishes "queue full" (instant shed) from "wait
	// timeout" (the request queued for the full MaxWait bound).
	Reason string
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("overloaded: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// RetryAfterSeconds renders the hint for a Retry-After header (whole
// seconds, minimum 1 — the header does not carry sub-second values).
func (e *ShedError) RetryAfterSeconds() int {
	s := int(math.Ceil(e.RetryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// Admission is a bounded admission controller: a slot semaphore plus a
// counted wait queue. All methods are safe for concurrent use.
type Admission struct {
	cfg     AdmissionConfig
	slots   chan struct{}
	queued  atomic.Int64
	metrics *telemetry.ServingMetrics // nil = uninstrumented
}

// NewAdmission builds an admission controller. metrics may be nil.
func NewAdmission(cfg AdmissionConfig, metrics *telemetry.ServingMetrics) *Admission {
	cfg = cfg.withDefaults()
	return &Admission{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.MaxInFlight),
		metrics: metrics,
	}
}

// Config returns the resolved (defaulted) configuration.
func (a *Admission) Config() AdmissionConfig { return a.cfg }

// InFlight returns the number of currently held slots.
func (a *Admission) InFlight() int { return len(a.slots) }

// Queued returns the number of requests currently waiting for a slot.
func (a *Admission) Queued() int { return int(a.queued.Load()) }

// Acquire claims an execution slot, waiting up to MaxWait in the bounded
// queue. On success it returns a release function that MUST be called
// exactly once. On overflow it returns a *ShedError; if ctx is cancelled
// while queued it returns the context error.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot means no queueing and no timer.
	select {
	case a.slots <- struct{}{}:
		a.admitted(0)
		return a.releaseFunc(), nil
	default:
	}

	// Saturated: join the bounded queue, or shed immediately when full.
	// The increment is optimistic — the recheck keeps the bound exact
	// under races (a loser backs out before waiting).
	if q := a.queued.Add(1); int(q) > a.cfg.MaxQueue {
		a.queued.Add(-1)
		a.shed(a.metricsShedQueueFull())
		return nil, &ShedError{Reason: "queue full", RetryAfter: a.cfg.MaxWait}
	}
	a.setQueueGauge()
	defer func() {
		a.queued.Add(-1)
		a.setQueueGauge()
	}()

	start := time.Now()
	timer := time.NewTimer(a.cfg.MaxWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.admitted(time.Since(start))
		return a.releaseFunc(), nil
	case <-timer.C:
		a.shed(a.metricsShedWaitTimeout())
		return nil, &ShedError{Reason: "wait timeout", RetryAfter: a.cfg.MaxWait}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// releaseFunc returns the idempotent slot-release closure.
func (a *Admission) releaseFunc() func() {
	var done atomic.Bool
	return func() {
		if !done.CompareAndSwap(false, true) {
			return
		}
		<-a.slots
		if a.metrics != nil {
			a.metrics.InFlight.Set(float64(len(a.slots)))
		}
	}
}

func (a *Admission) admitted(wait time.Duration) {
	if a.metrics == nil {
		return
	}
	a.metrics.Admitted.Inc()
	a.metrics.InFlight.Set(float64(len(a.slots)))
	a.metrics.AdmissionWait.Observe(wait.Seconds())
}

func (a *Admission) metricsShedQueueFull() *telemetry.Counter {
	if a.metrics == nil {
		return nil
	}
	return a.metrics.ShedQueueFull
}

func (a *Admission) metricsShedWaitTimeout() *telemetry.Counter {
	if a.metrics == nil {
		return nil
	}
	return a.metrics.ShedWaitTimeout
}

func (a *Admission) shed(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func (a *Admission) setQueueGauge() {
	if a.metrics != nil {
		a.metrics.QueueDepth.Set(float64(a.queued.Load()))
	}
}
