package sim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestMetricsMatchResult runs an instrumented simulation to completion and
// checks the registry's counters against the authoritative Result tallies:
// the batched delta flush must be exact after Finish.
func TestMetricsMatchResult(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := Config{
		Workload: hotProfile(),
		MaxInsts: testInsts,
		Manager:  piManager(),
		Metrics:  telemetry.NewSimMetrics(reg),
	}
	res := run(t, cfg)

	value := func(name string) int64 {
		t.Helper()
		return reg.Counter(name, "").Value()
	}
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"sim_cycles_total", res.Cycles},
		{"sim_insts_total", res.Insts},
		{"sim_stall_cycles_total", res.StallCycles},
		{"sim_emergency_cycles_total", res.EmergencyCycles},
		{"sim_stress_cycles_total", res.StressCycles},
	} {
		if got := value(c.name); got != int64(c.want) {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	if got := value("dtm_samples_total"); got <= 0 {
		t.Error("no DTM samples counted")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sim_thermal_step_seconds_count") {
		t.Error("thermal-step histogram missing from exposition")
	}
}

// TestZeroAllocTraceRoundTrips drives an instrumented PI run with a trace
// recorder attached and decodes the emitted JSONL back: sample labels,
// cadence and controller fields must survive the trip (acceptance criterion
// for the -trace flag plumbing).
func TestZeroAllocTraceRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	rec := telemetry.NewRecorder(&buf, 13, 64)
	cfg := Config{
		Workload:      hotProfile(),
		MaxInsts:      testInsts,
		Manager:       piManager(),
		Trace:         rec,
		TraceInterval: 500,
	}
	res := run(t, cfg)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Cycles / 500
	if uint64(len(samples)) != want {
		t.Fatalf("decoded %d samples, want %d (cycles=%d)", len(samples), want, res.Cycles)
	}
	sawPID, sawHot := false, false
	for i, s := range samples {
		if s.Run != "hot/PI" {
			t.Fatalf("sample %d run label = %q", i, s.Run)
		}
		if s.Cycle%500 != 0 || s.Cycle == 0 {
			t.Fatalf("sample %d off-cadence cycle %d", i, s.Cycle)
		}
		if len(s.BlockTemps) != len(res.Blocks) {
			t.Fatalf("sample %d has %d block temps, want %d", i, len(s.BlockTemps), len(res.Blocks))
		}
		if s.PTerm != 0 || s.ITerm != 0 {
			sawPID = true
		}
		if s.HotTemp > 100 {
			sawHot = true
		}
	}
	if !sawPID {
		t.Error("no sample carried controller terms")
	}
	if !sawHot {
		t.Error("trace never saw a heated block")
	}
}
