package sim

import (
	"math"
	"testing"

	"repro/internal/control"
	"repro/internal/dtm"
	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/sensor"
	"repro/internal/workload"
)

// hotProfile is a compact workload that heats several blocks past the
// emergency threshold quickly (high ILP, predictable branches).
func hotProfile() workload.Profile {
	return workload.Profile{
		Name: "hot",
		Seed: 77,
		Phases: []workload.Phase{{
			Insts:            1 << 20,
			Mix:              workload.Mix{IntALU: 42, IntMult: 2, Load: 22, Store: 10, Branch: 14, Call: 1},
			DepMean:          10,
			LoopIters:        90,
			BodySize:         64,
			NumLoops:         20,
			BranchRandomFrac: 0.04,
			BranchBias:       0.6,
			WorkingSet:       96 << 10,
			StreamFrac:       0.8,
		}},
	}
}

func coldProfile() workload.Profile {
	p := hotProfile()
	p.Name = "cold"
	p.Phases[0].DepMean = 1.5
	p.Phases[0].BranchRandomFrac = 0.5
	p.Phases[0].WorkingSet = 8 << 20
	p.Phases[0].StreamFrac = 0.1
	return p
}

const testInsts = 600_000

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Workload: hotProfile()}); err == nil {
		t.Error("zero MaxInsts accepted")
	}
	bad := hotProfile()
	bad.Phases = nil
	if _, err := Run(Config{Workload: bad, MaxInsts: 1000}); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestUncontrolledHotRunEntersEmergency(t *testing.T) {
	res := run(t, Config{Workload: hotProfile(), MaxInsts: testInsts})
	if res.EmergencyCycles == 0 {
		t.Fatal("hot profile never entered emergency")
	}
	if res.StressCycles < res.EmergencyCycles {
		t.Error("stress cycles < emergency cycles")
	}
	if res.IPC <= 0.5 || res.IPC > 4 {
		t.Errorf("IPC = %v", res.IPC)
	}
	if res.AvgChipPower < 20 || res.AvgChipPower > 77 {
		t.Errorf("avg chip power = %v W", res.AvgChipPower)
	}
	if res.Policy != "none" || res.Benchmark != "hot" {
		t.Errorf("labels = %q/%q", res.Benchmark, res.Policy)
	}
	// Block results populated and self-consistent.
	if len(res.Blocks) != int(floorplan.NumBlocks) {
		t.Fatalf("blocks = %d", len(res.Blocks))
	}
	for _, b := range res.Blocks {
		if b.MaxTemp < b.AvgTemp {
			t.Errorf("%s max < avg temp", b.Name)
		}
		if b.AvgTemp < 100 {
			t.Errorf("%s avg temp below sink", b.Name)
		}
	}
	if res.BlockByID(floorplan.IntExec) == nil {
		t.Error("BlockByID lookup failed")
	}
	if res.BlockByID(floorplan.BlockID(99)) != nil {
		t.Error("BlockByID found nonexistent block")
	}
}

func TestColdRunStaysCool(t *testing.T) {
	res := run(t, Config{Workload: coldProfile(), MaxInsts: testInsts})
	if res.EmergencyCycles != 0 {
		t.Errorf("cold profile hit emergency %d cycles", res.EmergencyCycles)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := Config{Workload: hotProfile(), MaxInsts: 200_000}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Cycles != b.Cycles || a.IPC != b.IPC ||
		a.EmergencyCycles != b.EmergencyCycles ||
		math.Abs(a.AvgChipPower-b.AvgChipPower) > 1e-12 {
		t.Errorf("non-deterministic results:\n%+v\n%+v", a, b)
	}
}

func newPIManager(setpoint float64) *dtm.Manager {
	plant := control.Plant{K: 12, Tau: 180e-6, Delay: 333.5e-9}
	g := control.MustTune(plant, control.Spec{Kind: control.KindPI})
	ctl := control.NewPID(g, setpoint, 0.2, 667e-9)
	return dtm.NewManager(dtm.NewCT(control.KindPI, ctl))
}

func TestPIControlEliminatesEmergencies(t *testing.T) {
	base := run(t, Config{Workload: hotProfile(), MaxInsts: testInsts})
	ctl := run(t, Config{
		Workload: hotProfile(),
		MaxInsts: testInsts,
		Manager:  newPIManager(111.1),
	})
	if base.EmergencyCycles == 0 {
		t.Fatal("baseline must have emergencies for this test")
	}
	if ctl.EmergencyCycles != 0 {
		t.Errorf("PI left %d emergency cycles (%.2f%%)",
			ctl.EmergencyCycles, 100*ctl.EmergencyFrac())
	}
	if ctl.Policy != "PI" {
		t.Errorf("policy label = %q", ctl.Policy)
	}
	if ctl.AvgDuty >= 1 {
		t.Error("controller never throttled")
	}
	if ctl.Engagements == 0 {
		t.Error("no engagements recorded")
	}
	// Performance: retained IPC must exceed a crude toggle1-like bound.
	if ctl.IPC < 0.75*base.IPC {
		t.Errorf("PI retained only %.1f%% of baseline IPC", 100*ctl.IPC/base.IPC)
	}
}

func TestToggle1EliminatesEmergenciesWithMoreLoss(t *testing.T) {
	tg := dtm.NewManager(dtm.NewToggle1(110.3, 5))
	res := run(t, Config{Workload: hotProfile(), MaxInsts: testInsts, Manager: tg})
	if res.EmergencyCycles != 0 {
		t.Errorf("toggle1 left %d emergency cycles", res.EmergencyCycles)
	}
	pi := run(t, Config{Workload: hotProfile(), MaxInsts: testInsts, Manager: newPIManager(111.1)})
	if pi.IPC <= res.IPC {
		t.Errorf("PI IPC %.3f not above toggle1 %.3f", pi.IPC, res.IPC)
	}
}

func TestInterruptMechanismCostsStalls(t *testing.T) {
	mgr := dtm.NewManager(dtm.NewToggle1(110.3, 5))
	mgr.Mechanism = dtm.Interrupt
	res := run(t, Config{Workload: hotProfile(), MaxInsts: testInsts, Manager: mgr})
	if res.StallCycles == 0 {
		t.Error("interrupt mechanism recorded no stalls")
	}
	if res.EmergencyCycles != 0 {
		t.Errorf("emergencies with interrupt mechanism: %d", res.EmergencyCycles)
	}
}

func TestFrequencyScalingCoolsChip(t *testing.T) {
	sc := dtm.NewFreqScaling(110.3, 0.5, 5)
	res := run(t, Config{Workload: hotProfile(), MaxInsts: testInsts, Scaling: sc})
	if res.EmergencyCycles != 0 {
		t.Errorf("frequency scaling left %d emergency cycles", res.EmergencyCycles)
	}
	if res.Policy != "fscale" {
		t.Errorf("policy = %q", res.Policy)
	}
	if res.StallCycles == 0 {
		t.Error("no resync stalls recorded")
	}
	// Wall time must exceed the pure cycle count / f because of scaling.
	if res.WallSeconds <= float64(res.Cycles)/1.5e9 {
		t.Error("wall time does not reflect slowed clock")
	}
	if res.InstsPerSecond() <= 0 {
		t.Error("InstsPerSecond not positive")
	}
}

func TestProxyComparisonRuns(t *testing.T) {
	res := run(t, Config{
		Workload:     hotProfile(),
		MaxInsts:     testInsts,
		ProxyWindows: []int{10_000, 500_000},
	})
	if len(res.Proxies) != 2 {
		t.Fatalf("proxies = %d", len(res.Proxies))
	}
	for _, p := range res.Proxies {
		if p.PerStruct.Cycles != res.Cycles || p.ChipWide.Cycles != res.Cycles {
			t.Errorf("window %d: comparison cycles mismatch", p.Window)
		}
		if p.PerStruct.TrueEmergency != res.EmergencyCycles {
			t.Errorf("window %d: true emergencies mismatch", p.Window)
		}
	}
	// The long window must miss more true-emergency cycles than the
	// short window (the Section 6 result).
	short, long := res.Proxies[0], res.Proxies[1]
	if long.PerStruct.Missed < short.PerStruct.Missed {
		t.Errorf("500K window missed %d < 10K window %d",
			long.PerStruct.Missed, short.PerStruct.Missed)
	}
}

func TestTraceRecording(t *testing.T) {
	res := run(t, Config{
		Workload:    hotProfile(),
		MaxInsts:    100_000,
		TraceStride: 1000,
	})
	if res.TempTrace == nil || res.TempTrace.Len() == 0 {
		t.Fatal("no temperature trace")
	}
	if res.DutyTrace.Len() != res.TempTrace.Len() {
		t.Error("trace lengths differ")
	}
	if len(res.BlockTrace) != len(res.Blocks) {
		t.Error("missing per-block traces")
	}
	if res.TempTrace.Max() <= 100 {
		t.Error("temperature trace never above sink")
	}
}

func TestInitTempsRespected(t *testing.T) {
	init := make([]float64, floorplan.NumBlocks)
	for i := range init {
		init[i] = 108
	}
	res := run(t, Config{
		Workload:  coldProfile(),
		MaxInsts:  50_000,
		InitTemps: init,
	})
	// Starting at 108 the max temperature must reflect the warm start.
	for _, b := range res.Blocks {
		if b.MaxTemp < 104 {
			t.Errorf("%s max temp %v ignores 108 C init", b.Name, b.MaxTemp)
		}
	}
}

func TestMaxCyclesBoundsRun(t *testing.T) {
	res := run(t, Config{
		Workload:  hotProfile(),
		MaxInsts:  1 << 40, // unreachable
		MaxCycles: 10_000,
	})
	if res.Cycles != 10_000 {
		t.Errorf("cycles = %d, want exactly the bound", res.Cycles)
	}
}

func TestResultFractions(t *testing.T) {
	r := Result{Cycles: 100, EmergencyCycles: 25, StressCycles: 50}
	if r.EmergencyFrac() != 0.25 || r.StressFrac() != 0.5 {
		t.Errorf("fracs = %v/%v", r.EmergencyFrac(), r.StressFrac())
	}
	var empty Result
	if empty.EmergencyFrac() != 0 || empty.StressFrac() != 0 || empty.InstsPerSecond() != 0 {
		t.Error("empty result fractions not zero")
	}
}

// Tangential coupling must not change the qualitative outcome (Figure 3C
// justification).
func TestTangentialSecondOrderAtSystemLevel(t *testing.T) {
	plain := run(t, Config{Workload: hotProfile(), MaxInsts: 200_000})
	tang := run(t, Config{Workload: hotProfile(), MaxInsts: 200_000, Tangential: true})
	for i := range plain.Blocks {
		d := math.Abs(plain.Blocks[i].MaxTemp - tang.Blocks[i].MaxTemp)
		if d > 0.6 {
			t.Errorf("%s: tangential shifted max temp by %v C", plain.Blocks[i].Name, d)
		}
	}
}

// A miscalibrated sensor reading low lets the true temperature sail past
// the threshold the policy believes it is enforcing — the hazard behind
// the paper's "sensor modeling is future work" caveat.
func TestSensorOffsetShiftsControlPoint(t *testing.T) {
	mkCfg := func(offset float64) Config {
		return Config{
			Workload: hotProfile(),
			MaxInsts: testInsts,
			Manager:  newPIManager(111.1),
			Sensor:   sensor.Sensor{Offset: offset},
		}
	}
	ideal := run(t, mkCfg(0))
	low := run(t, mkCfg(-0.8)) // sensor reads 0.8 C cold
	if ideal.EmergencyCycles != 0 {
		t.Fatalf("ideal sensor run has %d emergencies", ideal.EmergencyCycles)
	}
	if low.EmergencyCycles == 0 {
		t.Error("cold-reading sensor should let true temperature enter emergency")
	}
	// A conservative (hot-reading) sensor must stay safe.
	high := run(t, mkCfg(+0.5))
	if high.EmergencyCycles != 0 {
		t.Errorf("hot-reading sensor run has %d emergencies", high.EmergencyCycles)
	}
}

// The constant-heatsink assumption (Section 4.3): over a millisecond-scale
// run the package node drifts by millikelvins.
func TestChipSinkDriftNegligibleOverShortRuns(t *testing.T) {
	res := run(t, Config{
		Workload:       hotProfile(),
		MaxInsts:       testInsts,
		CoupleChipSink: true,
	})
	if res.SinkDrift == 0 {
		t.Fatal("coupled run reports zero drift; coupling inactive?")
	}
	if d := math.Abs(res.SinkDrift); d > 0.05 {
		t.Errorf("heatsink drifted %v C over a short run; paper assumption violated", d)
	}
}

// Fetch throttling and speculation control must work end to end as DTM
// policies (the extension mechanisms of Section 2.1).
func TestThrottleAndSpecControlPolicies(t *testing.T) {
	for _, mk := range []func() *dtm.Manager{
		func() *dtm.Manager { return dtm.NewManager(dtm.NewThrottle(110.3, 1, 5)) },
		func() *dtm.Manager { return dtm.NewManager(dtm.NewSpecControl(110.3, 1, 5)) },
	} {
		mgr := mk()
		res := run(t, Config{Workload: hotProfile(), MaxInsts: testInsts, Manager: mgr})
		if res.EmergencyFrac() > 0.05 {
			t.Errorf("%s left %.1f%% emergency cycles", mgr.Policy.Name(), 100*res.EmergencyFrac())
		}
		base := run(t, Config{Workload: hotProfile(), MaxInsts: testInsts})
		if res.IPC >= base.IPC {
			t.Errorf("%s cost no performance (%.3f vs %.3f): not engaging?",
				mgr.Policy.Name(), res.IPC, base.IPC)
		}
	}
}

// Limited sensor placement (Section 4.2's caveat): monitoring only a block
// that is not the workload's hot spot lets emergencies escape the policy,
// while full coverage catches them.
func TestLimitedSensorPlacementMissesHotspots(t *testing.T) {
	// hotProfile's hottest blocks are intexec/bpred; monitor only the
	// FP unit, which this integer workload leaves idle.
	blind := run(t, Config{
		Workload:        hotProfile(),
		MaxInsts:        testInsts,
		Manager:         newPIManager(111.1),
		MonitoredBlocks: []floorplan.BlockID{floorplan.FPExec},
	})
	if blind.EmergencyCycles == 0 {
		t.Error("policy with a misplaced sensor still prevented emergencies")
	}
	full := run(t, Config{
		Workload: hotProfile(),
		MaxInsts: testInsts,
		Manager:  newPIManager(111.1),
	})
	if full.EmergencyCycles != 0 {
		t.Errorf("full sensor coverage left %d emergencies", full.EmergencyCycles)
	}
	// Monitoring the actual hot spots is as good as full coverage here.
	spot := run(t, Config{
		Workload:        hotProfile(),
		MaxInsts:        testInsts,
		Manager:         newPIManager(111.1),
		MonitoredBlocks: []floorplan.BlockID{floorplan.IntExec, floorplan.BPred},
	})
	if spot.EmergencyCycles != 0 {
		t.Errorf("hot-spot sensors left %d emergencies", spot.EmergencyCycles)
	}
}

func TestMonitoredBlocksValidated(t *testing.T) {
	_, err := Run(Config{
		Workload:        hotProfile(),
		MaxInsts:        1000,
		Manager:         newPIManager(111.1),
		MonitoredBlocks: []floorplan.BlockID{floorplan.Chip},
	})
	if err == nil {
		t.Error("chip node accepted as a per-structure sensor")
	}
}

// The hierarchical deployment of Section 2.1: a deliberately weak primary
// (toggle at 0.9 duty) cannot contain the hot workload, so the scaling
// backup must escalate; together they eliminate almost all emergencies.
func TestHierarchyEscalatesWhenPrimaryFails(t *testing.T) {
	// Duty 0.97 quantizes to full speed: the primary is effectively
	// inert, forcing escalation.
	weak := &dtm.Toggle{Trigger: 110.3, EngagedDuty: 0.97, PolicyDelay: 5}
	h := dtm.NewHierarchy(weak, dtm.NewVoltageScaling(111.2, 0.5, 10), 111.2)
	res := run(t, Config{Workload: hotProfile(), MaxInsts: testInsts, Hierarchy: h})
	if h.Escalations() == 0 {
		t.Fatal("backup never escalated despite weak primary")
	}
	base := run(t, Config{Workload: hotProfile(), MaxInsts: testInsts})
	if res.EmergencyFrac() >= base.EmergencyFrac()/4 {
		t.Errorf("hierarchy emergency %.2f%% vs base %.2f%% — backup ineffective",
			100*res.EmergencyFrac(), 100*base.EmergencyFrac())
	}
	if res.StallCycles == 0 {
		t.Error("no resync stalls from escalations")
	}
	if res.Policy == "none" {
		t.Error("policy label missing")
	}
}

func TestHierarchyExclusiveWithManager(t *testing.T) {
	h := dtm.NewHierarchy(dtm.NewToggle1(110.3, 1), dtm.NewFreqScaling(111.2, 0.5, 1), 111.2)
	_, err := Run(Config{
		Workload:  hotProfile(),
		MaxInsts:  1000,
		Hierarchy: h,
		Manager:   newPIManager(111.1),
	})
	if err == nil {
		t.Error("Hierarchy+Manager accepted")
	}
}

// Leakage feedback (extension): temperature-dependent static power makes
// the uncontrolled run hotter, and the PI controller absorbs the extra
// heat without being retuned — the robustness the paper claims for
// feedback control.
func TestLeakageFeedback(t *testing.T) {
	noLeak := run(t, Config{Workload: hotProfile(), MaxInsts: testInsts})
	leak := run(t, Config{
		Workload: hotProfile(),
		MaxInsts: testInsts,
		Leakage:  power.DefaultLeakage(),
	})
	if leak.EmergencyCycles <= noLeak.EmergencyCycles {
		t.Errorf("leakage did not worsen emergencies: %d vs %d",
			leak.EmergencyCycles, noLeak.EmergencyCycles)
	}
	if leak.AvgChipPower <= noLeak.AvgChipPower {
		t.Error("leakage did not raise chip power")
	}
	ctl := run(t, Config{
		Workload: hotProfile(),
		MaxInsts: testInsts,
		Leakage:  power.DefaultLeakage(),
		Manager:  newPIManager(111.1),
	})
	if ctl.EmergencyCycles != 0 {
		t.Errorf("PI with leakage left %d emergency cycles", ctl.EmergencyCycles)
	}
	if ctl.AvgDuty >= leak.AvgDuty {
		t.Error("controller did not throttle harder to pay the leakage tax")
	}
}

func TestLeakageValidatedAtRunStart(t *testing.T) {
	_, err := Run(Config{
		Workload: hotProfile(),
		MaxInsts: 1000,
		Leakage:  &power.LeakageModel{Frac0: -1, DoubleEveryK: 5},
	})
	if err == nil {
		t.Error("invalid leakage model accepted")
	}
}

func TestInitTempsLengthValidated(t *testing.T) {
	nblk := len(floorplan.Default())
	for _, n := range []int{1, nblk - 1, nblk + 1, 4 * nblk} {
		cfg := Config{Workload: hotProfile(), MaxInsts: 1000, InitTemps: make([]float64, n)}
		if _, err := Run(cfg); err == nil {
			t.Errorf("InitTemps of length %d accepted for %d blocks", n, nblk)
		}
	}
	// The exact length still works and is honored.
	init := make([]float64, nblk)
	for i := range init {
		init[i] = 105
	}
	cfg := Config{Workload: hotProfile(), MaxInsts: 100, MaxCycles: 100, InitTemps: init}
	res := run(t, cfg)
	for _, b := range res.Blocks {
		if b.MaxTemp < 104 {
			t.Fatalf("block %s never saw its 105 C initial temperature (max %v)", b.Name, b.MaxTemp)
		}
	}
}

// TestThermalTimeTracksWallUnderScaling is the regression test for the
// frequency-scaling drift bug: rounding the per-cycle thermal step count
// used to advance thermal time by 1 unit step per cycle at freqFactor
// 0.75 while wall time advanced 1.333 cycle times, a 25% systematic
// divergence. With the fractional-step carry, integrated thermal time
// must match wall time to within one cycle time over a 1M-cycle run.
func TestThermalTimeTracksWallUnderScaling(t *testing.T) {
	const cycles = 1_000_000
	cfg := Config{
		Workload:  hotProfile(),
		MaxInsts:  1 << 40, // never reached: MaxCycles is the budget
		MaxCycles: cycles,
		// Trigger at 0 C: scaling engages at the first sample and
		// stays engaged, so freqFactor is 0.75 for ~all cycles.
		Scaling: dtm.NewFreqScaling(0, 0.75, 1<<30),
	}
	res := run(t, cfg)
	if res.Cycles != cycles {
		t.Fatalf("ran %d cycles, want %d", res.Cycles, cycles)
	}
	dt := 1.0 / 1.5e9
	// Sanity: scaling really was engaged (wall time well beyond the
	// unscaled cycles*dt).
	if res.WallSeconds < float64(cycles)*dt*1.2 {
		t.Fatalf("scaling never engaged: wall %v vs unscaled %v", res.WallSeconds, float64(cycles)*dt)
	}
	drift := math.Abs(res.WallSeconds - res.ThermalSeconds)
	// The carry bounds the drift by one cycle time; the 0.1% headroom
	// covers float summation noise across the two 1M-term time sums.
	if drift > dt*1.001 {
		t.Errorf("thermal time drifted %.3g s from wall time (%.3g cycle times); want <= 1 cycle",
			drift, drift/dt)
	}
}

func TestThermalTimeEqualsWallUnscaled(t *testing.T) {
	res := run(t, Config{Workload: hotProfile(), MaxInsts: 50_000})
	if res.ThermalSeconds != res.WallSeconds {
		t.Errorf("unscaled run: thermal %v != wall %v", res.ThermalSeconds, res.WallSeconds)
	}
}
