package sim

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/control"
	"repro/internal/dtm"
	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/sensor"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// MulticoreConfig parameterizes an N-core simulation: one workload per
// core on a floorplan.Tile(n) die with cross-core lateral coupling, a
// private pipeline and power model per core, and per-core control — fetch
// managers, adjustable-gain DVFS, or a chip-level hierarchical power
// budget.
type MulticoreConfig struct {
	// Workloads holds one profile per core; its length sets the core
	// count.
	Workloads []workload.Profile
	// Pipeline configures every core; zero value uses Table 2 defaults.
	Pipeline pipeline.Config
	// Gating is the clock-gating style for the per-core power models.
	Gating power.GatingStyle
	// Thresholds are the thermal limits; zero value uses defaults.
	Thresholds Thresholds
	// Managers optionally applies one fetch-duty DTM manager per core
	// (length 0 or exactly the core count). All managers must share one
	// sampling interval. Mutually exclusive with Budget.
	Managers []*dtm.Manager
	// DVFS optionally applies one adjustable-gain integral frequency
	// controller per core (length 0 or the core count); the commanded
	// factor gates core clock ticks and scales dynamic power by f^2
	// (net f^3 power at f throughput). Composable with Managers.
	DVFS []*dtm.AdaptiveGain
	// Budget optionally applies the hierarchical global-budget +
	// local-PI controller over all cores. Mutually exclusive with
	// Managers.
	Budget *dtm.PowerBudget
	// Sensors optionally models per-core non-ideal sensors; nil gives
	// every controller the true model temperatures.
	Sensors *sensor.Bank
	// MaxInsts is the per-core committed-instruction budget.
	MaxInsts uint64
	// MaxCycles is a hard cycle bound (safety net; 0 = 50x MaxInsts).
	MaxCycles uint64
	// ThermalStride selects the thermal integration mode exactly as in
	// Config: 0 auto-selects the macro-stepped fast path, 1 forces the
	// per-cycle Euler path, N>1 sets an explicit window.
	ThermalStride uint64
	// InitTemps optionally sets initial block temperatures over the
	// whole die (core-major, length cores x NumBlocks).
	InitTemps []float64
}

// CoreResult is one core's outcome within a multicore run.
type CoreResult struct {
	Workload string
	// Cycles is the cycle on which the core hit its instruction budget
	// (the full run length if it never did).
	Cycles          uint64
	Insts           uint64
	IPC             float64
	AvgDuty         float64
	AvgFreq         float64
	StallCycles     uint64
	EmergencyCycles uint64
	StressCycles    uint64
	Blocks          []BlockResult
}

// MulticoreResult is the outcome of a multicore run. Emergency and stress
// counts at the top level are chip-wide any-block unions; per-core unions
// live in PerCore.
type MulticoreResult struct {
	Workload string
	Policy   string
	Cores    int

	Cycles          uint64
	WallSeconds     float64
	Insts           uint64
	IPC             float64
	AvgChipPower    float64
	MaxChipPower    float64
	EmergencyCycles uint64
	StressCycles    uint64

	PerCore []CoreResult
}

// EmergencyFrac returns the fraction of cycles any block spent above the
// emergency threshold.
func (r *MulticoreResult) EmergencyFrac() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.EmergencyCycles) / float64(r.Cycles)
}

// StressFrac returns the fraction of cycles any block spent above the
// stress threshold.
func (r *MulticoreResult) StressFrac() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.StressCycles) / float64(r.Cycles)
}

// Multicore is a steppable N-core simulation. One global clock drives
// every core; per-core frequency factors gate core ticks through a carry
// accumulator, so the die-wide thermal network always advances in uniform
// wall-clock cycles and the macro-stepped fast path needs no per-core time
// dilation. Step is allocation-free in the steady state.
type Multicore struct {
	cfg   MulticoreConfig
	nc    int
	nb    int // blocks per core
	cores []*pipeline.Core
	pms   []*power.Model
	net   *thermal.Network
	res   *MulticoreResult

	act      pipeline.Activity
	powerVec []float64 // flat die power, core-major
	temps    []float64
	sensed   []float64 // per-core sensor scratch (nb)

	duty      []float64
	freq      []float64
	carry     []float64
	dutySum   []float64
	freqSum   []float64
	stallLeft []uint64
	coreDone  []bool
	doneCount int

	// Per-sample scratch for the budget controller.
	sampPow    []float64
	hotScratch []float64
	powScratch []float64
	dutyTarget []float64

	blockTemp []stats.Running
	blkMax    []float64
	blkEmerg  []uint64
	blkStress []uint64
	coreEmerg []uint64
	coreStr   []uint64
	chipPower stats.Running

	// Window-flush scratch: per-core prefix/suffix above-set maxima.
	emPre, emSuf []uint64
	stPre, stSuf []uint64

	interval  uint64
	hasMgr    bool
	hasDVFS   bool
	hasBudget bool
	hasSensor bool

	dt    float64
	cycle uint64

	fast     bool
	stride   uint64
	winLen   uint64
	winLeft  uint64
	powerAcc []float64
	winTss   []float64

	finished bool
}

// NewMulticore validates cfg and builds a steppable multicore simulation.
func NewMulticore(cfg MulticoreConfig) (*Multicore, error) {
	nc := len(cfg.Workloads)
	if nc == 0 {
		return nil, fmt.Errorf("sim: multicore run needs at least one workload")
	}
	if cfg.MaxInsts == 0 {
		return nil, fmt.Errorf("sim: MaxInsts must be positive")
	}
	if cfg.Pipeline.FetchWidth == 0 {
		cfg.Pipeline = pipeline.DefaultConfig()
	}
	if cfg.Thresholds == (Thresholds{}) {
		cfg.Thresholds = DefaultThresholds()
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 50 * cfg.MaxInsts
	}
	if len(cfg.Managers) != 0 && len(cfg.Managers) != nc {
		return nil, fmt.Errorf("sim: %d managers for %d cores", len(cfg.Managers), nc)
	}
	if len(cfg.DVFS) != 0 && len(cfg.DVFS) != nc {
		return nil, fmt.Errorf("sim: %d DVFS controllers for %d cores", len(cfg.DVFS), nc)
	}
	if cfg.Budget != nil && len(cfg.Managers) != 0 {
		return nil, fmt.Errorf("sim: Budget is mutually exclusive with Managers")
	}
	if cfg.Budget != nil && cfg.Budget.Cores() != nc {
		return nil, fmt.Errorf("sim: budget controller manages %d cores, run has %d", cfg.Budget.Cores(), nc)
	}

	nb := int(floorplan.NumBlocks)
	if cfg.Sensors != nil && (cfg.Sensors.Cores() != nc || cfg.Sensors.BlocksPerCore() != nb) {
		return nil, fmt.Errorf("sim: sensor bank is %dx%d, run is %dx%d",
			cfg.Sensors.Cores(), cfg.Sensors.BlocksPerCore(), nc, nb)
	}

	tcfg := thermal.TileConfig(nc)
	tcfg.SinkTemp = cfg.Thresholds.SinkTemp
	net := thermal.New(tcfg)
	nblk := net.NumBlocks()
	if cfg.InitTemps != nil {
		if len(cfg.InitTemps) != nblk {
			return nil, fmt.Errorf("sim: InitTemps has %d entries but the die has %d blocks",
				len(cfg.InitTemps), nblk)
		}
		for i, t := range cfg.InitTemps {
			net.SetTemp(i, t)
		}
	}

	interval := uint64(dtm.DefaultSampleInterval)
	for i, m := range cfg.Managers {
		if m == nil {
			return nil, fmt.Errorf("sim: nil manager for core %d", i)
		}
		m.Reset()
		if i == 0 {
			interval = m.Interval
		} else if m.Interval != interval {
			return nil, fmt.Errorf("sim: managers disagree on sampling interval (%d vs %d)", m.Interval, interval)
		}
	}
	if interval == 0 {
		return nil, fmt.Errorf("sim: multicore managers need a nonzero sampling interval")
	}
	for i, d := range cfg.DVFS {
		if d == nil {
			return nil, fmt.Errorf("sim: nil DVFS controller for core %d", i)
		}
		d.Reset()
	}
	if cfg.Budget != nil {
		cfg.Budget.Reset()
	}

	s := &Multicore{
		cfg:   cfg,
		nc:    nc,
		nb:    nb,
		cores: make([]*pipeline.Core, nc),
		pms:   make([]*power.Model, nc),
		net:   net,

		powerVec: make([]float64, nblk),
		temps:    make([]float64, nblk),
		sensed:   make([]float64, nb),

		duty:      make([]float64, nc),
		freq:      make([]float64, nc),
		carry:     make([]float64, nc),
		dutySum:   make([]float64, nc),
		freqSum:   make([]float64, nc),
		stallLeft: make([]uint64, nc),
		coreDone:  make([]bool, nc),

		sampPow:    make([]float64, nc),
		hotScratch: make([]float64, nc),
		powScratch: make([]float64, nc),
		dutyTarget: make([]float64, nc),

		blockTemp: make([]stats.Running, nblk),
		blkMax:    make([]float64, nblk),
		blkEmerg:  make([]uint64, nblk),
		blkStress: make([]uint64, nblk),
		coreEmerg: make([]uint64, nc),
		coreStr:   make([]uint64, nc),

		emPre: make([]uint64, nc),
		emSuf: make([]uint64, nc),
		stPre: make([]uint64, nc),
		stSuf: make([]uint64, nc),

		interval:  interval,
		hasMgr:    len(cfg.Managers) > 0,
		hasDVFS:   len(cfg.DVFS) > 0,
		hasBudget: cfg.Budget != nil,
		hasSensor: cfg.Sensors != nil,

		dt: tcfg.CycleTime,
	}
	for c := 0; c < nc; c++ {
		gen, err := workload.NewGenerator(cfg.Workloads[c])
		if err != nil {
			return nil, fmt.Errorf("sim: core %d workload: %w", c, err)
		}
		s.cores[c], err = pipeline.New(cfg.Pipeline, gen)
		if err != nil {
			return nil, err
		}
		pcfg := power.DefaultConfig()
		pcfg.Gating = cfg.Gating
		pcfg.Pipeline = cfg.Pipeline
		s.pms[c], err = power.New(pcfg)
		if err != nil {
			return nil, err
		}
		s.duty[c] = 1
		s.freq[c] = 1
	}
	net.Temps(s.temps)

	policy := "none"
	switch {
	case s.hasBudget:
		policy = cfg.Budget.Name()
	case s.hasMgr:
		policy = cfg.Managers[0].Policy.Name()
	}
	if s.hasDVFS {
		if policy == "none" {
			policy = cfg.DVFS[0].Name()
		} else {
			policy += "+" + cfg.DVFS[0].Name()
		}
	}
	s.res = &MulticoreResult{
		Workload: cfg.Workloads[0].Name,
		Policy:   policy,
		Cores:    nc,
		PerCore:  make([]CoreResult, nc),
	}
	for c := range s.res.PerCore {
		s.res.PerCore[c].Workload = cfg.Workloads[c].Name
	}

	stride := cfg.ThermalStride
	if stride == 0 {
		stride = DefaultThermalStride
	}
	if stride > 1 {
		s.fast = true
		s.stride = stride
		s.powerAcc = make([]float64, nblk)
		s.winTss = make([]float64, nblk)
		s.startWindow()
	}
	return s, nil
}

// Cycle returns the number of cycles simulated so far.
func (s *Multicore) Cycle() uint64 { return s.cycle }

// Done reports whether every core hit its instruction budget or the cycle
// bound was reached.
func (s *Multicore) Done() bool {
	return s.doneCount == s.nc || s.cycle >= s.cfg.MaxCycles
}

// maxOf returns the maximum of a non-empty slice.
func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Step advances every core and the die-wide thermal network by one global
// clock cycle.
func (s *Multicore) Step() {
	s.cycle++
	cycle := s.cycle
	res := s.res
	nb := s.nb

	chip := 0.0
	for c := 0; c < s.nc; c++ {
		core := s.cores[c]
		execute := false
		switch {
		case s.stallLeft[c] > 0:
			s.stallLeft[c]--
			s.res.PerCore[c].StallCycles++
		case s.coreDone[c]:
			// A finished core idles (clock still runs; its power model
			// decays toward the gated floor).
		case s.freq[c] == 1:
			execute = true
		default:
			// DVFS tick gating: at factor f the core executes f of the
			// global clock ticks, carried exactly across cycles.
			if s.carry[c] += s.freq[c]; s.carry[c] >= 1 {
				s.carry[c]--
				execute = true
			}
		}
		if execute {
			core.Step(&s.act)
		} else {
			s.act.Reset()
		}
		if !s.coreDone[c] && core.Stats().Committed >= s.cfg.MaxInsts {
			s.coreDone[c] = true
			s.doneCount++
			s.res.PerCore[c].Cycles = cycle
		}

		seg := s.powerVec[c*nb : (c+1)*nb]
		s.pms[c].BlockPower(&s.act, seg)
		pf := 1.0
		if f := s.freq[c]; f != 1 {
			pf = f * f
			for i := range seg {
				seg[i] *= pf
			}
		}
		// Chip overhead (clock tree, I/O) scales with the core's voltage/
		// frequency point too, so it rides the same f^2 factor.
		corePow := pf * s.pms[c].ChipOverhead(&s.act)
		for _, p := range seg {
			corePow += p
		}
		chip += corePow
		s.sampPow[c] += corePow
	}
	s.chipPower.Add(chip)
	if chip > res.MaxChipPower {
		res.MaxChipPower = chip
	}

	if s.fast {
		acc := s.powerAcc
		for i, p := range s.powerVec {
			acc[i] += p
		}
		res.WallSeconds += s.dt
		if s.winLeft--; s.winLeft == 0 {
			s.flushWindow(s.winLen)
			s.startWindow()
		}
	} else {
		s.stepEuler()
	}

	if cycle%s.interval == 0 {
		s.sample(cycle)
	}
	for c := 0; c < s.nc; c++ {
		s.dutySum[c] += s.duty[c]
		s.freqSum[c] += s.freq[c]
	}
}

// stepEuler advances the coupled RC network one cycle and does exact
// per-cycle bookkeeping: per-block stats plus per-core and chip-wide
// any-block-above unions.
func (s *Multicore) stepEuler() {
	s.net.Step(s.powerVec)
	s.res.WallSeconds += s.dt
	s.net.Temps(s.temps)
	emTh := s.cfg.Thresholds.Emergency
	stTh := s.cfg.Thresholds.Stress
	chipEm, chipSt := false, false
	for c := 0; c < s.nc; c++ {
		coreEm, coreSt := false, false
		base := c * s.nb
		for k := 0; k < s.nb; k++ {
			i := base + k
			t := s.temps[i]
			s.blockTemp[i].Add(t)
			if t > s.blkMax[i] {
				s.blkMax[i] = t
			}
			if t > emTh {
				s.blkEmerg[i]++
				coreEm = true
			}
			if t > stTh {
				s.blkStress[i]++
				coreSt = true
			}
		}
		if coreEm {
			s.coreEmerg[c]++
			chipEm = true
		}
		if coreSt {
			s.coreStr[c]++
			chipSt = true
		}
	}
	if chipEm {
		s.res.EmergencyCycles++
	}
	if chipSt {
		s.res.StressCycles++
	}
}

// startWindow opens a new fast-path accumulation window.
func (s *Multicore) startWindow() {
	s.winLen = s.nextWindowLen()
	s.winLeft = s.winLen
}

// nextWindowLen clamps the stride so windows end exactly on controller
// sample boundaries and the cycle bound — every control decision then
// observes freshly flushed temperatures, as in the solo fast path.
func (s *Multicore) nextWindowLen() uint64 {
	c := s.cycle
	w := s.stride
	if d := (c/s.interval+1)*s.interval - c; d < w {
		w = d
	}
	if s.cfg.MaxCycles > c {
		if d := s.cfg.MaxCycles - c; d < w {
			w = d
		}
	}
	if w == 0 {
		w = 1
	}
	return w
}

// flushWindow advances the whole die across a w-cycle window with the
// closed-form exponential solution (lateral flows frozen at window-start
// temperatures, including the cross-core edges) and reconstructs the
// per-cycle bookkeeping analytically. Per-block above-sets are prefixes
// (cooling) or suffixes (heating) of the window, so the per-core union is
// min(max prefix + max suffix, w) over the core's blocks, and the chip
// union the same over all blocks — exactly the solo flushWindow argument
// applied at two levels.
func (s *Multicore) flushWindow(w uint64) {
	res := s.res
	acc := s.powerAcc
	fw := float64(w)
	for i := range acc {
		acc[i] /= fw
	}
	q1, qn, qsum := s.net.WindowCoef(w, 1)
	s.net.StepWindow(acc, w, 1, s.winTss)

	emTh := s.cfg.Thresholds.Emergency
	stTh := s.cfg.Thresholds.Stress
	for c := 0; c < s.nc; c++ {
		s.emPre[c], s.emSuf[c], s.stPre[c], s.stSuf[c] = 0, 0, 0, 0
	}
	for i := range acc {
		c := i / s.nb
		tss := s.winTss[i]
		d0 := s.temps[i] - tss
		t1 := tss + d0*q1[i]
		tw := tss + d0*qn[i]
		lo, hi := t1, tw
		if lo > hi {
			lo, hi = hi, lo
		}
		s.blockTemp[i].AddSpan(w, tss*fw+d0*qsum[i], lo, hi)
		if hi > s.blkMax[i] {
			s.blkMax[i] = hi
		}
		lnq := s.net.LogDecay(i)
		if n, prefix := windowAbove(tss, d0, lnq, w, emTh, t1, tw); n > 0 {
			s.blkEmerg[i] += n
			if prefix {
				if n > s.emPre[c] {
					s.emPre[c] = n
				}
			} else if n > s.emSuf[c] {
				s.emSuf[c] = n
			}
		}
		if n, prefix := windowAbove(tss, d0, lnq, w, stTh, t1, tw); n > 0 {
			s.blkStress[i] += n
			if prefix {
				if n > s.stPre[c] {
					s.stPre[c] = n
				}
			} else if n > s.stSuf[c] {
				s.stSuf[c] = n
			}
		}
		acc[i] = 0
	}
	var chipEmPre, chipEmSuf, chipStPre, chipStSuf uint64
	for c := 0; c < s.nc; c++ {
		if u := s.emPre[c] + s.emSuf[c]; u > 0 {
			if u > w {
				u = w
			}
			s.coreEmerg[c] += u
		}
		if u := s.stPre[c] + s.stSuf[c]; u > 0 {
			if u > w {
				u = w
			}
			s.coreStr[c] += u
		}
		if s.emPre[c] > chipEmPre {
			chipEmPre = s.emPre[c]
		}
		if s.emSuf[c] > chipEmSuf {
			chipEmSuf = s.emSuf[c]
		}
		if s.stPre[c] > chipStPre {
			chipStPre = s.stPre[c]
		}
		if s.stSuf[c] > chipStSuf {
			chipStSuf = s.stSuf[c]
		}
	}
	if u := chipEmPre + chipEmSuf; u > 0 {
		if u > w {
			u = w
		}
		res.EmergencyCycles += u
	}
	if u := chipStPre + chipStSuf; u > 0 {
		if u > w {
			u = w
		}
		res.StressCycles += u
	}
	s.net.Temps(s.temps)
}

// coreObs returns core c's observed block temperatures: the true model
// temperatures, or the sensor bank's view of them.
func (s *Multicore) coreObs(c int) []float64 {
	if s.hasSensor {
		return s.cfg.Sensors.Read(c, s.temps, s.sensed)
	}
	return s.temps[c*s.nb : (c+1)*s.nb]
}

// sample runs every controller at a sampling boundary. Windows are clamped
// to end here, so s.temps is fresh on both thermal paths.
func (s *Multicore) sample(cycle uint64) {
	for c := 0; c < s.nc; c++ {
		if s.stallLeft[c] > 0 {
			continue // stalled cores skip sampling, as in the solo loop
		}
		if s.hasMgr || s.hasDVFS || s.hasBudget {
			obs := s.coreObs(c)
			if s.hasMgr {
				a, stall := s.cfg.Managers[c].StepActuation(cycle, obs)
				if a.FetchDuty != s.duty[c] {
					s.duty[c] = a.FetchDuty
					s.cores[c].SetFetchDuty(a.FetchDuty)
				}
				s.cores[c].SetFetchLimit(a.FetchLimit)
				s.cores[c].SetMaxUnresolvedBranches(a.MaxUnresolved)
				s.stallLeft[c] += stall
			}
			if s.hasDVFS {
				s.freq[c] = s.cfg.DVFS[c].Sample(obs)
			}
			if s.hasBudget {
				s.hotScratch[c] = maxOf(obs)
			}
		}
	}
	if s.hasBudget {
		inv := 1 / float64(s.interval)
		for c := 0; c < s.nc; c++ {
			s.powScratch[c] = s.sampPow[c] * inv
			s.sampPow[c] = 0
		}
		s.cfg.Budget.SampleAll(s.hotScratch, s.powScratch, s.dutyTarget)
		for c := 0; c < s.nc; c++ {
			d := control.Quantize(s.dutyTarget[c], 8)
			if d != s.duty[c] {
				s.duty[c] = d
				s.cores[c].SetFetchDuty(d)
			}
		}
	} else {
		for c := 0; c < s.nc; c++ {
			s.sampPow[c] = 0
		}
	}
}

// Finish seals the run and returns the result. It is idempotent.
func (s *Multicore) Finish() *MulticoreResult {
	res := s.res
	if s.finished {
		return res
	}
	s.finished = true
	if s.fast {
		if elapsed := s.winLen - s.winLeft; elapsed > 0 {
			s.flushWindow(elapsed)
		}
	}
	res.Cycles = s.cycle
	var insts uint64
	for c := 0; c < s.nc; c++ {
		cr := &res.PerCore[c]
		st := s.cores[c].Stats()
		cr.Insts = st.Committed
		if cr.Cycles == 0 {
			cr.Cycles = s.cycle
		}
		if cr.Cycles > 0 {
			cr.IPC = float64(cr.Insts) / float64(cr.Cycles)
		}
		if s.cycle > 0 {
			cr.AvgDuty = s.dutySum[c] / float64(s.cycle)
			cr.AvgFreq = s.freqSum[c] / float64(s.cycle)
		}
		cr.EmergencyCycles = s.coreEmerg[c]
		cr.StressCycles = s.coreStr[c]
		cr.Blocks = make([]BlockResult, s.nb)
		for k := 0; k < s.nb; k++ {
			i := c*s.nb + k
			cr.Blocks[k] = BlockResult{
				Name:            floorplan.BlockID(k).String(),
				AvgTemp:         s.blockTemp[i].Mean(),
				MaxTemp:         s.blkMax[i],
				EmergencyCycles: s.blkEmerg[i],
				StressCycles:    s.blkStress[i],
			}
		}
		insts += cr.Insts
	}
	res.Insts = insts
	if s.cycle > 0 {
		res.IPC = float64(insts) / float64(s.cycle)
	}
	res.AvgChipPower = s.chipPower.Mean()
	return res
}

// Run steps the simulation to completion, polling ctx every few thousand
// cycles and yielding the processor at each checkpoint (see Sim.Run).
func (s *Multicore) Run(ctx context.Context) (*MulticoreResult, error) {
	done := ctx.Done()
	check := uint64(ctxCheckInterval)
	for !s.Done() {
		s.Step()
		if s.cycle >= check {
			check = s.cycle + ctxCheckInterval
			if done != nil {
				select {
				case <-done:
					return nil, context.Cause(ctx)
				default:
				}
			}
			runtime.Gosched()
		}
	}
	return s.Finish(), nil
}

// RunMulticore executes one multicore simulation to completion.
func RunMulticore(ctx context.Context, cfg MulticoreConfig) (*MulticoreResult, error) {
	s, err := NewMulticore(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(ctx)
}
