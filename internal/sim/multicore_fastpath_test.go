package sim_test

// A/B validation of the multicore macro-stepped thermal fast path against
// the per-cycle coupled Euler path: the frozen-lateral-flow window
// treatment now spans core boundaries, so the equivalence gate sweeps the
// core-interaction scenarios, core counts and every per-core controller
// family within the same tolerances as the solo TestFastPathEquivalence*
// suite.

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/floorplan"
	"repro/internal/sim"
)

const mcEqInsts = 60000 // per core

// skipMulticoreMatrixUnderRace: sim.Multicore steps on a single
// goroutine, so fast-vs-Euler equivalence, controller engagement and
// the allocation contract are not race properties — and the package's
// race budget is already consumed by the surrogate exemplars on a
// single-CPU host. The full multicore matrices run in CI's dedicated
// non-race multicore job on every PR.
func skipMulticoreMatrixUnderRace(t *testing.T) {
	t.Helper()
	if raceDetector {
		t.Skip("multicore matrices run in the non-race multicore gate; see multicore CI job")
	}
}

// runMulticorePair executes one scenario/policy/core-count configuration
// under both thermal paths. Configs are rebuilt per run because the
// controllers carry internal state.
func runMulticorePair(t *testing.T, scenario, policy string, cores int, mutate func(*sim.MulticoreConfig)) (euler, fast *sim.MulticoreResult) {
	t.Helper()
	build := func(stride uint64) *sim.MulticoreResult {
		cfg, err := bench.NewMulticoreRun(scenario, policy, cores, mcEqInsts)
		if err != nil {
			t.Fatalf("NewMulticoreRun(%s,%s,%d): %v", scenario, policy, cores, err)
		}
		cfg.ThermalStride = stride
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := sim.RunMulticore(context.Background(), cfg)
		if err != nil {
			t.Fatalf("RunMulticore(%s,%s,%d,stride=%d): %v", scenario, policy, cores, stride, err)
		}
		return res
	}
	return build(1), build(0)
}

// hotDieInit seeds every block of the die above the emergency threshold so
// both cooling and reheating crossings occur in every core.
func hotDieInit(cores int, temp float64) func(*sim.MulticoreConfig) {
	return func(cfg *sim.MulticoreConfig) {
		init := make([]float64, cores*int(floorplan.NumBlocks))
		for i := range init {
			init[i] = temp
		}
		cfg.InitTemps = init
	}
}

func compareMulticorePair(t *testing.T, euler, fast *sim.MulticoreResult, tempTol float64, emergSlack uint64) {
	t.Helper()
	if euler.Cycles != fast.Cycles {
		d := float64(euler.Cycles) - float64(fast.Cycles)
		if math.Abs(d) > 0.01*float64(euler.Cycles) {
			t.Errorf("cycle count diverged: euler=%d fast=%d", euler.Cycles, fast.Cycles)
		}
	}
	var maxAvg, maxMax float64
	for c := range euler.PerCore {
		ec, fc := &euler.PerCore[c], &fast.PerCore[c]
		for k := range ec.Blocks {
			eb, fb := &ec.Blocks[k], &fc.Blocks[k]
			if d := math.Abs(eb.AvgTemp - fb.AvgTemp); d > maxAvg {
				maxAvg = d
			}
			if d := math.Abs(eb.MaxTemp - fb.MaxTemp); d > maxMax {
				maxMax = d
			}
		}
		if d := absDiff(ec.EmergencyCycles, fc.EmergencyCycles); d > emergSlack {
			t.Errorf("core %d EmergencyCycles diverged by %d (euler=%d fast=%d)",
				c, d, ec.EmergencyCycles, fc.EmergencyCycles)
		}
		if d := absDiff(ec.StressCycles, fc.StressCycles); d > emergSlack {
			t.Errorf("core %d StressCycles diverged by %d (euler=%d fast=%d)",
				c, d, ec.StressCycles, fc.StressCycles)
		}
	}
	t.Logf("maxΔavg=%.3e maxΔmax=%.3e ΔE=%d ΔS=%d (E=%d)",
		maxAvg, maxMax,
		int64(euler.EmergencyCycles)-int64(fast.EmergencyCycles),
		int64(euler.StressCycles)-int64(fast.StressCycles),
		euler.EmergencyCycles)
	if maxAvg > tempTol {
		t.Errorf("per-block AvgTemp diverged by %.3e (tol %.1e)", maxAvg, tempTol)
	}
	if maxMax > tempTol {
		t.Errorf("per-block MaxTemp diverged by %.3e (tol %.1e)", maxMax, tempTol)
	}
	if d := absDiff(euler.EmergencyCycles, fast.EmergencyCycles); d > emergSlack {
		t.Errorf("chip EmergencyCycles diverged by %d (euler=%d fast=%d, slack %d)",
			d, euler.EmergencyCycles, fast.EmergencyCycles, emergSlack)
	}
	if d := absDiff(euler.StressCycles, fast.StressCycles); d > emergSlack {
		t.Errorf("chip StressCycles diverged by %d (euler=%d fast=%d, slack %d)",
			d, euler.StressCycles, fast.StressCycles, emergSlack)
	}
}

// TestFastPathEquivalenceMulticoreScenarios sweeps every core-interaction
// scenario at 2 and 4 cores under per-core PID.
func TestFastPathEquivalenceMulticoreScenarios(t *testing.T) {
	skipMulticoreMatrixUnderRace(t)
	for _, scenario := range bench.MulticoreWorkloads() {
		for _, cores := range []int{2, 4} {
			scenario, cores := scenario, cores
			t.Run(fmt.Sprintf("%s/%dcore", scenario, cores), func(t *testing.T) {
				t.Parallel()
				euler, fast := runMulticorePair(t, scenario, "PID", cores, hotDieInit(cores, 112))
				compareMulticorePair(t, euler, fast, eqTempTol, eqEmergSlack)
			})
		}
	}
}

// TestFastPathEquivalenceMulticorePolicies sweeps every multicore policy
// family — uncontrolled, per-core PID, adjustable-gain DVFS, hierarchical
// budget — on the hot-neighbor scenario at 2 cores.
func TestFastPathEquivalenceMulticorePolicies(t *testing.T) {
	skipMulticoreMatrixUnderRace(t)
	for _, policy := range bench.MulticorePolicies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			euler, fast := runMulticorePair(t, "hotneighbor", policy, 2, hotDieInit(2, 112))
			compareMulticorePair(t, euler, fast, eqTempTol, eqEmergSlack)
		})
	}
}

// TestFastPathEquivalenceMulticoreSingle pins the 1-core edge: the tiled
// die degenerates to the paper's floorplan (with tangential coupling) and
// the two paths must still agree.
func TestFastPathEquivalenceMulticoreSingle(t *testing.T) {
	skipMulticoreMatrixUnderRace(t)
	euler, fast := runMulticorePair(t, "hotneighbor", "PID", 1, hotDieInit(1, 112))
	compareMulticorePair(t, euler, fast, eqTempTol, eqEmergSlack)
}
