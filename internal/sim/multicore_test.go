package sim_test

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/floorplan"
	"repro/internal/sensor"
	"repro/internal/sim"
)

// steadyMulticore builds a multicore sim on the hot-neighbor scenario with
// effectively unbounded budgets and warms it past construction transients.
func steadyMulticore(tb testing.TB, policy string, cores int, mutate func(*sim.MulticoreConfig)) *sim.Multicore {
	tb.Helper()
	cfg, err := bench.NewMulticoreRun("hotneighbor", policy, cores, 1<<60)
	if err != nil {
		tb.Fatal(err)
	}
	cfg.MaxCycles = 1 << 62
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := sim.NewMulticore(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		s.Step()
	}
	return s
}

// TestZeroAllocMulticoreStep gates the multicore hot loop: per-core
// pipelines, power models, DVFS tick gating, the die-wide thermal fast
// path with its cross-core window flushes, per-core sensors and every
// controller family must all step without heap allocations.
func TestZeroAllocMulticoreStep(t *testing.T) {
	// The allocation contract is enforced by the non-race alloc gates
	// (CI verify + multicore jobs); under the ~15x race detector the
	// six warmed 2-core variants only burn package budget.
	skipMulticoreMatrixUnderRace(t)
	variants := []struct {
		name   string
		policy string
		mutate func(*sim.MulticoreConfig)
	}{
		{"none", "none", nil},
		{"pid", "PID", nil},
		{"agi", "agi", nil},
		{"budget", "budget", nil},
		{"pid_sensors", "PID", func(cfg *sim.MulticoreConfig) {
			cfg.Sensors = sensor.UniformBank(2, int(floorplan.NumBlocks),
				sensor.Sensor{Offset: 0.05, Quantum: 0.1})
		}},
		{"pid_euler", "PID", func(cfg *sim.MulticoreConfig) {
			cfg.ThermalStride = 1
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			s := steadyMulticore(t, v.policy, 2, v.mutate)
			allocs := testing.AllocsPerRun(20, func() {
				for i := 0; i < 5000; i++ {
					s.Step()
				}
			})
			if allocs != 0 {
				t.Errorf("Step allocates %v bytes-ops per 5000 cycles", allocs)
			}
		})
	}
}

// TestMulticoreControllersEngage pins the end-to-end behavior the face-off
// tables report: uncontrolled hot-neighbor runs spend cycles in emergency,
// every controller family reduces them, and the adjustable-gain DVFS
// controller actually moves the hot core's frequency.
func TestMulticoreControllersEngage(t *testing.T) {
	skipMulticoreMatrixUnderRace(t)
	run := func(policy string) *sim.MulticoreResult {
		cfg, err := bench.NewMulticoreRun("hotneighbor", policy, 2, 400000)
		if err != nil {
			t.Fatal(err)
		}
		init := make([]float64, 2*int(floorplan.NumBlocks))
		for i := range init {
			init[i] = 111.0 // near threshold so the hot core crosses quickly
		}
		cfg.InitTemps = init
		res, err := sim.RunMulticore(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	none := run("none")
	if none.EmergencyCycles == 0 {
		t.Fatal("uncontrolled hot-neighbor run never hit an emergency; scenario too cold to discriminate policies")
	}
	if none.PerCore[0].EmergencyCycles == 0 {
		t.Error("hot core saw no emergencies")
	}
	for _, policy := range []string{"PID", "agi", "budget"} {
		res := run(policy)
		if res.EmergencyCycles >= none.EmergencyCycles {
			t.Errorf("%s: emergencies %d not below uncontrolled %d",
				policy, res.EmergencyCycles, none.EmergencyCycles)
		}
		hot := &res.PerCore[0]
		switch policy {
		case "PID", "budget":
			if hot.AvgDuty >= 0.999 {
				t.Errorf("%s: hot core duty %v never engaged", policy, hot.AvgDuty)
			}
		case "agi":
			if hot.AvgFreq >= 0.999 {
				t.Errorf("agi: hot core frequency %v never engaged", hot.AvgFreq)
			}
			if hot.AvgDuty < 0.999 {
				t.Errorf("agi: duty %v moved but agi only commands frequency", hot.AvgDuty)
			}
		}
	}
}

// TestMulticoreValidation pins the config validation seams.
func TestMulticoreValidation(t *testing.T) {
	if _, err := sim.NewMulticore(sim.MulticoreConfig{}); err == nil {
		t.Error("accepted empty config")
	}
	cfg, err := bench.NewMulticoreRun("hotneighbor", "PID", 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Managers = bad.Managers[:1]
	if _, err := sim.NewMulticore(bad); err == nil {
		t.Error("accepted manager count != core count")
	}
	bad = cfg
	budgetCfg, err := bench.NewMulticoreRun("hotneighbor", "budget", 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	bad.Budget = budgetCfg.Budget
	if _, err := sim.NewMulticore(bad); err == nil {
		t.Error("accepted Budget alongside Managers")
	}
	bad = cfg
	bad.Sensors = sensor.UniformBank(3, int(floorplan.NumBlocks), sensor.Sensor{})
	if _, err := sim.NewMulticore(bad); err == nil {
		t.Error("accepted sensor bank with wrong core count")
	}
	bad = cfg
	bad.InitTemps = []float64{100}
	if _, err := sim.NewMulticore(bad); err == nil {
		t.Error("accepted short InitTemps")
	}
}
