package sim

import (
	"io"
	"testing"

	"repro/internal/control"
	"repro/internal/dtm"
	"repro/internal/power"
	"repro/internal/telemetry"
)

// paperPlant mirrors bench.Plant (which sim cannot import without a
// cycle): K = R*Papp of the hottest block, tau = the longest block RC.
func paperPlant() control.Plant {
	return control.Plant{K: 12, Tau: 180e-6, Delay: 333.5e-9}
}

func piManager() *dtm.Manager {
	g := control.MustTune(paperPlant(), control.Spec{Kind: control.KindPI})
	ctl := control.NewPID(g, 111.1, 0.2, float64(dtm.DefaultSampleInterval)/1.5e9)
	return dtm.NewManager(dtm.NewCT(control.KindPI, ctl))
}

// steadySim builds a Sim with an effectively unbounded budget and warms
// it past construction transients so the measured loop is steady state.
// Pipeline-surrogate configurations warm until replay has engaged, so
// the measured loop is the regime the variant exists for.
func steadySim(tb testing.TB, cfg Config) *Sim {
	tb.Helper()
	cfg.Workload = hotProfile()
	cfg.MaxInsts = 1 << 60
	cfg.MaxCycles = 1 << 62
	s, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		s.Step()
	}
	for i := 0; cfg.PipelineSurrogate && s.res.SurrogateCycles == 0; i++ {
		if i >= 20_000_000 {
			tb.Fatal("surrogate never engaged during warm-up")
		}
		s.Step()
	}
	return s
}

// benchVariants is the DTM/proxy/leakage matrix for the per-cycle
// benchmarks and the zero-alloc guard.
var benchVariants = []struct {
	name string
	cfg  func() Config
}{
	{"Plain", func() Config { return Config{} }},
	{"Leakage", func() Config { return Config{Leakage: power.DefaultLeakage()} }},
	{"DTM", func() Config { return Config{Manager: piManager()} }},
	{"DTMEuler", func() Config { return Config{Manager: piManager(), ThermalStride: 1} }},
	{"Proxies", func() Config { return Config{ProxyWindows: []int{10_000, 100_000}} }},
	{"Scaling", func() Config { return Config{Scaling: dtm.NewFreqScaling(0, 0.75, 1<<30)} }},
	{"Tangential", func() Config { return Config{Tangential: true} }},
	{"Kitchen", func() Config {
		return Config{
			Leakage:      power.DefaultLeakage(),
			Manager:      piManager(),
			ProxyWindows: []int{10_000},
			Tangential:   true,
		}
	}},
	{"Instrumented", func() Config {
		return Config{
			Manager: piManager(),
			Metrics: telemetry.NewSimMetrics(telemetry.NewRegistry()),
			Trace:   telemetry.NewRecorder(io.Discard, 13, 256),
		}
	}},
	{"InstrumentedKitchen", func() Config {
		return Config{
			Leakage:      power.DefaultLeakage(),
			Manager:      piManager(),
			ProxyWindows: []int{10_000},
			Tangential:   true,
			Metrics:      telemetry.NewSimMetrics(telemetry.NewRegistry()),
			Trace:        telemetry.NewRecorder(io.Discard, 13, 256),
		}
	}},
	{"Surrogate", func() Config { return Config{PipelineSurrogate: true} }},
	{"DTMSurrogate", func() Config { return Config{Manager: piManager(), PipelineSurrogate: true} }},
}

// BenchmarkRunCycle measures the steady-state per-cycle cost of the sim
// loop across feature combinations; -benchmem must report 0 allocs/op.
func BenchmarkRunCycle(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			s := steadySim(b, v.cfg())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// BenchmarkRunEndToEnd measures whole runs (construction included).
func BenchmarkRunEndToEnd(b *testing.B) {
	for _, v := range benchVariants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := v.cfg()
				cfg.Workload = hotProfile()
				cfg.MaxInsts = 100_000
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestZeroAllocStep enforces the zero-allocation contract of the hot loop
// for every feature combination, telemetry included (time-series traces
// excluded: they append by design). Part of the repository's allocation
// gate (`go test -run TestZeroAlloc`).
func TestZeroAllocStep(t *testing.T) {
	for _, v := range benchVariants {
		t.Run(v.name, func(t *testing.T) {
			s := steadySim(t, v.cfg())
			allocs := testing.AllocsPerRun(20, func() {
				for i := 0; i < 5_000; i++ {
					s.Step()
				}
			})
			if allocs > 0 {
				t.Errorf("steady-state loop allocates %.2f times per 5k cycles; want 0", allocs)
			}
		})
	}
}

// TestZeroAllocSurrogateReplay enforces the zero-allocation contract on
// the surrogate replay loop specifically: steadySim warms until replay
// has engaged, and the measured Steps then mix whole-window replay legs
// with exact audit windows and recalibrations — none may allocate.
func TestZeroAllocSurrogateReplay(t *testing.T) {
	for _, v := range []struct {
		name string
		cfg  func() Config
	}{
		{"NoDTM", func() Config { return Config{PipelineSurrogate: true} }},
		{"PI", func() Config { return Config{Manager: piManager(), PipelineSurrogate: true} }},
	} {
		t.Run(v.name, func(t *testing.T) {
			s := steadySim(t, v.cfg())
			before := s.res.SurrogateCycles
			allocs := testing.AllocsPerRun(20, func() {
				for i := 0; i < 2_000; i++ {
					s.Step()
				}
			})
			if allocs > 0 {
				t.Errorf("replay loop allocates %.2f times per 2k steps; want 0", allocs)
			}
			if s.res.SurrogateCycles == before {
				t.Error("no cycles were replayed during the measured loop")
			}
		})
	}
}
