// Package sim wires the full system of the paper together: the workload
// generator feeds the out-of-order pipeline; every cycle the pipeline's
// activity is converted to per-block power (Wattch coupling), the power
// drives the lumped thermal-RC network, the per-block temperatures feed the
// DTM manager, and the manager's fetch duty closes the loop back into the
// pipeline (Figure 1 realized at the microarchitecture level).
//
// A Run produces the metrics every table in the evaluation needs: IPC and
// percent-of-baseline performance, thermal-emergency and thermal-stress
// cycle counts (total and per block), per-block average/maximum
// temperatures, average power, duty statistics, and optional proxy
// comparisons (Section 6) and time-series traces (the figures).
package sim

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/dtm"
	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/sensor"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Thresholds carries the thermal limits used everywhere (see DESIGN.md for
// the reconstruction of the paper's constants).
type Thresholds struct {
	// Emergency is the thermal-emergency level D (111.3 C).
	Emergency float64
	// Stress is the thermal-stress reporting level (D - 1).
	Stress float64
	// SinkTemp is the heatsink temperature (100 C).
	SinkTemp float64
}

// DefaultThresholds returns the paper's operating point.
func DefaultThresholds() Thresholds {
	return Thresholds{Emergency: 111.3, Stress: 110.3, SinkTemp: 100.0}
}

// Config parameterizes one simulation run.
type Config struct {
	// Workload is the benchmark profile to execute.
	Workload workload.Profile
	// Pipeline configures the core; zero value uses Table 2 defaults.
	Pipeline pipeline.Config
	// Gating is the clock-gating style for the power model.
	Gating power.GatingStyle
	// Leakage, when non-nil, adds temperature-dependent static power to
	// every block (closing the leakage/temperature feedback loop).
	Leakage *power.LeakageModel
	// Thresholds are the thermal limits; zero value uses defaults.
	Thresholds Thresholds
	// Manager applies a DTM policy; nil runs uncontrolled.
	Manager *dtm.Manager
	// Scaling optionally applies frequency (or voltage/frequency)
	// scaling instead of / in addition to the manager's fetch actuator.
	Scaling *dtm.Scaling
	// Hierarchy applies a composed primary-policy + scaling-backup
	// mechanism (Section 2.1's hierarchical deployment). Mutually
	// exclusive with Manager/Scaling.
	Hierarchy *dtm.Hierarchy
	// MaxInsts stops the run after this many committed instructions.
	MaxInsts uint64
	// MaxCycles is a hard cycle bound (safety net; 0 = 50x MaxInsts).
	MaxCycles uint64
	// Tangential enables lateral heat flow in the thermal network.
	Tangential bool
	// ProxyWindows, when non-empty, runs boxcar power proxies of the
	// given window lengths against the RC model (Tables 9/10).
	ProxyWindows []int
	// ChipProxyTriggerW is the chip-wide proxy trigger threshold in
	// watts (default 47).
	ChipProxyTriggerW float64
	// TraceStride, when nonzero, records time series every N cycles.
	TraceStride uint64
	// Sensor models non-ideal temperature sensors feeding the DTM
	// manager (offset and quantization error); the zero value is the
	// paper's idealized sensor. The thermal bookkeeping always uses the
	// true model temperature — only the DTM policy sees sensor readings.
	Sensor sensor.Sensor
	// CoupleChipSink evolves the heatsink temperature with the slow
	// chip-wide package model (ambient ChipAmbient, Table 3 chip R/C)
	// instead of holding it constant — an extension for validating the
	// paper's constant-heatsink assumption over short intervals.
	CoupleChipSink bool
	// ChipAmbient is the ambient temperature for the coupled package
	// model (default 45 C).
	ChipAmbient float64
	// MonitoredBlocks, when non-empty, restricts the DTM policy's view to
	// sensors on these blocks only — the paper's limited-sensor-placement
	// concern (Section 4.2). Thermal bookkeeping still covers every
	// block; unmonitored hot spots can therefore escape the policy.
	MonitoredBlocks []floorplan.BlockID
	// InitTemps optionally sets initial block temperatures (default:
	// heatsink temperature everywhere).
	InitTemps []float64
}

// BlockResult aggregates one block's thermal outcome.
type BlockResult struct {
	Name            string
	AvgTemp         float64
	MaxTemp         float64
	EmergencyCycles uint64
	StressCycles    uint64
}

// ProxyResult is one window's proxy-vs-model comparison.
type ProxyResult struct {
	Window    int
	PerStruct sensor.Comparison
	ChipWide  sensor.Comparison
}

// Result is the outcome of a run.
type Result struct {
	Benchmark string
	Policy    string

	// SinkDrift is the net heatsink temperature change over the run
	// (nonzero only with CoupleChipSink).
	SinkDrift float64

	Cycles      uint64
	Insts       uint64
	WallSeconds float64

	IPC             float64
	AvgChipPower    float64
	MaxChipPower    float64
	AvgDuty         float64
	Engagements     uint64
	EmergencyCycles uint64 // cycles with any block above Emergency
	StressCycles    uint64 // cycles with any block above Stress
	StallCycles     uint64 // trigger-mechanism / resync stalls

	Blocks []BlockResult

	Proxies []ProxyResult

	// Optional traces (TraceStride > 0).
	TempTrace  *stats.Series // hottest block temperature
	DutyTrace  *stats.Series
	BlockTrace []*stats.Series // per-block temperature
}

// EmergencyFrac returns the fraction of cycles spent in thermal emergency.
func (r *Result) EmergencyFrac() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.EmergencyCycles) / float64(r.Cycles)
}

// StressFrac returns the fraction of cycles above the stress level.
func (r *Result) StressFrac() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.StressCycles) / float64(r.Cycles)
}

// InstsPerSecond returns committed instructions per wall-clock second —
// the performance metric that stays meaningful under frequency scaling.
func (r *Result) InstsPerSecond() float64 {
	if r.WallSeconds == 0 {
		return 0
	}
	return float64(r.Insts) / r.WallSeconds
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.MaxInsts == 0 {
		return nil, fmt.Errorf("sim: MaxInsts must be positive")
	}
	if cfg.Pipeline.FetchWidth == 0 {
		cfg.Pipeline = pipeline.DefaultConfig()
	}
	if cfg.Thresholds == (Thresholds{}) {
		cfg.Thresholds = DefaultThresholds()
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 50 * cfg.MaxInsts
	}
	if cfg.ChipProxyTriggerW == 0 {
		cfg.ChipProxyTriggerW = 47
	}

	gen, err := workload.NewGenerator(cfg.Workload)
	if err != nil {
		return nil, err
	}
	core, err := pipeline.New(cfg.Pipeline, gen)
	if err != nil {
		return nil, err
	}
	pcfg := power.DefaultConfig()
	pcfg.Gating = cfg.Gating
	pcfg.Pipeline = cfg.Pipeline
	pmodel, err := power.New(pcfg)
	if err != nil {
		return nil, err
	}
	if cfg.Leakage != nil {
		if err := cfg.Leakage.Validate(); err != nil {
			return nil, err
		}
	}
	tcfg := thermal.DefaultConfig()
	tcfg.SinkTemp = cfg.Thresholds.SinkTemp
	tcfg.Tangential = cfg.Tangential
	net := thermal.New(tcfg)
	if cfg.InitTemps != nil {
		for i, t := range cfg.InitTemps {
			net.SetTemp(i, t)
		}
	}

	mgr := cfg.Manager
	policyName := "none"
	if cfg.Hierarchy != nil {
		if mgr != nil || cfg.Scaling != nil {
			return nil, fmt.Errorf("sim: Hierarchy is mutually exclusive with Manager/Scaling")
		}
		cfg.Hierarchy.Reset()
		policyName = cfg.Hierarchy.Name()
	}
	if mgr != nil {
		mgr.Reset()
		policyName = mgr.Policy.Name()
	}
	if cfg.Scaling != nil {
		cfg.Scaling.Reset()
		if policyName == "none" {
			policyName = cfg.Scaling.Name()
		} else {
			policyName += "+" + cfg.Scaling.Name()
		}
	}

	nblk := net.NumBlocks()
	res := &Result{
		Benchmark: cfg.Workload.Name,
		Policy:    policyName,
		Blocks:    make([]BlockResult, nblk),
	}
	for i := range res.Blocks {
		res.Blocks[i].Name = net.Block(i).ID.String()
	}

	// Proxies (Section 6).
	type proxyPair struct {
		ps   *sensor.StructProxy
		pc   *sensor.ChipProxy
		comp *ProxyResult
	}
	var proxies []proxyPair
	if len(cfg.ProxyWindows) > 0 {
		rs := make([]float64, nblk)
		for i := 0; i < nblk; i++ {
			rs[i] = net.Block(i).R
		}
		// Allocate all results first: proxyPair holds pointers into
		// the slice, so it must not grow afterwards.
		res.Proxies = make([]ProxyResult, len(cfg.ProxyWindows))
		for i, w := range cfg.ProxyWindows {
			res.Proxies[i] = ProxyResult{Window: w}
			proxies = append(proxies, proxyPair{
				ps:   sensor.NewStructProxy(rs, w, cfg.Thresholds.SinkTemp, cfg.Thresholds.Emergency),
				pc:   sensor.NewChipProxy(w, cfg.ChipProxyTriggerW),
				comp: &res.Proxies[i],
			})
		}
	}

	if cfg.TraceStride > 0 {
		res.TempTrace = stats.NewSeries(cfg.TraceStride)
		res.DutyTrace = stats.NewSeries(cfg.TraceStride)
		for i := 0; i < nblk; i++ {
			res.BlockTrace = append(res.BlockTrace, stats.NewSeries(cfg.TraceStride))
		}
	}

	var monitorIdx []int
	if len(cfg.MonitoredBlocks) > 0 {
		for _, id := range cfg.MonitoredBlocks {
			i, ok := net.Index(id)
			if !ok {
				return nil, fmt.Errorf("sim: monitored block %v not in thermal network", id)
			}
			monitorIdx = append(monitorIdx, i)
		}
	}

	var chipNode *thermal.ChipModel
	if cfg.CoupleChipSink {
		ambient := cfg.ChipAmbient
		if ambient == 0 {
			ambient = 45
		}
		chipBlk := floorplan.ChipBlock()
		chipNode = thermal.NewChipModel(chipBlk.R, chipBlk.C, ambient)
		chipNode.T = cfg.Thresholds.SinkTemp
	}

	var (
		act        pipeline.Activity
		powerVec   = make([]float64, nblk)
		temps      = make([]float64, nblk)
		sensed     = make([]float64, nblk)
		blockTemp  = make([]stats.Running, nblk)
		chipPower  stats.Running
		dutySum    float64
		dt         = tcfg.CycleTime
		freqFactor = 1.0
		stallLeft  uint64
		cycle      uint64
	)
	duty := 1.0
	net.Temps(temps) // prime last-cycle temperatures for the leakage term

	for core.Stats().Committed < cfg.MaxInsts && cycle < cfg.MaxCycles {
		cycle++
		stalled := stallLeft > 0
		if stalled {
			stallLeft--
			res.StallCycles++
			act.Reset() // clock runs but the pipeline is idle
		} else {
			core.Step(&act)
		}

		// Power for this cycle.
		pmodel.BlockPower(&act, powerVec)
		pf := 1.0
		if cfg.Scaling != nil {
			pf = cfg.Scaling.PowerFactor()
		}
		if cfg.Hierarchy != nil {
			pf = cfg.Hierarchy.PowerFactor()
		}
		if pf != 1 {
			for i := range powerVec {
				powerVec[i] *= pf
			}
		}
		if cfg.Leakage != nil {
			// Static power rides on top of the (possibly scaled)
			// dynamic power, using last cycle's temperatures.
			for i := range powerVec {
				powerVec[i] += cfg.Leakage.Power(net.Block(i).PeakPower, temps[i])
			}
		}
		chip := pmodel.ChipPower(&act, powerVec)
		chipPower.Add(chip)
		if chip > res.MaxChipPower {
			res.MaxChipPower = chip
		}

		// Thermal step at the effective clock period.
		stepDt := dt / freqFactor
		if stepDt != dt {
			// Re-scale by stepping the network multiple unit steps
			// is wasteful; exact single-step via StepN is also
			// constant-power, so approximate the longer period with
			// a scaled Euler step through repeated unit steps.
			steps := int(stepDt/dt + 0.5)
			for s := 0; s < steps; s++ {
				net.Step(powerVec)
			}
		} else {
			net.Step(powerVec)
		}
		res.WallSeconds += stepDt

		// Thermal bookkeeping.
		net.Temps(temps)
		anyEmerg, anyStress := false, false
		for i, t := range temps {
			blockTemp[i].Add(t)
			br := &res.Blocks[i]
			if t > br.MaxTemp {
				br.MaxTemp = t
			}
			if t > cfg.Thresholds.Emergency {
				br.EmergencyCycles++
				anyEmerg = true
			}
			if t > cfg.Thresholds.Stress {
				br.StressCycles++
				anyStress = true
			}
		}
		if anyEmerg {
			res.EmergencyCycles++
		}
		if anyStress {
			res.StressCycles++
		}

		// Proxies.
		for _, pp := range proxies {
			hotS := pp.ps.Step(powerVec)
			hotC := pp.pc.Step(chip)
			pp.comp.PerStruct.Record(anyEmerg, hotS)
			pp.comp.ChipWide.Record(anyEmerg, hotC)
		}

		// Heatsink drift (extension).
		if chipNode != nil {
			chipNode.Step(chip, stepDt)
			net.SetSinkTemp(chipNode.T)
		}

		// DTM. Policies observe the (possibly non-ideal, possibly
		// partial) sensors.
		if mgr != nil && !stalled {
			obs := temps
			if monitorIdx != nil {
				sensed = sensed[:0]
				for _, i := range monitorIdx {
					sensed = append(sensed, cfg.Sensor.Read(temps[i]))
				}
				obs = sensed
			} else if cfg.Sensor != (sensor.Sensor{}) {
				sensed = sensed[:len(temps)]
				for i, t := range temps {
					sensed[i] = cfg.Sensor.Read(t)
				}
				obs = sensed
			}
			a, stall := mgr.StepActuation(cycle, obs)
			if a.FetchDuty != duty {
				duty = a.FetchDuty
				core.SetFetchDuty(duty)
			}
			core.SetFetchLimit(a.FetchLimit)
			core.SetMaxUnresolvedBranches(a.MaxUnresolved)
			stallLeft += stall
		}
		if cfg.Scaling != nil && !stalled && cycle%dtm.DefaultSampleInterval == 0 {
			f, stall := cfg.Scaling.Sample(temps)
			freqFactor = f
			stallLeft += stall
		}
		if cfg.Hierarchy != nil && !stalled && cycle%dtm.DefaultSampleInterval == 0 {
			d, f, stall := cfg.Hierarchy.SampleHierarchy(temps)
			d = control.Quantize(d, 8)
			if d != duty {
				duty = d
				core.SetFetchDuty(duty)
			}
			freqFactor = f
			stallLeft += stall
		}
		dutySum += duty

		// Traces.
		if res.TempTrace != nil {
			_, hot := net.Hottest()
			res.TempTrace.Add(cycle, hot)
			res.DutyTrace.Add(cycle, duty)
			for i := range res.BlockTrace {
				res.BlockTrace[i].Add(cycle, temps[i])
			}
		}
	}

	st := core.Stats()
	res.Cycles = cycle
	res.Insts = st.Committed
	res.IPC = float64(st.Committed) / float64(cycle)
	res.AvgChipPower = chipPower.Mean()
	res.AvgDuty = dutySum / float64(cycle)
	if mgr != nil {
		res.Engagements = mgr.Engagements()
	}
	for i := range res.Blocks {
		res.Blocks[i].AvgTemp = blockTemp[i].Mean()
	}
	if chipNode != nil {
		res.SinkDrift = chipNode.T - cfg.Thresholds.SinkTemp
	}
	return res, nil
}

// BlockByID returns the BlockResult for a floorplan block, or nil.
func (r *Result) BlockByID(id floorplan.BlockID) *BlockResult {
	name := id.String()
	for i := range r.Blocks {
		if r.Blocks[i].Name == name {
			return &r.Blocks[i]
		}
	}
	return nil
}
