// Package sim wires the full system of the paper together: the workload
// generator feeds the out-of-order pipeline; every cycle the pipeline's
// activity is converted to per-block power (Wattch coupling), the power
// drives the lumped thermal-RC network, the per-block temperatures feed the
// DTM manager, and the manager's fetch duty closes the loop back into the
// pipeline (Figure 1 realized at the microarchitecture level).
//
// A Run produces the metrics every table in the evaluation needs: IPC and
// percent-of-baseline performance, thermal-emergency and thermal-stress
// cycle counts (total and per block), per-block average/maximum
// temperatures, average power, duty statistics, and optional proxy
// comparisons (Section 6) and time-series traces (the figures).
package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/control"
	"repro/internal/dtm"
	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/sensor"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Thresholds carries the thermal limits used everywhere (see DESIGN.md for
// the reconstruction of the paper's constants).
type Thresholds struct {
	// Emergency is the thermal-emergency level D (111.3 C).
	Emergency float64
	// Stress is the thermal-stress reporting level (D - 1).
	Stress float64
	// SinkTemp is the heatsink temperature (100 C).
	SinkTemp float64
}

// DefaultThresholds returns the paper's operating point.
func DefaultThresholds() Thresholds {
	return Thresholds{Emergency: 111.3, Stress: 110.3, SinkTemp: 100.0}
}

// Config parameterizes one simulation run.
type Config struct {
	// Workload is the benchmark profile to execute.
	Workload workload.Profile
	// Pipeline configures the core; zero value uses Table 2 defaults.
	Pipeline pipeline.Config
	// Gating is the clock-gating style for the power model.
	Gating power.GatingStyle
	// Leakage, when non-nil, adds temperature-dependent static power to
	// every block (closing the leakage/temperature feedback loop).
	Leakage *power.LeakageModel
	// Thresholds are the thermal limits; zero value uses defaults.
	Thresholds Thresholds
	// Manager applies a DTM policy; nil runs uncontrolled.
	Manager *dtm.Manager
	// Scaling optionally applies frequency (or voltage/frequency)
	// scaling instead of / in addition to the manager's fetch actuator.
	Scaling *dtm.Scaling
	// Hierarchy applies a composed primary-policy + scaling-backup
	// mechanism (Section 2.1's hierarchical deployment). Mutually
	// exclusive with Manager/Scaling.
	Hierarchy *dtm.Hierarchy
	// MaxInsts stops the run after this many committed instructions.
	MaxInsts uint64
	// MaxCycles is a hard cycle bound (safety net; 0 = 50x MaxInsts).
	MaxCycles uint64
	// Tangential enables lateral heat flow in the thermal network.
	Tangential bool
	// ProxyWindows, when non-empty, runs boxcar power proxies of the
	// given window lengths against the RC model (Tables 9/10).
	ProxyWindows []int
	// ChipProxyTriggerW is the chip-wide proxy trigger threshold in
	// watts (default 47).
	ChipProxyTriggerW float64
	// TraceStride, when nonzero, records time series every N cycles.
	TraceStride uint64
	// Sensor models non-ideal temperature sensors feeding the DTM
	// manager (offset and quantization error); the zero value is the
	// paper's idealized sensor. The thermal bookkeeping always uses the
	// true model temperature — only the DTM policy sees sensor readings.
	Sensor sensor.Sensor
	// CoupleChipSink evolves the heatsink temperature with the slow
	// chip-wide package model (ambient ChipAmbient, Table 3 chip R/C)
	// instead of holding it constant — an extension for validating the
	// paper's constant-heatsink assumption over short intervals.
	CoupleChipSink bool
	// ChipAmbient is the ambient temperature for the coupled package
	// model (default 45 C).
	ChipAmbient float64
	// MonitoredBlocks, when non-empty, restricts the DTM policy's view to
	// sensors on these blocks only — the paper's limited-sensor-placement
	// concern (Section 4.2). Thermal bookkeeping still covers every
	// block; unmonitored hot spots can therefore escape the policy.
	MonitoredBlocks []floorplan.BlockID
	// InitTemps optionally sets initial block temperatures (default:
	// heatsink temperature everywhere).
	InitTemps []float64
	// PipelineSurrogate enables macro-stepped pipeline surrogate
	// execution: during a workload phase's steady state the simulator
	// calibrates per-block activity statistics (mean dynamic power, IPC,
	// chip overhead) from a cycle-exact warm-up window keyed on (phase,
	// duty, frequency, throttle, speculation bound), then replays them
	// analytically one thermal window at a time, freezing the pipeline
	// and advancing the workload stream by the calibrated IPC. Replay
	// drops back to cycle-exact execution around phase transitions, on
	// every DTM actuation or frequency-scaling change (new key), near
	// the instruction budget, on trigger-mechanism stalls, and
	// periodically for recalibration. Requires the macro-stepped thermal
	// fast path (incompatible with ProxyWindows, CoupleChipSink and
	// ThermalStride 1).
	PipelineSurrogate bool
	// ThermalStride selects the thermal integration mode. 0 (the
	// default) auto-selects: the macro-stepped exponential fast path
	// with DefaultThermalStride-cycle windows when the configuration
	// allows it, otherwise the per-cycle Euler path. 1 forces the
	// per-cycle Euler path (the paper's Equation 5 literally, needed
	// for A/B validation). N>1 sets an explicit fast-path window of N
	// cycles; configurations that require per-cycle temperatures
	// (power proxies, the coupled chip/sink model) reject explicit
	// strides. Windows are always flushed early at DTM sample
	// boundaries, scaling/hierarchy samples, trace samples, telemetry
	// flushes and Finish, so observable decision points see fresh
	// temperatures.
	ThermalStride uint64
	// Metrics, when non-nil, streams hot-loop instrumentation into the
	// bundle's registry: cycle/commit/stall tallies (flushed every few
	// thousand cycles, exact after Finish), controller sample events
	// (saturation, anti-windup freezes, escalations), live temperature/
	// duty gauges and sampled thermal-solver timing. The increment path
	// is allocation-free and adds no measurable per-cycle cost.
	Metrics *telemetry.SimMetrics
	// Trace, when non-nil, records a structured telemetry sample
	// (temperatures, duty, controller P/I/D terms, saturation,
	// escalations) every TraceInterval cycles. The recorder may be
	// shared by parallel runs; samples are labeled with TraceID.
	Trace *telemetry.Recorder
	// TraceInterval is the cycle stride for Trace samples (0 = the DTM
	// sampling interval, 1000).
	TraceInterval uint64
	// TraceID labels this run's samples in a shared trace stream
	// (default "benchmark/policy").
	TraceID string
}

// BlockResult aggregates one block's thermal outcome.
type BlockResult struct {
	Name            string
	AvgTemp         float64
	MaxTemp         float64
	EmergencyCycles uint64
	StressCycles    uint64
}

// ProxyResult is one window's proxy-vs-model comparison.
type ProxyResult struct {
	Window    int
	PerStruct sensor.Comparison
	ChipWide  sensor.Comparison
}

// RunDims is the run's coordinates in sweep space: the config dimensions
// experiments vary (trigger temperature, controller gains, sampling
// interval, thermal stride, instruction budget, core count), flattened
// out of the policy objects so the run catalog can index completed
// results without re-deriving policy internals. Zero means "not
// applicable to this policy" (an uncontrolled run has no trigger).
type RunDims struct {
	// Trigger is the engagement threshold or controller setpoint in
	// Celsius (Manual reports its upper band edge).
	Trigger float64 `json:"trigger,omitempty"`
	// Kp, Ki are the CT controller gains (0 for non-CT policies;
	// AdaptiveGain reports its fine-regulation KiLow).
	Kp float64 `json:"kp,omitempty"`
	Ki float64 `json:"ki,omitempty"`
	// Interval is the DTM sampling period in cycles.
	Interval uint64 `json:"interval,omitempty"`
	// Stride is the configured thermal stride (0 = auto-selected).
	Stride uint64 `json:"stride,omitempty"`
	// Insts is the committed-instruction budget.
	Insts uint64 `json:"insts,omitempty"`
	// Cores is the core count (always 1 for Sim; multicore runs set it
	// when flattened into the catalog).
	Cores int `json:"cores,omitempty"`
}

// Result is the outcome of a run.
type Result struct {
	Benchmark string
	Policy    string

	// Dims are the run's sweep-space coordinates (see RunDims).
	Dims RunDims

	// SinkDrift is the net heatsink temperature change over the run
	// (nonzero only with CoupleChipSink).
	SinkDrift float64

	Cycles uint64
	Insts  uint64
	// SurrogateCycles counts the cycles advanced analytically by the
	// pipeline surrogate (0 without Config.PipelineSurrogate); the
	// remainder ran cycle-exact.
	SurrogateCycles uint64
	WallSeconds     float64
	// ThermalSeconds is the total time actually integrated by the thermal
	// network. Under frequency scaling it tracks WallSeconds to within one
	// cycle time (the fractional-step carry); without scaling they are
	// identical.
	ThermalSeconds float64

	IPC             float64
	AvgChipPower    float64
	MaxChipPower    float64
	AvgDuty         float64
	Engagements     uint64
	EmergencyCycles uint64 // cycles with any block above Emergency
	StressCycles    uint64 // cycles with any block above Stress
	StallCycles     uint64 // trigger-mechanism / resync stalls

	Blocks []BlockResult

	Proxies []ProxyResult

	// Optional traces (TraceStride > 0).
	TempTrace  *stats.Series // hottest block temperature
	DutyTrace  *stats.Series
	BlockTrace []*stats.Series // per-block temperature
}

// EmergencyFrac returns the fraction of cycles spent in thermal emergency.
func (r *Result) EmergencyFrac() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.EmergencyCycles) / float64(r.Cycles)
}

// StressFrac returns the fraction of cycles above the stress level.
func (r *Result) StressFrac() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.StressCycles) / float64(r.Cycles)
}

// runDims flattens cfg's sweep coordinates. The primary policy (the
// hierarchy's primary, else the manager's) supplies trigger and gains; a
// standalone or backup Scaling supplies the trigger when nothing else did.
func runDims(cfg Config) RunDims {
	d := RunDims{Stride: cfg.ThermalStride, Insts: cfg.MaxInsts, Cores: 1}
	var pol dtm.Policy
	switch {
	case cfg.Hierarchy != nil:
		pol = cfg.Hierarchy.Primary
		d.Interval = dtm.DefaultSampleInterval
	case cfg.Manager != nil:
		pol = cfg.Manager.Policy
		d.Interval = cfg.Manager.Interval
	case cfg.Scaling != nil:
		d.Interval = dtm.DefaultSampleInterval
	}
	switch p := pol.(type) {
	case *dtm.Toggle:
		d.Trigger = p.Trigger
	case *dtm.Manual:
		d.Trigger = p.High
	case *dtm.CT:
		ctl := p.Controller()
		d.Trigger = ctl.Setpoint
		d.Kp = ctl.Kp
		d.Ki = ctl.Ki
	case *dtm.AdaptiveGain:
		d.Trigger = p.Setpoint
		d.Ki = p.KiLow
	}
	if d.Trigger == 0 && cfg.Scaling != nil {
		d.Trigger = cfg.Scaling.Trigger
	}
	return d
}

// InstsPerSecond returns committed instructions per wall-clock second —
// the performance metric that stays meaningful under frequency scaling.
func (r *Result) InstsPerSecond() float64 {
	if r.WallSeconds == 0 {
		return 0
	}
	return float64(r.Insts) / r.WallSeconds
}

// CycleCount reports the simulated cycle count; it implements
// runner.CycleCounter so batch engines can derive throughput metrics.
func (r *Result) CycleCount() uint64 {
	if r == nil {
		return 0
	}
	return r.Cycles
}

// proxyPair couples the two Section 6 proxies for one window with the
// ProxyResult they tally into.
type proxyPair struct {
	ps   *sensor.StructProxy
	pc   *sensor.ChipProxy
	comp *ProxyResult
}

// Sim is one simulation instance, steppable a cycle at a time. New
// validates the configuration and allocates every buffer up front; Step
// then runs allocation-free in the steady state, which is what makes the
// per-cycle loop benchmarkable and the batch engine's throughput metrics
// meaningful. Use Run/RunContext unless you need cycle-level control.
type Sim struct {
	cfg      Config
	core     *pipeline.Core
	pmodel   *power.Model
	net      *thermal.Network
	mgr      *dtm.Manager
	chipNode *thermal.ChipModel
	res      *Result

	// Per-cycle state. Every slice is sized at construction.
	act       pipeline.Activity
	powerVec  []float64
	temps     []float64
	sensed    []float64
	leakPeak  []float64 // hoisted net.Block(i).PeakPower lookups
	blockTemp []stats.Running
	chipPower stats.Running
	proxies   []proxyPair
	monitor   []int

	dt         float64
	duty       float64
	dutySum    float64
	freqFactor float64
	stepCarry  float64 // fractional thermal unit-steps owed (freq scaling)
	stallLeft  uint64
	cycle      uint64

	// actFetchLimit / actMaxUnresolved mirror the last actuation the DTM
	// manager applied to the core. The core setters are idempotent plain
	// writes, so solo execution never needs them; gang execution uses them
	// as the member's divergence signature (the core is shared, so the
	// last writer's values cannot be read back per member) and to
	// re-assert each partition's actuation on its core after a fork.
	actFetchLimit    int
	actMaxUnresolved int

	// Macro-stepped thermal fast path. While fast is set, per-cycle
	// block power is accumulated into powerAcc and the RC network is
	// advanced once per window with the exact exponential solution;
	// s.temps holds the window-start temperatures in between (frozen
	// for the leakage term). winLen/winLeft track the current window,
	// whose length is the stride clamped to the next cycle that needs
	// fresh temperatures.
	fast        bool
	stride      uint64
	winLen      uint64
	winLeft     uint64
	winFlushed  bool // this cycle ended a window
	winFlushLen uint64
	powerAcc    []float64
	winTss      []float64

	// Pipeline surrogate (Config.PipelineSurrogate). gen is the live
	// workload generator, retained so replay can advance the stream and
	// observe phase position. surCals is a fixed-capacity calibration
	// store (slice + linear search rather than a map so the steady-state
	// replay loop stays allocation-free); surPool/surPoolPow preallocate
	// its entries. The surAcc* fields accumulate the in-progress
	// calibration: per-block pre-scaling dynamic power, chip overhead,
	// and a core snapshot at accumulation start. virtInsts counts
	// instructions credited analytically during replay.
	sur         bool
	gen         *workload.Generator
	surBank     *calBank // optional gang-shared calibration bank (nil = off)
	surCals     []surEntry
	surPool     []surCal
	surPoolPow  []float64
	surPoolAcc  []float64
	surAccKey   surKey
	surAccOK    bool
	surAccCal   *surCal // calibration entry for surAccKey, nil if none yet
	surWarm     uint64
	surPowAcc   []float64
	surWinPow   []float64 // scratch: the just-completed window's mean power
	surExtraAcc float64
	surSnap0    pipeline.CalSnapshot
	surCarry    float64
	virtInsts   uint64

	// Telemetry. pid is the closed-loop controller (if the active policy
	// wraps one), hoisted at construction so the hot loop reads its state
	// without interface assertions. The m* fields snapshot the tallies
	// already flushed to the metrics bundle, so the periodic flush pushes
	// deltas and never double-counts.
	pid      *control.PID
	rec      *telemetry.Recorder
	recEvery uint64
	traceID  string
	mCycles  uint64
	mInsts   uint64
	mStalls  uint64
	mEmerg   uint64
	mStress  uint64
	mEsc     uint64

	// Specialization flags, hoisted out of the hot loop so unconfigured
	// features cost one predictable branch instead of interface/struct
	// comparisons every cycle.
	hasLeak    bool
	hasSensor  bool
	hasScaling bool
	hasHier    bool
	hasProxies bool
	hasTrace   bool
	hasMetrics bool
	finished   bool
}

// Run executes one simulation to completion.
func Run(cfg Config) (*Result, error) { return RunContext(context.Background(), cfg) }

// RunContext executes one simulation, checking ctx for cancellation every
// few thousand cycles so parallel batches can abort promptly.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(ctx)
}

// New validates cfg and builds a steppable simulation.
func New(cfg Config) (*Sim, error) { return newWith(cfg, nil, nil, nil) }

// newWith builds a simulation, optionally around a pre-built workload
// generator, core and power model (all three set, or all three nil). Gang
// execution passes the shared objects of a lock-step equivalence class so
// every member observes the same instruction/activity stream; New passes
// nil and gets privately owned instances. The shared objects are only read
// and snapshotted here — construction never mutates them.
func newWith(cfg Config, gen *workload.Generator, core *pipeline.Core, pmodel *power.Model) (*Sim, error) {
	if cfg.MaxInsts == 0 {
		return nil, fmt.Errorf("sim: MaxInsts must be positive")
	}
	if cfg.Pipeline.FetchWidth == 0 {
		cfg.Pipeline = pipeline.DefaultConfig()
	}
	if cfg.Thresholds == (Thresholds{}) {
		cfg.Thresholds = DefaultThresholds()
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 50 * cfg.MaxInsts
	}
	if cfg.ChipProxyTriggerW == 0 {
		cfg.ChipProxyTriggerW = 47
	}

	if gen == nil {
		var err error
		gen, err = workload.NewGenerator(cfg.Workload)
		if err != nil {
			return nil, err
		}
		core, err = pipeline.New(cfg.Pipeline, gen)
		if err != nil {
			return nil, err
		}
		pcfg := power.DefaultConfig()
		pcfg.Gating = cfg.Gating
		pcfg.Pipeline = cfg.Pipeline
		pmodel, err = power.New(pcfg)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Leakage != nil {
		if err := cfg.Leakage.Validate(); err != nil {
			return nil, err
		}
	}
	tcfg := thermal.DefaultConfig()
	tcfg.SinkTemp = cfg.Thresholds.SinkTemp
	tcfg.Tangential = cfg.Tangential
	net := thermal.New(tcfg)
	if cfg.InitTemps != nil {
		if len(cfg.InitTemps) != net.NumBlocks() {
			return nil, fmt.Errorf("sim: InitTemps has %d entries but the thermal network has %d blocks",
				len(cfg.InitTemps), net.NumBlocks())
		}
		for i, t := range cfg.InitTemps {
			net.SetTemp(i, t)
		}
	}

	mgr := cfg.Manager
	policyName := "none"
	if cfg.Hierarchy != nil {
		if mgr != nil || cfg.Scaling != nil {
			return nil, fmt.Errorf("sim: Hierarchy is mutually exclusive with Manager/Scaling")
		}
		cfg.Hierarchy.Reset()
		policyName = cfg.Hierarchy.Name()
	}
	if mgr != nil {
		mgr.Reset()
		policyName = mgr.Policy.Name()
	}
	if cfg.Scaling != nil {
		cfg.Scaling.Reset()
		if policyName == "none" {
			policyName = cfg.Scaling.Name()
		} else {
			policyName += "+" + cfg.Scaling.Name()
		}
	}

	nblk := net.NumBlocks()
	res := &Result{
		Benchmark: cfg.Workload.Name,
		Policy:    policyName,
		Dims:      runDims(cfg),
		Blocks:    make([]BlockResult, nblk),
	}
	for i := range res.Blocks {
		res.Blocks[i].Name = net.Block(i).ID.String()
	}

	// Proxies (Section 6).
	var proxies []proxyPair
	if len(cfg.ProxyWindows) > 0 {
		rs := make([]float64, nblk)
		for i := 0; i < nblk; i++ {
			rs[i] = net.Block(i).R
		}
		// Allocate all results first: proxyPair holds pointers into
		// the slice, so it must not grow afterwards.
		res.Proxies = make([]ProxyResult, len(cfg.ProxyWindows))
		for i, w := range cfg.ProxyWindows {
			res.Proxies[i] = ProxyResult{Window: w}
			proxies = append(proxies, proxyPair{
				ps:   sensor.NewStructProxy(rs, w, cfg.Thresholds.SinkTemp, cfg.Thresholds.Emergency),
				pc:   sensor.NewChipProxy(w, cfg.ChipProxyTriggerW),
				comp: &res.Proxies[i],
			})
		}
	}

	if cfg.TraceStride > 0 {
		res.TempTrace = stats.NewSeries(cfg.TraceStride)
		res.DutyTrace = stats.NewSeries(cfg.TraceStride)
		for i := 0; i < nblk; i++ {
			res.BlockTrace = append(res.BlockTrace, stats.NewSeries(cfg.TraceStride))
		}
	}

	var monitorIdx []int
	if len(cfg.MonitoredBlocks) > 0 {
		for _, id := range cfg.MonitoredBlocks {
			i, ok := net.Index(id)
			if !ok {
				return nil, fmt.Errorf("sim: monitored block %v not in thermal network", id)
			}
			monitorIdx = append(monitorIdx, i)
		}
	}

	var chipNode *thermal.ChipModel
	if cfg.CoupleChipSink {
		ambient := cfg.ChipAmbient
		if ambient == 0 {
			ambient = 45
		}
		chipBlk := floorplan.ChipBlock()
		chipNode = thermal.NewChipModel(chipBlk.R, chipBlk.C, ambient)
		chipNode.T = cfg.Thresholds.SinkTemp
	}

	s := &Sim{
		cfg:      cfg,
		core:     core,
		pmodel:   pmodel,
		net:      net,
		mgr:      mgr,
		chipNode: chipNode,
		res:      res,
		gen:      gen,

		powerVec:  make([]float64, nblk),
		temps:     make([]float64, nblk),
		sensed:    make([]float64, nblk),
		leakPeak:  make([]float64, nblk),
		blockTemp: make([]stats.Running, nblk),
		proxies:   proxies,
		monitor:   monitorIdx,

		dt:         tcfg.CycleTime,
		duty:       1,
		freqFactor: 1,

		actFetchLimit:    core.FetchLimit(),
		actMaxUnresolved: core.MaxUnresolvedLimit(),

		hasLeak:    cfg.Leakage != nil,
		hasSensor:  cfg.Sensor != (sensor.Sensor{}),
		hasScaling: cfg.Scaling != nil,
		hasHier:    cfg.Hierarchy != nil,
		hasProxies: len(proxies) > 0,
		hasTrace:   res.TempTrace != nil,
		hasMetrics: cfg.Metrics != nil,
	}
	for i := 0; i < nblk; i++ {
		s.leakPeak[i] = net.Block(i).PeakPower
	}
	net.Temps(s.temps) // prime last-cycle temperatures for the leakage term

	// Thermal integration mode. Power proxies need the per-cycle
	// emergency signal and the coupled chip/sink model re-couples the
	// sink temperature every cycle, so both require the Euler path.
	fastOK := !s.hasProxies && !cfg.CoupleChipSink
	stride := cfg.ThermalStride
	if stride == 0 {
		stride = 1
		if fastOK {
			stride = DefaultThermalStride
		}
	}
	if stride > 1 && !fastOK {
		return nil, fmt.Errorf("sim: ThermalStride %d requires per-cycle temperatures (proxies/coupled sink); set ThermalStride to 0 or 1", cfg.ThermalStride)
	}
	if stride > 1 {
		s.fast = true
		s.stride = stride
		s.powerAcc = make([]float64, nblk)
		s.winTss = make([]float64, nblk)
		s.startWindow()
	}

	if cfg.PipelineSurrogate {
		if !s.fast {
			return nil, fmt.Errorf("sim: PipelineSurrogate requires the macro-stepped thermal fast path (incompatible with power proxies, CoupleChipSink and ThermalStride 1)")
		}
		s.sur = true
		s.surCals = make([]surEntry, 0, surMaxCals)
		s.surPool = make([]surCal, surMaxCals)
		s.surPoolPow = make([]float64, surMaxCals*nblk)
		s.surPoolAcc = make([]float64, surMaxCals*nblk)
		s.surPowAcc = make([]float64, nblk)
		s.surWinPow = make([]float64, nblk)
		s.surSnap0 = core.Snapshot()
	}

	// Telemetry wiring: find the PID behind the active policy (if any) so
	// traces and metrics can read controller internals without per-cycle
	// type assertions.
	if mgr != nil {
		if ct, ok := mgr.Policy.(*dtm.CT); ok {
			s.pid = ct.Controller()
		}
	}
	if cfg.Hierarchy != nil {
		if ct, ok := cfg.Hierarchy.Primary.(*dtm.CT); ok {
			s.pid = ct.Controller()
		}
	}
	if cfg.Trace != nil {
		s.rec = cfg.Trace
		s.recEvery = cfg.TraceInterval
		if s.recEvery == 0 {
			s.recEvery = dtm.DefaultSampleInterval
		}
		s.traceID = cfg.TraceID
		if s.traceID == "" {
			s.traceID = cfg.Workload.Name + "/" + policyName
		}
	}
	return s, nil
}

// DefaultThermalStride is the auto-selected fast-path window length in
// cycles: long enough to amortize the window flush to noise, and five
// hundred times shorter than the shortest block time constant (49 us ≈
// 73k cycles), so constant-power windows track the per-cycle Euler
// trajectory to well under a millidegree.
const DefaultThermalStride = 256

// metricsFlushMask batches hot-loop counter flushes: every 8192 cycles the
// sim pushes the delta of its local tallies into the shared registry, so
// the per-cycle cost of metrics is a masked compare, not an atomic op.
const metricsFlushMask = 1<<13 - 1

// thermalTimeMask samples the thermal-solver timing every 1024 cycles —
// frequent enough to populate the histogram, rare enough that the
// time.Now() pair is invisible in the per-cycle budget.
const thermalTimeMask = 1<<10 - 1

// hottestTemp returns the maximum current block temperature.
func (s *Sim) hottestTemp() float64 {
	hot := s.temps[0]
	for _, t := range s.temps[1:] {
		if t > hot {
			hot = t
		}
	}
	return hot
}

// flushMetrics pushes the delta between the sim's local tallies and the
// last flush into the metrics bundle, then refreshes the state gauges.
func (s *Sim) flushMetrics() {
	m := s.cfg.Metrics
	res := s.res
	if d := s.cycle - s.mCycles; d > 0 {
		m.Cycles.Add(int64(d))
		s.mCycles = s.cycle
	}
	if total := s.core.Stats().Committed + s.virtInsts; total > s.mInsts {
		m.Insts.Add(int64(total - s.mInsts))
		s.mInsts = total
	}
	if res.StallCycles > s.mStalls {
		m.StallCycles.Add(int64(res.StallCycles - s.mStalls))
		s.mStalls = res.StallCycles
	}
	if res.EmergencyCycles > s.mEmerg {
		m.EmergencyCycles.Add(int64(res.EmergencyCycles - s.mEmerg))
		s.mEmerg = res.EmergencyCycles
	}
	if res.StressCycles > s.mStress {
		m.StressCycles.Add(int64(res.StressCycles - s.mStress))
		s.mStress = res.StressCycles
	}
	m.HotTemp.Set(s.hottestTemp())
	m.Duty.Set(s.duty)
	m.FreqFactor.Set(s.freqFactor)
}

// recordTrace emits one structured sample into the shared recorder.
func (s *Sim) recordTrace(chip float64) {
	smp := telemetry.Sample{
		Run:         s.traceID,
		Cycle:       s.cycle,
		WallSeconds: s.res.WallSeconds,
		HotTemp:     s.hottestTemp(),
		Duty:        s.duty,
		FreqFactor:  s.freqFactor,
		ChipPower:   chip,
		BlockTemps:  s.temps,
	}
	if s.pid != nil {
		smp.PTerm, smp.ITerm, smp.DTerm = s.pid.Terms()
		smp.Saturated = s.pid.Saturated()
	}
	if s.hasHier {
		smp.Escalations = s.cfg.Hierarchy.Escalations()
	}
	s.rec.Record(&smp)
}

// Done reports whether the run has reached its instruction or cycle
// budget. Instructions credited analytically by the pipeline surrogate
// count toward the budget.
func (s *Sim) Done() bool {
	return s.core.Stats().Committed+s.virtInsts >= s.cfg.MaxInsts || s.cycle >= s.cfg.MaxCycles
}

// Cycle returns the number of cycles simulated so far.
func (s *Sim) Cycle() uint64 { return s.cycle }

// Step advances the simulation by one clock cycle: pipeline, power,
// thermal network, bookkeeping, proxies and DTM. It performs no heap
// allocations in the steady state (traces, when enabled, amortize
// appends). Step must not be called after Finish.
//
// The body is split along the gang-execution seam: the shared prefix
// (pipeline step, raw block power, surrogate calibration accumulators) is
// evaluated once per operating-point equivalence class, and stepMember
// fans the resulting power vector out into per-member state. Solo
// execution is the one-member special case; the split introduces no
// floating-point reordering (see stepMember).
func (s *Sim) Step() {
	if s.sur && s.stallLeft == 0 {
		if cal := s.replayable(); cal != nil {
			s.stepReplay(cal)
			return
		}
	}
	stalled := s.stallLeft > 0
	if stalled {
		s.act.Reset() // clock runs but the pipeline is idle
	} else {
		s.core.Step(&s.act)
	}

	// Raw per-block dynamic power for this cycle.
	s.pmodel.BlockPower(&s.act, s.powerVec)
	if s.sur {
		// Calibration accumulates the pre-scaling, pre-leakage dynamic
		// power (frequency/leakage are re-applied per replay window) and
		// the chip overhead. Both are class-level accumulators of pure
		// per-cycle terms, so adding the overhead here rather than after
		// ChipPower (its pre-refactor position) changes no observable
		// value: the addend sequence into each accumulator is identical.
		acc := s.surPowAcc
		for i, p := range s.powerVec {
			acc[i] += p
		}
		s.surExtraAcc += s.pmodel.ChipOverhead(&s.act)
	}

	chip := s.stepMember(&s.act, s.powerVec, stalled)
	if s.sur {
		s.surUpdate(stalled)
	}
	s.stepTail(chip)
}

// stepMember advances this member's private state for one exact cycle
// given the class-shared activity record and raw power vector: scaling and
// leakage, chip power, thermal integration, DTM sampling and the duty
// integral. base is the class leader's power vector; a member whose own
// powerVec is a different buffer copies it first, so every member consumes
// bit-identical inputs and the downstream arithmetic matches a solo run
// exactly. Returns the member's chip power for the telemetry tail.
func (s *Sim) stepMember(act *pipeline.Activity, base []float64, stalled bool) float64 {
	s.cycle++
	cycle := s.cycle
	res := s.res
	if stalled {
		s.stallLeft--
		res.StallCycles++
	}

	powerVec := s.powerVec
	if &powerVec[0] != &base[0] {
		copy(powerVec, base)
	}
	pf := 1.0
	if s.hasScaling {
		pf = s.cfg.Scaling.PowerFactor()
	} else if s.hasHier {
		pf = s.cfg.Hierarchy.PowerFactor()
	}
	if pf != 1 {
		for i := range powerVec {
			powerVec[i] *= pf
		}
	}
	if s.hasLeak {
		// Static power rides on top of the (possibly scaled) dynamic
		// power, using last cycle's temperatures.
		leak := s.cfg.Leakage
		for i := range powerVec {
			powerVec[i] += leak.Power(s.leakPeak[i], s.temps[i])
		}
	}
	chip := s.pmodel.ChipPower(act, powerVec)
	s.chipPower.Add(chip)
	if chip > res.MaxChipPower {
		res.MaxChipPower = chip
	}

	// Thermal advance. The fast path accumulates this cycle's power and
	// advances the RC network once per window with the closed-form
	// exponential (flushing early at every cycle that needs fresh
	// temperatures, so the decision points below always observe current
	// values); the Euler path is the paper's per-cycle difference
	// equation plus the per-cycle features that require it (power
	// proxies, the coupled chip/sink model). Under frequency scaling one
	// wall-clock cycle covers 1/freqFactor unit thermal steps; the Euler
	// path carries the fractional remainder across cycles, the fast path
	// advances in continuous time so thermal time tracks wall time
	// exactly.
	if s.fast {
		stepDt := s.dt
		if s.freqFactor != 1 {
			stepDt = s.dt / s.freqFactor
		}
		acc := s.powerAcc
		for i, p := range powerVec {
			acc[i] += p
		}
		res.WallSeconds += stepDt
		res.ThermalSeconds += stepDt
		s.winFlushed = false
		if s.winLeft--; s.winLeft == 0 {
			s.flushWindow(s.winLen)
			s.winFlushed = true
			s.winFlushLen = s.winLen
			s.startWindow()
		}
	} else {
		s.stepEuler(powerVec, chip, cycle)
	}

	if !stalled {
		s.sampleDTM(cycle)
	}
	s.dutySum += s.duty
	return chip
}

// stepTail emits the per-cycle trace and telemetry output. Gang execution
// rejects traced/instrumented configurations, so only solo Step calls it.
func (s *Sim) stepTail(chip float64) {
	cycle := s.cycle
	res := s.res
	// Traces. On the fast path only a window-ending cycle can be a record
	// cycle (the window length is clamped to the next one), so the stride
	// phase is advanced over the window interior in one Bump and a single
	// sample is offered at the boundary, where temperatures are fresh.
	if s.hasTrace {
		if s.fast {
			if s.winFlushed {
				_, hot := s.net.Hottest()
				res.TempTrace.Bump(s.winFlushLen - 1)
				res.TempTrace.Add(cycle, hot)
				res.DutyTrace.Bump(s.winFlushLen - 1)
				res.DutyTrace.Add(cycle, s.duty)
				for i := range res.BlockTrace {
					res.BlockTrace[i].Bump(s.winFlushLen - 1)
					res.BlockTrace[i].Add(cycle, s.temps[i])
				}
			}
		} else {
			_, hot := s.net.Hottest()
			res.TempTrace.Add(cycle, hot)
			res.DutyTrace.Add(cycle, s.duty)
			for i := range res.BlockTrace {
				res.BlockTrace[i].Add(cycle, s.temps[i])
			}
		}
	}

	// Telemetry: batched counter flush and structured trace samples.
	if s.hasMetrics && cycle&metricsFlushMask == 0 {
		s.flushMetrics()
	}
	if s.rec != nil && cycle%s.recEvery == 0 {
		s.recordTrace(chip)
	}
}

// sampleDTM runs the DTM manager, frequency scaling and hierarchy
// sampling for one (non-stalled) cycle. Policies observe the (possibly
// non-ideal, possibly partial) sensors. Manager state only changes on
// sample boundaries (StepActuation early-returns off-boundary with the
// actuation unchanged and the core setters are idempotent), so the whole
// block — including the sensor reads — runs only on boundaries. When a
// hierarchy also drives the duty, the per-cycle re-assert is kept. Called
// from both the cycle-exact Step and the surrogate replay path (whose
// windows are clamped to end exactly on sample boundaries).
func (s *Sim) sampleDTM(cycle uint64) {
	if s.mgr != nil &&
		(s.hasHier || (s.mgr.Interval != 0 && cycle%s.mgr.Interval == 0)) {
		obs := s.temps
		if s.monitor != nil {
			s.sensed = s.sensed[:0]
			for _, i := range s.monitor {
				s.sensed = append(s.sensed, s.cfg.Sensor.Read(s.temps[i]))
			}
			obs = s.sensed
		} else if s.hasSensor {
			s.sensed = s.sensed[:len(s.temps)]
			for i, t := range s.temps {
				s.sensed[i] = s.cfg.Sensor.Read(t)
			}
			obs = s.sensed
		}
		a, stall := s.mgr.StepActuation(cycle, obs)
		if a.FetchDuty != s.duty {
			s.duty = a.FetchDuty
			s.core.SetFetchDuty(s.duty)
		}
		s.core.SetFetchLimit(a.FetchLimit)
		s.core.SetMaxUnresolvedBranches(a.MaxUnresolved)
		s.actFetchLimit = a.FetchLimit
		s.actMaxUnresolved = a.MaxUnresolved
		s.stallLeft += stall
		if s.hasMetrics && s.mgr.Interval != 0 && cycle%s.mgr.Interval == 0 {
			s.countDTMSample()
		}
	}
	if s.hasScaling && cycle%dtm.DefaultSampleInterval == 0 {
		f, stall := s.cfg.Scaling.Sample(s.temps)
		s.freqFactor = f
		s.stallLeft += stall
	}
	if s.hasHier && cycle%dtm.DefaultSampleInterval == 0 {
		d, f, stall := s.cfg.Hierarchy.SampleHierarchy(s.temps)
		d = control.Quantize(d, 8)
		if d != s.duty {
			s.duty = d
			s.core.SetFetchDuty(s.duty)
		}
		s.freqFactor = f
		s.stallLeft += stall
		if s.hasMetrics {
			s.countDTMSample()
		}
	}
}

// stepEuler is the per-cycle thermal path: one (or, under frequency
// scaling, carry-accumulated) Euler step, exact per-cycle bookkeeping,
// and the per-cycle consumers that require it (Section 6 power proxies
// and the coupled chip/sink extension).
func (s *Sim) stepEuler(powerVec []float64, chip float64, cycle uint64) {
	res := s.res
	timeStep := s.hasMetrics && cycle&thermalTimeMask == 0
	var t0 time.Time
	if timeStep {
		t0 = time.Now()
	}
	stepDt := s.dt
	if s.freqFactor == 1 {
		s.net.Step(powerVec)
		res.ThermalSeconds += s.dt
	} else {
		stepDt = s.dt / s.freqFactor
		s.stepCarry += 1 / s.freqFactor
		steps := int(s.stepCarry)
		s.stepCarry -= float64(steps)
		for k := 0; k < steps; k++ {
			s.net.Step(powerVec)
		}
		res.ThermalSeconds += float64(steps) * s.dt
	}
	res.WallSeconds += stepDt
	if timeStep {
		s.cfg.Metrics.ThermalStep.Observe(time.Since(t0).Seconds())
	}

	// Thermal bookkeeping.
	s.net.Temps(s.temps)
	anyEmerg, anyStress := false, false
	for i, t := range s.temps {
		s.blockTemp[i].Add(t)
		br := &res.Blocks[i]
		if t > br.MaxTemp {
			br.MaxTemp = t
		}
		if t > s.cfg.Thresholds.Emergency {
			br.EmergencyCycles++
			anyEmerg = true
		}
		if t > s.cfg.Thresholds.Stress {
			br.StressCycles++
			anyStress = true
		}
	}
	if anyEmerg {
		res.EmergencyCycles++
	}
	if anyStress {
		res.StressCycles++
	}

	// Proxies.
	if s.hasProxies {
		for _, pp := range s.proxies {
			hotS := pp.ps.Step(powerVec)
			hotC := pp.pc.Step(chip)
			pp.comp.PerStruct.Record(anyEmerg, hotS)
			pp.comp.ChipWide.Record(anyEmerg, hotC)
		}
	}

	// Heatsink drift (extension).
	if s.chipNode != nil {
		s.chipNode.Step(chip, stepDt)
		s.net.SetSinkTemp(s.chipNode.T)
	}
}

// startWindow opens a new accumulation window at the current cycle.
func (s *Sim) startWindow() {
	s.winLen = s.nextWindowLen()
	s.winLeft = s.winLen
}

// nextWindowLen clamps the configured stride so the window ends no later
// than the next cycle that must observe fresh temperatures: DTM sample
// boundaries, scaling/hierarchy samples, telemetry timing and flush
// points, structured-trace samples, time-series record cycles and the
// cycle budget. Every clamp yields a length of at least one cycle
// because the next boundary is always strictly ahead of the current
// cycle.
func (s *Sim) nextWindowLen() uint64 {
	c := s.cycle
	w := s.stride
	clampTo := func(interval uint64) {
		if interval == 0 {
			return
		}
		if d := (c/interval+1)*interval - c; d < w {
			w = d
		}
	}
	if s.mgr != nil {
		clampTo(s.mgr.Interval)
	}
	if s.hasScaling || s.hasHier {
		clampTo(dtm.DefaultSampleInterval)
	}
	if s.hasMetrics {
		// Aligning windows to the timing-sample stride also aligns them
		// to the (coarser, multiple) metrics-flush stride.
		clampTo(thermalTimeMask + 1)
	}
	if s.rec != nil {
		clampTo(s.recEvery)
	}
	if s.hasTrace {
		// Series record cycles are 1, 1+stride, 1+2·stride, …: the Euler
		// path offers a sample every cycle starting at cycle 1.
		ts := s.res.TempTrace.Stride
		next := uint64(1)
		if c > 0 {
			next = ((c-1)/ts+1)*ts + 1
		}
		if d := next - c; d < w {
			w = d
		}
	}
	if s.cfg.MaxCycles > c {
		if d := s.cfg.MaxCycles - c; d < w {
			w = d
		}
	}
	if w == 0 {
		w = 1
	}
	return w
}

// flushWindow advances the RC network across a w-cycle window with the
// closed-form exponential solution and reconstructs the per-cycle thermal
// bookkeeping analytically. Within a constant-power window each block's
// trajectory T(k) = tss + (T0−tss)·q^k (k = 1..w) is monotone toward its
// steady state, so the per-block temperature sum, extrema and
// above-threshold cycle counts follow from the endpoints and one
// logarithm; the chip-level any-block-above counts are the exact union
// of the per-block prefix (cooling) and suffix (heating) above-sets.
// Frequency factors change only on window-ending cycles after the flush
// has run, so s.freqFactor is constant across the window, and s.temps
// still holds the window-start temperatures when this is called.
func (s *Sim) flushWindow(w uint64) {
	res := s.res
	invF := 1.0
	if s.freqFactor != 1 {
		invF = 1 / s.freqFactor
	}
	acc := s.powerAcc
	fw := float64(w)
	for i := range acc {
		acc[i] /= fw // accumulated energy -> mean window power
	}
	timeStep := s.hasMetrics && s.cycle&thermalTimeMask == 0
	var t0 time.Time
	if timeStep {
		t0 = time.Now()
	}
	q1, qn, qsum := s.net.WindowCoef(w, invF)
	s.net.StepWindow(acc, w, invF, s.winTss)
	if timeStep {
		s.cfg.Metrics.ThermalStep.Observe(time.Since(t0).Seconds())
	}

	emTh := s.cfg.Thresholds.Emergency
	stTh := s.cfg.Thresholds.Stress
	var emPre, emSuf, stPre, stSuf uint64
	for i := range acc {
		tss := s.winTss[i]
		d0 := s.temps[i] - tss
		t1 := tss + d0*q1[i]
		tw := tss + d0*qn[i]
		lo, hi := t1, tw
		if lo > hi {
			lo, hi = hi, lo
		}
		s.blockTemp[i].AddSpan(w, tss*fw+d0*qsum[i], lo, hi)
		br := &res.Blocks[i]
		if hi > br.MaxTemp {
			br.MaxTemp = hi
		}
		lnq := invF * s.net.LogDecay(i)
		if c, prefix := windowAbove(tss, d0, lnq, w, emTh, t1, tw); c > 0 {
			br.EmergencyCycles += c
			if prefix {
				if c > emPre {
					emPre = c
				}
			} else if c > emSuf {
				emSuf = c
			}
		}
		if c, prefix := windowAbove(tss, d0, lnq, w, stTh, t1, tw); c > 0 {
			br.StressCycles += c
			if prefix {
				if c > stPre {
					stPre = c
				}
			} else if c > stSuf {
				stSuf = c
			}
		}
		acc[i] = 0
	}
	// A prefix [1..p] and a suffix of length q union to min(p+q, w)
	// cycles: disjoint when p+q <= w, the whole window otherwise.
	if u := emPre + emSuf; u > 0 {
		if u > w {
			u = w
		}
		res.EmergencyCycles += u
	}
	if u := stPre + stSuf; u > 0 {
		if u > w {
			u = w
		}
		res.StressCycles += u
	}
	s.net.Temps(s.temps)
}

// windowAbove counts the cycles k in [1..w] whose closed-form temperature
// tss + d0·exp(k·lnq) exceeds thr, and reports whether the above-set is a
// prefix (true: cooling, or the whole window) or a suffix (false:
// heating) of the window. t1 and tw are the precomputed endpoint
// temperatures; monotonicity makes the endpoint checks decisive, and the
// logarithmic crossing estimate is corrected with exact comparisons so
// float error in the solve cannot shift the count.
func windowAbove(tss, d0, lnq float64, w uint64, thr, t1, tw float64) (uint64, bool) {
	if t1 <= thr && tw <= thr {
		return 0, true
	}
	if t1 > thr && tw > thr {
		return w, true
	}
	above := func(k uint64) bool {
		return d0*math.Exp(float64(k)*lnq) > thr-tss
	}
	kf := math.Log((thr-tss)/d0) / lnq
	var c uint64
	switch {
	case !(kf > 1):
		c = 1
	case kf >= float64(w):
		c = w
	default:
		c = uint64(kf)
	}
	if d0 > 0 {
		// Cooling: the above-set is the prefix [1..c].
		for c > 0 && !above(c) {
			c--
		}
		for c < w && above(c+1) {
			c++
		}
		return c, true
	}
	// Heating: the above-set is the suffix [c..w].
	for c > 1 && above(c-1) {
		c--
	}
	for c <= w && !above(c) {
		c++
	}
	return w - c + 1, false
}

// countDTMSample tallies one controller sampling event and, when the
// active policy wraps a PID, its saturation / anti-windup state. With a
// hierarchy it also forwards newly accumulated escalations.
func (s *Sim) countDTMSample() {
	m := s.cfg.Metrics
	m.DTMSamples.Inc()
	if s.pid != nil {
		if s.pid.Saturated() {
			m.SaturatedSamples.Inc()
		}
		if s.pid.Frozen() {
			m.WindupFreezes.Inc()
		}
	}
	if s.hasHier {
		if esc := s.cfg.Hierarchy.Escalations(); esc > s.mEsc {
			m.Escalations.Add(int64(esc - s.mEsc))
			s.mEsc = esc
		}
	}
}

// Finish seals the run and returns the result. It is idempotent.
func (s *Sim) Finish() *Result {
	res := s.res
	if s.finished {
		return res
	}
	s.finished = true
	// Flush a partially filled fast-path window so every simulated cycle
	// is accounted for in the thermal statistics. No record cycle can
	// fall inside the partial span (the window was clamped to end at the
	// next one), so the trace phase just advances.
	if s.fast {
		if elapsed := s.winLen - s.winLeft; elapsed > 0 {
			s.flushWindow(elapsed)
			if s.hasTrace {
				res.TempTrace.Bump(elapsed)
				res.DutyTrace.Bump(elapsed)
				for i := range res.BlockTrace {
					res.BlockTrace[i].Bump(elapsed)
				}
			}
		}
	}
	st := s.core.Stats()
	res.Cycles = s.cycle
	res.Insts = st.Committed + s.virtInsts
	if s.cycle > 0 {
		res.IPC = float64(res.Insts) / float64(s.cycle)
		res.AvgDuty = s.dutySum / float64(s.cycle)
	}
	res.AvgChipPower = s.chipPower.Mean()
	if s.mgr != nil {
		res.Engagements = s.mgr.Engagements()
	}
	for i := range res.Blocks {
		res.Blocks[i].AvgTemp = s.blockTemp[i].Mean()
	}
	if s.chipNode != nil {
		res.SinkDrift = s.chipNode.T - s.cfg.Thresholds.SinkTemp
	}
	if s.hasMetrics {
		s.flushMetrics() // make the registry exact at run end
	}
	return res
}

// ctxCheckInterval gates how often the run loop polls its context and
// yields the processor: every 1024 cycles (~0.4ms of work), so both
// cancellation latency and the serving plane's scheduling latency stay in
// the sub-millisecond range while the per-check cost stays well under
// 0.1%. The loop compares against a moving threshold rather than masking
// the cycle count because surrogate replay advances many cycles per Step
// and can jump over any fixed alignment.
const ctxCheckInterval = 1 << 10

// Run steps the simulation to completion, polling ctx every few thousand
// cycles; on cancellation it returns the context error and a nil result.
//
// Each checkpoint also yields the processor (runtime.Gosched). A
// simulation is a pure CPU loop with no natural scheduling points, so
// without the yield a saturated GOMAXPROCS pins latency-sensitive
// goroutines — cmd/serve's admission/shed path — behind the ~10ms async
// preemption quantum. One yield per ~1.6ms of simulated work costs well
// under 0.1% and never changes the simulated trajectory.
func (s *Sim) Run(ctx context.Context) (*Result, error) {
	done := ctx.Done()
	check := uint64(ctxCheckInterval)
	for !s.Done() {
		s.Step()
		if s.cycle >= check {
			check = s.cycle + ctxCheckInterval
			if done != nil {
				select {
				case <-done:
					return nil, context.Cause(ctx)
				default:
				}
			}
			runtime.Gosched()
		}
	}
	return s.Finish(), nil
}

// BlockByID returns the BlockResult for a floorplan block, or nil.
func (r *Result) BlockByID(id floorplan.BlockID) *BlockResult {
	name := id.String()
	for i := range r.Blocks {
		if r.Blocks[i].Name == name {
			return &r.Blocks[i]
		}
	}
	return nil
}
