package sim

// Unit tests for the gang executor internals: class partitioning, fork on
// actuation divergence, exact re-merge, config validation and the
// zero-allocation contract of the class-step loop. The full gang-vs-solo
// byte-identity matrix (18 workloads x 13 policies) lives in
// gang_equiv_test.go (package sim_test, which can reach the benchmark
// suite).

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/dtm"
)

// gangPolicyConfigs builds a surrogate-enabled gang spec around
// hotProfile: one uncontrolled member plus PI members at the given
// setpoints (distinct manager instances, as NewGang requires).
func gangPolicyConfigs(insts uint64, setpoints ...float64) []Config {
	cfgs := []Config{{Workload: hotProfile(), MaxInsts: insts, PipelineSurrogate: true}}
	for _, sp := range setpoints {
		cfgs = append(cfgs, Config{
			Workload:          hotProfile(),
			MaxInsts:          insts,
			Manager:           newPIManager(sp),
			PipelineSurrogate: true,
		})
	}
	return cfgs
}

// TestGangMatchesSolo is the in-package smoke version of the golden
// matrix: a mixed gang (uncontrolled, two PI setpoints, a toggle) must
// produce results byte-identical to solo runs of the same configs.
func TestGangMatchesSolo(t *testing.T) {
	const insts = 300_000
	mk := func() []Config {
		cfgs := gangPolicyConfigs(insts, 111.1, 110.8)
		cfgs = append(cfgs, Config{
			Workload:          hotProfile(),
			MaxInsts:          insts,
			Manager:           dtm.NewManager(dtm.NewToggle1(110.3, 5)),
			PipelineSurrogate: true,
		})
		return cfgs
	}

	solo := make([]*Result, len(mk()))
	for i, cfg := range mk() {
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("solo %d: %v", i, err)
		}
		solo[i] = r
	}

	g, err := NewGang(mk(), GangOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ganged, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	for i := range solo {
		want, err1 := json.Marshal(solo[i])
		got, err2 := json.Marshal(ganged[i])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if string(want) != string(got) {
			t.Errorf("member %d diverged from solo run:\nsolo: %s\ngang: %s", i, want, got)
		}
	}
	st := g.Stats()
	if st.Members != len(solo) {
		t.Errorf("Members = %d, want %d", st.Members, len(solo))
	}
	if st.MemberCycles <= st.ClassCycles {
		t.Errorf("no sharing achieved: member=%d class=%d", st.MemberCycles, st.ClassCycles)
	}
	t.Logf("stats: %+v occupancy=%.2f", st, st.Occupancy())
}

// TestGangForkOnDivergence: two PI members at different setpoints start
// in one class (same sampling schedule, same initial actuation) and must
// fork once their duties diverge; the uncontrolled member sits in its own
// schedule group from the start.
func TestGangForkOnDivergence(t *testing.T) {
	g, err := NewGang(gangPolicyConfigs(600_000, 111.1, 110.5), GangOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.classes) != 2 {
		t.Fatalf("initial classes = %d, want 2 (schedule groups)", len(g.classes))
	}
	if len(g.classes[1].members) != 2 {
		t.Fatalf("PI schedule group has %d members, want 2", len(g.classes[1].members))
	}
	if _, err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if g.stats.Forks == 0 {
		t.Error("PI members at different setpoints never forked")
	}
}

// TestGangMerge force-splits a class of identical members (whose deep
// state therefore stays bit-equal), steps both halves in lock-step and
// verifies tryMerge folds them back together.
func TestGangMerge(t *testing.T) {
	cfgs := []Config{
		{Workload: hotProfile(), MaxInsts: 1 << 40, Manager: newPIManager(111.1), PipelineSurrogate: true},
		{Workload: hotProfile(), MaxInsts: 1 << 40, Manager: newPIManager(111.1), PipelineSurrogate: true},
	}
	g, err := NewGang(cfgs, GangOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.classes) != 1 || len(g.classes[0].members) != 2 {
		t.Fatalf("want one class of two members, got %+v", g.classes)
	}
	for i := 0; i < 20_000/classBurst; i++ {
		g.Step()
	}
	if g.stats.Forks != 0 {
		t.Fatalf("identical members forked (%d) — divergence check broken", g.stats.Forks)
	}

	// Force-split: clone the shared state for the second member exactly
	// as fork does.
	c := g.classes[0]
	m := c.members[1]
	c.members = c.members[:1]
	gen2 := c.gen.Clone()
	core2 := c.core.Clone(gen2)
	pm2 := c.pmodel.Clone()
	m.gen, m.core, m.pmodel = gen2, core2, pm2
	m.cloneSurrogateFrom(c.members[0])
	reassert(core2, m)
	g.classes = append(g.classes, &gclass{members: []*Sim{m}, gen: gen2, core: core2, pmodel: pm2, sched: c.sched})
	g.live++

	// Identical members in separate classes evolve identically, so the
	// next merge check must fold them back.
	for i := 0; i < 2*mergeCheckCalls && g.live == 2; i++ {
		g.Step()
	}
	if g.stats.Merges != 1 || g.live != 1 {
		t.Fatalf("merge never fired: merges=%d live=%d", g.stats.Merges, g.live)
	}
	if n := len(g.classes[0].members); n != 2 {
		t.Fatalf("surviving class has %d members, want 2", n)
	}
	// And the merged gang must still be correct: both members share one
	// core again and keep producing identical trajectories.
	for i := 0; i < 20_000/classBurst; i++ {
		g.Step()
	}
	if g.stats.Forks != 0 {
		t.Errorf("members diverged after merge (%d forks)", g.stats.Forks)
	}
}

func TestGangRejectsIneligibleConfigs(t *testing.T) {
	base := func() Config {
		return Config{Workload: hotProfile(), MaxInsts: 100_000}
	}
	cases := map[string]func() []Config{
		"empty": func() []Config { return nil },
		"proxies": func() []Config {
			a, b := base(), base()
			b.ProxyWindows = []int{10_000}
			return []Config{a, b}
		},
		"coupled-sink": func() []Config {
			a, b := base(), base()
			b.CoupleChipSink = true
			return []Config{a, b}
		},
		"trace-stride": func() []Config {
			a, b := base(), base()
			b.TraceStride = 1000
			return []Config{a, b}
		},
		"workload-mismatch": func() []Config {
			a, b := base(), base()
			b.Workload = coldProfile()
			return []Config{a, b}
		},
		"insts-mismatch": func() []Config {
			a, b := base(), base()
			b.MaxInsts = 200_000
			return []Config{a, b}
		},
		"surrogate-mismatch": func() []Config {
			a, b := base(), base()
			b.PipelineSurrogate = true
			return []Config{a, b}
		},
		"shared-manager": func() []Config {
			a, b := base(), base()
			mgr := newPIManager(111.1)
			a.Manager, b.Manager = mgr, mgr
			return []Config{a, b}
		},
	}
	for name, mk := range cases {
		if _, err := NewGang(mk(), GangOptions{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// steadyGang builds a same-class gang (identical configs, so it never
// forks) and warms it past construction transients; surrogate gangs warm
// until replay has engaged.
func steadyGang(tb testing.TB, n int, cfg func() Config) *Gang {
	tb.Helper()
	cfgs := make([]Config, 0, n)
	for i := 0; i < n; i++ {
		c := cfg()
		c.Workload = hotProfile()
		c.MaxInsts = 1 << 60
		c.MaxCycles = 1 << 62
		cfgs = append(cfgs, c)
	}
	g, err := NewGang(cfgs, GangOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 40_000/classBurst; i++ {
		g.Step()
	}
	lead := g.classes[0].members[0]
	for i := 0; cfgs[0].PipelineSurrogate && lead.res.SurrogateCycles == 0; i++ {
		if i >= 20_000_000 {
			tb.Fatal("surrogate never engaged during warm-up")
		}
		g.Step()
	}
	return g
}

// TestZeroAllocGangStep enforces the zero-allocation contract on the
// class-step loop (exact and replay paths; forks, which are rare and may
// allocate, cannot occur here because the members are identical). Part of
// the repository's allocation gate (`go test -run TestZeroAlloc`).
func TestZeroAllocGangStep(t *testing.T) {
	for _, v := range []struct {
		name string
		cfg  func() Config
	}{
		{"Exact", func() Config { return Config{} }},
		{"DTM", func() Config { return Config{Manager: piManager()} }},
		{"Surrogate", func() Config { return Config{PipelineSurrogate: true} }},
		{"DTMSurrogate", func() Config { return Config{Manager: piManager(), PipelineSurrogate: true} }},
	} {
		t.Run(v.name, func(t *testing.T) {
			g := steadyGang(t, 4, v.cfg)
			allocs := testing.AllocsPerRun(20, func() {
				for i := 0; i < 50; i++ {
					g.Step()
				}
			})
			if allocs > 0 {
				t.Errorf("gang step loop allocates %.2f times per %d class-steps; want 0", allocs, 50*classBurst)
			}
			if g.stats.Forks != 0 {
				t.Fatalf("identical members forked (%d)", g.stats.Forks)
			}
		})
	}
}

// BenchmarkGangStep measures the class-step cost at various gang sizes on
// one shared class; the per-member cost should shrink toward the
// member-fan-out cost as the gang grows.
func BenchmarkGangStep(b *testing.B) {
	for _, v := range []struct {
		name string
		n    int
		cfg  func() Config
	}{
		{"Exact1", 1, func() Config { return Config{} }},
		{"Exact4", 4, func() Config { return Config{} }},
		{"Exact13", 13, func() Config { return Config{} }},
		{"Surrogate4", 4, func() Config { return Config{PipelineSurrogate: true} }},
		{"Surrogate13", 13, func() Config { return Config{PipelineSurrogate: true} }},
	} {
		b.Run(v.name, func(b *testing.B) {
			g := steadyGang(b, v.n, v.cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Step()
			}
		})
	}
}
