package sim

// Gang execution steps N simulations that share one (workload, seed) in
// lock-step, evaluating the expensive front half of every cycle — the
// out-of-order pipeline model and the raw per-block power evaluation —
// once per OPERATING-POINT EQUIVALENCE CLASS instead of once per member.
// A DTM study sweeps controllers against a fixed workload: until a
// policy's actuation diverges from its classmates', every member observes
// the exact same instruction and activity stream, so re-simulating the
// pipeline per member is pure redundancy. Each class owns one shared
// workload generator, core and power model; the class leader (members[0])
// drives them and every member fans the resulting power vector into its
// private thermal/DTM state via Sim.stepMember. When members' actuator
// states diverge (duty, frequency, fetch/speculation limits, or a
// trigger stall), the class forks: the divergent partitions get deep
// clones of the shared state and continue independently. Classes whose
// state re-converges exactly are merged back opportunistically.
//
// Gang results are byte-identical to solo runs of the same configs: the
// shared/member split reorders no floating-point arithmetic (see the
// seam comments in Sim.Step and Sim.stepReplay), forks clone state
// bit-exactly, and merges require bit-equal deep state. The optional
// shared calibration bank (GangOptions.ShareCalibration) is the one
// documented exception: it changes WHERE the pipeline surrogate engages
// (bounded by the same engagement audit), not what an engaged window
// replays.

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"sort"

	"repro/internal/dtm"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/workload"
)

// GangOptions tunes gang execution.
type GangOptions struct {
	// ShareCalibration shares pipeline-surrogate calibrations across the
	// gang through a read-mostly bank: a class reaching an operating
	// point another class has already calibrated adopts the donor's
	// stats and earned replay budget after one agreeing cycle-exact
	// window, instead of re-climbing the slow-start budget ladder from
	// scratch. Engagement is still audited per member against its own
	// exact windows, but results are no longer bit-identical to solo
	// runs (replay engages at different cycles). Off by default.
	ShareCalibration bool
}

// GangStats summarizes how much sharing a gang achieved.
type GangStats struct {
	Members int // gang size
	Classes int // live equivalence classes right now
	Forks   int // class splits on actuation divergence
	Merges  int // exact re-convergence merges

	// MemberCycles counts member-cycles advanced; ClassCycles counts
	// class-cycles, i.e. how many times the shared pipeline front half
	// actually ran (replay windows count their full width once).
	MemberCycles uint64
	ClassCycles  uint64
}

// Occupancy is the mean number of members served by one shared pipeline
// evaluation: MemberCycles / ClassCycles. N means perfect sharing across
// a gang of N; 1 means every member ran alone.
func (st GangStats) Occupancy() float64 {
	if st.ClassCycles == 0 {
		return 0
	}
	return float64(st.MemberCycles) / float64(st.ClassCycles)
}

// gangSig is a member's actuator state — the divergence signature. Two
// members with equal signatures consume the shared pipeline stream
// identically for the current cycle.
type gangSig struct {
	duty          float64
	freq          float64
	fetchLimit    int
	maxUnresolved int
	stallLeft     uint64
}

func sigOf(m *Sim) gangSig {
	return gangSig{
		duty:          m.duty,
		freq:          m.freqFactor,
		fetchLimit:    m.actFetchLimit,
		maxUnresolved: m.actMaxUnresolved,
		stallLeft:     m.stallLeft,
	}
}

// gclass is one operating-point equivalence class: the members in
// lock-step plus the shared objects their leader drives. members[0] is
// the leader; its act/powerVec/surrogate state serve the whole class.
type gclass struct {
	members []*Sim
	gen     *workload.Generator
	core    *pipeline.Core
	pmodel  *power.Model
	sched   int // sampling-schedule group (gangSchedKey) — merge barrier
	done    bool
}

// diverged reports whether any member's actuator state differs from the
// leader's. Five comparisons per member per cycle — cheap enough to run
// unconditionally.
func (c *gclass) diverged() bool {
	lead := c.members[0]
	for _, m := range c.members[1:] {
		if m.duty != lead.duty || m.freqFactor != lead.freqFactor ||
			m.actFetchLimit != lead.actFetchLimit ||
			m.actMaxUnresolved != lead.actMaxUnresolved ||
			m.stallLeft != lead.stallLeft {
			return true
		}
	}
	return false
}

// Gang is a set of simulations stepped in lock-step equivalence classes.
// Create with NewGang, drive with Run (or Step for cycle-level control),
// collect per-member results in config order from Run's return value.
// A Gang is single-goroutine; parallelism comes from running many gangs.
type Gang struct {
	classes []*gclass
	members []*Sim // config order
	results []*Result
	index   map[*Sim]int
	live    int // classes not yet done
	steps   uint64
	stats   GangStats
}

// mergeCheckStride paces exact re-convergence checks in class-steps: the
// pre-checks are cheap but pointless to run every cycle, since deep
// state re-converges slowly if ever. Step calls advance classBurst
// class-steps per class, so the check fires every
// mergeCheckStride/classBurst calls.
const mergeCheckStride = 4096

// mergeCheckCalls is the stride expressed in Step calls.
const mergeCheckCalls = max(1, mergeCheckStride/classBurst)

// gangSchedKey derives the config's thermal-window sampling schedule: the
// set of clamp intervals nextWindowLen applies. Members are only gang-able
// within one schedule group — surrogate replay advances whole thermal
// windows, so members whose windows end on different cycles cannot share
// a replay leg even while their actuator states agree.
func gangSchedKey(cfg *Config) string {
	var iv []uint64
	if cfg.Manager != nil && cfg.Manager.Interval != 0 {
		iv = append(iv, cfg.Manager.Interval)
	}
	if cfg.Scaling != nil || cfg.Hierarchy != nil {
		iv = append(iv, dtm.DefaultSampleInterval)
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i] < iv[j] })
	return fmt.Sprint(iv)
}

// NewGang validates cfgs and builds a gang. Every config must describe
// the same simulated experiment (workload, pipeline, gating, instruction
// and cycle budgets, thermal stride, surrogate mode) and differ only in
// the thermal/DTM dimension: policy, scaling, hierarchy, leakage, sensor
// model, thresholds, monitored blocks, initial temperatures, tangential
// flow. Per-cycle instrumentation (traces, metrics, proxies, the coupled
// chip/sink model) is rejected — it observes individual cycles in ways
// the class-shared front half cannot serve; run those configs solo.
func NewGang(cfgs []Config, opt GangOptions) (*Gang, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sim: gang needs at least one config")
	}
	ref := &cfgs[0]
	seenCtl := make(map[interface{}]int)
	for i := range cfgs {
		cfg := &cfgs[i]
		switch {
		case len(cfg.ProxyWindows) > 0:
			return nil, fmt.Errorf("sim: gang config %d: ProxyWindows require per-cycle execution; run solo", i)
		case cfg.CoupleChipSink:
			return nil, fmt.Errorf("sim: gang config %d: CoupleChipSink requires per-cycle execution; run solo", i)
		case cfg.TraceStride != 0:
			return nil, fmt.Errorf("sim: gang config %d: TraceStride is unsupported in a gang; run solo", i)
		case cfg.Trace != nil || cfg.Metrics != nil:
			return nil, fmt.Errorf("sim: gang config %d: telemetry instrumentation is unsupported in a gang; run solo", i)
		}
		if !reflect.DeepEqual(cfg.Workload, ref.Workload) {
			return nil, fmt.Errorf("sim: gang config %d: Workload differs from config 0", i)
		}
		if !reflect.DeepEqual(cfg.Pipeline, ref.Pipeline) {
			return nil, fmt.Errorf("sim: gang config %d: Pipeline differs from config 0", i)
		}
		if cfg.Gating != ref.Gating || cfg.MaxInsts != ref.MaxInsts ||
			cfg.MaxCycles != ref.MaxCycles || cfg.ThermalStride != ref.ThermalStride ||
			cfg.PipelineSurrogate != ref.PipelineSurrogate {
			return nil, fmt.Errorf("sim: gang config %d: execution parameters (Gating/MaxInsts/MaxCycles/ThermalStride/PipelineSurrogate) differ from config 0", i)
		}
		// Controllers are stateful and Reset by construction: sharing one
		// instance across members would share controller state.
		for _, p := range []interface{}{anyOf(cfg.Manager), anyOf(cfg.Scaling), anyOf(cfg.Hierarchy)} {
			if p == nil {
				continue
			}
			if j, dup := seenCtl[p]; dup {
				return nil, fmt.Errorf("sim: gang configs %d and %d share one controller instance; give each config its own", j, i)
			}
			seenCtl[p] = i
		}
	}

	g := &Gang{
		members: make([]*Sim, 0, len(cfgs)),
		results: make([]*Result, len(cfgs)),
		index:   make(map[*Sim]int, len(cfgs)),
	}
	// Partition by sampling schedule, preserving config order within and
	// across groups (first appearance orders the group).
	groups := make(map[string]int)
	var order []string
	byGroup := make(map[string][]int)
	for i := range cfgs {
		k := gangSchedKey(&cfgs[i])
		if _, ok := groups[k]; !ok {
			groups[k] = len(order)
			order = append(order, k)
		}
		byGroup[k] = append(byGroup[k], i)
	}

	var bank *calBank
	for sched, k := range order {
		idxs := byGroup[k]
		lead, err := newWith(cfgs[idxs[0]], nil, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("sim: gang config %d: %w", idxs[0], err)
		}
		c := &gclass{
			members: []*Sim{lead},
			gen:     lead.gen,
			core:    lead.core,
			pmodel:  lead.pmodel,
			sched:   sched,
		}
		for _, i := range idxs[1:] {
			m, err := newWith(cfgs[i], c.gen, c.core, c.pmodel)
			if err != nil {
				return nil, fmt.Errorf("sim: gang config %d: %w", i, err)
			}
			c.members = append(c.members, m)
		}
		if opt.ShareCalibration && lead.sur {
			if bank == nil {
				bank = newCalBank(len(lead.powerVec))
			}
			for _, m := range c.members {
				m.surBank = bank
			}
		}
		for j, i := range idxs {
			g.index[c.members[j]] = i
			g.members = append(g.members, c.members[j])
		}
		g.classes = append(g.classes, c)
	}
	g.live = len(g.classes)
	g.stats.Members = len(cfgs)
	g.stats.Classes = len(g.classes)
	return g, nil
}

// anyOf boxes a typed nil-able pointer so a nil Manager and a nil Scaling
// don't collide in the duplicate-controller map.
func anyOf[T any](p *T) interface{} {
	if p == nil {
		return nil
	}
	return p
}

// classBurst is how many class-steps Step advances one class before
// moving to the next. Classes are fully independent after a fork, so
// lock-step across classes is only needed opportunistically (merging
// requires the classes to meet at the same cycle, which exact classes
// advancing equal bursts still do); bursting keeps a class's working
// set — pipeline, caches, workload tables, thermal state — hot instead
// of evicting it on every round-robin turn.
const classBurst = 128

// Step advances every unfinished class by one burst of class-steps; a
// class-step is one exact cycle, or one whole replay window when the
// class leader's surrogate engages. Classes forked during this call
// start stepping on the next call (they are already caught up — a fork
// happens after the cycle that revealed the divergence). Returns false
// once every member has finished; results are collected by Run.
func (g *Gang) Step() bool {
	n := len(g.classes)
	for ci := 0; ci < n; ci++ {
		c := g.classes[ci]
		if c.done {
			continue
		}
		for k := 0; k < classBurst && !c.done; k++ {
			g.stepClass(c)
			if c.members[0].Done() {
				// Done() is class-uniform: the committed count comes from
				// the shared core and the budgets/virtual credits are
				// validated/kept uniform.
				c.done = true
				g.live--
				for _, m := range c.members {
					g.results[g.index[m]] = m.Finish()
				}
			}
		}
	}
	g.steps++
	if g.live > 1 && g.steps%mergeCheckCalls == 0 {
		g.tryMerge()
	}
	g.stats.Classes = g.live
	return g.live > 0
}

// stepClass runs one class-step: the shared front half once, the member
// fan-out, the divergence check, and the leader's calibration update.
// Allocation-free except when a fork fires.
func (g *Gang) stepClass(c *gclass) {
	lead := c.members[0]
	if lead.sur && lead.stallLeft == 0 {
		if cal := lead.replayable(); cal != nil {
			g.replayClass(c, cal)
			return
		}
	}
	stalled := lead.stallLeft > 0
	if stalled {
		lead.act.Reset() // the clock runs but the shared pipeline is idle
	} else {
		c.core.Step(&lead.act)
	}
	c.pmodel.BlockPower(&lead.act, lead.powerVec)
	if lead.sur {
		// Class-level calibration accumulators, exactly as in solo Step.
		acc := lead.surPowAcc
		for i, p := range lead.powerVec {
			acc[i] += p
		}
		lead.surExtraAcc += c.pmodel.ChipOverhead(&lead.act)
	}
	// Fan out with the leader LAST: stepMember scales its powerVec in
	// place (frequency factor, leakage), and the leader's powerVec IS the
	// shared raw vector — stepping it first would hand every later member
	// a base already scaled by the leader's factors. Leader-last also
	// leaves the shared core's actuation registers holding the leader's
	// own values, which its surUpdate reads through curKey.
	for _, m := range c.members[1:] {
		m.stepMember(&lead.act, lead.powerVec, stalled)
	}
	lead.stepMember(&lead.act, lead.powerVec, stalled)
	g.stats.MemberCycles += uint64(len(c.members))
	g.stats.ClassCycles++

	// stepMember ran each member's DTM sample; fork before the leader's
	// surUpdate so every partition's new leader starts its own span from
	// a bit-exact copy of the pre-update accumulators and then advances
	// it under its own operating point, exactly as its solo run would.
	start := len(g.classes)
	if len(c.members) > 1 && c.diverged() {
		g.fork(c)
	}
	if lead.sur {
		lead.surUpdate(stalled)
		for _, nc := range g.classes[start:] {
			nc.members[0].surUpdate(stalled)
		}
	}
}

// replayClass advances the whole class across one surrogate replay window
// calibrated by the leader. Window length, instruction credit and carry
// are computed once — every input is class-uniform — and fanned out;
// class-level stream/calibration bookkeeping mirrors the solo stepReplay
// line for line.
func (g *Gang) replayClass(c *gclass, cal *surCal) {
	lead := c.members[0]
	w := lead.replayWindow(cal)
	fw := float64(w)
	insts := cal.ipc*fw + lead.surCarry
	n := uint64(insts)
	carry := insts - float64(n)
	for _, m := range c.members {
		m.replayMember(cal, w, n, carry)
	}
	g.stats.MemberCycles += uint64(len(c.members)) * w
	g.stats.ClassCycles += w

	c.gen.Skip(n)
	cal.replayed += w
	lead.surPause()
	cal.splice = true
	cal.legSince = true
	lead.surAccOK = false

	// The boundary DTM sample inside replayMember can diverge members.
	// Forked leaders clone the post-splice surrogate state and the
	// post-skip stream, so their next exact window resumes exactly where
	// a solo run of that member would.
	if len(c.members) > 1 && c.diverged() {
		g.fork(c)
	}
}

// fork splits c into one class per distinct actuator signature. The
// partition containing the old leader keeps the shared objects; every
// other partition deep-clones the workload generator, core and power
// model, promotes its first member to leader, and copies the old leader's
// surrogate state into it. Each partition's actuation is then re-asserted
// on its core: the setters are idempotent plain writes, so re-asserting
// the signature the last DTM sample chose reproduces exactly the state a
// solo run's core would hold. Forks allocate; they fire only on actuation
// divergence, which is rare at the cycle scale.
func (g *Gang) fork(c *gclass) {
	oldLead := c.members[0]
	var sigs []gangSig
	var parts [][]*Sim
	for _, m := range c.members {
		sig := sigOf(m)
		idx := -1
		for i := range sigs {
			if sigs[i] == sig {
				idx = i
				break
			}
		}
		if idx < 0 {
			sigs = append(sigs, sig)
			parts = append(parts, nil)
			idx = len(parts) - 1
		}
		parts[idx] = append(parts[idx], m)
	}
	// parts[0] holds the old leader (first-seen order) and keeps the
	// shared objects in place.
	c.members = parts[0]
	reassert(c.core, c.members[0])
	for _, p := range parts[1:] {
		gen2 := c.gen.Clone()
		core2 := c.core.Clone(gen2)
		pm2 := c.pmodel.Clone()
		for _, m := range p {
			m.gen, m.core, m.pmodel = gen2, core2, pm2
		}
		newLead := p[0]
		if newLead.sur {
			newLead.cloneSurrogateFrom(oldLead)
		}
		nc := &gclass{members: p, gen: gen2, core: core2, pmodel: pm2, sched: c.sched}
		reassert(core2, newLead)
		g.classes = append(g.classes, nc)
		g.live++
		g.stats.Forks++
	}
}

// reassert writes lead's actuator state onto core. The shared core last
// saw the actuation of whichever member sampled last; each partition's
// core must reflect its own leader's.
func reassert(core *pipeline.Core, lead *Sim) {
	core.SetFetchDuty(lead.duty)
	core.SetFetchLimit(lead.actFetchLimit)
	core.SetMaxUnresolvedBranches(lead.actMaxUnresolved)
}

// tryMerge merges classes whose deep state has re-converged exactly.
// Byte-identity admits no approximate merge: two classes may be merged
// only when their shared objects (core, generator, power model), window
// position, replay carry and calibration stores are bit-equal — then
// folding one class's members under the other's leader changes no
// member's future trajectory. The cheap pre-checks (signature, cycle,
// core snapshot) reject almost everything before the reflect.DeepEqual
// deep compare runs.
func (g *Gang) tryMerge() {
	for i := 0; i < len(g.classes); i++ {
		a := g.classes[i]
		if a.done {
			continue
		}
		for j := i + 1; j < len(g.classes); j++ {
			b := g.classes[j]
			if b.done || b.sched != a.sched {
				continue
			}
			if !mergeable(a, b) {
				continue
			}
			// Fold b's members under a's leader and shared objects.
			for _, m := range b.members {
				m.gen, m.core, m.pmodel = a.gen, a.core, a.pmodel
			}
			a.members = append(a.members, b.members...)
			b.members = nil
			b.done = true
			g.live--
			g.stats.Merges++
		}
	}
}

// mergeable runs the exact re-convergence test for two live classes.
func mergeable(a, b *gclass) bool {
	la, lb := a.members[0], b.members[0]
	if sigOf(la) != sigOf(lb) || la.cycle != lb.cycle ||
		la.winLen != lb.winLen || la.winLeft != lb.winLeft ||
		la.surCarry != lb.surCarry || la.virtInsts != lb.virtInsts {
		return false
	}
	if a.core.Snapshot() != b.core.Snapshot() || a.core.Stats() != b.core.Stats() {
		return false
	}
	if !reflect.DeepEqual(a.core, b.core) || !reflect.DeepEqual(a.gen, b.gen) ||
		!reflect.DeepEqual(a.pmodel, b.pmodel) {
		return false
	}
	if la.sur {
		// The surviving leader's calibration store will serve b's
		// members: it must match what b's leader would have used.
		if la.surAccKey != lb.surAccKey || la.surAccOK != lb.surAccOK ||
			la.surWarm != lb.surWarm || la.surExtraAcc != lb.surExtraAcc ||
			la.surSnap0 != lb.surSnap0 ||
			!reflect.DeepEqual(la.surPowAcc, lb.surPowAcc) ||
			!reflect.DeepEqual(la.surCals, lb.surCals) {
			return false
		}
	}
	return true
}

// Stats returns the gang's sharing statistics so far.
func (g *Gang) Stats() GangStats { return g.stats }

// Run steps the gang to completion and returns per-member results in the
// order of the configs passed to NewGang. Context checks and scheduler
// yields are paced on class-cycles, mirroring the solo Run loop.
func (g *Gang) Run(ctx context.Context) ([]*Result, error) {
	done := ctx.Done()
	check := g.stats.ClassCycles + ctxCheckInterval
	for g.Step() {
		if g.stats.ClassCycles >= check {
			check = g.stats.ClassCycles + ctxCheckInterval
			if done != nil {
				select {
				case <-done:
					return nil, context.Cause(ctx)
				default:
				}
			}
			runtime.Gosched()
		}
	}
	return g.results, nil
}
