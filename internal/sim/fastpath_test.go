package sim_test

// A/B validation of the macro-stepped exponential thermal fast path
// against the per-cycle Euler path (ThermalStride 1) across the full
// benchmark suite and every DTM policy. The fast path integrates each
// window's mean power analytically, so it is exact for constant-power
// windows; with real (fluctuating) workloads the within-window
// mean-power substitution bounds the divergence, and these tests pin
// the observed error well inside the documented tolerances.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

const (
	eqInsts = 60000
	// eqTempTol bounds per-block average and maximum temperature
	// divergence between the two integrators. The window mean-power
	// substitution perturbs within-window trajectories by
	// ~a·R·Σ|P−P̄| and end-of-window temperatures by a second-order
	// correction ~a²·w²·σP·R; the observed worst case across the suite
	// is ~1e-4 °C, so two millidegrees holds 20× margin.
	eqTempTol = 2e-3
	// eqEmergSlack bounds the emergency/stress cycle-count divergence:
	// a threshold crossing inside a window can shift by the trajectory
	// perturbation divided by the per-cycle slope, which stays under
	// one window length (observed worst case ~55 cycles).
	eqEmergSlack = uint64(sim.DefaultThermalStride)
)

// runPair executes the same configuration under the Euler and fast
// thermal paths. Configurations are rebuilt per run because policy and
// scaling objects carry internal controller state.
func runPair(t *testing.T, benchmark, policy string, mutate func(*sim.Config)) (euler, fast *sim.Result) {
	t.Helper()
	build := func(stride uint64) *sim.Result {
		cfg, err := core.NewRun(benchmark, policy, eqInsts)
		if err != nil {
			t.Fatalf("NewRun(%s,%s): %v", benchmark, policy, err)
		}
		cfg.ThermalStride = stride
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("Run(%s,%s,stride=%d): %v", benchmark, policy, stride, err)
		}
		return res
	}
	return build(1), build(0)
}

// hotInit returns a mutate func seeding every block above the emergency
// threshold so both cooling and reheating crossings occur.
func hotInit(nblk int, temp float64) func(*sim.Config) {
	return func(cfg *sim.Config) {
		init := make([]float64, nblk)
		for i := range init {
			init[i] = temp
		}
		cfg.InitTemps = init
	}
}

func comparePair(t *testing.T, euler, fast *sim.Result, tempTol float64, emergSlack uint64) {
	t.Helper()
	if euler.Cycles != fast.Cycles {
		// Cycle counts may drift if DTM decisions diverge; report but
		// do not fail on sub-percent drift.
		d := float64(euler.Cycles) - float64(fast.Cycles)
		if math.Abs(d) > 0.01*float64(euler.Cycles) {
			t.Errorf("cycle count diverged: euler=%d fast=%d", euler.Cycles, fast.Cycles)
		}
	}
	var maxAvg, maxMax float64
	for i := range euler.Blocks {
		eb, fb := &euler.Blocks[i], &fast.Blocks[i]
		if d := math.Abs(eb.AvgTemp - fb.AvgTemp); d > maxAvg {
			maxAvg = d
		}
		if d := math.Abs(eb.MaxTemp - fb.MaxTemp); d > maxMax {
			maxMax = d
		}
	}
	t.Logf("maxΔavg=%.3e maxΔmax=%.3e ΔE=%d ΔS=%d (E=%d)",
		maxAvg, maxMax,
		int64(euler.EmergencyCycles)-int64(fast.EmergencyCycles),
		int64(euler.StressCycles)-int64(fast.StressCycles),
		euler.EmergencyCycles)
	if maxAvg > tempTol {
		t.Errorf("per-block AvgTemp diverged by %.3e (tol %.1e)", maxAvg, tempTol)
	}
	if maxMax > tempTol {
		t.Errorf("per-block MaxTemp diverged by %.3e (tol %.1e)", maxMax, tempTol)
	}
	if d := absDiff(euler.EmergencyCycles, fast.EmergencyCycles); d > emergSlack {
		t.Errorf("EmergencyCycles diverged by %d (euler=%d fast=%d, slack %d)",
			d, euler.EmergencyCycles, fast.EmergencyCycles, emergSlack)
	}
	if d := absDiff(euler.StressCycles, fast.StressCycles); d > emergSlack {
		t.Errorf("StressCycles diverged by %d (euler=%d fast=%d, slack %d)",
			d, euler.StressCycles, fast.StressCycles, emergSlack)
	}
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

func numBlocks(t *testing.T) int {
	t.Helper()
	cfg, err := core.NewRun("gcc", "none", 1000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return len(s.Finish().Blocks)
}

// TestFastPathEquivalenceWorkloads sweeps every benchmark in the suite
// under the PI policy.
func TestFastPathEquivalenceWorkloads(t *testing.T) {
	nblk := numBlocks(t)
	for _, b := range core.Benchmarks() {
		b := b
		t.Run(b, func(t *testing.T) {
			t.Parallel()
			euler, fast := runPair(t, b, "PI", hotInit(nblk, 112))
			comparePair(t, euler, fast, eqTempTol, eqEmergSlack)
		})
	}
}

// TestFastPathEquivalencePolicies sweeps every DTM policy on one hot
// benchmark.
func TestFastPathEquivalencePolicies(t *testing.T) {
	nblk := numBlocks(t)
	for _, p := range core.Policies() {
		p := p
		t.Run(p, func(t *testing.T) {
			t.Parallel()
			euler, fast := runPair(t, "gcc", p, hotInit(nblk, 112))
			comparePair(t, euler, fast, eqTempTol, eqEmergSlack)
		})
	}
}

// TestFastPathTangentialTolerance checks the frozen-lateral-flow
// approximation of the tangential model stays within its documented
// first-order bound (w·dt ≪ R·C keeps the error per window tiny, but
// unlike the Figure 3C model it is not exact for constant power).
func TestFastPathTangentialTolerance(t *testing.T) {
	nblk := numBlocks(t)
	euler, fast := runPair(t, "gcc", "PI", func(cfg *sim.Config) {
		hotInit(nblk, 112)(cfg)
		cfg.Tangential = true
	})
	comparePair(t, euler, fast, eqTempTol, eqEmergSlack)
}

// TestFastPathRejectsIneligibleConfigs pins the explicit-stride
// validation: per-cycle consumers must refuse a macro-stepped window.
func TestFastPathRejectsIneligibleConfigs(t *testing.T) {
	cfg, err := core.NewRun("gcc", "PI", 1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ProxyWindows = []int{100}
	cfg.ThermalStride = 256
	if _, err := sim.New(cfg); err == nil {
		t.Fatal("New accepted ThermalStride 256 with power proxies")
	}
	cfg.ProxyWindows = nil
	cfg.CoupleChipSink = true
	if _, err := sim.New(cfg); err == nil {
		t.Fatal("New accepted ThermalStride 256 with CoupleChipSink")
	}
	// Auto mode silently falls back to Euler for the same configs.
	cfg.ThermalStride = 0
	if _, err := sim.New(cfg); err != nil {
		t.Fatalf("auto stride should fall back to Euler: %v", err)
	}
}

// TestFastPathTraceShapeMatchesEuler pins the trace stride phase: both
// integrators must record exactly the same sample cycles.
func TestFastPathTraceShapeMatchesEuler(t *testing.T) {
	nblk := numBlocks(t)
	euler, fast := runPair(t, "gcc", "PI", func(cfg *sim.Config) {
		hotInit(nblk, 112)(cfg)
		cfg.TraceStride = 777 // deliberately misaligned with the window
	})
	if el, fl := euler.TempTrace.Len(), fast.TempTrace.Len(); el != fl {
		t.Fatalf("trace length diverged: euler=%d fast=%d", el, fl)
	}
	for i, x := range euler.TempTrace.Xs {
		if fast.TempTrace.Xs[i] != x {
			t.Fatalf("trace sample %d at cycle %d (euler) vs %d (fast)",
				i, x, fast.TempTrace.Xs[i])
		}
		if d := math.Abs(euler.TempTrace.Ys[i] - fast.TempTrace.Ys[i]); d > eqTempTol {
			t.Fatalf("trace sample %d diverged by %.3e", i, d)
		}
	}
}
