package sim_test

// A/B validation of the pipeline surrogate (calibrated macro-window
// replay) against the cycle-exact pipeline on the macro-stepped thermal
// fast path, across the full benchmark suite and every DTM policy. The
// surrogate substitutes calibrated mean power and IPC for the real
// pipeline inside steady-state spans, so — unlike the thermal fast path,
// which is exact for constant power — it carries genuine modeling error:
// calibration bias on non-stationary phases, splice transients when the
// frozen pipeline resumes, and quantized instruction credit. The bounds
// here are correspondingly looser than the fast path's and are the
// documented accuracy contract (README "Pipeline surrogate").

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

const (
	// surInsts sizes the A/B runs. The trend gate keeps the surrogate
	// (correctly) disengaged through the pipeline's cache/predictor
	// warm-up — several hundred thousand cycles — so the runs must be
	// long enough that steady-state replay, the regime the surrogate
	// exists for, dominates.
	surInsts = 1_500_000
	// surTempTol bounds per-block average and maximum temperature
	// divergence. Observed worst case across 18 benchmarks × 13 policies
	// is held with margin; the dominant term is calibration bias on
	// phases whose power is not stationary at the warm-up scale.
	surTempTol = 0.5
	// surResidencyTol bounds the emergency/stress residency divergence
	// as a fraction of total cycles (threshold crossings shift when the
	// replayed trajectory runs at mean power).
	surResidencyTol = 0.08
	// surCycleDriftTol bounds total cycle-count drift: the surrogate
	// credits instructions at the calibrated IPC, so a biased
	// calibration stretches or shrinks the run.
	surCycleDriftTol = 0.05
	// surAggregateFloor is the minimum replay fraction aggregated across
	// the whole workload matrix (the accuracy bounds alone would be
	// satisfied trivially by never replaying). It is deliberately an
	// aggregate, not per-benchmark: the engagement gates are meant to
	// keep the surrogate out of runs it cannot replay accurately —
	// noisy or slowly-creeping workloads, trajectories hovering at the
	// stress band — and several benchmarks legitimately sit in that
	// regime at this horizon.
	surAggregateFloor = 0.25
	// surSteadyFloor is the per-run floor for the dedicated steady-state
	// engagement test, where the workload is stationary and no DTM
	// policy perturbs the operating point. The non-replayed remainder is
	// the genuine cache warm-up ramp plus the periodic audit windows.
	surSteadyFloor = 0.50
)

// runSurPair executes the same configuration cycle-exact and with the
// pipeline surrogate, both on the macro-stepped thermal fast path so the
// delta isolates the pipeline substitution.
func runSurPair(t *testing.T, benchmark, policy string, mutate func(*sim.Config)) (exact, sur *sim.Result) {
	t.Helper()
	build := func(surrogate bool) *sim.Result {
		cfg, err := core.NewRun(benchmark, policy, surInsts)
		if err != nil {
			t.Fatalf("NewRun(%s,%s): %v", benchmark, policy, err)
		}
		cfg.PipelineSurrogate = surrogate
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("Run(%s,%s,surrogate=%v): %v", benchmark, policy, surrogate, err)
		}
		return res
	}
	return build(false), build(true)
}

func frac(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

func compareSurPair(t *testing.T, exact, sur *sim.Result) {
	t.Helper()
	drift := math.Abs(float64(exact.Cycles)-float64(sur.Cycles)) / float64(exact.Cycles)
	var maxAvg, maxMax float64
	for i := range exact.Blocks {
		eb, sb := &exact.Blocks[i], &sur.Blocks[i]
		if d := math.Abs(eb.AvgTemp - sb.AvgTemp); d > maxAvg {
			maxAvg = d
		}
		if d := math.Abs(eb.MaxTemp - sb.MaxTemp); d > maxMax {
			maxMax = d
		}
	}
	dEmerg := math.Abs(frac(exact.EmergencyCycles, exact.Cycles) - frac(sur.EmergencyCycles, sur.Cycles))
	dStress := math.Abs(frac(exact.StressCycles, exact.Cycles) - frac(sur.StressCycles, sur.Cycles))
	t.Logf("maxΔavg=%.3f maxΔmax=%.3f ΔEfrac=%.4f ΔSfrac=%.4f drift=%.4f replay=%.0f%%",
		maxAvg, maxMax, dEmerg, dStress, drift,
		100*frac(sur.SurrogateCycles, sur.Cycles))
	if maxAvg > surTempTol {
		t.Errorf("per-block AvgTemp diverged by %.3f (tol %.2f)", maxAvg, surTempTol)
	}
	if maxMax > surTempTol {
		t.Errorf("per-block MaxTemp diverged by %.3f (tol %.2f)", maxMax, surTempTol)
	}
	if dEmerg > surResidencyTol {
		t.Errorf("emergency residency diverged by %.4f (exact=%.4f sur=%.4f, tol %.2f)",
			dEmerg, frac(exact.EmergencyCycles, exact.Cycles), frac(sur.EmergencyCycles, sur.Cycles), surResidencyTol)
	}
	if dStress > surResidencyTol {
		t.Errorf("stress residency diverged by %.4f (exact=%.4f sur=%.4f, tol %.2f)",
			dStress, frac(exact.StressCycles, exact.Cycles), frac(sur.StressCycles, sur.Cycles), surResidencyTol)
	}
	if drift > surCycleDriftTol {
		t.Errorf("cycle count drifted by %.4f (exact=%d sur=%d, tol %.2f)",
			drift, exact.Cycles, sur.Cycles, surCycleDriftTol)
	}
	if exact.SurrogateCycles != 0 {
		t.Errorf("cycle-exact run reported %d surrogate cycles", exact.SurrogateCycles)
	}
}

// TestSurrogateEquivalenceWorkloads sweeps every benchmark in the suite
// under the PI policy and additionally requires the surrogate to engage
// for a meaningful share of the matrix in aggregate (the accuracy bounds
// alone would be satisfied trivially by never replaying).
func TestSurrogateEquivalenceWorkloads(t *testing.T) {
	nblk := numBlocks(t)
	var surCycles, totCycles atomic.Uint64
	t.Cleanup(func() { // runs after every parallel subtest has finished
		if t.Failed() {
			return
		}
		f := frac(surCycles.Load(), totCycles.Load())
		t.Logf("aggregate replay across matrix: %.1f%%", 100*f)
		// The floor is calibrated for the full matrix; the race-mode
		// subset deliberately over-samples refusal regimes.
		if f < surAggregateFloor && !raceDetector {
			t.Errorf("surrogate replayed only %.1f%% of the matrix (floor %.0f%%)",
				100*f, 100*surAggregateFloor)
		}
	})
	for _, b := range core.Benchmarks() {
		b := b
		if surRaceWorkloads != nil && !surRaceWorkloads[b] {
			continue
		}
		t.Run(b, func(t *testing.T) {
			t.Parallel()
			exact, sur := runSurPair(t, b, "PI", hotInit(nblk, 112))
			compareSurPair(t, exact, sur)
			surCycles.Add(sur.SurrogateCycles)
			totCycles.Add(sur.Cycles)
		})
	}
}

// TestSurrogateSteadyStateEngagement pins the regime the surrogate exists
// for: a stationary workload with no DTM actuation must be replayed for
// the bulk of the run once calibration completes.
func TestSurrogateSteadyStateEngagement(t *testing.T) {
	nblk := numBlocks(t)
	cfg, err := core.NewRun("gcc", "none", 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PipelineSurrogate = true
	hotInit(nblk, 104)(&cfg) // warm but clear of the stress band
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f := frac(res.SurrogateCycles, res.Cycles); f < surSteadyFloor {
		t.Errorf("steady state replayed only %.1f%% of cycles (floor %.0f%%)", 100*f, 100*surSteadyFloor)
	} else {
		t.Logf("steady state replay: %.1f%%", 100*f)
	}
}

// TestSurrogateEquivalencePolicies sweeps every DTM policy on one hot
// benchmark. No engagement floor here: policies that actuate every
// sample (or stall the pipeline) legitimately limit replay.
func TestSurrogateEquivalencePolicies(t *testing.T) {
	nblk := numBlocks(t)
	for _, p := range core.Policies() {
		p := p
		if surRacePolicies != nil && !surRacePolicies[p] {
			continue
		}
		t.Run(p, func(t *testing.T) {
			t.Parallel()
			exact, sur := runSurPair(t, "gcc", p, hotInit(nblk, 112))
			compareSurPair(t, exact, sur)
		})
	}
}

// TestSurrogateRejectsIneligibleConfigs pins the constructor validation:
// the surrogate requires the macro-stepped thermal fast path, so every
// configuration the fast path refuses (or auto-falls-back to Euler on)
// must be an explicit error, as must an explicit per-cycle stride.
func TestSurrogateRejectsIneligibleConfigs(t *testing.T) {
	base := func() sim.Config {
		cfg, err := core.NewRun("gcc", "PI", 1000)
		if err != nil {
			t.Fatal(err)
		}
		cfg.PipelineSurrogate = true
		return cfg
	}
	cfg := base()
	cfg.ThermalStride = 1
	if _, err := sim.New(cfg); err == nil {
		t.Error("New accepted PipelineSurrogate with ThermalStride 1")
	}
	cfg = base()
	cfg.ProxyWindows = []int{100}
	if _, err := sim.New(cfg); err == nil {
		t.Error("New accepted PipelineSurrogate with power proxies")
	}
	cfg = base()
	cfg.CoupleChipSink = true
	if _, err := sim.New(cfg); err == nil {
		t.Error("New accepted PipelineSurrogate with CoupleChipSink")
	}
	cfg = base()
	if _, err := sim.New(cfg); err != nil {
		t.Errorf("New rejected an eligible surrogate config: %v", err)
	}
}

// TestSurrogateTraceShapeMatchesExact pins the trace cadence: replay
// windows clamp to trace boundaries, so both modes must record exactly
// the same sample cycles.
func TestSurrogateTraceShapeMatchesExact(t *testing.T) {
	nblk := numBlocks(t)
	exact, sur := runSurPair(t, "gcc", "PI", func(cfg *sim.Config) {
		hotInit(nblk, 112)(cfg)
		cfg.TraceStride = 777 // deliberately misaligned with the window
	})
	n := exact.TempTrace.Len()
	if sl := sur.TempTrace.Len(); sl < n {
		n = sl // cycle drift may add/remove trailing samples; cadence must match
	}
	if d := math.Abs(float64(exact.TempTrace.Len() - sur.TempTrace.Len())); d > 0.05*float64(exact.TempTrace.Len()) {
		t.Fatalf("trace length diverged: exact=%d sur=%d", exact.TempTrace.Len(), sur.TempTrace.Len())
	}
	for i := 0; i < n; i++ {
		if exact.TempTrace.Xs[i] != sur.TempTrace.Xs[i] {
			t.Fatalf("trace sample %d at cycle %d (exact) vs %d (surrogate)",
				i, exact.TempTrace.Xs[i], sur.TempTrace.Xs[i])
		}
	}
}
