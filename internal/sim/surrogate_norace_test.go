//go:build !race

package sim_test

// Without the race detector the full A/B matrices fit comfortably in
// the package budget; see surrogate_race_test.go for the race-mode
// subset.
const raceDetector = false

var (
	surRaceWorkloads map[string]bool // nil: run every benchmark
	surRacePolicies  map[string]bool // nil: run every policy
)
