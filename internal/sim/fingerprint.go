package sim

// Content-addressed fingerprinting of a simulation configuration, the key
// of the batch-level run cache (internal/runner.Cache). Two configurations
// hash identically exactly when they describe the same deterministic run:
// the workload identity (profile and seed), the machine configuration, the
// DTM policy with its full tuning — including the controller's runtime
// state, so a dirty (non-reset) controller conservatively misses — and the
// instruction/cycle budgets.
//
// The encoder walks the configuration reflectively, so new fields are
// hashed by default; fields that must NOT contribute to the key (telemetry
// sinks and their labeling, which do not affect the simulated trajectory)
// are listed in cacheKeyExcluded, and TestCacheKeyCoversConfig fails when
// Config grows a field that has not been explicitly classified.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"reflect"
	"sort"
)

// cacheKeyExcluded lists the Config fields deliberately left out of the
// fingerprint. Metrics and Trace are live side-channel sinks: runs that
// stream telemetry are not cacheable at all (replaying a cached result
// would silently drop their samples), so CacheKey rejects them, and the
// trace labeling knobs that ride along are meaningless without them.
var cacheKeyExcluded = map[string]bool{
	"Metrics":       true,
	"Trace":         true,
	"TraceInterval": true,
	"TraceID":       true,
}

// CacheKey returns a collision-resistant content hash of cfg for use as a
// run-cache key, and whether the configuration is cacheable at all. Runs
// with live telemetry sinks attached (Metrics or Trace) report ok=false:
// their side effects happen during simulation and cannot be replayed from
// a cached result.
func CacheKey(cfg Config) (key string, ok bool) {
	if cfg.Metrics != nil || cfg.Trace != nil {
		return "", false
	}
	h := sha256.New()
	v := reflect.ValueOf(cfg)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if cacheKeyExcluded[t.Field(i).Name] {
			continue
		}
		fmt.Fprintf(h, "%s=", t.Field(i).Name)
		hashValue(h, v.Field(i))
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// hashValue canonically encodes v into h. Every kind that can appear in a
// Config is handled; unexported fields are read through kind-specific
// accessors (never Interface), so private policy/controller state hashes
// too. Unhashable kinds (funcs, channels) panic: a config carrying one
// cannot be content-addressed, and the panic turns a silent wrong-key bug
// into an immediate test failure.
func hashValue(h hash.Hash, v reflect.Value) {
	if !v.IsValid() {
		h.Write([]byte("z;"))
		return
	}
	switch v.Kind() {
	case reflect.Bool:
		fmt.Fprintf(h, "b%t;", v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(h, "i%d;", v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		fmt.Fprintf(h, "u%d;", v.Uint())
	case reflect.Float32, reflect.Float64:
		// Bit-exact: distinguishes -0/+0 and all NaN payloads, and never
		// loses precision to decimal formatting.
		fmt.Fprintf(h, "f%016x;", math.Float64bits(v.Float()))
	case reflect.Complex64, reflect.Complex128:
		c := v.Complex()
		fmt.Fprintf(h, "c%016x,%016x;", math.Float64bits(real(c)), math.Float64bits(imag(c)))
	case reflect.String:
		fmt.Fprintf(h, "s%d:%s;", v.Len(), v.String())
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			h.Write([]byte("n;"))
			return
		}
		e := v.Elem()
		// The dynamic type participates: two policies with coincidentally
		// identical field layouts must not collide.
		fmt.Fprintf(h, "p%s{", e.Type().String())
		hashValue(h, e)
		h.Write([]byte("};"))
	case reflect.Slice:
		if v.IsNil() {
			h.Write([]byte("n;"))
			return
		}
		fallthrough
	case reflect.Array:
		fmt.Fprintf(h, "l%d[", v.Len())
		for i := 0; i < v.Len(); i++ {
			hashValue(h, v.Index(i))
		}
		h.Write([]byte("];"))
	case reflect.Struct:
		t := v.Type()
		fmt.Fprintf(h, "t%s{", t.String())
		for i := 0; i < t.NumField(); i++ {
			fmt.Fprintf(h, "%s=", t.Field(i).Name)
			hashValue(h, v.Field(i))
		}
		h.Write([]byte("};"))
	case reflect.Map:
		if v.IsNil() {
			h.Write([]byte("n;"))
			return
		}
		if v.Type().Key().Kind() != reflect.String {
			panic(fmt.Sprintf("sim: cannot fingerprint map keyed by %s", v.Type().Key()))
		}
		keys := make([]string, 0, v.Len())
		for _, k := range v.MapKeys() {
			keys = append(keys, k.String())
		}
		sort.Strings(keys)
		fmt.Fprintf(h, "m%d{", len(keys))
		for _, k := range keys {
			fmt.Fprintf(h, "%s=", k)
			hashValue(h, v.MapIndex(reflect.ValueOf(k)))
		}
		h.Write([]byte("};"))
	default:
		panic(fmt.Sprintf("sim: cannot fingerprint %s (kind %s)", v.Type(), v.Kind()))
	}
}
