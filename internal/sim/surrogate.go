package sim

import "math"

// Macro-stepped pipeline surrogate execution (Config.PipelineSurrogate).
//
// The DTM loop of the paper samples temperatures every 1000 cycles and the
// thermal time constants are tens of microseconds, so inside a workload
// phase's steady state nothing observable depends on cycle-exact pipeline
// behaviour — only on the per-block mean power and the instruction
// throughput. The surrogate exploits this the way model-order reduction
// replaces a full RC network with a small calibrated stand-in: run the real
// pipeline for a warm-up window, record the mean per-block dynamic power,
// the chip-overhead power and the IPC under the current operating point
// (workload phase × DTM actuation × clock frequency), then replay those
// statistics analytically one thermal window at a time. The pipeline and
// power model are frozen during replay; the workload generator is advanced
// by the calibrated IPC so the instruction stream stays aligned for the
// next cycle-exact span.
//
// Replay is bounded by everything that invalidates the calibration:
//   - the operating-point key changes (DTM actuation, frequency, phase);
//   - the generator approaches a phase transition (surPhaseMarginInsts);
//   - the run approaches its instruction budget (the final approach is
//     simulated cycle-exact so the run ends on a real committed count);
//   - a trigger-mechanism stall arrives (stalls run cycle-exact);
//   - the calibration exceeds its replay budget and must be refreshed.
//
// Error sources, all bounded by TestSurrogateEquivalence*: the mean-power
// substitution within windows (shared with the thermal fast path), the
// splice transient when the frozen pipeline resumes, and calibration bias
// when a phase is not perfectly stationary.

// Tuning constants.
const (
	// surWarmupCycles is one cycle-exact calibration window: 128 thermal
	// windows. The synthetic workloads are quasi-periodic (the
	// generator's loop-set sweep spans tens of thousands of instructions)
	// so short windows alias the sweep; 32K cycles averages a few sweeps
	// and brings adjacent-window IPC noise to ~5% median on the suite.
	surWarmupCycles = 128 * DefaultThermalStride
	// surStableRelTol is the stationarity/audit test: a calibration
	// window must agree with the stored stats on IPC and on the power
	// vector within this relative tolerance. It sits above the
	// steady-state window noise (p90 ≈ 11% at this window size) scaled
	// by the EWMA's smoothing, and below the per-window drift of a cache
	// cold start, which is what it exists to reject.
	surStableRelTol = 0.10
	// surMinReplay / surMaxReplay bound the slow-start replay budget: a
	// freshly validated calibration replays surMinReplay cycles, then
	// must pass an exact audit window; every passed audit doubles the
	// budget up to surMaxReplay, and a failed audit resets it. Slow
	// drift (cache warm-up tails, predictor training) therefore costs
	// short replay legs instead of accumulating, while genuinely steady
	// phases converge to one 32K audit per 2M replayed cycles (~1.6%
	// cycle-exact duty).
	surMinReplay = 4 * surWarmupCycles
	surMaxReplay = 16 * surMinReplay
	// surPhaseMarginInsts is the instruction margin around phase
	// transitions (and the end-of-run budget) executed cycle-exact.
	surPhaseMarginInsts = 2048
	// surMaxCals caps the calibration store. Keys are quantized duty
	// levels × frequency settings × integer throttle bounds per phase, so
	// real policies stay far below the cap; when it is full, new keys
	// simply run cycle-exact.
	surMaxCals = 64
	// Drift gate. Adjacent-window agreement alone cannot tell a steady
	// phase from slow monotone creep (cache fill, predictor training):
	// the per-window drift of a warm-up tail sits inside the noise
	// tolerance, and — worse — an audit window right after a replay leg
	// compares the frozen, unaged pipeline against stats taken from that
	// same state, so it always agrees. The gate instead keeps a ring of
	// the last surHistLen completed-window IPCs that carry real aging
	// (windows right after a replay splice are excluded) and estimates
	// the creep RATE from the old-half vs new-half means: quasi-periodic
	// window noise averages down as 1/sqrt(N) while monotone creep
	// accumulates linearly, so slow warm-up tails far below the
	// single-pair noise floor are still resolved. Entries are stamped
	// with the calibration's cumulative cycle-exact age, so the halves
	// yield a creep rate PER EXACT CYCLE regardless of how replay legs
	// interleave. The rate then sets the replay budget directly (see
	// surUpdate): a leg of B frozen cycles leaves the pipeline B cycles
	// less aged than the exact run would be, a staleness of rate x B, so
	// capping the budget at surStaleFrac / rate keeps the replayed IPC
	// error inside the documented drift bound by construction — steady
	// phases earn surMaxReplay legs, creeping ones get exactly the leg
	// length their creep affords, and fast warm-up blocks replay
	// outright.
	surHistLen = 32
	// surHistMin is the minimum ring fill before replay may engage.
	surHistMin = 4
	// surStaleFrac is the IPC staleness allowed to accumulate across one
	// replay leg, the per-leg slice of surCycleDriftTol-style error.
	surStaleFrac = 0.03
	// surIPCFloor keeps relative deltas bounded for near-idle windows.
	surIPCFloor = 0.05
	// surAllocMinSpan gates calibration-store allocation: an operating
	// point earns a slot only once a contiguous span at that point has
	// survived this many cycles. Continuous-actuation policies (PI, PID)
	// emit a fresh duty value nearly every sample; without the gate those
	// one-sample transients would exhaust the store. Points a controller
	// actually dwells on — rails, converged equilibria, discrete toggle
	// or scaling levels — pass easily.
	surAllocMinSpan = 2048
	// surTrendRun is the number of consecutive completed windows whose
	// creep-rate budget cap must clear surMinReplay before replay may
	// engage. The half-mean rate estimate is noisy; during a persistent
	// ramp it occasionally spikes high for a single window, and one
	// spike must not buy a replay leg whose staleness the true rate
	// cannot afford — and on a staircase-shaped warm-up (plateaus
	// between jumps) the spikes come in pairs, so the run must be long
	// enough to span a jump. Genuinely steady phases clear the cap every
	// window (the counter does not reset on stats reseeds) and pay only
	// the extra windows once per calibration birth or creep episode.
	surTrendRun = 4
)

// surKey identifies one steady-state operating point.
type surKey struct {
	phase         int
	duty          float64
	freq          float64
	fetchLimit    int
	maxUnresolved int
}

// surCal is one calibrated activity vector. Until valid, the stats hold
// the most recent completed warm-up window (the stationarity candidate).
type surCal struct {
	power    []float64           // mean per-block dynamic power, pre-scaling, pre-leakage
	extra    float64             // mean chip-overhead power (power.Model.ChipOverhead)
	ipc      float64             // committed instructions per cycle
	acc      []float64           // partial-window power sums (assembled across spans)
	accExtra float64             // partial-window chip-overhead sum
	accInsts uint64              // partial-window committed instructions
	warm     uint64              // partial-window accumulated cycles
	hist     [surHistLen]float64 // ring of completed-window IPCs
	histAge  [surHistLen]float64 // ring of window ages (cycle-exact cycles)
	histN    int                 // ring fill
	histPos  int                 // ring write cursor
	ageC     float64             // cumulative cycle-exact cycles folded
	replayed uint64              // cycles replayed since the last audit
	budget   uint64              // slow-start replay allowance until the next audit
	seeded   bool                // stats hold at least one completed window
	valid    bool                // stationarity/audit/trend passed; replay allowed
	splice   bool                // a replay leg separates prevIPC's window from the next
	legSince bool                // a replay leg happened since the last validation
	trendRun int                 // consecutive windows with budget cap >= surMinReplay
	banked   bool                // stats adopted from a gang-shared calibration bank
}

// budgetFor estimates the IPC creep rate per cycle-exact cycle over the
// newest n ring entries (old-half mean vs new-half mean over mid-window
// ages) and returns the replay budget that keeps leg staleness within
// surStaleFrac: surStaleFrac / rate, clamped to surMaxReplay. Returns 0
// when there is too little history or age span to tell.
func (cal *surCal) budgetFor(n int) uint64 {
	half := n / 2
	if half < surHistMin/2 {
		return 0
	}
	var oldSum, newSum, oldAge, newAge float64
	for i := 0; i < half; i++ {
		o := (cal.histPos - 2*half + i + 2*surHistLen) % surHistLen
		w := (cal.histPos - half + i + 2*surHistLen) % surHistLen
		oldSum += cal.hist[o]
		oldAge += cal.histAge[o]
		newSum += cal.hist[w]
		newAge += cal.histAge[w]
	}
	oldM, newM := oldSum/float64(half), newSum/float64(half)
	den := math.Max(math.Max(oldM, newM), surIPCFloor)
	dAge := (newAge - oldAge) / float64(half)
	if dAge <= 0 {
		return 0
	}
	rate := math.Abs(newM-oldM) / (den * dAge)
	if b := surStaleFrac / math.Max(rate, 1e-12); b < surMaxReplay {
		return uint64(b)
	}
	return surMaxReplay
}

// surEntry is one calibration-store slot.
type surEntry struct {
	key surKey
	cal *surCal
}

// curKey returns the operating point in force right now.
func (s *Sim) curKey() surKey {
	return surKey{
		phase:         s.gen.PhaseIndex(),
		duty:          s.duty,
		freq:          s.freqFactor,
		fetchLimit:    s.core.FetchLimit(),
		maxUnresolved: s.core.MaxUnresolvedLimit(),
	}
}

// lookup finds the calibration entry for key, or nil. Linear search over a
// small fixed-capacity slice: no hashing, no allocation, and the store is
// bounded by surMaxCals.
func (s *Sim) lookup(key surKey) *surCal {
	for i := range s.surCals {
		if s.surCals[i].key == key {
			return s.surCals[i].cal
		}
	}
	return nil
}

// replayable returns the calibration to replay this Step, or nil when the
// simulation must run cycle-exact: mid-thermal-window, no (valid)
// calibration for the current operating point, near a phase transition or
// the instruction budget, or the calibration's replay budget is spent
// (which also invalidates it, forcing a recalibration).
func (s *Sim) replayable() *surCal {
	if s.winLeft != s.winLen {
		return nil // let the partially accumulated window close first
	}
	key := s.curKey()
	var cal *surCal
	if s.surAccOK && key == s.surAccKey {
		cal = s.surAccCal // steady state: skip the store scan
	} else {
		cal = s.lookup(key)
	}
	if cal == nil || !cal.valid {
		return nil
	}
	if cal.replayed >= cal.budget {
		cal.valid = false // audit due: the next exact window re-checks
		return nil
	}
	if s.gen.PhaseInstsRemaining() <= surPhaseMarginInsts {
		return nil
	}
	if s.cfg.MaxInsts-(s.core.Stats().Committed+s.virtInsts) <= surPhaseMarginInsts {
		return nil
	}
	return cal
}

// stepReplay advances the simulation one whole thermal window analytically
// from cal. The window length is the fast path's (clamped to every DTM /
// scaling / trace / metrics boundary and the cycle budget), further
// clamped to the phase and instruction margins and the calibration's
// replay budget. It mirrors the cycle-exact Step stage for stage: power
// (scaling factor and leakage re-applied against the frozen window-start
// temperatures, exactly like the fast path's per-cycle leakage), thermal
// window flush, DTM sampling at the boundary, duty integral, traces and
// telemetry. The loop is allocation-free.
//
// Like Step, the body is split along the gang seam: replayWindow computes
// the (class-uniform) window length, replayMember advances one member's
// private state across it, and the remainder is the class-level
// bookkeeping on the shared workload stream and the leader-owned
// calibration store. None of the class-level steps feed the member-level
// arithmetic within one window, so the split is order-equivalent to the
// pre-refactor single body.
func (s *Sim) stepReplay(cal *surCal) {
	w := s.replayWindow(cal)
	fw := float64(w)
	// Credit instructions analytically (fractional carry keeps the
	// long-run rate exact); the workload stream is advanced to match
	// below, so phase accounting progresses and a later cycle-exact span
	// resumes at the right program position.
	insts := cal.ipc*fw + s.surCarry
	n := uint64(insts)
	carry := insts - float64(n)

	chip := s.replayMember(cal, w, n, carry)

	s.gen.Skip(n)
	cal.replayed += w
	// Bank the open calibration span, then mark the splice: the pipeline
	// was frozen through this leg, so the next completed window cannot
	// carry aging information (splice) and the one after it audits a
	// real leg (legSince).
	s.surPause()
	cal.splice = true
	cal.legSince = true
	s.surAccOK = false

	s.replayTail(chip, w)
}

// replayWindow returns the replay window length for cal: the fast path's
// next window clamped to the phase margin, the instruction budget and the
// calibration's remaining replay allowance. Every input is uniform across
// a gang class (the shared stream position, the class-uniform cycle and
// sampling schedule, the leader-owned calibration), so one call serves the
// whole class.
func (s *Sim) replayWindow(cal *surCal) uint64 {
	w := s.nextWindowLen()
	if cal.ipc > 0 {
		if rem := s.gen.PhaseInstsRemaining() - surPhaseMarginInsts; rem > 0 {
			if maxW := uint64(float64(rem)/cal.ipc) + 1; maxW < w {
				w = maxW
			}
		}
		if rem := s.cfg.MaxInsts - (s.core.Stats().Committed + s.virtInsts) - surPhaseMarginInsts; rem > 0 {
			if maxW := uint64(float64(rem)/cal.ipc) + 1; maxW < w {
				w = maxW
			}
		}
	}
	if left := cal.budget - cal.replayed; left < w {
		w = left // replayable guarantees left >= 1
	}
	return w
}

// replayMember advances one member's private state across a w-cycle replay
// window calibrated by cal: scaled/leaked power against the frozen
// window-start temperatures, chip-power statistics, the thermal window
// flush, the analytic instruction credit (n whole instructions, carry
// fraction), the duty integral and the boundary DTM sample. Returns the
// member's chip power for the telemetry tail.
func (s *Sim) replayMember(cal *surCal, w, n uint64, carry float64) float64 {
	res := s.res
	pf := 1.0
	if s.hasScaling {
		pf = s.cfg.Scaling.PowerFactor()
	} else if s.hasHier {
		pf = s.cfg.Hierarchy.PowerFactor()
	}
	fw := float64(w)
	chip := cal.extra
	for i, p := range cal.power {
		p *= pf
		if s.hasLeak {
			p += s.cfg.Leakage.Power(s.leakPeak[i], s.temps[i])
		}
		s.powerAcc[i] = p * fw
		chip += p
	}
	s.chipPower.AddSpan(w, chip*fw, chip, chip)
	if chip > res.MaxChipPower {
		res.MaxChipPower = chip
	}
	stepDt := s.dt
	if s.freqFactor != 1 {
		stepDt = s.dt / s.freqFactor
	}
	res.WallSeconds += stepDt * fw
	res.ThermalSeconds += stepDt * fw

	s.cycle += w
	s.flushWindow(w)
	s.winFlushed = true
	s.winFlushLen = w

	s.virtInsts += n
	s.surCarry = carry
	res.SurrogateCycles += w

	// Window-interior cycles ran at the pre-boundary duty; the boundary
	// cycle observes the post-sample duty, mirroring the exact path's
	// sample-then-integrate order.
	s.dutySum += s.duty * (fw - 1)
	s.sampleDTM(s.cycle)
	s.dutySum += s.duty
	s.startWindow()
	return chip
}

// replayTail emits the replay window's trace and telemetry output. Gang
// execution rejects traced/instrumented configurations, so only the solo
// stepReplay calls it.
func (s *Sim) replayTail(chip float64, w uint64) {
	res := s.res
	cycle := s.cycle
	if s.hasTrace {
		_, hot := s.net.Hottest()
		res.TempTrace.Bump(w - 1)
		res.TempTrace.Add(cycle, hot)
		res.DutyTrace.Bump(w - 1)
		res.DutyTrace.Add(cycle, s.duty)
		for i := range res.BlockTrace {
			res.BlockTrace[i].Bump(w - 1)
			res.BlockTrace[i].Add(cycle, s.temps[i])
		}
	}
	if s.hasMetrics && cycle&metricsFlushMask == 0 {
		s.flushMetrics()
	}
	if s.rec != nil && cycle%s.recEvery == 0 {
		s.recordTrace(chip)
	}
}

// surAgree is the stationarity test: a new calibration window agrees
// with the stored stats when the IPC delta and the L1 power-vector delta
// are both within surStableRelTol (with small absolute floors so exact
// zeros — a duty-0 drain, an idle FP unit — compare equal).
func surAgree(ipc, refIPC float64, pow, refPow []float64, extra, refExtra float64) bool {
	if math.Abs(ipc-refIPC) > surStableRelTol*math.Max(ipc, refIPC)+0.005 {
		return false
	}
	var d, n float64
	for i := range pow {
		d += math.Abs(pow[i] - refPow[i])
		n += math.Abs(refPow[i])
	}
	d += math.Abs(extra - refExtra)
	n += math.Abs(refExtra)
	return d <= surStableRelTol*n+1e-9
}

// surUpdate advances the calibration state machine at the end of one
// cycle-exact Step. Calibration windows are ASSEMBLED: each store entry
// carries a partial-window accumulator, and a stall, operating-point
// change or replay splice merely banks the open span into its entry
// (surPause) and switches (surResume). A feedback policy that dwells on
// an operating point in short bursts — a PI controller shuttling between
// the duty rail and fresh intermediate values every sample — therefore
// still completes windows for the points it keeps returning to; the
// fragments also average more of the workload's quasi-period than one
// contiguous span would. Each surWarmupCycles of accumulation completes
// one window, which doubles as the stationarity check (before the first
// validation) and the periodic audit (after a budget-forced
// invalidation).
//
// Validation is a pair-audit. The first window completed after a replay
// leg reflects the pipeline state frozen through the leg, so comparing
// it against the stored stats is self-confirming; it only refreshes the
// stats. The calibration revalidates on the NEXT window — two exact
// windows with real aging between them — and only if the trend gate
// shows that aging to be flat. A window that agrees with the stored
// stats folds into them (EWMA); one that disagrees replaces them and
// resets the slow-start budget, so the ladder restarts. The budget
// doubles only on a validation that audits an actual replay leg. All
// updates are in place — recalibration never allocates.
func (s *Sim) surUpdate(stalled bool) {
	key := s.curKey()
	if stalled || !s.surAccOK || key != s.surAccKey {
		s.surPause()
		s.surResume(key, stalled)
		return
	}
	s.surWarm++
	cal := s.surAccCal
	if cal == nil {
		if s.surWarm < surAllocMinSpan {
			return // not yet proven worth a store slot
		}
		if cal = s.surAlloc(key); cal == nil {
			return // store full: run this key cycle-exact
		}
		s.surAccCal = cal
	}
	if cal.warm+s.surWarm < surWarmupCycles {
		return
	}
	// One calibration window complete: bank the open span and compute
	// the window's statistics.
	s.surFold(cal)
	fw := float64(surWarmupCycles)
	win := s.surWinPow
	for i, p := range cal.acc {
		win[i] = p / fw
	}
	extra := cal.accExtra / fw
	ipc := float64(cal.accInsts) / fw

	// Record the window in the drift ring, stamped with the mid-window
	// age (the age coordinate ignores frozen replay legs, so the slope
	// below is per cycle of real pipeline aging).
	spliced := cal.splice
	cal.splice = false
	cal.hist[cal.histPos] = ipc
	cal.histAge[cal.histPos] = cal.ageC - 0.5*fw
	cal.histPos = (cal.histPos + 1) % surHistLen
	if cal.histN < surHistLen {
		cal.histN++
	}
	// Creep rate per exact cycle from the half-means of the ring, and
	// the replay budget it affords. Two baselines: the full ring (finest
	// rate resolution, but ~surHistLen windows of memory) and its newest
	// half (coarser but current). The larger budget wins: a phase whose
	// warm-up creep has just flattened should not stay blocked for as
	// long as the old ramp lingers in the ring, while ongoing creep
	// keeps BOTH estimates high and stays capped.
	maxB := cal.budgetFor(cal.histN)
	if cal.histN >= surHistLen/2 {
		// The half-ring baseline only once its halves hold enough
		// windows to average: on a quarter-full ring it is pure noise,
		// and a single upward spike buys a replay leg the true creep
		// rate cannot afford.
		if b := cal.budgetFor(cal.histN / 2); b > maxB {
			maxB = b
		}
	}
	if maxB >= surMinReplay {
		cal.trendRun++
	} else {
		cal.trendRun = 0
	}

	if cal.seeded && surAgree(ipc, cal.ipc, win, cal.power, extra, cal.extra) {
		// Within window noise: fold the fresh window into the stats.
		// The 1/4 weight averages ~7 windows, so quasi-periodic window
		// oscillation is smoothed out of the replayed stats instead of
		// tracked into them; the drift-ring budget cap bounds the extra
		// lag this adds under genuine slow creep.
		for i := range cal.power {
			cal.power[i] += 0.25 * (win[i] - cal.power[i])
		}
		cal.extra += 0.25 * (extra - cal.extra)
		cal.ipc += 0.25 * (ipc - cal.ipc)
		if (cal.histN < surHistMin || cal.trendRun < surTrendRun) && !cal.banked {
			// Creep too fast for any worthwhile leg (or not enough
			// history to tell): the pipeline must keep aging cycle-exact
			// — unless an independently calibrated bank donor vouches
			// for the point and this window reproduces it.
			if spliced || !s.bankAdopt(key, cal, win, extra, ipc) {
				// Restart the slow-start ladder.
				cal.valid = false
				cal.budget = surMinReplay
			}
		} else if spliced {
			// Pair-audit: this window cannot certify a frozen leg by
			// itself; the next one (with real aging in between) decides.
			cal.valid = false
		} else {
			cal.valid = true
			if cal.legSince {
				// A replay leg passed its audit: extend trust.
				cal.legSince = false
				if cal.budget < surMaxReplay {
					cal.budget *= 2
				}
			}
			if cal.histN >= surHistMin && cal.budget > maxB {
				// ... but never beyond what the creep rate affords. (A
				// bank-adopted calibration keeps the donor's budget
				// until its own ring can estimate a rate; for a native
				// calibration the trend gate above guarantees the ring
				// is full enough, so the extra fill check changes
				// nothing.)
				cal.budget = maxB
			}
			s.bankPublish(key, cal)
		}
	} else {
		// Cold start, a step change, or a changed phase: reseed, restart
		// the slow-start ladder, and require fresh agreement and a fresh
		// flat trend before replaying — unless the fresh window
		// reproduces a bank donor's stats, which substitutes for both.
		copy(cal.power, win)
		cal.extra = extra
		cal.ipc = ipc
		cal.valid = false
		cal.budget = surMinReplay
		cal.banked = false
		if !spliced {
			s.bankAdopt(key, cal, win, extra, ipc)
		}
	}
	cal.seeded = true
	cal.replayed = 0
	// Start the next window from fresh statistics.
	for i := range cal.acc {
		cal.acc[i] = 0
	}
	cal.accExtra = 0
	cal.accInsts = 0
	cal.warm = 0
}

// surAlloc carves a calibration-store slot for key from the preallocated
// pools, or returns nil when the store is full.
func (s *Sim) surAlloc(key surKey) *surCal {
	if len(s.surCals) == surMaxCals {
		return nil
	}
	idx := len(s.surCals)
	cal := &s.surPool[idx]
	nblk := len(s.surPowAcc)
	cal.power = s.surPoolPow[idx*nblk : (idx+1)*nblk]
	cal.acc = s.surPoolAcc[idx*nblk : (idx+1)*nblk]
	s.surCals = append(s.surCals, surEntry{key: key, cal: cal})
	return cal
}

// surFold banks the open span's accumulators into cal's partial window
// and resets the span.
func (s *Sim) surFold(cal *surCal) {
	for i, p := range s.surPowAcc {
		cal.acc[i] += p
		s.surPowAcc[i] = 0
	}
	cal.accExtra += s.surExtraAcc
	s.surExtraAcc = 0
	snap := s.core.Snapshot()
	cal.accInsts += snap.Committed - s.surSnap0.Committed
	s.surSnap0 = snap
	cal.warm += s.surWarm
	cal.ageC += float64(s.surWarm)
	s.surWarm = 0
}

// surPause banks the in-progress span into its calibration entry. A span
// at an operating point with no store slot earns one if it lasted long
// enough (surAllocMinSpan); otherwise it is dropped.
func (s *Sim) surPause() {
	if !s.surAccOK || s.surWarm == 0 {
		return
	}
	cal := s.surAccCal
	if cal == nil {
		if s.surWarm >= surAllocMinSpan {
			cal = s.surAlloc(s.surAccKey)
		}
		if cal == nil {
			s.surWarm = 0
			for i := range s.surPowAcc {
				s.surPowAcc[i] = 0
			}
			s.surExtraAcc = 0
			return
		}
	}
	s.surFold(cal)
}

// surResume points the span accumulators at key.
func (s *Sim) surResume(key surKey, stalled bool) {
	s.surAccKey = key
	s.surAccOK = !stalled
	s.surAccCal = s.lookup(key)
	s.surWarm = 0
	for i := range s.surPowAcc {
		s.surPowAcc[i] = 0
	}
	s.surExtraAcc = 0
	s.surSnap0 = s.core.Snapshot()
}

// calBank is a gang-shared store of fully validated calibrations, keyed by
// operating point. A gang steps on one goroutine, so the bank needs no
// locking; solo runs leave it nil and never touch it. Members publish a
// calibration when it passes a full audit and adopt a banked one when
// their own freshly completed exact window reproduces the donor's stats —
// substituting one independent cross-member audit for the donor's already
// earned history ring and trend run, so a class reaching an operating
// point another class has mapped skips the slow-start budget ladder.
type calBank struct {
	m    map[surKey]*bankCal
	nblk int
}

// bankCal is one published calibration: the donor's window stats plus the
// replay budget the donor had earned when it published.
type bankCal struct {
	power  []float64
	extra  float64
	ipc    float64
	budget uint64
}

func newCalBank(nblk int) *calBank {
	return &calBank{m: make(map[surKey]*bankCal), nblk: nblk}
}

// bankPublish records cal under key when the bank has no donor for it yet
// or cal's earned budget exceeds the stored donor's. Updates reuse the
// stored entry, so steady-state publishing is allocation-free.
func (s *Sim) bankPublish(key surKey, cal *surCal) {
	b := s.surBank
	if b == nil {
		return
	}
	bk := b.m[key]
	if bk == nil {
		bk = &bankCal{power: make([]float64, b.nblk)}
		b.m[key] = bk
	} else if cal.budget <= bk.budget {
		return
	}
	copy(bk.power, cal.power)
	bk.extra = cal.extra
	bk.ipc = cal.ipc
	bk.budget = cal.budget
}

// bankAdopt audits the just-completed exact window (win, extra, ipc)
// against the banked donor for key. On agreement the member adopts the
// donor's stats and budget: the adoption audit plays the role of the
// drift-ring trend gate, and replay legs still pair-audit exactly like a
// native calibration's. Returns false (leaving cal untouched) when there
// is no bank, no donor, or the window disagrees.
func (s *Sim) bankAdopt(key surKey, cal *surCal, win []float64, extra, ipc float64) bool {
	b := s.surBank
	if b == nil {
		return false
	}
	bk := b.m[key]
	if bk == nil || !surAgree(ipc, bk.ipc, win, bk.power, extra, bk.extra) {
		return false
	}
	copy(cal.power, bk.power)
	cal.extra = bk.extra
	cal.ipc = bk.ipc
	cal.valid = true
	cal.banked = true
	cal.seeded = true
	cal.budget = bk.budget
	cal.replayed = 0
	return true
}

// cloneSurrogateFrom rebuilds this member's surrogate state as an exact
// copy of src's, reusing the member's own preallocated pools so the clone
// shares no storage with the source. Used when a gang fork promotes a
// member to class leader: the new leader continues from the old leader's
// calibration store, span accumulators, and replay carry.
func (s *Sim) cloneSurrogateFrom(src *Sim) {
	s.surCals = s.surCals[:0]
	for i := range src.surCals {
		e := &src.surCals[i]
		cal := s.surAlloc(e.key)
		pow, acc := cal.power, cal.acc
		*cal = *e.cal
		cal.power, cal.acc = pow, acc
		copy(cal.power, e.cal.power)
		copy(cal.acc, e.cal.acc)
	}
	copy(s.surPowAcc, src.surPowAcc)
	s.surAccKey = src.surAccKey
	s.surAccOK = src.surAccOK
	// Re-resolve the active-span entry inside this member's own store:
	// src.surAccCal may be stale (it is only meaningful under surAccOK,
	// and surResume re-derives it), and it must never alias src's pools.
	s.surAccCal = s.lookup(s.surAccKey)
	s.surWarm = src.surWarm
	s.surExtraAcc = src.surExtraAcc
	s.surSnap0 = src.surSnap0
	s.surCarry = src.surCarry
	s.surBank = src.surBank
}
