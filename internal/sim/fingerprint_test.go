package sim

import (
	"reflect"
	"testing"

	"repro/internal/control"
	"repro/internal/dtm"
	"repro/internal/telemetry"
)

// cacheKeyCovered lists every Config field the fingerprint hashes. The
// union of this list and cacheKeyExcluded must be exactly Config's field
// set: when Config grows a field, this test fails until the field is
// classified — hashed here (almost always right: anything that changes
// the simulated trajectory must change the key) or excluded there (only
// for side-channel sinks that cannot be replayed from a cached result).
var cacheKeyCovered = map[string]bool{
	"Workload":          true,
	"Pipeline":          true,
	"Gating":            true,
	"Leakage":           true,
	"Thresholds":        true,
	"Manager":           true,
	"Scaling":           true,
	"Hierarchy":         true,
	"MaxInsts":          true,
	"MaxCycles":         true,
	"Tangential":        true,
	"ProxyWindows":      true,
	"ChipProxyTriggerW": true,
	"TraceStride":       true,
	"Sensor":            true,
	"CoupleChipSink":    true,
	"ChipAmbient":       true,
	"MonitoredBlocks":   true,
	"InitTemps":         true,
	"ThermalStride":     true,
	// The surrogate changes the simulated trajectory (calibrated replay
	// carries bounded modeling error), so exact and surrogate runs of
	// the same configuration must never share a cache entry.
	"PipelineSurrogate": true,
}

func TestCacheKeyCoversConfig(t *testing.T) {
	typ := reflect.TypeOf(Config{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		cov, exc := cacheKeyCovered[name], cacheKeyExcluded[name]
		if cov && exc {
			t.Errorf("Config.%s is both covered and excluded", name)
		}
		if !cov && !exc {
			t.Errorf("Config.%s is not classified for the run-cache fingerprint: "+
				"add it to cacheKeyCovered (it affects the trajectory) or "+
				"cacheKeyExcluded (it is a non-replayable telemetry sink)", name)
		}
	}
	for name := range cacheKeyCovered {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("cacheKeyCovered lists %s, which Config no longer has", name)
		}
	}
	for name := range cacheKeyExcluded {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("cacheKeyExcluded lists %s, which Config no longer has", name)
		}
	}
}

// eligibleConfig is a representative cacheable configuration exercising
// pointer-valued policy state (manager, PI controller) and slices.
func eligibleConfig() Config {
	return Config{
		Workload:     hotProfile(),
		Manager:      piManager(),
		MaxInsts:     100_000,
		ProxyWindows: []int{10_000},
	}
}

func TestCacheKeyDeterministic(t *testing.T) {
	k1, ok1 := CacheKey(eligibleConfig())
	k2, ok2 := CacheKey(eligibleConfig())
	if !ok1 || !ok2 {
		t.Fatal("eligible config reported as uncacheable")
	}
	// Two independently constructed identical configs must collide: the
	// hash must canonicalize through pointers, never mix in identities.
	if k1 != k2 {
		t.Fatalf("identical configs hash differently:\n%s\n%s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", k1)
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	base, _ := CacheKey(eligibleConfig())
	mutations := map[string]func(*Config){
		"MaxInsts":      func(c *Config) { c.MaxInsts++ },
		"Tangential":    func(c *Config) { c.Tangential = true },
		"ThermalStride": func(c *Config) { c.ThermalStride = 1 },
		"seed":          func(c *Config) { c.Workload.Seed++ },
		"setpoint": func(c *Config) {
			g := control.MustTune(paperPlant(), control.Spec{Kind: control.KindPI})
			ctl := control.NewPID(g, 110.0, 0.2, float64(dtm.DefaultSampleInterval)/1.5e9)
			c.Manager = dtm.NewManager(dtm.NewCT(control.KindPI, ctl))
		},
		"policy-kind": func(c *Config) {
			c.Manager = dtm.NewManager(dtm.NewToggle1(111.2, 2))
		},
		"nil-manager":  func(c *Config) { c.Manager = nil },
		"proxy-window": func(c *Config) { c.ProxyWindows[0]++ },
	}
	for name, mutate := range mutations {
		cfg := eligibleConfig()
		mutate(&cfg)
		key, ok := CacheKey(cfg)
		if !ok {
			t.Errorf("%s: mutated config reported uncacheable", name)
			continue
		}
		if key == base {
			t.Errorf("%s: mutation does not change the cache key", name)
		}
	}
}

func TestCacheKeyIgnoresTraceLabels(t *testing.T) {
	base, _ := CacheKey(eligibleConfig())
	cfg := eligibleConfig()
	cfg.TraceID = "gcc/PI"
	cfg.TraceInterval = 500
	key, ok := CacheKey(cfg)
	if !ok {
		t.Fatal("trace labels without a recorder must stay cacheable")
	}
	if key != base {
		t.Error("trace labeling knobs leaked into the cache key")
	}
}

func TestCacheKeyRejectsTelemetry(t *testing.T) {
	cfg := eligibleConfig()
	cfg.Metrics = telemetry.NewSimMetrics(telemetry.NewRegistry())
	if _, ok := CacheKey(cfg); ok {
		t.Error("config with live Metrics sink must be uncacheable")
	}
	cfg = eligibleConfig()
	cfg.Trace = telemetry.NewRecorder(discard{}, 13, 256)
	if _, ok := CacheKey(cfg); ok {
		t.Error("config with live Trace sink must be uncacheable")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
