//go:build race

package sim_test

// Under the race detector the cycle loop runs ~15x slower, so the full
// 18-benchmark x 13-policy surrogate A/B sweep would blow the package
// timeout on a single-CPU host. The race run's job is to catch data
// races on the surrogate code paths, not to re-verify the accuracy
// bounds, so it keeps one exemplar of each engagement regime; the full
// matrices run in CI's dedicated non-race surrogate gate.
const raceDetector = true

// surRaceWorkloads: steady high replay (gzip), position-driven ramp
// refusal (wupwise), stationarity-audit refusal (perlbmk), bursty
// emergencies (art).
var surRaceWorkloads = map[string]bool{
	"gzip": true, "wupwise": true, "perlbmk": true, "art": true,
}

// surRacePolicies: unmanaged, PI duty cycling (the paper's headline),
// bang-bang toggling (frequent operating-point changes), and frequency
// scaling (replay must break on scaling events).
var surRacePolicies = map[string]bool{
	"none": true, "PI": true, "toggle2": true, "fscale": true,
}
