package sim

// Temporary development aid: snapshots exact Result values for a matrix of
// configurations so that semantics-preserving hot-path rewrites can be
// verified bit-for-bit. Run with GOLDEN_OUT=/tmp/golden.json to write a
// snapshot; GOLDEN_IN=/tmp/golden.json to compare against one.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/dtm"
	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/sensor"
	"repro/internal/workload"
)

func fpProfile() workload.Profile {
	return workload.Profile{
		Name: "fpmix",
		Seed: 1234,
		Phases: []workload.Phase{
			{
				Insts:            200_000,
				Mix:              workload.Mix{IntALU: 20, FPALU: 25, FPMult: 10, FPDiv: 1, Load: 24, Store: 8, Branch: 8, Call: 2},
				DepMean:          6,
				LoopIters:        40,
				BodySize:         48,
				NumLoops:         12,
				BranchRandomFrac: 0.15,
				BranchBias:       0.45,
				WorkingSet:       2 << 20,
				StreamFrac:       0.4,
			},
			{
				Insts:            150_000,
				Mix:              workload.Mix{IntALU: 40, IntMult: 4, IntDiv: 1, Load: 20, Store: 12, Branch: 18, Call: 3},
				DepMean:          3,
				LoopIters:        25,
				BodySize:         32,
				NumLoops:         30,
				BranchRandomFrac: 0.3,
				BranchBias:       0.5,
				WorkingSet:       512 << 10,
				StreamFrac:       0.2,
			},
		},
	}
}

func goldenMatrix() map[string]Config {
	const n = 300_000
	mkInterrupt := func() *dtm.Manager {
		m := dtm.NewManager(dtm.NewToggle1(110.3, 5))
		m.Mechanism = dtm.Interrupt
		return m
	}
	return map[string]Config{
		"hot/none":      {Workload: hotProfile(), MaxInsts: n},
		"hot/pi":        {Workload: hotProfile(), MaxInsts: n, Manager: newPIManager(111.1)},
		"hot/toggle1":   {Workload: hotProfile(), MaxInsts: n, Manager: dtm.NewManager(dtm.NewToggle1(110.3, 5))},
		"hot/manual":    {Workload: hotProfile(), MaxInsts: n, Manager: dtm.NewManager(dtm.NewManual(110.3, 111.3))},
		"hot/throttle":  {Workload: hotProfile(), MaxInsts: n, Manager: dtm.NewManager(dtm.NewThrottle(110.3, 1, 5))},
		"hot/specctl":   {Workload: hotProfile(), MaxInsts: n, Manager: dtm.NewManager(dtm.NewSpecControl(110.3, 1, 5))},
		"hot/interrupt": {Workload: hotProfile(), MaxInsts: n, Manager: mkInterrupt()},
		"hot/leak":      {Workload: hotProfile(), MaxInsts: n, Leakage: power.DefaultLeakage()},
		"hot/fscale":    {Workload: hotProfile(), MaxInsts: n, Scaling: dtm.NewFreqScaling(110.3, 0.5, 5)},
		"hot/hier": {Workload: hotProfile(), MaxInsts: n,
			Hierarchy: dtm.NewHierarchy(&dtm.Toggle{Trigger: 110.3, EngagedDuty: 0.97, PolicyDelay: 5},
				dtm.NewVoltageScaling(111.2, 0.5, 10), 111.2)},
		"hot/tang":    {Workload: hotProfile(), MaxInsts: n, Tangential: true},
		"hot/proxies": {Workload: hotProfile(), MaxInsts: n, ProxyWindows: []int{10_000, 100_000}},
		"hot/sensor": {Workload: hotProfile(), MaxInsts: n, Manager: newPIManager(111.1),
			Sensor: sensor.Sensor{Offset: -0.4, Quantum: 0.25}},
		"hot/monitored": {Workload: hotProfile(), MaxInsts: n, Manager: newPIManager(111.1),
			MonitoredBlocks: []floorplan.BlockID{floorplan.IntExec, floorplan.BPred}},
		"hot/sink":   {Workload: hotProfile(), MaxInsts: n, CoupleChipSink: true},
		"hot/trace":  {Workload: hotProfile(), MaxInsts: n, TraceStride: 1000},
		"cold/none":  {Workload: coldProfile(), MaxInsts: n},
		"cold/pi":    {Workload: coldProfile(), MaxInsts: n, Manager: newPIManager(111.1)},
		"fp/none":    {Workload: fpProfile(), MaxInsts: n},
		"fp/pi":      {Workload: fpProfile(), MaxInsts: n, Manager: newPIManager(111.1)},
		"fp/toggle2": {Workload: fpProfile(), MaxInsts: n, Manager: dtm.NewManager(dtm.NewToggle2(110.3, 5))},
		"fp/leak":    {Workload: fpProfile(), MaxInsts: n, Leakage: power.DefaultLeakage()},
	}
}

type goldenEntry struct {
	Result *Result
	Trace  []float64 // flattened TempTrace Ys when present
}

func TestGoldenSnapshot(t *testing.T) {
	out := os.Getenv("GOLDEN_OUT")
	in := os.Getenv("GOLDEN_IN")
	if out == "" && in == "" {
		t.Skip("set GOLDEN_OUT or GOLDEN_IN")
	}
	got := map[string]goldenEntry{}
	for name, cfg := range goldenMatrix() {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		e := goldenEntry{Result: res}
		if res.TempTrace != nil {
			e.Trace = res.TempTrace.Ys
		}
		got[name] = e
	}
	if out != "" {
		buf, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), out)
	}
	if in != "" {
		buf, err := os.ReadFile(in)
		if err != nil {
			t.Fatal(err)
		}
		gotBuf, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(gotBuf) {
			t.Errorf("results diverge from golden snapshot %s", in)
			os.WriteFile(in+".new", gotBuf, 0o644)
		}
	}
}
