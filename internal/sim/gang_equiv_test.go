package sim_test

// Gang-vs-solo equivalence over the full benchmark x policy matrix. Gang
// execution promises BYTE-IDENTICAL results to solo runs of the same
// configurations — the shared front half reorders no arithmetic, forks
// clone state bit-exactly — so the comparison here is exact (marshaled
// Result equality), not toleranced. The opt-in shared calibration bank
// trades that for throughput: it changes where the surrogate engages, so
// it is held to the surrogate A/B accuracy bounds instead.

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// gangEquivInsts sizes the matrix runs: long enough that the surrogate
// engages and PI-family policies fork the gang (both paths exercised),
// short enough that 18 workloads x (13 solo + 1 gang) runs fit the
// package budget.
const gangEquivInsts = 400_000

// gangPolicies returns the full policy suite (the matrices here never
// run under the race detector, see skipGangMatrixUnderRace).
func gangPolicies() []string {
	return core.Policies()
}

// skipGangMatrixUnderRace: the gang executor is single-goroutine, so
// byte-identity and calibration accuracy are not race properties — and
// the matrices are far too slow under the ~15x race detector for the
// package budget. Race coverage of the gang code paths comes from the
// in-package TestGang* suite (gang_test.go); the full matrices run in
// CI's dedicated non-race gang gate (bench-multicore job).
func skipGangMatrixUnderRace(t *testing.T) {
	t.Helper()
	if raceDetector {
		t.Skip("gang matrices run in the non-race gang gate; see bench-multicore CI job")
	}
}

func gangMatrixConfigs(t *testing.T, benchmark string, policies []string) []sim.Config {
	t.Helper()
	cfgs := make([]sim.Config, 0, len(policies))
	for _, p := range policies {
		cfg, err := core.NewRun(benchmark, p, gangEquivInsts)
		if err != nil {
			t.Fatalf("NewRun(%s,%s): %v", benchmark, p, err)
		}
		cfg.PipelineSurrogate = true
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// TestGangGoldenEquivalence runs the policy suite for every benchmark
// both solo and as one gang and requires byte-identical results.
func TestGangGoldenEquivalence(t *testing.T) {
	skipGangMatrixUnderRace(t)
	policies := gangPolicies()
	for _, b := range core.Benchmarks() {
		b := b
		t.Run(b, func(t *testing.T) {
			t.Parallel()
			solo := make([][]byte, len(policies))
			for i, cfg := range gangMatrixConfigs(t, b, policies) {
				res, err := sim.Run(cfg)
				if err != nil {
					t.Fatalf("solo %s: %v", policies[i], err)
				}
				enc, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				solo[i] = enc
			}

			g, err := sim.NewGang(gangMatrixConfigs(t, b, policies), sim.GangOptions{})
			if err != nil {
				t.Fatal(err)
			}
			results, err := g.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for i, res := range results {
				enc, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if string(enc) != string(solo[i]) {
					t.Errorf("%s/%s: gang result differs from solo:\nsolo: %s\ngang: %s",
						b, policies[i], solo[i], enc)
				}
			}
			st := g.Stats()
			if st.MemberCycles <= st.ClassCycles {
				t.Errorf("no sharing achieved: member=%d class=%d", st.MemberCycles, st.ClassCycles)
			}
			t.Logf("members=%d forks=%d merges=%d occupancy=%.2f",
				st.Members, st.Forks, st.Merges, st.Occupancy())
		})
	}
}

// TestGangSharedCalibration holds the shared-calibration mode to the
// surrogate A/B accuracy contract: sharing calibrations across the gang
// may move replay engagement around, but every engaged window is still
// audited per member, so results must stay within the same bounds the
// solo surrogate is held to against cycle-exact execution.
func TestGangSharedCalibration(t *testing.T) {
	skipGangMatrixUnderRace(t)
	policies := gangPolicies()
	for _, b := range []string{"gzip", "art"} {
		b := b
		t.Run(b, func(t *testing.T) {
			t.Parallel()
			exact := make([]*sim.Result, len(policies))
			for i, cfg := range gangMatrixConfigs(t, b, policies) {
				cfg.PipelineSurrogate = false
				res, err := sim.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				exact[i] = res
			}
			g, err := sim.NewGang(gangMatrixConfigs(t, b, policies), sim.GangOptions{ShareCalibration: true})
			if err != nil {
				t.Fatal(err)
			}
			shared, err := g.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for i := range shared {
				t.Run(policies[i], func(t *testing.T) {
					compareSurPair(t, exact[i], shared[i])
				})
			}
		})
	}
}
