package runindex

import (
	"fmt"
	"net/url"
	"testing"

	"repro/internal/telemetry"
)

// testRecord fabricates a plausible cataloged run. Triggers spread over
// [109, 113) in 0.04 C steps; policies and benches cycle.
func testRecord(i int) Record {
	benches := [...]string{"hotspot", "hotneighbor", "uniform", "migratory"}
	policies := [...]string{"PI", "PID", "toggle1", "M"}
	return Record{
		Key:      fmt.Sprintf("sha256:%064x", i),
		Bench:    benches[i%len(benches)],
		Policy:   policies[(i/4)%len(policies)],
		Trigger:  109 + float64(i%100)*0.04,
		Kp:       float64(1 + i%5),
		Ki:       0.1 * float64(1+i%7),
		Interval: float64(int(250) << (i % 5)),
		Stride:   float64((i % 3) * 500),
		Cores:    1,
		Insts:    float64(100000 * (1 + i%4)),
		IPC:      1.5 - float64(i%10)*0.05,
		AvgPower: 40 + float64(i%20),
		AvgDuty:  1 - float64(i%10)*0.03,
		Cycles:   uint64(1000000 + i),
	}
}

func TestCatalogIngestAndGet(t *testing.T) {
	c, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		if !c.Ingest(testRecord(i)) {
			t.Fatalf("Ingest(%d) = false", i)
		}
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
	// Duplicate keys are cheap no-ops.
	if c.Ingest(testRecord(17)) {
		t.Fatal("re-ingest of an existing key returned true")
	}
	if c.Len() != n {
		t.Fatalf("Len after dup = %d, want %d", c.Len(), n)
	}
	for _, i := range []int{0, 1, 999, n - 1} {
		want := testRecord(i)
		got, ok := c.Get(want.Key)
		if !ok || got != want {
			t.Fatalf("Get(%d): ok=%v got=%+v want=%+v", i, ok, got, want)
		}
	}
	if _, ok := c.Get("sha256:absent"); ok {
		t.Fatal("Get on an absent key returned ok")
	}
	if c.Contains("sha256:absent") || !c.Contains(testRecord(3).Key) {
		t.Fatal("Contains disagrees with Get")
	}
	// Empty keys are rejected, as is a nil catalog.
	if c.Ingest(Record{}) {
		t.Fatal("ingest of an empty key returned true")
	}
	var nilCat *Catalog
	if nilCat.Ingest(testRecord(0)) || nilCat.Contains("x") || nilCat.Len() != 0 {
		t.Fatal("nil catalog is not inert")
	}
}

// fullScanCount is the reference answer: run the same query with no
// index help.
func fullScanCount(c *Catalog, q *Query) int {
	n := 0
	c.FullScan(q, func(*Record) bool { n++; return true })
	return n
}

func TestCatalogRangeQueries(t *testing.T) {
	c, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	for i := 0; i < n; i++ {
		c.Ingest(testRecord(i))
	}
	cases := []string{
		"trigger=110:111",
		"trigger=110.2",
		"trigger=109:113&policy=PI",
		"bench=hotspot",
		"policy=toggle1&bench=uniform",
		"interval=250:1000",
		"ki=0.1:0.3&kp=2:4",
		"insts=200000:400001&trigger=109:110",
		"trigger=200:300", // empty band
		"bench=absent",    // unknown interned string
		"",                // unconstrained: full catalog (limit applies)
	}
	for _, raw := range cases {
		vals, err := url.ParseQuery(raw)
		if err != nil {
			t.Fatal(err)
		}
		q, err := ParseQuery(vals)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", raw, err)
		}
		q.Limit = n + 1 // no truncation for the comparison
		want := fullScanCount(c, &q)
		got := 0
		c.Execute(&q, func(rec *Record) bool {
			if q.Bench != "" && rec.Bench != q.Bench {
				t.Fatalf("query %q leaked bench %q", raw, rec.Bench)
			}
			got++
			return true
		})
		if got != want {
			t.Fatalf("query %q: indexed %d rows, full scan %d", raw, got, want)
		}
		if raw == "trigger=110:111" && got == 0 {
			t.Fatal("trigger band query matched nothing; test data broken")
		}
	}
	// Encode survives a round trip.
	q, _ := ParseQuery(url.Values{"trigger": {"110:111"}, "policy": {"PI"}, "limit": {"5"}})
	q2, err := ParseQuery(url.Values(mustParseQuery(t, q.Encode())))
	if err != nil {
		t.Fatal(err)
	}
	if q2 != q {
		t.Fatalf("Encode round trip: %+v != %+v", q2, q)
	}
	// Limit is honored.
	lim, _ := ParseQuery(url.Values{"limit": {"7"}})
	if got := c.Run(&lim); got.Count != 7 || len(got.Rows) != 7 {
		t.Fatalf("limit=7 returned %d rows", got.Count)
	}
}

func mustParseQuery(t *testing.T, s string) url.Values {
	t.Helper()
	v, err := url.ParseQuery(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestParseQueryErrors(t *testing.T) {
	for _, raw := range []string{"trigger=x", "trigger=1:x", "trigger=5:1", "limit=-2", "limit=x"} {
		vals := mustParseQuery(t, raw)
		if _, err := ParseQuery(vals); err == nil {
			t.Errorf("ParseQuery(%q) accepted bad input", raw)
		}
	}
}

func TestParseDim(t *testing.T) {
	for d := Dim(0); d < NumDims; d++ {
		got, err := ParseDim(d.String())
		if err != nil || got != d {
			t.Fatalf("ParseDim(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDim("bogus"); err == nil {
		t.Fatal("ParseDim accepted an unknown name")
	}
}

func TestCatalogPersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		c.Ingest(testRecord(i))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", reopened.Len(), n)
	}
	if reopened.Quarantined() != 0 {
		t.Fatalf("clean log quarantined %d frames", reopened.Quarantined())
	}
	for _, i := range []int{0, n / 2, n - 1} {
		want := testRecord(i)
		got, ok := reopened.Get(want.Key)
		if !ok || got != want {
			t.Fatalf("reopened Get(%d): ok=%v got=%+v", i, ok, got)
		}
	}
	// Index answers survive the round trip.
	q, _ := ParseQuery(mustParseQuery(t, "trigger=110:111&policy=PI&limit=100000"))
	if got, want := reopened.Run(&q).Count, fullScanCount(reopened, &q); got != want || got == 0 {
		t.Fatalf("reopened range query: %d rows, full scan %d", got, want)
	}
	// Appends continue past the replayed tail.
	extra := testRecord(n)
	if !reopened.Ingest(extra) {
		t.Fatal("ingest after reopen failed")
	}
	reopened.Close()
	third, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	if third.Len() != n+1 {
		t.Fatalf("third open Len = %d, want %d", third.Len(), n+1)
	}
	if _, ok := third.Get(extra.Key); !ok {
		t.Fatal("record appended after reopen was lost")
	}
}

func TestCatalogMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewIndexMetrics(reg)
	c, err := Open("", Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Ingest(testRecord(i))
	}
	c.Ingest(testRecord(0)) // duplicate
	q, _ := ParseQuery(mustParseQuery(t, "trigger=110:111"))
	c.Run(&q)
	if got := m.Ingested.Value(); got != 100 {
		t.Errorf("Ingested = %v, want 100", got)
	}
	if got := m.Duplicates.Value(); got != 1 {
		t.Errorf("Duplicates = %v, want 1", got)
	}
	if got := m.Queries.Value(); got != 1 {
		t.Errorf("Queries = %v, want 1", got)
	}
	if got := m.RangeScans.Value(); got != 1 {
		t.Errorf("RangeScans = %v, want 1", got)
	}
	if got := m.Records.Value(); got != 100 {
		t.Errorf("Records gauge = %v, want 100", got)
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		want := testRecord(i)
		buf := appendRecord(nil, &want)
		got, ok := decodeRecord(buf[frameHeader:])
		if !ok || got != want {
			t.Fatalf("codec round trip %d: ok=%v got=%+v", i, ok, got)
		}
	}
	// Truncated, empty-key and wrong-version payloads are rejected.
	r := testRecord(0)
	buf := appendRecord(nil, &r)
	payload := buf[frameHeader:]
	if _, ok := decodeRecord(payload[:len(payload)-1]); ok {
		t.Fatal("decode accepted a truncated payload")
	}
	bad := append([]byte(nil), payload...)
	bad[0] = 99
	if _, ok := decodeRecord(bad); ok {
		t.Fatal("decode accepted a wrong version")
	}
	empty := Record{Key: ""}
	buf2 := appendRecord(nil, &empty)
	if _, ok := decodeRecord(buf2[frameHeader:]); ok {
		t.Fatal("decode accepted an empty key")
	}
}
