package runindex

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

type refEntry struct {
	key uint64
	id  int32
}

// collectRange gathers the reference model's answer for [lo, hi).
func refRange(ref []refEntry, lo, hi uint64) []refEntry {
	var out []refEntry
	for _, e := range ref {
		if e.key >= lo && e.key < hi {
			out = append(out, e)
		}
	}
	return out
}

// TestBtreeRandomizedVsReference drives the tree with random inserts
// (heavy on duplicate keys, the catalog's normal case) and checks every
// range scan against a sorted-slice reference model.
func TestBtreeRandomizedVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tree := newBtree()
	var ref []refEntry
	const n = 20000
	for i := 0; i < n; i++ {
		// 64 distinct keys over 20000 inserts: long duplicate runs.
		key := uint64(rng.Intn(64)) * 1000
		id := int32(i)
		tree.insert(key, id)
		ref = append(ref, refEntry{key, id})
	}
	if tree.size != n {
		t.Fatalf("tree.size = %d, want %d", tree.size, n)
	}
	sort.Slice(ref, func(i, j int) bool {
		return less(ref[i].key, ref[i].id, ref[j].key, ref[j].id)
	})

	check := func(lo, hi uint64) {
		t.Helper()
		want := refRange(ref, lo, hi)
		var got []refEntry
		visited := tree.ascend(lo, hi, func(k uint64, id int32) bool {
			got = append(got, refEntry{k, id})
			return true
		})
		if visited != len(want) || len(got) != len(want) {
			t.Fatalf("ascend(%d,%d): %d entries, want %d", lo, hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ascend(%d,%d)[%d] = %+v, want %+v", lo, hi, i, got[i], want[i])
			}
		}
	}

	check(0, math.MaxUint64)     // everything
	check(0, 1)                  // empty below
	check(63*1000+1, 64*1000)    // empty above the top key
	check(1000, 1001)            // one duplicate run
	check(10*1000, 20*1000)      // middle band
	check(5*1000+1, 5*1000+2)    // between keys: empty
	for i := 0; i < 200; i++ {   // random bands
		lo := uint64(rng.Intn(70)) * 1000
		hi := lo + uint64(rng.Intn(20))*1000
		check(lo, hi)
	}
}

// TestBtreeUniqueKeysOrdered inserts distinct keys in random order and
// verifies a full ascend yields them sorted.
func TestBtreeUniqueKeysOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tree := newBtree()
	keys := rng.Perm(5000)
	for i, k := range keys {
		tree.insert(uint64(k), int32(i))
	}
	prev := uint64(0)
	first := true
	count := tree.ascend(0, math.MaxUint64, func(k uint64, _ int32) bool {
		if !first && k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		return true
	})
	if count != len(keys) {
		t.Fatalf("visited %d, want %d", count, len(keys))
	}
}

// TestBtreeEarlyStop verifies the visitor can stop a scan.
func TestBtreeEarlyStop(t *testing.T) {
	tree := newBtree()
	for i := 0; i < 1000; i++ {
		tree.insert(uint64(i), int32(i))
	}
	seen := 0
	tree.ascend(0, math.MaxUint64, func(uint64, int32) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("early stop visited %d, want 10", seen)
	}
}

// TestKeyBitsOrderPreserving checks the float→uint64 transform preserves
// ordering across signs and magnitudes.
func TestKeyBitsOrderPreserving(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -111.3, -1, -1e-300, math.Copysign(0, -1), 0, 1e-300, 1, 81.5, 111.3, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		a, b := vals[i-1], vals[i]
		ka, kb := keyBits(a), keyBits(b)
		if a < b && ka >= kb {
			t.Errorf("keyBits(%g)=%d !< keyBits(%g)=%d", a, ka, b, kb)
		}
		if a == b && ka != kb {
			t.Errorf("keyBits(%g) != keyBits(%g) for equal values", a, b)
		}
	}
}

// TestBtreeReserveNoGrowth checks reserve pre-sizes the arena so the
// promised inserts never reallocate it.
func TestBtreeReserveNoGrowth(t *testing.T) {
	tree := newBtree()
	const n = 10000
	tree.reserve(n)
	capBefore := cap(tree.nodes)
	for i := 0; i < n; i++ {
		tree.insert(uint64(i%97), int32(i))
	}
	if cap(tree.nodes) != capBefore {
		t.Fatalf("arena grew from %d to %d despite reserve(%d)", capBefore, cap(tree.nodes), n)
	}
}
