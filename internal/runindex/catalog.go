// Package runindex is the queryable run catalog: a dimension-indexed
// layer over completed simulation runs. The run cache (runner.Cache over
// a flat or pack store) answers exact-key lookups only; the catalog
// ingests every stored result into a compact append-only record log plus
// in-memory B+-tree secondary indexes keyed by config dimensions (policy,
// trigger temperature, controller gains, workload, thermal stride, cores,
// instruction budget), so sweeps and the cluster coordinator can answer
// point, range and composite grid queries — "all runs with trigger in
// [81,83) under PI" — without recomputing or touching workers.
//
// The index is derived state. On cold start it replays catalog.log
// (torn tails truncated at the last valid frame, CRC-failing frames
// quarantined as misses, exactly like the packstore needle index), and a
// catalog that lost its log entirely is rebuilt from a packstore scan of
// the run cache itself. Ingest and lookup hot paths are allocation-free
// in the steady state and gated by TestZeroAllocIndex*.
package runindex

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/packstore"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Options tunes a Catalog.
type Options struct {
	// Capacity pre-sizes the record arena, key table and index trees so
	// that many ingests proceed without growing anything — the
	// zero-allocation steady state. 0 means a small default; the
	// structures grow past it on demand.
	Capacity int
	// Metrics, when non-nil, receives the runindex_* counters and the
	// index-size gauge.
	Metrics *telemetry.IndexMetrics
}

// Catalog is the run catalog. All methods are safe for concurrent use:
// queries share a read lock, ingest serializes on the write lock.
type Catalog struct {
	mu   sync.RWMutex
	opts Options

	recs []Record
	// keyTable is an open-addressing (linear probe) map from record key
	// to record id; keys live in recs, the table holds ids only, so a
	// steady-state insert allocates nothing. Slots hold id+1 (0 = empty).
	keyTable []int32
	keyMask  uint64

	trees      [NumDims]*btree
	benchTree  *btree // interned workload name -> record ids
	policyTree *btree // interned policy name -> record ids
	benchIDs   map[string]uint64
	policyIDs  map[string]uint64

	dir         string   // "" = memory-only
	logf        *os.File // nil when memory-only
	logSize     int64    // append offset (end of the last valid frame)
	encBuf      []byte
	quarantined int
	rebuilt     int // records recovered by the last RebuildFromStore
}

// Open opens (or creates) a catalog. dir == "" builds a memory-only
// catalog (tests, benchmarks); otherwise dir holds catalog.log, replayed
// here with torn-tail truncation and per-frame CRC quarantine.
func Open(dir string, opts Options) (*Catalog, error) {
	capn := opts.Capacity
	if capn < 1024 {
		capn = 1024
	}
	c := &Catalog{
		opts:      opts,
		dir:       dir,
		recs:      make([]Record, 0, capn),
		benchIDs:  make(map[string]uint64, 64),
		policyIDs: make(map[string]uint64, 64),
		encBuf:    make([]byte, 0, 4096),
	}
	tableSize := nextPow2(uint64(capn) * 2)
	c.keyTable = make([]int32, tableSize)
	c.keyMask = tableSize - 1
	for d := range c.trees {
		c.trees[d] = newBtree()
		c.trees[d].reserve(capn)
	}
	c.benchTree = newBtree()
	c.benchTree.reserve(capn)
	c.policyTree = newBtree()
	c.policyTree.reserve(capn)

	if dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runindex: %w", err)
	}
	path := filepath.Join(dir, "catalog.log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runindex: %w", err)
	}
	c.logf = f
	if err := c.replayLog(); err != nil {
		f.Close()
		return nil, err
	}
	c.publishGauge()
	return c, nil
}

func nextPow2(n uint64) uint64 {
	p := uint64(1024)
	for p < n {
		p <<= 1
	}
	return p
}

// replayLog rebuilds the in-memory index from catalog.log. A structural
// break (bad magic, impossible length, frame past EOF) is a torn append:
// the log is truncated there and everything earlier is served. A frame
// that is structurally whole but fails its CRC or does not decode is
// quarantined — skipped and counted — and the scan continues, so one
// corrupt record degrades to one miss, not a lost catalog.
func (c *Catalog) replayLog() error {
	st, err := c.logf.Stat()
	if err != nil {
		return fmt.Errorf("runindex: %w", err)
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	buf := make([]byte, size)
	if _, err := c.logf.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("runindex: reading log: %w", err)
	}
	off := int64(0)
	for off+frameHeader <= size {
		b := buf[off:]
		magic := binary.LittleEndian.Uint32(b[0:4])
		payloadLen := int64(binary.LittleEndian.Uint32(b[4:8]))
		if magic != frameMagic || payloadLen == 0 || payloadLen > maxPayloadLen {
			break // torn or foreign bytes: truncate here
		}
		if off+frameHeader+payloadLen > size {
			break // frame extends past EOF: torn append
		}
		crc := binary.LittleEndian.Uint32(b[8:12])
		payload := b[frameHeader : frameHeader+payloadLen]
		if crc32.ChecksumIEEE(payload) != crc {
			c.quarantined++
			off += frameHeader + payloadLen
			continue
		}
		rec, ok := decodeRecord(payload)
		if !ok {
			c.quarantined++
			off += frameHeader + payloadLen
			continue
		}
		c.addLocked(&rec)
		off += frameHeader + payloadLen
	}
	if off < size {
		if err := c.logf.Truncate(off); err != nil {
			return fmt.Errorf("runindex: truncating torn log tail: %w", err)
		}
	}
	c.logSize = off
	if m := c.opts.Metrics; m != nil && c.quarantined > 0 {
		m.Quarantined.Add(int64(c.quarantined))
	}
	return nil
}

// Close releases the log handle. Nil-safe.
func (c *Catalog) Close() error {
	if c == nil || c.logf == nil {
		return nil
	}
	return c.logf.Close()
}

// Len returns the number of cataloged records.
func (c *Catalog) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.recs)
}

// Quarantined returns the count of log frames dropped as corrupt.
func (c *Catalog) Quarantined() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.quarantined
}

// hashKey is FNV-1a over the key string, allocation-free.
func hashKey(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// findSlot probes the key table for key, returning the slot index and
// the record id held there (-1 if the slot is empty). Caller holds a lock.
func (c *Catalog) findSlot(key string) (uint64, int32) {
	slot := hashKey(key) & c.keyMask
	for {
		v := c.keyTable[slot]
		if v == 0 {
			return slot, -1
		}
		id := v - 1
		if c.recs[id].Key == key {
			return slot, id
		}
		slot = (slot + 1) & c.keyMask
	}
}

// growTable rehashes the key table at double size. Caller holds the
// write lock.
func (c *Catalog) growTable() {
	size := (c.keyMask + 1) * 2
	c.keyTable = make([]int32, size)
	c.keyMask = size - 1
	for id := range c.recs {
		slot := hashKey(c.recs[id].Key) & c.keyMask
		for c.keyTable[slot] != 0 {
			slot = (slot + 1) & c.keyMask
		}
		c.keyTable[slot] = int32(id) + 1
	}
}

// Reserve pre-grows every structure to hold n more records, restoring
// the allocation-free ingest steady state before a large batch.
func (c *Catalog) Reserve(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	need := len(c.recs) + n
	if cap(c.recs) < need {
		recs := make([]Record, len(c.recs), need)
		copy(recs, c.recs)
		c.recs = recs
	}
	for uint64(need)*2 > c.keyMask+1 {
		c.growTable()
	}
	for d := range c.trees {
		c.trees[d].reserve(n)
	}
	c.benchTree.reserve(n)
	c.policyTree.reserve(n)
	if cap(c.encBuf) < 4096 {
		c.encBuf = make([]byte, 0, 4096)
	}
}

// intern maps a string onto a stable small id for the given table,
// assigning the next id on first sight.
func intern(table map[string]uint64, s string) uint64 {
	if id, ok := table[s]; ok {
		return id
	}
	id := uint64(len(table)) + 1
	table[s] = id
	return id
}

// Ingest adds one record, appending it to the log and every index.
// Re-ingesting a key already cataloged is a cheap no-op (false). Log
// write failures are swallowed after the append-or-nothing attempt — a
// catalog that cannot persist still serves queries this process.
func (c *Catalog) Ingest(rec Record) bool {
	if c == nil || rec.Key == "" {
		return false
	}
	c.mu.Lock()
	slot, id := c.findSlot(rec.Key)
	if id >= 0 {
		c.mu.Unlock()
		if m := c.opts.Metrics; m != nil {
			m.Duplicates.Inc()
		}
		return false
	}
	if c.logf != nil {
		// A failed append is swallowed: the record still serves queries
		// from memory, and a cold start recovers it from the pack store.
		c.encBuf = appendRecord(c.encBuf[:0], &rec)
		if _, err := c.logf.WriteAt(c.encBuf, c.logSize); err == nil {
			c.logSize += int64(len(c.encBuf))
		}
	}
	newID := int32(len(c.recs))
	c.recs = append(c.recs, rec)
	c.keyTable[slot] = newID + 1
	if uint64(len(c.recs))*3 > (c.keyMask+1)*2 {
		c.growTable()
	}
	c.indexLocked(&c.recs[newID], newID)
	c.mu.Unlock()
	if m := c.opts.Metrics; m != nil {
		m.Ingested.Inc()
		m.Records.Set(float64(newID + 1))
	}
	return true
}

// addLocked inserts one replayed/rebuilt record without touching the log.
func (c *Catalog) addLocked(rec *Record) bool {
	slot, id := c.findSlot(rec.Key)
	if id >= 0 {
		return false
	}
	newID := int32(len(c.recs))
	c.recs = append(c.recs, *rec)
	c.keyTable[slot] = newID + 1
	if uint64(len(c.recs))*3 > (c.keyMask+1)*2 {
		c.growTable()
	}
	c.indexLocked(&c.recs[newID], newID)
	return true
}

// indexLocked inserts one record into every secondary index.
func (c *Catalog) indexLocked(rec *Record, id int32) {
	for d := Dim(0); d < NumDims; d++ {
		c.trees[d].insert(keyBits(rec.DimValue(d)), id)
	}
	c.benchTree.insert(intern(c.benchIDs, rec.Bench), id)
	c.policyTree.insert(intern(c.policyIDs, rec.Policy), id)
}

// Get returns the record cataloged under key.
func (c *Catalog) Get(key string) (Record, bool) {
	if c == nil {
		return Record{}, false
	}
	c.mu.RLock()
	_, id := c.findSlot(key)
	if id < 0 {
		c.mu.RUnlock()
		return Record{}, false
	}
	rec := c.recs[id]
	c.mu.RUnlock()
	return rec, true
}

// Contains reports whether key is cataloged, without copying the record.
func (c *Catalog) Contains(key string) bool {
	if c == nil {
		return false
	}
	c.mu.RLock()
	_, id := c.findSlot(key)
	c.mu.RUnlock()
	return id >= 0
}

// RebuildFromStore scans a pack-volume run cache and re-ingests every
// decodable *sim.Result the catalog does not already hold — the recovery
// path for a catalog whose log was lost or torn while the cache survived.
// Recovered records are appended to the log (via the normal ingest path)
// so the next cold start replays them directly. Returns the number of
// records recovered. Entries that do not decode as results are skipped.
func (c *Catalog) RebuildFromStore(store *packstore.Store) (int, error) {
	if c == nil || store == nil {
		return 0, nil
	}
	added := 0
	err := store.Range(func(key string, data []byte) bool {
		var res sim.Result
		if json.Unmarshal(data, &res) != nil || res.Benchmark == "" {
			return true
		}
		if c.Ingest(FromResult(key, &res)) {
			added++
		}
		return true
	})
	c.mu.Lock()
	c.rebuilt = added
	c.mu.Unlock()
	if m := c.opts.Metrics; m != nil {
		m.Rebuilds.Inc()
	}
	return added, err
}

// Keys appends every cataloged key to dst in insertion order (tests and
// diagnostics).
func (c *Catalog) Keys(dst []string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i := range c.recs {
		dst = append(dst, c.recs[i].Key)
	}
	return dst
}

func (c *Catalog) publishGauge() {
	if m := c.opts.Metrics; m != nil {
		m.Records.Set(float64(len(c.recs)))
	}
}

// Stats is a point-in-time snapshot of the catalog's shape.
type Stats struct {
	Records     int `json:"records"`
	Quarantined int `json:"quarantined"`
	Rebuilt     int `json:"rebuilt"`
}

// Stats snapshots record and recovery accounting.
func (c *Catalog) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return Stats{Records: len(c.recs), Quarantined: c.quarantined, Rebuilt: c.rebuilt}
}
