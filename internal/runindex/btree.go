package runindex

// Arena-based B+-tree mapping (uint64 key, int32 record id) pairs to
// leaves linked in key order — the secondary-index structure behind every
// catalog dimension. Nodes live in one slice indexed by int32, so an
// insert in the steady state (arena capacity pre-grown by reserve) touches
// no allocator at all, which is what puts catalog ingest under the
// repository's zero-allocation gate. Duplicate keys are expected — many
// runs share a trigger temperature — so entries are ordered by the
// composite (key, id) and range scans simply visit every id in a key's
// run of the leaf chain.
//
// Float dimensions are mapped to uint64 by the order-preserving transform
// in keyBits (sign-flip encoding), so one integer tree serves every
// dimension type.

import "math"

// btreeOrder is the maximum entries per node; nodes split at this fan-out
// and never fall below half of it (inserts only, no deletes: the catalog
// is append-only like the stores beneath it).
const btreeOrder = 32

// bnode is one arena slot, serving as both leaf and internal node. Leaves
// use keys/ids as entry pairs and next as the right-sibling link; internal
// nodes use keys/ids as separator pairs and kids as children (one more
// child than separators).
type bnode struct {
	n    int16
	leaf bool
	next int32 // leaf chain; -1 at the rightmost leaf
	keys [btreeOrder]uint64
	ids  [btreeOrder]int32
	kids [btreeOrder + 1]int32
}

// btree is one secondary index. The zero value is not ready; use newBtree.
type btree struct {
	nodes []bnode
	root  int32
	size  int
}

func newBtree() *btree {
	t := &btree{nodes: make([]bnode, 1, 8)}
	t.nodes[0] = bnode{leaf: true, next: -1}
	return t
}

// reserve grows the arena so the next n inserts cannot reallocate it.
// Worst case every node is half full: n entries need at most n/(order/2)
// leaves and as many internal nodes again.
func (t *btree) reserve(n int) {
	need := len(t.nodes) + 2*(n/(btreeOrder/2)+2)
	if cap(t.nodes) >= need {
		return
	}
	nodes := make([]bnode, len(t.nodes), need)
	copy(nodes, t.nodes)
	t.nodes = nodes
}

// keyBits maps a float64 onto uint64 preserving order: positive floats
// get the sign bit set, negative floats are bit-flipped, so unsigned
// comparison of the images matches float comparison of the sources.
func keyBits(f float64) uint64 {
	if f == 0 {
		f = 0 // collapse -0 onto +0 so equal floats share an image
	}
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// less orders composite entries.
func less(k1 uint64, i1 int32, k2 uint64, i2 int32) bool {
	return k1 < k2 || (k1 == k2 && i1 < i2)
}

// alloc appends one arena slot and returns its index. Callers must
// re-derive any *bnode pointers they hold: append may move the arena.
func (t *btree) alloc(n bnode) int32 {
	t.nodes = append(t.nodes, n)
	return int32(len(t.nodes) - 1)
}

// splitChild splits the full ci-th child of parent (which has spare
// room), promoting a separator. B+ semantics: a leaf split copies the new
// right leaf's first entry up; an internal split moves the middle
// separator up.
func (t *btree) splitChild(parent int32, ci int) {
	childIdx := t.nodes[parent].kids[ci]
	var newIdx int32
	var sepKey uint64
	var sepID int32
	if t.nodes[childIdx].leaf {
		mid := int16(btreeOrder / 2)
		right := bnode{leaf: true}
		child := &t.nodes[childIdx]
		right.n = child.n - mid
		copy(right.keys[:], child.keys[mid:child.n])
		copy(right.ids[:], child.ids[mid:child.n])
		right.next = child.next
		child.n = mid
		sepKey, sepID = right.keys[0], right.ids[0]
		newIdx = t.alloc(right) // may move arena: child pointer dead now
		t.nodes[childIdx].next = newIdx
	} else {
		mid := int16(btreeOrder / 2)
		right := bnode{next: -1}
		child := &t.nodes[childIdx]
		sepKey, sepID = child.keys[mid], child.ids[mid]
		right.n = child.n - mid - 1
		copy(right.keys[:], child.keys[mid+1:child.n])
		copy(right.ids[:], child.ids[mid+1:child.n])
		copy(right.kids[:], child.kids[mid+1:child.n+1])
		child.n = mid
		newIdx = t.alloc(right)
	}
	p := &t.nodes[parent]
	for j := int(p.n); j > ci; j-- {
		p.keys[j] = p.keys[j-1]
		p.ids[j] = p.ids[j-1]
		p.kids[j+1] = p.kids[j]
	}
	p.keys[ci] = sepKey
	p.ids[ci] = sepID
	p.kids[ci+1] = newIdx
	p.n++
}

// insert adds one (key, id) entry, splitting full nodes top-down so no
// parent back-patching is needed after arena growth.
func (t *btree) insert(key uint64, id int32) {
	if t.nodes[t.root].n == btreeOrder {
		newRoot := t.alloc(bnode{next: -1})
		t.nodes[newRoot].kids[0] = t.root
		t.root = newRoot
		t.splitChild(newRoot, 0)
	}
	cur := t.root
	for !t.nodes[cur].leaf {
		nd := &t.nodes[cur]
		// Child for (key,id): past every separator <= it.
		ci := 0
		for ci < int(nd.n) && !less(key, id, nd.keys[ci], nd.ids[ci]) {
			ci++
		}
		if t.nodes[nd.kids[ci]].n == btreeOrder {
			t.splitChild(cur, ci)
			nd = &t.nodes[cur]
			if ci < int(nd.n) && !less(key, id, nd.keys[ci], nd.ids[ci]) {
				ci++
			}
		}
		cur = t.nodes[cur].kids[ci]
	}
	leaf := &t.nodes[cur]
	i := int(leaf.n)
	for i > 0 && less(key, id, leaf.keys[i-1], leaf.ids[i-1]) {
		leaf.keys[i] = leaf.keys[i-1]
		leaf.ids[i] = leaf.ids[i-1]
		i--
	}
	leaf.keys[i] = key
	leaf.ids[i] = id
	leaf.n++
	t.size++
}

// ascend visits entries with key in [lo, hi) in (key, id) order, walking
// the leaf chain; visit returning false stops the scan. Returns the
// number of entries visited.
func (t *btree) ascend(lo, hi uint64, visit func(key uint64, id int32) bool) int {
	// Descend to the leaf that could hold (lo, minId).
	cur := t.root
	for !t.nodes[cur].leaf {
		nd := &t.nodes[cur]
		ci := 0
		for ci < int(nd.n) && !less(lo, math.MinInt32, nd.keys[ci], nd.ids[ci]) {
			ci++
		}
		cur = nd.kids[ci]
	}
	visited := 0
	for cur >= 0 {
		nd := &t.nodes[cur]
		for i := 0; i < int(nd.n); i++ {
			k := nd.keys[i]
			if k < lo {
				continue
			}
			if k >= hi {
				return visited
			}
			visited++
			if !visit(k, nd.ids[i]) {
				return visited
			}
		}
		cur = nd.next
	}
	return visited
}
