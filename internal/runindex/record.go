package runindex

// Record is one cataloged run: the cache key that names it, the config
// dimensions sweeps vary (the indexed columns), and the summary metrics
// pareto/sensitivity queries read. Records are intentionally flat and
// fixed-size apart from the three strings, so the on-disk log frame and
// the in-memory arena copy are both cheap.
//
// The log frame format follows the packstore needle idiom: a magic and
// length make the stream self-framing for torn-tail truncation, and a CRC
// over the payload catches corruption anywhere else, which quarantines
// the frame as a miss instead of serving bad dimensions.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/sim"
)

// Record is one run's row in the catalog.
type Record struct {
	Key    string `json:"key"`
	Bench  string `json:"bench"`
	Policy string `json:"policy"`

	// Indexed numeric dimensions. Trigger is the policy's engagement
	// threshold or controller setpoint in Celsius (0 = uncontrolled).
	Trigger  float64 `json:"trigger,omitempty"`
	Kp       float64 `json:"kp,omitempty"`
	Ki       float64 `json:"ki,omitempty"`
	Interval float64 `json:"interval,omitempty"` // DTM sampling period, cycles
	Stride   float64 `json:"stride,omitempty"`   // configured thermal stride (0 = auto)
	Cores    float64 `json:"cores,omitempty"`
	Insts    float64 `json:"insts,omitempty"` // committed-instruction budget

	// Summary metrics (not indexed; rendered by queries and grid-fill).
	IPC         float64 `json:"ipc"`
	AvgPower    float64 `json:"avg_power"`
	AvgDuty     float64 `json:"avg_duty"`
	AvgFreq     float64 `json:"avg_freq,omitempty"`
	EmergFrac   float64 `json:"emerg_frac"`
	StressFrac  float64 `json:"stress_frac"`
	Engagements uint64  `json:"engagements"`
	Cycles      uint64  `json:"cycles"`
}

// Dim names one indexed numeric dimension.
type Dim uint8

const (
	DimTrigger Dim = iota
	DimKp
	DimKi
	DimInterval
	DimStride
	DimCores
	DimInsts
	NumDims
)

var dimNames = [NumDims]string{"trigger", "kp", "ki", "interval", "stride", "cores", "insts"}

func (d Dim) String() string { return dimNames[d] }

// ParseDim resolves a dimension name.
func ParseDim(name string) (Dim, error) {
	for d, n := range dimNames {
		if n == name {
			return Dim(d), nil
		}
	}
	return 0, fmt.Errorf("runindex: unknown dimension %q", name)
}

// DimValue returns one indexed dimension's value.
func (r *Record) DimValue(d Dim) float64 {
	switch d {
	case DimTrigger:
		return r.Trigger
	case DimKp:
		return r.Kp
	case DimKi:
		return r.Ki
	case DimInterval:
		return r.Interval
	case DimStride:
		return r.Stride
	case DimCores:
		return r.Cores
	default:
		return r.Insts
	}
}

// FromResult flattens one completed solo run into its catalog row.
func FromResult(key string, res *sim.Result) Record {
	return Record{
		Key:    key,
		Bench:  res.Benchmark,
		Policy: res.Policy,

		Trigger:  res.Dims.Trigger,
		Kp:       res.Dims.Kp,
		Ki:       res.Dims.Ki,
		Interval: float64(res.Dims.Interval),
		Stride:   float64(res.Dims.Stride),
		Cores:    float64(res.Dims.Cores),
		Insts:    float64(res.Dims.Insts),

		IPC:         res.IPC,
		AvgPower:    res.AvgChipPower,
		AvgDuty:     res.AvgDuty,
		EmergFrac:   res.EmergencyFrac(),
		StressFrac:  res.StressFrac(),
		Engagements: res.Engagements,
		Cycles:      res.Cycles,
	}
}

// FromMulticore flattens one multicore run into its catalog row. Duty
// and frequency are the per-core averages; the caller supplies the
// synthetic cache key (multicore runs have no solo cache entry).
func FromMulticore(key string, insts uint64, res *sim.MulticoreResult) Record {
	var duty, freq float64
	if n := len(res.PerCore); n > 0 {
		for i := range res.PerCore {
			duty += res.PerCore[i].AvgDuty
			freq += res.PerCore[i].AvgFreq
		}
		duty /= float64(n)
		freq /= float64(n)
	}
	return Record{
		Key:    key,
		Bench:  res.Workload,
		Policy: res.Policy,

		Cores: float64(res.Cores),
		Insts: float64(insts),

		IPC:        res.IPC,
		AvgPower:   res.AvgChipPower,
		AvgDuty:    duty,
		AvgFreq:    freq,
		EmergFrac:  res.EmergencyFrac(),
		StressFrac: res.StressFrac(),
		Cycles:     res.Cycles,
	}
}

// Log frame layout (little-endian):
//
//	magic      uint32  0x54414352 ("RCAT")
//	payloadLen uint32
//	crc        uint32  IEEE CRC32 over the payload
//	payload    version byte, three length-prefixed strings, fixed numerics
const (
	frameMagic     = 0x54414352
	frameHeader    = 4 + 4 + 4
	recordVersion  = 1
	maxPayloadLen  = 1 << 20
	numFixedFields = 15 // 13 float64 + 2 uint64
)

// appendRecord encodes r's log frame onto buf.
func appendRecord(buf []byte, r *Record) []byte {
	payloadLen := 1 + 3*2 + len(r.Key) + len(r.Bench) + len(r.Policy) + numFixedFields*8
	start := len(buf)
	need := start + frameHeader + payloadLen
	if cap(buf) >= need {
		buf = buf[:need]
		clear(buf[start:])
	} else {
		grown := make([]byte, need, 2*need)
		copy(grown, buf)
		buf = grown
	}
	b := buf[start:]
	binary.LittleEndian.PutUint32(b[0:4], frameMagic)
	binary.LittleEndian.PutUint32(b[4:8], uint32(payloadLen))
	p := b[frameHeader:]
	p[0] = recordVersion
	off := 1
	putStr := func(s string) {
		binary.LittleEndian.PutUint16(p[off:], uint16(len(s)))
		off += 2
		copy(p[off:], s)
		off += len(s)
	}
	putStr(r.Key)
	putStr(r.Bench)
	putStr(r.Policy)
	putF := func(f float64) {
		binary.LittleEndian.PutUint64(p[off:], math.Float64bits(f))
		off += 8
	}
	putF(r.Trigger)
	putF(r.Kp)
	putF(r.Ki)
	putF(r.Interval)
	putF(r.Stride)
	putF(r.Cores)
	putF(r.Insts)
	putF(r.IPC)
	putF(r.AvgPower)
	putF(r.AvgDuty)
	putF(r.AvgFreq)
	putF(r.EmergFrac)
	putF(r.StressFrac)
	binary.LittleEndian.PutUint64(p[off:], r.Engagements)
	off += 8
	binary.LittleEndian.PutUint64(p[off:], r.Cycles)
	binary.LittleEndian.PutUint32(b[8:12], crc32.ChecksumIEEE(p))
	return buf
}

// decodeRecord parses one frame payload. A false return means the
// payload is structurally or semantically invalid (quarantine it).
func decodeRecord(p []byte) (Record, bool) {
	var r Record
	if len(p) < 1+3*2+numFixedFields*8 || p[0] != recordVersion {
		return r, false
	}
	off := 1
	getStr := func() (string, bool) {
		if off+2 > len(p) {
			return "", false
		}
		n := int(binary.LittleEndian.Uint16(p[off:]))
		off += 2
		if off+n > len(p) {
			return "", false
		}
		s := string(p[off : off+n])
		off += n
		return s, true
	}
	var ok bool
	if r.Key, ok = getStr(); !ok || r.Key == "" {
		return r, false
	}
	if r.Bench, ok = getStr(); !ok {
		return r, false
	}
	if r.Policy, ok = getStr(); !ok {
		return r, false
	}
	if len(p)-off != numFixedFields*8 {
		return r, false
	}
	getF := func() float64 {
		f := math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
		off += 8
		return f
	}
	r.Trigger = getF()
	r.Kp = getF()
	r.Ki = getF()
	r.Interval = getF()
	r.Stride = getF()
	r.Cores = getF()
	r.Insts = getF()
	r.IPC = getF()
	r.AvgPower = getF()
	r.AvgDuty = getF()
	r.AvgFreq = getF()
	r.EmergFrac = getF()
	r.StressFrac = getF()
	r.Engagements = binary.LittleEndian.Uint64(p[off:])
	off += 8
	r.Cycles = binary.LittleEndian.Uint64(p[off:])
	return r, true
}
