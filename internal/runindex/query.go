package runindex

// Query execution: composite filters over the catalog. One filter drives
// the scan — the first set numeric range walks its B+-tree leaf chain,
// a bench/policy equality walks the interned-string tree — and the
// remaining filters are verified per candidate record, so a query costs
// O(selectivity of the driving filter), not O(catalog). FullScan is the
// deliberate no-index baseline the T1-T5 benchrec lane compares against.

import (
	"fmt"
	"math"
	"net/url"
	"strconv"
	"strings"
)

// RangeFilter is one dimension's half-open constraint [Lo, Hi).
type RangeFilter struct {
	Lo, Hi float64
	Set    bool
}

func (f RangeFilter) match(v float64) bool {
	return !f.Set || (v >= f.Lo && v < f.Hi)
}

// Query is one composite catalog question. Zero-valued fields do not
// constrain; Limit == 0 means DefaultLimit.
type Query struct {
	Bench  string
	Policy string
	Dims   [NumDims]RangeFilter
	Limit  int
}

// DefaultLimit bounds a query's result rows unless the caller asks for
// more; it keeps an accidental full-catalog /query from streaming
// millions of rows.
const DefaultLimit = 10000

// ParseQuery builds a Query from URL parameters. Numeric dimensions
// accept "lo:hi" for the half-open range [lo,hi) or a single value for a
// point match; bench= and policy= are string equalities; limit= bounds
// the row count.
func ParseQuery(values url.Values) (Query, error) {
	var q Query
	q.Bench = values.Get("bench")
	q.Policy = values.Get("policy")
	if v := values.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return q, fmt.Errorf("runindex: bad limit %q", v)
		}
		q.Limit = n
	}
	for d := Dim(0); d < NumDims; d++ {
		v := values.Get(d.String())
		if v == "" {
			continue
		}
		f, err := parseRange(v)
		if err != nil {
			return q, fmt.Errorf("runindex: bad %s: %w", d, err)
		}
		q.Dims[d] = f
	}
	return q, nil
}

func parseRange(s string) (RangeFilter, error) {
	if lo, hi, ok := strings.Cut(s, ":"); ok {
		l, err := strconv.ParseFloat(lo, 64)
		if err != nil {
			return RangeFilter{}, err
		}
		h, err := strconv.ParseFloat(hi, 64)
		if err != nil {
			return RangeFilter{}, err
		}
		if h < l {
			return RangeFilter{}, fmt.Errorf("inverted range %q", s)
		}
		return RangeFilter{Lo: l, Hi: h, Set: true}, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return RangeFilter{}, err
	}
	// A point match is the narrowest half-open range containing v.
	return RangeFilter{Lo: v, Hi: math.Nextafter(v, math.Inf(1)), Set: true}, nil
}

// Encode renders q back into URL parameters (the coordinator re-issues
// queries against workers with it).
func (q Query) Encode() string {
	v := url.Values{}
	if q.Bench != "" {
		v.Set("bench", q.Bench)
	}
	if q.Policy != "" {
		v.Set("policy", q.Policy)
	}
	for d := Dim(0); d < NumDims; d++ {
		if q.Dims[d].Set {
			v.Set(d.String(), fmt.Sprintf("%g:%g", q.Dims[d].Lo, q.Dims[d].Hi))
		}
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	return v.Encode()
}

// matchRest checks every filter except the one driving the scan.
func (q *Query) matchRest(rec *Record, driver int) bool {
	if q.Bench != "" && driver != driverBench && rec.Bench != q.Bench {
		return false
	}
	if q.Policy != "" && driver != driverPolicy && rec.Policy != q.Policy {
		return false
	}
	for d := Dim(0); d < NumDims; d++ {
		if int(d) == driver {
			continue
		}
		if !q.Dims[d].match(rec.DimValue(d)) {
			return false
		}
	}
	return true
}

const (
	driverNone   = -1
	driverBench  = -2
	driverPolicy = -3
)

// driver picks the scan strategy: the first set numeric range, else a
// string equality, else a full scan.
func (q *Query) driver() int {
	for d := Dim(0); d < NumDims; d++ {
		if q.Dims[d].Set {
			return int(d)
		}
	}
	if q.Bench != "" {
		return driverBench
	}
	if q.Policy != "" {
		return driverPolicy
	}
	return driverNone
}

// Execute runs q and calls visit for every matching record in scan
// order; visit returning false stops early. Returns the number of rows
// visited. The visitor borrows the record — copy it to retain it.
func (c *Catalog) Execute(q *Query, visit func(rec *Record) bool) int {
	if c == nil {
		return 0
	}
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if m := c.opts.Metrics; m != nil {
		m.Queries.Inc()
	}
	rows := 0
	emit := func(id int32, driver int) bool {
		rec := &c.recs[id]
		if !q.matchRest(rec, driver) {
			return true
		}
		rows++
		if !visit(rec) || rows >= limit {
			return false
		}
		return true
	}
	switch drv := q.driver(); drv {
	case driverNone:
		for id := range c.recs {
			if !emit(int32(id), drv) {
				break
			}
		}
	case driverBench, driverPolicy:
		tree, table, name := c.benchTree, c.benchIDs, q.Bench
		if drv == driverPolicy {
			tree, table, name = c.policyTree, c.policyIDs, q.Policy
		}
		sid, ok := table[name]
		if !ok {
			return 0
		}
		tree.ascend(sid, sid+1, func(_ uint64, id int32) bool {
			return emit(id, drv)
		})
	default:
		f := q.Dims[drv]
		if m := c.opts.Metrics; m != nil {
			m.RangeScans.Inc()
		}
		c.trees[drv].ascend(keyBits(f.Lo), keyBits(f.Hi), func(_ uint64, id int32) bool {
			return emit(id, drv)
		})
	}
	return rows
}

// FullScan answers q by testing every record with no index help — the
// baseline the benchrec T5 lane measures range scans against.
func (c *Catalog) FullScan(q *Query, visit func(rec *Record) bool) int {
	if c == nil {
		return 0
	}
	limit := q.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	rows := 0
	for id := range c.recs {
		rec := &c.recs[id]
		if !q.matchRest(rec, driverNone) {
			continue
		}
		rows++
		if !visit(rec) || rows >= limit {
			break
		}
	}
	return rows
}

// QueryResponse is the JSON body /query emits — shared by cmd/serve
// workers and the cluster coordinator's merged fan-out.
type QueryResponse struct {
	Count   int      `json:"count"`
	Records int      `json:"records"` // catalog size behind the answer
	Workers int      `json:"workers,omitempty"`
	Rows    []Record `json:"rows"`
}

// Run executes q and collects the rows into a QueryResponse.
func (c *Catalog) Run(q *Query) QueryResponse {
	resp := QueryResponse{Rows: []Record{}}
	c.Execute(q, func(rec *Record) bool {
		resp.Rows = append(resp.Rows, *rec)
		return true
	})
	resp.Count = len(resp.Rows)
	resp.Records = c.Len()
	return resp
}
