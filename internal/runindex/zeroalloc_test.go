package runindex

import (
	"testing"

	"repro/internal/telemetry"
)

// Catalog ingest and query sit on the result hot path of every batch and
// sweep; like the simulator hot loop and the cluster dispatch path they
// are gated at zero allocations per operation in the steady state
// (capacity reserved, bench/policy strings already interned, log frames
// encoded into a reused buffer and written with WriteAt).

func TestZeroAllocIndexIngest(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewIndexMetrics(reg)
	const warm, measured = 4096, 1000
	c, err := Open(t.TempDir(), Options{Capacity: warm + measured + 1024, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Pre-generate every record so the measured loop only ingests, and
	// warm up so every bench/policy string is interned.
	recs := make([]Record, warm+measured)
	for i := range recs {
		recs[i] = testRecord(i)
	}
	for i := 0; i < warm; i++ {
		if !c.Ingest(recs[i]) {
			t.Fatalf("warmup ingest %d failed", i)
		}
	}
	next := warm
	allocs := testing.AllocsPerRun(measured-1, func() {
		if !c.Ingest(recs[next]) {
			panic("measured ingest failed")
		}
		next++
	})
	if allocs != 0 {
		t.Errorf("catalog ingest allocates %.1f per record, want 0", allocs)
	}
}

func TestZeroAllocIndexLookup(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewIndexMetrics(reg)
	c, err := Open("", Options{Capacity: 8192, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8000
	for i := 0; i < n; i++ {
		c.Ingest(testRecord(i))
	}
	key := testRecord(n / 2).Key
	q := Query{Limit: 1 << 30}
	q.Dims[DimTrigger] = RangeFilter{Lo: 110, Hi: 110.5, Set: true}
	visit := func(*Record) bool { return true }

	allocs := testing.AllocsPerRun(1000, func() {
		if !c.Contains(key) {
			panic("lookup missed a cataloged key")
		}
		if c.Execute(&q, visit) == 0 {
			panic("range query matched nothing")
		}
	})
	if allocs != 0 {
		t.Errorf("catalog lookup+range query allocates %.1f per op, want 0", allocs)
	}
}
