package runindex

import (
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/packstore"
	"repro/internal/sim"
)

// snapshot captures everything queries can observe: the key set and a
// few representative query answers.
type catalogSnapshot struct {
	keys    []string
	queries map[string][]Record
}

func snapshotCatalog(t *testing.T, c *Catalog) catalogSnapshot {
	t.Helper()
	s := catalogSnapshot{queries: map[string][]Record{}}
	s.keys = c.Keys(nil)
	sort.Strings(s.keys)
	for _, raw := range []string{
		"trigger=110:111&limit=100000",
		"policy=PI&limit=100000",
		"bench=hotspot&interval=250:2000&limit=100000",
	} {
		q, err := ParseQuery(mustParseQuery(t, raw))
		if err != nil {
			t.Fatal(err)
		}
		rows := c.Run(&q).Rows
		sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
		s.queries[raw] = rows
	}
	return s
}

// TestCrashRecoveryTornLog simulates a SIGKILL mid-append: the catalog
// log ends in half a frame and an earlier frame is corrupted in place.
// Reopening must truncate the torn tail, quarantine the corrupt frame as
// a miss, and serve everything else; a rebuild from the surviving pack
// store must then restore an index identical to the pre-kill one.
func TestCrashRecoveryTornLog(t *testing.T) {
	dir := t.TempDir()
	packDir := filepath.Join(dir, "pack")
	catDir := filepath.Join(dir, "catalog")

	store, err := packstore.Open(packDir, packstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(catDir, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Ingest through both paths, as cmd/serve does: the result JSON into
	// the pack store, the flattened record into the catalog.
	const n = 500
	for i := 0; i < n; i++ {
		rec := testRecord(i)
		res := sim.Result{
			Benchmark: rec.Bench,
			Policy:    rec.Policy,
			Dims: sim.RunDims{
				Trigger:  rec.Trigger,
				Kp:       rec.Kp,
				Ki:       rec.Ki,
				Interval: uint64(rec.Interval),
				Stride:   uint64(rec.Stride),
				Insts:    uint64(rec.Insts),
				Cores:    int(rec.Cores),
			},
			IPC:          rec.IPC,
			AvgChipPower: rec.AvgPower,
			AvgDuty:      rec.AvgDuty,
			Engagements:  rec.Engagements,
			Cycles:       rec.Cycles,
		}
		blob, err := json.Marshal(&res)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(rec.Key, blob); err != nil {
			t.Fatal(err)
		}
		if !c.Ingest(rec) {
			t.Fatalf("ingest %d failed", i)
		}
	}
	want := snapshotCatalog(t, c)
	// SIGKILL: no Close, just drop the handles and mangle the log.
	c.logf.Close()

	logPath := filepath.Join(catDir, "catalog.log")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the 3rd frame's payload in place (CRC now mismatches) and
	// tear the tail mid-frame.
	off := 0
	for i := 0; i < 2; i++ {
		off += frameHeader + int(binary.LittleEndian.Uint32(raw[off+4:]))
	}
	corruptKey := testRecord(2).Key
	raw[off+frameHeader+10] ^= 0xff
	torn := raw[:len(raw)-7]
	if err := os.WriteFile(logPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(catDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	// The torn tail loses the last record; the corrupt frame is a miss.
	if reopened.Len() != n-2 {
		t.Fatalf("reopened Len = %d, want %d (one torn, one quarantined)", reopened.Len(), n-2)
	}
	if reopened.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", reopened.Quarantined())
	}
	if reopened.Contains(corruptKey) {
		t.Fatal("corrupt frame still serves")
	}
	if reopened.Contains(testRecord(n - 1).Key) {
		t.Fatal("torn tail record still serves")
	}

	// Cold rebuild from the pack store recovers both lost records.
	added, err := reopened.RebuildFromStore(store)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("RebuildFromStore recovered %d records, want 2", added)
	}
	if got := reopened.Stats(); got.Rebuilt != 2 || got.Records != n {
		t.Fatalf("Stats = %+v, want Rebuilt=2 Records=%d", got, n)
	}
	got := snapshotCatalog(t, reopened)
	if !reflect.DeepEqual(got.keys, want.keys) {
		t.Fatalf("rebuilt key set differs: %d vs %d keys", len(got.keys), len(want.keys))
	}
	for raw, wantRows := range want.queries {
		if !reflect.DeepEqual(got.queries[raw], wantRows) {
			t.Fatalf("rebuilt query %q differs: %d vs %d rows", raw, len(got.queries[raw]), len(wantRows))
		}
	}
	store.Close()

	// The rebuild re-logged the recovered records: a further cold start
	// needs no pack store at all.
	reopened.Close()
	third, err := Open(catDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	if third.Len() != n {
		t.Fatalf("post-rebuild cold start Len = %d, want %d", third.Len(), n)
	}
}

// TestRebuildSkipsForeignBlobs checks a pack store holding non-result
// payloads does not poison the catalog.
func TestRebuildSkipsForeignBlobs(t *testing.T) {
	dir := t.TempDir()
	store, err := packstore.Open(dir, packstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.Put("junk:1", []byte("not json"))
	store.Put("junk:2", []byte(`{"note":"json but not a result"}`))
	rec := testRecord(0)
	res := sim.Result{Benchmark: rec.Bench, Policy: rec.Policy, IPC: rec.IPC}
	blob, _ := json.Marshal(&res)
	store.Put(rec.Key, blob)

	c, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	added, err := c.RebuildFromStore(store)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || c.Len() != 1 {
		t.Fatalf("rebuild added %d records (Len %d), want 1", added, c.Len())
	}
	if !c.Contains(rec.Key) {
		t.Fatal("the one real result is missing")
	}
}
