// Package stats provides the small statistical utilities shared by the
// simulator, the experiment harness and the table generators: running
// scalars, histograms, exponentially-weighted and boxcar averages, and time
// series with fixed-stride downsampling.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Running accumulates count/sum/min/max/mean/variance for a scalar stream
// without retaining samples (variance via Welford's update).
type Running struct {
	n        uint64
	sum      float64
	min, max float64
	mean, m2 float64
}

// Add records one sample.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	r.sum += x
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddSpan folds a presummarized span of n samples with the given sum and
// value range [lo, hi] into the accumulator, as if Add had been called n
// times. Count, sum, min, max and mean stay exact; the variance update
// treats the span as n samples at its mean (a lower bound on the true
// spread), which is the accepted trade for strided hot paths that cannot
// afford per-sample Welford updates.
func (r *Running) AddSpan(n uint64, sum, lo, hi float64) {
	if n == 0 {
		return
	}
	if r.n == 0 {
		r.min, r.max = lo, hi
	} else {
		if lo < r.min {
			r.min = lo
		}
		if hi > r.max {
			r.max = hi
		}
	}
	m := sum / float64(n)
	d := m - r.mean
	nOld := float64(r.n)
	r.n += n
	r.sum += sum
	nNew := float64(r.n)
	r.mean += d * float64(n) / nNew
	r.m2 += d * d * nOld * float64(n) / nNew
}

// N returns the sample count.
func (r *Running) N() uint64 { return r.n }

// Sum returns the sample sum.
func (r *Running) Sum() float64 { return r.sum }

// Mean returns the sample mean, or 0 with no samples.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample, or 0 with no samples.
func (r *Running) Max() float64 { return r.max }

// Variance returns the (population) variance, or 0 with < 2 samples.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Boxcar is a fixed-window moving average over a scalar stream — the
// power-averaging proxy used by Brooks & Martonosi and evaluated against the
// RC thermal model in Section 6 of the paper.
type Boxcar struct {
	buf  []float64
	head int
	full bool
	sum  float64
}

// NewBoxcar returns a moving average over the last window samples.
// It panics if window is not positive, since a zero-length boxcar is
// always a configuration error.
func NewBoxcar(window int) *Boxcar {
	if window <= 0 {
		panic(fmt.Sprintf("stats: invalid boxcar window %d", window))
	}
	return &Boxcar{buf: make([]float64, window)}
}

// Window returns the configured window length.
func (b *Boxcar) Window() int { return len(b.buf) }

// Add pushes a sample and returns the current average. Before the window
// fills, the average is over the samples seen so far.
//
// The running sum is maintained incrementally (O(1) per sample) but
// recomputed exactly from the buffer once per window wrap: the incremental
// update `sum += x - evicted` accumulates floating-point rounding error
// without bound over long streams (catastrophically so when a large
// transient passes through the window), and the periodic recompute caps
// the drift at one window's worth of roundoff.
func (b *Boxcar) Add(x float64) float64 {
	b.sum += x - b.buf[b.head]
	b.buf[b.head] = x
	b.head++
	if b.head == len(b.buf) {
		b.head = 0
		b.full = true
		sum := 0.0
		for _, v := range b.buf {
			sum += v
		}
		b.sum = sum
	}
	return b.Avg()
}

// Avg returns the current average without adding a sample.
func (b *Boxcar) Avg() float64 {
	n := len(b.buf)
	if !b.full {
		n = b.head
		if n == 0 {
			return 0
		}
	}
	return b.sum / float64(n)
}

// Full reports whether the window has filled at least once.
func (b *Boxcar) Full() bool { return b.full }

// Reset clears the window.
func (b *Boxcar) Reset() {
	for i := range b.buf {
		b.buf[i] = 0
	}
	b.head, b.full, b.sum = 0, false, 0
}

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	alpha float64
	v     float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: invalid EWMA alpha %g", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Add folds in a sample and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.v, e.init = x, true
	} else {
		e.v += e.alpha * (x - e.v)
	}
	return e.v
}

// Value returns the current average.
func (e *EWMA) Value() float64 { return e.v }

// Histogram counts samples into uniform bins over [lo, hi); out-of-range
// samples land in the first or last bin.
type Histogram struct {
	lo, hi float64
	bins   []uint64
	n      uint64
}

// NewHistogram creates a histogram with nbins uniform bins spanning [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 || !(hi > lo) {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g)x%d", lo, hi, nbins))
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]uint64, nbins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.bins)) * (x - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.n++
}

// N returns the total sample count.
func (h *Histogram) N() uint64 { return h.n }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) uint64 { return h.bins[i] }

// NumBins returns the bin count.
func (h *Histogram) NumBins() int { return len(h.bins) }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + w*(float64(i)+0.5)
}

// Quantile returns an approximate q-quantile (q in [0,1]) from the binned
// distribution, or NaN with no samples. Quantile(0) returns the center of
// the first non-empty bin (the binned minimum).
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	var cum float64
	for i, c := range h.bins {
		cum += float64(c)
		// cum > 0 skips empty leading bins: with q = 0 the target is 0
		// and a bare cum >= target would report BinCenter(0) even when
		// no sample ever landed there.
		if cum >= target && cum > 0 {
			return h.BinCenter(i)
		}
	}
	return h.BinCenter(len(h.bins) - 1)
}

// Series records a downsampled time series: every Stride-th sample is kept.
type Series struct {
	Stride uint64
	Xs     []uint64
	Ys     []float64
	n      uint64
}

// NewSeries returns a series keeping one sample per stride ticks.
func NewSeries(stride uint64) *Series {
	if stride == 0 {
		stride = 1
	}
	return &Series{Stride: stride}
}

// Add records sample y at tick x if x falls on the stride.
func (s *Series) Add(x uint64, y float64) {
	if s.n%s.Stride == 0 {
		s.Xs = append(s.Xs, x)
		s.Ys = append(s.Ys, y)
	}
	s.n++
}

// Bump advances the tick counter by n without offering samples, as if Add
// had been called n times on ticks that fall between retained points.
// Strided producers that only materialize values on retention boundaries
// use it to keep the stride phase identical to a per-tick caller.
func (s *Series) Bump(n uint64) { s.n += n }

// Len returns the number of retained points.
func (s *Series) Len() int { return len(s.Xs) }

// Max returns the maximum retained value, or -Inf when empty.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, y := range s.Ys {
		if y > m {
			m = y
		}
	}
	return m
}

// GeoMean returns the geometric mean of xs; zero or negative entries are
// skipped (they would otherwise poison the product). Returns 0 for an empty
// or all-invalid input.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percent formats a fraction as a fixed-width percentage.
func Percent(frac float64) string { return fmt.Sprintf("%6.2f%%", frac*100) }

// Table is a minimal fixed-width text table used by cmd/tables to print the
// paper's tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with columns padded to their widest cell.
func (t *Table) String() string {
	ncol := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	width := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := ncol*2 - 2
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// SortedKeys returns the keys of m in sorted order; used to make map-driven
// reports deterministic.
func SortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
