package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.N() != 0 {
		t.Fatalf("zero Running not zero: mean=%v n=%v", r.Mean(), r.N())
	}
	for _, x := range []float64{3, 1, 4, 1, 5} {
		r.Add(x)
	}
	if r.N() != 5 {
		t.Errorf("N = %d, want 5", r.N())
	}
	if r.Min() != 1 || r.Max() != 5 {
		t.Errorf("min/max = %v/%v, want 1/5", r.Min(), r.Max())
	}
	if got, want := r.Mean(), 14.0/5; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, want)
	}
}

func TestRunningSingleNegative(t *testing.T) {
	var r Running
	r.Add(-2)
	if r.Min() != -2 || r.Max() != -2 {
		t.Errorf("min/max = %v/%v, want -2/-2", r.Min(), r.Max())
	}
}

func TestBoxcarWarmupAndSteady(t *testing.T) {
	b := NewBoxcar(4)
	if b.Full() {
		t.Fatal("new boxcar reports full")
	}
	if got := b.Add(8); got != 8 {
		t.Errorf("first avg = %v, want 8", got)
	}
	b.Add(0)
	if got := b.Avg(); got != 4 {
		t.Errorf("partial avg = %v, want 4", got)
	}
	b.Add(0)
	b.Add(0)
	if !b.Full() {
		t.Error("boxcar should be full after window samples")
	}
	// Window now holds {8,0,0,0}; pushing 4 evicts the 8.
	if got := b.Add(4); got != 1 {
		t.Errorf("avg = %v, want 1", got)
	}
}

func TestBoxcarReset(t *testing.T) {
	b := NewBoxcar(3)
	b.Add(5)
	b.Add(5)
	b.Reset()
	if b.Avg() != 0 || b.Full() {
		t.Errorf("after reset: avg=%v full=%v", b.Avg(), b.Full())
	}
}

func TestBoxcarPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBoxcar(0) did not panic")
		}
	}()
	NewBoxcar(0)
}

// Property: a full boxcar average always lies within [min, max] of the last
// window of samples, and matches a direct recomputation.
func TestBoxcarMatchesDirectAverage(t *testing.T) {
	f := func(raw []float64, w8 uint8) bool {
		w := int(w8%16) + 1
		b := NewBoxcar(w)
		samples := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			samples = append(samples, x)
			b.Add(x)
		}
		n := len(samples)
		if n == 0 {
			return b.Avg() == 0
		}
		lo := n - w
		if lo < 0 {
			lo = 0
		}
		var sum float64
		for _, x := range samples[lo:] {
			sum += x
		}
		want := sum / float64(n-lo)
		return math.Abs(b.Avg()-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBoxcarRecoversFromCatastrophicAbsorption pins the incremental-sum
// drift fix: a large transient passing through the window used to destroy
// the running sum permanently. With sum ~ 1e17, adding 1.0 is fully
// absorbed (the ulp at 1e17 is 16), so when the spike was evicted the
// incremental update `sum += 1 - spike` left ~1 instead of the true 8 —
// and without the recompute-on-wrap the average stayed wrong forever.
func TestBoxcarRecoversFromCatastrophicAbsorption(t *testing.T) {
	const w = 8
	const spike = 1e17
	b := NewBoxcar(w)
	feed := func(xs ...float64) {
		for _, x := range xs {
			b.Add(x)
		}
	}
	ones := make([]float64, w)
	for i := range ones {
		ones[i] = 1
	}
	feed(ones...)       // steady window of 1s
	feed(spike)         // transient enters
	feed(ones[:w-1]...) // window wraps with the spike inside
	feed(ones...)       // transient evicted, another full wrap
	if got := b.Avg(); got != 1 {
		t.Fatalf("average after transient passed = %v, want exactly 1", got)
	}

	// And against a naive O(n) recomputation at every step of a stream
	// that keeps pushing large/small magnitude flips through the window.
	b.Reset()
	var hist []float64
	for i := 0; i < 10*w; i++ {
		x := 1.0
		if i%11 == 0 {
			x = 1e15
		}
		hist = append(hist, x)
		got := b.Add(x)
		lo := len(hist) - w
		if lo < 0 {
			lo = 0
		}
		var sum float64
		for _, v := range hist[lo:] {
			sum += v
		}
		want := sum / float64(len(hist)-lo)
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Fatalf("step %d: incremental avg %v diverged from naive %v", i, got, want)
		}
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.25)
	for i := 0; i < 200; i++ {
		e.Add(7)
	}
	if math.Abs(e.Value()-7) > 1e-9 {
		t.Errorf("EWMA of constant 7 = %v", e.Value())
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestHistogramBinningAndQuantile(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Errorf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
	if q := h.Quantile(0.5); math.Abs(q-4.5) > 1.0 {
		t.Errorf("median = %v, want ~4.5", q)
	}
	// Out-of-range samples clamp to edge bins.
	h.Add(-100)
	h.Add(+100)
	if h.Bin(0) != 2 || h.Bin(9) != 2 {
		t.Errorf("edge bins = %d,%d, want 2,2", h.Bin(0), h.Bin(9))
	}
}

func TestHistogramEmptyQuantileIsNaN(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("quantile of empty histogram should be NaN")
	}
}

// TestHistogramQuantileZeroSkipsEmptyBins pins the q=0 fix: with every
// sample in the last bin, Quantile(0) must report that bin, not the empty
// first one (target = 0 used to satisfy cum >= target immediately).
func TestHistogramQuantileZeroSkipsEmptyBins(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 5; i++ {
		h.Add(9.5)
	}
	if q := h.Quantile(0); q != h.BinCenter(9) {
		t.Errorf("Quantile(0) = %v, want first non-empty bin center %v", q, h.BinCenter(9))
	}
	// With mass in bin 0 the answer is unchanged from the old behaviour.
	h2 := NewHistogram(0, 10, 10)
	h2.Add(0.2)
	h2.Add(9.5)
	if q := h2.Quantile(0); q != h2.BinCenter(0) {
		t.Errorf("Quantile(0) = %v, want %v", q, h2.BinCenter(0))
	}
	// Negative q clamps to 0 and follows the same rule.
	if q := h.Quantile(-1); q != h.BinCenter(9) {
		t.Errorf("Quantile(-1) = %v, want %v", q, h.BinCenter(9))
	}
}

func TestSeriesStride(t *testing.T) {
	s := NewSeries(10)
	for i := uint64(0); i < 100; i++ {
		s.Add(i, float64(i))
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d, want 10", s.Len())
	}
	if s.Xs[0] != 0 || s.Xs[9] != 90 {
		t.Errorf("xs = %v..%v, want 0..90", s.Xs[0], s.Xs[9])
	}
	if s.Max() != 90 {
		t.Errorf("max = %v, want 90", s.Max())
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v, want 0", g)
	}
	// Non-positive entries are skipped.
	if g := GeoMean([]float64{0, -3, 4}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean with invalid entries = %v, want 4", g)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v, want 2", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("mean(nil) = %v, want 0", m)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "23456")
	out := tab.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "23456") {
		t.Errorf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	ks := SortedKeys(m)
	if len(ks) != 3 || ks[0] != "a" || ks[2] != "c" {
		t.Errorf("sorted keys = %v", ks)
	}
}

func TestRunningVariance(t *testing.T) {
	var r Running
	if r.Variance() != 0 || r.StdDev() != 0 {
		t.Error("empty variance not 0")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	// Known population variance 4, stddev 2.
	if math.Abs(r.Variance()-4) > 1e-12 {
		t.Errorf("variance = %v, want 4", r.Variance())
	}
	if math.Abs(r.StdDev()-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", r.StdDev())
	}
}

// Property: Welford mean matches sum/n, variance is non-negative.
func TestRunningWelfordProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var r Running
		var sum float64
		n := 0
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			r.Add(x)
			sum += x
			n++
		}
		if n == 0 {
			return true
		}
		want := sum / float64(n)
		return math.Abs(r.Mean()-want) <= 1e-6*(1+math.Abs(want)) && r.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
