package bpred

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func newDefault() *Predictor { return New(DefaultConfig()) }

func TestNewPanicsOnBadConfig(t *testing.T) {
	bad := []Config{
		{},
		func() Config { c := DefaultConfig(); c.BimodEntries = 1000; return c }(),
		func() Config { c := DefaultConfig(); c.HistoryBits = 0; return c }(),
		func() Config { c := DefaultConfig(); c.RASEntries = 0; return c }(),
		func() Config { c := DefaultConfig(); c.BTBAssoc = 0; return c }(),
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New(%+v) did not panic", i, cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	c = c.update(false)
	if c != 0 {
		t.Errorf("counter underflowed to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter = %d, want saturated 3", c)
	}
	if !c.taken() {
		t.Error("saturated counter should predict taken")
	}
}

// A branch with a constant direction must be learned almost perfectly.
func TestLearnsAlwaysTaken(t *testing.T) {
	p := newDefault()
	const pc, target = 0x1000, 0x2000
	miss := 0
	for i := 0; i < 1000; i++ {
		pr := p.Predict(pc, isa.OpBranch)
		if !pr.Taken {
			miss++
		}
		if pr.Taken != true {
			p.Recover(isa.OpBranch, true, pr)
		}
		p.Update(pc, isa.OpBranch, true, target, pr)
	}
	if miss > 5 {
		t.Errorf("%d/1000 mispredictions on always-taken branch", miss)
	}
	// After warm-up, the BTB must supply the target.
	pr := p.Predict(pc, isa.OpBranch)
	if !pr.BTBHit || pr.Target != target {
		t.Errorf("BTB miss after training: hit=%v target=%#x", pr.BTBHit, pr.Target)
	}
	p.Recover(isa.OpBranch, true, pr) // leave history sane
}

// A short repeating pattern (TTNTTN...) exceeds bimodal but the 12-bit
// global history component must capture it, so the hybrid should approach
// perfect prediction.
func TestGlobalComponentLearnsPattern(t *testing.T) {
	p := newDefault()
	const pc = 0x4440
	pattern := []bool{true, true, false}
	miss := 0
	n := 3000
	for i := 0; i < n; i++ {
		taken := pattern[i%len(pattern)]
		pr := p.Predict(pc, isa.OpBranch)
		if pr.Taken != taken {
			miss++
			p.Recover(isa.OpBranch, taken, pr)
		}
		p.Update(pc, isa.OpBranch, taken, 0x5000, pr)
	}
	// Allow generous warm-up; steady state must be near-perfect.
	if miss > n/10 {
		t.Errorf("%d/%d mispredictions on periodic pattern", miss, n)
	}
	if got := p.Stats().MispredictRate(); got > 0.1 {
		t.Errorf("mispredict rate = %v", got)
	}
}

func TestRASPredictsReturns(t *testing.T) {
	p := newDefault()
	// call at 0x100 -> function at 0x900; return must predict 0x104.
	prCall := p.Predict(0x100, isa.OpCall)
	if !prCall.Taken {
		t.Error("call not predicted taken")
	}
	p.Update(0x100, isa.OpCall, true, 0x900, prCall)
	prRet := p.Predict(0x900, isa.OpReturn)
	if !prRet.BTBHit || prRet.Target != 0x104 {
		t.Errorf("return predicted %#x (hit=%v), want 0x104", prRet.Target, prRet.BTBHit)
	}
	p.Update(0x900, isa.OpReturn, true, 0x104, prRet)
	if p.Stats().RASMiss != 0 {
		t.Errorf("RAS misses = %d, want 0", p.Stats().RASMiss)
	}
}

func TestRASNested(t *testing.T) {
	p := newDefault()
	// Nested calls: 0x100 -> f, inside f at 0x904 -> g, g returns to 0x908,
	// f returns to 0x104.
	pr1 := p.Predict(0x100, isa.OpCall)
	p.Update(0x100, isa.OpCall, true, 0x900, pr1)
	pr2 := p.Predict(0x904, isa.OpCall)
	p.Update(0x904, isa.OpCall, true, 0xa00, pr2)
	r1 := p.Predict(0xa00, isa.OpReturn)
	if r1.Target != 0x908 {
		t.Errorf("inner return -> %#x, want 0x908", r1.Target)
	}
	p.Update(0xa00, isa.OpReturn, true, 0x908, r1)
	r2 := p.Predict(0x900, isa.OpReturn)
	if r2.Target != 0x104 {
		t.Errorf("outer return -> %#x, want 0x104", r2.Target)
	}
	p.Update(0x900, isa.OpReturn, true, 0x104, r2)
}

// Speculative history must be repaired after a mispredict: predicting and
// recovering must leave the history equal to shifting in the actual
// outcome.
func TestRecoverRestoresHistory(t *testing.T) {
	p := newDefault()
	// Establish nonzero history.
	for i := 0; i < 20; i++ {
		pr := p.Predict(0x200, isa.OpBranch)
		p.Update(0x200, isa.OpBranch, i%2 == 0, 0x300, pr)
		if pr.Taken != (i%2 == 0) {
			p.Recover(isa.OpBranch, i%2 == 0, pr)
		}
	}
	before := p.History()
	pr := p.Predict(0x204, isa.OpBranch)
	// Force a "mispredict" with actual = !pred.
	actual := !pr.Taken
	p.Recover(isa.OpBranch, actual, pr)
	want := (before << 1) & ((1 << 12) - 1)
	if actual {
		want |= 1
	}
	if p.History() != want {
		t.Errorf("recovered history = %#x, want %#x", p.History(), want)
	}
}

func TestRecoverRestoresRAS(t *testing.T) {
	p := newDefault()
	pr1 := p.Predict(0x100, isa.OpCall) // pushes 0x104
	p.Update(0x100, isa.OpCall, true, 0x900, pr1)
	// A wrong-path call pushes garbage...
	prWrong := p.Predict(0x500, isa.OpCall)
	// ...then the wrong path is squashed.
	p.Recover(isa.OpCall, true, prWrong)
	r := p.Predict(0x900, isa.OpReturn)
	if r.Target != 0x104 {
		t.Errorf("return after RAS recovery -> %#x, want 0x104", r.Target)
	}
}

func TestBTBReplacementLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBSets = 1
	cfg.BTBAssoc = 2
	p := New(cfg)
	ins := func(pc, tgt uint64) {
		pr := p.Predict(pc, isa.OpJump)
		p.Update(pc, isa.OpJump, true, tgt, pr)
	}
	lookup := func(pc uint64) (uint64, bool) {
		pr := p.Predict(pc, isa.OpJump)
		p.Update(pc, isa.OpJump, true, pr.Target, pr)
		return pr.Target, pr.BTBHit
	}
	ins(0x10, 0x100)
	ins(0x20, 0x200)
	// Touch 0x10 so 0x20 is LRU.
	if tgt, hit := lookup(0x10); !hit || tgt != 0x100 {
		t.Fatalf("lookup 0x10 = %#x,%v", tgt, hit)
	}
	ins(0x30, 0x300) // evicts 0x20
	if _, hit := p.btbLookup(0x20); hit {
		t.Error("0x20 survived eviction; LRU broken")
	}
	if _, hit := p.btbLookup(0x10); !hit {
		t.Error("0x10 evicted despite being MRU")
	}
}

func TestPredictPanicsOnNonControl(t *testing.T) {
	p := newDefault()
	defer func() {
		if recover() == nil {
			t.Fatal("Predict(OpIntALU) did not panic")
		}
	}()
	p.Predict(0x100, isa.OpIntALU)
}

func TestStatsCountTraffic(t *testing.T) {
	p := newDefault()
	pr := p.Predict(0x100, isa.OpBranch)
	p.Update(0x100, isa.OpBranch, true, 0x200, pr)
	s := p.Stats()
	if s.Lookups != 1 || s.Updates != 1 || s.CondLookups != 1 {
		t.Errorf("stats = %+v", s)
	}
	if (Stats{}).MispredictRate() != 0 {
		t.Error("empty mispredict rate != 0")
	}
}

// A random (uncorrelated) branch must show a high mispredict rate — the
// predictor must not be accidentally oracle-like, since workload
// predictability calibration depends on this.
func TestRandomBranchIsHardToPredict(t *testing.T) {
	p := newDefault()
	st := uint64(0x123456789)
	rnd := func() bool {
		st ^= st << 13
		st ^= st >> 7
		st ^= st << 17
		return st&1 == 1
	}
	miss := 0
	const n = 4000
	for i := 0; i < n; i++ {
		taken := rnd()
		pr := p.Predict(0x700, isa.OpBranch)
		if pr.Taken != taken {
			miss++
			p.Recover(isa.OpBranch, taken, pr)
		}
		p.Update(0x700, isa.OpBranch, taken, 0x800, pr)
	}
	if rate := float64(miss) / n; rate < 0.3 {
		t.Errorf("mispredict rate on random stream = %v, want >= 0.3", rate)
	}
}

// Property: for any interleaving of predictions with immediate recovery,
// the global history always equals the actual outcome sequence of the
// last 12 conditional branches — the speculative-update + repair pair
// never corrupts history.
func TestHistoryTracksOutcomesProperty(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		p := newDefault()
		rnd := seed | 1
		next := func() uint64 {
			rnd ^= rnd << 13
			rnd ^= rnd >> 7
			rnd ^= rnd << 17
			return rnd
		}
		var want uint64
		n := int(n8)%200 + 12
		for i := 0; i < n; i++ {
			pc := 0x1000 + (next()%64)*4
			taken := next()&1 == 1
			pr := p.Predict(pc, isa.OpBranch)
			if pr.Taken != taken {
				p.Recover(isa.OpBranch, taken, pr)
			}
			p.Update(pc, isa.OpBranch, taken, pc+64, pr)
			want = (want << 1) & 0xfff
			if taken {
				want |= 1
			}
		}
		return p.History() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: prediction statistics are internally consistent — conditional
// mispredictions never exceed conditional lookups.
func TestStatsConsistencyProperty(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		p := newDefault()
		rnd := seed | 1
		next := func() uint64 {
			rnd ^= rnd << 13
			rnd ^= rnd >> 7
			rnd ^= rnd << 17
			return rnd
		}
		classes := []isa.OpClass{isa.OpBranch, isa.OpJump, isa.OpCall, isa.OpReturn}
		for i := 0; i < int(n8); i++ {
			cls := classes[next()%4]
			pc := 0x2000 + (next()%32)*4
			pr := p.Predict(pc, cls)
			taken := cls != isa.OpBranch || next()&1 == 1
			if pr.Taken != taken {
				p.Recover(cls, taken, pr)
			}
			p.Update(pc, cls, taken, pc+8, pr)
		}
		s := p.Stats()
		return s.CondMiss <= s.CondLookups && s.CondLookups <= s.Lookups &&
			s.Updates == s.Lookups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
