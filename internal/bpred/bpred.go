// Package bpred implements the branch prediction hierarchy of the simulated
// Alpha-21264-like core (Table 2): a hybrid predictor combining a 4K-entry
// bimodal predictor and a 4K-entry/12-bit-history GAg two-level predictor
// under a 4K-entry bimodal-style chooser, a 1K-entry 2-way branch target
// buffer, and a 32-entry return-address stack.
//
// Following Section 5.1, the predictor is updated speculatively at lookup
// time and repaired after a misprediction: global history shifts in the
// *predicted* outcome at lookup, and Recover restores it (and the RAS top)
// from the snapshot taken at prediction.
package bpred

import (
	"fmt"

	"repro/internal/isa"
)

// Config sizes the predictor. All table sizes must be powers of two.
type Config struct {
	BimodEntries   int // bimodal PHT entries
	GlobalEntries  int // GAg PHT entries
	HistoryBits    int // GAg global history length
	ChooserEntries int // chooser PHT entries
	BTBSets        int
	BTBAssoc       int
	RASEntries     int
}

// DefaultConfig returns the paper's Table 2 configuration.
func DefaultConfig() Config {
	return Config{
		BimodEntries:   4096,
		GlobalEntries:  4096,
		HistoryBits:    12,
		ChooserEntries: 4096,
		BTBSets:        512, // 1K entries, 2-way
		BTBAssoc:       2,
		RASEntries:     32,
	}
}

// counter is a 2-bit saturating counter.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64
}

// Prediction carries the outcome of a lookup plus the snapshot needed to
// repair speculative state after a misprediction.
type Prediction struct {
	// Taken is the predicted direction (always true for unconditional
	// control transfers).
	Taken bool
	// Target is the predicted target PC; 0 when the BTB misses for a
	// taken prediction (forcing a fetch redirect at resolve).
	Target uint64
	// BTBHit reports whether the target came from the BTB (or RAS).
	BTBHit bool
	// UsedGlobal reports whether the chooser selected the GAg component.
	UsedGlobal bool

	// Snapshot for Recover.
	histBefore uint64
	rasTopIdx  int
	rasTopVal  uint64
}

// Stats counts predictor traffic and accuracy.
type Stats struct {
	Lookups     uint64
	Updates     uint64
	CondLookups uint64
	CondMiss    uint64 // conditional direction mispredictions
	TargetMiss  uint64 // taken with unknown/incorrect target
	RASMiss     uint64
}

// Predictor is the full hybrid prediction unit.
type Predictor struct {
	cfg     Config
	bimod   []counter
	global  []counter
	chooser []counter
	hist    uint64
	histMax uint64
	btb     []btbEntry
	ras     []uint64
	rasTop  int
	clock   uint64
	stats   Stats
}

func pow2(name string, v int) {
	if v <= 0 || v&(v-1) != 0 {
		panic(fmt.Sprintf("bpred: %s = %d, want a power of two", name, v))
	}
}

// New builds a predictor; all counters start weakly not-taken (bimod) and
// the chooser starts weakly preferring the bimodal component, matching
// SimpleScalar's initialization.
func New(cfg Config) *Predictor {
	pow2("BimodEntries", cfg.BimodEntries)
	pow2("GlobalEntries", cfg.GlobalEntries)
	pow2("ChooserEntries", cfg.ChooserEntries)
	pow2("BTBSets", cfg.BTBSets)
	if cfg.BTBAssoc <= 0 || cfg.RASEntries <= 0 || cfg.HistoryBits <= 0 || cfg.HistoryBits > 30 {
		panic(fmt.Sprintf("bpred: invalid config %+v", cfg))
	}
	p := &Predictor{
		cfg:     cfg,
		bimod:   make([]counter, cfg.BimodEntries),
		global:  make([]counter, cfg.GlobalEntries),
		chooser: make([]counter, cfg.ChooserEntries),
		histMax: uint64(1)<<cfg.HistoryBits - 1,
		btb:     make([]btbEntry, cfg.BTBSets*cfg.BTBAssoc),
		ras:     make([]uint64, cfg.RASEntries),
	}
	for i := range p.bimod {
		p.bimod[i] = 1
	}
	for i := range p.global {
		p.global[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 1 // < 2 selects bimodal
	}
	return p
}

// Stats returns a copy of the traffic counters.
func (p *Predictor) Stats() Stats { return p.stats }

func (p *Predictor) bimodIdx(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.BimodEntries-1))
}

func (p *Predictor) globalIdx() int {
	return int(p.hist & uint64(p.cfg.GlobalEntries-1))
}

func (p *Predictor) chooserIdx(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.ChooserEntries-1))
}

func (p *Predictor) btbSet(pc uint64) []btbEntry {
	s := int((pc >> 2) & uint64(p.cfg.BTBSets-1))
	return p.btb[s*p.cfg.BTBAssoc : (s+1)*p.cfg.BTBAssoc]
}

func (p *Predictor) btbLookup(pc uint64) (uint64, bool) {
	s := p.btbSet(pc)
	for i := range s {
		if s[i].valid && s[i].tag == pc {
			s[i].lru = p.clock
			return s[i].target, true
		}
	}
	return 0, false
}

func (p *Predictor) btbInsert(pc, target uint64) {
	s := p.btbSet(pc)
	victim := 0
	for i := range s {
		if s[i].valid && s[i].tag == pc {
			victim = i
			break
		}
		if !s[i].valid {
			victim = i
			break
		}
		if s[i].lru < s[victim].lru {
			victim = i
		}
	}
	s[victim] = btbEntry{valid: true, tag: pc, target: target, lru: p.clock}
}

// Predict looks up the direction and target for a control transfer at pc
// and speculatively updates the global history and return-address stack.
// The returned Prediction must be passed back to Update (on resolve) and,
// on a misprediction, to Recover.
func (p *Predictor) Predict(pc uint64, class isa.OpClass) Prediction {
	p.clock++
	p.stats.Lookups++
	pr := Prediction{
		histBefore: p.hist,
		rasTopIdx:  p.rasTop,
		rasTopVal:  p.ras[p.rasTop%len(p.ras)],
	}
	switch class {
	case isa.OpReturn:
		pr.Taken = true
		if p.rasTop > 0 {
			p.rasTop--
			pr.Target = p.ras[p.rasTop%len(p.ras)]
			pr.BTBHit = true
		}
		return pr
	case isa.OpCall:
		pr.Taken = true
		p.ras[p.rasTop%len(p.ras)] = pc + 4
		p.rasTop++
		pr.Target, pr.BTBHit = p.btbLookup(pc)
		return pr
	case isa.OpJump:
		pr.Taken = true
		pr.Target, pr.BTBHit = p.btbLookup(pc)
		return pr
	case isa.OpBranch:
		p.stats.CondLookups++
		bi := p.bimod[p.bimodIdx(pc)]
		gi := p.global[p.globalIdx()]
		ch := p.chooser[p.chooserIdx(pc)]
		pr.UsedGlobal = ch.taken()
		if pr.UsedGlobal {
			pr.Taken = gi.taken()
		} else {
			pr.Taken = bi.taken()
		}
		// Speculative history update with the predicted direction.
		p.hist = (p.hist << 1) & p.histMax
		if pr.Taken {
			p.hist |= 1
		}
		if pr.Taken {
			pr.Target, pr.BTBHit = p.btbLookup(pc)
		}
		return pr
	default:
		panic(fmt.Sprintf("bpred: Predict on non-control class %v", class))
	}
}

// Update trains the predictor with the resolved outcome of the branch that
// produced pr. It must be called exactly once per Predict, in program
// order, at resolve/commit time.
func (p *Predictor) Update(pc uint64, class isa.OpClass, taken bool, target uint64, pr Prediction) {
	p.clock++
	p.stats.Updates++
	if class == isa.OpBranch {
		// Components train on the outcome; the chooser trains toward
		// whichever component was right (when they disagree).
		biIdx := p.bimodIdx(pc)
		// Global index must use the history *at prediction time*.
		giIdx := int(pr.histBefore & uint64(p.cfg.GlobalEntries-1))
		biRight := p.bimod[biIdx].taken() == taken
		giRight := p.global[giIdx].taken() == taken
		p.bimod[biIdx] = p.bimod[biIdx].update(taken)
		p.global[giIdx] = p.global[giIdx].update(taken)
		if biRight != giRight {
			ci := p.chooserIdx(pc)
			p.chooser[ci] = p.chooser[ci].update(giRight)
		}
		if pr.Taken != taken {
			p.stats.CondMiss++
		}
		if taken && (!pr.BTBHit || pr.Target != target) {
			p.stats.TargetMiss++
		}
	} else if class == isa.OpReturn {
		if !pr.BTBHit || pr.Target != target {
			p.stats.RASMiss++
		}
	} else if pr.Target != target || !pr.BTBHit {
		p.stats.TargetMiss++
	}
	if taken && class != isa.OpReturn {
		p.btbInsert(pc, target)
	}
}

// Recover repairs the speculative global history and return-address stack
// after the branch that produced pr turns out mispredicted: history is
// restored to its pre-prediction value with the *actual* outcome shifted
// in, and the RAS top is restored from the snapshot.
func (p *Predictor) Recover(class isa.OpClass, taken bool, pr Prediction) {
	if class == isa.OpBranch {
		p.hist = (pr.histBefore << 1) & p.histMax
		if taken {
			p.hist |= 1
		}
	} else {
		p.hist = pr.histBefore
	}
	p.rasTop = pr.rasTopIdx
	p.ras[p.rasTop%len(p.ras)] = pr.rasTopVal
}

// Clone returns an independent deep copy of the predictor: all tables,
// the global history, the RAS, and the statistics. Gang execution forks a
// diverged simulation by cloning the shared core; predictions in the clone
// must match what the original would have produced bit for bit.
func (p *Predictor) Clone() *Predictor {
	q := *p
	q.bimod = append(p.bimod[:0:0], p.bimod...)
	q.global = append(p.global[:0:0], p.global...)
	q.chooser = append(p.chooser[:0:0], p.chooser...)
	q.btb = append(p.btb[:0:0], p.btb...)
	q.ras = append(p.ras[:0:0], p.ras...)
	return &q
}

// History returns the current global history register (tests).
func (p *Predictor) History() uint64 { return p.hist }

// MispredictRate returns the conditional-branch direction misprediction
// rate, or 0 before any conditional lookups.
func (s Stats) MispredictRate() float64 {
	if s.CondLookups == 0 {
		return 0
	}
	return float64(s.CondMiss) / float64(s.CondLookups)
}
