package power

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/pipeline"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGatingStyleStrings(t *testing.T) {
	if GateNone.String() != "cc0" || GateIdeal.String() != "cc2" || GateResidual10.String() != "cc3" {
		t.Error("gating style names wrong")
	}
}

func TestArrayEnergiesOrdering(t *testing.T) {
	tech := DefaultTech()
	a := ArraySpec{Rows: 64, Bits: 64, ReadPorts: 2, WritePorts: 2, CAM: true}
	r, w, m := a.ReadEnergy(tech), a.WriteEnergy(tech), a.MatchEnergy(tech)
	if r <= 0 || w <= 0 || m <= 0 {
		t.Fatalf("non-positive energies: %g %g %g", r, w, m)
	}
	// Writes drive full bitline swing; reads only the sense swing.
	if w <= r {
		t.Errorf("write energy %g <= read energy %g", w, r)
	}
}

func TestArrayEnergyScalesWithGeometry(t *testing.T) {
	tech := DefaultTech()
	small := ArraySpec{Rows: 64, Bits: 32, ReadPorts: 1, WritePorts: 1}
	big := ArraySpec{Rows: 4096, Bits: 128, ReadPorts: 1, WritePorts: 1}
	if big.ReadEnergy(tech) <= small.ReadEnergy(tech) {
		t.Error("bigger array not more expensive to read")
	}
}

func TestMatchEnergyPanicsOnNonCAM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatchEnergy on non-CAM did not panic")
		}
	}()
	ArraySpec{Rows: 8, Bits: 8}.MatchEnergy(DefaultTech())
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tech.FreqHz = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero frequency accepted")
	}
	cfg = DefaultConfig()
	cfg.Blocks = nil
	if _, err := New(cfg); err == nil {
		t.Error("empty block set accepted")
	}
}

// The calibration invariant: at maximum activity every block dissipates
// exactly its Table 3 peak power.
func TestPeakCalibration(t *testing.T) {
	m := newModel(t)
	pc := pipeline.DefaultConfig()
	act := pipeline.Activity{
		FetchEnabled:  true,
		Fetched:       pc.FetchWidth,
		BPredAccess:   pc.FetchWidth + 2,
		WindowInserts: pc.DecodeWidth,
		WindowIssues:  pc.IssueWidth,
		WindowWakeups: pc.IssueWidth,
		LSQInserts:    pc.DecodeWidth,
		LSQSearches:   pc.MemPorts,
		RegReads:      2 * pc.IssueWidth,
		RegWrites:     pc.IssueWidth,
		IntOps:        pc.IntIssue,
		FPOps:         pc.FPIssue,
		DCacheAccess:  pc.MemPorts + 2,
		Commits:       pc.CommitWidth,
	}
	out := make([]float64, m.NumBlocks())
	// Full-port activity far exceeds the hot-rate calibration anchor, so
	// once the smoothing filter converges every block clamps at its
	// Table 3 peak.
	for i := 0; i < 2000; i++ {
		m.BlockPower(&act, out)
	}
	for i, p := range out {
		want := 0.0
		for _, b := range floorplan.Default() {
			if b.ID == m.BlockID(i) {
				want = b.PeakPower
			}
		}
		if math.Abs(p-want) > 1e-9 {
			t.Errorf("%v peak power = %v, want %v", m.BlockID(i), p, want)
		}
	}
}

func TestIdlePowerByGatingStyle(t *testing.T) {
	var idle pipeline.Activity
	for _, tc := range []struct {
		style GatingStyle
		frac  float64
	}{
		{GateNone, 1.0},
		{GateIdeal, 0.0},
		{GateResidual10, 0.1},
	} {
		cfg := DefaultConfig()
		cfg.Gating = tc.style
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, m.NumBlocks())
		m.BlockPower(&idle, out)
		for i, p := range out {
			want := tc.frac * blockPeak(m.BlockID(i))
			if math.Abs(p-want) > 1e-9 {
				t.Errorf("%v idle %v power = %v, want %v", tc.style, m.BlockID(i), p, want)
			}
		}
	}
}

func blockPeak(id floorplan.BlockID) float64 {
	for _, b := range floorplan.Default() {
		if b.ID == id {
			return b.PeakPower
		}
	}
	return 0
}

func TestPowerMonotoneInActivity(t *testing.T) {
	// Two fresh models (the smoothing filter is stateful): converge each
	// on its own steady activity level and compare.
	run := func(act pipeline.Activity) []float64 {
		m := newModel(t)
		out := make([]float64, m.NumBlocks())
		for i := 0; i < 2000; i++ {
			m.BlockPower(&act, out)
		}
		return out
	}
	out1 := run(pipeline.Activity{IntOps: 1, DCacheAccess: 1, WindowIssues: 1})
	out2 := run(pipeline.Activity{IntOps: 4, DCacheAccess: 3, WindowIssues: 5, WindowInserts: 3})
	m := newModel(t)
	for i := range out1 {
		if out2[i] < out1[i]-1e-12 {
			t.Errorf("%v power decreased with more activity", m.BlockID(i))
		}
	}
}

func TestPowerNeverExceedsPeak(t *testing.T) {
	m := newModel(t)
	crazy := pipeline.Activity{
		BPredAccess: 1000, WindowInserts: 1000, WindowIssues: 1000,
		WindowWakeups: 1000, LSQInserts: 1000, LSQSearches: 1000,
		RegReads: 1000, RegWrites: 1000, IntOps: 1000, FPOps: 1000,
		DCacheAccess: 1000,
	}
	out := make([]float64, m.NumBlocks())
	for n := 0; n < 100; n++ {
		m.BlockPower(&crazy, out)
		for i, p := range out {
			if p > blockPeak(m.BlockID(i))+1e-9 {
				t.Errorf("%v power %v exceeds peak", m.BlockID(i), p)
			}
		}
	}
}

func TestBlockPowerPanicsOnWrongLength(t *testing.T) {
	m := newModel(t)
	defer func() {
		if recover() == nil {
			t.Fatal("BlockPower with short slice did not panic")
		}
	}()
	m.BlockPower(&pipeline.Activity{}, make([]float64, 1))
}

func TestChipPowerIncludesUntrackedShare(t *testing.T) {
	m := newModel(t)
	out := make([]float64, m.NumBlocks())
	idle := pipeline.Activity{}
	m.BlockPower(&idle, out)
	chipIdle := m.ChipPower(&idle, out)
	var blockSum float64
	for _, p := range out {
		blockSum += p
	}
	if chipIdle <= blockSum {
		t.Error("chip power does not include untracked base share")
	}
	busy := pipeline.Activity{FetchEnabled: true, Fetched: 4, Commits: 6}
	m.BlockPower(&busy, out)
	chipBusy := m.ChipPower(&busy, out)
	if chipBusy <= chipIdle {
		t.Error("chip power not higher when busy")
	}
	if peak := m.PeakChipPower(); chipBusy > peak+1e-9 {
		t.Errorf("busy chip power %v exceeds peak %v", chipBusy, peak)
	}
}

// The whole-chip peak must land in the paper's regime (several tens of
// watts, around the 47 W chip-wide trigger and the cited ~55 W peak).
func TestChipPeakInPaperRange(t *testing.T) {
	m := newModel(t)
	peak := m.PeakChipPower()
	if peak < 50 || peak > 100 {
		t.Errorf("chip peak = %v W, want ~50-100 W", peak)
	}
}

func TestModelWorksWithZeroPipelineConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pipeline = pipeline.Config{} // must fall back to defaults
	if _, err := New(cfg); err != nil {
		t.Fatalf("zero pipeline config rejected: %v", err)
	}
}
