// Package power implements the Wattch-style per-cycle, per-structure power
// model of Section 5.1: per-access energies estimated from lumped
// capacitance models of the array structures (this file), scaled by the
// pipeline's per-cycle activity counts and a conditional clock-gating style
// (model.go), and calibrated so each block's full-tilt dissipation matches
// the Table 3 peak powers.
package power

import "fmt"

// Tech holds the process parameters of Section 5.1: 0.18 um, Vdd = 2.0 V,
// 1.5 GHz.
type Tech struct {
	// Vdd is the supply voltage in volts.
	Vdd float64
	// FreqHz is the clock frequency in Hz.
	FreqHz float64
	// BitlineSwing is the fraction of Vdd a bitline swings on a read.
	BitlineSwing float64

	// Per-element capacitances in farads, representative of 0.18 um.
	CGatePass  float64 // pass-transistor gate cap per cell port
	CDiff      float64 // drain diffusion cap per cell on a bitline
	CMetalPerM float64 // wire capacitance per meter
	CellWidth  float64 // SRAM cell width in meters (per port pitch)
	CellHeight float64 // SRAM cell height in meters
	CDecodePer float64 // decoder cap per address bit
	CMatchCell float64 // CAM matchline cap per cell
}

// DefaultTech returns the paper's technology point.
func DefaultTech() Tech {
	return Tech{
		Vdd:          2.0,
		FreqHz:       1.5e9,
		BitlineSwing: 0.25,
		CGatePass:    1.6e-15,
		CDiff:        1.9e-15,
		CMetalPerM:   2.4e-10,
		CellWidth:    2.4e-6,
		CellHeight:   1.8e-6,
		CDecodePer:   2.0e-14,
		CMatchCell:   1.2e-15,
	}
}

// CycleTime returns the clock period in seconds.
func (t Tech) CycleTime() float64 { return 1 / t.FreqHz }

// ArraySpec describes one SRAM/CAM array structure in the Wattch manner:
// a grid of Rows x Bits cells with some number of read and write ports,
// optionally with a CAM match port (for wakeup/forwarding searches).
type ArraySpec struct {
	Rows       int
	Bits       int
	ReadPorts  int
	WritePorts int
	CAM        bool
}

func (a ArraySpec) check() {
	if a.Rows <= 0 || a.Bits <= 0 {
		panic(fmt.Sprintf("power: invalid array %+v", a))
	}
}

// ports returns the total port count (capacitance on word/bitlines scales
// with ports).
func (a ArraySpec) ports() int {
	p := a.ReadPorts + a.WritePorts
	if p == 0 {
		p = 1
	}
	return p
}

// wordlineCap returns the capacitance switched on one wordline assertion:
// two pass gates per cell per port plus the metal wordline itself,
// following Wattch's array model (with the column-decoder contribution the
// paper adds in Section 5.1).
func (a ArraySpec) wordlineCap(t Tech) float64 {
	wireLen := float64(a.Bits) * t.CellWidth * float64(a.ports())
	return float64(a.Bits)*(2*t.CGatePass) + wireLen*t.CMetalPerM
}

// bitlineCap returns the capacitance of one bitline: a diffusion cap per
// row plus the metal line.
func (a ArraySpec) bitlineCap(t Tech) float64 {
	wireLen := float64(a.Rows) * t.CellHeight * float64(a.ports())
	return float64(a.Rows)*t.CDiff + wireLen*t.CMetalPerM
}

// decodeCap returns the row+column decoder capacitance per access.
func (a ArraySpec) decodeCap(t Tech) float64 {
	bits := 0
	for 1<<bits < a.Rows {
		bits++
	}
	// Column decoders (Section 5.1's modeling fix) add roughly the same
	// per-bit load again for the selected columns.
	return float64(bits+2) * t.CDecodePer
}

// ReadEnergy returns the energy in joules of one read access: decode,
// wordline at full swing, and all bitlines at reduced (sense-amp) swing.
func (a ArraySpec) ReadEnergy(t Tech) float64 {
	a.check()
	e := (a.decodeCap(t) + a.wordlineCap(t)) * t.Vdd * t.Vdd
	e += float64(a.Bits) * a.bitlineCap(t) * t.Vdd * (t.Vdd * t.BitlineSwing)
	return e
}

// WriteEnergy returns the energy of one write access: decode, wordline,
// and full-swing bitline drive.
func (a ArraySpec) WriteEnergy(t Tech) float64 {
	a.check()
	e := (a.decodeCap(t) + a.wordlineCap(t)) * t.Vdd * t.Vdd
	e += float64(a.Bits) * a.bitlineCap(t) * t.Vdd * t.Vdd
	return e
}

// MatchEnergy returns the energy of one CAM match broadcast across the
// whole array (wakeup or load/store forwarding search).
func (a ArraySpec) MatchEnergy(t Tech) float64 {
	a.check()
	if !a.CAM {
		panic(fmt.Sprintf("power: MatchEnergy on non-CAM array %+v", a))
	}
	taglines := float64(a.Bits) * t.CGatePass * float64(a.Rows)
	matchlines := float64(a.Rows) * float64(a.Bits) * t.CMatchCell
	return (taglines + matchlines) * t.Vdd * t.Vdd
}

// ALUEnergy returns the per-operation energy of a functional-unit cluster,
// modeled as an effective switched capacitance (Wattch treats FUs as fixed
// per-op energies).
func ALUEnergy(t Tech, effCap float64) float64 {
	if effCap <= 0 {
		panic(fmt.Sprintf("power: non-positive ALU capacitance %g", effCap))
	}
	return effCap * t.Vdd * t.Vdd
}

// Representative effective capacitances for the execution clusters.
const (
	IntALUCap = 9.0e-12  // F per integer op
	FPALUCap  = 22.0e-12 // F per floating-point op
)
