package power

import (
	"math"
	"testing"
)

func TestLeakagePowerExponential(t *testing.T) {
	l := DefaultLeakage()
	base := l.Power(10, 100)
	if math.Abs(base-0.5) > 1e-12 {
		t.Errorf("leakage at TRef = %v, want 0.5", base)
	}
	if got := l.Power(10, 112); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("leakage one doubling up = %v, want 1.0", got)
	}
	if got := l.Power(10, 88); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("leakage one doubling down = %v, want 0.25", got)
	}
}

func TestLeakageValidate(t *testing.T) {
	if err := (&LeakageModel{Frac0: -1, DoubleEveryK: 10}).Validate(); err == nil {
		t.Error("negative Frac0 accepted")
	}
	if err := (&LeakageModel{Frac0: 0.1, DoubleEveryK: 0}).Validate(); err == nil {
		t.Error("zero doubling accepted")
	}
	if err := DefaultLeakage().Validate(); err != nil {
		t.Error(err)
	}
}

func TestEquilibriumWithMildLeakage(t *testing.T) {
	l := DefaultLeakage()
	// Block: peak 10 W, R 2 K/W, sink 100 C, dynamic 4 W.
	temp, ok := l.Equilibrium(10, 4, 2, 100, 140)
	if !ok {
		t.Fatal("no equilibrium with mild leakage")
	}
	// Without leakage Tss = 108; leakage pushes it a bit above.
	if temp < 108 || temp > 112 {
		t.Errorf("equilibrium = %v, want slightly above 108", temp)
	}
	// Self-consistency: T = sink + R*(Pdyn + leak(T)).
	want := 100 + 2*(4+l.Power(10, temp))
	if math.Abs(temp-want) > 0.01 {
		t.Errorf("equilibrium %v not self-consistent (%v)", temp, want)
	}
}

func TestThermalRunaway(t *testing.T) {
	// Leakage doubling every 6 K from 5% of a 10 W peak through R = 2:
	// the tangency condition puts the runaway threshold analytically at
	// Pdyn = (x* - 2*L0*2^(x*/6))/2 with 2^(x*/6) = 6/(2*L0*ln2), i.e.
	// about 5.0 W.
	l := &LeakageModel{Frac0: 0.05, TRef: 100, DoubleEveryK: 6}
	if _, ok := l.Equilibrium(10, 8, 2, 100, 140); ok {
		t.Error("expected runaway at 8 W, found equilibrium")
	}
	edge := l.RunawayDynamicPower(10, 2, 100, 140)
	if edge < 4.5 || edge > 5.5 {
		t.Errorf("runaway dynamic power = %v, want ~5.0", edge)
	}
	// Just below the edge: an equilibrium exists.
	if _, ok := l.Equilibrium(10, edge*0.95, 2, 100, 140); !ok {
		t.Error("no equilibrium just below the runaway threshold")
	}
}
