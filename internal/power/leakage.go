package power

import (
	"fmt"
	"math"
)

// LeakageModel adds temperature-dependent static power — the
// leakage/temperature positive feedback that motivates the paper's
// citation of Wong et al.'s leakage-control circuits and becomes
// first-order in later technology nodes. Leakage grows exponentially with
// temperature:
//
//	P_leak(T) = Frac0 * Ppeak * 2^((T-TRef)/DoubleEveryK)
//
// Because hotter blocks leak more and leaking blocks get hotter, an
// operating point only exists while the cooling path can absorb the
// feedback; past the runaway threshold the block has no equilibrium below
// any safe temperature and only DTM (cutting dynamic power) can hold it.
type LeakageModel struct {
	// Frac0 is the leakage fraction of block peak power at TRef.
	Frac0 float64
	// TRef is the reference temperature in Celsius.
	TRef float64
	// DoubleEveryK is the temperature increase that doubles leakage.
	DoubleEveryK float64
}

// DefaultLeakage returns a mild 0.18 um-class model: 5% of peak at the
// 100 C operating point, doubling every 12 K.
func DefaultLeakage() *LeakageModel {
	return &LeakageModel{Frac0: 0.05, TRef: 100, DoubleEveryK: 12}
}

// Validate checks model parameters.
func (l *LeakageModel) Validate() error {
	if l.Frac0 < 0 || l.DoubleEveryK <= 0 {
		return fmt.Errorf("power: invalid leakage model %+v", l)
	}
	return nil
}

// Power returns the leakage power in watts for a block with the given
// peak power at temperature tempC.
func (l *LeakageModel) Power(peakW, tempC float64) float64 {
	return l.Frac0 * peakW * math.Exp2((tempC-l.TRef)/l.DoubleEveryK)
}

// Equilibrium solves the self-consistent block temperature under constant
// dynamic power pDyn with sink temperature sink and thermal resistance r:
//
//	T = sink + r * (pDyn + P_leak(T))
//
// It returns the stable equilibrium and ok=true, or ok=false when the
// leakage feedback outruns the cooling path below capC (thermal runaway).
func (l *LeakageModel) Equilibrium(peakW, pDyn, r, sink, capC float64) (temp float64, ok bool) {
	f := func(t float64) float64 {
		return sink + r*(pDyn+l.Power(peakW, t)) - t
	}
	// A stable equilibrium is a downward crossing of f. Scan upward from
	// the sink.
	lo := sink
	if f(lo) < 0 {
		return lo, true // already balanced below the sink: degenerate
	}
	const step = 0.25
	for t := lo; t < capC; t += step {
		if f(t+step) < 0 {
			// Bisect [t, t+step].
			a, b := t, t+step
			for i := 0; i < 60; i++ {
				mid := (a + b) / 2
				if f(mid) > 0 {
					a = mid
				} else {
					b = mid
				}
			}
			return (a + b) / 2, true
		}
	}
	return 0, false
}

// RunawayDynamicPower returns the largest constant dynamic power that
// still has an equilibrium below capC, found by bisection; DTM must keep
// the block's dynamic power below this line once leakage is modeled.
func (l *LeakageModel) RunawayDynamicPower(peakW, r, sink, capC float64) float64 {
	lo, hi := 0.0, 10*peakW
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if _, ok := l.Equilibrium(peakW, mid, r, sink, capC); ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
