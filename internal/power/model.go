package power

import (
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/pipeline"
)

// GatingStyle selects the conditional-clocking assumption (Wattch's cc
// styles).
type GatingStyle int

const (
	// GateResidual10: unused structures still dissipate 10% of peak;
	// used structures scale with port usage (Wattch cc3). This is the
	// zero value and the default, matching the paper's TM Wattch
	// configuration.
	GateResidual10 GatingStyle = iota
	// GateIdeal: unused structures dissipate nothing; used structures
	// scale linearly with port usage (Wattch cc2).
	GateIdeal
	// GateNone: the clock is never gated; every structure dissipates its
	// full power every cycle (Wattch cc0).
	GateNone
)

// String names the gating style.
func (g GatingStyle) String() string {
	switch g {
	case GateNone:
		return "cc0"
	case GateIdeal:
		return "cc2"
	case GateResidual10:
		return "cc3"
	}
	return fmt.Sprintf("gating(%d)", int(g))
}

// residual returns the idle fraction of peak power.
func (g GatingStyle) residual() float64 {
	switch g {
	case GateNone:
		return 1
	case GateIdeal:
		return 0
	default:
		return 0.10
	}
}

// eventKind indexes the per-block event energy table.
type eventKind int

const (
	evRead eventKind = iota
	evWrite
	evMatch
	evOp
	numEventKinds
)

// blockModel holds one structure's calibrated event energies.
type blockModel struct {
	id floorplan.BlockID
	// energy[k] is joules per event of kind k, after calibration.
	energy [numEventKinds]float64
	peakW  float64
	// ewma smooths the dynamic power over ~32 cycles before the peak
	// clamp. Pipeline activity is extremely bursty cycle to cycle; the
	// thermal time constants (tens of microseconds) cannot resolve that
	// granularity, and clamping the raw bursts at the peak would bias
	// the calibrated average downward.
	ewma float64
}

// ewmaAlpha is the smoothing factor of the pre-clamp power filter.
const ewmaAlpha = 1.0 / 32

// hotRates is the reference activity vector of the hottest sustained
// workload: average events per cycle per kind, measured on the most
// intense suite members (gcc/mesa/vortex for the integer side, the FP
// benchmarks for FPExec). Calibration pins this vector to 90% of each
// block's Table 3 peak power, with the 10% clock-gating residual
// supplying the rest; per-cycle power is clamped at the peak. This mirrors
// how Wattch's per-access energies are fit to reported chip powers rather
// than to theoretical port bandwidth, which real pipelines never sustain.
// The anchors carry per-structure headroom above the measured suite maxima:
// counters that saturate for any active workload (window inserts, whose
// rate is dominated by wrong-path dispatch) get ~35% headroom so they
// discriminate between tiers, while well-differentiated counters (int/FP
// op rates, bpred lookups) sit close to the hottest benchmark's rate so
// that benchmark genuinely reaches emergency in that structure.
var hotRates = map[floorplan.BlockID][numEventKinds]float64{
	floorplan.LSQ:     {evWrite: 1.05, evMatch: 0.66},
	floorplan.Window:  {evWrite: 2.7, evRead: 2.43, evMatch: 2.36},
	floorplan.RegFile: {evRead: 3.6, evWrite: 1.9},
	floorplan.BPred:   {evRead: 0.56},
	floorplan.DCache:  {evRead: 0.78},
	floorplan.IntExec: {evOp: 1.12},
	floorplan.FPExec:  {evOp: 0.55},
}

// Config parameterizes the model.
type Config struct {
	Tech Tech
	// Blocks provides the peak-power calibration targets (Table 3).
	Blocks []floorplan.Block
	// Gating is the conditional-clocking style (default GateResidual10).
	Gating GatingStyle
	// Pipeline is the core configuration the activity counts come from;
	// port/width limits size the arrays and peak event counts.
	Pipeline pipeline.Config
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Tech:     DefaultTech(),
		Blocks:   floorplan.Default(),
		Gating:   GateResidual10,
		Pipeline: pipeline.DefaultConfig(),
	}
}

// actSlot indexes the flattened per-cycle activity vector BlockPower
// builds from an Activity record. Converting each counter to float64 once
// and addressing it by index keeps the per-block power computation
// branchless.
type actSlot uint8

const (
	slLSQInserts actSlot = iota
	slLSQSearches
	slWindowInserts
	slWindowIssues
	slWindowWakeups
	slRegReads
	slRegWrites
	slBPredAccess
	slDCacheAccess
	slIntOps
	slFPOps
	slZero // always 0: pad slot for unused terms
	numActSlots
)

// blockTerms is one block's dynamic energy as up to three precomputed
// (activity slot, joules/event) products. Unused terms point at slZero
// with zero energy, so every block evaluates exactly three multiply-adds
// in the event-kind order the calibration loop used (additions of 0.0
// keep the sum bit-identical).
type blockTerms struct {
	s0, s1, s2 actSlot
	e0, e1, e2 float64
}

// Model converts per-cycle pipeline activity into per-block watts.
type Model struct {
	cfg    Config
	blocks []blockModel
	terms  []blockTerms
	// index by floorplan block id for the sim's power vector layout.
	byID [floorplan.NumBlocks]int
	// Hot-loop invariants hoisted out of the per-cycle calls.
	dt          float64 // cycle time, cached
	gateNone    bool
	residual    float64
	commitWidth float64
	fetchWidth  float64
	// Non-tracked chip power components.
	otherBaseW float64 // clock tree, I/O, decode: always-on share
	otherDynW  float64 // icache/L2/front-end dynamic share at full tilt
}

// termsFor flattens the events() mapping for one block into slot/energy
// pairs ordered by event kind, preserving the original accumulation order.
func termsFor(id floorplan.BlockID, energy [numEventKinds]float64) blockTerms {
	type se struct {
		s actSlot
		e float64
	}
	var list []se
	add := func(s actSlot, k eventKind) {
		if energy[k] != 0 {
			list = append(list, se{s, energy[k]})
		}
	}
	// Kind order matters: evRead, evWrite, evMatch, evOp — the order the
	// calibrated sum was accumulated in.
	switch id {
	case floorplan.LSQ:
		add(slLSQInserts, evWrite)
		add(slLSQSearches, evMatch)
	case floorplan.Window:
		add(slWindowIssues, evRead)
		add(slWindowInserts, evWrite)
		add(slWindowWakeups, evMatch)
	case floorplan.RegFile:
		add(slRegReads, evRead)
		add(slRegWrites, evWrite)
	case floorplan.BPred:
		add(slBPredAccess, evRead)
	case floorplan.DCache:
		add(slDCacheAccess, evRead)
	case floorplan.IntExec:
		add(slIntOps, evOp)
	case floorplan.FPExec:
		add(slFPOps, evOp)
	}
	t := blockTerms{s0: slZero, s1: slZero, s2: slZero}
	if len(list) > 0 {
		t.s0, t.e0 = list[0].s, list[0].e
	}
	if len(list) > 1 {
		t.s1, t.e1 = list[1].s, list[1].e
	}
	if len(list) > 2 {
		t.s2, t.e2 = list[2].s, list[2].e
	}
	return t
}

// New builds and calibrates the model. Calibration scales each block's
// capacitance-derived event energies by a single factor so that the block
// at maximum per-cycle activity dissipates exactly its Table 3 peak power.
func New(cfg Config) (*Model, error) {
	if cfg.Tech.FreqHz <= 0 || cfg.Tech.Vdd <= 0 {
		return nil, fmt.Errorf("power: invalid technology %+v", cfg.Tech)
	}
	if len(cfg.Blocks) == 0 {
		return nil, fmt.Errorf("power: no blocks to calibrate against")
	}
	t := cfg.Tech
	pc := cfg.Pipeline
	if pc.FetchWidth == 0 {
		pc = pipeline.DefaultConfig()
	}

	// Array geometries for the seven tracked structures.
	lsqArr := ArraySpec{Rows: pc.LSQSize, Bits: 80, ReadPorts: pc.MemPorts, WritePorts: pc.DecodeWidth, CAM: true}
	winArr := ArraySpec{Rows: pc.RUUSize, Bits: 200, ReadPorts: pc.IssueWidth, WritePorts: pc.DecodeWidth, CAM: true}
	regArr := ArraySpec{Rows: 64, Bits: 64, ReadPorts: 2 * pc.IssueWidth, WritePorts: pc.CommitWidth}
	bprArr := ArraySpec{Rows: 4096, Bits: 2, ReadPorts: 1, WritePorts: 1}
	dcArr := ArraySpec{Rows: 1024, Bits: 2 * 256, ReadPorts: pc.MemPorts, WritePorts: 1}

	specs := map[floorplan.BlockID][numEventKinds]float64{
		floorplan.LSQ: {evWrite: lsqArr.WriteEnergy(t), evMatch: lsqArr.MatchEnergy(t)},
		floorplan.Window: {
			evWrite: winArr.WriteEnergy(t), evRead: winArr.ReadEnergy(t), evMatch: winArr.MatchEnergy(t)},
		floorplan.RegFile: {evRead: regArr.ReadEnergy(t), evWrite: regArr.WriteEnergy(t)},
		// Lookups read three PHTs plus the BTB, and commit-time
		// updates are reported through the same counter; fold both
		// into one effective access energy.
		floorplan.BPred:   {evRead: 4 * bprArr.ReadEnergy(t)},
		floorplan.DCache:  {evRead: dcArr.ReadEnergy(t)},
		floorplan.IntExec: {evOp: ALUEnergy(t, IntALUCap)},
		floorplan.FPExec:  {evOp: ALUEnergy(t, FPALUCap)},
	}

	m := &Model{cfg: cfg}
	dt := t.CycleTime()
	for _, b := range cfg.Blocks {
		energies, ok := specs[b.ID]
		if !ok {
			return nil, fmt.Errorf("power: no structural model for block %v", b.ID)
		}
		rates, ok := hotRates[b.ID]
		if !ok {
			return nil, fmt.Errorf("power: no hot-rate calibration for block %v", b.ID)
		}
		// Pin the reference hot activity vector to 90% of the Table 3
		// peak (the gating residual supplies the remaining 10%).
		var hotRaw float64
		for k := 0; k < int(numEventKinds); k++ {
			hotRaw += rates[k] * energies[k]
		}
		hotRaw /= dt
		if hotRaw <= 0 {
			return nil, fmt.Errorf("power: block %v has zero hot-rate power", b.ID)
		}
		scale := 0.9 * b.PeakPower / hotRaw
		bm := blockModel{id: b.ID, peakW: b.PeakPower}
		for k := 0; k < int(numEventKinds); k++ {
			bm.energy[k] = energies[k] * scale
		}
		m.byID[b.ID] = len(m.blocks)
		m.blocks = append(m.blocks, bm)
		m.terms = append(m.terms, termsFor(b.ID, bm.energy))
	}
	// Untracked chip power: front end, I-cache, L2, clock tree, result
	// buses. Sized so total chip power lands in the paper's tens of
	// watts; the base share runs whenever the clock does.
	m.otherBaseW = 8.0
	m.otherDynW = 14.0
	m.dt = dt
	m.gateNone = cfg.Gating == GateNone
	m.residual = cfg.Gating.residual()
	cw := pc.CommitWidth
	if cw == 0 {
		cw = 6
	}
	m.commitWidth = float64(cw)
	fw := pc.FetchWidth
	if fw < 1 {
		fw = 1
	}
	m.fetchWidth = float64(fw)
	return m, nil
}

// Clone returns an independent deep copy of the model. The model is not
// stateless: BlockPower advances each block's EWMA pre-clamp filter, so a
// forked simulation needs its own copy to keep producing the powers the
// original would have.
func (m *Model) Clone() *Model {
	q := *m
	q.blocks = append(m.blocks[:0:0], m.blocks...)
	q.terms = append(m.terms[:0:0], m.terms...)
	return &q
}

// NumBlocks returns the number of modeled blocks.
func (m *Model) NumBlocks() int { return len(m.blocks) }

// BlockID returns the floorplan identity of model index i.
func (m *Model) BlockID(i int) floorplan.BlockID { return m.blocks[i].id }

// events extracts the per-kind event counts of block id from an activity
// record.
func events(id floorplan.BlockID, act *pipeline.Activity) [numEventKinds]int {
	var ev [numEventKinds]int
	switch id {
	case floorplan.LSQ:
		ev[evWrite] = act.LSQInserts
		ev[evMatch] = act.LSQSearches
	case floorplan.Window:
		ev[evWrite] = act.WindowInserts
		ev[evRead] = act.WindowIssues
		ev[evMatch] = act.WindowWakeups
	case floorplan.RegFile:
		ev[evRead] = act.RegReads
		ev[evWrite] = act.RegWrites
	case floorplan.BPred:
		ev[evRead] = act.BPredAccess
	case floorplan.DCache:
		ev[evRead] = act.DCacheAccess
	case floorplan.IntExec:
		ev[evOp] = act.IntOps
	case floorplan.FPExec:
		ev[evOp] = act.FPOps
	}
	return ev
}

// BlockPower fills out with this cycle's per-block power in watts, indexed
// in the model's block order (matching the floorplan order used to build
// the thermal network). out must have NumBlocks entries.
//
// The hot loop is branchless: the activity record is flattened into a
// float64 vector once, and each block evaluates three precomputed
// slot/energy products in the calibration's event-kind order (bit-identical
// to the original per-kind accumulation).
func (m *Model) BlockPower(act *pipeline.Activity, out []float64) {
	if len(out) != len(m.blocks) {
		panic(fmt.Sprintf("power: BlockPower out len %d, want %d", len(out), len(m.blocks)))
	}
	if m.gateNone {
		for i := range m.blocks {
			out[i] = m.blocks[i].peakW
		}
		return
	}
	var av [numActSlots]float64
	av[slLSQInserts] = float64(act.LSQInserts)
	av[slLSQSearches] = float64(act.LSQSearches)
	av[slWindowInserts] = float64(act.WindowInserts)
	av[slWindowIssues] = float64(act.WindowIssues)
	av[slWindowWakeups] = float64(act.WindowWakeups)
	av[slRegReads] = float64(act.RegReads)
	av[slRegWrites] = float64(act.RegWrites)
	av[slBPredAccess] = float64(act.BPredAccess)
	av[slDCacheAccess] = float64(act.DCacheAccess)
	av[slIntOps] = float64(act.IntOps)
	av[slFPOps] = float64(act.FPOps)
	dt, res := m.dt, m.residual
	for i := range m.blocks {
		b := &m.blocks[i]
		t := &m.terms[i]
		dyn := av[t.s0]*t.e0 + av[t.s1]*t.e1 + av[t.s2]*t.e2
		b.ewma += ewmaAlpha * (dyn/dt - b.ewma)
		p := b.ewma + res*b.peakW
		if p > b.peakW {
			p = b.peakW
		}
		out[i] = p
	}
}

// ChipPower returns total chip power: the tracked blocks plus the
// untracked remainder (clock tree, front end, I-cache, L2), whose dynamic
// share scales with fetch/commit activity.
func (m *Model) ChipPower(act *pipeline.Activity, blockPowers []float64) float64 {
	var total float64
	for _, p := range blockPowers {
		total += p
	}
	return total + m.ChipOverhead(act)
}

// ChipOverhead returns the non-block share of one cycle's chip power: the
// always-on base (clock tree, I/O, decode) plus the dynamic share of the
// untracked structures, scaled by a commit/fetch utilization estimate.
// Surrogate replay calibrates the mean of this term over a cycle-exact
// window and replays it per macro-window, which is exact for the mean
// chip power because the term is additive in ChipPower.
func (m *Model) ChipOverhead(act *pipeline.Activity) float64 {
	util := float64(act.Commits) / m.commitWidth
	if act.FetchEnabled {
		util += 0.5 * float64(act.Fetched) / m.fetchWidth
	}
	if util > 1 {
		util = 1
	}
	return m.otherBaseW + m.otherDynW*util
}

// PeakChipPower returns the calibrated whole-chip peak.
func (m *Model) PeakChipPower() float64 {
	var total float64
	for _, b := range m.blocks {
		total += b.peakW
	}
	return total + m.otherBaseW + m.otherDynW
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
