package experiments

// Catalog-backed report tables. These render from run history (the
// dimension-indexed catalog that sweep -fill and cmd/serve maintain)
// instead of fresh simulation, so they are instant and cover every
// operating point ever executed against the cache — the raw material for
// the paper's pareto and sensitivity discussions without re-running the
// grids.

import (
	"fmt"
	"sort"

	"repro/internal/runindex"
	"repro/internal/stats"
)

// catalogRows snapshots every cataloged run.
func catalogRows(cat *runindex.Catalog) []runindex.Record {
	q := runindex.Query{Limit: cat.Len()}
	return cat.Run(&q).Rows
}

func policyName(p string) string {
	if p == "" {
		return "none"
	}
	return p
}

// CatalogSummary rolls the catalog up per benchmark x policy: run count
// and mean headline metrics.
func CatalogSummary(cat *runindex.Catalog) *stats.Table {
	type agg struct {
		n                 int
		ipc, power, emerg float64
	}
	groups := map[string]*agg{}
	for _, r := range catalogRows(cat) {
		k := r.Bench + "/" + policyName(r.Policy)
		g := groups[k]
		if g == nil {
			g = &agg{}
			groups[k] = g
		}
		g.n++
		g.ipc += r.IPC
		g.power += r.AvgPower
		g.emerg += r.EmergFrac
	}
	t := &stats.Table{Header: []string{"benchmark/policy", "runs", "mean IPC", "mean power (W)", "mean emerg"}}
	for _, k := range stats.SortedKeys(groups) {
		g := groups[k]
		n := float64(g.n)
		t.AddRow(k, fmt.Sprintf("%d", g.n),
			fmt.Sprintf("%.4f", g.ipc/n),
			fmt.Sprintf("%.2f", g.power/n),
			stats.Percent(g.emerg/n))
	}
	return t
}

// CatalogPareto returns, per benchmark, the cataloged runs on the
// IPC / emergency-residency pareto frontier: no other run of the same
// benchmark has both higher IPC and lower emergency residency.
func CatalogPareto(cat *runindex.Catalog) *stats.Table {
	byBench := map[string][]runindex.Record{}
	for _, r := range catalogRows(cat) {
		byBench[r.Bench] = append(byBench[r.Bench], r)
	}
	t := &stats.Table{Header: []string{"benchmark", "policy", "trigger", "interval", "IPC", "emerg", "power (W)"}}
	for _, b := range stats.SortedKeys(byBench) {
		rows := byBench[b]
		// Walk in order of rising emergency residency; a run joins the
		// frontier only by beating every safer run's IPC.
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].EmergFrac != rows[j].EmergFrac {
				return rows[i].EmergFrac < rows[j].EmergFrac
			}
			return rows[i].IPC > rows[j].IPC
		})
		best := -1.0
		for i := range rows {
			r := &rows[i]
			if r.IPC <= best {
				continue
			}
			best = r.IPC
			t.AddRow(b, policyName(r.Policy),
				fmt.Sprintf("%.1f", r.Trigger),
				fmt.Sprintf("%.0f", r.Interval),
				fmt.Sprintf("%.4f", r.IPC),
				stats.Percent(r.EmergFrac),
				fmt.Sprintf("%.2f", r.AvgPower))
		}
	}
	return t
}

// CatalogSensitivity buckets cataloged runs by their exact value along
// one indexed dimension and reports mean headline metrics per value —
// the sweep CSVs reconstructed from history.
func CatalogSensitivity(cat *runindex.Catalog, dim runindex.Dim) *stats.Table {
	type agg struct {
		n                int
		ipc, emerg, duty float64
	}
	groups := map[float64]*agg{}
	for _, r := range catalogRows(cat) {
		v := r.DimValue(dim)
		g := groups[v]
		if g == nil {
			g = &agg{}
			groups[v] = g
		}
		g.n++
		g.ipc += r.IPC
		g.emerg += r.EmergFrac
		g.duty += r.AvgDuty
	}
	vals := make([]float64, 0, len(groups))
	for v := range groups {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	t := &stats.Table{Header: []string{dim.String(), "runs", "mean IPC", "mean emerg", "mean duty"}}
	for _, v := range vals {
		g := groups[v]
		n := float64(g.n)
		t.AddRow(fmt.Sprintf("%g", v), fmt.Sprintf("%d", g.n),
			fmt.Sprintf("%.4f", g.ipc/n),
			stats.Percent(g.emerg/n),
			fmt.Sprintf("%.3f", g.duty/n))
	}
	return t
}
