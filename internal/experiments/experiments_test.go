package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func smallParams() Params {
	return Params{Insts: 60_000, Policies: []string{"toggle1", "PI"}}
}

func TestStaticTables(t *testing.T) {
	t2 := Table2()
	if len(t2.Rows) < 10 {
		t.Errorf("table 2 rows = %d", len(t2.Rows))
	}
	t3 := Table3()
	if len(t3.Rows) != 8 {
		t.Errorf("table 3 rows = %d", len(t3.Rows))
	}
	if !strings.Contains(t3.String(), "81 us") {
		t.Error("table 3 missing the legible window RC value")
	}
	t5 := Table5()
	if len(t5.Rows) != 4 {
		t.Errorf("table 5 rows = %d", len(t5.Rows))
	}
}

func TestBaselineAndCharacterizationTables(t *testing.T) {
	if testing.Short() {
		t.Skip("suite baseline is slow")
	}
	base, err := Baseline(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 18 {
		t.Fatalf("baseline results = %d", len(base))
	}
	for i, r := range base {
		if r.Benchmark != bench.Names()[i] {
			t.Errorf("result %d is %s, want %s", i, r.Benchmark, bench.Names()[i])
		}
		if r.Insts < smallParams().Insts {
			t.Errorf("%s committed %d < budget", r.Benchmark, r.Insts)
		}
	}
	for _, tab := range []interface{ String() string }{
		Table4(base), Table6(base), Table7(base), Table8(base),
	} {
		out := tab.String()
		if !strings.Contains(out, "gcc") || !strings.Contains(out, "apsi") {
			t.Error("characterization table missing benchmarks")
		}
	}
}

func TestPolicyEvalShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("policy evaluation is slow")
	}
	ev, err := RunPolicyEval(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.ByPolicy) != 2 {
		t.Fatalf("policies = %d", len(ev.ByPolicy))
	}
	for pol, pcts := range ev.PctOfBase {
		if len(pcts) != 18 {
			t.Errorf("%s: %d entries", pol, len(pcts))
		}
		for i, p := range pcts {
			if p <= 0 || p > 1.2 {
				t.Errorf("%s/%s: pct of base = %v", pol, bench.Names()[i], p)
			}
		}
	}
	hs := ev.Headlines()
	if len(hs) != 2 {
		t.Fatalf("headlines = %d", len(hs))
	}
	for _, h := range hs {
		if h.MeanPct <= 0 || h.MeanPct > 1.01 {
			t.Errorf("%s: mean pct = %v", h.Policy, h.MeanPct)
		}
	}
	if tab := ev.Table11(); len(tab.Rows) != 18 {
		t.Errorf("table 11 rows = %d", len(tab.Rows))
	}
	if tab := ev.Table12(); len(tab.Rows) != 2 {
		t.Errorf("table 12 rows = %d", len(tab.Rows))
	}
}

func TestTraceExperiment(t *testing.T) {
	res, err := Trace(Params{Insts: 60_000}, "twolf", "PI", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.TempTrace == nil || res.TempTrace.Len() == 0 {
		t.Error("no trace recorded")
	}
	if _, err := Trace(Params{Insts: 1000}, "nope", "PI", 100); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Trace(Params{Insts: 1000}, "gcc", "nope", 100); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestSeedStudy(t *testing.T) {
	st, err := SeedStudy(Params{Insts: 60_000}, "twolf", "none", 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 3 || st.Benchmark != "twolf" {
		t.Errorf("stats = %+v", st)
	}
	if st.IPCMean <= 0 {
		t.Error("zero mean IPC")
	}
	// Different seeds must actually perturb the program (nonzero spread).
	if st.IPCStd == 0 {
		t.Error("zero IPC spread across seeds — seeds not applied?")
	}
	// But the spread must be small relative to the mean (the proxies'
	// behaviour is a property of the profile, not the seed).
	if st.IPCStd > 0.25*st.IPCMean {
		t.Errorf("IPC spread %v too large vs mean %v", st.IPCStd, st.IPCMean)
	}
	if _, err := SeedStudy(Params{Insts: 1000}, "twolf", "none", 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := SeedStudy(Params{Insts: 1000}, "nope", "none", 2); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestProxyTablesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("proxy sweep is slow")
	}
	ps, cw, err := ProxyTables(Params{Insts: 60_000}, []int{5_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Rows) != 18 || len(cw.Rows) != 18 {
		t.Fatalf("proxy tables rows = %d/%d", len(ps.Rows), len(cw.Rows))
	}
	// Header carries one missed/false pair per window.
	if len(ps.Header) != 2+2 {
		t.Errorf("per-struct header = %v", ps.Header)
	}
	if _, _, err := ProxyTables(Params{Insts: 1000}, []int{0}); err == nil {
		t.Error("zero window accepted")
	}
}

func TestBaselineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := smallParams()
	p.Context = ctx
	if _, err := Baseline(p); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled baseline error = %v, want context.Canceled", err)
	}
}

func TestBaselineProgressAndWorkers(t *testing.T) {
	p := smallParams()
	p.Insts = 20_000
	p.Workers = 2
	var done atomic.Int64
	p.Progress = func(pr runner.Progress) {
		if pr.Total != len(bench.Names()) {
			t.Errorf("progress total = %d, want %d", pr.Total, len(bench.Names()))
		}
		done.Store(int64(pr.Done))
	}
	res, err := Baseline(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(bench.Names()) {
		t.Fatalf("got %d results", len(res))
	}
	if done.Load() != int64(len(bench.Names())) {
		t.Errorf("final progress done = %d, want %d", done.Load(), len(bench.Names()))
	}
	for i, r := range res {
		if r == nil || r.Benchmark != bench.Names()[i] {
			t.Errorf("result %d out of order: %+v", i, r)
		}
	}
}

// TestRunSimCacheRoundTrip proves a cached result is byte-for-byte usable
// in place of a fresh simulation: the warm pass must reproduce the cold
// pass's headline metrics exactly (JSON encodes float64 losslessly), and
// instrumented runs must bypass the cache entirely.
func TestRunSimCacheRoundTrip(t *testing.T) {
	cache, err := runner.NewCache[*sim.Result](t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Insts: 60_000, Cache: cache}
	mkCfg := func() sim.Config {
		prof, err := bench.ByName("gcc")
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{Workload: prof, MaxInsts: p.Insts}
		if err := bench.ApplyPolicy(&cfg, "PI", 0); err != nil {
			t.Fatal(err)
		}
		return cfg
	}
	cold, err := p.runSim(context.Background(), mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries after cold run, want 1", cache.Len())
	}
	warm, err := p.runSim(context.Background(), mkCfg())
	if err != nil {
		t.Fatal(err)
	}
	if warm == cold {
		t.Fatal("warm run returned the same pointer; want a decoded copy")
	}
	if warm.IPC != cold.IPC || warm.Cycles != cold.Cycles ||
		warm.Insts != cold.Insts || warm.Blocks[0].MaxTemp != cold.Blocks[0].MaxTemp ||
		warm.EmergencyCycles != cold.EmergencyCycles ||
		warm.StressCycles != cold.StressCycles ||
		warm.AvgDuty != cold.AvgDuty || warm.Engagements != cold.Engagements ||
		warm.Benchmark != cold.Benchmark {
		t.Errorf("cached result differs from fresh run:\ncold %+v\nwarm %+v", cold, warm)
	}

	// Telemetry-instrumented runs must execute, not replay.
	p.Registry = telemetry.NewRegistry()
	if _, err := p.runSim(context.Background(), func() sim.Config {
		cfg := mkCfg()
		p.instrument(&cfg, "gcc/PI")
		return cfg
	}()); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Error("instrumented run touched the cache")
	}
}

// TestGangBatchMatchesSolo: the gang-scheduled batch engine must return
// results byte-identical to the solo engine for the same specs, serve
// cached cells from the pre-flight probe without scheduling them, and
// fill the cache for cold cells just like the solo path.
func TestGangBatchMatchesSolo(t *testing.T) {
	if testing.Short() {
		t.Skip("gang batch comparison is slow")
	}
	specs := []runSpec{
		{bench: "gcc", policy: "none"},
		{bench: "gcc", policy: "toggle1"},
		{bench: "gcc", policy: "PI"},
		{bench: "gcc", policy: "fscale"},
		{bench: "art", policy: "none"},
		{bench: "art", policy: "PI"},
	}
	p := Params{Insts: 60_000}
	solo, err := runBatch(p, specs)
	if err != nil {
		t.Fatal(err)
	}

	cache, err := runner.NewCache[*sim.Result](t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	gp := Params{Insts: 60_000, GangSize: 8, Cache: cache}
	ganged, err := runBatch(gp, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		a, err1 := json.Marshal(solo[i])
		b, err2 := json.Marshal(ganged[i])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if string(a) != string(b) {
			t.Errorf("%s/%s: gang batch differs from solo:\nsolo: %s\ngang: %s",
				specs[i].bench, specs[i].policy, a, b)
		}
	}
	if cache.Len() != len(specs) {
		t.Errorf("cache holds %d entries after gang batch, want %d", cache.Len(), len(specs))
	}

	// Warm rerun: every cell must come from the pre-flight probe. A probe
	// miss would re-execute and still pass the equality check, so prove no
	// runs happen by giving the rerun an already-cancelled context — only
	// scheduled work observes it.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gp.Context = ctx
	warm, err := runBatch(gp, specs)
	if err != nil {
		t.Fatalf("warm gang batch scheduled work despite full cache: %v", err)
	}
	for i := range specs {
		if warm[i] == nil || warm[i].Cycles != solo[i].Cycles {
			t.Errorf("%s/%s: warm cell differs", specs[i].bench, specs[i].policy)
		}
	}
}

// TestGangBatchFallback: specs the gang executor rejects (per-run proxy
// windows make members heterogeneous) must degrade to solo runs inside
// the group, not fail the batch.
func TestGangBatchFallback(t *testing.T) {
	proxied := func(c *sim.Config) { c.ProxyWindows = []int{5_000} }
	specs := []runSpec{
		{bench: "gzip", policy: "none", cfg: proxied},
		{bench: "gzip", policy: "none"},
	}
	p := Params{Insts: 40_000, GangSize: 4}
	res, err := runBatch(p, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Proxies) == 0 {
		t.Error("proxied member lost its proxy results in fallback")
	}
	if len(res[1].Proxies) != 0 {
		t.Error("plain member grew proxy results")
	}
}
