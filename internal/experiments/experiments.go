// Package experiments regenerates every table and figure of the paper's
// evaluation (the index lives in DESIGN.md): benchmark characterization
// (Tables 4-8), the boxcar-proxy comparison (Tables 9-10), the DTM policy
// evaluation and headline result (Section 7), the setpoint study, and the
// time-series traces behind the figures. cmd/tables and the root benchmark
// harness are thin wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bench"
	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Params controls experiment scale. The paper simulates 200M committed
// instructions per benchmark; the default here is scaled down to keep a
// full table regeneration in CI territory while covering many thermal time
// constants (2M instructions ~ 1-10M cycles ~ 10-60 block RCs).
type Params struct {
	// Insts is the committed-instruction budget per run.
	Insts uint64
	// Policies lists the DTM policies for the evaluation tables.
	Policies []string
	// Context, when non-nil, cancels in-flight batches (the first error
	// in a batch also aborts it). Nil means Background.
	Context context.Context
	// Workers bounds batch parallelism; <= 0 uses GOMAXPROCS.
	Workers int
	// Progress, when non-nil, observes every batch's per-run completion.
	Progress func(runner.Progress)
	// Registry, when non-nil, collects sim and runner telemetry from every
	// batch run (shared metrics; per-run counter stripes).
	Registry *telemetry.Registry
	// Trace, when non-nil, receives structured controller/thermal samples
	// from every run, labeled "benchmark/policy".
	Trace *telemetry.Recorder
	// TraceInterval is the cycle stride for Trace samples (0 = DTM
	// sampling interval).
	TraceInterval uint64
	// Cache, when non-nil, memoizes completed runs by configuration
	// fingerprint (sim.CacheKey), so repeated batches — the setpoint
	// study and policy evaluation share their baselines, and repeated
	// tool invocations with a disk-backed cache share everything — skip
	// simulations entirely. Runs with live telemetry attached (Registry
	// or Trace set) are not cacheable and always execute.
	Cache *runner.Cache[*sim.Result]
	// GangSize, when > 1, gang-schedules batches: cold specs sharing one
	// workload are stepped as lock-step operating-point equivalence
	// classes of up to GangSize members (sim.NewGang), so the shared
	// pipeline and power-model work is evaluated once per class instead
	// of once per run. Results are byte-identical to solo execution.
	// Cached cells are served by a pre-flight probe and never scheduled;
	// groups the gang executor rejects (per-cycle instrumentation,
	// heterogeneous execution parameters) fall back to solo runs.
	// Ignored while live telemetry (Registry/Trace) is attached, since
	// per-run sinks require solo execution.
	GangSize int
}

// ctx returns the effective batch context.
func (p Params) ctx() context.Context {
	if p.Context != nil {
		return p.Context
	}
	return context.Background()
}

// DefaultParams returns the standard reproduction scale.
func DefaultParams() Params {
	return Params{
		Insts:    2_000_000,
		Policies: []string{"toggle1", "toggle2", "M", "P", "PI", "PID"},
	}
}

// runSpec identifies one simulation in a batch.
type runSpec struct {
	bench    string
	policy   string
	setpoint float64
	cfg      func(*sim.Config)
}

// runBatch executes specs through the parallel experiment engine: bounded
// workers, first-error abort, panic-to-error conversion, per-run metrics.
// Results come back in spec order. With GangSize > 1 and no telemetry
// attached, cold specs sharing a workload run as lock-step gangs instead
// of independent runs.
func runBatch(p Params, specs []runSpec) ([]*sim.Result, error) {
	if p.GangSize > 1 && p.Registry == nil && p.Trace == nil {
		return runGangBatch(p, specs)
	}
	opts := runner.Options{Workers: p.Workers, Progress: p.Progress}
	if p.Registry != nil {
		opts.Metrics = telemetry.NewRunnerMetrics(p.Registry)
	}
	return runner.Map(p.ctx(), opts, specs,
		func(ctx context.Context, sp runSpec) (*sim.Result, error) {
			cfg, err := p.buildConfig(sp)
			if err != nil {
				return nil, err
			}
			p.instrument(&cfg, sp.bench+"/"+sp.policy)
			return p.runSim(ctx, cfg)
		})
}

// buildConfig materializes one spec into a run configuration, without
// telemetry instrumentation.
func (p Params) buildConfig(sp runSpec) (sim.Config, error) {
	prof, err := bench.ByName(sp.bench)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{Workload: prof, MaxInsts: p.Insts}
	if err := bench.ApplyPolicy(&cfg, sp.policy, sp.setpoint); err != nil {
		return sim.Config{}, err
	}
	if sp.cfg != nil {
		sp.cfg(&cfg)
	}
	return cfg, nil
}

// gangGroup is one schedulable unit of a gang batch: the cold specs of
// one workload, capped at GangSize members.
type gangGroup struct {
	idx  []int // positions in the batch's spec slice
	cfgs []sim.Config
	keys []string // cache keys, "" where uncacheable
}

// runGangBatch is the gang-scheduled batch engine. It pre-flights the
// cache for every cell, groups the cold cells by workload, chunks each
// group to GangSize and runs the groups through the worker pool — each
// as one sim.NewGang, falling back to solo runs for singletons and for
// groups the gang executor rejects. Result order and cache behavior are
// identical to the solo path.
func runGangBatch(p Params, specs []runSpec) ([]*sim.Result, error) {
	out := make([]*sim.Result, len(specs))
	cfgs := make([]sim.Config, len(specs))
	keys := make([]string, len(specs))
	var cold []int
	for i, sp := range specs {
		cfg, err := p.buildConfig(sp)
		if err != nil {
			return nil, err
		}
		cfgs[i] = cfg
		if p.Cache != nil {
			if key, ok := sim.CacheKey(cfg); ok {
				keys[i] = key
				if res, hit := p.Cache.Get(key); hit {
					out[i] = res
					continue
				}
			}
		}
		cold = append(cold, i)
	}

	var groups []gangGroup
	open := map[string]int{} // workload name -> open group index
	for _, i := range cold {
		gi, ok := open[specs[i].bench]
		if !ok || len(groups[gi].idx) >= p.GangSize {
			groups = append(groups, gangGroup{})
			gi = len(groups) - 1
			open[specs[i].bench] = gi
		}
		g := &groups[gi]
		g.idx = append(g.idx, i)
		g.cfgs = append(g.cfgs, cfgs[i])
		g.keys = append(g.keys, keys[i])
	}

	if len(groups) == 0 { // fully warm batch: nothing to schedule
		return out, nil
	}
	opts := runner.Options{Workers: p.Workers, Progress: p.Progress}
	results, err := runner.Map(p.ctx(), opts, groups,
		func(ctx context.Context, g gangGroup) ([]*sim.Result, error) {
			return p.runGroup(ctx, g)
		})
	if err != nil {
		return nil, err
	}
	for gi := range groups {
		for j, i := range groups[gi].idx {
			out[i] = results[gi][j]
		}
	}
	return out, nil
}

// runGroup executes one gang group. Singletons run solo; multi-member
// groups run as one gang, and any configuration set the gang executor
// rejects (proxy windows, trace strides, heterogeneous budgets) degrades
// to per-member solo runs rather than failing the batch.
func (p Params) runGroup(ctx context.Context, g gangGroup) ([]*sim.Result, error) {
	var results []*sim.Result
	if len(g.cfgs) > 1 {
		if gang, err := sim.NewGang(g.cfgs, sim.GangOptions{}); err == nil {
			if results, err = gang.Run(ctx); err != nil {
				return nil, err
			}
		}
	}
	if results == nil {
		for _, cfg := range g.cfgs {
			res, err := sim.RunContext(ctx, cfg)
			if err != nil {
				return nil, err
			}
			results = append(results, res)
		}
	}
	if p.Cache != nil {
		for j, key := range g.keys {
			if key != "" {
				p.Cache.Put(key, results[j])
			}
		}
	}
	return results, nil
}

// runSim executes one configured run, serving it from the params' cache
// when one is attached and the configuration is cacheable (no telemetry
// sinks). The key is computed after instrumentation on purpose: a run
// that will stream metrics or traces must never be replayed from cache,
// and CacheKey rejects exactly those.
func (p Params) runSim(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
	if p.Cache != nil {
		if key, ok := sim.CacheKey(cfg); ok {
			if res, hit := p.Cache.Get(key); hit {
				return res, nil
			}
			res, err := sim.RunContext(ctx, cfg)
			if err == nil {
				p.Cache.Put(key, res)
			}
			return res, err
		}
	}
	return sim.RunContext(ctx, cfg)
}

// instrument attaches the params' telemetry sinks to one run's config. A
// fresh SimMetrics bundle per run keeps counter stripes uncontended across
// the worker pool while still aggregating into the shared registry.
func (p Params) instrument(cfg *sim.Config, runID string) {
	if p.Registry != nil {
		cfg.Metrics = telemetry.NewSimMetrics(p.Registry)
	}
	if p.Trace != nil {
		cfg.Trace = p.Trace
		cfg.TraceInterval = p.TraceInterval
		cfg.TraceID = runID
	}
}

// Baseline runs the whole suite uncontrolled and returns results in
// bench.Names order.
func Baseline(p Params) ([]*sim.Result, error) {
	var specs []runSpec
	for _, n := range bench.Names() {
		specs = append(specs, runSpec{bench: n, policy: "none"})
	}
	return runBatch(p, specs)
}

// Table2 renders the simulated machine configuration (Table 2).
func Table2() *stats.Table {
	c := pipeline.DefaultConfig()
	t := &stats.Table{Header: []string{"parameter", "value"}}
	t.AddRow("instruction window", fmt.Sprintf("%d-RUU, %d-LSQ", c.RUUSize, c.LSQSize))
	t.AddRow("issue width", fmt.Sprintf("%d per cycle (%d int, %d FP)", c.IssueWidth, c.IntIssue, c.FPIssue))
	t.AddRow("functional units", fmt.Sprintf("%d IntALU, %d IntMult/Div, %d FPALU, %d FPMult/Div, %d mem ports",
		c.IntALUs, c.IntMultDiv, c.FPALUs, c.FPMultDiv, c.MemPorts))
	t.AddRow("front end", fmt.Sprintf("%d-wide fetch, %d-stage depth", c.FetchWidth, c.FrontEndDepth))
	t.AddRow("L1 D-cache", fmt.Sprintf("%d KB, %d-way, %d B blocks, %d-cycle",
		c.L1D.SizeBytes>>10, c.L1D.Assoc, c.L1D.BlockSize, c.L1D.Latency))
	t.AddRow("L1 I-cache", fmt.Sprintf("%d KB, %d-way, %d B blocks, %d-cycle",
		c.L1I.SizeBytes>>10, c.L1I.Assoc, c.L1I.BlockSize, c.L1I.Latency))
	t.AddRow("L2", fmt.Sprintf("%d MB, %d-way, %d B blocks, %d-cycle",
		c.L2.SizeBytes>>20, c.L2.Assoc, c.L2.BlockSize, c.L2.Latency))
	t.AddRow("memory", "100 cycles")
	t.AddRow("TLB", "128-entry fully assoc., 30-cycle miss")
	t.AddRow("branch predictor", fmt.Sprintf("hybrid: %d bimod + %d/%d-bit GAg, %d chooser",
		c.BPred.BimodEntries, c.BPred.GlobalEntries, c.BPred.HistoryBits, c.BPred.ChooserEntries))
	t.AddRow("BTB / RAS", fmt.Sprintf("%d-entry %d-way / %d-entry",
		c.BPred.BTBSets*c.BPred.BTBAssoc, c.BPred.BTBAssoc, c.BPred.RASEntries))
	return t
}

// Table3 renders the per-structure thermal parameters (Table 3).
func Table3() *stats.Table {
	t := &stats.Table{Header: []string{"structure", "area (m^2)", "peak power (W)", "R (K/W)", "C (J/K)", "RC"}}
	for _, b := range floorplan.Default() {
		t.AddRow(b.ID.String(),
			fmt.Sprintf("%.1e", b.Area),
			fmt.Sprintf("%.1f", b.PeakPower),
			fmt.Sprintf("%.2f", b.R),
			fmt.Sprintf("%.2e", b.C),
			fmt.Sprintf("%.0f us", b.RC()*1e6))
	}
	chip := floorplan.ChipBlock()
	t.AddRow("chip", fmt.Sprintf("%.1e", chip.Area), fmt.Sprintf("%.0f", chip.PeakPower),
		fmt.Sprintf("%.2f", chip.R), fmt.Sprintf("%.0f", chip.C),
		fmt.Sprintf("%.1f s", chip.RC()))
	return t
}

// Table4 renders per-benchmark IPC, power, average temperature and the
// fractions of cycles above the emergency and stress thresholds (Table 4).
func Table4(base []*sim.Result) *stats.Table {
	t := &stats.Table{Header: []string{
		"benchmark", "IPC", "avg pwr (W)", "avg temp (C)", "> D", "> D-1"}}
	for _, r := range base {
		// The paper's Table 4 "avg temp" column uses the chip-wide
		// package model at 27 C ambient with R = 0.34 K/W.
		chipTemp := 27 + 0.34*r.AvgChipPower
		t.AddRow(r.Benchmark,
			fmt.Sprintf("%.2f", r.IPC),
			fmt.Sprintf("%.1f", r.AvgChipPower),
			fmt.Sprintf("%.1f", chipTemp),
			stats.Percent(r.EmergencyFrac()),
			stats.Percent(r.StressFrac()))
	}
	return t
}

// Table5 renders the thermal categories (Table 5).
func Table5() *stats.Table {
	byCat := map[bench.Category][]string{}
	for _, n := range bench.Names() {
		c := bench.CategoryOf(n)
		byCat[c] = append(byCat[c], n)
	}
	t := &stats.Table{Header: []string{"category", "benchmarks"}}
	for _, c := range []bench.Category{bench.Extreme, bench.High, bench.Medium, bench.Low} {
		names := byCat[c]
		sort.Strings(names)
		t.AddRow(string(c), fmt.Sprint(names))
	}
	return t
}

// blockColumns is the per-structure column order of Tables 6-8.
func blockColumns() []string {
	var cols []string
	for _, id := range floorplan.Blocks() {
		cols = append(cols, id.String())
	}
	return cols
}

// Table6 renders per-structure average/maximum temperatures (Table 6).
func Table6(base []*sim.Result) *stats.Table {
	t := &stats.Table{Header: append([]string{"benchmark"}, blockColumns()...)}
	for _, r := range base {
		row := []string{r.Benchmark}
		for _, b := range r.Blocks {
			row = append(row, fmt.Sprintf("%.1f/%.1f", b.AvgTemp, b.MaxTemp))
		}
		t.AddRow(row...)
	}
	return t
}

// Table7 renders the per-structure fraction of cycles in emergency
// (Table 7), and Table8 the same for the stress level (Table 8).
func Table7(base []*sim.Result) *stats.Table { return perBlockFracTable(base, true) }

// Table8 renders per-structure thermal-stress residency (Table 8).
func Table8(base []*sim.Result) *stats.Table { return perBlockFracTable(base, false) }

func perBlockFracTable(base []*sim.Result, emergency bool) *stats.Table {
	t := &stats.Table{Header: append([]string{"benchmark"}, blockColumns()...)}
	for _, r := range base {
		row := []string{r.Benchmark}
		for _, b := range r.Blocks {
			n := b.StressCycles
			if emergency {
				n = b.EmergencyCycles
			}
			row = append(row, stats.Percent(float64(n)/float64(r.Cycles)))
		}
		t.AddRow(row...)
	}
	return t
}

// ProxyTables runs the suite with boxcar power proxies attached and
// renders Tables 9 (per-structure proxy) and 10 (chip-wide proxy): missed
// emergency cycles and false trigger cycles per window.
func ProxyTables(p Params, windows []int) (perStruct, chipWide *stats.Table, err error) {
	if len(windows) == 0 {
		windows = []int{10_000, 500_000}
	}
	for _, w := range windows {
		if w <= 0 {
			return nil, nil, fmt.Errorf("experiments: invalid proxy window %d", w)
		}
	}
	var specs []runSpec
	for _, n := range bench.Names() {
		specs = append(specs, runSpec{bench: n, policy: "none", cfg: func(c *sim.Config) {
			c.ProxyWindows = windows
		}})
	}
	results, err := runBatch(p, specs)
	if err != nil {
		return nil, nil, err
	}
	header := []string{"benchmark", "emerg cycles"}
	for _, w := range windows {
		header = append(header,
			fmt.Sprintf("missed@%dK", w/1000),
			fmt.Sprintf("false@%dK", w/1000))
	}
	perStruct = &stats.Table{Header: header}
	chipWide = &stats.Table{Header: header}
	for _, r := range results {
		rowS := []string{r.Benchmark, fmt.Sprintf("%d", r.EmergencyCycles)}
		rowC := []string{r.Benchmark, fmt.Sprintf("%d", r.EmergencyCycles)}
		for _, pr := range r.Proxies {
			rowS = append(rowS, stats.Percent(pr.PerStruct.MissedFrac()), stats.Percent(pr.PerStruct.FalseFrac()))
			rowC = append(rowC, stats.Percent(pr.ChipWide.MissedFrac()), stats.Percent(pr.ChipWide.FalseFrac()))
		}
		perStruct.AddRow(rowS...)
		chipWide.AddRow(rowC...)
	}
	return perStruct, chipWide, nil
}

// PolicyEval holds the Section 7 evaluation: per benchmark x policy, the
// percent of non-DTM IPC retained and the emergency residency.
type PolicyEval struct {
	Policies  []string
	Base      []*sim.Result
	ByPolicy  map[string][]*sim.Result
	PctOfBase map[string][]float64 // parallel to bench.Names()
}

// RunPolicyEval executes the full policy-evaluation matrix. The whole
// matrix — baseline plus every policy — goes through one batch, so gang
// scheduling (Params.GangSize) can fold each benchmark's policy column
// into a single lock-step gang.
func RunPolicyEval(p Params) (*PolicyEval, error) {
	names := bench.Names()
	specs := make([]runSpec, 0, (1+len(p.Policies))*len(names))
	for _, n := range names {
		specs = append(specs, runSpec{bench: n, policy: "none"})
	}
	for _, pol := range p.Policies {
		for _, n := range names {
			specs = append(specs, runSpec{bench: n, policy: pol})
		}
	}
	all, err := runBatch(p, specs)
	if err != nil {
		return nil, err
	}
	base := all[:len(names)]
	ev := &PolicyEval{
		Policies:  p.Policies,
		Base:      base,
		ByPolicy:  map[string][]*sim.Result{},
		PctOfBase: map[string][]float64{},
	}
	for k, pol := range p.Policies {
		results := all[(k+1)*len(names) : (k+2)*len(names)]
		ev.ByPolicy[pol] = results
		pct := make([]float64, len(results))
		for i, r := range results {
			pct[i] = r.IPC / base[i].IPC
		}
		ev.PctOfBase[pol] = pct
	}
	return ev, nil
}

// Table11 renders the per-benchmark policy evaluation: percent of non-DTM
// IPC with the emergency residency in parentheses.
func (ev *PolicyEval) Table11() *stats.Table {
	t := &stats.Table{Header: append([]string{"benchmark"}, ev.Policies...)}
	for i, n := range bench.Names() {
		row := []string{n}
		for _, pol := range ev.Policies {
			r := ev.ByPolicy[pol][i]
			row = append(row, fmt.Sprintf("%5.1f%% (%0.2f%%)",
				100*ev.PctOfBase[pol][i], 100*r.EmergencyFrac()))
		}
		t.AddRow(row...)
	}
	return t
}

// Headline summarizes the paper's central claim (Section 7): per policy,
// the mean performance retained, the mean performance *loss* relative to
// toggle1's loss, and whether any emergency cycles survived.
type Headline struct {
	Policy        string
	MeanPct       float64 // mean fraction of non-DTM IPC retained
	MeanLoss      float64 // 1 - MeanPct
	LossVsToggle1 float64 // MeanLoss / toggle1's MeanLoss
	Emergencies   uint64  // total emergency cycles across the suite
}

// Headlines computes the Table 12 aggregate. Benchmarks whose baseline
// never triggers any policy dilute nothing: the mean is over the
// benchmarks that lose performance under at least one policy.
func (ev *PolicyEval) Headlines() []Headline {
	affected := map[int]bool{}
	for i := range bench.Names() {
		for _, pol := range ev.Policies {
			if ev.PctOfBase[pol][i] < 0.9999 {
				affected[i] = true
			}
		}
	}
	var toggleLoss float64
	var out []Headline
	for _, pol := range ev.Policies {
		var losses []float64
		var emerg uint64
		for i := range bench.Names() {
			if !affected[i] {
				continue
			}
			losses = append(losses, 1-ev.PctOfBase[pol][i])
			emerg += ev.ByPolicy[pol][i].EmergencyCycles
		}
		h := Headline{
			Policy:      pol,
			MeanLoss:    stats.Mean(losses),
			Emergencies: emerg,
		}
		h.MeanPct = 1 - h.MeanLoss
		if pol == "toggle1" {
			toggleLoss = h.MeanLoss
		}
		out = append(out, h)
	}
	for i := range out {
		if toggleLoss > 0 {
			out[i].LossVsToggle1 = out[i].MeanLoss / toggleLoss
		}
	}
	return out
}

// Table12 renders the headline aggregate.
func (ev *PolicyEval) Table12() *stats.Table {
	t := &stats.Table{Header: []string{"policy", "mean % of base IPC", "mean loss", "loss vs toggle1", "emergency cycles"}}
	for _, h := range ev.Headlines() {
		t.AddRow(h.Policy,
			fmt.Sprintf("%.1f%%", 100*h.MeanPct),
			fmt.Sprintf("%.1f%%", 100*h.MeanLoss),
			fmt.Sprintf("%.2fx", h.LossVsToggle1),
			fmt.Sprintf("%d", h.Emergencies))
	}
	return t
}

// SetpointStudy runs PI and PID at the paper's default and lowered
// setpoints (Table 13 / Section 7's setpoint sensitivity). Like the
// policy evaluation, all cells go through one batch so gang scheduling
// can group them by benchmark.
func SetpointStudy(p Params) (*stats.Table, error) {
	names := bench.Names()
	type cell struct {
		pol string
		sp  float64
	}
	var cells []cell
	for _, pol := range []string{"PI", "PID"} {
		for _, sp := range []float64{bench.PISetpoint, bench.LowSetpoint} {
			cells = append(cells, cell{pol, sp})
		}
	}
	specs := make([]runSpec, 0, (1+len(cells))*len(names))
	for _, n := range names {
		specs = append(specs, runSpec{bench: n, policy: "none"})
	}
	for _, c := range cells {
		for _, n := range names {
			specs = append(specs, runSpec{bench: n, policy: c.pol, setpoint: c.sp})
		}
	}
	all, err := runBatch(p, specs)
	if err != nil {
		return nil, err
	}
	base := all[:len(names)]
	t := &stats.Table{Header: []string{"policy", "setpoint", "mean % of base IPC", "emergency cycles"}}
	for k, c := range cells {
		results := all[(k+1)*len(names) : (k+2)*len(names)]
		var pcts []float64
		var emerg uint64
		for i, r := range results {
			pcts = append(pcts, r.IPC/base[i].IPC)
			emerg += r.EmergencyCycles
		}
		t.AddRow(c.pol, fmt.Sprintf("%.1f", c.sp),
			fmt.Sprintf("%.1f%%", 100*stats.Mean(pcts)),
			fmt.Sprintf("%d", emerg))
	}
	return t, nil
}

// Trace runs one benchmark under one policy with time-series recording
// (the temperature/duty figures).
func Trace(p Params, benchName, policy string, stride uint64) (*sim.Result, error) {
	prof, err := bench.ByName(benchName)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{Workload: prof, MaxInsts: p.Insts, TraceStride: stride}
	if err := bench.ApplyPolicy(&cfg, policy, 0); err != nil {
		return nil, err
	}
	p.instrument(&cfg, benchName+"/"+policy)
	return p.runSim(p.ctx(), cfg)
}

// SeedStats summarizes a benchmark's metric spread across workload seeds —
// the confidence check that the synthetic proxies' conclusions are not
// artifacts of one random program structure.
type SeedStats struct {
	Benchmark, Policy  string
	N                  int
	IPCMean, IPCStd    float64
	EmergMean, EmergSD float64 // emergency fraction
}

// SeedStudy reruns one benchmark/policy across n workload seeds.
func SeedStudy(p Params, benchName, policy string, n int) (SeedStats, error) {
	if n < 2 {
		return SeedStats{}, fmt.Errorf("experiments: seed study needs n >= 2")
	}
	base, err := bench.ByName(benchName)
	if err != nil {
		return SeedStats{}, err
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = base.Seed + uint64(i)*0x9e3779b97f4a7c15
	}
	opts := runner.Options{Workers: p.Workers, Progress: p.Progress}
	if p.Registry != nil {
		opts.Metrics = telemetry.NewRunnerMetrics(p.Registry)
	}
	results, err := runner.Map(p.ctx(), opts, seeds,
		func(ctx context.Context, seed uint64) (*sim.Result, error) {
			prof := base
			prof.Seed = seed
			cfg := sim.Config{Workload: prof, MaxInsts: p.Insts}
			if err := bench.ApplyPolicy(&cfg, policy, 0); err != nil {
				return nil, err
			}
			p.instrument(&cfg, benchName+"/"+policy)
			return p.runSim(ctx, cfg)
		})
	if err != nil {
		return SeedStats{}, err
	}
	var ipc, emerg stats.Running
	for _, res := range results {
		ipc.Add(res.IPC)
		emerg.Add(res.EmergencyFrac())
	}
	return SeedStats{
		Benchmark: benchName, Policy: policy, N: n,
		IPCMean: ipc.Mean(), IPCStd: ipc.StdDev(),
		EmergMean: emerg.Mean(), EmergSD: emerg.StdDev(),
	}, nil
}
