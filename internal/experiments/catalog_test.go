package experiments

import (
	"strings"
	"testing"

	"repro/internal/runindex"
)

func testCatalog(t *testing.T) *runindex.Catalog {
	t.Helper()
	cat, err := runindex.Open("", runindex.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { cat.Close() })
	// Two benchmarks; gcc has a dominated point (PID: lower IPC AND more
	// emergency than PI) that must stay off the pareto frontier.
	recs := []runindex.Record{
		{Key: "k1", Bench: "gcc", Policy: "", IPC: 1.00, EmergFrac: 0.10, AvgPower: 40},
		{Key: "k2", Bench: "gcc", Policy: "PI", Trigger: 111.2, Interval: 1000, IPC: 0.90, EmergFrac: 0.01, AvgPower: 35},
		{Key: "k3", Bench: "gcc", Policy: "PID", Trigger: 111.2, Interval: 1000, IPC: 0.85, EmergFrac: 0.02, AvgPower: 34},
		{Key: "k4", Bench: "gcc", Policy: "toggle1", Trigger: 110.3, Interval: 1000, IPC: 0.70, EmergFrac: 0.00, AvgPower: 30},
		{Key: "k5", Bench: "art", Policy: "PI", Trigger: 111.2, Interval: 2000, IPC: 0.60, EmergFrac: 0.00, AvgPower: 20},
		{Key: "k6", Bench: "gcc", Policy: "PI", Trigger: 111.0, Interval: 2000, IPC: 0.88, EmergFrac: 0.01, AvgPower: 34},
	}
	for _, r := range recs {
		if !cat.Ingest(r) {
			t.Fatalf("ingest %s: duplicate", r.Key)
		}
	}
	return cat
}

func TestCatalogSummary(t *testing.T) {
	out := CatalogSummary(testCatalog(t)).String()
	for _, want := range []string{"art/PI", "gcc/none", "gcc/PI", "gcc/PID", "gcc/toggle1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing group %q:\n%s", want, out)
		}
	}
	// gcc/PI groups two runs with mean IPC (0.90+0.88)/2.
	if !strings.Contains(out, "0.8900") {
		t.Errorf("summary missing gcc/PI mean IPC 0.8900:\n%s", out)
	}
}

func TestCatalogPareto(t *testing.T) {
	out := CatalogPareto(testCatalog(t)).String()
	if strings.Contains(out, "PID") {
		t.Errorf("dominated PID point on frontier:\n%s", out)
	}
	// The safest (toggle1), the knee (PI @ 0.90) and the fastest
	// (uncontrolled) gcc points all belong; k6 (0.88 IPC at the same
	// residency as k2's 0.90) does not.
	for _, want := range []string{"toggle1", "none", "art"} {
		if !strings.Contains(out, want) {
			t.Errorf("frontier missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "0.8800") {
		t.Errorf("dominated gcc/PI (IPC 0.88) on frontier:\n%s", out)
	}
}

func TestCatalogSensitivity(t *testing.T) {
	out := CatalogSensitivity(testCatalog(t), runindex.DimInterval).String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + rule + three interval values (0, 1000, 2000), ascending.
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "0 ") || !strings.HasPrefix(lines[3], "1000") || !strings.HasPrefix(lines[4], "2000") {
		t.Errorf("interval buckets not ascending:\n%s", out)
	}
	if _, err := runindex.ParseDim("interval"); err != nil {
		t.Fatalf("ParseDim: %v", err)
	}
}
