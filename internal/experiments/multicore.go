package experiments

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
)

// mcSpec identifies one multicore simulation in a face-off batch.
type mcSpec struct {
	scenario string
	policy   string
	cores    int
}

// runMulticoreBatch executes multicore specs through the parallel
// experiment engine. Multicore runs carry per-core pipelines and the
// coupled die-wide network, so they always run solo (no gang/cache layer).
func runMulticoreBatch(p Params, specs []mcSpec) ([]*sim.MulticoreResult, error) {
	opts := runner.Options{Workers: p.Workers, Progress: p.Progress}
	return runner.Map(p.ctx(), opts, specs,
		func(ctx context.Context, sp mcSpec) (*sim.MulticoreResult, error) {
			cfg, err := bench.NewMulticoreRun(sp.scenario, sp.policy, sp.cores, p.Insts)
			if err != nil {
				return nil, err
			}
			return sim.RunMulticore(ctx, cfg)
		})
}

// MulticoreFaceOff runs the multicore controller face-off: every
// core-interaction scenario at every core count under every multicore
// policy (the paper's PID replicated per core vs the adjustable-gain
// integral DVFS controller vs the hierarchical power budget), reporting
// throughput against the uncontrolled baseline of the same cell alongside
// the thermal outcome. Insts is the per-core budget.
func MulticoreFaceOff(p Params, coreCounts []int) (*stats.Table, error) {
	if len(coreCounts) == 0 {
		coreCounts = []int{1, 2, 4}
	}
	scenarios := bench.MulticoreWorkloads()
	policies := bench.MulticorePolicies()
	var specs []mcSpec
	for _, sc := range scenarios {
		for _, nc := range coreCounts {
			for _, pol := range policies {
				specs = append(specs, mcSpec{scenario: sc, policy: pol, cores: nc})
			}
		}
	}
	results, err := runMulticoreBatch(p, specs)
	if err != nil {
		return nil, err
	}

	// Index the uncontrolled baseline of each scenario x cores cell.
	baseIPC := map[[2]string]float64{}
	for i, sp := range specs {
		if sp.policy == "none" {
			baseIPC[[2]string{sp.scenario, fmt.Sprint(sp.cores)}] = results[i].IPC
		}
	}

	t := &stats.Table{Header: []string{
		"scenario", "cores", "policy", "ipc", "% of none", "emerg %", "stress %", "avg duty", "avg freq"}}
	for i, sp := range specs {
		r := results[i]
		rel := 0.0
		if b := baseIPC[[2]string{sp.scenario, fmt.Sprint(sp.cores)}]; b > 0 {
			rel = r.IPC / b
		}
		var dutySum, freqSum float64
		for c := range r.PerCore {
			dutySum += r.PerCore[c].AvgDuty
			freqSum += r.PerCore[c].AvgFreq
		}
		nc := float64(len(r.PerCore))
		t.AddRow(sp.scenario,
			fmt.Sprint(sp.cores),
			r.Policy,
			fmt.Sprintf("%.3f", r.IPC),
			stats.Percent(rel),
			stats.Percent(r.EmergencyFrac()),
			stats.Percent(r.StressFrac()),
			fmt.Sprintf("%.3f", dutySum/nc),
			fmt.Sprintf("%.3f", freqSum/nc))
	}
	return t, nil
}
