// Package cache models the memory hierarchy of Table 2: set-associative
// write-back caches with LRU replacement (L1 I/D 64 KB 2-way 32 B blocks,
// unified L2 2 MB 4-way 32 B blocks, 11-cycle latency), a 100-cycle main
// memory, and a 128-entry fully-associative TLB with a 30-cycle miss
// penalty.
//
// The model is functional-timing: an access returns its total latency and
// whether each level missed; the simulator charges the latency to the
// requesting instruction and the access counts drive the power model.
package cache

import "fmt"

// Config sizes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Assoc     int
	BlockSize int
	// Latency is the hit latency in cycles.
	Latency int
	// WriteBack selects write-back (true) vs write-through.
	WriteBack bool
}

// DefaultL1D returns Table 2's L1 data cache configuration.
func DefaultL1D() Config {
	return Config{Name: "dl1", SizeBytes: 64 << 10, Assoc: 2, BlockSize: 32, Latency: 1, WriteBack: true}
}

// DefaultL1I returns Table 2's L1 instruction cache configuration.
func DefaultL1I() Config {
	return Config{Name: "il1", SizeBytes: 64 << 10, Assoc: 2, BlockSize: 32, Latency: 1, WriteBack: true}
}

// DefaultL2 returns Table 2's unified L2 configuration.
func DefaultL2() Config {
	return Config{Name: "ul2", SizeBytes: 2 << 20, Assoc: 4, BlockSize: 32, Latency: 11, WriteBack: true}
}

// MemLatency is the main-memory access latency in cycles (Table 2).
const MemLatency = 100

type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

// Stats counts cache traffic.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses/accesses, or 0 with no traffic.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one level of the hierarchy. Next points to the lower level; a
// nil Next means misses go to main memory.
type Cache struct {
	cfg      Config
	sets     int
	setShift uint
	tagShift uint
	lines    []line
	clock    uint64
	stats    Stats
	next     *Cache
}

// New builds a cache level backed by next (nil = main memory).
func New(cfg Config, next *Cache) *Cache {
	if cfg.SizeBytes <= 0 || cfg.Assoc <= 0 || cfg.BlockSize <= 0 {
		panic(fmt.Sprintf("cache: invalid config %+v", cfg))
	}
	if cfg.BlockSize&(cfg.BlockSize-1) != 0 {
		panic(fmt.Sprintf("cache: block size %d not a power of two", cfg.BlockSize))
	}
	sets := cfg.SizeBytes / (cfg.Assoc * cfg.BlockSize)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: %s has %d sets, want a power of two", cfg.Name, sets))
	}
	shift := uint(0)
	for 1<<shift < cfg.BlockSize {
		shift++
	}
	setBits := uint(0)
	for 1<<setBits < sets {
		setBits++
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: shift,
		tagShift: shift + setBits,
		lines:    make([]line, sets*cfg.Assoc),
		next:     next,
	}
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// CountHit records a hit that bypassed the lookup. Callers that can prove
// an access re-touches the most-recently-used line (e.g. sequential fetch
// within one block) may skip Access entirely: re-touching the MRU line
// leaves LRU order unchanged, so only the access counter must advance.
func (c *Cache) CountHit() { c.stats.Accesses++ }

// Stats returns a copy of the traffic counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) set(addr uint64) []line {
	s := int((addr >> c.setShift) & uint64(c.sets-1))
	return c.lines[s*c.cfg.Assoc : (s+1)*c.cfg.Assoc]
}

// Access performs a read (write=false) or write (write=true) of addr and
// returns the total latency in cycles including any lower-level fills, and
// whether this level missed.
func (c *Cache) Access(addr uint64, write bool) (lat int, miss bool) {
	c.clock++
	c.stats.Accesses++
	tag := addr >> c.tagShift
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.clock
			if write {
				if c.cfg.WriteBack {
					set[i].dirty = true
					return c.cfg.Latency, false
				}
				// Write-through: propagate without stalling
				// the pipeline model beyond the hit latency.
				c.fillBelow(addr, true)
				return c.cfg.Latency, false
			}
			return c.cfg.Latency, false
		}
	}
	// Miss: fetch from below, install with LRU replacement.
	c.stats.Misses++
	below := c.fillBelow(addr, false)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.Writebacks++
		// Write-back of the victim to the next level; modeled as
		// off the critical path (no added latency), as in
		// sim-outorder's default.
		if c.next != nil {
			c.next.writebackFill(c.reconstruct(addr, set[victim].tag))
		}
	}
	set[victim] = line{valid: true, dirty: write && c.cfg.WriteBack, tag: tag, lru: c.clock}
	return c.cfg.Latency + below, true
}

// reconstruct rebuilds a victim block address from its tag and the set of
// the incoming address (same set by construction).
func (c *Cache) reconstruct(incoming uint64, victimTag uint64) uint64 {
	setIdx := (incoming >> c.setShift) & uint64(c.sets-1)
	return victimTag<<c.tagShift | setIdx<<c.setShift
}

// fillBelow fetches addr from the next level (or memory) and returns the
// added latency.
func (c *Cache) fillBelow(addr uint64, write bool) int {
	if c.next == nil {
		return MemLatency
	}
	lat, _ := c.next.Access(addr, write)
	return lat
}

// writebackFill installs a dirty victim into this level without charging
// latency to the requester.
func (c *Cache) writebackFill(addr uint64) {
	c.clock++
	tag := addr >> c.tagShift
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = true
			set[i].lru = c.clock
			return
		}
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{valid: true, dirty: true, tag: tag, lru: c.clock}
}

// Clone returns an independent deep copy of this level backed by next.
// The caller is responsible for reproducing the hierarchy topology: clone
// the shared L2 first, then clone each L1 with the L2 clone as next, so the
// copy preserves the original's sharing structure exactly.
func (c *Cache) Clone(next *Cache) *Cache {
	q := *c
	q.lines = append(c.lines[:0:0], c.lines...)
	q.next = next
	return &q
}

// Flush invalidates every line (tests and phase boundaries).
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// TLB is the 128-entry fully-associative translation buffer of Table 2.
// The fully-associative lookup is implemented with a map plus per-slot LRU
// stamps; behaviourally it is an exact LRU CAM.
type TLB struct {
	entries     int
	pageShift   uint
	missPenalty int
	slots       []struct {
		valid bool
		vpn   uint64
		lru   uint64
	}
	index map[uint64]int // vpn -> slot
	clock uint64
	stats Stats
}

// DefaultTLB returns Table 2's TLB: 128 entries, fully associative,
// 30-cycle miss penalty, 4 KB pages.
func DefaultTLB() *TLB { return NewTLB(128, 12, 30) }

// NewTLB builds a TLB with the given entry count, page shift (log2 page
// size) and miss penalty in cycles.
func NewTLB(entries int, pageShift uint, missPenalty int) *TLB {
	if entries <= 0 || pageShift == 0 || missPenalty < 0 {
		panic(fmt.Sprintf("cache: invalid TLB config %d/%d/%d", entries, pageShift, missPenalty))
	}
	t := &TLB{entries: entries, pageShift: pageShift, missPenalty: missPenalty}
	t.slots = make([]struct {
		valid bool
		vpn   uint64
		lru   uint64
	}, entries)
	t.index = make(map[uint64]int, entries)
	return t
}

// Access translates addr, returning the added latency (0 on hit).
func (t *TLB) Access(addr uint64) (lat int, miss bool) {
	t.clock++
	t.stats.Accesses++
	vpn := addr >> t.pageShift
	if i, ok := t.index[vpn]; ok {
		t.slots[i].lru = t.clock
		return 0, false
	}
	t.stats.Misses++
	victim := 0
	for i := range t.slots {
		if !t.slots[i].valid {
			victim = i
			break
		}
		if t.slots[i].lru < t.slots[victim].lru {
			victim = i
		}
	}
	if t.slots[victim].valid {
		delete(t.index, t.slots[victim].vpn)
	}
	t.slots[victim].valid = true
	t.slots[victim].vpn = vpn
	t.slots[victim].lru = t.clock
	t.index[vpn] = victim
	return t.missPenalty, true
}

// Clone returns an independent deep copy of the TLB, including its LRU
// stamps and the vpn index.
func (t *TLB) Clone() *TLB {
	q := *t
	q.slots = append(t.slots[:0:0], t.slots...)
	q.index = make(map[uint64]int, len(t.index))
	for k, v := range t.index {
		q.index[k] = v
	}
	return &q
}

// Stats returns a copy of the TLB traffic counters.
func (t *TLB) Stats() Stats { return t.stats }
