package cache

import (
	"testing"
	"testing/quick"
)

func newHierarchy() (*Cache, *Cache, *Cache) {
	l2 := New(DefaultL2(), nil)
	l1d := New(DefaultL1D(), l2)
	l1i := New(DefaultL1I(), l2)
	return l1d, l1i, l2
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	bad := []Config{
		{},
		{SizeBytes: 64, Assoc: 2, BlockSize: 33}, // non-pow2 block
		{SizeBytes: 96, Assoc: 1, BlockSize: 32}, // non-pow2 sets
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New(%+v) did not panic", i, cfg)
				}
			}()
			New(cfg, nil)
		}()
	}
}

func TestDefaultGeometries(t *testing.T) {
	l1d, _, l2 := newHierarchy()
	if l1d.sets != 1024 {
		t.Errorf("L1D sets = %d, want 1024", l1d.sets)
	}
	if l2.sets != 16384 {
		t.Errorf("L2 sets = %d, want 16384", l2.sets)
	}
}

func TestColdMissThenHit(t *testing.T) {
	l1d, _, _ := newHierarchy()
	lat, miss := l1d.Access(0x1000, false)
	if !miss {
		t.Error("first access should miss")
	}
	// L1 miss -> L2 miss -> memory: 1 + 11 + 100.
	if lat != 1+11+100 {
		t.Errorf("cold miss latency = %d, want 112", lat)
	}
	lat, miss = l1d.Access(0x1000, false)
	if miss || lat != 1 {
		t.Errorf("hit = lat %d miss %v, want 1,false", lat, miss)
	}
	// Same block, different word: still a hit.
	if _, miss := l1d.Access(0x101f, false); miss {
		t.Error("same-block access missed")
	}
	// L2 hit after L1 eviction path: a second cold L1 block in the same
	// L2 block would hit L2; use an address one L1 set apart but same L2
	// block is impossible (same block size), so just check L2 stats.
	if got := l1d.Stats().Misses; got != 1 {
		t.Errorf("L1 misses = %d, want 1", got)
	}
}

func TestL2HitLatency(t *testing.T) {
	l2 := New(DefaultL2(), nil)
	l1 := New(DefaultL1D(), l2)
	l1.Access(0x4000, false) // fills both levels
	// Evict 0x4000 from 2-way L1 set by touching two conflicting blocks:
	// L1 has 1024 sets * 32B = 32K stride per way.
	l1.Access(0x4000+32<<10, false)
	l1.Access(0x4000+64<<10, false)
	lat, miss := l1.Access(0x4000, false)
	if !miss {
		t.Fatal("expected L1 miss after eviction")
	}
	if lat != 1+11 {
		t.Errorf("L1-miss/L2-hit latency = %d, want 12", lat)
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := Config{Name: "t", SizeBytes: 64, Assoc: 2, BlockSize: 32, Latency: 1, WriteBack: true}
	c := New(cfg, nil) // 1 set, 2 ways
	c.Access(0x000, false)
	c.Access(0x100, false)
	c.Access(0x000, false) // touch -> 0x100 is LRU
	c.Access(0x200, false) // evicts 0x100
	if _, miss := c.Access(0x000, false); miss {
		t.Error("MRU block was evicted")
	}
	if _, miss := c.Access(0x100, false); !miss {
		t.Error("LRU block was not evicted")
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	cfg := Config{Name: "t", SizeBytes: 64, Assoc: 1, BlockSize: 32, Latency: 1, WriteBack: true}
	l2 := New(Config{Name: "b", SizeBytes: 1 << 10, Assoc: 1, BlockSize: 32, Latency: 11, WriteBack: true}, nil)
	c := New(cfg, l2)
	c.Access(0x000, true)  // dirty
	c.Access(0x100, false) // conflicts (2 sets... wait 64/32=2 sets)
	// 2 sets: 0x000 -> set0, 0x100 -> set0 (bit5 selects set: 0x100 has
	// bit5=0 -> set0). Evicts dirty block -> writeback.
	if wb := c.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1", wb)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	cfg := Config{Name: "t", SizeBytes: 64, Assoc: 1, BlockSize: 32, Latency: 1, WriteBack: true}
	c := New(cfg, nil)
	c.Access(0x000, false) // clean fill
	c.Access(0x000, true)  // write hit -> dirty
	c.Access(0x080, false) // same set (bit5=0? 0x80: bits [5]=0 -> set0), evict
	if wb := c.Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1 after dirtying via write hit", wb)
	}
}

func TestMissRateStats(t *testing.T) {
	l1d, _, _ := newHierarchy()
	for i := 0; i < 100; i++ {
		l1d.Access(uint64(i)*32, false)
	}
	for i := 0; i < 100; i++ {
		l1d.Access(uint64(i)*32, false)
	}
	s := l1d.Stats()
	if s.Accesses != 200 || s.Misses != 100 {
		t.Errorf("stats = %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", s.MissRate())
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty miss rate != 0")
	}
}

func TestFlush(t *testing.T) {
	l1d, _, _ := newHierarchy()
	l1d.Access(0x1000, false)
	l1d.Flush()
	if _, miss := l1d.Access(0x1000, false); !miss {
		t.Error("access after Flush did not miss")
	}
}

// Property: a working set smaller than the cache, accessed repeatedly,
// must incur only compulsory misses.
func TestSmallWorkingSetOnlyCompulsoryMisses(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		l1 := New(DefaultL1D(), nil)
		nblocks := int(n8%64) + 1 // well under 2K blocks
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < nblocks; i++ {
				addr := (seed + uint64(i)*32) & 0xffff_ffff
				l1.Access(addr, i%3 == 0)
			}
		}
		return l1.Stats().Misses <= uint64(nblocks)+1 // +1 for straddle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := DefaultTLB()
	lat, miss := tlb.Access(0x1000)
	if !miss || lat != 30 {
		t.Errorf("cold TLB access = %d,%v, want 30,true", lat, miss)
	}
	lat, miss = tlb.Access(0x1fff) // same 4K page
	if miss || lat != 0 {
		t.Errorf("same-page access = %d,%v, want 0,false", lat, miss)
	}
	if _, miss := tlb.Access(0x2000); !miss {
		t.Error("next page should miss")
	}
}

func TestTLBCapacityLRU(t *testing.T) {
	tlb := NewTLB(4, 12, 30)
	for p := 0; p < 4; p++ {
		tlb.Access(uint64(p) << 12)
	}
	tlb.Access(0) // touch page 0
	tlb.Access(5 << 12)
	// Page 1 was LRU and must be evicted; page 0 must survive.
	if _, miss := tlb.Access(0); miss {
		t.Error("MRU page evicted")
	}
	if _, miss := tlb.Access(1 << 12); !miss {
		t.Error("LRU page not evicted")
	}
}

func TestNewTLBPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTLB(0,...) did not panic")
		}
	}()
	NewTLB(0, 12, 30)
}
