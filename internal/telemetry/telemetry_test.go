package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterHandlesSumAcrossStripes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "test")
	h1, h2 := c.Handle(), c.Handle()
	for i := 0; i < 100; i++ {
		h1.Inc()
	}
	h2.Add(25)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 130 {
		t.Fatalf("Value = %d, want 130", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "one")
	b := r.Counter("same_total", "two")
	if a != b {
		t.Fatal("re-registering a counter name returned a different metric")
	}
	g1 := r.Gauge("g", "")
	g2 := r.Gauge("g", "")
	if g1 != g2 {
		t.Fatal("re-registering a gauge name returned a different metric")
	}
	h1 := r.Histogram("h", "", []float64{1, 2})
	h2 := r.Histogram("h", "", []float64{9})
	if h1 != h2 {
		t.Fatal("re-registering a histogram name returned a different metric")
	}
	if got := len(h2.Bounds()); got != 2 {
		t.Fatalf("histogram bounds changed on re-registration: %d", got)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter name did not panic")
		}
	}()
	r.Gauge("dup", "")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "1abc", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
}

func TestGaugeSetAndValue(t *testing.T) {
	g := NewRegistry().Gauge("temp", "")
	g.Set(110.25)
	if got := g.Value(); got != 110.25 {
		t.Fatalf("Value = %g", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("Value = %g", got)
	}
}

func TestHistogramBucketsSumCount(t *testing.T) {
	h := NewRegistry().Histogram("lat", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d", got)
	}
	if got := h.Sum(); math.Abs(got-556.5) > 1e-9 {
		t.Fatalf("Sum = %g", got)
	}
	// le semantics: 0.5 and 1 land in bucket <=1; 5 in <=10; 50 in <=100;
	// 500 overflows to +Inf.
	wantCum := []int64{2, 3, 4, 5}
	for i, want := range wantCum {
		if got := h.Bucket(i); got != want {
			t.Fatalf("Bucket(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sim_cycles_total", "Simulated clock cycles.")
	c.Add(42)
	r.Gauge("sim_hottest_temp_celsius", "Hot.").Set(111.25)
	h := r.Histogram("run_seconds", "Wall.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(20)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE sim_cycles_total counter",
		"sim_cycles_total 42",
		"# TYPE sim_hottest_temp_celsius gauge",
		"sim_hottest_temp_celsius 111.25",
		"# TYPE run_seconds histogram",
		`run_seconds_bucket{le="1"} 1`,
		`run_seconds_bucket{le="10"} 1`,
		`run_seconds_bucket{le="+Inf"} 2`,
		"run_seconds_sum 20.5",
		"run_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Deterministic ordering: run_seconds sorts before sim_*.
	if strings.Index(out, "run_seconds") > strings.Index(out, "sim_cycles_total") {
		t.Error("exposition not sorted by metric name")
	}
}

func TestConcurrentCountersAndHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	h := r.Histogram("conc_hist", "", []float64{0.5})
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hd := c.Handle()
			for i := 0; i < per; i++ {
				hd.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := h.Sum(); got != workers*per {
		t.Fatalf("histogram sum = %g, want %d", got, workers*per)
	}
}

// TestZeroAllocHotPath is part of the repository's allocation gate
// (`go test -run TestZeroAlloc`): the pre-registered handle paths must not
// allocate.
func TestZeroAllocHotPath(t *testing.T) {
	r := NewRegistry()
	h := r.Counter("hot_total", "").Handle()
	g := r.Gauge("hot_gauge", "")
	hist := r.Histogram("hot_hist", "", ThermalStepBuckets)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1000; i++ {
			h.Inc()
			h.Add(2)
			g.Set(float64(i))
			hist.Observe(float64(i) * 1e-9)
		}
	})
	if allocs > 0 {
		t.Fatalf("metric hot path allocates %.2f per run; want 0", allocs)
	}
}

func TestBundlesRegisterOnce(t *testing.T) {
	r := NewRegistry()
	a := NewSimMetrics(r)
	b := NewSimMetrics(r)
	a.Cycles.Add(10)
	b.Cycles.Add(5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sim_cycles_total 15") {
		t.Fatalf("bundle handles did not share one counter:\n%s", sb.String())
	}
	rm := NewRunnerMetrics(r)
	rm.RunsStarted.Inc()
	if rm.RunsStarted.Value() != 1 {
		t.Fatal("runner metrics broken")
	}
}

func TestClusterMetricsPerWorkerFamilies(t *testing.T) {
	r := NewRegistry()
	m := NewClusterMetrics(r, 3)
	if len(m.Workers) != 3 {
		t.Fatalf("worker bundles = %d, want 3", len(m.Workers))
	}
	m.Dispatched.Inc()
	m.Workers[2].Dispatched.Inc()
	m.Workers[2].Up.Set(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"cluster_dispatched_total 1",
		"cluster_worker_2_dispatched_total 1",
		"cluster_worker_2_up 1",
		"cluster_worker_0_dispatched_total 0",
		"cluster_dispatch_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Re-registration shares the same underlying metrics.
	again := NewClusterMetrics(r, 3)
	again.Dispatched.Inc()
	if m.Dispatched.Value() != 2 {
		t.Error("cluster bundles did not share one counter")
	}
}

// TestZeroAllocClusterMetricsHandles is part of the allocation gate: the
// cluster dispatch path increments these handles once per run, and the
// routing + bookkeeping hot path must stay allocation-free.
func TestZeroAllocClusterMetricsHandles(t *testing.T) {
	r := NewRegistry()
	m := NewClusterMetrics(r, 2)
	w := m.Workers[1]
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			m.Dispatched.Inc()
			m.Retried.Inc()
			m.Requeued.Inc()
			m.Hedges.Inc()
			m.AffinityHits.Inc()
			m.AffinityMisses.Inc()
			m.WorkersUp.Set(float64(i))
			m.DispatchSeconds.Observe(float64(i) * 1e-3)
			w.Dispatched.Inc()
			w.Up.Set(1)
			w.InFlight.Set(float64(i))
		}
	})
	if allocs > 0 {
		t.Fatalf("cluster metrics hot path allocates %.2f per run; want 0", allocs)
	}
}
