package telemetry

// This file defines the pre-registered handle bundles the hot paths hold:
// SimMetrics for the per-cycle simulation loop and RunnerMetrics for the
// parallel experiment engine. Bundles are built per incrementer (one per
// Sim, one per batch) against a shared Registry; registration is
// get-or-create, so every bundle increments the same underlying metrics
// while keeping its own uncontended counter stripes.

import "fmt"

// Standard bucket layouts.
var (
	// ThermalStepBuckets covers the per-cycle thermal solve: hundreds of
	// nanoseconds to pathological milliseconds.
	ThermalStepBuckets = []float64{250e-9, 500e-9, 1e-6, 2.5e-6, 5e-6, 10e-6, 50e-6, 250e-6, 1e-3}
	// RunSecondsBuckets covers one simulation's wall time: sub-second
	// smoke runs to multi-minute full-fidelity runs.
	RunSecondsBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}
	// AdmissionWaitBuckets covers the time a request spends queued for an
	// execution slot: instant grants to the configured queue-wait bound.
	AdmissionWaitBuckets = []float64{10e-6, 100e-6, 1e-3, 5e-3, 25e-3, 100e-3, 500e-3, 2.5}
	// RequestSecondsBuckets covers HTTP request latency end to end: fast
	// sheds and cache hits through full simulations.
	RequestSecondsBuckets = []float64{1e-3, 5e-3, 10e-3, 25e-3, 100e-3, 250e-3, 1, 2.5, 10, 30, 120}
)

// SimMetrics is the instrumentation bundle for one simulation: counter
// handles the sim flushes its hot-loop tallies into, gauges holding the
// live closed-loop state, and the sampled thermal-solver timing histogram.
type SimMetrics struct {
	// Hot-loop counters (flushed in batches by the sim, exact at Finish).
	Cycles          *CounterHandle
	Insts           *CounterHandle
	StallCycles     *CounterHandle
	EmergencyCycles *CounterHandle
	StressCycles    *CounterHandle

	// Controller-sample events.
	DTMSamples       *CounterHandle
	SaturatedSamples *CounterHandle
	WindupFreezes    *CounterHandle
	Escalations      *CounterHandle

	// Live closed-loop state (last writer wins across parallel runs).
	HotTemp    *Gauge
	Duty       *Gauge
	FreqFactor *Gauge

	// ThermalStep is the sampled wall time of one thermal-network step.
	ThermalStep *Histogram
}

// NewSimMetrics registers (or reuses) the simulation metric family on r and
// returns a fresh handle bundle for one run.
func NewSimMetrics(r *Registry) *SimMetrics {
	return &SimMetrics{
		Cycles:          r.Counter("sim_cycles_total", "Simulated clock cycles.").Handle(),
		Insts:           r.Counter("sim_insts_total", "Committed instructions.").Handle(),
		StallCycles:     r.Counter("sim_stall_cycles_total", "Trigger-mechanism and resync stall cycles.").Handle(),
		EmergencyCycles: r.Counter("sim_emergency_cycles_total", "Cycles with any block above the emergency threshold.").Handle(),
		StressCycles:    r.Counter("sim_stress_cycles_total", "Cycles with any block above the stress threshold.").Handle(),

		DTMSamples:       r.Counter("dtm_samples_total", "DTM controller sampling events.").Handle(),
		SaturatedSamples: r.Counter("dtm_saturated_samples_total", "Controller samples that hit an actuator bound.").Handle(),
		WindupFreezes:    r.Counter("dtm_antiwindup_freezes_total", "Controller samples whose integrator was frozen by anti-windup.").Handle(),
		Escalations:      r.Counter("dtm_escalations_total", "Hierarchy escalations to the backup mechanism.").Handle(),

		HotTemp:    r.Gauge("sim_hottest_temp_celsius", "Hottest block temperature of the most recent flush."),
		Duty:       r.Gauge("sim_fetch_duty", "Applied fetch duty of the most recent flush."),
		FreqFactor: r.Gauge("sim_freq_factor", "Clock ratio of the most recent flush (1 = full speed)."),

		ThermalStep: r.Histogram("sim_thermal_step_seconds", "Sampled wall time of one thermal-network step.", ThermalStepBuckets),
	}
}

// CacheMetrics is the run cache's bundle: lookup outcomes, the volume of
// stored result payloads, disk-layer retry/failure counts, the bounded
// memory layer's eviction count, and — when the pack-volume backend is
// selected — the pack store's shape (volumes, live/dead bytes) and
// maintenance activity (compactions, CRC-audit quarantines).
type CacheMetrics struct {
	Hits        *Counter
	Misses      *Counter
	Stores      *Counter
	Bytes       *Counter
	DiskRetries *Counter
	DiskErrors  *Counter

	// MemEvictions counts entries evicted from the size-capped in-memory
	// layer (the entry usually stays serveable from disk).
	MemEvictions *Counter

	// Pack-store shape: volume count and live vs dead (reclaimable)
	// bytes across all volumes. Zero when the flat-file backend is used.
	PackVolumes   *Gauge
	PackLiveBytes *Gauge
	PackDeadBytes *Gauge

	// Pack-store maintenance: volumes rewritten by compaction, and
	// needles quarantined as misses after a CRC mismatch.
	PackCompactions   *Counter
	PackAuditFailures *Counter
}

// NewCacheMetrics registers (or reuses) the run-cache metric family on r.
func NewCacheMetrics(r *Registry) *CacheMetrics {
	return &CacheMetrics{
		Hits:        r.Counter("cache_hits_total", "Run-cache lookups served from cache."),
		Misses:      r.Counter("cache_misses_total", "Run-cache lookups that required a simulation (including corrupted entries)."),
		Stores:      r.Counter("cache_stores_total", "Results stored into the run cache."),
		Bytes:       r.Counter("cache_stored_bytes_total", "Encoded bytes stored into the run cache."),
		DiskRetries: r.Counter("cache_disk_retries_total", "Disk cache operations retried after a transient I/O failure."),
		DiskErrors:  r.Counter("cache_disk_errors_total", "Disk cache operations abandoned after exhausting retries."),

		MemEvictions: r.Counter("cache_mem_evictions_total", "Entries evicted from the size-capped in-memory cache layer."),

		PackVolumes:   r.Gauge("cache_pack_volumes", "Pack volumes currently in the result store."),
		PackLiveBytes: r.Gauge("cache_pack_live_bytes", "Bytes of index-referenced needles across pack volumes."),
		PackDeadBytes: r.Gauge("cache_pack_dead_bytes", "Bytes of overwritten, deleted or quarantined needles awaiting compaction."),

		PackCompactions:   r.Counter("cache_pack_compactions_total", "Pack volumes rewritten by compaction."),
		PackAuditFailures: r.Counter("cache_pack_audit_failures_total", "Needles quarantined as misses after a CRC mismatch."),
	}
}

// ServingMetrics is the HTTP serving layer's bundle: admission-control
// outcomes (admitted vs shed, with the shed reason split out), response
// classes, live in-flight and queue-depth gauges, and the admission-wait
// and end-to-end request latency histograms.
type ServingMetrics struct {
	// Admission outcomes.
	Admitted        *Counter
	ShedQueueFull   *Counter
	ShedWaitTimeout *Counter

	// Response classes (2xx / 4xx / 5xx, with client disconnects — the
	// nginx-style 499 — counted separately from real server errors).
	ResponsesOK          *Counter
	ResponsesClientError *Counter
	ResponsesServerError *Counter
	ResponsesClientGone  *Counter

	// Live serving state.
	InFlight   *Gauge
	QueueDepth *Gauge

	// AdmissionWait is the time a request waited for an execution slot
	// (admitted requests only). RequestSeconds is end-to-end handler
	// latency including sheds.
	AdmissionWait  *Histogram
	RequestSeconds *Histogram
}

// NewServingMetrics registers (or reuses) the serving metric family on r.
func NewServingMetrics(r *Registry) *ServingMetrics {
	return &ServingMetrics{
		Admitted:        r.Counter("serve_admitted_total", "Requests granted a simulation slot."),
		ShedQueueFull:   r.Counter("serve_shed_queue_full_total", "Requests shed because the admission queue was full."),
		ShedWaitTimeout: r.Counter("serve_shed_wait_timeout_total", "Requests shed after waiting the full queue-wait bound."),

		ResponsesOK:          r.Counter("serve_responses_2xx_total", "Requests answered with a 2xx status."),
		ResponsesClientError: r.Counter("serve_responses_4xx_total", "Requests answered with a 4xx status (including 429 sheds)."),
		ResponsesServerError: r.Counter("serve_responses_5xx_total", "Requests answered with a 5xx status."),
		ResponsesClientGone:  r.Counter("serve_responses_client_gone_total", "Requests abandoned by the client before completion (499)."),

		InFlight:   r.Gauge("serve_inflight_runs", "Simulations currently holding an admission slot."),
		QueueDepth: r.Gauge("serve_admission_queue_depth", "Requests waiting for an admission slot."),

		AdmissionWait:  r.Histogram("serve_admission_wait_seconds", "Time admitted requests waited for a slot.", AdmissionWaitBuckets),
		RequestSeconds: r.Histogram("serve_request_seconds", "End-to-end handler latency, sheds included.", RequestSecondsBuckets),
	}
}

// ClusterMetrics is the coordinator's bundle: fleet-wide dispatch
// outcomes (with the cache-affinity routing hit ratio split into hit and
// miss counters), hedging and requeue activity, the healthy-worker gauge,
// the dispatch-latency histogram, and one ClusterWorkerMetrics set per
// fleet member. Everything on the dispatch path is a pre-registered
// handle: the routing decision and per-dispatch bookkeeping stay
// allocation-free per the repository gate.
type ClusterMetrics struct {
	// Dispatch outcomes. Dispatched counts every attempt handed to a
	// worker; Retried counts re-dispatches after a transport/5xx/429
	// failure; Requeued counts the subset of retries that moved a run to a
	// different worker than the failed attempt (a downed worker's
	// outstanding runs landing on survivors).
	Dispatched *Counter
	Retried    *Counter
	Requeued   *Counter

	// Hedging. Hedges counts speculative duplicate requests fired at a
	// second worker after the hedge delay; HedgeWins counts the hedges
	// whose response arrived first (the primary was cancelled).
	Hedges    *Counter
	HedgeWins *Counter

	// Routing affinity: a hit is a dispatch that landed on the rendezvous
	// owner of its cache key (the worker whose disk cache holds any prior
	// identical run); a miss fell back to a least-loaded healthy worker.
	AffinityHits   *Counter
	AffinityMisses *Counter

	// WorkersUp is the current healthy-worker count.
	WorkersUp *Gauge

	// DispatchSeconds is one worker round trip (request to full body).
	DispatchSeconds *Histogram

	// Workers holds the per-fleet-member sets, indexed like the pool.
	Workers []*ClusterWorkerMetrics
}

// ClusterWorkerMetrics is one fleet member's dispatch accounting.
type ClusterWorkerMetrics struct {
	Dispatched *Counter
	Retried    *Counter
	Requeued   *Counter
	Hedged     *Counter
	Up         *Gauge
	InFlight   *Gauge
}

// NewClusterMetrics registers (or reuses) the cluster metric family on r
// for a fleet of n workers. Per-worker metrics are indexed by position in
// the worker list (cluster_worker_0_..., cluster_worker_1_...).
func NewClusterMetrics(r *Registry, n int) *ClusterMetrics {
	m := &ClusterMetrics{
		Dispatched: r.Counter("cluster_dispatched_total", "Run dispatches handed to a worker (every attempt)."),
		Retried:    r.Counter("cluster_retries_total", "Dispatches re-issued after a transport, 5xx or 429 failure."),
		Requeued:   r.Counter("cluster_requeued_total", "Retries that moved a run onto a different worker than the failed attempt."),

		Hedges:    r.Counter("cluster_hedges_total", "Speculative duplicate requests fired at a second worker."),
		HedgeWins: r.Counter("cluster_hedge_wins_total", "Hedged requests whose response won the race."),

		AffinityHits:   r.Counter("cluster_affinity_hits_total", "Dispatches routed to the rendezvous owner of their cache key."),
		AffinityMisses: r.Counter("cluster_affinity_misses_total", "Dispatches that fell back to a least-loaded healthy worker."),

		WorkersUp: r.Gauge("cluster_workers_up", "Workers currently considered healthy."),

		DispatchSeconds: r.Histogram("cluster_dispatch_seconds", "One worker round trip, request to full response body.", RequestSecondsBuckets),

		Workers: make([]*ClusterWorkerMetrics, n),
	}
	for i := range m.Workers {
		p := fmt.Sprintf("cluster_worker_%d_", i)
		m.Workers[i] = &ClusterWorkerMetrics{
			Dispatched: r.Counter(p+"dispatched_total", "Dispatches handed to this worker."),
			Retried:    r.Counter(p+"retried_total", "Failed dispatches on this worker that were retried."),
			Requeued:   r.Counter(p+"requeued_total", "Runs requeued onto this worker from a failed one."),
			Hedged:     r.Counter(p+"hedged_total", "Hedge requests fired at this worker."),
			Up:         r.Gauge(p+"up", "1 while this worker is considered healthy, else 0."),
			InFlight:   r.Gauge(p+"inflight", "Dispatches currently outstanding on this worker."),
		}
	}
	return m
}

// RunnerMetrics is the experiment engine's bundle: batch/run lifecycle
// counters, the live queue depth, and per-run wall time.
type RunnerMetrics struct {
	RunsStarted   *Counter
	RunsCompleted *Counter
	RunsFailed    *Counter
	QueueDepth    *Gauge
	RunSeconds    *Histogram
}

// NewRunnerMetrics registers (or reuses) the engine metric family on r.
func NewRunnerMetrics(r *Registry) *RunnerMetrics {
	return &RunnerMetrics{
		RunsStarted:   r.Counter("runner_runs_started_total", "Simulation jobs started."),
		RunsCompleted: r.Counter("runner_runs_completed_total", "Simulation jobs completed (including failures)."),
		RunsFailed:    r.Counter("runner_runs_failed_total", "Simulation jobs that returned an error, panicked or were skipped."),
		QueueDepth:    r.Gauge("runner_queue_depth", "Jobs not yet claimed by a worker."),
		RunSeconds:    r.Histogram("runner_run_seconds", "Per-job wall time.", RunSecondsBuckets),
	}
}

// IndexMetrics is the run catalog's bundle: ingest and query activity
// counters, recovery accounting (cold rebuilds and quarantined log
// frames), and the live record-count gauge. All handles are
// pre-registered so catalog hot paths stay allocation-free per the
// repository gate.
type IndexMetrics struct {
	Ingested    *Counter
	Duplicates  *Counter
	Queries     *Counter
	RangeScans  *Counter
	Rebuilds    *Counter
	Quarantined *Counter
	Records     *Gauge
}

// NewIndexMetrics registers (or reuses) the run-catalog metric family on r.
func NewIndexMetrics(r *Registry) *IndexMetrics {
	return &IndexMetrics{
		Ingested:    r.Counter("runindex_ingested_total", "Run records ingested into the catalog."),
		Duplicates:  r.Counter("runindex_duplicates_total", "Ingests skipped because the key was already cataloged."),
		Queries:     r.Counter("runindex_queries_total", "Catalog queries executed."),
		RangeScans:  r.Counter("runindex_range_scans_total", "Queries answered by a B+-tree range scan."),
		Rebuilds:    r.Counter("runindex_rebuilds_total", "Cold rebuilds of the catalog from a pack-store scan."),
		Quarantined: r.Counter("runindex_quarantined_total", "Catalog log frames dropped as corrupt during replay."),
		Records:     r.Gauge("runindex_records", "Records currently held by the catalog."),
	}
}
