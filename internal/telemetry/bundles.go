package telemetry

// This file defines the pre-registered handle bundles the hot paths hold:
// SimMetrics for the per-cycle simulation loop and RunnerMetrics for the
// parallel experiment engine. Bundles are built per incrementer (one per
// Sim, one per batch) against a shared Registry; registration is
// get-or-create, so every bundle increments the same underlying metrics
// while keeping its own uncontended counter stripes.

// Standard bucket layouts.
var (
	// ThermalStepBuckets covers the per-cycle thermal solve: hundreds of
	// nanoseconds to pathological milliseconds.
	ThermalStepBuckets = []float64{250e-9, 500e-9, 1e-6, 2.5e-6, 5e-6, 10e-6, 50e-6, 250e-6, 1e-3}
	// RunSecondsBuckets covers one simulation's wall time: sub-second
	// smoke runs to multi-minute full-fidelity runs.
	RunSecondsBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}
)

// SimMetrics is the instrumentation bundle for one simulation: counter
// handles the sim flushes its hot-loop tallies into, gauges holding the
// live closed-loop state, and the sampled thermal-solver timing histogram.
type SimMetrics struct {
	// Hot-loop counters (flushed in batches by the sim, exact at Finish).
	Cycles          *CounterHandle
	Insts           *CounterHandle
	StallCycles     *CounterHandle
	EmergencyCycles *CounterHandle
	StressCycles    *CounterHandle

	// Controller-sample events.
	DTMSamples       *CounterHandle
	SaturatedSamples *CounterHandle
	WindupFreezes    *CounterHandle
	Escalations      *CounterHandle

	// Live closed-loop state (last writer wins across parallel runs).
	HotTemp    *Gauge
	Duty       *Gauge
	FreqFactor *Gauge

	// ThermalStep is the sampled wall time of one thermal-network step.
	ThermalStep *Histogram
}

// NewSimMetrics registers (or reuses) the simulation metric family on r and
// returns a fresh handle bundle for one run.
func NewSimMetrics(r *Registry) *SimMetrics {
	return &SimMetrics{
		Cycles:          r.Counter("sim_cycles_total", "Simulated clock cycles.").Handle(),
		Insts:           r.Counter("sim_insts_total", "Committed instructions.").Handle(),
		StallCycles:     r.Counter("sim_stall_cycles_total", "Trigger-mechanism and resync stall cycles.").Handle(),
		EmergencyCycles: r.Counter("sim_emergency_cycles_total", "Cycles with any block above the emergency threshold.").Handle(),
		StressCycles:    r.Counter("sim_stress_cycles_total", "Cycles with any block above the stress threshold.").Handle(),

		DTMSamples:       r.Counter("dtm_samples_total", "DTM controller sampling events.").Handle(),
		SaturatedSamples: r.Counter("dtm_saturated_samples_total", "Controller samples that hit an actuator bound.").Handle(),
		WindupFreezes:    r.Counter("dtm_antiwindup_freezes_total", "Controller samples whose integrator was frozen by anti-windup.").Handle(),
		Escalations:      r.Counter("dtm_escalations_total", "Hierarchy escalations to the backup mechanism.").Handle(),

		HotTemp:    r.Gauge("sim_hottest_temp_celsius", "Hottest block temperature of the most recent flush."),
		Duty:       r.Gauge("sim_fetch_duty", "Applied fetch duty of the most recent flush."),
		FreqFactor: r.Gauge("sim_freq_factor", "Clock ratio of the most recent flush (1 = full speed)."),

		ThermalStep: r.Histogram("sim_thermal_step_seconds", "Sampled wall time of one thermal-network step.", ThermalStepBuckets),
	}
}

// CacheMetrics is the run cache's bundle: lookup outcomes and the volume
// of stored result payloads.
type CacheMetrics struct {
	Hits   *Counter
	Misses *Counter
	Stores *Counter
	Bytes  *Counter
}

// NewCacheMetrics registers (or reuses) the run-cache metric family on r.
func NewCacheMetrics(r *Registry) *CacheMetrics {
	return &CacheMetrics{
		Hits:   r.Counter("cache_hits_total", "Run-cache lookups served from cache."),
		Misses: r.Counter("cache_misses_total", "Run-cache lookups that required a simulation (including corrupted entries)."),
		Stores: r.Counter("cache_stores_total", "Results stored into the run cache."),
		Bytes:  r.Counter("cache_stored_bytes_total", "Encoded bytes stored into the run cache."),
	}
}

// RunnerMetrics is the experiment engine's bundle: batch/run lifecycle
// counters, the live queue depth, and per-run wall time.
type RunnerMetrics struct {
	RunsStarted   *Counter
	RunsCompleted *Counter
	RunsFailed    *Counter
	QueueDepth    *Gauge
	RunSeconds    *Histogram
}

// NewRunnerMetrics registers (or reuses) the engine metric family on r.
func NewRunnerMetrics(r *Registry) *RunnerMetrics {
	return &RunnerMetrics{
		RunsStarted:   r.Counter("runner_runs_started_total", "Simulation jobs started."),
		RunsCompleted: r.Counter("runner_runs_completed_total", "Simulation jobs completed (including failures)."),
		RunsFailed:    r.Counter("runner_runs_failed_total", "Simulation jobs that returned an error, panicked or were skipped."),
		QueueDepth:    r.Gauge("runner_queue_depth", "Jobs not yet claimed by a worker."),
		RunSeconds:    r.Histogram("runner_run_seconds", "Per-job wall time.", RunSecondsBuckets),
	}
}
