package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Sinks bundles the optional -trace / -metrics outputs of a command: a
// registry collecting metrics for a final Prometheus-text dump and a
// buffered JSONL trace recorder. Either half may be absent (nil Registry /
// nil Recorder) when its flag was not given.
type Sinks struct {
	Registry *Registry
	Recorder *Recorder

	traceFile   *os.File
	traceBuf    *bufio.Writer
	metricsPath string
}

// OpenSinks prepares the telemetry outputs for a command invocation.
// tracePath, when non-empty, receives JSONL samples ("-" = stdout);
// metricsPath, when non-empty, receives the final metrics exposition at
// Close ("-" = stderr). nblocks sizes the recorder's per-sample
// temperature buffers (the floorplan block count).
func OpenSinks(tracePath, metricsPath string, nblocks int) (*Sinks, error) {
	s := &Sinks{metricsPath: metricsPath}
	if metricsPath != "" {
		s.Registry = NewRegistry()
	}
	if tracePath != "" {
		var w io.Writer
		if tracePath == "-" {
			w = os.Stdout
		} else {
			f, err := os.Create(tracePath)
			if err != nil {
				return nil, fmt.Errorf("telemetry: open trace: %w", err)
			}
			s.traceFile = f
			s.traceBuf = bufio.NewWriterSize(f, 1<<20)
			w = s.traceBuf
		}
		if s.Registry == nil {
			s.Registry = NewRegistry()
		}
		s.Recorder = NewRecorder(w, nblocks, 0)
	}
	return s, nil
}

// Close flushes the trace stream and writes the final metrics dump. It
// returns the first error encountered; it is safe on a nil receiver.
func (s *Sinks) Close() error {
	if s == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if s.Recorder != nil {
		keep(s.Recorder.Flush())
	}
	if s.traceBuf != nil {
		keep(s.traceBuf.Flush())
	}
	if s.traceFile != nil {
		keep(s.traceFile.Close())
	}
	if s.metricsPath != "" && s.Registry != nil {
		if s.metricsPath == "-" {
			keep(s.Registry.WritePrometheus(os.Stderr))
		} else {
			f, err := os.Create(s.metricsPath)
			if err != nil {
				keep(err)
			} else {
				keep(s.Registry.WritePrometheus(f))
				keep(f.Close())
			}
		}
	}
	return first
}
