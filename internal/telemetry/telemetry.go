// Package telemetry is the observability layer for the simulator, the DTM
// stack and the experiment engine: a dependency-free metrics registry
// (counters, gauges, fixed-bucket histograms) whose hot-path API is
// allocation-free — pre-registered handles over cache-line-padded sharded
// atomics, no map lookups or locks on the increment path — plus a
// structured per-run trace recorder (trace.go) that ring-buffers controller
// and thermal samples and flushes them as JSONL.
//
// The registry is what cmd/serve exposes as Prometheus text at /metrics and
// what the -metrics flag on the batch tools dumps at exit; SimMetrics and
// RunnerMetrics (bundles.go) are the pre-registered handle sets the sim hot
// loop and the experiment engine increment.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// numShards is the stripe count for counters. Handle() deals stripes
// round-robin, so concurrent simulations land on distinct cache lines and
// the per-cycle increment is an uncontended atomic add.
const numShards = 64

// slot is one cache-line-padded counter stripe.
type slot struct {
	v atomic.Int64
	_ [56]byte // pad to a 64-byte cache line
}

// Counter is a monotonically increasing metric. Increment through a
// pre-registered Handle on hot paths; the convenience Inc/Add on the
// Counter itself share stripe 0 and are meant for low-frequency events.
type Counter struct {
	name, help string
	shards     [numShards]slot
	next       atomic.Uint32
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Handle returns a new increment handle bound to one stripe. Each
// long-lived incrementer (one simulation, one worker goroutine) should hold
// its own handle.
func (c *Counter) Handle() *CounterHandle {
	i := c.next.Add(1) - 1
	return &CounterHandle{s: &c.shards[i%numShards]}
}

// Inc adds 1 on the shared stripe (low-frequency callers only).
func (c *Counter) Inc() { c.shards[0].v.Add(1) }

// Add adds n (must be non-negative) on the shared stripe.
func (c *Counter) Add(n int64) { c.shards[0].v.Add(n) }

// Value sums the stripes.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// CounterHandle is a pre-registered, allocation-free increment path bound
// to one stripe of a Counter.
type CounterHandle struct{ s *slot }

// Inc adds 1.
func (h *CounterHandle) Inc() { h.s.v.Add(1) }

// Add adds n; n must be non-negative to keep the counter monotone.
func (h *CounterHandle) Add(n int64) { h.s.v.Add(n) }

// Gauge is a last-writer-wins float64 metric (current temperature, queue
// depth). Set and Value are single atomic word operations.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value loads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets (Prometheus
// le semantics: bucket i counts v <= bound i, with an implicit +Inf
// bucket). Observe is lock- and allocation-free: a linear scan over the
// (small, fixed) bound set plus atomic adds.
type Histogram struct {
	name, help string
	bounds     []float64      // ascending upper bounds, +Inf implicit
	counts     []atomic.Int64 // len(bounds)+1, non-cumulative
	count      atomic.Int64
	sumBits    atomic.Uint64
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bucket returns the cumulative count of observations <= the i-th bound
// (i == len(bounds) is the +Inf bucket, equal to Count).
func (h *Histogram) Bucket(i int) int64 {
	var cum int64
	for j := 0; j <= i && j < len(h.counts); j++ {
		cum += h.counts[j].Load()
	}
	return cum
}

// Bounds returns the configured upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Registry owns a flat namespace of metrics. Registration (Counter, Gauge,
// Histogram) is get-or-create and safe for concurrent use; re-registering
// a name with the same type returns the existing metric, so per-run metric
// bundles can be built against a shared registry without coordination.
// Registration takes a lock; the returned metrics never do.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// validName enforces the Prometheus metric-name charset; telemetry names
// are static configuration, so violations panic.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) checkName(name string, taken ...bool) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, t := range taken {
		if t {
			panic(fmt.Sprintf("telemetry: metric %q already registered with a different type", name))
		}
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	_, g := r.gauges[name]
	_, h := r.hists[name]
	r.checkName(name, g, h)
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	_, c := r.counters[name]
	_, h := r.hists[name]
	r.checkName(name, c, h)
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given ascending upper bounds (+Inf is implicit). Bounds are fixed at
// first registration; later calls ignore the argument.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	_, c := r.counters[name]
	_, g := r.gauges[name]
	r.checkName(name, c, g)
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	h := &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	r.hists[name] = h
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, sorted by name for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	sort.Strings(names)
	for _, n := range names {
		var err error
		switch {
		case counters[n] != nil:
			c := counters[n]
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", n, c.help, n, n, c.Value())
		case gauges[n] != nil:
			g := gauges[n]
			_, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", n, g.help, n, n, g.Value())
		case hists[n] != nil:
			h := hists[n]
			if _, err = fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", n, h.help, n); err != nil {
				return err
			}
			var cum int64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatBound(b), cum); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
				n, h.Count(), n, h.Sum(), n, h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a bucket bound the way Prometheus clients expect.
func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
