package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Sample is one structured trace record: the closed-loop state the paper's
// figures are drawn from — hottest and per-block temperatures, the
// actuator duty and frequency factor, the controller's P/I/D term
// breakdown and saturation flag, and the hierarchy escalation count.
type Sample struct {
	// Run labels the simulation this sample belongs to (benchmark/policy)
	// when several runs share one trace stream.
	Run string `json:"run,omitempty"`
	// Cycle is the simulated cycle the sample was taken at.
	Cycle uint64 `json:"cycle"`
	// WallSeconds is the simulated wall-clock time at the sample.
	WallSeconds float64 `json:"t"`
	// HotTemp is the hottest block temperature (C).
	HotTemp float64 `json:"hot"`
	// Duty is the applied fetch duty in [0,1].
	Duty float64 `json:"duty"`
	// FreqFactor is the current clock ratio (1 = full speed).
	FreqFactor float64 `json:"freq"`
	// ChipPower is the chip-wide power this cycle (W).
	ChipPower float64 `json:"power"`
	// PTerm, ITerm, DTerm are the controller's term contributions at the
	// last controller sample (zero when the policy has no PID).
	PTerm float64 `json:"p"`
	ITerm float64 `json:"i"`
	DTerm float64 `json:"d"`
	// Saturated reports whether the controller hit an actuator bound at
	// its last sample.
	Saturated bool `json:"sat"`
	// Escalations is the cumulative hierarchy escalation count.
	Escalations uint64 `json:"esc"`
	// BlockTemps are the per-block temperatures (C), floorplan order.
	BlockTemps []float64 `json:"blocks"`
}

// maxFloatLen bounds strconv.AppendFloat('g', -1) output ('-', 17 mantissa
// digits, '.', "e-308"); used to pre-size the encode buffer so steady-state
// flushes never grow it.
const maxFloatLen = 26

// Recorder ring-buffers samples and flushes them to an io.Writer as JSONL
// (one JSON object per line). Record is safe for concurrent use from
// parallel simulations and allocation-free in the steady state: every ring
// slot's BlockTemps and the encode buffer are sized at construction, and a
// full ring is encoded into the reused buffer and written in one call.
type Recorder struct {
	mu      sync.Mutex
	w       io.Writer
	ring    []Sample
	n       int
	buf     []byte
	err     error
	samples uint64
	flushes uint64
}

// NewRecorder returns a recorder for runs with nblocks thermal blocks,
// flushing every ringSize samples (ringSize <= 0 uses 256).
func NewRecorder(w io.Writer, nblocks, ringSize int) *Recorder {
	if nblocks < 0 {
		panic(fmt.Sprintf("telemetry: negative block count %d", nblocks))
	}
	if ringSize <= 0 {
		ringSize = 256
	}
	r := &Recorder{w: w, ring: make([]Sample, ringSize)}
	for i := range r.ring {
		r.ring[i].BlockTemps = make([]float64, 0, nblocks)
	}
	// Worst-case line: ~13 scalar fields plus one float per block, each
	// bounded by maxFloatLen with punctuation; run labels ride on top of
	// the slack.
	r.buf = make([]byte, 0, ringSize*(16*maxFloatLen+(nblocks+1)*(maxFloatLen+1)))
	return r
}

// Record copies one sample into the ring, flushing when it fills. The
// sample (including its BlockTemps backing array) is not retained.
func (r *Recorder) Record(s *Sample) {
	r.mu.Lock()
	slot := &r.ring[r.n]
	temps := slot.BlockTemps[:0]
	if len(s.BlockTemps) <= cap(temps) {
		temps = temps[:len(s.BlockTemps)]
		copy(temps, s.BlockTemps)
	} else {
		temps = append(temps, s.BlockTemps...) // oversized run: grow once
	}
	*slot = *s
	slot.BlockTemps = temps
	r.n++
	r.samples++
	if r.n == len(r.ring) {
		r.flushLocked()
	}
	r.mu.Unlock()
}

// Flush writes any buffered samples and returns the first write error
// encountered over the recorder's lifetime.
func (r *Recorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	return r.err
}

// Err returns the first write error encountered (nil if none).
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Samples returns the number of samples recorded so far.
func (r *Recorder) Samples() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samples
}

func (r *Recorder) flushLocked() {
	if r.n == 0 {
		return
	}
	r.buf = r.buf[:0]
	for i := 0; i < r.n; i++ {
		r.buf = appendSample(r.buf, &r.ring[i])
	}
	r.n = 0
	r.flushes++
	if r.err == nil {
		if _, err := r.w.Write(r.buf); err != nil {
			r.err = err
		}
	}
}

// appendSample hand-rolls one JSONL line; the field names must stay in sync
// with Sample's json tags so DecodeTrace round-trips.
func appendSample(b []byte, s *Sample) []byte {
	b = append(b, '{')
	if s.Run != "" {
		b = append(b, `"run":`...)
		b = appendJSONString(b, s.Run)
		b = append(b, ',')
	}
	b = append(b, `"cycle":`...)
	b = strconv.AppendUint(b, s.Cycle, 10)
	b = appendFloatField(b, "t", s.WallSeconds)
	b = appendFloatField(b, "hot", s.HotTemp)
	b = appendFloatField(b, "duty", s.Duty)
	b = appendFloatField(b, "freq", s.FreqFactor)
	b = appendFloatField(b, "power", s.ChipPower)
	b = appendFloatField(b, "p", s.PTerm)
	b = appendFloatField(b, "i", s.ITerm)
	b = appendFloatField(b, "d", s.DTerm)
	b = append(b, `,"sat":`...)
	b = strconv.AppendBool(b, s.Saturated)
	b = append(b, `,"esc":`...)
	b = strconv.AppendUint(b, s.Escalations, 10)
	b = append(b, `,"blocks":[`...)
	for i, t := range s.BlockTemps {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendFloat(b, t)
	}
	b = append(b, ']', '}', '\n')
	return b
}

func appendFloatField(b []byte, name string, v float64) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return appendFloat(b, v)
}

// appendFloat emits a JSON number; NaN/Inf (not representable in JSON) are
// written as 0 rather than corrupting the stream.
func appendFloat(b []byte, v float64) []byte {
	if v != v || v > 1e308 || v < -1e308 {
		return append(b, '0')
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendJSONString emits a minimally escaped JSON string (run labels are
// benchmark/policy names; anything exotic falls back to \u escapes).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// DecodeTrace reads a JSONL trace stream back into samples — the
// round-trip counterpart of the Recorder for tests and offline analysis.
func DecodeTrace(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var s Sample
		if err := json.Unmarshal(raw, &s); err != nil {
			return out, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("telemetry: trace read: %w", err)
	}
	return out, nil
}
