package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"strings"
	"testing"
)

func sampleFixture(i int) Sample {
	return Sample{
		Run:         "gcc/PI",
		Cycle:       uint64(1000 * (i + 1)),
		WallSeconds: float64(i) * 667e-9,
		HotTemp:     110.0 + float64(i)*0.125,
		Duty:        1 - float64(i%8)/8,
		FreqFactor:  1,
		ChipPower:   55.5,
		PTerm:       0.25,
		ITerm:       0.5,
		DTerm:       -0.0625,
		Saturated:   i%2 == 0,
		Escalations: uint64(i / 3),
		BlockTemps:  []float64{100.5, 110.25, 108, 111.3125},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, 4, 8)
	want := make([]Sample, 20) // forces two ring flushes plus a partial
	for i := range want {
		want[i] = sampleFixture(i)
		rec.Record(&want[i])
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Samples(); got != 20 {
		t.Fatalf("Samples = %d", got)
	}
	got, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Run != w.Run || g.Cycle != w.Cycle || g.Saturated != w.Saturated ||
			g.Escalations != w.Escalations {
			t.Fatalf("sample %d mismatch: got %+v want %+v", i, g, w)
		}
		for _, pair := range [][2]float64{
			{g.WallSeconds, w.WallSeconds}, {g.HotTemp, w.HotTemp},
			{g.Duty, w.Duty}, {g.FreqFactor, w.FreqFactor},
			{g.ChipPower, w.ChipPower}, {g.PTerm, w.PTerm},
			{g.ITerm, w.ITerm}, {g.DTerm, w.DTerm},
		} {
			if pair[0] != pair[1] {
				t.Fatalf("sample %d float mismatch: got %v want %v", i, pair[0], pair[1])
			}
		}
		if len(g.BlockTemps) != len(w.BlockTemps) {
			t.Fatalf("sample %d blocks = %v", i, g.BlockTemps)
		}
		for j := range w.BlockTemps {
			if g.BlockTemps[j] != w.BlockTemps[j] {
				t.Fatalf("sample %d block %d: %v != %v", i, j, g.BlockTemps[j], w.BlockTemps[j])
			}
		}
	}
}

func TestTraceLinesAreValidJSON(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, 2, 4)
	s := sampleFixture(0)
	s.Run = `weird "label"\with escapes` + "\n\tend"
	s.HotTemp = math.NaN() // must not corrupt the stream
	rec.Record(&s)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
	}
	got, err := DecodeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Run != s.Run {
		t.Fatalf("escaped run label round-trip: %q != %q", got[0].Run, s.Run)
	}
	if got[0].HotTemp != 0 {
		t.Fatalf("NaN should encode as 0, got %v", got[0].HotTemp)
	}
}

func TestRecorderEmptyRunLabelOmitted(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, 1, 1)
	s := sampleFixture(0)
	s.Run = ""
	rec.Record(&s)
	if strings.Contains(buf.String(), `"run"`) {
		t.Fatalf("empty run label not omitted: %s", buf.String())
	}
}

// errWriter fails after the first write to exercise error latching.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

func TestRecorderLatchesFirstWriteError(t *testing.T) {
	rec := NewRecorder(&errWriter{}, 1, 2)
	s := sampleFixture(0)
	for i := 0; i < 6; i++ {
		rec.Record(&s)
	}
	if err := rec.Flush(); err != io.ErrClosedPipe {
		t.Fatalf("Flush err = %v, want ErrClosedPipe", err)
	}
	if rec.Err() != io.ErrClosedPipe {
		t.Fatal("Err not latched")
	}
}

func TestDecodeTraceRejectsGarbage(t *testing.T) {
	if _, err := DecodeTrace(strings.NewReader("{\"cycle\":1}\nnot json\n")); err == nil {
		t.Fatal("garbage line did not error")
	}
}

// TestZeroAllocRecorder is part of the allocation gate: steady-state
// Record/flush cycles must not allocate (ring slots and the encode buffer
// are pre-sized).
func TestZeroAllocRecorder(t *testing.T) {
	rec := NewRecorder(io.Discard, 13, 32)
	s := sampleFixture(3)
	s.BlockTemps = make([]float64, 13)
	for i := range s.BlockTemps {
		s.BlockTemps[i] = 100 + float64(i)*1.0625
	}
	// Warm up: first flush settles buffer sizing.
	for i := 0; i < 100; i++ {
		rec.Record(&s)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 64; i++ {
			s.Cycle++
			rec.Record(&s)
		}
	})
	if allocs > 0 {
		t.Fatalf("recorder hot path allocates %.2f per run; want 0", allocs)
	}
}
