package runner

// Content-addressed run cache: batch engines use it to skip simulations
// whose exact configuration has already been executed. The cache stores
// the JSON encoding of the result under a caller-supplied key (usually
// sim.CacheKey's SHA-256), in memory and optionally on disk. Entries are
// decoded on every hit so callers always receive a private copy — cached
// results can be mutated freely without poisoning later hits.
//
// The disk layer is crash-safe and self-healing: entries are written to a
// temp file and renamed into place (readers never observe a torn write),
// and a corrupted or unreadable entry is deleted and treated as a miss,
// so the batch recomputes it instead of failing. Transient disk I/O
// failures are retried with exponential backoff before the cache degrades
// to a miss (reads) or drops the store (writes); an injectable fault hook
// (SetFaultHook) lets cmd/serve's chaos mode prove that degradation stays
// graceful under probabilistic disk failure.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Disk retry policy: diskAttempts tries per operation, sleeping
// retryBackoff << attempt between tries. The backoff base is a variable
// so tests can shrink it.
const diskAttempts = 3

var retryBackoff = 2 * time.Millisecond

// Cache memoizes results of type R by content-hash key. A nil *Cache is
// valid and never hits, so call sites need no conditionals. All methods
// are safe for concurrent use by a worker pool.
type Cache[R any] struct {
	mu      sync.Mutex
	mem     map[string][]byte
	dir     string
	metrics *telemetry.CacheMetrics
	faults  func(op string) error // nil = no fault injection
}

// NewCache returns a run cache. dir, when non-empty, adds a persistent
// on-disk layer (created if missing); entries there survive across
// processes and warm the in-memory layer on first hit. metrics, when
// non-nil, receives hit/miss/store/byte counters.
func NewCache[R any](dir string, metrics *telemetry.CacheMetrics) (*Cache[R], error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runner: cache dir: %w", err)
		}
	}
	return &Cache[R]{mem: make(map[string][]byte), dir: dir, metrics: metrics}, nil
}

// SetFaultHook installs a fault injector called before every disk
// operation attempt ("read", "write", "rename"); a non-nil return counts
// as that attempt's I/O failure and is retried like a real one. Used by
// chaos testing; nil disables injection. Not safe to call concurrently
// with cache use.
func (c *Cache[R]) SetFaultHook(f func(op string) error) {
	if c != nil {
		c.faults = f
	}
}

// withRetry runs op up to diskAttempts times with exponential backoff,
// counting retries and terminal failures in the metrics bundle. A
// fs.ErrNotExist from op is returned immediately: a missing entry is a
// plain miss, not a transient fault.
func (c *Cache[R]) withRetry(name string, op func() error) error {
	var err error
	for attempt := 0; attempt < diskAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(ExpBackoff(attempt-1, retryBackoff, 0))
			c.count(func(m *telemetry.CacheMetrics) { m.DiskRetries.Inc() })
		}
		if c.faults != nil {
			if err = c.faults(name); err != nil {
				continue
			}
		}
		if err = op(); err == nil || errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	c.count(func(m *telemetry.CacheMetrics) { m.DiskErrors.Inc() })
	return err
}

// readDisk loads one entry file with retry.
func (c *Cache[R]) readDisk(p string) ([]byte, error) {
	var data []byte
	err := c.withRetry("read", func() error {
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		data = b
		return nil
	})
	return data, err
}

// writeDisk atomically publishes one entry file (temp + rename) with
// retry around the whole sequence, so a torn attempt is cleaned up and
// redone rather than half-kept.
func (c *Cache[R]) writeDisk(p, key string, data []byte) error {
	return c.withRetry("write", func() error {
		tmp, err := os.CreateTemp(c.dir, "."+key+".tmp*")
		if err != nil {
			return err
		}
		_, werr := tmp.Write(data)
		cerr := tmp.Close()
		if werr != nil || cerr != nil {
			os.Remove(tmp.Name())
			if werr != nil {
				return werr
			}
			return cerr
		}
		if err := os.Rename(tmp.Name(), p); err != nil {
			os.Remove(tmp.Name())
			return err
		}
		return nil
	})
}

// path maps a key to its disk entry. Keys are hex digests, but the hash
// is not trusted to be path-safe: anything outside [0-9a-zA-Z_-] would
// make the join traversable, so such keys simply never touch disk.
func (c *Cache[R]) path(key string) string {
	for _, r := range key {
		safe := r >= '0' && r <= '9' || r >= 'a' && r <= 'z' ||
			r >= 'A' && r <= 'Z' || r == '-' || r == '_'
		if !safe {
			return ""
		}
	}
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached result for key, if present and intact.
func (c *Cache[R]) Get(key string) (R, bool) {
	var zero R
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	data, ok := c.mem[key]
	c.mu.Unlock()
	fromDisk := false
	if !ok && c.dir != "" {
		if p := c.path(key); p != "" {
			if b, err := c.readDisk(p); err == nil {
				data, ok, fromDisk = b, true, true
			}
		}
	}
	if !ok {
		c.count(func(m *telemetry.CacheMetrics) { m.Misses.Inc() })
		return zero, false
	}
	var v R
	if err := json.Unmarshal(data, &v); err != nil {
		// Corrupted entry (torn write from a crashed process, manual
		// truncation): drop it everywhere and recompute.
		c.mu.Lock()
		delete(c.mem, key)
		c.mu.Unlock()
		if c.dir != "" {
			if p := c.path(key); p != "" {
				os.Remove(p)
			}
		}
		c.count(func(m *telemetry.CacheMetrics) { m.Misses.Inc() })
		return zero, false
	}
	if fromDisk {
		c.mu.Lock()
		c.mem[key] = data
		c.mu.Unlock()
	}
	c.count(func(m *telemetry.CacheMetrics) { m.Hits.Inc() })
	return v, true
}

// Put stores v under key. Encoding or disk errors are swallowed: a cache
// that cannot store is a cache that misses, never a batch failure.
func (c *Cache[R]) Put(key string, v R) {
	if c == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.mem[key] = data
	c.mu.Unlock()
	c.count(func(m *telemetry.CacheMetrics) {
		m.Stores.Inc()
		m.Bytes.Add(int64(len(data)))
	})
	if c.dir == "" {
		return
	}
	p := c.path(key)
	if p == "" {
		return
	}
	// Atomic publish: write-to-temp + rename so concurrent readers (and
	// future processes) only ever see complete entries. Errors after the
	// retry budget are swallowed by design — see the function comment.
	_ = c.writeDisk(p, key, data)
}

// Len returns the number of in-memory entries.
func (c *Cache[R]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

func (c *Cache[R]) count(f func(*telemetry.CacheMetrics)) {
	if c.metrics != nil {
		f(c.metrics)
	}
}

// CachedJob wraps job so its result is served from (and stored into) the
// cache under key. An empty key, or a nil cache, passes through.
func CachedJob[R any](c *Cache[R], key string, job Job[R]) Job[R] {
	if c == nil || key == "" {
		return job
	}
	return func(ctx context.Context) (R, error) {
		if v, ok := c.Get(key); ok {
			return v, nil
		}
		v, err := job(ctx)
		if err == nil {
			c.Put(key, v)
		}
		return v, err
	}
}
