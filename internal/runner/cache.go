package runner

// Content-addressed run cache: batch engines use it to skip simulations
// whose exact configuration has already been executed. The cache stores
// the JSON encoding of the result under a caller-supplied key (usually
// sim.CacheKey's SHA-256), in a size-capped in-memory LRU layer and
// optionally in a persistent store. Entries are decoded on every hit so
// callers always receive a private copy — cached results can be mutated
// freely without poisoning later hits.
//
// The persistent layer is pluggable (BlobStore): the flat store keeps
// one JSON file per entry, the pack store (internal/packstore) appends
// CRC-checked needles into bounded pack volumes — the right choice at
// millions of small entries. Both are crash-safe and self-healing: a
// corrupted or unreadable entry is dropped and treated as a miss, so the
// batch recomputes it instead of failing. Transient disk I/O failures
// are retried with exponential backoff before the cache degrades to a
// miss (reads) or drops the store (writes); an injectable per-op fault
// hook (SetFaultHook) lets cmd/serve's chaos mode prove that degradation
// stays graceful under probabilistic disk failure.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/packstore"
	"repro/internal/telemetry"
)

// Disk retry policy: diskAttempts tries per operation, sleeping
// retryBackoff << attempt between tries. The backoff base is a variable
// so tests can shrink it.
const diskAttempts = 3

var retryBackoff = 2 * time.Millisecond

// DefaultMemBytes caps the in-memory layer when CacheConfig.MemBytes is
// zero. Entries are a few hundred bytes of JSON each, so this holds the
// full 18×13 scenario matrix many times over while keeping a
// million-entry disk store from pulling the whole volume into RAM.
const DefaultMemBytes = 256 << 20

// BlobStore is the persistent layer behind Cache: an opaque key→bytes
// map. Get returns fs.ErrNotExist for a missing (or quarantined) entry —
// that is a plain miss, never retried. Implementations inject their own
// per-op faults ("read", "write", "rename") via SetFaultHook.
type BlobStore interface {
	Get(key string) ([]byte, error)
	Put(key string, data []byte) error
	Delete(key string) error
	SetFaultHook(f func(op string) error)
	Close() error
}

// CacheConfig selects and sizes the cache layers.
type CacheConfig struct {
	// Dir is the persistent store directory; empty means memory-only.
	Dir string
	// Pack selects the pack-volume store instead of one file per entry.
	Pack bool
	// MemBytes caps the in-memory LRU layer: 0 means DefaultMemBytes,
	// negative means unlimited.
	MemBytes int64
}

// Cache memoizes results of type R by content-hash key. A nil *Cache is
// valid and never hits, so call sites need no conditionals. All methods
// are safe for concurrent use by a worker pool.
type Cache[R any] struct {
	mu      sync.Mutex
	mem     *lruCache
	store   BlobStore // nil = memory-only
	metrics *telemetry.CacheMetrics
	ingest  func(key string, v R) // optional Put observer (run catalog)
}

// NewCache returns a run cache over the flat-file store. dir, when
// non-empty, adds a persistent on-disk layer (created if missing);
// entries there survive across processes and warm the in-memory layer
// on first hit. metrics, when non-nil, receives hit/miss/store/byte
// counters.
func NewCache[R any](dir string, metrics *telemetry.CacheMetrics) (*Cache[R], error) {
	return NewCacheWith[R](CacheConfig{Dir: dir}, metrics)
}

// NewCacheWith returns a run cache with an explicit layer configuration.
func NewCacheWith[R any](cfg CacheConfig, metrics *telemetry.CacheMetrics) (*Cache[R], error) {
	memBytes := cfg.MemBytes
	if memBytes == 0 {
		memBytes = DefaultMemBytes
	}
	c := &Cache[R]{mem: newLRUCache(memBytes), metrics: metrics}
	if cfg.Dir == "" {
		return c, nil
	}
	if cfg.Pack {
		s, err := packstore.Open(cfg.Dir, packstore.Options{Metrics: metrics})
		if err != nil {
			return nil, fmt.Errorf("runner: cache: %w", err)
		}
		c.store = s
	} else {
		s, err := NewFlatStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		c.store = s
	}
	return c, nil
}

// SetFaultHook installs a fault injector called before every disk
// operation attempt ("read", "write", "rename"); a non-nil return counts
// as that attempt's I/O failure and is retried like a real one. Used by
// chaos testing; nil disables injection. Not safe to call concurrently
// with cache use.
func (c *Cache[R]) SetFaultHook(f func(op string) error) {
	if c != nil && c.store != nil {
		c.store.SetFaultHook(f)
	}
}

// SetIngest installs an observer called after every successful Put —
// the hook the run catalog uses to index completed results as they are
// stored. Not safe to call concurrently with cache use; nil disables.
func (c *Cache[R]) SetIngest(f func(key string, v R)) {
	if c != nil {
		c.ingest = f
	}
}

// Store exposes the persistent layer (nil when memory-only) so derived
// state — the run catalog — can rebuild itself from a store scan.
func (c *Cache[R]) Store() BlobStore {
	if c == nil {
		return nil
	}
	return c.store
}

// Close releases the persistent layer (waits for pack compaction to
// settle). Nil-safe; memory-only caches have nothing to release.
func (c *Cache[R]) Close() error {
	if c == nil || c.store == nil {
		return nil
	}
	return c.store.Close()
}

// withRetry runs op up to diskAttempts times with exponential backoff,
// counting retries and terminal failures in the metrics bundle. A
// fs.ErrNotExist from op is returned immediately: a missing entry is a
// plain miss, not a transient fault.
func (c *Cache[R]) withRetry(op func() error) error {
	var err error
	for attempt := 0; attempt < diskAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(ExpBackoff(attempt-1, retryBackoff, 0))
			c.count(func(m *telemetry.CacheMetrics) { m.DiskRetries.Inc() })
		}
		if err = op(); err == nil || errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	c.count(func(m *telemetry.CacheMetrics) { m.DiskErrors.Inc() })
	return err
}

// Get returns the cached result for key, if present and intact.
func (c *Cache[R]) Get(key string) (R, bool) {
	var zero R
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	data, ok := c.mem.get(key)
	c.mu.Unlock()
	fromDisk := false
	if !ok && c.store != nil {
		err := c.withRetry(func() error {
			b, err := c.store.Get(key)
			if err != nil {
				return err
			}
			data = b
			return nil
		})
		if err == nil {
			ok, fromDisk = true, true
		}
	}
	if !ok {
		c.count(func(m *telemetry.CacheMetrics) { m.Misses.Inc() })
		return zero, false
	}
	var v R
	if err := json.Unmarshal(data, &v); err != nil {
		// Corrupted entry (torn write from a crashed process, manual
		// truncation): drop it everywhere and recompute.
		c.mu.Lock()
		c.mem.remove(key)
		c.mu.Unlock()
		if c.store != nil {
			_ = c.store.Delete(key)
		}
		c.count(func(m *telemetry.CacheMetrics) { m.Misses.Inc() })
		return zero, false
	}
	if fromDisk {
		c.storeMem(key, data)
	}
	c.count(func(m *telemetry.CacheMetrics) { m.Hits.Inc() })
	return v, true
}

// Put stores v under key. Encoding or disk errors are swallowed: a cache
// that cannot store is a cache that misses, never a batch failure.
func (c *Cache[R]) Put(key string, v R) {
	if c == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	c.storeMem(key, data)
	c.count(func(m *telemetry.CacheMetrics) {
		m.Stores.Inc()
		m.Bytes.Add(int64(len(data)))
	})
	if c.ingest != nil {
		c.ingest(key, v)
	}
	if c.store == nil {
		return
	}
	// Atomic publish (temp + rename for the flat store, CRC-framed append
	// for the pack store) so concurrent readers and future processes only
	// ever see complete entries. Errors after the retry budget are
	// swallowed by design — see the function comment.
	_ = c.withRetry(func() error { return c.store.Put(key, data) })
}

// storeMem inserts into the LRU layer, counting evictions.
func (c *Cache[R]) storeMem(key string, data []byte) {
	c.mu.Lock()
	evicted := c.mem.put(key, data)
	c.mu.Unlock()
	if evicted > 0 {
		c.count(func(m *telemetry.CacheMetrics) { m.MemEvictions.Add(int64(evicted)) })
	}
}

// Len returns the number of in-memory entries.
func (c *Cache[R]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mem.len()
}

func (c *Cache[R]) count(f func(*telemetry.CacheMetrics)) {
	if c.metrics != nil {
		f(c.metrics)
	}
}

// FlatStore is the one-file-per-entry BlobStore: simple, greppable, and
// fine up to tens of thousands of entries. Entries are written to a temp
// file and renamed into place, so readers never observe a torn write.
type FlatStore struct {
	dir    string
	faults func(op string) error // nil = no fault injection
}

// NewFlatStore opens (creating if missing) a flat entry directory.
func NewFlatStore(dir string) (*FlatStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	return &FlatStore{dir: dir}, nil
}

// SetFaultHook installs the per-op fault injector ("read", "write",
// "rename"). Each op checks the hook separately, so chaos mode can fail
// the rename stage independently of the temp-file write.
func (s *FlatStore) SetFaultHook(f func(op string) error) { s.faults = f }

func (s *FlatStore) fault(op string) error {
	if s.faults == nil {
		return nil
	}
	return s.faults(op)
}

// path maps a key to its disk entry. Keys are hex digests, but the hash
// is not trusted to be path-safe: anything outside [0-9a-zA-Z_-] would
// make the join traversable, so such keys simply never touch disk.
func (s *FlatStore) path(key string) string {
	for _, r := range key {
		safe := r >= '0' && r <= '9' || r >= 'a' && r <= 'z' ||
			r >= 'A' && r <= 'Z' || r == '-' || r == '_'
		if !safe {
			return ""
		}
	}
	return filepath.Join(s.dir, key+".json")
}

// Get loads one entry file.
func (s *FlatStore) Get(key string) ([]byte, error) {
	p := s.path(key)
	if p == "" {
		return nil, fs.ErrNotExist
	}
	if err := s.fault("read"); err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

// Put atomically publishes one entry file: temp write under the "write"
// op, then rename under the "rename" op, so each stage is separately
// fault-injectable.
func (s *FlatStore) Put(key string, data []byte) error {
	p := s.path(key)
	if p == "" {
		return nil // unsafe key: stays off disk, memory layer still serves it
	}
	if err := s.fault("write"); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "."+key+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := s.fault("rename"); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Delete removes one entry; a missing entry is not an error.
func (s *FlatStore) Delete(key string) error {
	p := s.path(key)
	if p == "" {
		return nil
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// Close is a no-op: the flat store holds no open handles between ops.
func (s *FlatStore) Close() error { return nil }

// CachedJob wraps job so its result is served from (and stored into) the
// cache under key. An empty key, or a nil cache, passes through.
func CachedJob[R any](c *Cache[R], key string, job Job[R]) Job[R] {
	if c == nil || key == "" {
		return job
	}
	return func(ctx context.Context) (R, error) {
		if v, ok := c.Get(key); ok {
			return v, nil
		}
		v, err := job(ctx)
		if err == nil {
			c.Put(key, v)
		}
		return v, err
	}
}
