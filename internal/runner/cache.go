package runner

// Content-addressed run cache: batch engines use it to skip simulations
// whose exact configuration has already been executed. The cache stores
// the JSON encoding of the result under a caller-supplied key (usually
// sim.CacheKey's SHA-256), in memory and optionally on disk. Entries are
// decoded on every hit so callers always receive a private copy — cached
// results can be mutated freely without poisoning later hits.
//
// The disk layer is crash-safe and self-healing: entries are written to a
// temp file and renamed into place (readers never observe a torn write),
// and a corrupted or unreadable entry is deleted and treated as a miss,
// so the batch recomputes it instead of failing.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/telemetry"
)

// Cache memoizes results of type R by content-hash key. A nil *Cache is
// valid and never hits, so call sites need no conditionals. All methods
// are safe for concurrent use by a worker pool.
type Cache[R any] struct {
	mu      sync.Mutex
	mem     map[string][]byte
	dir     string
	metrics *telemetry.CacheMetrics
}

// NewCache returns a run cache. dir, when non-empty, adds a persistent
// on-disk layer (created if missing); entries there survive across
// processes and warm the in-memory layer on first hit. metrics, when
// non-nil, receives hit/miss/store/byte counters.
func NewCache[R any](dir string, metrics *telemetry.CacheMetrics) (*Cache[R], error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runner: cache dir: %w", err)
		}
	}
	return &Cache[R]{mem: make(map[string][]byte), dir: dir, metrics: metrics}, nil
}

// path maps a key to its disk entry. Keys are hex digests, but the hash
// is not trusted to be path-safe: anything outside [0-9a-zA-Z_-] would
// make the join traversable, so such keys simply never touch disk.
func (c *Cache[R]) path(key string) string {
	for _, r := range key {
		safe := r >= '0' && r <= '9' || r >= 'a' && r <= 'z' ||
			r >= 'A' && r <= 'Z' || r == '-' || r == '_'
		if !safe {
			return ""
		}
	}
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached result for key, if present and intact.
func (c *Cache[R]) Get(key string) (R, bool) {
	var zero R
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	data, ok := c.mem[key]
	c.mu.Unlock()
	fromDisk := false
	if !ok && c.dir != "" {
		if p := c.path(key); p != "" {
			if b, err := os.ReadFile(p); err == nil {
				data, ok, fromDisk = b, true, true
			}
		}
	}
	if !ok {
		c.count(func(m *telemetry.CacheMetrics) { m.Misses.Inc() })
		return zero, false
	}
	var v R
	if err := json.Unmarshal(data, &v); err != nil {
		// Corrupted entry (torn write from a crashed process, manual
		// truncation): drop it everywhere and recompute.
		c.mu.Lock()
		delete(c.mem, key)
		c.mu.Unlock()
		if c.dir != "" {
			if p := c.path(key); p != "" {
				os.Remove(p)
			}
		}
		c.count(func(m *telemetry.CacheMetrics) { m.Misses.Inc() })
		return zero, false
	}
	if fromDisk {
		c.mu.Lock()
		c.mem[key] = data
		c.mu.Unlock()
	}
	c.count(func(m *telemetry.CacheMetrics) { m.Hits.Inc() })
	return v, true
}

// Put stores v under key. Encoding or disk errors are swallowed: a cache
// that cannot store is a cache that misses, never a batch failure.
func (c *Cache[R]) Put(key string, v R) {
	if c == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.mem[key] = data
	c.mu.Unlock()
	c.count(func(m *telemetry.CacheMetrics) {
		m.Stores.Inc()
		m.Bytes.Add(int64(len(data)))
	})
	if c.dir == "" {
		return
	}
	p := c.path(key)
	if p == "" {
		return
	}
	// Atomic publish: write-to-temp + rename so concurrent readers (and
	// future processes) only ever see complete entries.
	tmp, err := os.CreateTemp(c.dir, "."+key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
	}
}

// Len returns the number of in-memory entries.
func (c *Cache[R]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

func (c *Cache[R]) count(f func(*telemetry.CacheMetrics)) {
	if c.metrics != nil {
		f(c.metrics)
	}
}

// CachedJob wraps job so its result is served from (and stored into) the
// cache under key. An empty key, or a nil cache, passes through.
func CachedJob[R any](c *Cache[R], key string, job Job[R]) Job[R] {
	if c == nil || key == "" {
		return job
	}
	return func(ctx context.Context) (R, error) {
		if v, ok := c.Get(key); ok {
			return v, nil
		}
		v, err := job(ctx)
		if err == nil {
			c.Put(key, v)
		}
		return v, err
	}
}
