package runner

import (
	"testing"
	"time"
)

func TestExpBackoffSchedule(t *testing.T) {
	base := 2 * time.Millisecond
	for i, want := range []time.Duration{2, 4, 8, 16, 32} {
		if got := ExpBackoff(i, base, 0); got != want*time.Millisecond {
			t.Errorf("ExpBackoff(%d) = %v, want %v", i, got, want*time.Millisecond)
		}
	}
}

func TestExpBackoffCapAndEdges(t *testing.T) {
	if got := ExpBackoff(10, time.Millisecond, 50*time.Millisecond); got != 50*time.Millisecond {
		t.Errorf("capped backoff = %v, want 50ms", got)
	}
	if got := ExpBackoff(3, 0, time.Second); got != 0 {
		t.Errorf("zero base backoff = %v, want 0", got)
	}
	if got := ExpBackoff(-5, time.Millisecond, 0); got != time.Millisecond {
		t.Errorf("negative attempt backoff = %v, want base", got)
	}
	// Huge attempt counts must clamp, not overflow negative.
	if got := ExpBackoff(1<<20, time.Second, 0); got <= 0 {
		t.Errorf("huge attempt backoff = %v, want positive", got)
	}
}
