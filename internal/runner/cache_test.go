package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry"
)

type payload struct {
	Name  string
	Score float64
	Temps []float64
}

func samplePayload() payload {
	return payload{Name: "gcc/PI", Score: 0.8732, Temps: []float64{111.2, 109.7}}
}

func TestCacheMemoryHitMiss(t *testing.T) {
	c, err := NewCache[payload]("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("k1", samplePayload())
	got, ok := c.Get("k1")
	if !ok {
		t.Fatal("stored entry missed")
	}
	if got.Name != "gcc/PI" || got.Score != 0.8732 || len(got.Temps) != 2 {
		t.Fatalf("cache returned %+v", got)
	}
	// Hits are private copies: mutating one must not poison the next.
	got.Temps[0] = -1
	again, _ := c.Get("k1")
	if again.Temps[0] != 111.2 {
		t.Error("cache hit shares state with a previous hit")
	}
	if c.Len() != 1 {
		t.Errorf("Len() = %d, want 1", c.Len())
	}
}

func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache[payload](dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1.Put("abc123", samplePayload())

	// A second cache over the same directory — a later process — must
	// serve the entry from disk and warm its memory layer.
	c2, err := NewCache[payload](dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("abc123")
	if !ok {
		t.Fatal("disk entry missed")
	}
	if got.Name != "gcc/PI" {
		t.Fatalf("disk round-trip returned %+v", got)
	}
	if c2.Len() != 1 {
		t.Error("disk hit did not warm the memory layer")
	}
}

func TestCacheCorruptedEntryRecovers(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache[payload](dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1.Put("deadbeef", samplePayload())

	entry := filepath.Join(dir, "deadbeef.json")
	if err := os.WriteFile(entry, []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCache[payload](dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("deadbeef"); ok {
		t.Fatal("corrupted entry served as a hit")
	}
	// Self-healing: the bad entry is gone, and a recompute re-stores it.
	if _, err := os.Stat(entry); !os.IsNotExist(err) {
		t.Error("corrupted entry not deleted")
	}
	c2.Put("deadbeef", samplePayload())
	if _, ok := c2.Get("deadbeef"); !ok {
		t.Error("re-stored entry missed")
	}
}

func TestCacheUnsafeKeyStaysOffDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache[payload](dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("../escape", samplePayload())
	if _, ok := c.Get("../escape"); !ok {
		t.Error("unsafe key must still work in memory")
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape.json")); !os.IsNotExist(err) {
		t.Error("unsafe key escaped the cache directory")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("unsafe key touched disk: %v", entries)
	}
}

func TestCacheNilSafety(t *testing.T) {
	var c *Cache[payload]
	if _, ok := c.Get("k"); ok {
		t.Error("nil cache reported a hit")
	}
	c.Put("k", samplePayload()) // must not panic
	if c.Len() != 0 {
		t.Error("nil cache has entries")
	}
}

func TestCacheMetricsCounters(t *testing.T) {
	m := telemetry.NewCacheMetrics(telemetry.NewRegistry())
	c, err := NewCache[payload]("", m)
	if err != nil {
		t.Fatal(err)
	}
	c.Get("k")
	c.Put("k", samplePayload())
	c.Get("k")
	if m.Misses.Value() != 1 || m.Hits.Value() != 1 || m.Stores.Value() != 1 {
		t.Errorf("counters hits=%d misses=%d stores=%d, want 1/1/1",
			m.Hits.Value(), m.Misses.Value(), m.Stores.Value())
	}
	if m.Bytes.Value() <= 0 {
		t.Error("stored-bytes counter not advanced")
	}
}

// flakyFaults injects failures for the first n attempts of each disk
// operation, then heals — the shape of a transient I/O blip.
type flakyFaults struct {
	failures int
	calls    int
}

func (f *flakyFaults) hook(op string) error {
	f.calls++
	if f.failures > 0 {
		f.failures--
		return errors.New("injected " + op + " fault")
	}
	return nil
}

func shrinkBackoff(t *testing.T) {
	t.Helper()
	old := retryBackoff
	retryBackoff = 10 * time.Microsecond
	t.Cleanup(func() { retryBackoff = old })
}

func TestCacheRetriesTransientWriteFault(t *testing.T) {
	shrinkBackoff(t)
	dir := t.TempDir()
	m := telemetry.NewCacheMetrics(telemetry.NewRegistry())
	c, err := NewCache[payload](dir, m)
	if err != nil {
		t.Fatal(err)
	}
	f := &flakyFaults{failures: diskAttempts - 1}
	c.SetFaultHook(f.hook)
	c.Put("abc", samplePayload())

	// The entry must have survived to disk despite the first attempts
	// failing: a fresh cache over the same dir serves it.
	c2, err := NewCache[payload](dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("abc"); !ok {
		t.Fatal("entry lost despite retry budget covering the fault")
	}
	if got := m.DiskRetries.Value(); got != diskAttempts-1 {
		t.Errorf("DiskRetries = %d, want %d", got, diskAttempts-1)
	}
	if got := m.DiskErrors.Value(); got != 0 {
		t.Errorf("DiskErrors = %d, want 0", got)
	}
}

func TestCacheExhaustedRetriesDegradeGracefully(t *testing.T) {
	shrinkBackoff(t)
	dir := t.TempDir()
	m := telemetry.NewCacheMetrics(telemetry.NewRegistry())
	c, err := NewCache[payload](dir, m)
	if err != nil {
		t.Fatal(err)
	}
	c.SetFaultHook(func(op string) error { return errors.New("disk on fire") })
	c.Put("abc", samplePayload()) // must not panic or error out

	if got := m.DiskErrors.Value(); got != 1 {
		t.Errorf("DiskErrors = %d, want 1", got)
	}
	// The memory layer still serves the entry; only persistence degraded.
	if _, ok := c.Get("abc"); !ok {
		t.Fatal("memory layer lost the entry")
	}
	// A fresh process sees nothing on disk, and its own faulty reads
	// degrade to misses rather than failures.
	c2, err := NewCache[payload](dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2.SetFaultHook(func(op string) error { return errors.New("disk still on fire") })
	if _, ok := c2.Get("abc"); ok {
		t.Fatal("hit served through a permanently failing disk")
	}
}

func TestCacheMissingEntryIsNotRetried(t *testing.T) {
	shrinkBackoff(t)
	dir := t.TempDir()
	m := telemetry.NewCacheMetrics(telemetry.NewRegistry())
	c, err := NewCache[payload](dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("nothere"); ok {
		t.Fatal("phantom hit")
	}
	if got := m.DiskRetries.Value(); got != 0 {
		t.Errorf("a plain miss burned %d retries, want 0", got)
	}
}

func TestCachedJob(t *testing.T) {
	c, err := NewCache[payload]("", nil)
	if err != nil {
		t.Fatal(err)
	}
	runs := 0
	job := func(context.Context) (payload, error) {
		runs++
		return samplePayload(), nil
	}
	wrapped := CachedJob(c, "key", job)
	for i := 0; i < 3; i++ {
		got, err := wrapped(context.Background())
		if err != nil || got.Name != "gcc/PI" {
			t.Fatalf("run %d: %+v, %v", i, got, err)
		}
	}
	if runs != 1 {
		t.Errorf("job executed %d times, want 1 (rest cached)", runs)
	}
	// Nil cache and empty key pass through untouched.
	runs = 0
	for _, w := range []Job[payload]{CachedJob(nil, "key", job), CachedJob(c, "", job)} {
		if _, err := w(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if runs != 2 {
		t.Errorf("passthrough wrappers executed %d times, want 2", runs)
	}
}

func TestCacheIngestHook(t *testing.T) {
	c, err := NewCacheWith[payload](CacheConfig{Dir: t.TempDir(), Pack: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Store() == nil {
		t.Fatal("pack-backed cache reports a nil store")
	}
	var gotKey string
	var gotVal payload
	calls := 0
	c.SetIngest(func(key string, v payload) {
		gotKey, gotVal, calls = key, v, calls+1
	})
	want := samplePayload()
	c.Put("k-ingest", want)
	if calls != 1 || gotKey != "k-ingest" || gotVal.Name != want.Name {
		t.Fatalf("ingest hook: calls=%d key=%q val=%+v", calls, gotKey, gotVal)
	}
	// The hook observes every Put, including overwrites.
	c.Put("k-ingest", want)
	if calls != 2 {
		t.Fatalf("ingest hook after overwrite: calls=%d, want 2", calls)
	}
	// Nil-safety: a nil cache accepts both without dereferencing.
	var nilCache *Cache[payload]
	nilCache.SetIngest(func(string, payload) {})
	if nilCache.Store() != nil {
		t.Fatal("nil cache returned a store")
	}
}
