package runner

// Shared retry-pacing helper: the disk cache layer and the cluster
// dispatcher both recover from transient failures with bounded retries
// spaced by exponential backoff. The exponential schedule lives here;
// jitter (which wants a caller-owned RNG for reproducibility) is applied
// by the caller on top.

import "time"

// ExpBackoff returns the delay before retry number attempt (0-based: the
// delay between the first failure and the second try). The schedule is
// base << attempt, capped at max when max > 0. Shift amounts are clamped
// so pathological attempt counts cannot overflow into negative durations.
func ExpBackoff(attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	if attempt < 0 {
		attempt = 0
	}
	if attempt > 32 {
		attempt = 32
	}
	d := base << uint(attempt)
	if d < base { // overflow past the int64 range
		d = 1<<63 - 1
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}
