package runner

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// newPackCache opens a pack-backed cache for tests.
func newPackCache(t *testing.T, dir string, m *telemetry.CacheMetrics) *Cache[payload] {
	t.Helper()
	c, err := NewCacheWith[payload](CacheConfig{Dir: dir, Pack: true}, m)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestCachePackBackendContract re-runs the cache contract against the
// pack store: hit/miss, cross-process disk round trip, and memory-layer
// warming — the behaviors the flat-store tests pin.
func TestCachePackBackendContract(t *testing.T) {
	dir := t.TempDir()
	c1 := newPackCache(t, dir, nil)
	if _, ok := c1.Get("k1"); ok {
		t.Fatal("empty pack cache reported a hit")
	}
	c1.Put("k1", samplePayload())
	got, ok := c1.Get("k1")
	if !ok || got.Name != "gcc/PI" {
		t.Fatalf("pack hit = %+v, %v", got, ok)
	}
	// Private copies: mutating a hit must not poison the next.
	got.Temps[0] = -1
	if again, _ := c1.Get("k1"); again.Temps[0] != 111.2 {
		t.Error("pack cache hit shares state with a previous hit")
	}
	c1.Close()

	// A later process over the same directory serves from the rebuilt
	// needle index and warms its memory layer.
	c2 := newPackCache(t, dir, nil)
	got, ok = c2.Get("k1")
	if !ok || got.Name != "gcc/PI" {
		t.Fatalf("pack disk round trip = %+v, %v", got, ok)
	}
	if c2.Len() != 1 {
		t.Error("pack disk hit did not warm the memory layer")
	}
}

// TestCachePackCorruptedEntryRecovers is the self-healing contract on
// the pack backend: a needle whose payload rots on disk reads as a miss
// (quarantined by CRC), and a recompute re-stores it.
func TestCachePackCorruptedEntryRecovers(t *testing.T) {
	dir := t.TempDir()
	c1 := newPackCache(t, dir, nil)
	c1.Put("deadbeef", samplePayload())
	c1.Close()

	// Flip the last payload byte of the only needle in the volume.
	vol := filepath.Join(dir, "pack-000000.dat")
	data, err := os.ReadFile(vol)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(vol, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m := telemetry.NewCacheMetrics(telemetry.NewRegistry())
	c2, err := NewCacheWith[payload](CacheConfig{Dir: dir, Pack: true}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, ok := c2.Get("deadbeef"); ok {
		t.Fatal("corrupted needle served as a hit")
	}
	if m.PackAuditFailures.Value() != 1 {
		t.Errorf("PackAuditFailures = %d, want 1", m.PackAuditFailures.Value())
	}
	c2.Put("deadbeef", samplePayload())
	if _, ok := c2.Get("deadbeef"); !ok {
		t.Error("re-stored entry missed")
	}
}

// TestCacheChaosRenameFaultDegradesToMiss proves the satellite fix:
// rename-stage faults are injectable on their own op (not swallowed
// under "write"), and a rename that keeps failing leaves no disk entry —
// a clean miss for the next process, while the memory layer still
// serves.
func TestCacheChaosRenameFaultDegradesToMiss(t *testing.T) {
	shrinkBackoff(t)
	dir := t.TempDir()
	m := telemetry.NewCacheMetrics(telemetry.NewRegistry())
	c, err := NewCache[payload](dir, m)
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	c.SetFaultHook(func(op string) error {
		ops = append(ops, op)
		if op == "rename" {
			return errors.New("injected rename fault")
		}
		return nil
	})
	c.Put("abc123", samplePayload())

	// The rename op must have been offered to the hook distinctly.
	sawWrite, sawRename := false, false
	for _, op := range ops {
		switch op {
		case "write":
			sawWrite = true
		case "rename":
			sawRename = true
		}
	}
	if !sawWrite || !sawRename {
		t.Fatalf("fault hook saw ops %v, want distinct write and rename", ops)
	}
	if m.DiskErrors.Value() != 1 {
		t.Errorf("DiskErrors = %d, want 1", m.DiskErrors.Value())
	}
	// No torn entry, no temp litter: the directory is empty.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("failed rename left files behind: %v", entries)
	}
	// Memory layer still serves; a fresh process misses cleanly.
	if _, ok := c.Get("abc123"); !ok {
		t.Error("memory layer lost the entry")
	}
	c2, err := NewCache[payload](dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("abc123"); ok {
		t.Error("phantom hit after failed rename")
	}
}

// TestCachePackWriteFaultDegradesToMiss: a pack append fault past the
// retry budget degrades to a clean miss for a later process.
func TestCachePackWriteFaultDegradesToMiss(t *testing.T) {
	shrinkBackoff(t)
	dir := t.TempDir()
	m := telemetry.NewCacheMetrics(telemetry.NewRegistry())
	c := newPackCache(t, dir, m)
	c.SetFaultHook(func(op string) error {
		if op == "write" {
			return errors.New("injected append fault")
		}
		return nil
	})
	c.Put("abc123", samplePayload())
	if m.DiskErrors.Value() != 1 {
		t.Errorf("DiskErrors = %d, want 1", m.DiskErrors.Value())
	}
	if _, ok := c.Get("abc123"); !ok {
		t.Error("memory layer lost the entry")
	}
	c.SetFaultHook(nil)
	c.Close()

	c2 := newPackCache(t, dir, nil)
	if _, ok := c2.Get("abc123"); ok {
		t.Error("phantom hit after failed append")
	}
	// The store is still writable past the failed append.
	c2.Put("abc123", samplePayload())
	if _, ok := c2.Get("abc123"); !ok {
		t.Error("re-store after failed append missed")
	}
}

// TestCacheMemoryLayerBounded is the OOM guard: with a byte cap, the
// memory layer evicts least-recently-used entries instead of growing
// with the disk store, and evicted entries are still served from disk.
func TestCacheMemoryLayerBounded(t *testing.T) {
	dir := t.TempDir()
	m := telemetry.NewCacheMetrics(telemetry.NewRegistry())
	c, err := NewCacheWith[payload](CacheConfig{Dir: dir, Pack: true, MemBytes: 2048}, m)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 200
	for i := 0; i < n; i++ {
		c.Put(fmt.Sprintf("key-%03d", i), samplePayload())
	}
	if c.Len() >= n {
		t.Fatalf("memory layer holds %d entries despite a 2 KiB cap", c.Len())
	}
	if m.MemEvictions.Value() == 0 {
		t.Error("no evictions counted")
	}
	// Every entry — including evicted ones — still serves from disk.
	for i := 0; i < n; i++ {
		if _, ok := c.Get(fmt.Sprintf("key-%03d", i)); !ok {
			t.Fatalf("key-%03d lost after eviction", i)
		}
	}
}

func TestCacheUnlimitedMemLayer(t *testing.T) {
	c, err := NewCacheWith[payload](CacheConfig{MemBytes: -1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), samplePayload())
	}
	if c.Len() != 100 {
		t.Errorf("unlimited mem layer evicted: Len = %d", c.Len())
	}
}

func TestLRUCacheRecencyAndAccounting(t *testing.T) {
	l := newLRUCache(300)
	big := make([]byte, 100)
	l.put("a", big)
	l.put("b", big)
	l.put("c", big)
	l.get("a") // refresh a: b is now least recent
	if ev := l.put("d", big); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if _, ok := l.get("b"); ok {
		t.Error("least-recently-used entry survived")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := l.get(k); !ok {
			t.Errorf("%s evicted out of order", k)
		}
	}
	// Updating in place adjusts size without duplicating.
	l.put("a", make([]byte, 10))
	if l.size != 210 {
		t.Errorf("size = %d after shrink-update, want 210", l.size)
	}
	l.remove("a")
	if l.size != 200 || l.len() != 2 {
		t.Errorf("after remove: size=%d len=%d, want 200/2", l.size, l.len())
	}
	// An oversized entry is admitted alone rather than refused.
	if ev := l.put("huge", make([]byte, 1000)); ev != 2 {
		t.Errorf("oversized put evicted %d, want 2", ev)
	}
	if _, ok := l.get("huge"); !ok || l.len() != 1 {
		t.Error("oversized entry not admitted alone")
	}
}
