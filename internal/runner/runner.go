// Package runner is the reusable parallel experiment engine behind every
// batch in the repository: table regeneration, policy sweeps, proxy
// studies and the benchmark harness all funnel their simulations through
// it. It replaces the previous ad-hoc goroutine fan-outs with one engine
// that provides
//
//   - a bounded worker pool (default GOMAXPROCS workers),
//   - context cancellation with first-error abort: the first failing job
//     cancels the batch context so queued jobs never start and running
//     simulations stop at their next cancellation check,
//   - per-job panic recovery, converting a crashed simulation into an
//     error carrying the panic value and stack instead of killing the
//     whole process,
//   - per-job wall-time and throughput metrics (cycles per second when
//     the job result reports its cycle count), and
//   - an optional progress callback for long batches.
//
// Results are always returned in job order regardless of completion
// order, so table rows stay aligned with their specs.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Job is one unit of work. The context is the batch context: jobs that
// can stop early (e.g. sim.RunContext) should honor its cancellation.
type Job[R any] func(ctx context.Context) (R, error)

// CycleCounter is implemented by job results that can report how many
// simulation cycles they covered; the runner uses it to derive a
// cycles-per-second throughput metric. *sim.Result implements it.
type CycleCounter interface {
	CycleCount() uint64
}

// Metrics records one job's execution cost.
type Metrics struct {
	// Wall is the job's wall-clock execution time.
	Wall time.Duration
	// Cycles is the simulated cycle count (0 if the result does not
	// implement CycleCounter).
	Cycles uint64
	// CyclesPerSec is Cycles divided by Wall (0 when unknown).
	CyclesPerSec float64
}

// Outcome is one job's result with its metrics. Err is non-nil when the
// job failed, panicked (a *PanicError), or was cancelled before running.
type Outcome[R any] struct {
	Value   R
	Err     error
	Metrics Metrics
}

// PanicError wraps a panic recovered from a job.
type PanicError struct {
	// Job is the index of the panicking job.
	Job int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at the panic site.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v", e.Job, e.Value)
}

// Progress is a snapshot handed to the progress callback after every job
// completes.
type Progress struct {
	// Done is the number of finished jobs (including failures).
	Done int
	// Total is the batch size.
	Total int
	// Failed is the number of finished jobs that returned an error.
	Failed int
	// Elapsed is the wall time since the batch started.
	Elapsed time.Duration
}

// Options tunes a batch.
type Options struct {
	// Workers bounds concurrency; <= 0 uses GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is invoked after every job completion.
	// It is called from worker goroutines but never concurrently.
	Progress func(Progress)
	// Metrics, when non-nil, streams batch lifecycle telemetry: started/
	// completed/failed job counters, per-job wall time, and the live
	// unclaimed-queue depth.
	Metrics *telemetry.RunnerMetrics
}

// Run executes jobs with bounded parallelism and returns their outcomes
// in job order. The returned error is the first job error encountered
// (in completion order); once it occurs the batch context is cancelled
// so unstarted jobs are skipped (their Outcome.Err is the cancellation
// cause) and cancellation-aware jobs stop early. Run itself never
// panics because of a job panic.
func Run[R any](ctx context.Context, opts Options, jobs []Job[R]) ([]Outcome[R], error) {
	outs := make([]Outcome[R], len(jobs))
	if len(jobs) == 0 {
		return outs, ctx.Err()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	bctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	var (
		firstErr error
		errOnce  sync.Once
		next     atomic.Int64
		done     atomic.Int64
		failed   atomic.Int64
		progMu   sync.Mutex
		start    = time.Now()
		wg       sync.WaitGroup
	)
	abort := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel(err)
		})
	}
	finish := func(failedJob bool) {
		d := done.Add(1)
		f := failed.Load()
		if failedJob {
			f = failed.Add(1)
		}
		if opts.Progress != nil {
			progMu.Lock()
			opts.Progress(Progress{
				Done:    int(d),
				Total:   len(jobs),
				Failed:  int(f),
				Elapsed: time.Since(start),
			})
			progMu.Unlock()
		}
	}

	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				err := &PanicError{Job: i, Value: r, Stack: debug.Stack()}
				outs[i].Err = err
				if opts.Metrics != nil {
					opts.Metrics.RunsCompleted.Inc()
					opts.Metrics.RunsFailed.Inc()
				}
				abort(err)
				finish(true)
			}
		}()
		if opts.Metrics != nil {
			opts.Metrics.RunsStarted.Inc()
		}
		jobStart := time.Now()
		v, err := jobs[i](bctx)
		outs[i].Value = v
		outs[i].Err = err
		outs[i].Metrics.Wall = time.Since(jobStart)
		if opts.Metrics != nil {
			opts.Metrics.RunsCompleted.Inc()
			if err != nil {
				opts.Metrics.RunsFailed.Inc()
			}
			opts.Metrics.RunSeconds.Observe(outs[i].Metrics.Wall.Seconds())
		}
		if cc, ok := any(v).(CycleCounter); ok && err == nil {
			outs[i].Metrics.Cycles = cc.CycleCount()
			if s := outs[i].Metrics.Wall.Seconds(); s > 0 {
				outs[i].Metrics.CyclesPerSec = float64(outs[i].Metrics.Cycles) / s
			}
		}
		if err != nil {
			abort(err)
		}
		finish(err != nil)
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if opts.Metrics != nil {
					if left := len(jobs) - i - 1; left >= 0 {
						opts.Metrics.QueueDepth.Set(float64(left))
					}
				}
				if err := bctx.Err(); err != nil {
					// Batch aborted: mark the job skipped without
					// running it.
					outs[i].Err = context.Cause(bctx)
					if opts.Metrics != nil {
						opts.Metrics.RunsFailed.Inc()
					}
					finish(true)
					continue
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return outs, firstErr
	}
	if err := ctx.Err(); err != nil {
		return outs, err
	}
	return outs, nil
}

// Map runs f over items with bounded parallelism and returns the results
// in item order. It aborts on the first error, like Run.
func Map[T, R any](ctx context.Context, opts Options, items []T, f func(ctx context.Context, item T) (R, error)) ([]R, error) {
	jobs := make([]Job[R], len(items))
	for i := range items {
		item := items[i]
		jobs[i] = func(ctx context.Context) (R, error) { return f(ctx, item) }
	}
	outs, err := Run(ctx, opts, jobs)
	if err != nil {
		return nil, err
	}
	return Values(outs), nil
}

// Values extracts the job results from outcomes, in order.
func Values[R any](outs []Outcome[R]) []R {
	vs := make([]R, len(outs))
	for i := range outs {
		vs[i] = outs[i].Value
	}
	return vs
}

// TotalMetrics aggregates batch metrics: summed wall time (CPU-seconds
// across workers), summed cycles, and overall throughput.
func TotalMetrics[R any](outs []Outcome[R]) Metrics {
	var m Metrics
	for i := range outs {
		m.Wall += outs[i].Metrics.Wall
		m.Cycles += outs[i].Metrics.Cycles
	}
	if s := m.Wall.Seconds(); s > 0 {
		m.CyclesPerSec = float64(m.Cycles) / s
	}
	return m
}
