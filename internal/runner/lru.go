package runner

// lruCache is the byte-capped in-memory layer of Cache: a plain
// map+intrusive-list LRU over encoded entries. Long-running workers sit
// in front of million-entry disk stores; without a cap the memory layer
// would eventually mirror the whole store and OOM the process. The cap
// is on payload bytes, not entry count, because result sizes vary with
// trace length. Not safe for concurrent use — Cache holds its mutex
// around every call.

import "container/list"

type lruEntry struct {
	key  string
	data []byte
}

type lruCache struct {
	capBytes int64 // negative = unlimited
	size     int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

func newLRUCache(capBytes int64) *lruCache {
	return &lruCache{
		capBytes: capBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the entry and marks it most recently used.
func (l *lruCache) get(key string) ([]byte, bool) {
	el, ok := l.items[key]
	if !ok {
		return nil, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry).data, true
}

// put inserts or replaces an entry and evicts least-recently-used
// entries until the cap holds, returning how many were evicted. An entry
// larger than the whole cap is still admitted alone — a cache that
// refuses the result it just computed would defeat CachedJob.
func (l *lruCache) put(key string, data []byte) (evicted int) {
	if el, ok := l.items[key]; ok {
		e := el.Value.(*lruEntry)
		l.size += int64(len(data)) - int64(len(e.data))
		e.data = data
		l.ll.MoveToFront(el)
	} else {
		l.items[key] = l.ll.PushFront(&lruEntry{key: key, data: data})
		l.size += int64(len(data))
	}
	if l.capBytes < 0 {
		return 0
	}
	for l.size > l.capBytes && l.ll.Len() > 1 {
		back := l.ll.Back()
		e := back.Value.(*lruEntry)
		l.ll.Remove(back)
		delete(l.items, e.key)
		l.size -= int64(len(e.data))
		evicted++
	}
	return evicted
}

func (l *lruCache) remove(key string) {
	el, ok := l.items[key]
	if !ok {
		return
	}
	l.ll.Remove(el)
	delete(l.items, key)
	l.size -= int64(len(el.Value.(*lruEntry).data))
}

func (l *lruCache) len() int { return l.ll.Len() }
