package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// counted is a job result that reports a cycle count.
type counted struct{ cycles uint64 }

func (c counted) CycleCount() uint64 { return c.cycles }

func TestRunOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 64
			jobs := make([]Job[int], n)
			for i := 0; i < n; i++ {
				i := i
				jobs[i] = func(context.Context) (int, error) {
					// Vary completion order: later jobs finish first.
					time.Sleep(time.Duration(n-i) * time.Microsecond)
					return i * i, nil
				}
			}
			outs, err := Run(context.Background(), Options{Workers: workers}, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if len(outs) != n {
				t.Fatalf("got %d outcomes, want %d", len(outs), n)
			}
			for i, o := range outs {
				if o.Err != nil {
					t.Fatalf("job %d: unexpected error %v", i, o.Err)
				}
				if o.Value != i*i {
					t.Errorf("job %d: value %d, want %d", i, o.Value, i*i)
				}
				if o.Metrics.Wall <= 0 {
					t.Errorf("job %d: no wall time recorded", i)
				}
			}
		})
	}
}

func TestRunFirstErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	const n = 100
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			started.Add(1)
			if i == 3 {
				return 0, boom
			}
			// Give the failing job time to abort the batch; honor
			// cancellation like a well-behaved simulation.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(20 * time.Millisecond):
				return i, nil
			}
		}
	}
	outs, err := Run(context.Background(), Options{Workers: 2}, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("batch error = %v, want %v", err, boom)
	}
	if outs[3].Err == nil || !errors.Is(outs[3].Err, boom) {
		t.Errorf("failing job outcome error = %v, want %v", outs[3].Err, boom)
	}
	// Most jobs must have been skipped, not run: with 2 workers and an
	// abort on the 4th job, nowhere near all 100 should start.
	if s := started.Load(); s > 20 {
		t.Errorf("%d jobs started after first-error abort; want early stop", s)
	}
	// Skipped jobs carry the abort cause.
	var skipped int
	for _, o := range outs {
		if o.Err != nil && errors.Is(o.Err, boom) {
			skipped++
		}
	}
	if skipped < n/2 {
		t.Errorf("only %d outcomes carry the abort cause", skipped)
	}
}

func TestRunPanicBecomesError(t *testing.T) {
	jobs := []Job[string]{
		func(context.Context) (string, error) { return "ok", nil },
		func(context.Context) (string, error) { panic("kaboom") },
	}
	outs, err := Run(context.Background(), Options{Workers: 1}, jobs)
	if err == nil {
		t.Fatal("batch error is nil despite panic")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("batch error %T is not a *PanicError", err)
	}
	if pe.Job != 1 || pe.Value != "kaboom" {
		t.Errorf("PanicError = {Job:%d Value:%v}, want {1 kaboom}", pe.Job, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError has no stack")
	}
	if outs[0].Err != nil || outs[0].Value != "ok" {
		t.Errorf("healthy job outcome corrupted: %+v", outs[0])
	}
	if !errors.As(outs[1].Err, &pe) {
		t.Errorf("panicking job outcome error = %v, want *PanicError", outs[1].Err)
	}
}

func TestRunCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	const n = 32
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			if i == 0 {
				close(release) // first job signals the canceller
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(5 * time.Second):
				return i, nil
			}
		}
	}
	go func() {
		<-release
		cancel()
	}()
	outs, err := Run(ctx, Options{Workers: 2}, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error = %v, want context.Canceled", err)
	}
	var finished int
	for _, o := range outs {
		if o.Err == nil {
			finished++
		}
	}
	if finished == n {
		t.Error("cancellation did not stop any job")
	}
}

func TestRunMetricsAndProgress(t *testing.T) {
	const n = 10
	jobs := make([]Job[counted], n)
	for i := 0; i < n; i++ {
		jobs[i] = func(context.Context) (counted, error) {
			time.Sleep(time.Millisecond)
			return counted{cycles: 1000}, nil
		}
	}
	var calls atomic.Int64
	var lastDone atomic.Int64
	outs, err := Run(context.Background(), Options{
		Workers: 3,
		Progress: func(p Progress) {
			calls.Add(1)
			if p.Total != n {
				t.Errorf("progress total = %d, want %d", p.Total, n)
			}
			lastDone.Store(int64(p.Done))
		},
	}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != n {
		t.Errorf("progress callback fired %d times, want %d", calls.Load(), n)
	}
	if lastDone.Load() != n {
		t.Errorf("final progress done = %d, want %d", lastDone.Load(), n)
	}
	for i, o := range outs {
		if o.Metrics.Cycles != 1000 {
			t.Errorf("job %d: cycles = %d, want 1000", i, o.Metrics.Cycles)
		}
		if o.Metrics.CyclesPerSec <= 0 {
			t.Errorf("job %d: no throughput metric", i)
		}
	}
	tot := TotalMetrics(outs)
	if tot.Cycles != n*1000 {
		t.Errorf("total cycles = %d, want %d", tot.Cycles, n*1000)
	}
	if tot.Wall < n*time.Millisecond {
		t.Errorf("total wall %v below serial floor", tot.Wall)
	}
}

func TestMap(t *testing.T) {
	items := []int{1, 2, 3, 4, 5}
	got, err := Map(context.Background(), Options{}, items,
		func(_ context.Context, x int) (int, error) { return x * 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != items[i]*10 {
			t.Errorf("result[%d] = %d, want %d", i, v, items[i]*10)
		}
	}
	boom := errors.New("boom")
	if _, err := Map(context.Background(), Options{}, items,
		func(_ context.Context, x int) (int, error) {
			if x == 3 {
				return 0, boom
			}
			return x, nil
		}); !errors.Is(err, boom) {
		t.Errorf("Map error = %v, want %v", err, boom)
	}
}

func TestRunEmptyAndCancelledUpfront(t *testing.T) {
	outs, err := Run(context.Background(), Options{}, []Job[int]{})
	if err != nil || len(outs) != 0 {
		t.Errorf("empty batch: outs=%v err=%v", outs, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	outs, err = Run(ctx, Options{}, []Job[int]{
		func(context.Context) (int, error) { ran.Store(true); return 1, nil },
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled batch error = %v", err)
	}
	if ran.Load() {
		t.Error("job ran despite pre-cancelled context")
	}
	if outs[0].Err == nil {
		t.Error("skipped job has nil error")
	}
}

// TestRunStress hammers the pool from many shapes; run with -race.
func TestRunStress(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 32} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			const n = 200
			var sum atomic.Int64
			jobs := make([]Job[int], n)
			for i := 0; i < n; i++ {
				i := i
				jobs[i] = func(context.Context) (int, error) {
					sum.Add(int64(i))
					return i, nil
				}
			}
			var progress atomic.Int64
			outs, err := Run(context.Background(), Options{
				Workers:  workers,
				Progress: func(Progress) { progress.Add(1) },
			}, jobs)
			if err != nil {
				t.Fatal(err)
			}
			want := int64(n * (n - 1) / 2)
			if sum.Load() != want {
				t.Errorf("side-effect sum = %d, want %d", sum.Load(), want)
			}
			if progress.Load() != n {
				t.Errorf("progress fired %d times, want %d", progress.Load(), n)
			}
			for i, o := range outs {
				if o.Value != i {
					t.Fatalf("out of order: outs[%d] = %d", i, o.Value)
				}
			}
		})
	}
}
