// Package control implements the paper's control-theoretic DTM machinery
// (Section 3): the thermal plant model, the PID controller family
// (P, PI, PD, PID) with actuator saturation and integral anti-windup, a
// Laplace-domain tuning procedure based on gain-crossover/phase-margin
// design, and closed-loop step-response analysis (settling time and
// overshoot, Section 2.2's "guaranteed settling times").
//
// The controlled process is the thermal dynamics of one chip structure
// (Equation 3):
//
//	G(s) = K * e^(-L*s) / (1 + tau*s)
//
// where K is the steady-state gain (the thermal R times the power the
// actuator modulates), tau is the thermal RC constant (the paper uses the
// longest block time constant), and L is the effective loop delay — half
// the sampling period introduced by sampling.
package control

import (
	"errors"
	"fmt"
	"math"
)

// Plant is the first-order-plus-dead-time model of Equation 3.
type Plant struct {
	// K is the steady-state gain in output units per unit of actuator
	// input (Kelvin per unit fetch duty here).
	K float64
	// Tau is the dominant time constant in seconds (thermal RC).
	Tau float64
	// Delay is the effective loop dead time L in seconds (half the
	// sampling period per Section 3.2).
	Delay float64
}

// FreqResponse returns magnitude and phase (radians) of G(j*omega).
func (p Plant) FreqResponse(omega float64) (mag, phase float64) {
	mag = p.K / math.Sqrt(1+omega*omega*p.Tau*p.Tau)
	phase = -math.Atan(omega*p.Tau) - omega*p.Delay
	return mag, phase
}

// Gains holds PID weights for the textbook parallel form
// u = Kp*e + Ki*Integral(e) + Kd*de/dt (Equation 1).
type Gains struct {
	Kp, Ki, Kd float64
}

// Kind selects which controller terms are active.
type Kind int

// Controller kinds evaluated in the paper (Section 3.2 derives P, PI, PD
// and PID from the same two design equations by zeroing terms).
const (
	KindP Kind = iota
	KindPI
	KindPD
	KindPID
)

// String returns the conventional controller name.
func (k Kind) String() string {
	switch k {
	case KindP:
		return "P"
	case KindPI:
		return "PI"
	case KindPD:
		return "PD"
	case KindPID:
		return "PID"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Spec parameterizes the tuning procedure.
type Spec struct {
	Kind Kind
	// Crossover is the desired gain-crossover frequency in rad/s. If
	// zero, the tuner picks the frequency at which the loop dead time
	// contributes 30 degrees of phase lag — fast, but with bounded
	// delay-induced uncertainty.
	Crossover float64
	// PhaseMargin is the desired phase margin in radians. If zero, a
	// robust 60-degree margin is used ("common values that are known to
	// work well in practice", Section 3.2).
	PhaseMargin float64
	// TiOverTd is the integral-to-derivative time ratio for the full
	// PID, the extra design constraint of Section 3.2. If zero, the
	// classic ratio 4 is used.
	TiOverTd float64
}

// Default design constants.
const (
	defaultPhaseMargin = 60 * math.Pi / 180
	defaultDelayPhase  = 30 * math.Pi / 180
	defaultTiOverTd    = 4.0
)

// Tune derives controller gains for the plant by gain-crossover /
// phase-margin design: it places |C(jwc)G(jwc)| = 1 and
// arg C(jwc)G(jwc) = -180deg + PhaseMargin, then splits the required
// controller phase between the integral and derivative actions according
// to the controller kind. It returns an error when the requested kind
// cannot supply the required phase at the chosen crossover.
func Tune(p Plant, spec Spec) (Gains, error) {
	if p.K <= 0 || p.Tau <= 0 || p.Delay < 0 {
		return Gains{}, fmt.Errorf("control: invalid plant %+v", p)
	}
	pm := spec.PhaseMargin
	if pm == 0 {
		pm = defaultPhaseMargin
	}
	if pm <= 0 || pm >= math.Pi/2+0.01 {
		return Gains{}, fmt.Errorf("control: phase margin %g rad out of range", pm)
	}
	wc := spec.Crossover
	if wc == 0 {
		if p.Delay > 0 {
			wc = defaultDelayPhase / p.Delay
		} else {
			wc = 10 / p.Tau
		}
	}
	if wc <= 0 {
		return Gains{}, fmt.Errorf("control: invalid crossover %g", wc)
	}
	mag, phase := p.FreqResponse(wc)
	m := 1 / mag // required controller magnitude at wc
	// Required controller phase at wc.
	theta := -math.Pi + pm - phase
	const eps = 1e-9
	switch spec.Kind {
	case KindP:
		// A pure gain cannot supply phase; accept a small shortfall
		// (the achieved margin is pm - theta).
		if theta > 30*math.Pi/180+eps || theta < -30*math.Pi/180-eps {
			return Gains{}, fmt.Errorf("control: P controller cannot supply %.1f deg at wc=%g",
				theta*180/math.Pi, wc)
		}
		return Gains{Kp: m}, nil
	case KindPI:
		// Integral action only lags: theta must be in (-90, 0].
		if theta > eps || theta <= -math.Pi/2+eps {
			return Gains{}, fmt.Errorf("control: PI needs controller phase in (-90,0] deg, got %.1f",
				theta*180/math.Pi)
		}
		return Gains{
			Kp: m * math.Cos(theta),
			Ki: -wc * m * math.Sin(theta),
		}, nil
	case KindPD:
		// Derivative action only leads: theta in [0, 90). A small
		// negative requirement degenerates to pure P (the derivative
		// term cannot lag), with a correspondingly small margin
		// shortfall.
		if theta >= math.Pi/2-eps || theta < -30*math.Pi/180-eps {
			return Gains{}, fmt.Errorf("control: PD needs controller phase in [0,90) deg, got %.1f",
				theta*180/math.Pi)
		}
		if theta < 0 {
			return Gains{Kp: m}, nil
		}
		return Gains{
			Kp: m * math.Cos(theta),
			Kd: m * math.Sin(theta) / wc,
		}, nil
	case KindPID:
		// Extra constraint Ti = rho*Td closes the system: with
		// x = Td*wc, the phase condition becomes x - 1/(rho*x) =
		// tan(theta), whose positive root fixes Td.
		if theta <= -math.Pi/2+eps || theta >= math.Pi/2-eps {
			return Gains{}, fmt.Errorf("control: PID needs |controller phase| < 90 deg, got %.1f",
				theta*180/math.Pi)
		}
		rho := spec.TiOverTd
		if rho == 0 {
			rho = defaultTiOverTd
		}
		if rho <= 0 {
			return Gains{}, fmt.Errorf("control: invalid Ti/Td ratio %g", rho)
		}
		tt := math.Tan(theta)
		x := (tt + math.Sqrt(tt*tt+4/rho)) / 2
		kp := m * math.Cos(theta)
		td := x / wc
		ti := rho * td
		return Gains{Kp: kp, Ki: kp / ti, Kd: kp * td}, nil
	default:
		return Gains{}, fmt.Errorf("control: unknown controller kind %d", spec.Kind)
	}
}

// MustTune is Tune but panics on error; for static configurations that are
// known-feasible.
func MustTune(p Plant, spec Spec) Gains {
	g, err := Tune(p, spec)
	if err != nil {
		panic(err)
	}
	return g
}

// OpenLoopPhaseMargin returns the achieved phase margin (radians) of the
// loop C(s)G(s) for the given gains, found at the gain-crossover frequency,
// along with that frequency. It returns an error if no crossover exists in
// the searched range.
func OpenLoopPhaseMargin(p Plant, g Gains) (pm, wc float64, err error) {
	loopMag := func(w float64) float64 {
		gm, _ := p.FreqResponse(w)
		re := g.Kp
		im := g.Kd*w - g.Ki/w
		return gm * math.Hypot(re, im)
	}
	// Bracket |L(jw)| = 1 by scanning decades, then bisect.
	lo, hi := 1e-3/p.Tau, 0.0
	if p.Delay > 0 {
		hi = 100 / p.Delay
	} else {
		hi = 1e6 / p.Tau
	}
	if loopMag(lo) < 1 {
		return 0, 0, errors.New("control: loop gain below unity at low frequency")
	}
	// Scan geometrically for a bracket [a, b] with |L(a)| >= 1 > |L(b)|.
	// The final step is clamped to hi (and hi itself evaluated) so a
	// crossover landing inside the last partial step is still found.
	a, b := lo, lo
	found := false
	for a < hi {
		b = a * 1.1
		if b > hi {
			b = hi
		}
		if loopMag(b) < 1 {
			found = true
			break
		}
		a = b
	}
	if !found {
		return 0, 0, errors.New("control: no gain crossover found")
	}
	for i := 0; i < 80; i++ {
		mid := math.Sqrt(a * b)
		if loopMag(mid) > 1 {
			a = mid
		} else {
			b = mid
		}
	}
	wc = math.Sqrt(a * b)
	_, gphase := p.FreqResponse(wc)
	cphase := math.Atan2(g.Kd*wc-g.Ki/wc, g.Kp)
	return math.Pi + gphase + cphase, wc, nil
}

// PID is the discrete-time runtime controller (Section 3.2) with actuator
// saturation handling and the paper's anti-windup policy (Section 3.3):
// the integrator freezes while the actuator is saturated, and the integral
// term is never allowed to go negative.
type PID struct {
	Gains
	// Setpoint is the target temperature (Celsius).
	Setpoint float64
	// SensorRange, when positive, clips the error to +-SensorRange,
	// modeling the bounded linear range of the thermal sensor around the
	// setpoint (Section 5.3's "sensor range").
	SensorRange float64
	// Ts is the sampling period in seconds (667 ns at 1000 cycles).
	Ts float64
	// OutMin, OutMax bound the actuator (fetch duty in [0,1]).
	OutMin, OutMax float64
	// DisableAntiWindup turns the windup protection off (ablation).
	DisableAntiWindup bool

	integ      float64
	prevErr    float64
	primed     bool
	lastU      float64
	lastSat    bool
	lastFrozen bool
	lastP      float64
	lastI      float64
	lastD      float64
}

// NewPID returns a runtime controller with the given tuning, setpoint and
// sampling period, with outputs bounded to [0, 1].
func NewPID(g Gains, setpoint, sensorRange, ts float64) *PID {
	if ts <= 0 {
		panic(fmt.Sprintf("control: invalid sampling period %g", ts))
	}
	return &PID{
		Gains:       g,
		Setpoint:    setpoint,
		SensorRange: sensorRange,
		Ts:          ts,
		OutMin:      0,
		OutMax:      1,
	}
}

// Reset clears the controller state.
func (c *PID) Reset() {
	c.integ, c.prevErr, c.primed, c.lastU, c.lastSat = 0, 0, false, 0, false
	c.lastFrozen, c.lastP, c.lastI, c.lastD = false, 0, 0, 0
}

// Saturated reports whether the last Update hit an actuator bound.
func (c *PID) Saturated() bool { return c.lastSat }

// Frozen reports whether the last Update froze the integrator under the
// anti-windup policy.
func (c *PID) Frozen() bool { return c.lastFrozen }

// Terms returns the proportional, integral and derivative contributions of
// the last Update (the integral term reflects the post-anti-windup
// accumulator) — the per-sample controller trace the telemetry layer
// records.
func (c *PID) Terms() (p, i, d float64) { return c.lastP, c.lastI, c.lastD }

// Output returns the last computed actuator command.
func (c *PID) Output() float64 { return c.lastU }

// Integral returns the current integral accumulator (for tests/ablations).
func (c *PID) Integral() float64 { return c.integ }

// Update samples the measured temperature and returns the actuator command
// in [OutMin, OutMax]. The command is the fraction of full activity the
// pipeline may sustain: 1 = run at full speed, 0 = fully toggled off.
//
// Error convention follows Section 3.1: e = Tset - T. Positive error
// (system cool) relaxes the actuator toward full speed; negative error
// (overheated) drives it toward zero.
func (c *PID) Update(measured float64) float64 {
	e := c.Setpoint - measured
	if c.SensorRange > 0 {
		if e > c.SensorRange {
			e = c.SensorRange
		} else if e < -c.SensorRange {
			e = -c.SensorRange
		}
	}
	var deriv float64
	if c.primed {
		deriv = (e - c.prevErr) / c.Ts
	}
	c.prevErr, c.primed = e, true

	// Tentatively integrate, then apply the paper's two windup rules.
	newInteg := c.integ + e*c.Ts
	if newInteg < 0 {
		// "...by preventing the integral from taking on a negative
		// value" (Section 3.3).
		newInteg = 0
	}
	u := c.Kp*e + c.Ki*newInteg + c.Kd*deriv
	sat := false
	if u > c.OutMax {
		u, sat = c.OutMax, true
	} else if u < c.OutMin {
		u, sat = c.OutMin, true
	}
	frozen := false
	if sat && !c.DisableAntiWindup {
		// Freeze the integrator while saturated unless integrating
		// would drive the output back inside the actuator range.
		unsatU := c.Kp*e + c.Ki*c.integ + c.Kd*deriv
		drivingOut := (u >= c.OutMax && newInteg > c.integ) ||
			(u <= c.OutMin && newInteg < c.integ)
		if drivingOut || unsatU > c.OutMax || unsatU < c.OutMin {
			frozen = newInteg != c.integ
			newInteg = c.integ
		}
	}
	c.integ = newInteg
	c.lastU, c.lastSat, c.lastFrozen = u, sat, frozen
	c.lastP, c.lastI, c.lastD = c.Kp*e, c.Ki*newInteg, c.Kd*deriv
	return u
}

// Quantize maps a continuous command u in [0,1] onto n evenly spaced
// discrete actuator levels {0, 1/(n-1), ..., 1}, the paper's "eight
// discrete values distributed evenly across the range" (Section 5.3).
func Quantize(u float64, n int) float64 {
	if n < 2 {
		panic(fmt.Sprintf("control: need >= 2 actuator levels, got %d", n))
	}
	if math.IsNaN(u) {
		// A divergent controller must not poison the actuator: NaN
		// compares false against every bound below and math.Round(NaN)
		// stays NaN, which would latch the fetch duty at NaN forever.
		// Fail toward full speed and let the thermal trigger re-engage.
		return 1
	}
	if u <= 0 {
		return 0
	}
	if u >= 1 {
		return 1
	}
	steps := float64(n - 1)
	return math.Round(u*steps) / steps
}
