package control

import (
	"math"
	"testing"
	"testing/quick"
)

// The paper's plant: K = R*Papp ~ 12 K per unit duty, tau = longest block
// RC (180 us), L = half the 667 ns sampling period.
func paperPlant() Plant {
	return Plant{K: 12, Tau: 180e-6, Delay: 333.5e-9}
}

const paperTs = 667e-9

func TestFreqResponseDC(t *testing.T) {
	p := paperPlant()
	mag, phase := p.FreqResponse(1e-6)
	if math.Abs(mag-p.K) > 1e-6 {
		t.Errorf("DC gain = %v, want %v", mag, p.K)
	}
	if math.Abs(phase) > 1e-6 {
		t.Errorf("DC phase = %v, want 0", phase)
	}
}

func TestFreqResponseCornerFrequency(t *testing.T) {
	p := Plant{K: 10, Tau: 1e-3, Delay: 0}
	mag, phase := p.FreqResponse(1 / p.Tau)
	if math.Abs(mag-10/math.Sqrt2) > 1e-9 {
		t.Errorf("corner magnitude = %v, want %v", mag, 10/math.Sqrt2)
	}
	if math.Abs(phase+math.Pi/4) > 1e-9 {
		t.Errorf("corner phase = %v, want -45 deg", phase)
	}
}

func TestKindString(t *testing.T) {
	for k, s := range map[Kind]string{KindP: "P", KindPI: "PI", KindPD: "PD", KindPID: "PID"} {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// Every tuned controller must achieve (approximately) the requested phase
// margin at the achieved crossover.
func TestTuneAchievesPhaseMargin(t *testing.T) {
	p := paperPlant()
	for _, kind := range []Kind{KindP, KindPI, KindPD, KindPID} {
		spec := Spec{Kind: kind}
		g, err := Tune(p, spec)
		if err != nil {
			t.Fatalf("%v: tune failed: %v", kind, err)
		}
		pm, wc, err := OpenLoopPhaseMargin(p, g)
		if err != nil {
			t.Fatalf("%v: phase margin: %v", kind, err)
		}
		want := defaultPhaseMargin
		tol := 2 * math.Pi / 180
		if kind == KindP {
			// P cannot supply phase; allow the documented shortfall.
			tol = 35 * math.Pi / 180
		}
		if math.Abs(pm-want) > tol {
			t.Errorf("%v: phase margin = %.1f deg at wc=%g, want %.1f +- %.1f",
				kind, pm*180/math.Pi, wc, want*180/math.Pi, tol*180/math.Pi)
		}
		if g.Kp <= 0 {
			t.Errorf("%v: Kp = %v, want > 0", kind, g.Kp)
		}
	}
}

func TestTunePIDHasAllTerms(t *testing.T) {
	g := MustTune(paperPlant(), Spec{Kind: KindPID})
	if g.Kp <= 0 || g.Ki <= 0 || g.Kd <= 0 {
		t.Errorf("PID gains = %+v, want all positive", g)
	}
	// Ti = 4*Td by default: Kp/Ki = 4*Kd/Kp.
	ti := g.Kp / g.Ki
	td := g.Kd / g.Kp
	if math.Abs(ti/td-4) > 1e-6 {
		t.Errorf("Ti/Td = %v, want 4", ti/td)
	}
}

func TestTunePIHasNoDerivative(t *testing.T) {
	g := MustTune(paperPlant(), Spec{Kind: KindPI})
	if g.Kd != 0 {
		t.Errorf("PI Kd = %v, want 0", g.Kd)
	}
	if g.Ki <= 0 {
		t.Errorf("PI Ki = %v, want > 0", g.Ki)
	}
}

func TestTuneRejectsBadInputs(t *testing.T) {
	if _, err := Tune(Plant{}, Spec{}); err == nil {
		t.Error("Tune accepted zero plant")
	}
	if _, err := Tune(paperPlant(), Spec{PhaseMargin: -1}); err == nil {
		t.Error("Tune accepted negative phase margin")
	}
	if _, err := Tune(paperPlant(), Spec{Kind: Kind(42)}); err == nil {
		t.Error("Tune accepted unknown kind")
	}
	if _, err := Tune(paperPlant(), Spec{Kind: KindPID, TiOverTd: -3}); err == nil {
		t.Error("Tune accepted negative Ti/Td")
	}
}

func TestMustTunePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustTune did not panic")
		}
	}()
	MustTune(Plant{}, Spec{})
}

func TestQuantizeEightLevels(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.01, 0}, {0.5, 4.0 / 7}, {1, 1}, {1.5, 1},
		{1.0 / 7, 1.0 / 7}, {0.09, 1.0 / 7}, {0.06, 0},
	}
	for _, c := range cases {
		got := Quantize(c.in, 8)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantize(%v, 8) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantizeProperty(t *testing.T) {
	f := func(u float64, n8 uint8) bool {
		if math.IsNaN(u) || math.IsInf(u, 0) {
			return true
		}
		n := int(n8%14) + 2
		q := Quantize(u, n)
		if q < 0 || q > 1 {
			return false
		}
		// q must be k/(n-1) for integer k.
		k := q * float64(n-1)
		if math.Abs(k-math.Round(k)) > 1e-9 {
			return false
		}
		// Within half a step of the clamped input.
		cu := math.Max(0, math.Min(1, u))
		return math.Abs(q-cu) <= 0.5/float64(n-1)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizePanicsOnOneLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantize with 1 level did not panic")
		}
	}()
	Quantize(0.5, 1)
}

func TestPIDFullSpeedWhenCool(t *testing.T) {
	g := MustTune(paperPlant(), Spec{Kind: KindPID})
	c := NewPID(g, 111.1, 0.2, paperTs)
	if u := c.Update(100); u != 1 {
		t.Errorf("duty at 100 C = %v, want 1 (full speed)", u)
	}
	if !c.Saturated() {
		t.Error("controller should be saturated at full speed")
	}
}

func TestPIDThrottlesWhenHot(t *testing.T) {
	g := MustTune(paperPlant(), Spec{Kind: KindPID})
	c := NewPID(g, 111.1, 0.2, paperTs)
	c.Update(100)
	if u := c.Update(112.0); u != 0 {
		t.Errorf("duty at 112 C = %v, want 0 (fully toggled)", u)
	}
}

func TestPIDErrorConventionMonotone(t *testing.T) {
	// Hotter measurement never yields a higher duty.
	g := Gains{Kp: 5, Ki: 0, Kd: 0}
	prev := math.Inf(1)
	for temp := 110.0; temp <= 112.0; temp += 0.05 {
		c := NewPID(g, 111.1, 0, paperTs)
		u := c.Update(temp)
		if u > prev+1e-12 {
			t.Fatalf("duty increased with temperature at %v C", temp)
		}
		prev = u
	}
}

func TestPIDSensorRangeClipsError(t *testing.T) {
	g := Gains{Kp: 1}
	c := NewPID(g, 111.1, 0.2, paperTs)
	// Error clipped to 0.2 => duty = Kp*0.2 even when far below setpoint.
	if u := c.Update(50); math.Abs(u-0.2) > 1e-12 {
		t.Errorf("clipped duty = %v, want 0.2", u)
	}
}

func TestPIDIntegralNeverNegative(t *testing.T) {
	g := Gains{Kp: 1, Ki: 1e5}
	c := NewPID(g, 111.1, 0, paperTs)
	for i := 0; i < 1000; i++ {
		c.Update(115) // persistently overheated: raw integral would dive
	}
	if c.Integral() < 0 {
		t.Errorf("integral = %v, want >= 0", c.Integral())
	}
}

// The paper's windup scenario (Section 3.3): a long cool period must not
// accumulate unbounded integral that delays the response to a subsequent
// overheat.
func TestPIDAntiWindupBoundsIntegral(t *testing.T) {
	g := MustTune(paperPlant(), Spec{Kind: KindPI})
	c := NewPID(g, 111.1, 0.2, paperTs)
	for i := 0; i < 100000; i++ {
		c.Update(100) // cool: actuator saturates at full speed
	}
	withAW := c.Integral()

	c2 := NewPID(g, 111.1, 0.2, paperTs)
	c2.DisableAntiWindup = true
	for i := 0; i < 100000; i++ {
		c2.Update(100)
	}
	if withAW >= c2.Integral() {
		t.Errorf("anti-windup integral %v not smaller than wound-up %v",
			withAW, c2.Integral())
	}
	// With anti-windup, one hot sample must immediately pull the output
	// off the upper saturation bound within a few samples.
	var u float64
	for i := 0; i < 5; i++ {
		u = c.Update(112)
	}
	if u >= 1 {
		t.Errorf("anti-windup controller stuck at full speed after overheat (u=%v)", u)
	}
}

// TestPIDAntiWindupAblation exercises the Section 3.3 windup protection as
// an explicit on/off ablation with the controller's introspection hooks:
// under sustained upper-bound saturation the integrator must freeze (and
// report it via Frozen), must never go negative in either mode, and on
// release the protected controller must leave the bound within a couple of
// samples while the wound-up one stays pinned for thousands.
func TestPIDAntiWindupAblation(t *testing.T) {
	mk := func(disable bool) *PID {
		c := NewPID(Gains{Kp: 0.5, Ki: 50}, 100, 0, 1e-3)
		c.DisableAntiWindup = disable
		return c
	}
	const satSteps = 2000

	aw, raw := mk(false), mk(true)
	for i := 0; i < satSteps; i++ {
		// Far below setpoint: e = +10, both saturate at the upper bound.
		ua, ur := aw.Update(90), raw.Update(90)
		if ua != 1 || ur != 1 {
			t.Fatalf("step %d: not saturated high (ua=%v ur=%v)", i, ua, ur)
		}
		if !aw.Saturated() || !aw.Frozen() {
			t.Fatalf("step %d: protected controller not saturated+frozen", i)
		}
		if raw.Frozen() {
			t.Fatalf("step %d: ablated controller reported a freeze", i)
		}
		if aw.Integral() < 0 || raw.Integral() < 0 {
			t.Fatalf("step %d: negative integral", i)
		}
	}
	if got := aw.Integral(); got != 0 {
		t.Errorf("frozen integrator drifted to %v", got)
	}
	// Ablated: integral grows e*Ts per step = 0.01 * satSteps.
	if got, want := raw.Integral(), 10*1e-3*satSteps; math.Abs(got-want) > 1e-6*want {
		t.Errorf("wound-up integral = %v, want ~%v", got, want)
	}
	if _, i, _ := raw.Terms(); i < 999 {
		t.Errorf("wound-up I term = %v, want ~1000", i)
	}

	// Release: slightly above setpoint. The protected controller must come
	// off the upper bound essentially immediately; the wound-up integral
	// (~20, discharging 5e-4 per step) pins the ablated one for thousands
	// of samples — the overshoot blow-up the paper's rule prevents.
	recovery := func(c *PID, limit int) int {
		for i := 1; i <= limit; i++ {
			if c.Update(100.5) < 1 {
				return i
			}
		}
		return limit + 1
	}
	const limit = 10_000
	if steps := recovery(aw, limit); steps > 2 {
		t.Errorf("protected controller took %d steps to leave saturation, want <= 2", steps)
	}
	if steps := recovery(raw, limit); steps <= 1000 {
		t.Errorf("ablated controller recovered in %d steps; windup should pin it far longer", steps)
	}
	// Even while discharging a huge windup under negative error, the
	// integral must never cross zero.
	for i := 0; i < 1000; i++ {
		raw.Update(150) // e clamps the integral discharge hard
		if raw.Integral() < 0 {
			t.Fatal("integral went negative during discharge")
		}
	}
}

func TestPIDResetClearsState(t *testing.T) {
	g := Gains{Kp: 1, Ki: 100, Kd: 1e-6}
	c := NewPID(g, 111.1, 0, paperTs)
	c.Update(110)
	c.Update(110.5)
	c.Reset()
	if c.Integral() != 0 || c.Output() != 0 || c.Saturated() {
		t.Error("Reset did not clear controller state")
	}
}

func TestNewPIDPanicsOnBadTs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPID with ts=0 did not panic")
		}
	}()
	NewPID(Gains{Kp: 1}, 111, 0, 0)
}

// Closed-loop regulation: under a full-power disturbance, the PI and PID
// loops must pull the temperature to the setpoint with no emergency
// (setpoint + 0.2) excursion — the paper's headline property.
func TestClosedLoopRegulationNoEmergency(t *testing.T) {
	p := paperPlant()
	const setpoint, emergency = 111.1, 111.3
	for _, kind := range []Kind{KindPI, KindPID} {
		g := MustTune(p, Spec{Kind: kind})
		ctl := NewPID(g, setpoint, 0.2, paperTs)
		tr := SimulateLoop(p, ctl, LoopConfig{
			Ambient:  100,
			Duration: 5e-3, // ~28 time constants
			Levels:   8,
		})
		if hot := tr.MaxTemp(); hot > emergency {
			t.Errorf("%v: max temp %v exceeds emergency %v", kind, hot, emergency)
		}
		// Must actually regulate near the setpoint, not just stay cold:
		// with K=12 the uncontrolled steady state would be 112.
		n := len(tr.Temp)
		tail := tr.Temp[n-n/10:]
		var mean float64
		for _, v := range tail {
			mean += v
		}
		mean /= float64(len(tail))
		if math.Abs(mean-setpoint) > 0.25 {
			t.Errorf("%v: settled at %v, want ~%v", kind, mean, setpoint)
		}
	}
}

// P control must leave a steady-state offset below the setpoint; PI must
// remove it. This is the textbook behaviour the paper leans on when giving
// P a lower setpoint than PI/PID.
func TestProportionalOffsetEliminatedByIntegral(t *testing.T) {
	p := paperPlant()
	const setpoint = 111.1
	run := func(kind Kind) float64 {
		g := MustTune(p, Spec{Kind: kind})
		ctl := NewPID(g, setpoint, 0.5, paperTs)
		tr := SimulateLoop(p, ctl, LoopConfig{Ambient: 100, Duration: 5e-3})
		return tr.Temp[len(tr.Temp)-1]
	}
	pFinal := run(KindP)
	piFinal := run(KindPI)
	if !(pFinal < setpoint-0.01) {
		t.Errorf("P controller settled at %v, want visible offset below %v", pFinal, setpoint)
	}
	if math.Abs(piFinal-setpoint) > 0.02 {
		t.Errorf("PI controller settled at %v, want ~%v", piFinal, setpoint)
	}
}

func TestSimulateLoopDemandDisturbance(t *testing.T) {
	p := paperPlant()
	g := MustTune(p, Spec{Kind: KindPI})
	ctl := NewPID(g, 111.1, 0.2, paperTs)
	// Demand switches off halfway: temperature must fall and duty must
	// return to full speed.
	tr := SimulateLoop(p, ctl, LoopConfig{
		Ambient:  100,
		Duration: 10e-3,
		Demand: func(t float64) float64 {
			if t < 5e-3 {
				return 1
			}
			return 0.1
		},
	})
	if tr.U[len(tr.U)-1] != 1 {
		t.Errorf("final duty = %v, want 1 after load drop", tr.U[len(tr.U)-1])
	}
	if tr.Temp[len(tr.Temp)-1] > 102 {
		t.Errorf("final temp = %v, want cooled near ambient+K*0.1", tr.Temp[len(tr.Temp)-1])
	}
}

func TestTraceMetrics(t *testing.T) {
	tr := Trace{
		Time: []float64{0, 1, 2, 3},
		Temp: []float64{100, 112, 111.2, 111.15},
		U:    []float64{1, 0, 0.5, 0.5},
	}
	if o := tr.Overshoot(111.1); math.Abs(o-0.9) > 1e-9 {
		t.Errorf("overshoot = %v, want 0.9", o)
	}
	if st := tr.SettlingTime(111.1, 0.15); st != 2 {
		t.Errorf("settling time = %v, want 2", st)
	}
	if st := tr.SettlingTime(111.1, 0.01); st != -1 {
		t.Errorf("settling time = %v, want -1 (never)", st)
	}
	if m := tr.MaxTemp(); m != 112 {
		t.Errorf("max temp = %v", m)
	}
	if d := tr.MeanDuty(); math.Abs(d-0.5) > 1e-9 {
		t.Errorf("mean duty = %v, want 0.5", d)
	}
}

func TestSimulateLoopPanicsOnBadDuration(t *testing.T) {
	g := Gains{Kp: 1}
	ctl := NewPID(g, 111, 0, paperTs)
	defer func() {
		if recover() == nil {
			t.Fatal("SimulateLoop with zero duration did not panic")
		}
	}()
	SimulateLoop(paperPlant(), ctl, LoopConfig{})
}

// Settling time of the tuned closed loop should be a small multiple of the
// plant time constant — the responsiveness the paper exploits.
func TestSettlingWithinFewTimeConstants(t *testing.T) {
	p := paperPlant()
	g := MustTune(p, Spec{Kind: KindPID})
	ctl := NewPID(g, 111.1, 0.2, paperTs)
	tr := SimulateLoop(p, ctl, LoopConfig{Ambient: 100, Duration: 5e-3})
	st := tr.SettlingTime(111.1, 0.1)
	if st < 0 || st > 10*p.Tau {
		t.Errorf("settling time = %v s, want within 10 tau (%v)", st, 10*p.Tau)
	}
}

func TestQuantizeNaNFailsToFullSpeed(t *testing.T) {
	// A divergent controller emitting NaN must not latch the actuator:
	// Quantize fails toward full speed so the thermal trigger can
	// re-engage a healthy policy.
	if got := Quantize(math.NaN(), 8); got != 1 {
		t.Errorf("Quantize(NaN, 8) = %v, want 1", got)
	}
	if got := Quantize(math.NaN(), 2); got != 1 {
		t.Errorf("Quantize(NaN, 2) = %v, want 1", got)
	}
}

func TestPIDUpdateStaysFiniteForFiniteInputs(t *testing.T) {
	// Guard: no finite measurement sequence may produce a NaN command.
	for _, kind := range []Kind{KindP, KindPI, KindPID} {
		g := MustTune(paperPlant(), Spec{Kind: kind})
		c := NewPID(g, 111.1, 0.2, paperTs)
		for i, m := range []float64{100, 150, -40, 111.1, 1e6, -1e6, 111.3, 0} {
			u := c.Update(m)
			if math.IsNaN(u) || math.IsInf(u, 0) {
				t.Fatalf("%v: Update #%d (%v) = %v", kind, i, m, u)
			}
			if u < 0 || u > 1 {
				t.Fatalf("%v: Update #%d (%v) = %v outside [0,1]", kind, i, m, u)
			}
		}
	}
}
