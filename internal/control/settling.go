package control

import (
	"fmt"
	"math"
)

// TuneForSettling designs a controller to meet a requested closed-loop
// settling time — the design capability Section 2.2 mentions ("controllers
// can be designed with guaranteed settling times").
//
// It uses the classical second-order correspondence between the open-loop
// crossover and closed-loop dynamics: the damping ratio approximately
// equals PhaseMargin(deg)/100 and the closed-loop natural frequency
// approximately equals the crossover frequency, giving a 2%-band settling
// time of about 4/(zeta*wc). The requested settling time therefore fixes
// the crossover, which Tune then realizes. The result is checked for
// feasibility against the loop dead time: past a crossover of ~1 rad of
// delay phase the approximation (and the loop) falls apart.
func TuneForSettling(p Plant, kind Kind, settle float64, phaseMargin float64) (Gains, Spec, error) {
	if settle <= 0 {
		return Gains{}, Spec{}, fmt.Errorf("control: settling time %g <= 0", settle)
	}
	pm := phaseMargin
	if pm == 0 {
		pm = defaultPhaseMargin
	}
	zeta := (pm * 180 / math.Pi) / 100
	wc := 4 / (zeta * settle)
	if p.Delay > 0 && wc*p.Delay > 1.0 {
		return Gains{}, Spec{}, fmt.Errorf(
			"control: settling time %g s needs crossover %.3g rad/s, beyond the dead-time limit %.3g",
			settle, wc, 1.0/p.Delay)
	}
	spec := Spec{Kind: kind, Crossover: wc, PhaseMargin: pm}
	g, err := Tune(p, spec)
	if err != nil && kind == KindPI {
		// At crossovers well below the plant corner the pole supplies
		// almost no lag, so hitting the requested margin would need
		// more than the integrator's -90 degrees. Accept a larger
		// margin instead (a nearly-pure-integral, over-damped design):
		// place the controller phase at -80 degrees.
		_, ph := p.FreqResponse(wc)
		pm2 := -80*math.Pi/180 + math.Pi + ph
		if pm2 > pm {
			spec.PhaseMargin = pm2
			g, err = Tune(p, spec)
		}
	}
	if err != nil {
		return Gains{}, Spec{}, err
	}
	return g, spec, nil
}

// VerifySettling simulates the closed loop from a cold start to full
// demand and reports the measured settling time into +-band of the
// setpoint. Used to check a TuneForSettling design against the real
// (saturating, quantized) loop.
func VerifySettling(p Plant, g Gains, setpoint, ambient, band, ts float64) (float64, error) {
	if ts <= 0 || band <= 0 {
		return 0, fmt.Errorf("control: invalid verification parameters")
	}
	ctl := NewPID(g, setpoint, 0, ts)
	// Simulate for 40 plant time constants or 20x the naive settle time,
	// whichever is larger.
	dur := 40 * p.Tau
	tr := SimulateLoop(p, ctl, LoopConfig{
		Ambient:  ambient,
		Duration: dur,
		Levels:   8,
	})
	st := tr.SettlingTime(setpoint, band)
	if st < 0 {
		return 0, fmt.Errorf("control: loop did not settle within %g s", dur)
	}
	return st, nil
}
