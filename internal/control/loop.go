package control

import (
	"fmt"
	"math"
)

// Trace records a closed-loop simulation: time, plant output (temperature)
// and actuator command at every controller sample.
type Trace struct {
	Time []float64
	Temp []float64
	U    []float64
}

// LoopConfig parameterizes SimulateLoop.
type LoopConfig struct {
	// Ambient is the plant output when the actuator is fully off
	// (the heatsink temperature for the thermal plant).
	Ambient float64
	// Demand returns the disturbance at time t: the power the workload
	// *would* dissipate at full speed, as a fraction of the power that
	// produces the plant gain K (1.0 = the calibration power). The plant
	// input is Demand(t) * u(t).
	Demand func(t float64) float64
	// Duration is the simulated time in seconds.
	Duration float64
	// Levels quantizes the actuator to n discrete settings; 0 keeps the
	// command continuous.
	Levels int
	// InitTemp overrides the initial plant output; zero means Ambient.
	InitTemp float64
}

// SimulateLoop runs the sampled-data control loop of Figure 1: at every
// controller period the temperature is sampled, the PID computes a duty,
// the duty (optionally quantized) scales the demanded power, and the
// first-order-plus-dead-time plant integrates forward one period. It is
// the analysis companion to the full microarchitectural simulation and
// backs the settling-time/overshoot design analysis of Section 2.2.
func SimulateLoop(p Plant, ctl *PID, cfg LoopConfig) Trace {
	if cfg.Duration <= 0 {
		panic(fmt.Sprintf("control: invalid loop duration %g", cfg.Duration))
	}
	dt := ctl.Ts
	n := int(cfg.Duration/dt) + 1
	tr := Trace{
		Time: make([]float64, 0, n),
		Temp: make([]float64, 0, n),
		U:    make([]float64, 0, n),
	}
	temp := cfg.Ambient
	if cfg.InitTemp != 0 {
		temp = cfg.InitTemp
	}
	// Dead-time buffer in whole samples (>= 0). L = Ts/2 rounds to a
	// one-sample-ish delay at the paper's parameters.
	delaySamples := int(math.Round(p.Delay / dt))
	buf := make([]float64, delaySamples+1)
	head := 0
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		u := ctl.Update(temp)
		if cfg.Levels > 1 {
			u = Quantize(u, cfg.Levels)
		}
		demand := 1.0
		if cfg.Demand != nil {
			demand = cfg.Demand(t)
		}
		// Push the new input, pop the delayed one.
		buf[head] = u * demand
		head = (head + 1) % len(buf)
		delayed := buf[head]
		// Exact first-order update over one sample.
		tss := cfg.Ambient + p.K*delayed
		temp = tss + (temp-tss)*math.Exp(-dt/p.Tau)
		tr.Time = append(tr.Time, t)
		tr.Temp = append(tr.Temp, temp)
		tr.U = append(tr.U, u)
	}
	return tr
}

// Overshoot returns the maximum excursion of the trace above the setpoint,
// in the same units as the trace (0 if the trace never crosses it).
func (tr Trace) Overshoot(setpoint float64) float64 {
	var max float64
	for _, v := range tr.Temp {
		if d := v - setpoint; d > max {
			max = d
		}
	}
	return max
}

// SettlingTime returns the first time after which the trace stays within
// +-band of the setpoint for the remainder of the simulation, or -1 if it
// never settles.
func (tr Trace) SettlingTime(setpoint, band float64) float64 {
	last := -1.0
	settled := false
	for i, v := range tr.Temp {
		if math.Abs(v-setpoint) <= band {
			if !settled {
				last = tr.Time[i]
				settled = true
			}
		} else {
			settled = false
			last = -1
		}
	}
	if !settled {
		return -1
	}
	return last
}

// MaxTemp returns the maximum plant output over the trace.
func (tr Trace) MaxTemp() float64 {
	m := math.Inf(-1)
	for _, v := range tr.Temp {
		if v > m {
			m = v
		}
	}
	return m
}

// MeanDuty returns the average actuator command over the trace — a direct
// proxy for the performance retained under DTM.
func (tr Trace) MeanDuty() float64 {
	if len(tr.U) == 0 {
		return 0
	}
	var s float64
	for _, u := range tr.U {
		s += u
	}
	return s / float64(len(tr.U))
}
