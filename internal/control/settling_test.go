package control

import "testing"

func TestTuneForSettlingMeetsSpec(t *testing.T) {
	p := paperPlant()
	for _, want := range []float64{400e-6, 1e-3, 3e-3} {
		g, spec, err := TuneForSettling(p, KindPI, want, 0)
		if err != nil {
			t.Fatalf("settle %v: %v", want, err)
		}
		if spec.Crossover <= 0 {
			t.Fatalf("no crossover in returned spec")
		}
		got, err := VerifySettling(p, g, 111.1, 100, 0.15, 667e-9)
		if err != nil {
			t.Fatalf("settle %v: %v", want, err)
		}
		// The second-order correspondence is approximate and actuator
		// saturation during the initial ramp adds delay; demand the
		// measured settling stay within 3x the request.
		if got > 3*want {
			t.Errorf("requested %v s, measured %v s", want, got)
		}
	}
}

func TestTuneForSettlingOrdersResponses(t *testing.T) {
	p := paperPlant()
	gFast, _, err := TuneForSettling(p, KindPI, 300e-6, 0)
	if err != nil {
		t.Fatal(err)
	}
	gSlow, _, err := TuneForSettling(p, KindPI, 5e-3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A faster spec must yield a hotter controller (larger Kp).
	if gFast.Kp <= gSlow.Kp {
		t.Errorf("fast Kp %v <= slow Kp %v", gFast.Kp, gSlow.Kp)
	}
	fast, err := VerifySettling(p, gFast, 111.1, 100, 0.15, 667e-9)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := VerifySettling(p, gSlow, 111.1, 100, 0.15, 667e-9)
	if err != nil {
		t.Fatal(err)
	}
	if fast >= slow {
		t.Errorf("fast design settles in %v, slow in %v", fast, slow)
	}
}

func TestTuneForSettlingRejectsInfeasible(t *testing.T) {
	p := paperPlant()
	// A settling time requiring a crossover beyond the dead-time limit.
	if _, _, err := TuneForSettling(p, KindPI, 100e-9, 0); err == nil {
		t.Error("infeasible settling time accepted")
	}
	if _, _, err := TuneForSettling(p, KindPI, -1, 0); err == nil {
		t.Error("negative settling time accepted")
	}
}

func TestVerifySettlingRejectsBadParams(t *testing.T) {
	g := Gains{Kp: 1}
	if _, err := VerifySettling(paperPlant(), g, 111, 100, 0, 667e-9); err == nil {
		t.Error("zero band accepted")
	}
}
