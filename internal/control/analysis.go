package control

import (
	"errors"
	"math"
)

// This file provides the frequency-domain analysis companions to the
// tuning procedure: open-loop Bode sampling and the gain margin, the two
// classical robustness views behind Section 3.2's claim that the
// controllers "remain largely unaffected even when the controlled system
// has not been accurately modeled".

// BodePoint is one open-loop frequency sample.
type BodePoint struct {
	Omega float64 // rad/s
	// MagDB is the loop magnitude |C(jw)G(jw)| in decibels.
	MagDB float64
	// PhaseDeg is the loop phase in degrees.
	PhaseDeg float64
}

// loopResponse returns magnitude and phase (radians) of C(jw)G(jw).
func loopResponse(p Plant, g Gains, w float64) (mag, phase float64) {
	gm, gp := p.FreqResponse(w)
	re := g.Kp
	im := g.Kd*w - g.Ki/w
	return gm * math.Hypot(re, im), gp + math.Atan2(im, re)
}

// Bode samples the open loop logarithmically from wLo to wHi with n points
// per decade.
func Bode(p Plant, g Gains, wLo, wHi float64, perDecade int) []BodePoint {
	if wLo <= 0 || wHi <= wLo || perDecade < 1 {
		panic("control: invalid Bode range")
	}
	step := math.Pow(10, 1/float64(perDecade))
	var out []BodePoint
	for w := wLo; w <= wHi*(1+1e-12); w *= step {
		mag, phase := loopResponse(p, g, w)
		out = append(out, BodePoint{
			Omega:    w,
			MagDB:    20 * math.Log10(mag),
			PhaseDeg: phase * 180 / math.Pi,
		})
	}
	return out
}

// GainMargin returns the factor by which the loop gain can grow before
// instability: 1/|L(jw180)| at the phase-crossover frequency (where the
// loop phase first crosses -180 degrees), along with that frequency.
// It returns an error when no phase crossover exists in the searched range
// (infinite gain margin for a first-order loop without delay).
func GainMargin(p Plant, g Gains) (margin, w180 float64, err error) {
	if p.Delay <= 0 && g.Kd == 0 {
		// Phase asymptotically above -180: infinite margin.
		return math.Inf(1), 0, nil
	}
	lo := 1e-3 / p.Tau
	hi := 1e3 / p.Tau
	if p.Delay > 0 {
		hi = 50 / p.Delay
	}
	phaseAt := func(w float64) float64 {
		_, ph := loopResponse(p, g, w)
		return ph
	}
	// Scan for the first crossing below -pi.
	prevW := lo
	prevPh := phaseAt(lo)
	found := false
	for w := lo * 1.05; w <= hi; w *= 1.05 {
		ph := phaseAt(w)
		if prevPh > -math.Pi && ph <= -math.Pi {
			// Bisect [prevW, w].
			a, b := prevW, w
			for i := 0; i < 80; i++ {
				mid := math.Sqrt(a * b)
				if phaseAt(mid) > -math.Pi {
					a = mid
				} else {
					b = mid
				}
			}
			w180 = math.Sqrt(a * b)
			found = true
			break
		}
		prevW, prevPh = w, ph
	}
	if !found {
		return 0, 0, errors.New("control: no phase crossover in range")
	}
	mag, _ := loopResponse(p, g, w180)
	if mag <= 0 {
		return math.Inf(1), w180, nil
	}
	return 1 / mag, w180, nil
}

// RobustnessReport summarizes a tuned loop's stability margins.
type RobustnessReport struct {
	PhaseMarginDeg float64
	CrossoverHz    float64
	GainMargin     float64
	PhaseCrossHz   float64
}

// Analyze computes both stability margins for a tuned loop.
func Analyze(p Plant, g Gains) (RobustnessReport, error) {
	pm, wc, err := OpenLoopPhaseMargin(p, g)
	if err != nil {
		return RobustnessReport{}, err
	}
	gm, w180, err := GainMargin(p, g)
	if err != nil {
		return RobustnessReport{}, err
	}
	return RobustnessReport{
		PhaseMarginDeg: pm * 180 / math.Pi,
		CrossoverHz:    wc / (2 * math.Pi),
		GainMargin:     gm,
		PhaseCrossHz:   w180 / (2 * math.Pi),
	}, nil
}
