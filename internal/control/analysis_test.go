package control

import (
	"math"
	"testing"
)

func TestBodeShapes(t *testing.T) {
	p := paperPlant()
	g := MustTune(p, Spec{Kind: KindPI})
	pts := Bode(p, g, 1e2, 1e7, 10)
	if len(pts) < 40 {
		t.Fatalf("bode points = %d", len(pts))
	}
	// Magnitude must fall with frequency past the crossover (integral +
	// plant pole), and phase must be monotonically nonincreasing at high
	// frequency due to the dead time.
	if pts[0].MagDB <= pts[len(pts)-1].MagDB {
		t.Error("loop magnitude does not roll off")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Omega <= pts[i-1].Omega {
			t.Fatal("bode frequencies not increasing")
		}
	}
	last := pts[len(pts)-1]
	if last.PhaseDeg > -170 {
		t.Errorf("high-frequency phase = %v deg, want deeply lagged", last.PhaseDeg)
	}
}

func TestBodePanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid range accepted")
		}
	}()
	Bode(paperPlant(), Gains{Kp: 1}, -1, 1, 10)
}

func TestGainMarginFiniteWithDelay(t *testing.T) {
	p := paperPlant()
	for _, kind := range []Kind{KindP, KindPI, KindPID} {
		g := MustTune(p, Spec{Kind: kind})
		gm, w180, err := GainMargin(p, g)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if math.IsInf(gm, 1) {
			t.Fatalf("%v: infinite gain margin despite dead time", kind)
		}
		// A sane design has gain margin comfortably above 1.
		if gm < 1.5 {
			t.Errorf("%v: gain margin %v < 1.5", kind, gm)
		}
		if w180 <= 0 {
			t.Errorf("%v: phase crossover = %v", kind, w180)
		}
	}
}

func TestGainMarginInfiniteWithoutDelay(t *testing.T) {
	p := Plant{K: 10, Tau: 1e-3, Delay: 0}
	gm, _, err := GainMargin(p, Gains{Kp: 3, Ki: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(gm, 1) {
		t.Errorf("first-order loop without delay: gain margin = %v, want +Inf", gm)
	}
}

func TestAnalyzeReport(t *testing.T) {
	p := paperPlant()
	g := MustTune(p, Spec{Kind: KindPID})
	rep, err := Analyze(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PhaseMarginDeg < 55 || rep.PhaseMarginDeg > 65 {
		t.Errorf("phase margin = %v deg", rep.PhaseMarginDeg)
	}
	if rep.GainMargin <= 1 {
		t.Errorf("gain margin = %v", rep.GainMargin)
	}
	if rep.PhaseCrossHz <= rep.CrossoverHz {
		t.Errorf("phase crossover %v Hz not above gain crossover %v Hz",
			rep.PhaseCrossHz, rep.CrossoverHz)
	}
}

// The robustness the paper leans on: the tuned controller must keep the
// loop stable (positive margins) even when the true plant gain or time
// constant is substantially misestimated. Note the asymmetry: a plant
// *faster* than the design tau erodes margin quickly (the crossover slides
// up into the dead-time's phase cliff) — at tau/3, roughly a bpred-speed
// block against the 180 us design point, the linear margin all but
// vanishes, and only actuator saturation/quantization bound the
// oscillation. This is why the paper (and this reproduction) design
// against the *longest* block time constant and verify in simulation.
// TestPhaseMarginCrossoverInFinalPartialStep pins the bracket-scan
// boundary fix: the geometric scan used to stop once the next step passed
// the upper frequency bound without ever evaluating the bound itself, so a
// gain crossover landing in the final partial step (between the last full
// 1.1x grid point and hi) was reported as "no gain crossover found". The
// test reconstructs the scan grid and places the crossover exactly there.
func TestPhaseMarginCrossoverInFinalPartialStep(t *testing.T) {
	p := Plant{K: 1, Tau: 180e-6} // no delay: hi = 1e6/Tau
	lo, hi := 1e-3/p.Tau, 1e6/p.Tau
	last := lo
	for last*1.1 < hi {
		last *= 1.1
	}
	// Target crossover at the geometric middle of the final partial step.
	wcTarget := math.Sqrt(last * hi)
	if wcTarget <= last || wcTarget >= hi {
		t.Fatalf("bad grid reconstruction: last=%g target=%g hi=%g", last, wcTarget, hi)
	}
	// P-only loop: |L(jw)| = Kp*K/sqrt(1+(w*Tau)^2) = 1 at wcTarget.
	g := Gains{Kp: math.Sqrt(1+wcTarget*wcTarget*p.Tau*p.Tau) / p.K}
	pm, wc, err := OpenLoopPhaseMargin(p, g)
	if err != nil {
		t.Fatalf("crossover in final partial step not found: %v", err)
	}
	if math.Abs(wc-wcTarget) > 0.01*wcTarget {
		t.Errorf("wc = %g, want ~%g", wc, wcTarget)
	}
	// P control of a first-order lag without delay: pm = pi - atan(wc*Tau)
	// stays just above 90 degrees.
	if pm <= math.Pi/2 || pm >= math.Pi {
		t.Errorf("pm = %g rad out of range (%g deg)", pm, pm*180/math.Pi)
	}

	// A loop that never crosses unity inside [lo, hi] must still error.
	tooHot := Gains{Kp: 10 * math.Sqrt(1+hi*hi*p.Tau*p.Tau) / p.K}
	if _, _, err := OpenLoopPhaseMargin(p, tooHot); err == nil {
		t.Error("loop gain above unity everywhere did not error")
	}
}

func TestMarginsSurvivePlantMismatch(t *testing.T) {
	nominal := paperPlant()
	g := MustTune(nominal, Spec{Kind: KindPI})
	for _, perturb := range []Plant{
		{K: nominal.K * 2, Tau: nominal.Tau, Delay: nominal.Delay},
		{K: nominal.K * 0.5, Tau: nominal.Tau, Delay: nominal.Delay},
		{K: nominal.K, Tau: nominal.Tau * 3, Delay: nominal.Delay},
		{K: nominal.K, Tau: nominal.Tau / 2, Delay: nominal.Delay},
		{K: nominal.K, Tau: nominal.Tau, Delay: nominal.Delay * 2},
	} {
		pm, _, err := OpenLoopPhaseMargin(perturb, g)
		if err != nil {
			t.Fatalf("%+v: %v", perturb, err)
		}
		if pm <= 5*math.Pi/180 {
			t.Errorf("plant %+v: phase margin %.1f deg — loop near instability",
				perturb, pm*180/math.Pi)
		}
	}
	// The documented cliff: a 3x-faster plant leaves almost no margin.
	fast := Plant{K: nominal.K, Tau: nominal.Tau / 3, Delay: nominal.Delay}
	pm, _, err := OpenLoopPhaseMargin(fast, g)
	if err != nil {
		t.Fatal(err)
	}
	if pm > 20*math.Pi/180 {
		t.Errorf("tau/3 margin %.1f deg — expected the documented fragility", pm*180/math.Pi)
	}
}
