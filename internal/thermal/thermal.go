// Package thermal implements the paper's lumped thermal-RC model
// (Section 4): one RC node per architectural block connected through its
// normal thermal resistance to a heatsink node that is held at constant
// temperature over short intervals, with optional tangential resistances
// between adjacent blocks (Figure 3B) and a slow chip-wide package node
// (heat spreader + heatsink) for long-horizon behaviour.
//
// The per-cycle update is the difference equation of Section 5.2
// (Equation 5):
//
//	T[k+1] = T[k] + dt * ( P[k] - (T[k] - Tsink)/R ) / C
//
// evaluated once per clock cycle with dt equal to the cycle time. Because
// the block time constants (49–180 us) are five orders of magnitude larger
// than the 0.667 ns cycle, forward Euler is numerically benign; the package
// also provides the exact exponential solution for validation and for
// advancing many cycles of constant power at once.
package thermal

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
)

// Config parameterizes a Network.
type Config struct {
	// Blocks is the set of lumped nodes; usually floorplan.Default().
	Blocks []floorplan.Block
	// SinkTemp is the heatsink temperature in Celsius, treated as
	// constant over the simulated interval (Section 4.3: the heatsink RC
	// is orders of magnitude larger than the block RCs).
	SinkTemp float64
	// CycleTime is dt in seconds (0.667 ns at the paper's 1.5 GHz).
	CycleTime float64
	// Tangential enables lateral heat flow between Neighbors through
	// floorplan.TangentialResistance (the Figure 3B model). The paper's
	// simplified model (Figure 3C) omits it.
	Tangential bool
}

// DefaultConfig returns the paper's reproduction configuration: the Table 3
// blocks, a 100 C heatsink and the 1.5 GHz cycle time.
func DefaultConfig() Config {
	return Config{
		Blocks:    floorplan.Default(),
		SinkTemp:  100.0,
		CycleTime: 1.0 / 1.5e9,
	}
}

// TileConfig returns the configuration for an n-core die built from
// floorplan.Tile(n): n replicas of the Table 3 blocks with lateral
// tangential coupling always enabled, so heat flows across core boundaries
// through the same Equation-4 resistances as within a core. TileConfig(1)
// is DefaultConfig with Tangential on — the multicore family is uniform in
// its physics even at one core.
func TileConfig(n int) Config {
	return Config{
		Blocks:     floorplan.Tile(n),
		SinkTemp:   100.0,
		CycleTime:  1.0 / 1.5e9,
		Tangential: true,
	}
}

// Network is the lumped per-block RC model. All temperatures are Celsius.
// Per-block state is held in structure-of-arrays form so both the
// per-cycle Euler step and the macro-stepped window advance stream through
// flat float64 slices.
type Network struct {
	cfg   Config
	temps []float64
	rInv  []float64 // 1/R per block
	cInv  []float64 // 1/C per block
	r     []float64 // R per block (steady-state gain)
	la    []float64 // log1p(-dt/(R·C)): per-step log decay

	adj     [][]int // neighbor indices (tangential only)
	gTan    [][]float64
	scratch []float64 // pre-step temperatures / frozen flows (tangential only)

	idx    map[floorplan.BlockID]int
	blocks []floorplan.Block

	// Cached window-decay coefficient tables for the macro-stepped fast
	// path, recomputed when the (window length, steps-per-cycle) pair
	// changes — i.e. on stride clamping or frequency-scaling changes.
	winW    uint64
	winInvF float64
	winQ1   []float64 // per-cycle decay exp(invF·la)
	winQn   []float64 // whole-window decay exp(w·invF·la)
	winSum  []float64 // Σ_{k=1..w} Q1^k (analytic temperature sum)
}

// New builds a Network from cfg. It panics on an empty block set or a
// non-positive cycle time, which are always configuration errors.
func New(cfg Config) *Network {
	if len(cfg.Blocks) == 0 {
		panic("thermal: no blocks configured")
	}
	if cfg.CycleTime <= 0 {
		panic(fmt.Sprintf("thermal: invalid cycle time %g", cfg.CycleTime))
	}
	nb := len(cfg.Blocks)
	n := &Network{
		cfg:    cfg,
		temps:  make([]float64, nb),
		rInv:   make([]float64, nb),
		cInv:   make([]float64, nb),
		r:      make([]float64, nb),
		la:     make([]float64, nb),
		winQ1:  make([]float64, nb),
		winQn:  make([]float64, nb),
		winSum: make([]float64, nb),
		idx:    make(map[floorplan.BlockID]int, nb),
		blocks: append([]floorplan.Block(nil), cfg.Blocks...),
	}
	for i, b := range n.blocks {
		if b.R <= 0 || b.C <= 0 {
			panic(fmt.Sprintf("thermal: block %v has non-positive R or C", b.ID))
		}
		n.idx[b.ID] = i
		n.temps[i] = cfg.SinkTemp
		n.rInv[i] = 1 / b.R
		n.cInv[i] = 1 / b.C
		n.r[i] = b.R
		// log1p keeps full precision for a = dt/(R·C) ~ 1e-5, so the
		// window decay (1-a)^(w·invF) matches the compounded Euler
		// factor instead of the continuous exp(-t/RC) (the two agree
		// to ~a/2 relative, but the Euler form is what the per-cycle
		// path integrates).
		n.la[i] = math.Log1p(-cfg.CycleTime * n.rInv[i] * n.cInv[i])
	}
	if cfg.Tangential {
		n.adj = make([][]int, len(n.blocks))
		n.gTan = make([][]float64, len(n.blocks))
		n.scratch = make([]float64, len(n.blocks))
		for i, b := range n.blocks {
			for _, nb := range b.Neighbors {
				j, ok := n.idx[nb]
				if !ok {
					continue // neighbor not modeled in this network
				}
				// Tangential conductance between the two block
				// centers: series combination of each block's
				// lateral resistance.
				rt := floorplan.TangentialResistance(b.Area) +
					floorplan.TangentialResistance(n.blocks[j].Area)
				n.adj[i] = append(n.adj[i], j)
				n.gTan[i] = append(n.gTan[i], 1/rt)
			}
		}
	}
	return n
}

// NumBlocks returns the number of modeled nodes.
func (n *Network) NumBlocks() int { return len(n.blocks) }

// Block returns the physical parameters of node i.
func (n *Network) Block(i int) floorplan.Block { return n.blocks[i] }

// Index returns the node index for a block ID and whether it is modeled.
func (n *Network) Index(id floorplan.BlockID) (int, bool) {
	i, ok := n.idx[id]
	return i, ok
}

// SinkTemp returns the heatsink temperature.
func (n *Network) SinkTemp() float64 { return n.cfg.SinkTemp }

// SetSinkTemp changes the heatsink temperature (used when coupling to the
// slow chip-wide model).
func (n *Network) SetSinkTemp(t float64) { n.cfg.SinkTemp = t }

// Temp returns the temperature of node i.
func (n *Network) Temp(i int) float64 { return n.temps[i] }

// Temps copies all node temperatures into dst (allocating if nil) and
// returns it.
func (n *Network) Temps(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(n.temps))
	}
	copy(dst, n.temps)
	return dst
}

// SetTemp overrides node i's temperature (testing and checkpoint restore).
func (n *Network) SetTemp(i int, t float64) { n.temps[i] = t }

// Reset returns every node to the heatsink temperature.
func (n *Network) Reset() {
	for i := range n.temps {
		n.temps[i] = n.cfg.SinkTemp
	}
}

// Step advances the network by one cycle given per-node power in watts.
// len(power) must equal NumBlocks.
func (n *Network) Step(power []float64) {
	if len(power) != len(n.temps) {
		panic(fmt.Sprintf("thermal: Step with %d powers for %d blocks", len(power), len(n.temps)))
	}
	dt := n.cfg.CycleTime
	sink := n.cfg.SinkTemp
	if n.adj == nil {
		for i, t := range n.temps {
			flow := power[i] - (t-sink)*n.rInv[i]
			n.temps[i] = t + dt*flow*n.cInv[i]
		}
		return
	}
	// Tangential variant: evaluate lateral flows against the pre-step
	// temperatures so the update stays symmetric.
	prev := n.scratch
	copy(prev, n.temps)
	for i, t := range prev {
		flow := power[i] - (t-sink)*n.rInv[i]
		for k, j := range n.adj[i] {
			flow -= (t - prev[j]) * n.gTan[i][k]
		}
		n.temps[i] = t + dt*flow*n.cInv[i]
	}
}

// StepN advances the network by cycles cycles of *constant* per-node power
// using the exact exponential solution per node:
//
//	T(t) = Tss + (T0 - Tss) * exp(-t/RC),  Tss = Tsink + P*R
//
// It ignores tangential coupling (exact only for the Figure 3C model) and
// is used to fast-forward warm-up or idle periods.
func (n *Network) StepN(power []float64, cycles uint64) {
	if len(power) != len(n.temps) {
		panic(fmt.Sprintf("thermal: StepN with %d powers for %d blocks", len(power), len(n.temps)))
	}
	t := n.cfg.CycleTime * float64(cycles)
	for i := range n.temps {
		tss := n.cfg.SinkTemp + power[i]*n.blocks[i].R
		k := math.Exp(-t / (n.blocks[i].R * n.blocks[i].C))
		n.temps[i] = tss + (n.temps[i]-tss)*k
	}
}

// WindowCoef returns the per-block decay coefficient tables for a window
// of w cycles advanced at invF unit thermal steps per cycle:
//
//	q1[i]  = (1-a_i)^invF        (one cycle's decay)
//	qn[i]  = (1-a_i)^(w·invF)    (the whole window's decay)
//	sum[i] = Σ_{k=1..w} q1[i]^k  (geometric sum for analytic averaging)
//
// with a_i = dt/(R_i·C_i). The tables are cached and only recomputed when
// (w, invF) differs from the previous call — window lengths are sticky
// between DTM/trace boundary clamps, so the steady state costs a compare.
func (n *Network) WindowCoef(w uint64, invF float64) (q1, qn, sum []float64) {
	if n.winW != w || n.winInvF != invF {
		n.winW, n.winInvF = w, invF
		fw := float64(w)
		for i, l := range n.la {
			e1 := math.Exp(invF * l)
			en := math.Exp(fw * invF * l)
			n.winQ1[i] = e1
			n.winQn[i] = en
			// Geometric series q+q²+…+q^w = q(1-q^w)/(1-q); the
			// denominator is ~invF·a_i, far from cancellation.
			n.winSum[i] = e1 * (1 - en) / (1 - e1)
		}
	}
	return n.winQ1, n.winQn, n.winSum
}

// LogDecay returns log(1-a_i) for block i — the per-unit-step log decay
// used by callers solving for threshold-crossing cycles analytically.
func (n *Network) LogDecay(i int) float64 { return n.la[i] }

// StepWindow advances every node by w cycles at invF unit thermal steps
// per cycle under constant per-node power, using the closed form of the
// compounded per-cycle update:
//
//	T(w) = Tss + (T(0) - Tss)·(1-a)^(w·invF),  Tss = Tsink + P·R
//
// which is exact for constant power in the Figure 3C (no-tangential)
// model. With tangential coupling enabled, lateral flows are frozen at
// their window-start values and folded into each node's effective power —
// a first-order approximation whose error is bounded by the window length
// relative to the block time constants (w·dt ≪ R·C).
//
// tssOut, when non-nil, receives each node's effective steady-state
// target for the window, which callers need for analytic within-window
// bookkeeping (the trajectory moves monotonically from T(0) toward
// tssOut[i], so envelope checks at the endpoints are exact).
func (n *Network) StepWindow(power []float64, w uint64, invF float64, tssOut []float64) {
	if len(power) != len(n.temps) {
		panic(fmt.Sprintf("thermal: StepWindow with %d powers for %d blocks", len(power), len(n.temps)))
	}
	_, qn, _ := n.WindowCoef(w, invF)
	sink := n.cfg.SinkTemp
	if n.adj != nil {
		// Freeze lateral flows at window-start temperatures.
		flows := n.scratch
		for i, t := range n.temps {
			f := 0.0
			for k, j := range n.adj[i] {
				f -= (t - n.temps[j]) * n.gTan[i][k]
			}
			flows[i] = f
		}
		for i, t := range n.temps {
			tss := sink + (power[i]+flows[i])*n.r[i]
			n.temps[i] = tss + (t-tss)*qn[i]
			if tssOut != nil {
				tssOut[i] = tss
			}
		}
		return
	}
	for i, t := range n.temps {
		tss := sink + power[i]*n.r[i]
		n.temps[i] = tss + (t-tss)*qn[i]
		if tssOut != nil {
			tssOut[i] = tss
		}
	}
}

// Hottest returns the index and temperature of the hottest node.
func (n *Network) Hottest() (idx int, temp float64) {
	temp = math.Inf(-1)
	for i, t := range n.temps {
		if t > temp {
			idx, temp = i, t
		}
	}
	return idx, temp
}

// AnyAbove reports whether any node exceeds the threshold.
func (n *Network) AnyAbove(threshold float64) bool {
	for _, t := range n.temps {
		if t > threshold {
			return true
		}
	}
	return false
}

// SteadyState returns the steady-state temperature of node i under constant
// power p: Tsink + p*R.
func (n *Network) SteadyState(i int, p float64) float64 {
	return n.cfg.SinkTemp + p*n.blocks[i].R
}

// TimeConstant returns node i's RC constant in seconds.
func (n *Network) TimeConstant(i int) float64 {
	return n.blocks[i].R * n.blocks[i].C
}

// LongestTimeConstant returns the largest block RC in seconds — the tau the
// paper feeds into controller tuning ("we used the longest time constant of
// the various blocks under study", Section 3.2).
func (n *Network) LongestTimeConstant() float64 {
	var tau float64
	for i := range n.blocks {
		if rc := n.TimeConstant(i); rc > tau {
			tau = rc
		}
	}
	return tau
}

// StepResponse returns the analytic single-node step response
// T(t) = Tsink + P*R*(1 - exp(-t/RC)) starting from the sink temperature,
// for validating the numerical integration.
func StepResponse(b floorplan.Block, sink, p, t float64) float64 {
	return sink + p*b.R*(1-math.Exp(-t/(b.R*b.C)))
}

// ChipModel is the whole-chip package node of Section 4.1: total chip power
// flowing through the die-to-case and heatsink resistances into ambient,
// with the heatsink capacitance giving a time constant of tens of seconds.
// It models the slow drift of the per-block model's "constant" heatsink
// temperature and reproduces the paper's back-of-envelope example
// (25 W * 2 K/W + 27 C = 77 C, tau ~ 1 minute).
type ChipModel struct {
	// R is the total thermal resistance junction-to-ambient in K/W.
	R float64
	// C is the package/heatsink thermal capacitance in J/K.
	C float64
	// Ambient is the ambient temperature in Celsius.
	Ambient float64
	// T is the current chip temperature in Celsius.
	T float64
}

// NewChipModel returns the chip node initialized to ambient.
func NewChipModel(r, c, ambient float64) *ChipModel {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("thermal: invalid chip model R=%g C=%g", r, c))
	}
	return &ChipModel{R: r, C: c, Ambient: ambient, T: ambient}
}

// Step advances the chip node by dt seconds under total power p watts.
func (m *ChipModel) Step(p, dt float64) {
	tss := m.Ambient + p*m.R
	m.T = tss + (m.T-tss)*math.Exp(-dt/(m.R*m.C))
}

// SteadyState returns the chip steady-state temperature under power p.
func (m *ChipModel) SteadyState(p float64) float64 { return m.Ambient + p*m.R }

// TimeConstant returns the package RC in seconds.
func (m *ChipModel) TimeConstant() float64 { return m.R * m.C }
