// Package thermal implements the paper's lumped thermal-RC model
// (Section 4): one RC node per architectural block connected through its
// normal thermal resistance to a heatsink node that is held at constant
// temperature over short intervals, with optional tangential resistances
// between adjacent blocks (Figure 3B) and a slow chip-wide package node
// (heat spreader + heatsink) for long-horizon behaviour.
//
// The per-cycle update is the difference equation of Section 5.2
// (Equation 5):
//
//	T[k+1] = T[k] + dt * ( P[k] - (T[k] - Tsink)/R ) / C
//
// evaluated once per clock cycle with dt equal to the cycle time. Because
// the block time constants (49–180 us) are five orders of magnitude larger
// than the 0.667 ns cycle, forward Euler is numerically benign; the package
// also provides the exact exponential solution for validation and for
// advancing many cycles of constant power at once.
package thermal

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
)

// Config parameterizes a Network.
type Config struct {
	// Blocks is the set of lumped nodes; usually floorplan.Default().
	Blocks []floorplan.Block
	// SinkTemp is the heatsink temperature in Celsius, treated as
	// constant over the simulated interval (Section 4.3: the heatsink RC
	// is orders of magnitude larger than the block RCs).
	SinkTemp float64
	// CycleTime is dt in seconds (0.667 ns at the paper's 1.5 GHz).
	CycleTime float64
	// Tangential enables lateral heat flow between Neighbors through
	// floorplan.TangentialResistance (the Figure 3B model). The paper's
	// simplified model (Figure 3C) omits it.
	Tangential bool
}

// DefaultConfig returns the paper's reproduction configuration: the Table 3
// blocks, a 100 C heatsink and the 1.5 GHz cycle time.
func DefaultConfig() Config {
	return Config{
		Blocks:    floorplan.Default(),
		SinkTemp:  100.0,
		CycleTime: 1.0 / 1.5e9,
	}
}

// Network is the lumped per-block RC model. All temperatures are Celsius.
type Network struct {
	cfg    Config
	temps  []float64
	rInv   []float64 // 1/R per block
	cInv   []float64 // 1/C per block
	adj     [][]int // neighbor indices (tangential only)
	gTan    [][]float64
	scratch []float64 // pre-step temperatures (tangential only)
	idx    map[floorplan.BlockID]int
	blocks []floorplan.Block
}

// New builds a Network from cfg. It panics on an empty block set or a
// non-positive cycle time, which are always configuration errors.
func New(cfg Config) *Network {
	if len(cfg.Blocks) == 0 {
		panic("thermal: no blocks configured")
	}
	if cfg.CycleTime <= 0 {
		panic(fmt.Sprintf("thermal: invalid cycle time %g", cfg.CycleTime))
	}
	n := &Network{
		cfg:    cfg,
		temps:  make([]float64, len(cfg.Blocks)),
		rInv:   make([]float64, len(cfg.Blocks)),
		cInv:   make([]float64, len(cfg.Blocks)),
		idx:    make(map[floorplan.BlockID]int, len(cfg.Blocks)),
		blocks: append([]floorplan.Block(nil), cfg.Blocks...),
	}
	for i, b := range n.blocks {
		if b.R <= 0 || b.C <= 0 {
			panic(fmt.Sprintf("thermal: block %v has non-positive R or C", b.ID))
		}
		n.temps[i] = cfg.SinkTemp
		n.rInv[i] = 1 / b.R
		n.cInv[i] = 1 / b.C
		n.idx[b.ID] = i
	}
	if cfg.Tangential {
		n.adj = make([][]int, len(n.blocks))
		n.gTan = make([][]float64, len(n.blocks))
		n.scratch = make([]float64, len(n.blocks))
		for i, b := range n.blocks {
			for _, nb := range b.Neighbors {
				j, ok := n.idx[nb]
				if !ok {
					continue // neighbor not modeled in this network
				}
				// Tangential conductance between the two block
				// centers: series combination of each block's
				// lateral resistance.
				rt := floorplan.TangentialResistance(b.Area) +
					floorplan.TangentialResistance(n.blocks[j].Area)
				n.adj[i] = append(n.adj[i], j)
				n.gTan[i] = append(n.gTan[i], 1/rt)
			}
		}
	}
	return n
}

// NumBlocks returns the number of modeled nodes.
func (n *Network) NumBlocks() int { return len(n.blocks) }

// Block returns the physical parameters of node i.
func (n *Network) Block(i int) floorplan.Block { return n.blocks[i] }

// Index returns the node index for a block ID and whether it is modeled.
func (n *Network) Index(id floorplan.BlockID) (int, bool) {
	i, ok := n.idx[id]
	return i, ok
}

// SinkTemp returns the heatsink temperature.
func (n *Network) SinkTemp() float64 { return n.cfg.SinkTemp }

// SetSinkTemp changes the heatsink temperature (used when coupling to the
// slow chip-wide model).
func (n *Network) SetSinkTemp(t float64) { n.cfg.SinkTemp = t }

// Temp returns the temperature of node i.
func (n *Network) Temp(i int) float64 { return n.temps[i] }

// Temps copies all node temperatures into dst (allocating if nil) and
// returns it.
func (n *Network) Temps(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(n.temps))
	}
	copy(dst, n.temps)
	return dst
}

// SetTemp overrides node i's temperature (testing and checkpoint restore).
func (n *Network) SetTemp(i int, t float64) { n.temps[i] = t }

// Reset returns every node to the heatsink temperature.
func (n *Network) Reset() {
	for i := range n.temps {
		n.temps[i] = n.cfg.SinkTemp
	}
}

// Step advances the network by one cycle given per-node power in watts.
// len(power) must equal NumBlocks.
func (n *Network) Step(power []float64) {
	if len(power) != len(n.temps) {
		panic(fmt.Sprintf("thermal: Step with %d powers for %d blocks", len(power), len(n.temps)))
	}
	dt := n.cfg.CycleTime
	sink := n.cfg.SinkTemp
	if n.adj == nil {
		for i, t := range n.temps {
			flow := power[i] - (t-sink)*n.rInv[i]
			n.temps[i] = t + dt*flow*n.cInv[i]
		}
		return
	}
	// Tangential variant: evaluate lateral flows against the pre-step
	// temperatures so the update stays symmetric.
	prev := n.scratch
	copy(prev, n.temps)
	for i, t := range prev {
		flow := power[i] - (t-sink)*n.rInv[i]
		for k, j := range n.adj[i] {
			flow -= (t - prev[j]) * n.gTan[i][k]
		}
		n.temps[i] = t + dt*flow*n.cInv[i]
	}
}

// StepN advances the network by cycles cycles of *constant* per-node power
// using the exact exponential solution per node:
//
//	T(t) = Tss + (T0 - Tss) * exp(-t/RC),  Tss = Tsink + P*R
//
// It ignores tangential coupling (exact only for the Figure 3C model) and
// is used to fast-forward warm-up or idle periods.
func (n *Network) StepN(power []float64, cycles uint64) {
	if len(power) != len(n.temps) {
		panic(fmt.Sprintf("thermal: StepN with %d powers for %d blocks", len(power), len(n.temps)))
	}
	t := n.cfg.CycleTime * float64(cycles)
	for i := range n.temps {
		tss := n.cfg.SinkTemp + power[i]*n.blocks[i].R
		k := math.Exp(-t / (n.blocks[i].R * n.blocks[i].C))
		n.temps[i] = tss + (n.temps[i]-tss)*k
	}
}

// Hottest returns the index and temperature of the hottest node.
func (n *Network) Hottest() (idx int, temp float64) {
	temp = math.Inf(-1)
	for i, t := range n.temps {
		if t > temp {
			idx, temp = i, t
		}
	}
	return idx, temp
}

// AnyAbove reports whether any node exceeds the threshold.
func (n *Network) AnyAbove(threshold float64) bool {
	for _, t := range n.temps {
		if t > threshold {
			return true
		}
	}
	return false
}

// SteadyState returns the steady-state temperature of node i under constant
// power p: Tsink + p*R.
func (n *Network) SteadyState(i int, p float64) float64 {
	return n.cfg.SinkTemp + p*n.blocks[i].R
}

// TimeConstant returns node i's RC constant in seconds.
func (n *Network) TimeConstant(i int) float64 {
	return n.blocks[i].R * n.blocks[i].C
}

// LongestTimeConstant returns the largest block RC in seconds — the tau the
// paper feeds into controller tuning ("we used the longest time constant of
// the various blocks under study", Section 3.2).
func (n *Network) LongestTimeConstant() float64 {
	var tau float64
	for i := range n.blocks {
		if rc := n.TimeConstant(i); rc > tau {
			tau = rc
		}
	}
	return tau
}

// StepResponse returns the analytic single-node step response
// T(t) = Tsink + P*R*(1 - exp(-t/RC)) starting from the sink temperature,
// for validating the numerical integration.
func StepResponse(b floorplan.Block, sink, p, t float64) float64 {
	return sink + p*b.R*(1-math.Exp(-t/(b.R*b.C)))
}

// ChipModel is the whole-chip package node of Section 4.1: total chip power
// flowing through the die-to-case and heatsink resistances into ambient,
// with the heatsink capacitance giving a time constant of tens of seconds.
// It models the slow drift of the per-block model's "constant" heatsink
// temperature and reproduces the paper's back-of-envelope example
// (25 W * 2 K/W + 27 C = 77 C, tau ~ 1 minute).
type ChipModel struct {
	// R is the total thermal resistance junction-to-ambient in K/W.
	R float64
	// C is the package/heatsink thermal capacitance in J/K.
	C float64
	// Ambient is the ambient temperature in Celsius.
	Ambient float64
	// T is the current chip temperature in Celsius.
	T float64
}

// NewChipModel returns the chip node initialized to ambient.
func NewChipModel(r, c, ambient float64) *ChipModel {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("thermal: invalid chip model R=%g C=%g", r, c))
	}
	return &ChipModel{R: r, C: c, Ambient: ambient, T: ambient}
}

// Step advances the chip node by dt seconds under total power p watts.
func (m *ChipModel) Step(p, dt float64) {
	tss := m.Ambient + p*m.R
	m.T = tss + (m.T-tss)*math.Exp(-dt/(m.R*m.C))
}

// SteadyState returns the chip steady-state temperature under power p.
func (m *ChipModel) SteadyState(p float64) float64 { return m.Ambient + p*m.R }

// TimeConstant returns the package RC in seconds.
func (m *ChipModel) TimeConstant() float64 { return m.R * m.C }
