package thermal

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
)

// This file implements the *full* lumped network of Figure 3B as a general
// RC solver: arbitrary capacitive nodes (blocks, heat spreader, heatsink)
// and fixed-temperature nodes (ambient), connected by thermal conductances,
// with per-node power injection. The paper simplifies this network to
// Figure 3C (per-block R to a constant-temperature sink) after arguing the
// tangential resistances and heatsink dynamics are ignorable over short
// intervals; the solver exists so that simplification can be validated
// numerically rather than taken on faith (see solver_test.go and
// BenchmarkAblationTangential).

// NodeSpec describes one node of a general RC network.
type NodeSpec struct {
	Name string
	// C is the thermal capacitance in J/K; a non-positive C marks a
	// fixed-temperature (boundary) node.
	C float64
	// T0 is the initial (and, for boundary nodes, permanent)
	// temperature.
	T0 float64
}

// EdgeSpec connects two nodes through a thermal resistance.
type EdgeSpec struct {
	A, B int     // node indices
	R    float64 // K/W
}

// Solver integrates a general RC network.
type Solver struct {
	nodes []NodeSpec
	temps []float64
	// g is the symmetric conductance matrix (W/K); g[i][j] between
	// distinct nodes, g[i][i] unused.
	g [][]float64
}

// NewSolver builds a solver from nodes and edges. It panics on malformed
// specifications (these are always construction-time errors).
func NewSolver(nodes []NodeSpec, edges []EdgeSpec) *Solver {
	if len(nodes) == 0 {
		panic("thermal: solver needs nodes")
	}
	s := &Solver{
		nodes: append([]NodeSpec(nil), nodes...),
		temps: make([]float64, len(nodes)),
		g:     make([][]float64, len(nodes)),
	}
	for i, n := range nodes {
		s.temps[i] = n.T0
		s.g[i] = make([]float64, len(nodes))
	}
	for _, e := range edges {
		if e.A < 0 || e.A >= len(nodes) || e.B < 0 || e.B >= len(nodes) || e.A == e.B {
			panic(fmt.Sprintf("thermal: bad edge %+v", e))
		}
		if e.R <= 0 {
			panic(fmt.Sprintf("thermal: non-positive resistance in edge %+v", e))
		}
		s.g[e.A][e.B] += 1 / e.R
		s.g[e.B][e.A] += 1 / e.R
	}
	return s
}

// NumNodes returns the node count.
func (s *Solver) NumNodes() int { return len(s.nodes) }

// Temp returns node i's temperature.
func (s *Solver) Temp(i int) float64 { return s.temps[i] }

// SetTemp overrides node i's temperature.
func (s *Solver) SetTemp(i int, t float64) { s.temps[i] = t }

// netFlow returns the net heat flow into node i (W) for temperatures tt
// under injection power.
func (s *Solver) netFlow(i int, tt, power []float64) float64 {
	flow := power[i]
	for j := range s.nodes {
		if gij := s.g[i][j]; gij != 0 {
			flow += (tt[j] - tt[i]) * gij
		}
	}
	return flow
}

// Step advances the network by dt seconds under the given per-node power
// injection (boundary nodes ignore their entries) using classical RK4,
// which stays accurate even when dt is a large fraction of the smallest
// node time constant.
func (s *Solver) Step(power []float64, dt float64) {
	if len(power) != len(s.nodes) {
		panic(fmt.Sprintf("thermal: solver Step with %d powers for %d nodes", len(power), len(s.nodes)))
	}
	n := len(s.nodes)
	deriv := func(tt []float64, out []float64) {
		for i := 0; i < n; i++ {
			if s.nodes[i].C <= 0 {
				out[i] = 0 // boundary node
				continue
			}
			out[i] = s.netFlow(i, tt, power) / s.nodes[i].C
		}
	}
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)
	deriv(s.temps, k1)
	for i := range tmp {
		tmp[i] = s.temps[i] + 0.5*dt*k1[i]
	}
	deriv(tmp, k2)
	for i := range tmp {
		tmp[i] = s.temps[i] + 0.5*dt*k2[i]
	}
	deriv(tmp, k3)
	for i := range tmp {
		tmp[i] = s.temps[i] + dt*k3[i]
	}
	deriv(tmp, k4)
	for i := range s.temps {
		if s.nodes[i].C <= 0 {
			continue
		}
		s.temps[i] += dt / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
	}
}

// SteadyState solves the network's equilibrium temperatures under constant
// power injection by Gaussian elimination of the conductance system
// G*T = P (+ boundary conditions). It returns an error if the system is
// singular (a capacitive island with no path to any boundary node).
func (s *Solver) SteadyState(power []float64) ([]float64, error) {
	if len(power) != len(s.nodes) {
		return nil, fmt.Errorf("thermal: SteadyState with %d powers for %d nodes", len(power), len(s.nodes))
	}
	n := len(s.nodes)
	// Build augmented matrix for the unknown (capacitive) nodes.
	var unknown []int
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i := 0; i < n; i++ {
		if s.nodes[i].C > 0 {
			pos[i] = len(unknown)
			unknown = append(unknown, i)
		}
	}
	m := len(unknown)
	if m == 0 {
		return append([]float64(nil), s.temps...), nil
	}
	a := make([][]float64, m)
	for r, i := range unknown {
		a[r] = make([]float64, m+1)
		var diag float64
		rhs := power[i]
		for j := 0; j < n; j++ {
			gij := s.g[i][j]
			if gij == 0 {
				continue
			}
			diag += gij
			if pos[j] >= 0 {
				a[r][pos[j]] -= gij
			} else {
				rhs += gij * s.nodes[j].T0
			}
		}
		a[r][r] += diag
		a[r][m] = rhs
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < m; col++ {
		piv := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-15 {
			return nil, fmt.Errorf("thermal: singular network (node %s floats)", s.nodes[unknown[col]].Name)
		}
		a[col], a[piv] = a[piv], a[col]
		for r := col + 1; r < m; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= m; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	sol := make([]float64, m)
	for r := m - 1; r >= 0; r-- {
		v := a[r][m]
		for c := r + 1; c < m; c++ {
			v -= a[r][c] * sol[c]
		}
		sol[r] = v / a[r][r]
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if pos[i] >= 0 {
			out[i] = sol[pos[i]]
		} else {
			out[i] = s.nodes[i].T0
		}
	}
	return out, nil
}

// FullNetwork describes the Figure 3B model built by NewFullNetwork: block
// nodes with tangential coupling, a heat-spreader node, a heatsink node
// and a fixed ambient.
type FullNetwork struct {
	*Solver
	// BlockIdx maps floorplan blocks to solver node indices.
	BlockIdx map[floorplan.BlockID]int
	// SpreaderIdx, SinkIdx, AmbientIdx locate the package nodes.
	SpreaderIdx, SinkIdx, AmbientIdx int
}

// Package-node parameters for the full model: the spreader and sink split
// the chip block's package resistance, and the sink carries the 60 J/K
// capacitance of Section 4.1.
const (
	spreaderC = 2.0  // J/K — copper spreader, much smaller than the sink
	spreaderR = 0.14 // K/W die-to-spreader share of the package resistance
	sinkR     = 0.20 // K/W spreader+sink-to-ambient share
)

// NewFullNetwork builds the Figure 3B network: every floorplan block is a
// capacitive node connected to the heat spreader through its normal
// resistance and to its neighbors through tangential resistances; the
// spreader connects to the heatsink and the heatsink to a fixed ambient.
// Initial temperatures put the die at startTemp with the package in
// equilibrium beneath it.
func NewFullNetwork(blocks []floorplan.Block, ambient, startTemp float64) *FullNetwork {
	var nodes []NodeSpec
	idx := map[floorplan.BlockID]int{}
	for _, b := range blocks {
		idx[b.ID] = len(nodes)
		nodes = append(nodes, NodeSpec{Name: b.ID.String(), C: b.C, T0: startTemp})
	}
	spreader := len(nodes)
	nodes = append(nodes, NodeSpec{Name: "spreader", C: spreaderC, T0: startTemp})
	sink := len(nodes)
	chip := floorplan.ChipBlock()
	nodes = append(nodes, NodeSpec{Name: "heatsink", C: chip.C, T0: startTemp})
	amb := len(nodes)
	nodes = append(nodes, NodeSpec{Name: "ambient", C: 0, T0: ambient})

	var edges []EdgeSpec
	for _, b := range blocks {
		edges = append(edges, EdgeSpec{A: idx[b.ID], B: spreader, R: b.R})
		for _, nb := range b.Neighbors {
			j, ok := idx[nb]
			if !ok || j <= idx[b.ID] {
				continue // add each tangential edge once
			}
			rt := floorplan.TangentialResistance(b.Area)
			edges = append(edges, EdgeSpec{A: idx[b.ID], B: j, R: 2 * rt})
		}
	}
	edges = append(edges, EdgeSpec{A: spreader, B: sink, R: spreaderR})
	edges = append(edges, EdgeSpec{A: sink, B: amb, R: sinkR})

	return &FullNetwork{
		Solver:      NewSolver(nodes, edges),
		BlockIdx:    idx,
		SpreaderIdx: spreader,
		SinkIdx:     sink,
		AmbientIdx:  amb,
	}
}

// StepBlocks advances the full network by dt with per-block power given in
// floorplan order (matching the simplified Network's power vector).
func (f *FullNetwork) StepBlocks(blockPower []float64, blocks []floorplan.Block, dt float64) {
	power := make([]float64, f.NumNodes())
	for i, b := range blocks {
		power[f.BlockIdx[b.ID]] = blockPower[i]
	}
	f.Step(power, dt)
}

// BlockTemp returns a block's temperature.
func (f *FullNetwork) BlockTemp(id floorplan.BlockID) float64 {
	return f.Temp(f.BlockIdx[id])
}
