package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
)

func testConfig() Config {
	cfg := DefaultConfig()
	return cfg
}

func TestNewInitializesAtSink(t *testing.T) {
	n := New(testConfig())
	if n.NumBlocks() != int(floorplan.NumBlocks) {
		t.Fatalf("blocks = %d, want %d", n.NumBlocks(), floorplan.NumBlocks)
	}
	for i := 0; i < n.NumBlocks(); i++ {
		if n.Temp(i) != 100.0 {
			t.Errorf("block %d initial temp = %v, want 100", i, n.Temp(i))
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	cases := []Config{
		{},
		{Blocks: floorplan.Default()}, // zero cycle time
		{Blocks: floorplan.Default(), CycleTime: -1},  // negative dt
		{Blocks: []floorplan.Block{{}}, CycleTime: 1}, // zero R/C
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestStepPanicsOnLengthMismatch(t *testing.T) {
	n := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Step with wrong power length did not panic")
		}
	}()
	n.Step([]float64{1})
}

// The forward-Euler integration must track the analytic exponential step
// response closely at the paper's cycle-level dt.
func TestStepMatchesAnalyticResponse(t *testing.T) {
	cfg := testConfig()
	n := New(cfg)
	power := make([]float64, n.NumBlocks())
	for i := range power {
		power[i] = n.Block(i).PeakPower
	}
	// Advance one time constant of the slowest block (~180 us) using a
	// coarser dt to keep the test fast; dt = 10 ns is still tiny vs RC.
	cfg2 := cfg
	cfg2.CycleTime = 10e-9
	n2 := New(cfg2)
	tau := n2.LongestTimeConstant()
	steps := uint64(tau / cfg2.CycleTime)
	for s := uint64(0); s < steps; s++ {
		n2.Step(power)
	}
	elapsed := float64(steps) * cfg2.CycleTime
	for i := 0; i < n2.NumBlocks(); i++ {
		want := StepResponse(n2.Block(i), cfg.SinkTemp, power[i], elapsed)
		if got := n2.Temp(i); math.Abs(got-want) > 0.02 {
			t.Errorf("block %v: T=%v, analytic %v", n2.Block(i).ID, got, want)
		}
	}
	_ = n
}

func TestStepNMatchesAnalytic(t *testing.T) {
	cfg := testConfig()
	n := New(cfg)
	power := make([]float64, n.NumBlocks())
	for i := range power {
		power[i] = 5.0
	}
	const cycles = 1_000_000
	n.StepN(power, cycles)
	elapsed := cfg.CycleTime * cycles
	for i := 0; i < n.NumBlocks(); i++ {
		want := StepResponse(n.Block(i), cfg.SinkTemp, power[i], elapsed)
		if got := n.Temp(i); math.Abs(got-want) > 1e-9 {
			t.Errorf("block %d: StepN=%v, analytic %v", i, got, want)
		}
	}
}

func TestSteadyStateReached(t *testing.T) {
	n := New(testConfig())
	power := make([]float64, n.NumBlocks())
	for i := range power {
		power[i] = n.Block(i).PeakPower
	}
	// 10 time constants of the slowest block.
	n.StepN(power, uint64(10*n.LongestTimeConstant()/(1.0/1.5e9)))
	for i := 0; i < n.NumBlocks(); i++ {
		want := n.SteadyState(i, power[i])
		if math.Abs(n.Temp(i)-want) > 1e-3 {
			t.Errorf("block %d: T=%v, steady state %v", i, n.Temp(i), want)
		}
	}
}

// Peak power must be able to push every block past the emergency threshold
// (Table 3 calibration: at least one benchmark puts each structure within
// reach of emergency).
func TestPeakPowerExceedsEmergency(t *testing.T) {
	const emergency = 111.3
	n := New(testConfig())
	for i := 0; i < n.NumBlocks(); i++ {
		ss := n.SteadyState(i, n.Block(i).PeakPower)
		if ss <= emergency {
			t.Errorf("block %v peak steady state %v <= emergency %v",
				n.Block(i).ID, ss, emergency)
		}
		// ...but not absurdly beyond the "up to ~12-14 C" local rise.
		if ss > 100+16 {
			t.Errorf("block %v peak rise %v C exceeds expected envelope",
				n.Block(i).ID, ss-100)
		}
	}
}

func TestCoolingDecaysTowardSink(t *testing.T) {
	n := New(testConfig())
	zero := make([]float64, n.NumBlocks())
	for i := 0; i < n.NumBlocks(); i++ {
		n.SetTemp(i, 112)
	}
	n.StepN(zero, uint64(10*n.LongestTimeConstant()/(1.0/1.5e9)))
	for i := 0; i < n.NumBlocks(); i++ {
		if math.Abs(n.Temp(i)-100) > 1e-3 {
			t.Errorf("block %d did not cool to sink: %v", i, n.Temp(i))
		}
	}
}

func TestHottestAndAnyAbove(t *testing.T) {
	n := New(testConfig())
	n.SetTemp(3, 111.5)
	idx, temp := n.Hottest()
	if idx != 3 || temp != 111.5 {
		t.Errorf("hottest = %d@%v, want 3@111.5", idx, temp)
	}
	if !n.AnyAbove(111.3) {
		t.Error("AnyAbove(111.3) = false with a 111.5 block")
	}
	if n.AnyAbove(112) {
		t.Error("AnyAbove(112) = true with max 111.5")
	}
}

func TestResetAndTempsCopy(t *testing.T) {
	n := New(testConfig())
	n.SetTemp(0, 200)
	got := n.Temps(nil)
	if got[0] != 200 {
		t.Errorf("Temps()[0] = %v, want 200", got[0])
	}
	got[0] = -1 // must be a copy
	if n.Temp(0) != 200 {
		t.Error("Temps returned aliased storage")
	}
	n.Reset()
	if n.Temp(0) != n.SinkTemp() {
		t.Errorf("after reset temp = %v, want sink", n.Temp(0))
	}
}

func TestIndexLookup(t *testing.T) {
	n := New(testConfig())
	i, ok := n.Index(floorplan.BPred)
	if !ok || n.Block(i).ID != floorplan.BPred {
		t.Errorf("Index(BPred) = %d,%v", i, ok)
	}
	if _, ok := n.Index(floorplan.Chip); ok {
		t.Error("Index(Chip) found in per-structure network")
	}
}

// Property: temperatures never move away from the band [min(T0,Tss),
// max(T0,Tss)] under constant power — the RC node is first-order with no
// overshoot.
func TestNoOvershootProperty(t *testing.T) {
	cfg := testConfig()
	cfg.CycleTime = 50e-9
	f := func(p8 uint8, t8 uint8, steps16 uint16) bool {
		p := float64(p8) / 16.0 // 0..16 W
		t0 := 90 + float64(t8)/8.0
		n := New(cfg)
		n.SetTemp(0, t0)
		tss := n.SteadyState(0, p)
		lo, hi := math.Min(t0, tss), math.Max(t0, tss)
		power := make([]float64, n.NumBlocks())
		power[0] = p
		for s := 0; s < int(steps16%2000); s++ {
			n.Step(power)
			if n.Temp(0) < lo-1e-9 || n.Temp(0) > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// With tangential coupling enabled, total energy still flows downhill:
// a hot block warms its cooler neighbor.
func TestTangentialCouplingWarmsNeighbor(t *testing.T) {
	cfg := testConfig()
	cfg.Tangential = true
	cfg.CycleTime = 50e-9
	n := New(cfg)
	iLSQ, _ := n.Index(floorplan.LSQ)
	iWin, _ := n.Index(floorplan.Window)
	n.SetTemp(iLSQ, 112)
	zero := make([]float64, n.NumBlocks())
	for s := 0; s < 100000; s++ {
		n.Step(zero)
	}
	if n.Temp(iWin) <= 100 {
		t.Errorf("neighbor window not warmed: %v", n.Temp(iWin))
	}
	// And the effect must be small relative to the normal path — the
	// paper's justification for dropping Rtan.
	if n.Temp(iWin) > 100.5 {
		t.Errorf("tangential warming %v C unexpectedly large", n.Temp(iWin)-100)
	}
}

// Tangential coupling must barely perturb the temperatures relative to the
// simplified model (Figure 3C vs 3B) — the paper's Section 4.3 claim.
func TestTangentialIsSecondOrder(t *testing.T) {
	base := testConfig()
	base.CycleTime = 100e-9
	tan := base
	tan.Tangential = true
	n1, n2 := New(base), New(tan)
	power := make([]float64, n1.NumBlocks())
	for i := range power {
		power[i] = n1.Block(i).PeakPower * float64(i%3) / 2.0
	}
	for s := 0; s < 200000; s++ {
		n1.Step(power)
		n2.Step(power)
	}
	for i := 0; i < n1.NumBlocks(); i++ {
		d := math.Abs(n1.Temp(i) - n2.Temp(i))
		// Second-order means well under the ~10 C rises involved; the
		// small regfile (three neighbors, lowest capacitance) shifts
		// the most at ~0.6 C.
		if d > 1.0 {
			t.Errorf("block %d: |simplified - tangential| = %v C", i, d)
		}
	}
}

func TestChipModelPaperExample(t *testing.T) {
	// Section 4.1: 25 W, 1 K/W die-to-case + 1 K/W heatsink, 27 C ambient
	// => 77 C steady state; C=60 J/K => tau ~ 1 minute.
	m := NewChipModel(2.0, 60, 27)
	if got := m.SteadyState(25); math.Abs(got-77) > 1e-12 {
		t.Errorf("steady state = %v, want 77", got)
	}
	if tau := m.TimeConstant(); math.Abs(tau-120) > 1e-9 {
		t.Errorf("tau = %v, want 120 s (~minutes)", tau)
	}
	m.Step(25, 1e9) // effectively infinite time
	if math.Abs(m.T-77) > 1e-6 {
		t.Errorf("after long step T = %v, want 77", m.T)
	}
}

func TestChipModelPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewChipModel(0,0,..) did not panic")
		}
	}()
	NewChipModel(0, 0, 27)
}

// The paper's central observation: localized heating is orders of magnitude
// faster than chip-wide heating.
func TestLocalizedHeatingMuchFasterThanChipWide(t *testing.T) {
	n := New(testConfig())
	chip := NewChipModel(0.34, 60, 45)
	ratio := chip.TimeConstant() / n.LongestTimeConstant()
	if ratio < 1e4 {
		t.Errorf("chip tau / block tau = %v, want >= 1e4", ratio)
	}
}
