package thermal

import (
	"testing"

	"repro/internal/floorplan"
)

func TestTileConfigBuilds(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		net := New(TileConfig(n))
		if got := net.NumBlocks(); got != n*int(floorplan.NumBlocks) {
			t.Fatalf("TileConfig(%d): %d blocks", n, got)
		}
	}
}

// Two-core energy-flows-downhill: a hot block in core 0 must warm the
// abutting block of core 1 purely through cross-core tangential coupling,
// and the warming must stay second-order — the multicore analogue of
// TestTangentialCouplingWarmsNeighbor.
func TestTileCrossCoreCouplingWarmsNeighbor(t *testing.T) {
	cfg := TileConfig(2)
	cfg.CycleTime = 50e-9
	n := New(cfg)
	iSrc, ok := n.Index(floorplan.TileID(0, floorplan.FPExec))
	if !ok {
		t.Fatal("no index for c0.fpexec")
	}
	iDst, ok := n.Index(floorplan.TileID(1, floorplan.IntExec))
	if !ok {
		t.Fatal("no index for c1.intexec")
	}
	n.SetTemp(iSrc, 112)
	zero := make([]float64, n.NumBlocks())
	// Sample mid-transient (250 us): by the time the source has fully
	// decayed to the sink, the neighbor has too and only rounding noise
	// remains.
	for s := 0; s < 5000; s++ {
		n.Step(zero)
	}
	if n.Temp(iDst) <= 100.01 {
		t.Errorf("cross-core neighbor not warmed: %v", n.Temp(iDst))
	}
	if n.Temp(iDst) > 100.5 {
		t.Errorf("cross-core warming %v C unexpectedly large", n.Temp(iDst)-100)
	}
	if n.Temp(iDst) >= n.Temp(iSrc) {
		t.Errorf("energy flowed uphill: dst %v >= src %v", n.Temp(iDst), n.Temp(iSrc))
	}
	// A block with no shared edge to core 0 (core 1's far-side FPExec in
	// the horizontal pair) must warm strictly less than the abutting one.
	iFar, _ := n.Index(floorplan.TileID(1, floorplan.FPExec))
	if n.Temp(iFar) >= n.Temp(iDst) {
		t.Errorf("far block %v warmed as much as abutting block %v", n.Temp(iFar), n.Temp(iDst))
	}
}
