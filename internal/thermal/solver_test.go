package thermal

import (
	"math"
	"testing"

	"repro/internal/floorplan"
)

// A single RC node through the solver must match the analytic exponential.
func TestSolverSingleNodeMatchesAnalytic(t *testing.T) {
	nodes := []NodeSpec{
		{Name: "block", C: 6e-5, T0: 100},
		{Name: "sink", C: 0, T0: 100},
	}
	s := NewSolver(nodes, []EdgeSpec{{A: 0, B: 1, R: 2.0}})
	power := []float64{5, 0}
	const dt = 1e-6
	for i := 0; i < 200; i++ { // 200 us
		s.Step(power, dt)
	}
	b := floorplan.Block{R: 2.0, C: 6e-5}
	want := StepResponse(b, 100, 5, 200e-6)
	if math.Abs(s.Temp(0)-want) > 1e-3 {
		t.Errorf("solver T = %v, analytic %v", s.Temp(0), want)
	}
}

func TestSolverSteadyStateMatchesOhm(t *testing.T) {
	// block -> spreader -> ambient chain: Tss = amb + P*(R1+R2).
	nodes := []NodeSpec{
		{Name: "block", C: 6e-5, T0: 50},
		{Name: "mid", C: 1.0, T0: 50},
		{Name: "amb", C: 0, T0: 45},
	}
	s := NewSolver(nodes, []EdgeSpec{
		{A: 0, B: 1, R: 2.0},
		{A: 1, B: 2, R: 0.34},
	})
	ss, err := s.SteadyState([]float64{10, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if want := 45 + 10*(2.0+0.34); math.Abs(ss[0]-want) > 1e-9 {
		t.Errorf("block steady state = %v, want %v", ss[0], want)
	}
	if want := 45 + 10*0.34; math.Abs(ss[1]-want) > 1e-9 {
		t.Errorf("mid steady state = %v, want %v", ss[1], want)
	}
	if ss[2] != 45 {
		t.Errorf("boundary moved: %v", ss[2])
	}
}

func TestSolverSingularNetworkRejected(t *testing.T) {
	// A capacitive node with no path to any boundary.
	nodes := []NodeSpec{
		{Name: "floating", C: 1, T0: 100},
		{Name: "amb", C: 0, T0: 45},
	}
	s := NewSolver(nodes, nil)
	if _, err := s.SteadyState([]float64{1, 0}); err == nil {
		t.Error("singular network accepted")
	}
}

func TestSolverPanicsOnBadSpecs(t *testing.T) {
	cases := []func(){
		func() { NewSolver(nil, nil) },
		func() {
			NewSolver([]NodeSpec{{C: 1}}, []EdgeSpec{{A: 0, B: 0, R: 1}})
		},
		func() {
			NewSolver([]NodeSpec{{C: 1}, {C: 1}}, []EdgeSpec{{A: 0, B: 1, R: -1}})
		},
		func() {
			NewSolver([]NodeSpec{{C: 1}}, []EdgeSpec{{A: 0, B: 5, R: 1}})
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// The core validation of the paper's Figure 3C simplification: over a
// short horizon (a few block time constants), the full Figure 3B network —
// with tangential coupling, spreader and heatsink dynamics — tracks the
// simplified constant-sink model within a fraction of a degree.
func TestFullNetworkValidatesSimplifiedModel(t *testing.T) {
	blocks := floorplan.Default()
	simple := New(DefaultConfig())
	// Start the full model with the die at the sink temperature and the
	// package pre-warmed so the sink node holds ~100 C, matching the
	// simplified model's boundary assumption.
	full := NewFullNetwork(blocks, 45, 100)
	power := make([]float64, len(blocks))
	for i, b := range blocks {
		power[i] = 0.6 * b.PeakPower
	}
	// The package must carry away the total power to hold the sink
	// steady; inject the balancing heat at the sink node for the short
	// horizon (equivalent to the pre-warmed package's thermal inertia).
	const dt = 1e-7
	const steps = 5000 // 0.5 ms ~ several block RCs
	for i := 0; i < steps; i++ {
		simpleStep(simple, power, dt)
		full.StepBlocks(power, blocks, dt)
	}
	for i, b := range blocks {
		got := full.BlockTemp(b.ID)
		want := simple.Temp(i)
		if d := math.Abs(got - want); d > 0.5 {
			t.Errorf("%v: full %.3f vs simplified %.3f (d=%.3f)", b.ID, got, want, d)
		}
	}
	// The heatsink node must have barely moved (Section 4.3's argument).
	if d := math.Abs(full.Temp(full.SinkIdx) - 100); d > 0.2 {
		t.Errorf("heatsink moved %.3f C in 0.5 ms", d)
	}
}

// simpleStep advances the simplified network with an arbitrary dt by
// temporarily scaling through StepN-equivalent integration.
func simpleStep(n *Network, power []float64, dt float64) {
	// The simplified model's Step uses its configured cycle time; for the
	// comparison we advance via the exact per-node exponential.
	cycles := uint64(dt / (1.0 / 1.5e9))
	n.StepN(power, cycles)
}

// Long-horizon behaviour: with sustained power, the full network's sink
// node eventually warms — quantifying how long the constant-sink
// assumption stays valid.
func TestFullNetworkSinkWarmsOverSeconds(t *testing.T) {
	blocks := floorplan.Default()
	full := NewFullNetwork(blocks, 45, 100)
	power := make([]float64, len(blocks))
	for i, b := range blocks {
		power[i] = 0.6 * b.PeakPower
	}
	// Integrate 2 s at a coarse step (package dynamics are slow; block
	// nodes are near-equilibrium so RK4 stays stable at 50 us).
	const dt = 50e-6
	for i := 0; i < 40_000; i++ {
		full.StepBlocks(power, blocks, dt)
	}
	drift := full.Temp(full.SinkIdx) - 100
	if math.Abs(drift) < 0.1 {
		t.Errorf("sink failed to move over 2 s (drift %.4f)", drift)
	}
}

func TestFullNetworkSteadyState(t *testing.T) {
	blocks := floorplan.Default()
	full := NewFullNetwork(blocks, 45, 45)
	power := make([]float64, full.NumNodes())
	var total float64
	for _, b := range blocks {
		power[full.BlockIdx[b.ID]] = 0.5 * b.PeakPower
		total += 0.5 * b.PeakPower
	}
	ss, err := full.SteadyState(power)
	if err != nil {
		t.Fatal(err)
	}
	// The sink must sit at ambient + total*(sinkR); the spreader above
	// it; every block above the spreader.
	wantSink := 45 + total*sinkR
	if math.Abs(ss[full.SinkIdx]-wantSink) > 1e-6 {
		t.Errorf("sink steady state = %v, want %v", ss[full.SinkIdx], wantSink)
	}
	for _, b := range blocks {
		if ss[full.BlockIdx[b.ID]] <= ss[full.SpreaderIdx] {
			t.Errorf("%v not hotter than spreader", b.ID)
		}
	}
}

func TestSolverStepPanicsOnLengthMismatch(t *testing.T) {
	s := NewSolver([]NodeSpec{{C: 1, T0: 1}}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched power length")
		}
	}()
	s.Step([]float64{1, 2}, 1e-6)
}
