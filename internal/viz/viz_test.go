package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/floorplan"
)

// wellFormed parses the SVG as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
}

func TestLineChartBasics(t *testing.T) {
	svg := LineChart(ChartConfig{
		Title:  "gcc temperature <PI>",
		XLabel: "cycle",
		YLabel: "C",
		HLines: map[string]float64{"emergency": 111.3, "trigger": 110.9},
	}, Series{
		Name: "hottest",
		Xs:   []float64{0, 1000, 2000, 3000},
		Ys:   []float64{100, 108, 111, 111.1},
	}, Series{
		Name: "duty",
		Xs:   []float64{0, 1000, 2000, 3000},
		Ys:   []float64{111, 111, 110, 110.5},
	})
	wellFormed(t, svg)
	for _, want := range []string{"polyline", "emergency", "hottest", "duty", "&lt;PI&gt;"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "<PI>") {
		t.Error("unescaped title in SVG")
	}
}

func TestLineChartDegenerateInputs(t *testing.T) {
	// Empty series and constant values must not divide by zero.
	svg := LineChart(ChartConfig{}, Series{Name: "flat", Xs: []float64{1, 2}, Ys: []float64{5, 5}})
	wellFormed(t, svg)
	svg = LineChart(ChartConfig{}, Series{Name: "empty"})
	wellFormed(t, svg)
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(span{0, 100}, 5)
	if len(ticks) < 3 || len(ticks) > 12 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatal("ticks not increasing")
		}
	}
}

func TestHeatColorEndpoints(t *testing.T) {
	if heatColor(0) != "#3b4cc0" {
		t.Errorf("cold color = %s", heatColor(0))
	}
	if heatColor(1) != "#b40426" {
		t.Errorf("hot color = %s", heatColor(1))
	}
	// Clamping.
	if heatColor(-5) != heatColor(0) || heatColor(5) != heatColor(1) {
		t.Error("heat color does not clamp")
	}
}

func TestFloorplanHeatmap(t *testing.T) {
	layout := floorplan.DefaultLayout()
	temps := map[floorplan.BlockID]float64{}
	for id := range layout.Rects {
		temps[id] = 101 + float64(id)
	}
	svg := FloorplanHeatmap(HeatmapConfig{
		Title: "gcc peak temperatures",
		Marks: map[string]float64{"D": 111.3},
	}, layout, temps)
	wellFormed(t, svg)
	for _, id := range floorplan.Blocks() {
		if !strings.Contains(svg, id.String()) {
			t.Errorf("heatmap missing block %v", id)
		}
	}
}

func TestFloorplanHeatmapAutoScaleEmpty(t *testing.T) {
	svg := FloorplanHeatmap(HeatmapConfig{}, floorplan.DefaultLayout(), nil)
	wellFormed(t, svg)
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		2_000_000: "2M",
		15000:     "15k",
		3:         "3",
		0.25:      "0.25",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}
