// Package viz renders the reproduction's figures as standalone SVG using
// only the standard library: time-series line charts (temperature and duty
// traces, step responses) and floorplan heat maps (the localized-hot-spot
// pictures behind Figures 2-3).
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/floorplan"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// ChartConfig controls LineChart rendering.
type ChartConfig struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // pixels; 0 = 800
	Height int // pixels; 0 = 400
	// HLines draws labeled horizontal reference lines (e.g., the
	// emergency and trigger thresholds).
	HLines map[string]float64
}

// palette is a color-blind-safe categorical palette.
var palette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7",
	"#e69f00", "#56b4e9", "#f0e442", "#000000",
}

type span struct{ lo, hi float64 }

func (s span) width() float64 { return s.hi - s.lo }

func findSpan(vals ...[]float64) span {
	sp := span{math.Inf(1), math.Inf(-1)}
	for _, vs := range vals {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < sp.lo {
				sp.lo = v
			}
			if v > sp.hi {
				sp.hi = v
			}
		}
	}
	if math.IsInf(sp.lo, 1) {
		return span{0, 1}
	}
	if sp.width() == 0 {
		return span{sp.lo - 1, sp.hi + 1}
	}
	return sp
}

// niceTicks returns ~n human-friendly tick values covering sp.
func niceTicks(sp span, n int) []float64 {
	if n < 2 {
		n = 2
	}
	raw := sp.width() / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	var ticks []float64
	for v := math.Ceil(sp.lo/step) * step; v <= sp.hi+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case a >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	case a == math.Trunc(a):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// esc escapes text for SVG.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// LineChart renders the series as a standalone SVG document.
func LineChart(cfg ChartConfig, series ...Series) string {
	w, h := cfg.Width, cfg.Height
	if w == 0 {
		w = 800
	}
	if h == 0 {
		h = 400
	}
	const mL, mR, mT, mB = 70, 150, 40, 55
	plotW, plotH := float64(w-mL-mR), float64(h-mT-mB)

	var xs, ys [][]float64
	for _, s := range series {
		xs = append(xs, s.Xs)
		ys = append(ys, s.Ys)
	}
	var hvals []float64
	for _, v := range cfg.HLines {
		hvals = append(hvals, v)
	}
	xsp := findSpan(xs...)
	ysp := findSpan(append(ys, hvals)...)
	// Pad the y-range 5%.
	pad := ysp.width() * 0.05
	ysp = span{ysp.lo - pad, ysp.hi + pad}

	px := func(x float64) float64 { return float64(mL) + (x-xsp.lo)/xsp.width()*plotW }
	py := func(y float64) float64 { return float64(mT) + (1-(y-ysp.lo)/ysp.width())*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if cfg.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`+"\n", w/2, esc(cfg.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", mL, mT, mL, h-mB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", mL, h-mB, w-mR, h-mB)
	for _, t := range niceTicks(xsp, 8) {
		x := px(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n", x, h-mB, x, h-mB+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n", x, h-mB+18, fmtTick(t))
	}
	for _, t := range niceTicks(ysp, 6) {
		y := py(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n", mL-5, y, mL, y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n", mL, y, w-mR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n", mL-8, y+4, fmtTick(t))
	}
	if cfg.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n", mL+int(plotW)/2, h-12, esc(cfg.XLabel))
	}
	if cfg.YLabel != "" {
		fmt.Fprintf(&b, `<text x="18" y="%d" font-family="sans-serif" font-size="13" text-anchor="middle" transform="rotate(-90 18 %d)">%s</text>`+"\n",
			mT+int(plotH)/2, mT+int(plotH)/2, esc(cfg.YLabel))
	}
	// Reference lines, sorted for determinism.
	var hnames []string
	for name := range cfg.HLines {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		v := cfg.HLines[name]
		y := py(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#888888" stroke-dasharray="6,4"/>`+"\n", mL, y, w-mR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" fill="#555555">%s</text>`+"\n", w-mR+4, y+4, esc(name))
	}
	// Series.
	for i, s := range series {
		color := palette[i%len(palette)]
		var pts strings.Builder
		for j := range s.Xs {
			if j >= len(s.Ys) {
				break
			}
			fmt.Fprintf(&pts, "%.1f,%.1f ", px(s.Xs[j]), py(s.Ys[j]))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n", color, strings.TrimSpace(pts.String()))
		// Legend.
		ly := mT + 16*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n", w-mR+8, ly, w-mR+28, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n", w-mR+33, ly+4, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// heatColor maps t in [0,1] through a blue->yellow->red ramp.
func heatColor(t float64) string {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	var r, g, bl float64
	switch {
	case t < 0.5:
		// blue (59,76,192) -> yellow (245,230,66)
		u := t / 0.5
		r, g, bl = 59+u*(245-59), 76+u*(230-76), 192+u*(66-192)
	default:
		// yellow -> red (180,4,38)
		u := (t - 0.5) / 0.5
		r, g, bl = 245+u*(180-245), 230+u*(4-230), 66+u*(38-66)
	}
	return fmt.Sprintf("#%02x%02x%02x", int(r), int(g), int(bl))
}

// HeatmapConfig controls FloorplanHeatmap rendering.
type HeatmapConfig struct {
	Title string
	// TempLo/TempHi anchor the color scale in Celsius; zero values
	// auto-scale to the data.
	TempLo, TempHi float64
	// Marks draws labeled iso-levels on the scale bar (e.g. the
	// emergency threshold).
	Marks map[string]float64
}

// FloorplanHeatmap renders the floorplan with each block colored by its
// temperature. temps maps blocks to Celsius.
func FloorplanHeatmap(cfg HeatmapConfig, layout floorplan.Layout, temps map[floorplan.BlockID]float64) string {
	lo, hi := cfg.TempLo, cfg.TempHi
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, t := range temps {
			lo = math.Min(lo, t)
			hi = math.Max(hi, t)
		}
		if math.IsInf(lo, 1) {
			lo, hi = 0, 1
		}
		if hi == lo {
			hi = lo + 1
		}
	}
	// Bounding box of the layout.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, r := range layout.Rects {
		minX = math.Min(minX, r.X)
		minY = math.Min(minY, r.Y)
		maxX = math.Max(maxX, r.X+r.W)
		maxY = math.Max(maxY, r.Y+r.H)
	}
	const scalePx = 70_000 // pixels per meter: 5 mm die -> 350 px
	w := int((maxX-minX)*scalePx) + 180
	h := int((maxY-minY)*scalePx) + 70

	px := func(x float64) float64 { return 20 + (x-minX)*scalePx }
	// SVG y grows downward; flip so the floorplan's +y is up.
	py := func(y, ht float64) float64 { return 40 + (maxY-y-ht)*scalePx }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if cfg.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n", w/2, esc(cfg.Title))
	}
	// Blocks, sorted for determinism.
	ids := make([]floorplan.BlockID, 0, len(layout.Rects))
	for id := range layout.Rects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := layout.Rects[id]
		t, ok := temps[id]
		fill := "#eeeeee"
		if ok {
			fill = heatColor((t - lo) / (hi - lo))
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="black"/>`+"\n",
			px(r.X), py(r.Y, r.H), r.W*scalePx, r.H*scalePx, fill)
		cx, cy := px(r.X)+r.W*scalePx/2, py(r.Y, r.H)+r.H*scalePx/2
		label := id.String()
		if ok {
			label = fmt.Sprintf("%s %.1f", id, t)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n", cx, cy+4, esc(label))
	}
	// Color scale bar.
	barX := float64(w - 130)
	barH := float64(h - 110)
	for i := 0; i < 100; i++ {
		f := float64(i) / 99
		y := 40 + (1-f)*barH
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="18" height="%.2f" fill="%s"/>`+"\n", barX, y-barH/99, barH/99+0.5, heatColor(f))
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%.1f</text>`+"\n", barX+24, 40+barH, lo)
	fmt.Fprintf(&b, `<text x="%.1f" y="46" font-family="sans-serif" font-size="11">%.1f</text>`+"\n", barX+24, hi)
	var marks []string
	for name := range cfg.Marks {
		marks = append(marks, name)
	}
	sort.Strings(marks)
	for _, name := range marks {
		v := cfg.Marks[name]
		f := (v - lo) / (hi - lo)
		if f < 0 || f > 1 {
			continue
		}
		y := 40 + (1-f)*barH
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", barX-4, y, barX+22, y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10">%s</text>`+"\n", barX+24, y+3, esc(name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}
