package packstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// openTest opens a store with deterministic (manual) compaction.
func openTest(t *testing.T, dir string, mutate func(*Options)) *Store {
	t.Helper()
	opts := Options{NoAutoCompact: true}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, key string, data []byte) {
	t.Helper()
	if err := s.Put(key, data); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func mustGet(t *testing.T, s *Store, key string) []byte {
	t.Helper()
	data, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get(%s): %v", key, err)
	}
	return data
}

func TestPackRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	if _, err := s.Get("missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing key: err = %v, want fs.ErrNotExist", err)
	}
	for i := 0; i < 100; i++ {
		mustPut(t, s, fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("payload %d", i)))
	}
	for i := 0; i < 100; i++ {
		got := mustGet(t, s, fmt.Sprintf("key-%03d", i))
		if want := fmt.Sprintf("payload %d", i); string(got) != want {
			t.Fatalf("key-%03d = %q, want %q", i, got, want)
		}
	}
	if s.Len() != 100 {
		t.Errorf("Len = %d, want 100", s.Len())
	}
	// Overwrite supersedes; old bytes become dead.
	mustPut(t, s, "key-007", []byte("rewritten"))
	if got := mustGet(t, s, "key-007"); string(got) != "rewritten" {
		t.Errorf("overwrite returned %q", got)
	}
	if st := s.Stats(); st.DeadBytes == 0 || st.Entries != 100 {
		t.Errorf("after overwrite: %+v, want dead bytes > 0 and 100 entries", st)
	}
}

func TestPackDeleteAndTombstoneSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, nil)
	mustPut(t, s, "kept", []byte("a"))
	mustPut(t, s, "gone", []byte("b"))
	if err := s.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("gone"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("deleted key err = %v", err)
	}
	s.Close()

	// The tombstone must hold across a cold-start rebuild.
	s2 := openTest(t, dir, nil)
	if _, err := s2.Get("gone"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("deleted key resurrected after reopen: err = %v", err)
	}
	if got := mustGet(t, s2, "kept"); string(got) != "a" {
		t.Fatalf("kept = %q", got)
	}
	if s2.Len() != 1 {
		t.Errorf("Len after reopen = %d, want 1", s2.Len())
	}
}

func TestPackReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, func(o *Options) { o.MaxVolumeBytes = 1024 }) // force multiple volumes
	const n = 200
	for i := 0; i < n; i++ {
		mustPut(t, s, fmt.Sprintf("k%04d", i), bytes.Repeat([]byte{byte(i)}, 64))
	}
	if st := s.Stats(); st.Volumes < 2 {
		t.Fatalf("expected multiple volumes, got %+v", st)
	}
	s.Close()

	s2 := openTest(t, dir, nil)
	if s2.Len() != n {
		t.Fatalf("rebuilt Len = %d, want %d", s2.Len(), n)
	}
	for i := 0; i < n; i++ {
		got := mustGet(t, s2, fmt.Sprintf("k%04d", i))
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 64)) {
			t.Fatalf("k%04d corrupted after rebuild", i)
		}
	}
}

// TestPackTornTailTruncatedOnReopen is the SIGKILL-mid-append contract:
// a partial needle at the active volume's tail is truncated by the
// cold-start scan and every earlier entry is served.
func TestPackTornTailTruncatedOnReopen(t *testing.T) {
	for _, tear := range []struct {
		name string
		cut  func(full []byte) []byte // bytes to append as the torn tail
	}{
		{"header-only", func(full []byte) []byte { return full[:headerSize-3] }},
		{"mid-key", func(full []byte) []byte { return full[:headerSize+4] }},
		{"mid-data", func(full []byte) []byte { return full[:len(full)-5] }},
		{"garbage", func(full []byte) []byte { return []byte("not a needle at all") }},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, nil)
			for i := 0; i < 10; i++ {
				mustPut(t, s, fmt.Sprintf("pre-%d", i), []byte(fmt.Sprintf("value %d", i)))
			}
			s.Close()

			// Simulate the kill: append a torn needle directly to the
			// active volume, as if the process died mid-write.
			vol := filepath.Join(dir, "pack-000000.dat")
			full := encodeNeedle(0, "torn-key", []byte("torn payload that never finished"))
			f, err := os.OpenFile(vol, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			before, _ := f.Seek(0, 2)
			if _, err := f.Write(tear.cut(full)); err != nil {
				t.Fatal(err)
			}
			f.Close()

			s2 := openTest(t, dir, nil)
			if s2.Len() != 10 {
				t.Fatalf("Len after torn-tail reopen = %d, want 10", s2.Len())
			}
			for i := 0; i < 10; i++ {
				got := mustGet(t, s2, fmt.Sprintf("pre-%d", i))
				if want := fmt.Sprintf("value %d", i); string(got) != want {
					t.Fatalf("pre-%d = %q, want %q", i, got, want)
				}
			}
			if st, err := os.Stat(vol); err != nil || st.Size() != before {
				t.Errorf("volume size = %d (err %v), want truncated back to %d", st.Size(), err, before)
			}
			// The store must keep working past the recovered tail.
			mustPut(t, s2, "post", []byte("after recovery"))
			if got := mustGet(t, s2, "post"); string(got) != "after recovery" {
				t.Fatalf("post-recovery put = %q", got)
			}
		})
	}
}

func TestPackCorruptNeedleQuarantinedAsMiss(t *testing.T) {
	dir := t.TempDir()
	m := telemetry.NewCacheMetrics(telemetry.NewRegistry())
	s := openTest(t, dir, func(o *Options) { o.Metrics = m })
	mustPut(t, s, "healthy", []byte("fine"))
	mustPut(t, s, "victim", []byte("soon to be flipped"))

	// Flip one payload byte of the victim's needle on disk.
	loc, ok := s.locate("victim")
	if !ok {
		t.Fatal("victim not indexed")
	}
	vol := filepath.Join(dir, fmt.Sprintf("pack-%06d.dat", loc.vol))
	f, err := os.OpenFile(vol, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, loc.off+headerSize+int64(loc.keyLen)+3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := s.Get("victim"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("corrupt needle err = %v, want fs.ErrNotExist (miss)", err)
	}
	if _, err := s.Get("victim"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("quarantined needle served on second read")
	}
	if got := mustGet(t, s, "healthy"); string(got) != "fine" {
		t.Fatalf("healthy neighbor = %q", got)
	}
	if m.PackAuditFailures.Value() != 1 {
		t.Errorf("PackAuditFailures = %d, want 1", m.PackAuditFailures.Value())
	}
	// Self-healing: a recompute re-stores under the same key.
	mustPut(t, s, "victim", []byte("recomputed"))
	if got := mustGet(t, s, "victim"); string(got) != "recomputed" {
		t.Fatalf("re-stored victim = %q", got)
	}
}

func TestPackAuditQuarantinesCorruptNeedles(t *testing.T) {
	dir := t.TempDir()
	m := telemetry.NewCacheMetrics(telemetry.NewRegistry())
	s := openTest(t, dir, func(o *Options) { o.Metrics = m })
	for i := 0; i < 20; i++ {
		mustPut(t, s, fmt.Sprintf("k%02d", i), bytes.Repeat([]byte("x"), 32))
	}
	for _, victim := range []string{"k03", "k11"} {
		loc, _ := s.locate(victim)
		f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("pack-%06d.dat", loc.vol)), os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt([]byte{0xee}, loc.off+headerSize+int64(loc.keyLen)+1)
		f.Close()
	}
	failed, err := s.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if failed != 2 {
		t.Fatalf("Audit quarantined %d, want 2", failed)
	}
	if m.PackAuditFailures.Value() != 2 {
		t.Errorf("PackAuditFailures = %d, want 2", m.PackAuditFailures.Value())
	}
	if s.Len() != 18 {
		t.Errorf("Len after audit = %d, want 18", s.Len())
	}
	if again, err := s.Audit(); err != nil || again != 0 {
		t.Errorf("second audit = %d, %v, want 0, nil", again, err)
	}
}

func TestPackCompactionReclaimsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	m := telemetry.NewCacheMetrics(telemetry.NewRegistry())
	s := openTest(t, dir, func(o *Options) {
		o.MaxVolumeBytes = 2048
		o.Metrics = m
	})
	// Fill several volumes, then overwrite most keys so early volumes
	// decay below the live-ratio threshold.
	const n = 60
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			mustPut(t, s, fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("round %d value %02d", round, i)))
		}
	}
	if err := s.Delete("k00"); err != nil {
		t.Fatal(err)
	}
	pre := s.Stats()
	if pre.DeadBytes == 0 {
		t.Fatal("no dead bytes to reclaim")
	}
	compactions := 0
	for {
		did, err := s.CompactOnce()
		if err != nil {
			t.Fatalf("CompactOnce: %v", err)
		}
		if !did {
			break
		}
		compactions++
	}
	if compactions == 0 {
		t.Fatal("no volume compacted")
	}
	post := s.Stats()
	if post.DeadBytes >= pre.DeadBytes {
		t.Errorf("dead bytes %d -> %d, want reclaimed", pre.DeadBytes, post.DeadBytes)
	}
	if m.PackCompactions.Value() != int64(compactions) {
		t.Errorf("PackCompactions = %d, want %d", m.PackCompactions.Value(), compactions)
	}
	// Every surviving entry still serves its latest value.
	for i := 1; i < n; i++ {
		got := mustGet(t, s, fmt.Sprintf("k%02d", i))
		if want := fmt.Sprintf("round 2 value %02d", i); string(got) != want {
			t.Fatalf("k%02d = %q, want %q", i, got, want)
		}
	}
	if _, err := s.Get("k00"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("deleted key after compaction: err = %v", err)
	}
	s.Close()

	// And the compacted volumes rebuild identically.
	s2 := openTest(t, dir, nil)
	if s2.Len() != n-1 {
		t.Fatalf("Len after compacted reopen = %d, want %d", s2.Len(), n-1)
	}
	if _, err := s2.Get("k00"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("deleted key resurrected after compaction + reopen")
	}
	for i := 1; i < n; i++ {
		got := mustGet(t, s2, fmt.Sprintf("k%02d", i))
		if want := fmt.Sprintf("round 2 value %02d", i); string(got) != want {
			t.Fatalf("reopened k%02d = %q, want %q", i, got, want)
		}
	}
}

func TestPackCompactionFaultLeavesVolumeIntact(t *testing.T) {
	s := openTest(t, t.TempDir(), func(o *Options) { o.MaxVolumeBytes = 1024 })
	for round := 0; round < 3; round++ {
		for i := 0; i < 30; i++ {
			mustPut(t, s, fmt.Sprintf("k%02d", i), bytes.Repeat([]byte("y"), 48))
		}
	}
	for _, op := range []string{"write", "rename"} {
		s.SetFaultHook(func(got string) error {
			if got == op {
				return errors.New("injected " + got + " fault")
			}
			return nil
		})
		if _, err := s.CompactOnce(); err == nil {
			t.Fatalf("CompactOnce with %s fault: no error", op)
		}
		s.SetFaultHook(nil)
		// Nothing lost: every key still serves, and no stray temp files.
		for i := 0; i < 30; i++ {
			mustGet(t, s, fmt.Sprintf("k%02d", i))
		}
		tmps, _ := filepath.Glob(filepath.Join(s.dir, "*.tmp"))
		if len(tmps) != 0 {
			t.Fatalf("%s fault left temp files: %v", op, tmps)
		}
	}
	// With the hook cleared the postponed compaction succeeds.
	if did, err := s.CompactOnce(); err != nil || !did {
		t.Fatalf("post-fault CompactOnce = %v, %v", did, err)
	}
}

func TestPackAppendFaultSurfaces(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	s.SetFaultHook(func(op string) error {
		if op == "write" {
			return errors.New("injected write fault")
		}
		return nil
	})
	if err := s.Put("k", []byte("v")); err == nil {
		t.Fatal("Put with write fault: no error")
	}
	s.SetFaultHook(nil)
	if _, err := s.Get("k"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("failed put visible: err = %v", err)
	}
	mustPut(t, s, "k", []byte("v"))
	if got := mustGet(t, s, "k"); string(got) != "v" {
		t.Fatalf("k = %q", got)
	}
}

// TestZeroAllocNeedleLookup gates the lookup path (key → volume, offset,
// length): like the sim hot loop and the cluster routing decision, it
// must not allocate.
func TestZeroAllocNeedleLookup(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	key := "sha256:cafef00dcafef00dcafef00dcafef00dcafef00dcafef00dcafef00dcafef00d"
	mustPut(t, s, key, bytes.Repeat([]byte("z"), 128))
	for i := 0; i < 64; i++ {
		mustPut(t, s, fmt.Sprintf("filler-%02d", i), []byte("x"))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		loc, ok := s.locate(key)
		if !ok || loc.size == 0 {
			panic("lookup failed")
		}
		if s.Contains("absent-key") {
			panic("phantom")
		}
	})
	if allocs != 0 {
		t.Errorf("needle lookup allocates %.1f per op, want 0", allocs)
	}
}

// TestPackNeedleCRCCoversFlagsKeyData pins the on-disk CRC definition so
// a format change cannot silently pass verification.
func TestPackNeedleCRCCoversFlagsKeyData(t *testing.T) {
	buf := encodeNeedle(0, "abc", []byte("defg"))
	crc := binary.LittleEndian.Uint32(buf[11:15])
	h := crc32.NewIEEE()
	h.Write([]byte{0})
	h.Write([]byte("abcdefg"))
	if crc != h.Sum32() {
		t.Fatalf("crc = %08x, want %08x", crc, h.Sum32())
	}
	if data, ok := verifyNeedle(buf, "abc"); !ok || string(data) != "defg" {
		t.Fatalf("verifyNeedle = %q, %v", data, ok)
	}
	buf[headerSize+1] ^= 0x01 // flip a key byte
	if _, ok := verifyNeedle(buf, "abc"); ok {
		t.Fatal("verifyNeedle accepted a flipped key byte")
	}
}

func TestPackKeyAndPayloadBounds(t *testing.T) {
	s := openTest(t, t.TempDir(), nil)
	if err := s.Put("", []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
	long := string(bytes.Repeat([]byte("k"), 0x10000))
	if err := s.Put(long, []byte("v")); err == nil {
		t.Error("oversized key accepted")
	}
}
