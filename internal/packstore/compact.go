package packstore

// Compaction reclaims the dead bytes that overwrites, deletions and
// quarantined needles leave behind: a sealed volume whose live-byte
// ratio has dropped below the threshold is rewritten with only its
// surviving needles and atomically swapped into place (temp file +
// rename), so readers and a crash at any point see either the old or the
// new complete volume. Tombstones are retained while their key is absent
// from the index — dropping one early could resurrect an older needle in
// an earlier volume on the next cold-start rebuild.
//
// The audit pass re-verifies every live needle's CRC and quarantines
// mismatches as misses, the same self-healing contract the flat-file
// cache had per entry.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// maybeCompactLocked kicks the background compaction goroutine when a
// sealed volume has decayed below the live-ratio threshold. Caller holds
// the write lock.
func (s *Store) maybeCompactLocked() {
	if s.opts.NoAutoCompact || s.opts.CompactBelow < 0 || s.compacting || s.closed {
		return
	}
	if _, ok := s.candidateLocked(); !ok {
		return
	}
	s.compacting = true
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			did, err := s.CompactOnce()
			if err != nil || !did {
				break
			}
		}
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
	}()
}

// candidateLocked picks the sealed volume with the lowest live ratio
// under the threshold. Caller holds a lock.
func (s *Store) candidateLocked() (uint32, bool) {
	best, bestRatio, found := uint32(0), s.opts.CompactBelow, false
	for _, id := range s.order {
		v := s.vols[id]
		if v == s.active || v.size == 0 {
			continue
		}
		if ratio := float64(v.live) / float64(v.size); ratio < bestRatio {
			best, bestRatio, found = id, ratio, true
		}
	}
	return best, found
}

// CompactOnce compacts the worst sealed volume below the live-ratio
// threshold, if any, reporting whether a volume was rewritten. Safe to
// call concurrently; exposed so tests (and operators) can drive
// compaction deterministically.
func (s *Store) CompactOnce() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, nil
	}
	id, ok := s.candidateLocked()
	if !ok {
		return false, nil
	}
	if err := s.compactVolumeLocked(id); err != nil {
		return false, err
	}
	if m := s.opts.Metrics; m != nil {
		m.PackCompactions.Inc()
	}
	s.publishGaugesLocked()
	return true, nil
}

// compactVolumeLocked rewrites volume id keeping only surviving needles
// and swaps the new file into place. On any error the original volume is
// left untouched (the temp file is removed), so a failed compaction
// degrades to postponed reclamation, never data loss.
func (s *Store) compactVolumeLocked(id uint32) error {
	v := s.vols[id]
	if err := s.fault("write"); err != nil {
		return err
	}
	tmpPath := s.volumePath(id) + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("packstore: compact: %w", err)
	}
	discard := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}

	type moved struct {
		key string
		loc needleLoc
	}
	var moves []moved
	var newLive, newDead, newSize int64

	r := bufio.NewReaderSize(io.NewSectionReader(v.f, 0, v.size), 1<<20)
	w := bufio.NewWriterSize(tmp, 1<<20)
	var hdr [headerSize]byte
	body := make([]byte, 0, 4096)
	off := int64(0)
	for off < v.size {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return discard(fmt.Errorf("packstore: compact scan: %w", err))
		}
		flags := hdr[4]
		keyLen := binary.LittleEndian.Uint16(hdr[5:7])
		dataLen := binary.LittleEndian.Uint32(hdr[7:11])
		span := headerSize + int64(keyLen) + int64(dataLen)
		if binary.LittleEndian.Uint32(hdr[0:4]) != needleMagic || off+span > v.size {
			return discard(fmt.Errorf("packstore: compact scan: volume %d corrupt at offset %d", id, off))
		}
		if cap(body) < int(span)-headerSize {
			body = make([]byte, int(span)-headerSize)
		}
		b := body[:int(span)-headerSize]
		if _, err := io.ReadFull(r, b); err != nil {
			return discard(fmt.Errorf("packstore: compact scan: %w", err))
		}
		key := string(b[:keyLen])

		keep, live := false, false
		if flags&flagTombstone != 0 {
			_, present := s.index[key]
			keep = !present // guards older needles in earlier volumes
		} else if cur, ok := s.index[key]; ok && cur.vol == id && cur.off == off {
			keep, live = true, true
		}
		if keep {
			if _, err := w.Write(hdr[:]); err != nil {
				return discard(err)
			}
			if _, err := w.Write(b); err != nil {
				return discard(err)
			}
			if live {
				moves = append(moves, moved{key, needleLoc{vol: id, off: newSize, keyLen: keyLen, size: dataLen}})
				newLive += span
			} else {
				newDead += span
			}
			newSize += span
		}
		off += span
	}
	if err := w.Flush(); err != nil {
		return discard(err)
	}
	if err := tmp.Close(); err != nil {
		return discard(err)
	}
	if err := s.fault("rename"); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, s.volumePath(id)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("packstore: compact swap: %w", err)
	}

	// The swap is durable; retarget the in-memory state at the new file.
	nf, err := os.OpenFile(s.volumePath(id), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("packstore: compact reopen: %w", err)
	}
	v.f.Close()
	v.f = nf
	v.size, v.live, v.dead = newSize, newLive, newDead
	for _, m := range moves {
		s.index[m.key] = m.loc
	}
	return nil
}

// Audit re-verifies the CRC of every live needle, quarantining
// mismatches so they read as misses (and bumping the audit-failure
// counter). It returns the number of needles quarantined. Dead bytes are
// not audited — compaction discards them wholesale.
func (s *Store) Audit() (int, error) {
	s.mu.RLock()
	type ent struct {
		key string
		loc needleLoc
	}
	snapshot := make([]ent, 0, len(s.index))
	for k, loc := range s.index {
		snapshot = append(snapshot, ent{k, loc})
	}
	s.mu.RUnlock()

	failed := 0
	for _, e := range snapshot {
		s.mu.RLock()
		cur, ok := s.index[e.key]
		if !ok || cur != e.loc || s.closed {
			s.mu.RUnlock()
			continue
		}
		if err := s.fault("read"); err != nil {
			s.mu.RUnlock()
			return failed, err
		}
		buf := make([]byte, e.loc.span())
		_, err := s.vols[e.loc.vol].f.ReadAt(buf, e.loc.off)
		s.mu.RUnlock()
		if err != nil {
			s.quarantine(e.key, e.loc)
			failed++
			continue
		}
		if _, ok := verifyNeedle(buf, e.key); !ok {
			s.quarantine(e.key, e.loc)
			failed++
		}
	}
	return failed, nil
}
