// Package packstore is an append-only pack-volume blob store for the
// small-object regime the flat per-entry disk cache hits at millions of
// cached runs: instead of one file per entry, entries are appended as
// CRC-checked needles into bounded-size pack volumes and located through
// an in-memory needle index (key → volume, offset, length) that is
// rebuilt by scanning volume headers on cold start. One cached DTM run
// costs one buffered write on store and one pread on load, rather than a
// create+write+rename and an open+read+close per entry.
//
// Durability follows the run cache's contract, not a database's: there
// is no fsync, and a crash may lose the tail of the active volume. What
// the format guarantees is that a torn tail is *detected* — the
// cold-start scan truncates the volume past the last structurally valid
// needle and every earlier entry is served — and that payload corruption
// anywhere is caught by the per-needle CRC and degrades to a miss, never
// a bad payload. Deleted and overwritten needles become dead bytes that
// background compaction reclaims by rewriting a volume's live needles
// and atomically swapping the file into place.
//
// The lookup path (key → needle location) is allocation-free and gated
// by TestZeroAllocNeedleLookup, like the repository's other hot paths.
package packstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// Needle layout (little-endian), immediately followed by key then data:
//
//	magic   uint32  0x4c44454e ("NEDL")
//	flags   uint8   bit 0 = tombstone
//	keyLen  uint16
//	dataLen uint32
//	crc     uint32  IEEE CRC32 over flags ∥ key ∥ data
//
// The magic and length fields make the stream self-framing, so a
// cold-start scan can walk a volume without any external index; the CRC
// covers everything the lengths do not structurally pin down.
const (
	needleMagic   = 0x4c44454e
	headerSize    = 4 + 1 + 2 + 4 + 4
	flagTombstone = 0x01

	// maxDataLen bounds one needle's payload; anything larger than this
	// during a scan is treated as a torn header rather than followed.
	maxDataLen = 1 << 30
)

// Options tunes a Store.
type Options struct {
	// MaxVolumeBytes seals the active volume and rolls to a new one once
	// its size passes this bound; <= 0 means 64 MiB.
	MaxVolumeBytes int64
	// CompactBelow is the live-byte ratio under which a sealed volume
	// becomes a compaction candidate; 0 means 0.5, < 0 disables
	// automatic compaction (CompactOnce still works).
	CompactBelow float64
	// NoAutoCompact disables the background compaction goroutine; tests
	// drive CompactOnce deterministically.
	NoAutoCompact bool
	// Metrics, when non-nil, receives the pack gauges and counters
	// (volumes, live/dead bytes, compactions, audit failures).
	Metrics *telemetry.CacheMetrics
}

func (o Options) withDefaults() Options {
	if o.MaxVolumeBytes <= 0 {
		o.MaxVolumeBytes = 64 << 20
	}
	if o.CompactBelow == 0 {
		o.CompactBelow = 0.5
	}
	return o
}

// needleLoc is one index entry: where a key's current needle lives.
type needleLoc struct {
	vol    uint32
	off    int64 // offset of the needle header within the volume
	keyLen uint16
	size   uint32 // payload (data) length
}

// span is the needle's total on-disk footprint.
func (l needleLoc) span() int64 { return headerSize + int64(l.keyLen) + int64(l.size) }

// volume is one pack file. live counts the bytes of needles the index
// currently references; dead counts overwritten, deleted, tombstone and
// quarantined needle bytes, which only compaction reclaims.
type volume struct {
	id   uint32
	f    *os.File
	size int64
	live int64
	dead int64
}

// Store is the pack-volume store. All methods are safe for concurrent
// use: lookups share a read lock, appends and compaction serialize on
// the write lock.
type Store struct {
	dir  string
	opts Options

	mu     sync.RWMutex
	index  map[string]needleLoc
	vols   map[uint32]*volume
	order  []uint32 // volume ids, ascending; last is active
	active *volume
	faults func(op string) error
	closed bool

	compacting bool
	wg         sync.WaitGroup
}

// Open opens (or creates) a pack store in dir, rebuilding the needle
// index by scanning every volume's needle headers in volume order. A
// torn tail — a crash mid-append — is truncated at the last structurally
// valid needle boundary; every earlier entry is served.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("packstore: %w", err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: make(map[string]needleLoc),
		vols:  make(map[uint32]*volume),
	}
	if err := s.load(); err != nil {
		s.closeFiles()
		return nil, err
	}
	s.publishGauges()
	return s, nil
}

// volumePath names volume id's pack file.
func (s *Store) volumePath(id uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("pack-%06d.dat", id))
}

// load scans the directory, rebuilds the index, and opens the active
// volume (creating volume 0 for an empty store). Stray .tmp files from a
// compaction interrupted before its rename are deleted: the original
// volume is still intact.
func (s *Store) load() error {
	names, err := filepath.Glob(filepath.Join(s.dir, "pack-*.dat"))
	if err != nil {
		return fmt.Errorf("packstore: %w", err)
	}
	tmps, _ := filepath.Glob(filepath.Join(s.dir, "pack-*.tmp"))
	for _, t := range tmps {
		os.Remove(t)
	}
	var ids []uint32
	for _, n := range names {
		var id uint32
		if _, err := fmt.Sscanf(filepath.Base(n), "pack-%06d.dat", &id); err != nil {
			continue // foreign file; leave it alone
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Pre-size the index from the on-disk byte total so a million-entry
	// rebuild is not dominated by incremental map rehashing. Entries are a
	// few hundred bytes each; a low per-needle estimate only overshoots
	// capacity, never correctness.
	var totalBytes int64
	for _, id := range ids {
		if st, err := os.Stat(s.volumePath(id)); err == nil {
			totalBytes += st.Size()
		}
	}
	if est := totalBytes / 128; est > int64(len(s.index)) {
		s.index = make(map[string]needleLoc, est)
	}
	for _, id := range ids {
		if err := s.scanVolume(id); err != nil {
			return err
		}
	}
	if len(s.order) == 0 {
		if err := s.rollVolume(0); err != nil {
			return err
		}
	} else {
		s.active = s.vols[s.order[len(s.order)-1]]
	}
	return nil
}

// scanVolume walks one volume's needles in order, replaying them into
// the index. A structurally invalid header or a short tail truncates the
// volume at the last valid boundary — the torn-append recovery path.
// Payload CRCs are deliberately not verified here (cold start over
// millions of needles must stay fast); Get and Audit verify them. The
// scan is one buffered sequential read, not per-needle preads.
func (s *Store) scanVolume(id uint32) error {
	f, err := os.OpenFile(s.volumePath(id), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("packstore: %w", err)
	}
	v := &volume{id: id, f: f}
	s.vols[id] = v // registered up front: same-volume overwrites resolve below
	s.order = append(s.order, id)
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("packstore: %w", err)
	}
	fileSize := st.Size()

	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [headerSize]byte
	keyBuf := make([]byte, 0xffff+1)
	off := int64(0)
	for off+headerSize <= fileSize {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			break
		}
		magic := binary.LittleEndian.Uint32(hdr[0:4])
		flags := hdr[4]
		keyLen := binary.LittleEndian.Uint16(hdr[5:7])
		dataLen := binary.LittleEndian.Uint32(hdr[7:11])
		if magic != needleMagic || keyLen == 0 || dataLen > maxDataLen {
			break // torn or foreign bytes: truncate here
		}
		span := headerSize + int64(keyLen) + int64(dataLen)
		if off+span > fileSize {
			break // needle extends past EOF: torn append
		}
		if _, err := io.ReadFull(r, keyBuf[:keyLen]); err != nil {
			break
		}
		if _, err := r.Discard(int(dataLen)); err != nil {
			break
		}
		key := string(keyBuf[:keyLen])
		if flags&flagTombstone != 0 {
			if old, ok := s.index[key]; ok {
				ov := s.vols[old.vol]
				ov.live -= old.span()
				ov.dead += old.span()
				delete(s.index, key)
			}
			v.dead += span
		} else {
			if old, ok := s.index[key]; ok {
				ov := s.vols[old.vol]
				ov.live -= old.span()
				ov.dead += old.span()
			}
			s.index[key] = needleLoc{vol: id, off: off, keyLen: keyLen, size: dataLen}
			v.live += span
		}
		off += span
	}
	if off < fileSize {
		if err := f.Truncate(off); err != nil {
			return fmt.Errorf("packstore: truncating torn tail of volume %d: %w", id, err)
		}
	}
	v.size = off
	return nil
}

// rollVolume creates and activates an empty volume with the given id.
// Caller holds the write lock (or is single-threaded during Open).
func (s *Store) rollVolume(id uint32) error {
	f, err := os.OpenFile(s.volumePath(id), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("packstore: %w", err)
	}
	v := &volume{id: id, f: f}
	s.vols[id] = v
	s.order = append(s.order, id)
	s.active = v
	return nil
}

// SetFaultHook installs a fault injector consulted before each disk
// operation ("read", "write", "rename"); a non-nil return is surfaced as
// that operation's I/O failure. Used by chaos testing; nil disables. Not
// safe to call concurrently with store use.
func (s *Store) SetFaultHook(f func(op string) error) {
	s.mu.Lock()
	s.faults = f
	s.mu.Unlock()
}

func (s *Store) fault(op string) error {
	if s.faults != nil {
		return s.faults(op)
	}
	return nil
}

// locate is the allocation-free lookup path: key → needle location.
func (s *Store) locate(key string) (needleLoc, bool) {
	s.mu.RLock()
	loc, ok := s.index[key]
	s.mu.RUnlock()
	return loc, ok
}

// Contains reports whether key has a live needle, without touching disk.
func (s *Store) Contains(key string) bool {
	_, ok := s.locate(key)
	return ok
}

// Get returns key's payload. A missing key returns fs.ErrNotExist. A
// needle whose CRC no longer matches is quarantined — dropped from the
// index, its bytes marked dead, the audit-failure counter bumped — and
// reported as fs.ErrNotExist, so callers see a recomputable miss rather
// than a corrupt payload or a batch failure.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	loc, ok := s.index[key]
	if !ok {
		s.mu.RUnlock()
		return nil, fs.ErrNotExist
	}
	if err := s.fault("read"); err != nil {
		s.mu.RUnlock()
		return nil, err
	}
	v := s.vols[loc.vol]
	buf := make([]byte, loc.span())
	_, err := v.f.ReadAt(buf, loc.off)
	s.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	data, ok := verifyNeedle(buf, key)
	if !ok {
		s.quarantine(key, loc)
		return nil, fs.ErrNotExist
	}
	return data, nil
}

// verifyNeedle checks buf (a full needle read at a location the index
// claims holds key) structurally and against its CRC, returning the
// payload.
func verifyNeedle(buf []byte, key string) ([]byte, bool) {
	if len(buf) < headerSize {
		return nil, false
	}
	magic := binary.LittleEndian.Uint32(buf[0:4])
	flags := buf[4]
	keyLen := binary.LittleEndian.Uint16(buf[5:7])
	dataLen := binary.LittleEndian.Uint32(buf[7:11])
	crc := binary.LittleEndian.Uint32(buf[11:15])
	if magic != needleMagic || flags&flagTombstone != 0 ||
		int(keyLen) != len(key) || int64(len(buf)) != headerSize+int64(keyLen)+int64(dataLen) {
		return nil, false
	}
	if string(buf[headerSize:headerSize+int(keyLen)]) != key {
		return nil, false
	}
	h := crc32.NewIEEE()
	h.Write(buf[4:5])         // flags
	h.Write(buf[headerSize:]) // key ∥ data
	if h.Sum32() != crc {
		return nil, false
	}
	return buf[headerSize+int(keyLen):], true
}

// quarantine drops a corrupt needle from the index so it reads as a
// miss; the bytes stay dead until compaction rewrites the volume.
func (s *Store) quarantine(key string, loc needleLoc) {
	s.mu.Lock()
	if cur, ok := s.index[key]; ok && cur == loc {
		delete(s.index, key)
		if v := s.vols[loc.vol]; v != nil {
			v.live -= loc.span()
			v.dead += loc.span()
		}
	}
	s.mu.Unlock()
	if m := s.opts.Metrics; m != nil {
		m.PackAuditFailures.Inc()
	}
	s.publishGauges()
}

// Put appends key's payload as a new needle, superseding any previous
// one (whose bytes become dead). The write is a single buffered append;
// readers only see the entry once the index points at it, so a torn
// write is never served.
func (s *Store) Put(key string, data []byte) error {
	if len(key) == 0 || len(key) > 0xffff {
		return fmt.Errorf("packstore: key length %d out of range", len(key))
	}
	if int64(len(data)) > maxDataLen {
		return fmt.Errorf("packstore: payload %d bytes exceeds %d", len(data), maxDataLen)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("packstore: store closed")
	}
	loc, err := s.append(0, key, data)
	if err != nil {
		return err
	}
	if old, ok := s.index[key]; ok {
		ov := s.vols[old.vol]
		ov.live -= old.span()
		ov.dead += old.span()
	}
	s.index[key] = loc
	s.vols[loc.vol].live += loc.span()
	s.publishGaugesLocked()
	s.maybeCompactLocked()
	return nil
}

// Delete appends a tombstone so the deletion survives a cold-start
// rebuild, and drops the key from the index. Deleting an absent key is a
// no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("packstore: store closed")
	}
	old, ok := s.index[key]
	if !ok {
		return nil
	}
	loc, err := s.append(flagTombstone, key, nil)
	if err != nil {
		return err
	}
	delete(s.index, key)
	ov := s.vols[old.vol]
	ov.live -= old.span()
	ov.dead += old.span()
	s.vols[loc.vol].dead += loc.span() // the tombstone itself is dead weight
	s.publishGaugesLocked()
	s.maybeCompactLocked()
	return nil
}

// append writes one needle at the active volume's tail, rolling to a new
// volume first if the active one is full. Caller holds the write lock.
func (s *Store) append(flags byte, key string, data []byte) (needleLoc, error) {
	if s.active.size >= s.opts.MaxVolumeBytes {
		if err := s.rollVolume(s.active.id + 1); err != nil {
			return needleLoc{}, err
		}
	}
	if err := s.fault("write"); err != nil {
		return needleLoc{}, err
	}
	buf := encodeNeedle(flags, key, data)
	v := s.active
	if _, err := v.f.WriteAt(buf, v.size); err != nil {
		// The tail past v.size is now undefined; drop it so the next
		// append does not build on torn bytes.
		v.f.Truncate(v.size)
		return needleLoc{}, err
	}
	loc := needleLoc{vol: v.id, off: v.size, keyLen: uint16(len(key)), size: uint32(len(data))}
	v.size += loc.span()
	return loc, nil
}

// encodeNeedle builds one needle's on-disk bytes.
func encodeNeedle(flags byte, key string, data []byte) []byte {
	buf := make([]byte, headerSize+len(key)+len(data))
	binary.LittleEndian.PutUint32(buf[0:4], needleMagic)
	buf[4] = flags
	binary.LittleEndian.PutUint16(buf[5:7], uint16(len(key)))
	binary.LittleEndian.PutUint32(buf[7:11], uint32(len(data)))
	copy(buf[headerSize:], key)
	copy(buf[headerSize+len(key):], data)
	h := crc32.NewIEEE()
	h.Write(buf[4:5])
	h.Write(buf[headerSize:])
	binary.LittleEndian.PutUint32(buf[11:15], h.Sum32())
	return buf
}

// Range calls fn for every live entry, verifying each needle as it is
// read; fn returning false stops the iteration. A needle whose CRC no
// longer matches is quarantined and skipped, exactly like a Get miss, so
// derived-state rebuilds (the run catalog) never see corrupt payloads.
// Keys are snapshotted up front: fn may call back into the store.
func (s *Store) Range(fn func(key string, data []byte) bool) error {
	s.mu.RLock()
	keys := make([]string, 0, len(s.index))
	for key := range s.index {
		keys = append(keys, key)
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	for _, key := range keys {
		data, err := s.Get(key)
		if errors.Is(err, fs.ErrNotExist) {
			continue // deleted or quarantined since the snapshot
		}
		if err != nil {
			return err
		}
		if !fn(key, data) {
			return nil
		}
	}
	return nil
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Stats is a point-in-time snapshot of the store's shape.
type Stats struct {
	Entries   int
	Volumes   int
	LiveBytes int64
	DeadBytes int64
}

// Stats snapshots entry, volume and byte accounting.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Entries: len(s.index), Volumes: len(s.order)}
	for _, v := range s.vols {
		st.LiveBytes += v.live
		st.DeadBytes += v.dead
	}
	return st
}

// Close waits for background compaction and closes every volume file.
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeFiles()
}

func (s *Store) closeFiles() error {
	var first error
	for _, v := range s.vols {
		if v.f != nil {
			if err := v.f.Close(); err != nil && first == nil {
				first = err
			}
			v.f = nil
		}
	}
	return first
}

// publishGauges pushes the volume/byte shape into the metrics bundle.
func (s *Store) publishGauges() {
	if s.opts.Metrics == nil {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.publishGaugesLocked()
}

func (s *Store) publishGaugesLocked() {
	m := s.opts.Metrics
	if m == nil {
		return
	}
	var live, dead int64
	for _, v := range s.vols {
		live += v.live
		dead += v.dead
	}
	m.PackVolumes.Set(float64(len(s.order)))
	m.PackLiveBytes.Set(float64(live))
	m.PackDeadBytes.Set(float64(dead))
}
