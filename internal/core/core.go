// Package core is the top-level facade of the reproduction: the paper's
// primary contribution — control-theoretic dynamic thermal management
// driven by a localized thermal-RC model — assembled from the substrate
// packages and exposed through a handful of entry points.
//
// Layering (bottom up):
//
//	isa, workload            synthetic SPEC2000 proxy instruction streams
//	bpred, cache, pipeline   the SimpleScalar-class out-of-order core
//	power                    Wattch-class per-structure power estimation
//	floorplan, thermal       the lumped per-block thermal-RC network
//	control                  PID tuning, anti-windup, loop analysis
//	dtm                      DTM policies: toggling, M, P/PI/PID, scaling
//	sensor                   idealized sensors and boxcar power proxies
//	sim                      the closed loop of Figure 1
//	bench, experiments       the 18-benchmark suite and the paper's tables
//
// Most users need only this package: pick a benchmark (or supply a
// workload.Profile), pick a DTM policy by name, and Run.
package core

import (
	"repro/internal/bench"
	"repro/internal/control"
	"repro/internal/dtm"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config is the full-system simulation configuration.
type Config = sim.Config

// Result is the outcome of a simulation run.
type Result = sim.Result

// Profile describes a synthetic workload.
type Profile = workload.Profile

// Run executes one closed-loop simulation.
func Run(cfg Config) (*Result, error) { return sim.Run(cfg) }

// Benchmarks returns the names of the 18 SPEC CPU2000 proxies.
func Benchmarks() []string { return bench.Names() }

// Benchmark returns a suite profile by name.
func Benchmark(name string) (Profile, error) { return bench.ByName(name) }

// Policies returns the DTM policy names accepted by NewRun.
func Policies() []string {
	return []string{
		"none", "toggle1", "toggle2", "M", "P", "PI", "PID", "mPI", "mPID",
		"throttle", "specctl", "fscale", "vfscale",
	}
}

// NewRun builds a ready-to-Run configuration for a named benchmark under a
// named DTM policy at the paper's operating points. insts bounds the run
// length in committed instructions.
func NewRun(benchmark, policy string, insts uint64) (Config, error) {
	prof, err := bench.ByName(benchmark)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{Workload: prof, MaxInsts: insts}
	if err := bench.ApplyPolicy(&cfg, policy, 0); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// TunedController returns the paper's tuned PID controller of the given
// kind at its default setpoint, ready to embed in a custom dtm.Manager.
func TunedController(kind control.Kind) (*control.PID, error) {
	name := kind.String()
	p, err := bench.NewPolicy(name, 0)
	if err != nil {
		return nil, err
	}
	ct, ok := p.(*dtm.CT)
	if !ok {
		return nil, err
	}
	return ct.Controller(), nil
}
