package core

import (
	"testing"

	"repro/internal/control"
)

func TestBenchmarksAndPolicies(t *testing.T) {
	if len(Benchmarks()) != 18 {
		t.Errorf("benchmarks = %d, want 18", len(Benchmarks()))
	}
	for _, pol := range Policies() {
		if _, err := NewRun("gcc", pol, 1000); err != nil {
			t.Errorf("NewRun(gcc, %s): %v", pol, err)
		}
	}
}

func TestNewRunErrors(t *testing.T) {
	if _, err := NewRun("nope", "PI", 1000); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := NewRun("gcc", "nope", 1000); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	cfg, err := NewRun("twolf", "PI", 50_000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Insts < 50_000 || res.IPC <= 0 {
		t.Errorf("result = %+v", res)
	}
	if res.Policy != "PI" || res.Benchmark != "twolf" {
		t.Errorf("labels = %s/%s", res.Benchmark, res.Policy)
	}
}

func TestTunedController(t *testing.T) {
	for _, k := range []control.Kind{control.KindP, control.KindPI, control.KindPID} {
		ctl, err := TunedController(k)
		if err != nil || ctl == nil {
			t.Fatalf("%v: %v", k, err)
		}
		if ctl.Kp <= 0 {
			t.Errorf("%v: Kp = %v", k, ctl.Kp)
		}
		if ctl.Setpoint < 110 || ctl.Setpoint > 111.3 {
			t.Errorf("%v: setpoint = %v", k, ctl.Setpoint)
		}
	}
}

func TestBenchmarkLookup(t *testing.T) {
	p, err := Benchmark("art")
	if err != nil || p.Name != "art" {
		t.Fatalf("Benchmark(art) = %v, %v", p.Name, err)
	}
	if len(p.Phases) < 2 {
		t.Error("art should be multi-phase")
	}
}
