package cluster

import (
	"testing"

	"repro/internal/telemetry"
)

// The routing decision and per-dispatch bookkeeping sit on the per-run
// hot path of every batch fan-out; like the simulator hot loop, they are
// gated at zero allocations per operation.
func TestZeroAllocRouteAndBookkeeping(t *testing.T) {
	reg := telemetry.NewRegistry()
	cm := telemetry.NewClusterMetrics(reg, 3)
	pool, err := NewPool([]string{"http://w0:8721", "http://w1:8721", "http://w2:8721"},
		PoolConfig{ProbeEvery: -1}, cm, nil)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	d := NewDispatcher(pool, DispatchConfig{}, cm)
	key := "sha256:cafef00dcafef00dcafef00dcafef00dcafef00dcafef00dcafef00dcafef00d"

	allocs := testing.AllocsPerRun(1000, func() {
		w, affinity := pool.Route(key, nil)
		if !d.tryAcquire(w) {
			panic("slot unexpectedly full")
		}
		d.noteDispatch(w, affinity, true)
		d.noteRetry(w)
		d.noteHedge(w)
		d.release(w)
	})
	if allocs != 0 {
		t.Errorf("route+bookkeeping allocates %.1f per dispatch, want 0", allocs)
	}
}
