package cluster

// The dispatcher is the coordinator's reliability layer: it routes one
// run to a worker (route.go), bounds per-worker concurrency with slot
// semaphores so the fleet's own admission controllers are not tripped by
// the coordinator's fan-out, and recovers from failures:
//
//   - transport errors, 5xx and 429 responses are retried a bounded
//     number of times with exponential backoff plus jitter;
//   - a retry excludes the failed worker, so a downed worker's
//     outstanding runs requeue onto survivors immediately (request
//     failures also feed the pool's mark-down accounting, so the prober
//     is not the only path to marking a corpse);
//   - optionally, a straggling request is hedged: after HedgeAfter with
//     no response, the same run is speculatively fired at a second worker
//     (only if that worker has a free slot), the first success wins and
//     the loser is cancelled. A result is delivered exactly once.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/runner"
	"repro/internal/telemetry"
)

// ErrNoHealthyWorkers is returned when every fleet member is marked down.
var ErrNoHealthyWorkers = errors.New("cluster: no healthy workers")

// DispatchConfig tunes the reliability machinery.
type DispatchConfig struct {
	// Retries is the number of re-dispatches after the first attempt
	// fails; < 0 means 0, the default is 3.
	Retries int
	// RetryBase and RetryMax shape the exponential backoff between
	// attempts (defaults 25ms and 1s); each delay is jittered ±50%.
	RetryBase time.Duration
	RetryMax  time.Duration
	// HedgeAfter fires a speculative duplicate at a second worker when
	// the primary has not answered within this delay; 0 disables hedging.
	HedgeAfter time.Duration
	// WorkerInFlight bounds concurrent dispatches per worker (<= 0 means
	// 4). Keep it at or below the workers' own -max-inflight + -queue so
	// batch fan-out does not shed against the fleet's admission control.
	WorkerInFlight int
	// Timeout bounds one attempt's round trip (<= 0 means 120s). It must
	// exceed the workers' -run-timeout or slow runs are retried forever.
	Timeout time.Duration
	// Seed feeds the jitter RNG; the default 1 keeps runs reproducible.
	Seed int64
}

func (c DispatchConfig) withDefaults() DispatchConfig {
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.WorkerInFlight <= 0 {
		c.WorkerInFlight = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Response is one dispatched request's outcome: the worker's HTTP status
// and body, the worker that answered, and whether a hedge won the race.
type Response struct {
	Status int
	Body   []byte
	Worker *Worker
	Hedged bool
}

// Dispatcher routes and sends runs to the fleet. Safe for concurrent use.
type Dispatcher struct {
	pool    *Pool
	cfg     DispatchConfig
	client  *http.Client
	metrics *telemetry.ClusterMetrics // nil = uninstrumented
	slots   []chan struct{}           // per-worker concurrency bound

	mu  sync.Mutex
	rng *rand.Rand // jitter; guarded by mu
}

// NewDispatcher builds the reliability layer over pool. metrics may be
// nil.
func NewDispatcher(pool *Pool, cfg DispatchConfig, metrics *telemetry.ClusterMetrics) *Dispatcher {
	cfg = cfg.withDefaults()
	d := &Dispatcher{
		pool:    pool,
		cfg:     cfg,
		client:  &http.Client{Timeout: cfg.Timeout},
		metrics: metrics,
		slots:   make([]chan struct{}, len(pool.Workers())),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := range d.slots {
		d.slots[i] = make(chan struct{}, cfg.WorkerInFlight)
	}
	return d
}

// Config returns the resolved (defaulted) configuration.
func (d *Dispatcher) Config() DispatchConfig { return d.cfg }

// retryableStatus reports whether a worker response should be re-tried
// elsewhere: server errors and admission sheds (the worker explicitly
// asked for a retry). 4xx client errors are final — every worker would
// reject them identically.
func retryableStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// Do dispatches pathQuery (e.g. "/run?bench=gcc&policy=PI&insts=50000")
// to the fleet, routing by the run's cache key and applying the full
// reliability stack. It returns the winning worker response (which may
// still carry a non-2xx status if retries were exhausted on a retryable
// one, or immediately for final 4xx statuses) or an error when transport
// failed on every attempt, no worker is healthy, or ctx ended.
func (d *Dispatcher) Do(ctx context.Context, key, pathQuery string) (*Response, error) {
	var prev *Worker
	for attempt := 0; ; attempt++ {
		w, affinity := d.pool.Route(key, prev)
		if w == nil {
			return nil, ErrNoHealthyWorkers
		}
		if err := d.acquire(ctx, w); err != nil {
			return nil, err
		}
		d.noteDispatch(w, affinity, attempt > 0 && w != prev)
		resp, err := d.exchange(ctx, key, w, pathQuery)
		if err == nil && !retryableStatus(resp.Status) {
			return resp, nil
		}
		if attempt >= d.cfg.Retries {
			if err != nil {
				return nil, fmt.Errorf("cluster: %s failed after %d attempts: %w", pathQuery, attempt+1, err)
			}
			return resp, nil // retryable status, budget spent: pass it through
		}
		d.noteRetry(w)
		prev = w
		if err := d.sleep(ctx, attempt); err != nil {
			return nil, err
		}
	}
}

// exchange sends one attempt to w, optionally hedging to a second worker
// after HedgeAfter. Exactly one Response is returned; the losing request
// is cancelled and its slot released by its own goroutine.
func (d *Dispatcher) exchange(ctx context.Context, key string, w *Worker, pathQuery string) (*Response, error) {
	if d.cfg.HedgeAfter <= 0 {
		resp, err := d.send(ctx, w, pathQuery)
		d.reportOutcome(ctx, w, resp, err)
		return resp, err
	}

	sctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser once the winner returns

	type outcome struct {
		resp *Response
		err  error
		w    *Worker
	}
	ch := make(chan outcome, 2) // buffered: the loser must never block
	launch := func(target *Worker) {
		go func() {
			resp, err := d.send(sctx, target, pathQuery)
			d.reportOutcome(sctx, target, resp, err)
			ch <- outcome{resp, err, target}
		}()
	}
	launch(w)

	timer := time.NewTimer(d.cfg.HedgeAfter)
	defer timer.Stop()
	pending, hedged := 1, false
	var last outcome
	for {
		select {
		case out := <-ch:
			pending--
			won := out.err == nil && !retryableStatus(out.resp.Status)
			if won || pending == 0 {
				if won && hedged && out.w != w {
					out.resp.Hedged = true
					if d.metrics != nil {
						d.metrics.HedgeWins.Inc()
					}
				}
				if won || out.err != nil || last.resp == nil {
					return out.resp, out.err
				}
				return last.resp, last.err
			}
			last = out // one failed; wait for the other
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			hw, _ := d.pool.Route(key, w)
			if hw == nil || hw == w || !d.tryAcquire(hw) {
				continue // no spare capacity or nowhere to hedge: skip
			}
			d.noteHedge(hw)
			pending++
			launch(hw)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// send issues one HTTP round trip to w and reads the full body. The
// worker's slot is released here, whatever the outcome.
func (d *Dispatcher) send(ctx context.Context, w *Worker, pathQuery string) (*Response, error) {
	defer d.release(w)
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.URL+pathQuery, nil)
	if err != nil {
		return nil, err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if d.metrics != nil {
		d.metrics.DispatchSeconds.Observe(time.Since(start).Seconds())
	}
	return &Response{Status: resp.StatusCode, Body: body, Worker: w}, nil
}

// reportOutcome feeds a completed attempt into the pool's health
// accounting. A transport error only counts against the worker when our
// own context is still live — a hedge loser cancelled mid-flight must not
// mark a healthy worker down.
func (d *Dispatcher) reportOutcome(ctx context.Context, w *Worker, resp *Response, err error) {
	switch {
	case err != nil:
		if ctx.Err() == nil {
			d.pool.ReportFailure(w)
		}
	case resp.Status >= 500:
		// The worker answered, so it is alive — but unwell. Count the
		// failure without resetting on the next 200: a flapping worker
		// should still be markable down. 429 is deliberate shedding, not
		// ill health.
		d.pool.ReportFailure(w)
	default:
		d.pool.ReportSuccess(w)
	}
}

// acquire claims one of w's dispatch slots, waiting until one frees or
// ctx ends. Blocking (rather than overflowing to another worker)
// preserves cache affinity: the run waits for its owner.
func (d *Dispatcher) acquire(ctx context.Context, w *Worker) error {
	select {
	case d.slots[w.Index] <- struct{}{}:
		return nil
	default:
	}
	select {
	case d.slots[w.Index] <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tryAcquire claims a slot only if one is free — hedges are speculative
// and must not queue behind real work.
func (d *Dispatcher) tryAcquire(w *Worker) bool {
	select {
	case d.slots[w.Index] <- struct{}{}:
		return true
	default:
		return false
	}
}

func (d *Dispatcher) release(w *Worker) {
	<-d.slots[w.Index]
	n := w.inflight.Add(-1)
	if w.metrics != nil {
		w.metrics.InFlight.Set(float64(n))
	}
}

// noteDispatch is the per-dispatch bookkeeping: inflight accounting plus
// the dispatched/affinity/requeue counters. It is on the per-run hot path
// and must not allocate (TestZeroAllocRouteAndBookkeeping).
func (d *Dispatcher) noteDispatch(w *Worker, affinity, requeued bool) {
	n := w.inflight.Add(1)
	if w.metrics != nil {
		w.metrics.InFlight.Set(float64(n))
		w.metrics.Dispatched.Inc()
		if requeued {
			w.metrics.Requeued.Inc()
		}
	}
	if d.metrics != nil {
		d.metrics.Dispatched.Inc()
		if affinity {
			d.metrics.AffinityHits.Inc()
		} else {
			d.metrics.AffinityMisses.Inc()
		}
		if requeued {
			d.metrics.Requeued.Inc()
		}
	}
}

func (d *Dispatcher) noteRetry(failed *Worker) {
	if failed.metrics != nil {
		failed.metrics.Retried.Inc()
	}
	if d.metrics != nil {
		d.metrics.Retried.Inc()
	}
}

// noteHedge is the hedged-attempt bookkeeping. Like noteDispatch it must
// pair the slot acquire with an inflight increment — send's deferred
// release decrements unconditionally, so skipping the increment here
// would drift the hedge target's inflight gauge negative and bias
// Pool.Route's least-loaded fallback toward it. Hedges are counted
// separately and deliberately not added to Dispatched.
func (d *Dispatcher) noteHedge(w *Worker) {
	n := w.inflight.Add(1)
	if w.metrics != nil {
		w.metrics.InFlight.Set(float64(n))
		w.metrics.Hedged.Inc()
	}
	if d.metrics != nil {
		d.metrics.Hedges.Inc()
	}
}

// sleep pauses for the attempt's jittered exponential backoff, aborting
// early if ctx ends.
func (d *Dispatcher) sleep(ctx context.Context, attempt int) error {
	base := runner.ExpBackoff(attempt, d.cfg.RetryBase, d.cfg.RetryMax)
	d.mu.Lock()
	jitter := 0.5 + d.rng.Float64() // uniform in [0.5, 1.5)
	d.mu.Unlock()
	delay := time.Duration(float64(base) * jitter)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
