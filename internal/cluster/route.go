package cluster

// Cache-affinity routing: rendezvous (highest-random-weight) hashing of
// run cache keys over the fleet. Every worker scores hash(workerURL, key)
// and the healthy worker with the highest score wins, so:
//
//   - identical runs always land on the same worker, whose disk run cache
//     (cmd/serve -cache-dir) already holds the result;
//   - a worker joining or leaving only moves the keys it owns (1/N of the
//     space), never a full reshuffle;
//   - when the owner is down, the run falls back to the least-loaded
//     healthy worker and the batch still completes.
//
// Route is on the per-run dispatch path and must not allocate: the FNV-1a
// mix is inlined over the two strings (no concatenation), and the scan is
// over the pool's fixed worker slice.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hrwScore mixes the worker identity and the run key into one FNV-1a
// hash. A separator byte keeps ("ab","c") and ("a","bc") distinct.
func hrwScore(worker, key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(worker); i++ {
		h ^= uint64(worker[i])
		h *= fnvPrime64
	}
	h ^= '|'
	h *= fnvPrime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// Owner returns the rendezvous owner of key over the whole fleet,
// ignoring health: the worker whose cache an identical prior run warmed.
// Ties (vanishingly unlikely with 64-bit scores) break toward the lower
// index so routing stays deterministic.
func (p *Pool) Owner(key string) *Worker {
	var owner *Worker
	var best uint64
	for _, w := range p.workers {
		if s := hrwScore(w.URL, key); owner == nil || s > best {
			owner, best = w, s
		}
	}
	return owner
}

// Route picks the dispatch target for key: the rendezvous owner when it
// is healthy, otherwise the least-loaded healthy worker. skip (may be
// nil) is excluded — retries pass the worker that just failed so the
// requeue lands elsewhere even before the prober marks it down. When skip
// is the only healthy worker it is returned anyway (retrying the sole
// survivor beats failing outright); nil means no worker is usable. The
// affinity result reports whether the choice is the cache owner.
func (p *Pool) Route(key string, skip *Worker) (w *Worker, affinity bool) {
	owner := p.Owner(key)
	if owner == nil {
		return nil, false
	}
	if owner.Up() && owner != skip {
		return owner, true
	}
	var least *Worker
	for _, c := range p.workers {
		if c == skip || !c.Up() {
			continue
		}
		if least == nil || c.inflight.Load() < least.inflight.Load() {
			least = c
		}
	}
	if least != nil {
		return least, least == owner
	}
	if skip != nil && skip.Up() {
		return skip, skip == owner
	}
	return nil, false
}
