// Package cluster is the scale-out tier over cmd/serve: a coordinator
// that fans /run and /batch traffic across a fleet of serve workers. The
// pieces compose the serving substrate the earlier layers built:
//
//   - Pool (pool.go): the worker fleet, with periodic /healthz probing,
//     per-worker inflight accounting, and mark-down after consecutive
//     probe or request failures (mark-up on the next success).
//   - Routing (route.go): rendezvous (highest-random-weight) hashing on
//     sim.CacheKey, so identical runs land on the worker whose disk run
//     cache already holds them; a downed owner falls back to the
//     least-loaded healthy worker. The routing decision is
//     allocation-free.
//   - Dispatcher (dispatch.go): bounded retries with exponential backoff
//     and jitter on transport/5xx/429 failures, requeue of a downed
//     worker's outstanding runs onto survivors, and optional hedged
//     requests for stragglers (first response wins, loser cancelled).
//   - Server (server.go): the coordinator HTTP facade, exposing the same
//     /run, /batch, /metrics and /healthz surface as one cmd/serve
//     process, so cmd/loadgen and other callers are unchanged. Batch
//     results are merged deterministically in run-index order.
//
// Everything is testable in-process: workers are plain HTTP servers, so
// httptest can stand up a fleet, kill members mid-batch, and assert the
// coordinator's failover behavior without real processes.
package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// PoolConfig tunes health probing.
type PoolConfig struct {
	// ProbeEvery is the background health-probe period; 0 means 1s, < 0
	// disables the background prober entirely (tests drive ProbeAll).
	ProbeEvery time.Duration
	// MarkDownAfter is the number of consecutive probe/request failures
	// that marks a worker down; <= 0 means 2.
	MarkDownAfter int
	// ProbeTimeout bounds one /healthz round trip; <= 0 means 2s.
	ProbeTimeout time.Duration
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.ProbeEvery == 0 {
		c.ProbeEvery = time.Second
	}
	if c.MarkDownAfter <= 0 {
		c.MarkDownAfter = 2
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	return c
}

// Worker is one fleet member. Its fields are updated concurrently by the
// prober, the dispatcher and request completions; everything is atomic.
type Worker struct {
	// Index is the worker's position in the pool (and in the
	// ClusterMetrics per-worker bundles).
	Index int
	// URL is the worker's base URL, also its rendezvous-hash identity: the
	// routing of a key moves only when the fleet membership changes, not
	// when a worker restarts.
	URL string

	inflight atomic.Int64
	down     atomic.Bool
	fails    atomic.Int32 // consecutive failures since the last success

	metrics *telemetry.ClusterWorkerMetrics // nil = uninstrumented
}

// Up reports whether the worker is currently considered healthy.
func (w *Worker) Up() bool { return !w.down.Load() }

// InFlight returns the number of dispatches outstanding on this worker.
func (w *Worker) InFlight() int64 { return w.inflight.Load() }

// Fails returns the current consecutive-failure count.
func (w *Worker) Fails() int { return int(w.fails.Load()) }

// Pool is the worker fleet plus its health prober. All methods are safe
// for concurrent use.
type Pool struct {
	cfg     PoolConfig
	workers []*Worker
	client  *http.Client
	metrics *telemetry.ClusterMetrics // nil = uninstrumented
	logf    func(format string, args ...any)
}

// NewPool builds a fleet from worker base URLs (trailing slashes are
// trimmed; they would change the rendezvous identity and break URL
// joining). metrics and logf may be nil. Workers start healthy, so
// traffic flows before the first probe round completes.
func NewPool(urls []string, cfg PoolConfig, metrics *telemetry.ClusterMetrics, logf func(format string, args ...any)) (*Pool, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:     cfg,
		client:  &http.Client{Timeout: cfg.ProbeTimeout},
		metrics: metrics,
		logf:    logf,
	}
	seen := make(map[string]bool, len(urls))
	for i, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("cluster: empty worker URL at position %d", i)
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate worker URL %s", u)
		}
		seen[u] = true
		w := &Worker{Index: len(p.workers), URL: u}
		if metrics != nil && w.Index < len(metrics.Workers) {
			w.metrics = metrics.Workers[w.Index]
			w.metrics.Up.Set(1)
		}
		p.workers = append(p.workers, w)
	}
	if metrics != nil {
		metrics.WorkersUp.Set(float64(len(p.workers)))
	}
	return p, nil
}

// Workers returns the fleet in index order. The slice is shared: do not
// mutate it.
func (p *Pool) Workers() []*Worker { return p.workers }

// Healthy returns the number of workers currently marked up.
func (p *Pool) Healthy() int {
	n := 0
	for _, w := range p.workers {
		if w.Up() {
			n++
		}
	}
	return n
}

// Start launches the background health prober; it stops when ctx is
// cancelled. A negative ProbeEvery disables it (tests call ProbeAll).
func (p *Pool) Start(ctx context.Context) {
	if p.cfg.ProbeEvery < 0 {
		return
	}
	go func() {
		t := time.NewTicker(p.cfg.ProbeEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				p.ProbeAll(ctx)
			}
		}
	}()
}

// ProbeAll runs one synchronous health-probe round over the whole fleet.
func (p *Pool) ProbeAll(ctx context.Context) {
	for _, w := range p.workers {
		p.probe(ctx, w)
	}
}

// probe issues one /healthz round trip and feeds the outcome into the
// same mark-down/mark-up accounting as real dispatches.
func (p *Pool) probe(ctx context.Context, w *Worker) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.URL+"/healthz", nil)
	if err != nil {
		p.ReportFailure(w)
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.ReportFailure(w)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		p.ReportSuccess(w)
	} else {
		p.ReportFailure(w)
	}
}

// ReportFailure records one probe or dispatch failure against w, marking
// it down once MarkDownAfter consecutive failures accumulate. Request
// failures feed the same counter as probes so a dying worker is marked
// down at traffic speed, not probe speed.
func (p *Pool) ReportFailure(w *Worker) {
	if int(w.fails.Add(1)) < p.cfg.MarkDownAfter {
		return
	}
	if w.down.CompareAndSwap(false, true) {
		p.logf("worker %s marked down after %d consecutive failures", w.URL, w.Fails())
		if w.metrics != nil {
			w.metrics.Up.Set(0)
		}
		p.updateUpGauge()
	}
}

// ReportSuccess records a successful probe or dispatch, clearing the
// failure streak and marking the worker back up if it was down.
func (p *Pool) ReportSuccess(w *Worker) {
	w.fails.Store(0)
	if w.down.CompareAndSwap(true, false) {
		p.logf("worker %s marked up", w.URL)
		if w.metrics != nil {
			w.metrics.Up.Set(1)
		}
		p.updateUpGauge()
	}
}

func (p *Pool) updateUpGauge() {
	if p.metrics != nil {
		p.metrics.WorkersUp.Set(float64(p.Healthy()))
	}
}
