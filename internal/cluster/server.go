package cluster

// The coordinator HTTP facade: the same /run, /batch, /metrics and
// /healthz surface as one cmd/serve worker, backed by the fleet instead
// of a local simulator. cmd/serve -coordinator mounts this mux, so
// cmd/loadgen and every other caller is unchanged when a deployment grows
// from one host to a fleet.
//
//   - /run proxies one simulation to the fleet, routed by the run's
//     content-addressed cache key; the worker's JSON body and status pass
//     through, with X-Cluster-Worker naming the member that answered.
//   - /batch fans a bench × policy grid out across the fleet and merges
//     the per-run summaries deterministically, ordered by run index (not
//     arrival order): the merged document is byte-identical whether it
//     was computed by one worker or a fleet absorbing mid-batch failures.
//   - /healthz reports per-worker state (up/down, inflight, consecutive
//     failures) as JSON; 200 while at least one worker is healthy.
//   - /metrics exposes the ClusterMetrics bundle (plus the standard
//     serving request accounting) as Prometheus text.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/runindex"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config assembles the coordinator.
type Config struct {
	// Workers lists the fleet members' base URLs.
	Workers []string
	// Insts is the default committed-instruction budget for /run and
	// /batch when the request does not carry insts=; 0 means 1e6.
	Insts    uint64
	Pool     PoolConfig
	Dispatch DispatchConfig
}

// Server is the coordinator. Build it with NewServer.
type Server struct {
	cfg   Config
	pool  *Pool
	disp  *Dispatcher
	reg   *telemetry.Registry
	cm    *telemetry.ClusterMetrics
	sm    *telemetry.ServingMetrics
	ids   *serving.RequestIDs
	logf  func(format string, args ...any)
	start time.Time
}

// NewServer builds the coordinator and its routed mux. ctx bounds the
// background health prober's lifetime. logf may be nil (silent).
func NewServer(ctx context.Context, cfg Config, logf func(format string, args ...any)) (*Server, *http.ServeMux, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Insts == 0 {
		cfg.Insts = 1_000_000
	}
	reg := telemetry.NewRegistry()
	cm := telemetry.NewClusterMetrics(reg, len(cfg.Workers))
	pool, err := NewPool(cfg.Workers, cfg.Pool, cm, logf)
	if err != nil {
		return nil, nil, err
	}
	s := &Server{
		cfg:   cfg,
		pool:  pool,
		disp:  NewDispatcher(pool, cfg.Dispatch, cm),
		reg:   reg,
		cm:    cm,
		sm:    telemetry.NewServingMetrics(reg),
		ids:   serving.NewRequestIDs(),
		logf:  logf,
		start: time.Now(),
	}
	pool.Start(ctx)

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/run", serving.Instrument(s.sm, s.handleRun))
	mux.HandleFunc("/batch", serving.Instrument(s.sm, s.handleBatch))
	mux.HandleFunc("/query", serving.Instrument(s.sm, s.handleQuery))
	return s, mux, nil
}

// Pool exposes the fleet (tests and cmd/serve logging).
func (s *Server) Pool() *Pool { return s.pool }

// Dispatcher exposes the reliability layer.
func (s *Server) Dispatcher() *Dispatcher { return s.disp }

// Metrics exposes the cluster telemetry bundle.
func (s *Server) Metrics() *telemetry.ClusterMetrics { return s.cm }

// Registry exposes the coordinator's metric registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// WorkerHealth is one fleet member's row in the /healthz body.
type WorkerHealth struct {
	URL              string `json:"url"`
	Up               bool   `json:"up"`
	InFlight         int64  `json:"inflight"`
	ConsecutiveFails int    `json:"consecutive_fails"`
}

// ClusterHealth is the coordinator's /healthz body.
type ClusterHealth struct {
	Status         string         `json:"status"`
	HealthyWorkers int            `json:"healthy_workers"`
	TotalWorkers   int            `json:"total_workers"`
	UptimeSeconds  float64        `json:"uptime_seconds"`
	Workers        []WorkerHealth `json:"workers"`
}

// handleHealthz reports per-worker state; 200 while the fleet can serve
// (at least one healthy worker), 503 otherwise.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := ClusterHealth{
		HealthyWorkers: s.pool.Healthy(),
		TotalWorkers:   len(s.pool.Workers()),
		UptimeSeconds:  time.Since(s.start).Seconds(),
	}
	for _, wk := range s.pool.Workers() {
		h.Workers = append(h.Workers, WorkerHealth{
			URL: wk.URL, Up: wk.Up(), InFlight: wk.InFlight(), ConsecutiveFails: wk.Fails(),
		})
	}
	status := http.StatusOK
	h.Status = "ok"
	if h.HealthyWorkers == 0 {
		status = http.StatusServiceUnavailable
		h.Status = "no healthy workers"
	}
	if err := serving.WriteJSON(w, status, h); err != nil {
		s.logf("healthz write: %v", err)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.logf("metrics write: %v", err)
	}
}

// runSpec is one fully validated run: its fleet-facing query and the
// cache key that routes it.
type runSpec struct {
	Bench  string
	Policy string
	Insts  uint64
	key    string
	query  string
}

// makeSpec validates one (bench, policy, insts) triple by building the
// exact simulation config a worker will build, and derives the routing
// key from it — the same sim.CacheKey the worker's disk cache uses, so
// affinity routing and the cache agree by construction.
func makeSpec(benchName, policy string, insts uint64) (runSpec, error) {
	if insts == 0 {
		return runSpec{}, fmt.Errorf("bad insts: must be positive")
	}
	prof, err := bench.ByName(benchName)
	if err != nil {
		return runSpec{}, err
	}
	cfg := sim.Config{Workload: prof, MaxInsts: insts}
	if err := bench.ApplyPolicy(&cfg, policy, 0); err != nil {
		return runSpec{}, err
	}
	key, ok := sim.CacheKey(cfg)
	if !ok {
		return runSpec{}, fmt.Errorf("config for %s/%s is not routable", benchName, policy)
	}
	return runSpec{
		Bench:  benchName,
		Policy: policy,
		Insts:  insts,
		key:    key,
		query:  fmt.Sprintf("/run?bench=%s&policy=%s&insts=%d", benchName, policy, insts),
	}, nil
}

// handleRun proxies one simulation to the fleet.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	reqID := s.ids.Next()
	w.Header().Set("X-Request-Id", reqID)

	q := r.URL.Query()
	benchName := q.Get("bench")
	if benchName == "" {
		benchName = "gcc"
	}
	policy := q.Get("policy")
	if policy == "" {
		policy = "PI"
	}
	insts := s.cfg.Insts
	if v := q.Get("insts"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			serving.WriteError(w, s.logf, reqID, http.StatusBadRequest, fmt.Errorf("bad insts: %w", err))
			return
		}
		insts = n
	}
	spec, err := makeSpec(benchName, policy, insts)
	if err != nil {
		serving.WriteError(w, s.logf, reqID, http.StatusBadRequest, err)
		return
	}

	resp, err := s.disp.Do(r.Context(), spec.key, spec.query)
	if err != nil {
		serving.WriteError(w, s.logf, reqID, statusForDispatchError(err), err)
		return
	}
	w.Header().Set("X-Cluster-Worker", resp.Worker.URL)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.Status)
	if _, err := w.Write(resp.Body); err != nil {
		s.logf("req %s: writing proxied response: %v", reqID, err)
	}
}

// statusForDispatchError maps dispatcher failures onto the gateway
// statuses a proxy owes its callers: 503 when the whole fleet is down,
// 499/504 for the caller's own cancellation or deadline, 502 when
// transport to the fleet failed.
func statusForDispatchError(err error) int {
	switch {
	case errors.Is(err, ErrNoHealthyWorkers):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return serving.StatusClientClosedRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadGateway
	}
}

// handleQuery answers a run-catalog question across the whole fleet:
// the raw query string is forwarded verbatim to every healthy worker's
// /query (each worker indexes its own cache), and the per-worker answers
// are merged — deduplicated by cache key (affinity routing means a run
// usually lives on one worker, but requeues and hedges copy entries) and
// sorted deterministically — so the caller sees one catalog regardless
// of how results are spread over the fleet. The filters are validated
// here first so a malformed query is a 400, not a fleet of them.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	reqID := s.ids.Next()
	w.Header().Set("X-Request-Id", reqID)

	q, err := runindex.ParseQuery(r.URL.Query())
	if err != nil {
		serving.WriteError(w, s.logf, reqID, http.StatusBadRequest, err)
		return
	}
	workers := s.pool.Workers()
	bodies := make([][]byte, len(workers))
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, wk := range workers {
		if !wk.Up() {
			continue
		}
		wg.Add(1)
		go func(i int, wk *Worker) {
			defer wg.Done()
			bodies[i], errs[i] = s.queryWorker(r.Context(), wk, r.URL.RawQuery)
		}(i, wk)
	}
	wg.Wait()

	limit := q.Limit
	if limit <= 0 {
		limit = runindex.DefaultLimit
	}
	merged := runindex.QueryResponse{Rows: []runindex.Record{}}
	seen := map[string]bool{}
	for i := range workers {
		if bodies[i] == nil {
			if errs[i] != nil {
				s.logf("req %s: query on %s: %v", reqID, workers[i].URL, errs[i])
			}
			continue
		}
		var part runindex.QueryResponse
		if err := json.Unmarshal(bodies[i], &part); err != nil {
			s.logf("req %s: bad query body from %s: %v", reqID, workers[i].URL, err)
			continue
		}
		merged.Workers++
		merged.Records += part.Records
		for _, row := range part.Rows {
			if !seen[row.Key] {
				seen[row.Key] = true
				merged.Rows = append(merged.Rows, row)
			}
		}
	}
	if merged.Workers == 0 {
		serving.WriteError(w, s.logf, reqID, http.StatusServiceUnavailable,
			errors.New("no worker answered the catalog query"))
		return
	}
	sort.Slice(merged.Rows, func(i, j int) bool {
		a, b := &merged.Rows[i], &merged.Rows[j]
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		return a.Key < b.Key
	})
	if len(merged.Rows) > limit {
		merged.Rows = merged.Rows[:limit]
	}
	merged.Count = len(merged.Rows)
	if err := serving.WriteJSON(w, http.StatusOK, merged); err != nil {
		s.logf("req %s: writing query response: %v", reqID, err)
	}
}

// queryWorker fetches one worker's catalog answer. A worker without a
// catalog (no cache dir) answers 404; that is an empty contribution, not
// an error.
func (s *Server) queryWorker(ctx context.Context, wk *Worker, rawQuery string) ([]byte, error) {
	url := wk.URL + "/query"
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.disp.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		// The worker runs without a catalog (no cache dir): it answered,
		// with nothing to contribute.
		return []byte(`{"count":0,"records":0,"rows":[]}`), nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker status %d", resp.StatusCode)
	}
	return body, nil
}

// RunResult is one merged batch row: exactly the fields determined by the
// simulated trajectory. Volatile per-request detail (request IDs, cache
// hit flags, the worker that happened to answer) is deliberately absent,
// so the merged batch document is byte-identical across fleet sizes and
// failure histories.
type RunResult struct {
	Index     int     `json:"index"`
	Benchmark string  `json:"benchmark"`
	Policy    string  `json:"policy"`
	IPC       float64 `json:"ipc"`
	Cycles    uint64  `json:"cycles"`
	Insts     uint64  `json:"insts"`
	AvgPower  float64 `json:"avg_power"`
	AvgDuty   float64 `json:"avg_duty"`
	EmergFrac float64 `json:"emerg_frac"`
}

// workerSummary mirrors the JSON body cmd/serve's /run emits.
type workerSummary struct {
	IPC       float64 `json:"ipc"`
	Cycles    uint64  `json:"cycles"`
	Insts     uint64  `json:"insts"`
	AvgPower  float64 `json:"avg_power"`
	AvgDuty   float64 `json:"avg_duty"`
	EmergFrac float64 `json:"emerg_frac"`
}

// BatchResponse is the merged result of one fan-out batch.
type BatchResponse struct {
	Benches  []string    `json:"benches"`
	Policies []string    `json:"policies"`
	Insts    uint64      `json:"insts"`
	Runs     []RunResult `json:"runs"`
	Failed   int         `json:"failed"`
	Errors   []string    `json:"errors,omitempty"`
}

// handleBatch fans a bench × policy grid out across the fleet and
// answers with the deterministic merge. Parameters: benches= and
// policies= (comma-separated; defaults are the full 18-benchmark table
// and the standard policy evaluation set), insts=, and kind= for
// cmd/serve compatibility (kind=baseline selects the no-DTM policy).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	reqID := s.ids.Next()
	w.Header().Set("X-Request-Id", reqID)

	q := r.URL.Query()
	benches := bench.Names()
	if v := q.Get("benches"); v != "" {
		benches = strings.Split(v, ",")
	}
	policies := experiments.DefaultParams().Policies
	if q.Get("kind") == "baseline" {
		policies = []string{"none"}
	}
	if v := q.Get("policies"); v != "" {
		policies = strings.Split(v, ",")
	}
	insts := s.cfg.Insts
	if v := q.Get("insts"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			serving.WriteError(w, s.logf, reqID, http.StatusBadRequest, fmt.Errorf("bad insts: %w", err))
			return
		}
		insts = n
	}

	specs := make([]runSpec, 0, len(benches)*len(policies))
	for _, b := range benches {
		for _, p := range policies {
			spec, err := makeSpec(b, p, insts)
			if err != nil {
				serving.WriteError(w, s.logf, reqID, http.StatusBadRequest, err)
				return
			}
			specs = append(specs, spec)
		}
	}

	resp := s.runBatch(r.Context(), specs)
	resp.Benches, resp.Policies, resp.Insts = benches, policies, insts
	status := http.StatusOK
	if resp.Failed == len(specs) && len(specs) > 0 {
		status = http.StatusBadGateway // nothing completed: surface the outage
	}
	if err := serving.WriteJSON(w, status, resp); err != nil {
		s.logf("req %s: writing batch response: %v", reqID, err)
	}
}

// runBatch dispatches every spec concurrently (bounded by the per-worker
// slot semaphores) and merges the results in run-index order. A worker
// dying mid-batch is absorbed here: its failed dispatches are requeued
// onto survivors by the dispatcher, and the merge is indifferent to which
// member finally answered.
func (s *Server) runBatch(ctx context.Context, specs []runSpec) BatchResponse {
	runs := make([]RunResult, len(specs))
	errs := make([]string, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec runSpec) {
			defer wg.Done()
			resp, err := s.disp.Do(ctx, spec.key, spec.query)
			if err != nil {
				errs[i] = fmt.Sprintf("%s/%s: %v", spec.Bench, spec.Policy, err)
				return
			}
			if resp.Status != http.StatusOK {
				errs[i] = fmt.Sprintf("%s/%s: worker status %d", spec.Bench, spec.Policy, resp.Status)
				return
			}
			var sum workerSummary
			if err := json.Unmarshal(resp.Body, &sum); err != nil {
				errs[i] = fmt.Sprintf("%s/%s: bad worker body: %v", spec.Bench, spec.Policy, err)
				return
			}
			runs[i] = RunResult{
				Index:     i,
				Benchmark: spec.Bench,
				Policy:    spec.Policy,
				IPC:       sum.IPC,
				Cycles:    sum.Cycles,
				Insts:     sum.Insts,
				AvgPower:  sum.AvgPower,
				AvgDuty:   sum.AvgDuty,
				EmergFrac: sum.EmergFrac,
			}
		}(i, spec)
	}
	wg.Wait()

	out := BatchResponse{Runs: make([]RunResult, 0, len(specs))}
	for i := range specs {
		if errs[i] != "" {
			out.Failed++
			out.Errors = append(out.Errors, errs[i])
			continue
		}
		out.Runs = append(out.Runs, runs[i])
	}
	return out
}
