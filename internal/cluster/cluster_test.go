package cluster

// In-process fleet tests: real HTTP workers (httptest) running the real
// simulator behind a real coordinator, so affinity, failover and hedging
// are exercised end to end — including killing a worker mid-batch by
// dropping its connections (panic(http.ErrAbortHandler) behaves like a
// SIGKILL from the coordinator's point of view).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/runindex"
	"repro/internal/runner"
	"repro/internal/sim"
)

// fleetWorker is a minimal but faithful stand-in for one cmd/serve
// process: it answers /healthz and /run (with the same JSON summary keys,
// including the volatile request_id/cached fields the coordinator must
// strip), optionally backed by the same content-addressed run cache.
type fleetWorker struct {
	srv     *httptest.Server
	cache   *runner.Cache[*sim.Result]
	catalog *runindex.Catalog // non-nil when the worker has a cache

	dead      atomic.Bool  // drop every connection (SIGKILL emulation)
	killAfter atomic.Int64 // > 0: die permanently after serving this many runs
	served    atomic.Int64
	delayMs   atomic.Int64 // straggler emulation for hedging tests
}

func newFleetWorker(t *testing.T, withCache bool) *fleetWorker {
	t.Helper()
	fw := &fleetWorker{}
	if withCache {
		c, err := runner.NewCache[*sim.Result](t.TempDir(), nil)
		if err != nil {
			t.Fatalf("worker cache: %v", err)
		}
		fw.cache = c
		cat, err := runindex.Open("", runindex.Options{})
		if err != nil {
			t.Fatalf("worker catalog: %v", err)
		}
		fw.catalog = cat
		c.SetIngest(func(key string, res *sim.Result) {
			cat.Ingest(runindex.FromResult(key, res))
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if fw.dead.Load() {
			panic(http.ErrAbortHandler)
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/run", fw.handleRun)
	mux.HandleFunc("/query", fw.handleQuery)
	fw.srv = httptest.NewServer(mux)
	t.Cleanup(fw.srv.Close)
	return fw
}

func (fw *fleetWorker) handleRun(w http.ResponseWriter, r *http.Request) {
	if fw.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	n := fw.served.Add(1)
	if ka := fw.killAfter.Load(); ka > 0 && n > ka {
		fw.dead.Store(true)
		panic(http.ErrAbortHandler)
	}
	if d := fw.delayMs.Load(); d > 0 {
		select {
		case <-r.Context().Done():
			panic(http.ErrAbortHandler)
		case <-time.After(time.Duration(d) * time.Millisecond):
		}
	}

	q := r.URL.Query()
	insts, err := strconv.ParseUint(q.Get("insts"), 10, 64)
	if err != nil || insts == 0 {
		http.Error(w, "bad insts", http.StatusBadRequest)
		return
	}
	prof, err := bench.ByName(q.Get("bench"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cfg := sim.Config{Workload: prof, MaxInsts: insts}
	if err := bench.ApplyPolicy(&cfg, q.Get("policy"), 0); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key, _ := sim.CacheKey(cfg)

	var res *sim.Result
	cached := false
	if fw.cache != nil {
		if hit, ok := fw.cache.Get(key); ok {
			res, cached = hit, true
		}
	}
	if res == nil {
		res, err = sim.RunContext(r.Context(), cfg)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fw.cache.Put(key, res)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		// Volatile per-request fields, deliberately different on every
		// response: the coordinator's merge must not let them through.
		"request_id": fmt.Sprintf("%s-%06d", fw.srv.URL, n),
		"cached":     cached,
		"benchmark":  res.Benchmark,
		"policy":     res.Policy,
		"ipc":        res.IPC,
		"cycles":     res.Cycles,
		"insts":      res.Insts,
		"avg_power":  res.AvgChipPower,
		"avg_duty":   res.AvgDuty,
		"emerg_frac": res.EmergencyFrac(),
	})
}

// handleQuery mirrors cmd/serve's /query: 404 without a catalog, 400 on
// malformed filters, else the worker-local catalog answer.
func (fw *fleetWorker) handleQuery(w http.ResponseWriter, r *http.Request) {
	if fw.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	if fw.catalog == nil {
		http.Error(w, "no catalog", http.StatusNotFound)
		return
	}
	q, err := runindex.ParseQuery(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(fw.catalog.Run(&q))
}

func newFleet(t *testing.T, n int, withCache bool) ([]*fleetWorker, []string) {
	t.Helper()
	workers := make([]*fleetWorker, n)
	urls := make([]string, n)
	for i := range workers {
		workers[i] = newFleetWorker(t, withCache)
		urls[i] = workers[i].srv.URL
	}
	return workers, urls
}

// newCoordinator stands up a coordinator over urls with test-friendly
// timings: no background prober (tests drive ProbeAll), mark-down after a
// single failure, millisecond backoff.
func newCoordinator(t *testing.T, urls []string, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Workers: urls,
		Insts:   20_000,
		Pool:    PoolConfig{ProbeEvery: -1, MarkDownAfter: 1},
		Dispatch: DispatchConfig{
			Retries:   4,
			RetryBase: time.Millisecond,
			RetryMax:  5 * time.Millisecond,
			Timeout:   30 * time.Second,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s, mux, err := NewServer(ctx, cfg, nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(mux)
	t.Cleanup(func() { hs.Close(); cancel() })
	return s, hs
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, resp.Header, body
}

// specKey reproduces the coordinator's routing key for one run, so tests
// can find which worker owns it.
func specKey(t *testing.T, benchName, policy string, insts uint64) string {
	t.Helper()
	spec, err := makeSpec(benchName, policy, insts)
	if err != nil {
		t.Fatalf("makeSpec(%s,%s): %v", benchName, policy, err)
	}
	return spec.key
}

func TestClusterRunProxiesWithStickyWorker(t *testing.T) {
	_, urls := newFleet(t, 3, true)
	_, hs := newCoordinator(t, urls, nil)

	var first string
	for i := 0; i < 5; i++ {
		status, hdr, body := get(t, hs.URL+"/run?bench=gcc&policy=PI&insts=10000")
		if status != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, status, body)
		}
		wkr := hdr.Get("X-Cluster-Worker")
		if wkr == "" {
			t.Fatalf("run %d: no X-Cluster-Worker header", i)
		}
		if first == "" {
			first = wkr
		} else if wkr != first {
			t.Errorf("run %d landed on %s, first on %s: affinity broken", i, wkr, first)
		}
		var sum struct {
			IPC    float64 `json:"ipc"`
			Cycles uint64  `json:"cycles"`
		}
		if err := json.Unmarshal(body, &sum); err != nil || sum.IPC <= 0 || sum.Cycles == 0 {
			t.Fatalf("run %d: bad body (err %v): %s", i, err, body)
		}
	}
}

func TestClusterBatchAffinityHitRatio(t *testing.T) {
	_, urls := newFleet(t, 3, true)
	s, hs := newCoordinator(t, urls, nil)

	const q = "/batch?benches=gcc,vortex,art,mesa&policies=PI,PID&insts=10000"
	var firstBody []byte
	for round := 0; round < 2; round++ {
		status, _, body := get(t, hs.URL+q)
		if status != http.StatusOK {
			t.Fatalf("batch round %d: status %d: %s", round, status, body)
		}
		var br BatchResponse
		if err := json.Unmarshal(body, &br); err != nil {
			t.Fatalf("batch round %d: %v", round, err)
		}
		if br.Failed != 0 || len(br.Runs) != 8 {
			t.Fatalf("batch round %d: failed=%d runs=%d, want 0/8", round, br.Failed, len(br.Runs))
		}
		if round == 0 {
			firstBody = body
		} else if !bytes.Equal(firstBody, body) {
			t.Error("repeated batch bodies differ: merge is not deterministic")
		}
	}

	hits, misses := s.Metrics().AffinityHits.Value(), s.Metrics().AffinityMisses.Value()
	if hits+misses == 0 {
		t.Fatal("no dispatches counted")
	}
	if ratio := float64(hits) / float64(hits+misses); ratio < 0.9 {
		t.Errorf("affinity hit ratio %.2f (hits %d, misses %d), want >= 0.9", ratio, hits, misses)
	}
}

func TestClusterWorkerKilledMidBatchIsRequeued(t *testing.T) {
	benches := []string{"gcc", "vortex", "art"}
	policies := []string{"PI", "PID"}
	const insts = 10_000
	const q = "/batch?benches=gcc,vortex,art&policies=PI,PID&insts=10000"

	// Reference: the same batch computed by a single-worker cluster.
	_, refURLs := newFleet(t, 1, false)
	_, refHS := newCoordinator(t, refURLs, nil)
	refStatus, _, refBody := get(t, refHS.URL+q)
	if refStatus != http.StatusOK {
		t.Fatalf("reference batch: status %d: %s", refStatus, refBody)
	}

	// Fleet of three; find the worker that owns the most of the batch's
	// keys (pigeonhole: at least one owns >= 2) and arrange for it to die
	// after serving its first run — mid-batch, from the coordinator's
	// point of view.
	workers, urls := newFleet(t, 3, false)
	s, hs := newCoordinator(t, urls, nil)
	byURL := map[string]*fleetWorker{}
	for i, w := range workers {
		byURL[urls[i]] = w
	}
	owned := map[string]int{}
	for _, b := range benches {
		for _, p := range policies {
			owned[s.Pool().Owner(specKey(t, b, p, insts)).URL]++
		}
	}
	victimURL, max := "", 0
	for u, n := range owned {
		if n > max {
			victimURL, max = u, n
		}
	}
	if max < 2 {
		t.Fatalf("owner counts %v: no worker owns 2 keys", owned)
	}
	byURL[victimURL].killAfter.Store(1)

	status, _, body := get(t, hs.URL+q)
	if status != http.StatusOK {
		t.Fatalf("batch with kill: status %d: %s", status, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("batch with kill: %v", err)
	}
	if br.Failed != 0 || len(br.Errors) != 0 {
		t.Fatalf("batch with kill: failed=%d errors=%v, want none", br.Failed, br.Errors)
	}
	if !bytes.Equal(body, refBody) {
		t.Errorf("merged batch differs from single-worker reference:\n fleet: %s\n ref:   %s", body, refBody)
	}
	if got := s.Metrics().Requeued.Value(); got < 1 {
		t.Errorf("cluster_requeued_total = %d, want >= 1", got)
	}
	// The victim's in-flight success can race its fatal failure, flapping
	// it briefly back up; one probe round settles the corpse down.
	s.Pool().ProbeAll(context.Background())
	for _, w := range s.Pool().Workers() {
		if w.URL == victimURL && w.Up() {
			t.Error("killed worker still marked up after a probe round")
		}
	}
}

func TestClusterHedgeWinsWithoutDoubleCounting(t *testing.T) {
	workers, urls := newFleet(t, 2, false)
	s, _ := newCoordinator(t, urls, func(c *Config) {
		c.Dispatch.Retries = 0
		c.Dispatch.HedgeAfter = 50 * time.Millisecond
	})

	// Make the key's rendezvous owner a straggler, so the hedge fires and
	// the other worker answers first.
	key := specKey(t, "gcc", "PI", 10_000)
	owner := s.Pool().Owner(key)
	for i, u := range urls {
		if u == owner.URL {
			workers[i].delayMs.Store(2000)
		}
	}

	resp, err := s.Dispatcher().Do(context.Background(), key, "/run?bench=gcc&policy=PI&insts=10000")
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Status != http.StatusOK {
		t.Fatalf("status %d: %s", resp.Status, resp.Body)
	}
	if !resp.Hedged || resp.Worker == owner {
		t.Errorf("winner hedged=%v worker=%s, want hedge win on non-owner", resp.Hedged, resp.Worker.URL)
	}
	var sum struct {
		IPC float64 `json:"ipc"`
	}
	if err := json.Unmarshal(resp.Body, &sum); err != nil || sum.IPC <= 0 {
		t.Fatalf("bad winning body (err %v): %s", err, resp.Body)
	}

	m := s.Metrics()
	if m.Dispatched.Value() != 1 {
		t.Errorf("cluster_dispatched_total = %d, want 1 (hedge must not double-count the run)", m.Dispatched.Value())
	}
	if m.Hedges.Value() != 1 || m.HedgeWins.Value() != 1 {
		t.Errorf("hedges=%d wins=%d, want 1/1", m.Hedges.Value(), m.HedgeWins.Value())
	}
	// The cancelled straggler must not be marked down: it was our
	// cancellation, not its failure.
	if s.Pool().Healthy() != 2 {
		t.Errorf("healthy workers = %d after hedge, want 2", s.Pool().Healthy())
	}
}

func TestClusterHealthzAndMetricsSurface(t *testing.T) {
	workers, urls := newFleet(t, 2, false)
	s, hs := newCoordinator(t, urls, nil)

	status, _, body := get(t, hs.URL+"/run?bench=gcc&policy=PI&insts=10000")
	if status != http.StatusOK {
		t.Fatalf("run: status %d: %s", status, body)
	}

	status, _, body = get(t, hs.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	for _, family := range []string{
		"cluster_dispatched_total", "cluster_workers_up", "cluster_affinity_hits_total",
		"cluster_dispatch_seconds", "cluster_worker_0_dispatched_total", "cluster_worker_1_up",
	} {
		if !strings.Contains(string(body), family) {
			t.Errorf("/metrics missing %s", family)
		}
	}

	status, _, body = get(t, hs.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d: %s", status, body)
	}
	var h ClusterHealth
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if h.Status != "ok" || h.HealthyWorkers != 2 || h.TotalWorkers != 2 || len(h.Workers) != 2 {
		t.Fatalf("healthz = %+v, want 2/2 ok", h)
	}

	// Kill the whole fleet: the prober marks both down, /healthz flips to
	// 503; revive them and the next probe round marks them back up.
	ctx := context.Background()
	for _, w := range workers {
		w.dead.Store(true)
	}
	s.Pool().ProbeAll(ctx)
	status, _, body = get(t, hs.URL+"/healthz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("all-down healthz: status %d: %s", status, body)
	}
	if s.Metrics().WorkersUp.Value() != 0 {
		t.Errorf("cluster_workers_up = %v, want 0", s.Metrics().WorkersUp.Value())
	}
	for _, w := range workers {
		w.dead.Store(false)
	}
	s.Pool().ProbeAll(ctx)
	status, _, _ = get(t, hs.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("revived healthz: status %d", status)
	}
	if s.Metrics().WorkersUp.Value() != 2 {
		t.Errorf("cluster_workers_up = %v after revival, want 2", s.Metrics().WorkersUp.Value())
	}
}

func TestClusterRunBadParams(t *testing.T) {
	_, urls := newFleet(t, 1, false)
	_, hs := newCoordinator(t, urls, nil)
	for _, q := range []string{
		"/run?bench=nope&policy=PI&insts=1000",
		"/run?bench=gcc&policy=nope&insts=1000",
		"/run?bench=gcc&policy=PI&insts=zero",
		"/batch?benches=gcc,bogus&policies=PI&insts=1000",
	} {
		if status, _, body := get(t, hs.URL+q); status != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", q, status, body)
		}
	}
}

// TestClusterHedgeInflightBalanced is the regression test for the hedge
// inflight leak: a hedged attempt acquired a slot without an inflight
// increment, so send's deferred release drove the hedge target's count
// negative — and Pool.Route's least-loaded fallback then favored the
// "emptiest" worker for the wrong reason. Under concurrent hedged
// exchanges, no worker's inflight may ever go negative, and every
// worker must be back at exactly 0 once the dust settles.
func TestClusterHedgeInflightBalanced(t *testing.T) {
	workers, urls := newFleet(t, 2, false)
	s, _ := newCoordinator(t, urls, func(c *Config) {
		c.Dispatch.Retries = 0
		c.Dispatch.HedgeAfter = 20 * time.Millisecond
	})

	// Make the key's rendezvous owner a straggler so every exchange hedges.
	key := specKey(t, "gcc", "PI", 10_000)
	owner := s.Pool().Owner(key)
	for i, u := range urls {
		if u == owner.URL {
			workers[i].delayMs.Store(500)
		}
	}

	// Sample every worker's inflight while the exchanges are in flight:
	// the leak shows up as a transient negative long before the final
	// quiescent check.
	var sawNegative atomic.Bool
	stop := make(chan struct{})
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, w := range s.Pool().Workers() {
				if w.inflight.Load() < 0 {
					sawNegative.Store(true)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := s.Dispatcher().Do(context.Background(), key, "/run?bench=gcc&policy=PI&insts=10000")
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			if resp.Status != http.StatusOK {
				t.Errorf("status %d: %s", resp.Status, resp.Body)
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-monitorDone

	if sawNegative.Load() {
		t.Error("a worker's inflight count went negative during hedged dispatches")
	}
	for _, w := range s.Pool().Workers() {
		if n := w.inflight.Load(); n != 0 {
			t.Errorf("worker %s inflight = %d after all exchanges settled, want 0", w.URL, n)
		}
	}
	if s.Metrics().Hedges.Value() == 0 {
		t.Error("no hedges fired: the test did not exercise the hedge path")
	}
}

// TestClusterQueryMergesAcrossWorkers spreads runs over two workers'
// caches (affinity routing splits the keys), then checks the
// coordinator's /query merges both catalogs: a range query spanning both
// workers' entries answers with every run, deduplicated and
// deterministically ordered, while each individual worker holds only a
// subset.
func TestClusterQueryMergesAcrossWorkers(t *testing.T) {
	workers, urls := newFleet(t, 2, true)
	_, hs := newCoordinator(t, urls, nil)

	benches := []string{"gcc", "art", "mesa"}
	policies := []string{"PI", "PID", "toggle1", "M"}
	total := len(benches) * len(policies)
	for _, b := range benches {
		for _, p := range policies {
			if code, _, body := get(t, hs.URL+"/run?bench="+b+"&policy="+p+"&insts=20000"); code != 200 {
				t.Fatalf("run %s/%s: %d %s", b, p, code, body)
			}
		}
	}
	perWorker := []int{workers[0].catalog.Len(), workers[1].catalog.Len()}
	if perWorker[0]+perWorker[1] != total {
		t.Fatalf("worker catalogs hold %v runs, want %d total", perWorker, total)
	}
	if perWorker[0] == 0 || perWorker[1] == 0 {
		t.Skipf("affinity routed every run to one worker (%v); merge not exercised", perWorker)
	}

	code, _, body := get(t, hs.URL+"/query?insts=20000")
	if code != 200 {
		t.Fatalf("query: %d %s", code, body)
	}
	var resp runindex.QueryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("query body: %v", err)
	}
	if resp.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", resp.Workers)
	}
	if resp.Count != total {
		t.Fatalf("merged count = %d, want %d (per-worker %v)", resp.Count, total, perWorker)
	}
	for i := 1; i < len(resp.Rows); i++ {
		a, b := resp.Rows[i-1], resp.Rows[i]
		if a.Bench > b.Bench || (a.Bench == b.Bench && a.Policy > b.Policy) {
			t.Fatalf("rows not sorted: %s/%s before %s/%s", a.Bench, a.Policy, b.Bench, b.Policy)
		}
	}

	// The same query again returns the identical document (determinism),
	// and a narrower range filter subsets it.
	_, _, body2 := get(t, hs.URL+"/query?insts=20000")
	if !bytes.Equal(body, body2) {
		t.Fatal("repeated merged query differs")
	}
	code, _, body = get(t, hs.URL+"/query?trigger=110:112&bench=gcc")
	if code != 200 {
		t.Fatalf("range query: %d %s", code, body)
	}
	var ranged runindex.QueryResponse
	if err := json.Unmarshal(body, &ranged); err != nil {
		t.Fatal(err)
	}
	if ranged.Count == 0 || ranged.Count > resp.Count {
		t.Fatalf("range query count %d out of bounds (full %d)", ranged.Count, resp.Count)
	}
	for _, row := range ranged.Rows {
		if row.Trigger < 110 || row.Trigger >= 112 {
			t.Fatalf("row trigger %g outside [110,112)", row.Trigger)
		}
	}

	// Malformed filters fail fast at the coordinator.
	if code, _, _ := get(t, hs.URL+"/query?trigger=nope"); code != http.StatusBadRequest {
		t.Fatalf("bad filter: %d, want 400", code)
	}
}
