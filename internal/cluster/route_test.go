package cluster

import (
	"fmt"
	"testing"
)

func mustPool(t *testing.T, urls []string) *Pool {
	t.Helper()
	p, err := NewPool(urls, PoolConfig{ProbeEvery: -1}, nil, nil)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return p
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%064x", i*2654435761)
	}
	return keys
}

// Two pools built from the same URL list must route every key
// identically: the rendezvous choice is a pure function of (fleet, key),
// so separate coordinators — or one coordinator across restarts — agree
// without coordination.
func TestRouteDeterministicAcrossPools(t *testing.T) {
	urls := []string{"http://w0:8721", "http://w1:8721", "http://w2:8721", "http://w3:8721"}
	a, b := mustPool(t, urls), mustPool(t, urls)
	for _, key := range testKeys(1000) {
		oa, ob := a.Owner(key), b.Owner(key)
		if oa.URL != ob.URL {
			t.Fatalf("key %s: pool a owner %s, pool b owner %s", key, oa.URL, ob.URL)
		}
		w, affinity := a.Route(key, nil)
		if w != oa || !affinity {
			t.Fatalf("key %s: healthy Route = (%v, %v), want owner with affinity", key, w.URL, affinity)
		}
	}
}

// The rendezvous hash must spread keys roughly uniformly: a chi-squared
// statistic over the owner counts far above the df=4 critical value would
// mean some worker's cache takes a disproportionate share of the space.
func TestRouteBalanced(t *testing.T) {
	urls := []string{
		"http://w0:8721", "http://w1:8721", "http://w2:8721",
		"http://w3:8721", "http://w4:8721",
	}
	p := mustPool(t, urls)
	counts := map[string]int{}
	keys := testKeys(2000)
	for _, key := range keys {
		counts[p.Owner(key).URL]++
	}
	expected := float64(len(keys)) / float64(len(urls))
	chi2 := 0.0
	for _, u := range urls {
		d := float64(counts[u]) - expected
		chi2 += d * d / expected
		if counts[u] == 0 {
			t.Errorf("worker %s owns no keys", u)
		}
	}
	// df=4 critical value at p=0.001 is 18.5; 40 allows for FNV not being
	// a cryptographic hash while still catching gross skew.
	if chi2 > 40 {
		t.Errorf("owner distribution chi-squared = %.1f (counts %v), want < 40", chi2, counts)
	}
}

func TestRouteFallbackAndSkip(t *testing.T) {
	p := mustPool(t, []string{"http://w0:8721", "http://w1:8721", "http://w2:8721"})
	key := "sha256:deadbeef"
	owner := p.Owner(key)

	// Healthy owner wins even when loaded.
	owner.inflight.Store(100)
	if w, affinity := p.Route(key, nil); w != owner || !affinity {
		t.Fatalf("healthy owner not chosen: got %s affinity=%v", w.URL, affinity)
	}
	owner.inflight.Store(0)

	// Downed owner: fall back to the least-loaded healthy worker.
	var others []*Worker
	for _, w := range p.Workers() {
		if w != owner {
			others = append(others, w)
		}
	}
	owner.down.Store(true)
	others[0].inflight.Store(5)
	others[1].inflight.Store(2)
	if w, affinity := p.Route(key, nil); w != others[1] || affinity {
		t.Errorf("downed owner fallback = (%s, %v), want least-loaded %s without affinity",
			w.URL, affinity, others[1].URL)
	}

	// skip excludes the failed worker even when it is healthy.
	owner.down.Store(false)
	if w, _ := p.Route(key, owner); w == owner {
		t.Error("Route returned the skipped owner despite healthy alternatives")
	}

	// Sole healthy survivor is returned even when it is the skip target:
	// retrying it beats failing the run outright.
	for _, w := range p.Workers() {
		w.down.Store(w != others[1])
	}
	if w, _ := p.Route(key, others[1]); w != others[1] {
		t.Errorf("sole survivor not reused: got %v", w)
	}

	// All down: no route.
	others[1].down.Store(true)
	if w, _ := p.Route(key, nil); w != nil {
		t.Errorf("all-down Route = %s, want nil", w.URL)
	}
}

func TestNewPoolRejectsBadFleets(t *testing.T) {
	if _, err := NewPool(nil, PoolConfig{}, nil, nil); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewPool([]string{"http://a", ""}, PoolConfig{}, nil, nil); err == nil {
		t.Error("blank worker URL accepted")
	}
	if _, err := NewPool([]string{"http://a", "http://a/"}, PoolConfig{}, nil, nil); err == nil {
		t.Error("duplicate worker URL (modulo trailing slash) accepted")
	}
}

func TestHRWScoreSeparatesBoundaries(t *testing.T) {
	// The separator byte keeps (worker, key) concatenation ambiguity out
	// of the score: ("ab","c") and ("a","bc") must differ.
	if hrwScore("ab", "c") == hrwScore("a", "bc") {
		t.Error("hrwScore collides across the worker/key boundary")
	}
}
