package pipeline

import (
	"bytes"
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

func testProfile(seed uint64) workload.Profile {
	return workload.Profile{
		Name: "ptest",
		Seed: seed,
		Phases: []workload.Phase{{
			Insts:            1 << 20,
			Mix:              workload.Mix{IntALU: 40, Load: 18, Store: 9, Branch: 12, FPALU: 6, FPMult: 2, IntMult: 2, Call: 1},
			DepMean:          5,
			LoopIters:        40,
			BodySize:         48,
			NumLoops:         10,
			BranchRandomFrac: 0.15,
			BranchBias:       0.4,
			WorkingSet:       1 << 18,
			StreamFrac:       0.7,
		}},
	}
}

func newCore(t *testing.T, seed uint64) *Core {
	t.Helper()
	gen, err := workload.NewGenerator(testProfile(seed))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(DefaultConfig(), gen)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// run advances the core until n instructions commit, returning cycles used.
func run(t *testing.T, c *Core, n uint64) uint64 {
	t.Helper()
	var act Activity
	for c.Stats().Committed < n {
		c.Step(&act)
		if c.Stats().Cycles > 200*n+100_000 {
			t.Fatalf("no forward progress: %+v", c.Stats())
		}
	}
	return c.Stats().Cycles
}

func TestConfigValidation(t *testing.T) {
	gen, _ := workload.NewGenerator(testProfile(1))
	bad := []func(*Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.RUUSize = 0 },
		func(c *Config) { c.FrontEndDepth = 0 },
		func(c *Config) { c.MemPorts = 0 },
		func(c *Config) { c.LSQSize = c.RUUSize + 1 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(cfg, gen); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil generator accepted")
	}
}

func TestCommitsInstructionsWithSaneIPC(t *testing.T) {
	c := newCore(t, 42)
	cycles := run(t, c, 200_000)
	ipc := float64(200_000) / float64(cycles)
	if ipc < 0.3 || ipc > 4.0 {
		t.Errorf("IPC = %v, want in [0.3, 4]", ipc)
	}
}

func TestDeterministicExecution(t *testing.T) {
	c1 := newCore(t, 42)
	c2 := newCore(t, 42)
	run(t, c1, 100_000)
	run(t, c2, 100_000)
	s1, s2 := c1.Stats(), c2.Stats()
	if s1 != s2 {
		t.Errorf("non-deterministic stats:\n%+v\n%+v", s1, s2)
	}
}

func TestCommitOrderIsProgramOrder(t *testing.T) {
	c := newCore(t, 7)
	var lastSeq uint64
	first := true
	c.CommitHook = func(op *isa.MicroOp) {
		if !first && op.Seq != lastSeq+1 {
			t.Fatalf("commit order break: %d after %d", op.Seq, lastSeq)
		}
		lastSeq, first = op.Seq, false
	}
	run(t, c, 100_000)
}

func TestMispredictionsCauseSquashesAndWrongPath(t *testing.T) {
	c := newCore(t, 42)
	run(t, c, 150_000)
	s := c.Stats()
	if s.Squashes == 0 {
		t.Error("no squashes despite random branches")
	}
	if s.WrongPathOps == 0 {
		t.Error("no wrong-path ops fetched")
	}
	bp := c.BPredStats()
	if bp.CondMiss == 0 {
		t.Error("predictor reports zero mispredictions")
	}
	rate := bp.MispredictRate()
	if rate < 0.01 || rate > 0.5 {
		t.Errorf("mispredict rate = %v, want in [0.01, 0.5]", rate)
	}
}

func TestBranchEntropyControlsMispredictRate(t *testing.T) {
	rate := func(randomFrac float64) float64 {
		p := testProfile(9)
		p.Phases[0].BranchRandomFrac = randomFrac
		p.Phases[0].BranchBias = 0.5
		gen, _ := workload.NewGenerator(p)
		c, _ := New(DefaultConfig(), gen)
		var act Activity
		for c.Stats().Committed < 150_000 {
			c.Step(&act)
		}
		return c.BPredStats().MispredictRate()
	}
	predictable := rate(0)
	random := rate(0.9)
	if predictable > 0.25 {
		t.Errorf("mispredict rate on patterned workload = %v, want <= 0.25", predictable)
	}
	if random < predictable+0.05 {
		t.Errorf("random-branch rate %v not clearly above patterned %v", random, predictable)
	}
}

func TestFetchDutyZeroStopsCommits(t *testing.T) {
	c := newCore(t, 42)
	run(t, c, 10_000)
	c.SetFetchDuty(0)
	var act Activity
	// Drain the pipeline: at most RUU+IFQ instructions can still commit.
	before := c.Stats().Committed
	for i := 0; i < 5_000; i++ {
		c.Step(&act)
	}
	drained := c.Stats().Committed - before
	if drained > uint64(DefaultConfig().RUUSize+DefaultConfig().IFQSize) {
		t.Errorf("committed %d after gating fetch off; pipeline can hold at most %d",
			drained, DefaultConfig().RUUSize+DefaultConfig().IFQSize)
	}
	after := c.Stats().Committed
	for i := 0; i < 5_000; i++ {
		c.Step(&act)
	}
	if c.Stats().Committed != after {
		t.Error("instructions still committing long after fetch disabled")
	}
	if c.Stats().FetchGatedCy == 0 {
		t.Error("no gated cycles recorded")
	}
}

func TestFetchDutyHalvesThroughput(t *testing.T) {
	full := newCore(t, 42)
	cyclesFull := run(t, full, 150_000)

	half := newCore(t, 42)
	half.SetFetchDuty(0.5)
	cyclesHalf := run(t, half, 150_000)

	ratio := float64(cyclesHalf) / float64(cyclesFull)
	// Toggle2 costs at most 2x and, since the baseline rarely sustains
	// full fetch bandwidth, usually much less; it must cost something.
	if ratio < 1.02 || ratio > 2.5 {
		t.Errorf("duty-0.5 cycle ratio = %v, want in (1.02, 2.5)", ratio)
	}
}

func TestFetchDutyClamped(t *testing.T) {
	c := newCore(t, 1)
	c.SetFetchDuty(-0.5)
	if c.FetchDuty() != 0 {
		t.Errorf("duty = %v, want clamped 0", c.FetchDuty())
	}
	c.SetFetchDuty(2)
	if c.FetchDuty() != 1 {
		t.Errorf("duty = %v, want clamped 1", c.FetchDuty())
	}
}

func TestFetchThrottlingReducesFetchRate(t *testing.T) {
	c := newCore(t, 42)
	c.SetFetchLimit(1)
	run(t, c, 50_000)
	s := c.Stats()
	perCycle := float64(s.Fetched) / float64(s.Cycles)
	if perCycle > 1.01 {
		t.Errorf("fetched/cycle = %v with limit 1", perCycle)
	}
}

func TestSpeculationControlStallsFetch(t *testing.T) {
	c := newCore(t, 42)
	c.SetMaxUnresolvedBranches(1)
	run(t, c, 50_000)
	if c.Stats().SpecStallCy == 0 {
		t.Error("speculation control never stalled fetch")
	}
	// And it must actually bound in-flight branches most of the time;
	// sample the observable.
	if c.UnresolvedBranches() > 12 {
		t.Errorf("unresolved branches = %d, improbably high under control", c.UnresolvedBranches())
	}
}

func TestActivityCountsAreConsistent(t *testing.T) {
	c := newCore(t, 42)
	var act Activity
	var totIns, totCommit, totDC uint64
	for c.Stats().Committed < 100_000 {
		c.Step(&act)
		totIns += uint64(act.WindowInserts)
		totCommit += uint64(act.Commits)
		totDC += uint64(act.DCacheAccess)
		if act.Commits > DefaultConfig().CommitWidth {
			t.Fatalf("committed %d > width", act.Commits)
		}
		if act.Fetched > DefaultConfig().FetchWidth {
			t.Fatalf("fetched %d > width", act.Fetched)
		}
		if act.RUUOccupancy > DefaultConfig().RUUSize || act.LSQOccupancy > DefaultConfig().LSQSize {
			t.Fatalf("occupancy out of range: %+v", act)
		}
	}
	if totIns < totCommit {
		t.Errorf("window inserts %d < commits %d", totIns, totCommit)
	}
	if totDC == 0 {
		t.Error("no D-cache activity")
	}
	il1, dl1, l2 := c.CacheStats()
	if il1.Accesses == 0 || dl1.Accesses == 0 {
		t.Error("cache hierarchy unused")
	}
	if l2.Accesses == 0 {
		t.Error("L2 never accessed — misses not propagating")
	}
}

func TestStatsIPCZeroCycles(t *testing.T) {
	if (Stats{}).IPC() != 0 {
		t.Error("IPC of zero-cycle stats != 0")
	}
}

// Large code footprints must pressure the I-cache.
func TestICachePressureFromLargeCode(t *testing.T) {
	small := testProfile(3)
	big := testProfile(3)
	big.Phases[0].NumLoops = 400 // 400*48*4 ~ 77KB > 64KB L1I
	big.Phases[0].LoopIters = 2  // revisit loops rarely

	genS, _ := workload.NewGenerator(small)
	genB, _ := workload.NewGenerator(big)
	cs, _ := New(DefaultConfig(), genS)
	cb, _ := New(DefaultConfig(), genB)
	var act Activity
	for cs.Stats().Committed < 100_000 {
		cs.Step(&act)
	}
	for cb.Stats().Committed < 100_000 {
		cb.Step(&act)
	}
	il1S, _, _ := cs.CacheStats()
	il1B, _, _ := cb.CacheStats()
	if il1B.MissRate() <= il1S.MissRate() {
		t.Errorf("big-code il1 miss rate %v <= small-code %v",
			il1B.MissRate(), il1S.MissRate())
	}
}

// Larger data working sets must raise the D-cache miss rate.
func TestDCacheMissesScaleWithWorkingSet(t *testing.T) {
	small := testProfile(5)
	small.Phases[0].WorkingSet = 16 << 10
	small.Phases[0].StreamFrac = 0
	big := testProfile(5)
	big.Phases[0].WorkingSet = 8 << 20
	big.Phases[0].StreamFrac = 0

	genS, _ := workload.NewGenerator(small)
	genB, _ := workload.NewGenerator(big)
	cs, _ := New(DefaultConfig(), genS)
	cb, _ := New(DefaultConfig(), genB)
	var act Activity
	for cs.Stats().Committed < 100_000 {
		cs.Step(&act)
	}
	for cb.Stats().Committed < 100_000 {
		cb.Step(&act)
	}
	_, dl1S, _ := cs.CacheStats()
	_, dl1B, _ := cb.CacheStats()
	if dl1B.MissRate() <= dl1S.MissRate()+0.01 {
		t.Errorf("8MB working set miss rate %v not above 16KB %v",
			dl1B.MissRate(), dl1S.MissRate())
	}
	// And the big working set must cost cycles.
	if cb.Stats().Cycles <= cs.Stats().Cycles {
		t.Error("cache misses did not cost cycles")
	}
}

// Lower ILP (short dependence distances) must reduce IPC. Use an ALU-only
// workload so the dependence chain is the only bottleneck.
func TestDependenceDistanceControlsILP(t *testing.T) {
	aluProfile := func(dep float64) workload.Profile {
		return workload.Profile{
			Name: "alu",
			Seed: 11,
			Phases: []workload.Phase{{
				Insts:      1 << 20,
				Mix:        workload.Mix{IntALU: 100},
				DepMean:    dep,
				LoopIters:  200,
				BodySize:   64,
				NumLoops:   2,
				WorkingSet: 4096,
			}},
		}
	}
	ipc := func(dep float64) float64 {
		gen, _ := workload.NewGenerator(aluProfile(dep))
		c, _ := New(DefaultConfig(), gen)
		var act Activity
		for c.Stats().Committed < 100_000 {
			c.Step(&act)
		}
		return c.Stats().IPC()
	}
	serial := ipc(1.05)
	parallel := ipc(16)
	// Within one iteration the chain is fully serial, but chains of
	// consecutive loop iterations overlap (each iteration's head depends
	// on an op ~half a body earlier), so the steady state is ~2, not 1.
	if serial > 2.2 {
		t.Errorf("serial-chain IPC = %v, want ~2 or less", serial)
	}
	if parallel < serial*1.3 {
		t.Errorf("parallel IPC %v not clearly above serial %v", parallel, serial)
	}
}

// The core must run identically from a recorded trace (EIO-style replay):
// same committed instruction stream, nearly identical timing (wrong-path
// synthesis differs, which perturbs only squashed work).
func TestCoreRunsFromRecordedTrace(t *testing.T) {
	gen, err := workload.NewGenerator(testProfile(42))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 120_000
	if err := workload.WriteTrace(&buf, gen, n); err != nil {
		t.Fatal(err)
	}
	ts, err := workload.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live, _ := New(DefaultConfig(), mustGen(t, 42))
	replay, _ := New(DefaultConfig(), ts)

	var liveSeqs, replaySeqs []uint64
	live.CommitHook = func(op *isa.MicroOp) { liveSeqs = append(liveSeqs, op.Seq) }
	replay.CommitHook = func(op *isa.MicroOp) { replaySeqs = append(replaySeqs, op.Seq) }
	var act Activity
	for live.Stats().Committed < 100_000 {
		live.Step(&act)
	}
	for replay.Stats().Committed < 100_000 {
		replay.Step(&act)
	}
	for i := range liveSeqs[:100_000] {
		if liveSeqs[i] != replaySeqs[i] {
			t.Fatalf("commit stream diverges at %d: %d vs %d", i, liveSeqs[i], replaySeqs[i])
		}
	}
	// Timing must be close (wrong-path details differ slightly).
	lc, rc := float64(live.Stats().Cycles), float64(replay.Stats().Cycles)
	if r := rc / lc; r < 0.9 || r > 1.1 {
		t.Errorf("replay cycles %v vs live %v (ratio %.3f)", rc, lc, r)
	}
}

func mustGen(t *testing.T, seed uint64) *workload.Generator {
	t.Helper()
	g, err := workload.NewGenerator(testProfile(seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPerfectBPredEliminatesSquashes(t *testing.T) {
	// Compare with PerfectDCache on both sides: synthesized wrong-path
	// loads share the correct path's address distribution, so on a real
	// cache the wrong path acts as an unrealistically effective
	// prefetcher and can mask the branch-timing benefit.
	mk := func(perfectBP bool) *Core {
		cfg := DefaultConfig()
		cfg.PerfectBPred = perfectBP
		cfg.PerfectDCache = true
		gen, _ := workload.NewGenerator(testProfile(42))
		c, _ := New(cfg, gen)
		return c
	}
	perfect, real := mk(true), mk(false)
	var act Activity
	for perfect.Stats().Committed < 100_000 {
		perfect.Step(&act)
	}
	for real.Stats().Committed < 100_000 {
		real.Step(&act)
	}
	s := perfect.Stats()
	if s.Squashes != 0 || s.WrongPathOps != 0 {
		t.Errorf("perfect bpred: squashes=%d wrongpath=%d", s.Squashes, s.WrongPathOps)
	}
	if perfect.Stats().IPC() <= real.Stats().IPC() {
		t.Errorf("perfect bpred IPC %.3f not above real %.3f",
			perfect.Stats().IPC(), real.Stats().IPC())
	}
}

func TestPerfectDCacheRemovesMemoryStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerfectDCache = true
	p := testProfile(5)
	p.Phases[0].WorkingSet = 8 << 20 // would thrash a real cache
	p.Phases[0].StreamFrac = 0
	gen, _ := workload.NewGenerator(p)
	perfect, _ := New(cfg, gen)
	var act Activity
	for perfect.Stats().Committed < 100_000 {
		perfect.Step(&act)
	}
	genR, _ := workload.NewGenerator(p)
	real, _ := New(DefaultConfig(), genR)
	for real.Stats().Committed < 100_000 {
		real.Step(&act)
	}
	if perfect.Stats().IPC() <= real.Stats().IPC() {
		t.Errorf("perfect dcache IPC %.3f not above real %.3f",
			perfect.Stats().IPC(), real.Stats().IPC())
	}
}
