// Package pipeline implements the cycle-level out-of-order core of
// Section 5.1: SimpleScalar's sim-outorder pipeline extended with three
// extra rename/enqueue stages between decode and issue (an 8-stage front
// end, Alpha-21264-style), a register update unit (RUU), a load/store
// queue (LSQ), a pooled set of functional units, hybrid branch prediction
// with speculative-update repair, and a two-level cache hierarchy.
//
// The core is trace-driven with wrong-path execution: instruction fetch
// consumes the workload generator's correct-path stream, and after a
// mispredicted (or BTB-missing) control transfer it fetches synthesized
// wrong-path micro-ops that occupy real pipeline resources and pollute the
// caches until the branch resolves, at which point younger state is
// squashed and the predictor history repaired.
//
// Every cycle produces an Activity record — per-structure access counts —
// which the power model converts to per-block watts (the Wattch coupling
// of Section 5.1).
package pipeline

import (
	"fmt"
	"math/bits"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/workload"
)

// Config sizes the core (defaults per Table 2).
type Config struct {
	FetchWidth  int
	DecodeWidth int
	IssueWidth  int // total issue slots per cycle
	IntIssue    int // integer-side issue slots (4)
	FPIssue     int // floating-point-side issue slots (2)
	CommitWidth int
	RUUSize     int
	LSQSize     int
	IFQSize     int
	// FrontEndDepth is the number of cycles between fetch and earliest
	// dispatch: the 5-stage base plus the paper's 3 extra
	// rename/enqueue stages.
	FrontEndDepth int

	IntALUs    int
	IntMultDiv int
	FPALUs     int
	FPMultDiv  int
	MemPorts   int

	BPred bpred.Config
	L1I   cache.Config
	L1D   cache.Config
	L2    cache.Config

	// Idealization knobs (SimpleScalar-style bounding studies). Perfect
	// structures still charge their access energy — the study isolates
	// the *timing* effect.
	PerfectBPred  bool
	PerfectDCache bool
	PerfectICache bool
}

// DefaultConfig returns the Table 2 machine.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    4,
		DecodeWidth:   4,
		IssueWidth:    6,
		IntIssue:      4,
		FPIssue:       2,
		CommitWidth:   6,
		RUUSize:       80,
		LSQSize:       40,
		IFQSize:       16,
		FrontEndDepth: 8,
		IntALUs:       4,
		IntMultDiv:    1,
		FPALUs:        2,
		FPMultDiv:     1,
		MemPorts:      2,
		BPred:         bpred.DefaultConfig(),
		L1I:           cache.DefaultL1I(),
		L1D:           cache.DefaultL1D(),
		L2:            cache.DefaultL2(),
	}
}

func (c Config) validate() error {
	switch {
	case c.FetchWidth <= 0, c.DecodeWidth <= 0, c.IssueWidth <= 0,
		c.CommitWidth <= 0, c.RUUSize <= 0, c.LSQSize <= 0, c.IFQSize <= 0:
		return fmt.Errorf("pipeline: non-positive width/size in %+v", c)
	case c.FrontEndDepth < 1:
		return fmt.Errorf("pipeline: front-end depth %d < 1", c.FrontEndDepth)
	case c.IntALUs <= 0 || c.MemPorts <= 0 || c.FPALUs <= 0 ||
		c.IntMultDiv <= 0 || c.FPMultDiv <= 0:
		return fmt.Errorf("pipeline: non-positive FU counts in %+v", c)
	case c.LSQSize > c.RUUSize:
		return fmt.Errorf("pipeline: LSQ (%d) larger than RUU (%d)", c.LSQSize, c.RUUSize)
	}
	return nil
}

// Activity is the per-cycle structure access record consumed by the power
// model. Counts are events in this cycle.
type Activity struct {
	FetchEnabled  bool
	Fetched       int
	ICacheAccess  int
	BPredAccess   int
	WindowInserts int // RUU dispatch writes
	WindowIssues  int // RUU issue reads
	WindowWakeups int // completion broadcasts
	LSQInserts    int
	LSQSearches   int // store-to-load forwarding searches
	RegReads      int
	RegWrites     int
	IntOps        int
	FPOps         int
	DCacheAccess  int
	L2Access      int
	Commits       int
	// Occupancy snapshots for idle-power estimation.
	RUUOccupancy int
	LSQOccupancy int
}

// Reset zeroes the record.
func (a *Activity) Reset() { *a = Activity{} }

// Stats accumulates run-level results.
type Stats struct {
	Cycles       uint64
	Committed    uint64
	Fetched      uint64
	WrongPathOps uint64
	Squashes     uint64
	FetchGatedCy uint64 // cycles with fetch disabled by DTM
	SpecStallCy  uint64 // cycles stalled by speculation control
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

type entryState uint8

const (
	stWaiting entryState = iota
	stIssued
	stDone
)

type producerRef struct {
	slot  int
	seq   uint64
	valid bool
}

// nilIdx terminates the intrusive scheduler lists below.
const nilIdx = int16(-1)

type entry struct {
	op        isa.MicroOp
	pred      bpred.Prediction
	hasPred   bool
	wrongPath bool
	mispred   bool // resolves to a squash
	state     entryState
	doneCycle uint64
	src       [2]producerRef
	inLSQ     bool
	lsqIdx    int // ring index in Core.lsq while inLSQ

	// Intrusive scheduler state. depHead chains the entries waiting on
	// this entry's result (node encoding slot<<1|srcIdx); depNext[i] is
	// this entry's link within the producer chain of source i; pending
	// counts sources not yet available; bucketNext chains entries that
	// complete on the same cycle (see Core.buckets).
	depHead    int16
	depNext    [2]int16
	bucketNext int16
	pending    uint8
}

type fetched struct {
	op        isa.MicroOp
	pred      bpred.Prediction
	hasPred   bool
	wrongPath bool
	mispred   bool
	readyAt   uint64 // earliest dispatch cycle (front-end depth)
}

// Core is the simulated processor.
type Core struct {
	cfg  Config
	gen  workload.Source
	pred *bpred.Predictor
	il1  *cache.Cache
	dl1  *cache.Cache
	l2   *cache.Cache
	tlb  *cache.TLB

	cycle uint64
	stats Stats

	// RUU ring buffer.
	ruu      []entry
	ruuHead  int
	ruuCount int

	// LSQ ring of RUU slot indices in program order.
	lsq      []int
	lsqHead  int
	lsqCount int

	// IFQ ring.
	ifq      []fetched
	ifqHead  int
	ifqCount int

	regProd [isa.NumArchRegs]producerRef

	// Fetch state.
	fetchReady     uint64 // icache-miss stall until this cycle
	wrongPathMode  bool
	wrongPC        uint64
	unresolvedCtrl int

	// Same-line fetch filter: the I-cache is only ever accessed through
	// the per-cycle fetch probe, so a probe to the same block as the
	// previous hit cannot have been evicted in between and re-touching
	// the MRU line is an LRU no-op — skip the lookup, count the access.
	il1Shift      uint
	lastFetchLine uint64
	lastFetchHit  bool

	// DTM actuator state.
	fetchDuty     float64
	dutyAcc       float64
	fetchLimit    int // throttling: max ops fetched per cycle (0 = cfg width)
	maxUnresolved int // speculation control (0 = off)

	// Scheduler acceleration structures (exact-semantics replacements
	// for the O(RUU) per-cycle complete/issue scans). readyBits holds one
	// bit per RUU slot, set exactly when the slot holds a stWaiting entry
	// whose sources are all available. buckets is a power-of-two ring of
	// completion-chain heads indexed by doneCycle&bucketMask; each chain
	// (linked via entry.bucketNext) holds the stIssued entries finishing
	// on that cycle. Because the ring is longer than the longest possible
	// latency and is drained every cycle, distinct cycles never collide.
	readyBits  []uint64
	buckets    []int16
	bucketMask uint64

	// progress watchdog
	lastCommitCycle uint64

	// CommitHook, when non-nil, is invoked for every committed op in
	// retirement order (testing and tracing).
	CommitHook func(op *isa.MicroOp)
}

// Clone returns an independent deep copy of the core running the given
// instruction source (normally a clone of the original's source, positioned
// identically). Every microarchitectural structure — predictor, cache
// hierarchy (preserving the shared-L2 topology), TLB, RUU/LSQ/IFQ rings,
// scheduler acceleration state, and the DTM actuator knobs — is copied so
// the clone steps bit-identically to how the original would have. The
// CommitHook is carried over as-is.
func (c *Core) Clone(gen workload.Source) *Core {
	q := *c
	q.gen = gen
	q.pred = c.pred.Clone()
	q.l2 = c.l2.Clone(nil)
	q.il1 = c.il1.Clone(q.l2)
	q.dl1 = c.dl1.Clone(q.l2)
	q.tlb = c.tlb.Clone()
	q.ruu = append(c.ruu[:0:0], c.ruu...)
	q.lsq = append(c.lsq[:0:0], c.lsq...)
	q.ifq = append(c.ifq[:0:0], c.ifq...)
	q.readyBits = append(c.readyBits[:0:0], c.readyBits...)
	q.buckets = append(c.buckets[:0:0], c.buckets...)
	return &q
}

// New builds a core running the given instruction source — a live
// workload.Generator or a recorded workload.TraceSource. The L2 is shared
// between the instruction and data caches.
func New(cfg Config, gen workload.Source) (*Core, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if gen == nil {
		return nil, fmt.Errorf("pipeline: nil workload generator")
	}
	l2 := cache.New(cfg.L2, nil)
	c := &Core{
		cfg:  cfg,
		gen:  gen,
		pred: bpred.New(cfg.BPred),
		il1:  cache.New(cfg.L1I, l2),
		dl1:  cache.New(cfg.L1D, l2),
		l2:   l2,
		tlb:  cache.DefaultTLB(),
		ruu:  make([]entry, cfg.RUUSize),
		lsq:  make([]int, cfg.LSQSize),
		// The IFQ buffer also models the front-end pipe registers:
		// ops spend FrontEndDepth cycles in flight before dispatch,
		// so sustaining full width needs depth*width slots on top of
		// the architectural fetch queue.
		ifq: make([]fetched, cfg.IFQSize+cfg.FrontEndDepth*cfg.DecodeWidth),

		fetchDuty: 1.0,
	}
	// Size the completion ring to the worst-case op latency: TLB miss +
	// L1D + L2 + memory for loads, which dominates every FU latency.
	maxLat := 30 + cfg.L1D.Latency + cfg.L2.Latency + cache.MemLatency + 33
	ring := 1
	for ring <= maxLat {
		ring <<= 1
	}
	c.buckets = make([]int16, ring)
	for i := range c.buckets {
		c.buckets[i] = nilIdx
	}
	c.bucketMask = uint64(ring - 1)
	c.readyBits = make([]uint64, (cfg.RUUSize+63)/64)
	for 1<<c.il1Shift < cfg.L1I.BlockSize {
		c.il1Shift++
	}
	return c, nil
}

func (c *Core) setReady(slot int)   { c.readyBits[slot>>6] |= 1 << (uint(slot) & 63) }
func (c *Core) clearReady(slot int) { c.readyBits[slot>>6] &^= 1 << (uint(slot) & 63) }

// pushBucket files an issued entry under its completion cycle.
func (c *Core) pushBucket(slot int, done uint64) {
	if done-c.cycle > c.bucketMask {
		panic(fmt.Sprintf("pipeline: completion latency %d exceeds bucket ring %d",
			done-c.cycle, len(c.buckets)))
	}
	b := done & c.bucketMask
	c.ruu[slot].bucketNext = c.buckets[b]
	c.buckets[b] = int16(slot)
}

// Stats returns a copy of the accumulated statistics.
func (c *Core) Stats() Stats { return c.stats }

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// BPredStats exposes the branch predictor counters.
func (c *Core) BPredStats() bpred.Stats { return c.pred.Stats() }

// CacheStats returns (L1I, L1D, L2) statistics.
func (c *Core) CacheStats() (il1, dl1, l2 cache.Stats) {
	return c.il1.Stats(), c.dl1.Stats(), c.l2.Stats()
}

// SetFetchDuty sets the DTM fetch-toggling duty in [0,1]: the long-run
// fraction of cycles on which instruction fetch is enabled. 1 disables
// gating; 0 stops fetch entirely (toggle1); 0.5 fetches every other cycle
// (toggle2).
func (c *Core) SetFetchDuty(d float64) {
	if d < 0 {
		d = 0
	}
	if d > 1 {
		d = 1
	}
	c.fetchDuty = d
}

// FetchDuty returns the current fetch duty.
func (c *Core) FetchDuty() float64 { return c.fetchDuty }

// SetFetchLimit bounds the number of instructions fetched per cycle
// (fetch throttling); 0 restores the configured fetch width.
func (c *Core) SetFetchLimit(n int) { c.fetchLimit = n }

// SetMaxUnresolvedBranches enables speculation control: fetch stalls while
// more than n unresolved control transfers are in flight; 0 disables.
func (c *Core) SetMaxUnresolvedBranches(n int) { c.maxUnresolved = n }

func (c *Core) slotAt(pos int) int { return (c.ruuHead + pos) % len(c.ruu) }

// Step advances the core one cycle, filling act with this cycle's
// structure activity, and returns the number of instructions committed.
func (c *Core) Step(act *Activity) int {
	act.Reset()
	c.cycle++
	c.commit(act)
	c.complete(act)
	c.issue(act)
	c.dispatch(act)
	c.fetch(act)
	act.RUUOccupancy = c.ruuCount
	act.LSQOccupancy = c.lsqCount
	c.stats.Cycles++
	if act.Commits > 0 {
		c.lastCommitCycle = c.cycle
	} else if c.cycle-c.lastCommitCycle > 1_000_000 && c.fetchDuty > 0 {
		panic(fmt.Sprintf("pipeline: no commit in 1M cycles (cycle %d, ruu %d, ifq %d, wrongPath %v)",
			c.cycle, c.ruuCount, c.ifqCount, c.wrongPathMode))
	}
	return act.Commits
}

// commit retires up to CommitWidth completed entries in program order.
func (c *Core) commit(act *Activity) {
	for n := 0; n < c.cfg.CommitWidth && c.ruuCount > 0; n++ {
		e := &c.ruu[c.ruuHead]
		if e.state != stDone || e.doneCycle > c.cycle {
			return
		}
		if e.wrongPath {
			panic("pipeline: wrong-path op reached commit")
		}
		op := &e.op
		if op.Class == isa.OpStore {
			// Stores write the data cache at commit; the write is
			// buffered, so its latency is off the critical path.
			c.dl1.Access(op.Addr, true)
			act.DCacheAccess++
		}
		if op.Class.IsCtrl() && e.hasPred {
			c.pred.Update(op.PC, op.Class, op.Taken, op.NextPC(), e.pred)
			act.BPredAccess++
		}
		if e.inLSQ {
			if c.lsqCount == 0 || c.lsq[c.lsqHead] != c.ruuHead {
				panic("pipeline: LSQ/RUU commit order mismatch")
			}
			c.lsqHead = (c.lsqHead + 1) % len(c.lsq)
			c.lsqCount--
		}
		if c.CommitHook != nil {
			c.CommitHook(op)
		}
		c.ruuHead = (c.ruuHead + 1) % len(c.ruu)
		c.ruuCount--
		c.stats.Committed++
		act.Commits++
	}
}

// complete drains this cycle's completion bucket: issued entries whose
// latency elapsed become done, their dependents' pending counts drop
// (waking those that become fully ready), and resolving mispredicted
// control transfers trigger recovery at the oldest such entry.
func (c *Core) complete(act *Activity) {
	b := c.cycle & c.bucketMask
	s := c.buckets[b]
	if s < 0 {
		return
	}
	c.buckets[b] = nilIdx
	resolveAt := -1
	for s >= 0 {
		e := &c.ruu[s]
		next := e.bucketNext
		e.bucketNext = nilIdx
		e.state = stDone
		act.WindowWakeups++
		if e.op.Dest != isa.RegNone {
			act.RegWrites++
		}
		if e.op.Class.IsCtrl() && !e.wrongPath {
			c.unresolvedCtrl--
			if e.mispred {
				pos := int(s) - c.ruuHead
				if pos < 0 {
					pos += len(c.ruu)
				}
				if resolveAt < 0 || pos < resolveAt {
					resolveAt = pos
				}
			}
		}
		// Wake dependents.
		for n := e.depHead; n >= 0; {
			slot := int(n >> 1)
			i := int(n & 1)
			d := &c.ruu[slot]
			n = d.depNext[i]
			if d.state == stWaiting && d.pending > 0 {
				if d.pending--; d.pending == 0 {
					c.setReady(slot)
				}
			}
		}
		e.depHead = nilIdx
		s = next
	}
	if resolveAt >= 0 {
		c.recover(resolveAt)
	}
}

// recover squashes everything younger than the mispredicted entry at RUU
// position pos, repairs predictor state, and redirects fetch to the
// correct path.
func (c *Core) recover(pos int) {
	s := c.slotAt(pos)
	e := &c.ruu[s]
	c.pred.Recover(e.op.Class, e.op.Taken, e.pred)
	// Drop younger RUU entries (they are all wrong-path or younger
	// speculative work) and their LSQ slots.
	for c.ruuCount > pos+1 {
		tail := c.slotAt(c.ruuCount - 1)
		te := &c.ruu[tail]
		if te.op.Class.IsCtrl() && !te.wrongPath && te.state != stDone {
			c.unresolvedCtrl--
		}
		if te.inLSQ {
			if c.lsqCount == 0 {
				panic("pipeline: LSQ underflow on squash")
			}
			lsqTail := (c.lsqHead + c.lsqCount - 1) % len(c.lsq)
			if c.lsq[lsqTail] != tail {
				panic("pipeline: LSQ tail does not match squashed RUU entry")
			}
			c.lsqCount--
		}
		te.state = stDone // inert
		c.ruuCount--
	}
	e.mispred = false
	// Flush the front end.
	c.ifqHead, c.ifqCount = 0, 0
	c.wrongPathMode = false
	c.stats.Squashes++
	c.rebuildProducers()
	c.rebuildScheduler()
	// Redirect: fetch resumes on the correct path next cycle; the
	// front-end depth models the refill penalty.
	if c.fetchReady < c.cycle+1 {
		c.fetchReady = c.cycle + 1
	}
}

// rebuildProducers reconstructs the register producer table from surviving
// RUU entries after a squash.
func (c *Core) rebuildProducers() {
	for i := range c.regProd {
		c.regProd[i] = producerRef{}
	}
	s := c.ruuHead
	for p := 0; p < c.ruuCount; p++ {
		e := &c.ruu[s]
		if e.op.Dest != isa.RegNone && e.state != stDone {
			c.regProd[e.op.Dest] = producerRef{slot: s, seq: e.op.Seq, valid: true}
		} else if e.op.Dest != isa.RegNone {
			c.regProd[e.op.Dest] = producerRef{}
		}
		if s++; s == len(c.ruu) {
			s = 0
		}
	}
}

// rebuildScheduler reconstructs the ready bitmap, completion buckets and
// dependency chains from surviving RUU entries after a squash. Squashed
// entries may sit in completion buckets and dependent chains; rebuilding
// from scratch removes every such stale reference (chains must only ever
// hold live entries, or slot reuse would corrupt them).
func (c *Core) rebuildScheduler() {
	for i := range c.readyBits {
		c.readyBits[i] = 0
	}
	for i := range c.buckets {
		c.buckets[i] = nilIdx
	}
	s := c.ruuHead
	for p := 0; p < c.ruuCount; p++ {
		c.ruu[s].depHead = nilIdx
		if s++; s == len(c.ruu) {
			s = 0
		}
	}
	s = c.ruuHead
	for p := 0; p < c.ruuCount; p++ {
		e := &c.ruu[s]
		switch e.state {
		case stIssued:
			// recover runs after this cycle's bucket drained, so every
			// surviving issued entry still completes in the future.
			e.bucketNext = nilIdx
			c.pushBucket(s, e.doneCycle)
		case stWaiting:
			e.pending = 0
			e.depNext[0], e.depNext[1] = nilIdx, nilIdx
			for i := range e.src {
				ref := e.src[i]
				if !ref.valid {
					continue
				}
				pe := &c.ruu[ref.slot]
				if pe.op.Seq == ref.seq && pe.state != stDone {
					e.pending++
					e.depNext[i] = pe.depHead
					pe.depHead = int16(s<<1 | i)
				}
			}
			if e.pending == 0 {
				c.setReady(s)
			}
		}
		if s++; s == len(c.ruu) {
			s = 0
		}
	}
}

// issue selects up to IssueWidth ready entries oldest-first, respecting
// per-side issue limits, functional-unit counts and memory ports. Ready
// entries are found by iterating the ready bitmap in ring order (two
// ascending-slot segments starting at ruuHead); entries skipped for lack
// of an issue slot or functional unit keep their bit for the next cycle.
func (c *Core) issue(act *Activity) {
	if c.ruuCount == 0 {
		return
	}
	issued := 0
	intIss, fpIss := 0, 0
	intALU, intMD, fpALU, fpMD, mem := c.cfg.IntALUs, c.cfg.IntMultDiv,
		c.cfg.FPALUs, c.cfg.FPMultDiv, c.cfg.MemPorts
	n := len(c.ruu)
	for seg := 0; seg < 2 && issued < c.cfg.IssueWidth; seg++ {
		lo, hi := c.ruuHead, n
		if seg == 1 {
			lo, hi = 0, c.ruuHead
		}
		if lo >= hi {
			continue
		}
		for wi := lo >> 6; wi <= (hi-1)>>6 && issued < c.cfg.IssueWidth; wi++ {
			w := c.readyBits[wi]
			if w == 0 {
				continue
			}
			base := wi << 6
			if base < lo {
				w &= ^uint64(0) << (uint(lo) & 63)
			}
			if base+64 > hi {
				w &= ^uint64(0) >> (64 - uint(hi-base))
			}
			for w != 0 && issued < c.cfg.IssueWidth {
				slot := base + bits.TrailingZeros64(w)
				w &= w - 1
				e := &c.ruu[slot]
				cls := e.op.Class
				fp := cls.IsFP()
				if fp && fpIss >= c.cfg.FPIssue {
					continue
				}
				if !fp && intIss >= c.cfg.IntIssue {
					continue
				}
				// Functional unit availability.
				switch cls {
				case isa.OpIntMult, isa.OpIntDiv:
					if intMD == 0 {
						continue
					}
					intMD--
				case isa.OpFPALU:
					if fpALU == 0 {
						continue
					}
					fpALU--
				case isa.OpFPMult, isa.OpFPDiv:
					if fpMD == 0 {
						continue
					}
					fpMD--
				case isa.OpLoad, isa.OpStore:
					if mem == 0 {
						continue
					}
					mem--
				default:
					if intALU == 0 {
						continue
					}
					intALU--
				}
				lat := cls.Latency()
				switch cls {
				case isa.OpLoad:
					lat = c.loadLatency(act, e)
				case isa.OpStore:
					// Address generation only; the write happens
					// at commit.
					lat = 1
				}
				e.state = stIssued
				e.doneCycle = c.cycle + uint64(lat)
				c.clearReady(slot)
				c.pushBucket(slot, e.doneCycle)
				issued++
				if fp {
					fpIss++
					act.FPOps++
				} else {
					intIss++
					if !cls.IsMem() {
						act.IntOps++
					}
				}
				act.WindowIssues++
				if e.op.Src1 != isa.RegNone {
					act.RegReads++
				}
				if e.op.Src2 != isa.RegNone {
					act.RegReads++
				}
			}
		}
	}
}

// loadLatency resolves a load: store-to-load forwarding from an older LSQ
// store to the same address, otherwise a TLB+cache access.
func (c *Core) loadLatency(act *Activity, e *entry) int {
	act.LSQSearches++
	// Walk older LSQ entries newest-first looking for a matching store.
	myPos := (e.lsqIdx - c.lsqHead + len(c.lsq)) % len(c.lsq)
	for i := myPos - 1; i >= 0; i-- {
		idx := c.lsq[(c.lsqHead+i)%len(c.lsq)]
		pe := &c.ruu[idx]
		if pe.op.Class == isa.OpStore && pe.op.Addr == e.op.Addr {
			return 1 // forwarded
		}
	}
	if c.cfg.PerfectDCache {
		act.DCacheAccess++
		return c.cfg.L1D.Latency
	}
	tlbLat, _ := c.tlb.Access(e.op.Addr)
	clat, _ := c.dl1.Access(e.op.Addr, false)
	act.DCacheAccess++
	if clat > c.cfg.L1D.Latency {
		act.L2Access++
	}
	return tlbLat + clat
}

// dispatch moves decoded ops from the IFQ into the RUU/LSQ.
func (c *Core) dispatch(act *Activity) {
	for n := 0; n < c.cfg.DecodeWidth && c.ifqCount > 0; n++ {
		f := &c.ifq[c.ifqHead]
		if f.readyAt > c.cycle {
			return // still in the front-end pipe
		}
		if c.ruuCount == len(c.ruu) {
			return
		}
		isMem := f.op.Class.IsMem()
		if isMem && c.lsqCount == len(c.lsq) {
			return
		}
		slot := c.slotAt(c.ruuCount)
		e := &c.ruu[slot]
		*e = entry{
			op:         f.op,
			pred:       f.pred,
			hasPred:    f.hasPred,
			wrongPath:  f.wrongPath,
			mispred:    f.mispred,
			state:      stWaiting,
			depHead:    nilIdx,
			depNext:    [2]int16{nilIdx, nilIdx},
			bucketNext: nilIdx,
		}
		for i, src := range [2]int16{f.op.Src1, f.op.Src2} {
			if src == isa.RegNone {
				continue
			}
			if pr := c.regProd[src]; pr.valid {
				e.src[i] = pr
				p := &c.ruu[pr.slot]
				// The producer is still in flight exactly when the
				// slot has not been recycled and its result has not
				// been broadcast; link into its dependent chain.
				if p.op.Seq == pr.seq && p.state != stDone {
					e.pending++
					e.depNext[i] = p.depHead
					p.depHead = int16(slot<<1 | i)
				}
			}
		}
		if e.pending == 0 {
			c.setReady(slot)
		}
		if f.op.Dest != isa.RegNone {
			c.regProd[f.op.Dest] = producerRef{slot: slot, seq: f.op.Seq, valid: true}
		}
		if isMem {
			ring := (c.lsqHead + c.lsqCount) % len(c.lsq)
			c.lsq[ring] = slot
			c.lsqCount++
			e.inLSQ = true
			e.lsqIdx = ring
			act.LSQInserts++
		}
		if f.op.Class.IsCtrl() && !f.wrongPath {
			c.unresolvedCtrl++
		}
		c.ruuCount++
		c.ifqHead = (c.ifqHead + 1) % len(c.ifq)
		c.ifqCount--
		act.WindowInserts++
	}
}

// fetch brings up to FetchWidth ops into the IFQ, subject to the DTM gate,
// I-cache readiness, speculation control, and fetch breaks at predicted-
// taken control transfers.
func (c *Core) fetch(act *Activity) {
	// DTM fetch-toggling gate.
	c.dutyAcc += c.fetchDuty
	if c.dutyAcc < 1 {
		c.stats.FetchGatedCy++
		return
	}
	c.dutyAcc -= 1
	act.FetchEnabled = true

	if c.fetchReady > c.cycle {
		return
	}
	if c.maxUnresolved > 0 && c.unresolvedCtrl > c.maxUnresolved {
		c.stats.SpecStallCy++
		return
	}
	width := c.cfg.FetchWidth
	if c.fetchLimit > 0 && c.fetchLimit < width {
		width = c.fetchLimit
	}
	if c.ifqCount == len(c.ifq) {
		return
	}
	// One I-cache access of fetch-width granularity per cycle
	// (Section 5.1's fetch-model fix).
	pcProbe := c.nextFetchPC()
	var lat int
	var miss bool
	if line := pcProbe >> c.il1Shift; c.lastFetchHit && line == c.lastFetchLine {
		c.il1.CountHit()
		lat, miss = c.cfg.L1I.Latency, false
	} else {
		lat, miss = c.il1.Access(pcProbe, false)
		c.lastFetchLine, c.lastFetchHit = line, !miss
	}
	act.ICacheAccess++
	if miss && !c.cfg.PerfectICache {
		c.fetchReady = c.cycle + uint64(lat)
		return
	}
	readyAt := c.cycle + uint64(c.cfg.FrontEndDepth)
	for n := 0; n < width && c.ifqCount < len(c.ifq); n++ {
		var f fetched
		f.readyAt = readyAt
		if c.wrongPathMode {
			f.op = c.gen.WrongPath(c.wrongPC)
			f.wrongPath = true
			c.wrongPC += 4
			c.stats.WrongPathOps++
		} else {
			f.op = c.gen.Next()
		}
		act.Fetched++
		c.stats.Fetched++
		stop := false
		if f.op.Class.IsCtrl() && !f.wrongPath && c.cfg.PerfectBPred {
			// Oracle prediction: the direction and target are always
			// right, so fetch only breaks at taken transfers. The
			// predictor arrays are still read (energy), not trained.
			act.BPredAccess++
			if f.op.Taken || f.op.Class != isa.OpBranch {
				stop = true
			}
		} else if f.op.Class.IsCtrl() && !f.wrongPath {
			f.pred = c.pred.Predict(f.op.PC, f.op.Class)
			f.hasPred = true
			act.BPredAccess++
			actualTaken := f.op.Taken || f.op.Class != isa.OpBranch
			actualTarget := f.op.NextPC()
			switch {
			case f.pred.Taken != actualTaken:
				f.mispred = true
			case actualTaken && (!f.pred.BTBHit || f.pred.Target != actualTarget):
				f.mispred = true
			}
			if f.mispred {
				// Fetch continues down the (wrong) predicted
				// path next cycle.
				c.wrongPathMode = true
				if f.pred.Taken && f.pred.BTBHit {
					c.wrongPC = f.pred.Target
				} else if f.pred.Taken {
					c.wrongPC = f.op.PC + 0x1000 // unknown target
				} else {
					c.wrongPC = f.op.FallThrough()
				}
				stop = true
			} else if f.pred.Taken {
				stop = true // fetch break at taken control transfer
			}
		}
		c.ifq[(c.ifqHead+c.ifqCount)%len(c.ifq)] = f
		c.ifqCount++
		if stop {
			break
		}
	}
}

// nextFetchPC returns the PC the next fetch will target, for the I-cache
// probe.
func (c *Core) nextFetchPC() uint64 {
	if c.wrongPathMode {
		return c.wrongPC
	}
	return c.gen.PeekPC()
}

// UnresolvedBranches returns the count of in-flight unresolved control
// transfers (speculation-control observability).
func (c *Core) UnresolvedBranches() int { return c.unresolvedCtrl }

// FetchLimit returns the current fetch-throttling limit (0 = full width).
func (c *Core) FetchLimit() int { return c.fetchLimit }

// MaxUnresolvedLimit returns the current speculation-control bound
// (0 = disabled).
func (c *Core) MaxUnresolvedLimit() int { return c.maxUnresolved }

// CalSnapshot is the core state a calibration window needs: cumulative
// progress counters plus the actuator settings in force. Differencing two
// snapshots yields exact per-window rates (IPC, fetch rate) without any
// per-cycle accumulation in the caller.
type CalSnapshot struct {
	Cycles    uint64
	Committed uint64
	Fetched   uint64

	FetchDuty     float64
	FetchLimit    int
	MaxUnresolved int
}

// Snapshot captures the core's calibration-relevant state. It is
// allocation-free and safe to call every cycle.
func (c *Core) Snapshot() CalSnapshot {
	return CalSnapshot{
		Cycles:        c.stats.Cycles,
		Committed:     c.stats.Committed,
		Fetched:       c.stats.Fetched,
		FetchDuty:     c.fetchDuty,
		FetchLimit:    c.fetchLimit,
		MaxUnresolved: c.maxUnresolved,
	}
}
