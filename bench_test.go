// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper (the mapping is the experiment index in
// DESIGN.md), plus ablation benches for the design choices the paper
// motivates, plus component micro-benchmarks. Each iteration regenerates
// the corresponding artifact end to end at a CI-scaled instruction budget;
// run `go test -bench=. -benchmem` and compare shapes against
// EXPERIMENTS.md.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/control"
	"repro/internal/dtm"
	"repro/internal/experiments"
	"repro/internal/floorplan"
	"repro/internal/packstore"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/runner"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// benchParams is the scaled-down experiment budget for the harness.
func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.Insts = 400_000
	return p
}

func report(b *testing.B, name, artifact string) {
	if testing.Verbose() {
		fmt.Printf("--- %s ---\n%s\n", name, artifact)
	}
}

func BenchmarkTable2Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table2()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
		if i == 0 {
			report(b, "Table 2", t.String())
		}
	}
}

func BenchmarkTable3Thermal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table3()
		if len(t.Rows) != 8 {
			b.Fatalf("table 3 has %d rows", len(t.Rows))
		}
		if i == 0 {
			report(b, "Table 3", t.String())
		}
	}
}

// baselineOnce caches the uncontrolled suite for the Table 4-8 benches
// within one harness invocation.
var baselineCache []*sim.Result

func baseline(b *testing.B) []*sim.Result {
	b.Helper()
	if baselineCache == nil {
		res, err := experiments.Baseline(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		baselineCache = res
	}
	return baselineCache
}

func BenchmarkTable4Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table4(baseline(b))
		if len(t.Rows) != 18 {
			b.Fatalf("table 4 rows = %d", len(t.Rows))
		}
		if i == 0 {
			report(b, "Table 4", t.String())
		}
	}
}

func BenchmarkTable5Categories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table5()
		if len(t.Rows) != 4 {
			b.Fatalf("table 5 rows = %d", len(t.Rows))
		}
		if i == 0 {
			report(b, "Table 5", t.String())
		}
	}
}

func BenchmarkTable6PerStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table6(baseline(b))
		if i == 0 {
			report(b, "Table 6", t.String())
		}
	}
}

func BenchmarkTable7Emergency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table7(baseline(b))
		if i == 0 {
			report(b, "Table 7", t.String())
		}
	}
}

func BenchmarkTable8Stress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table8(baseline(b))
		if i == 0 {
			report(b, "Table 8", t.String())
		}
	}
}

func BenchmarkTable9ProxyPerStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ps, _, err := experiments.ProxyTables(benchParams(), []int{10_000, 100_000})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "Table 9", ps.String())
		}
	}
}

func BenchmarkTable10ProxyChipWide(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, cw, err := experiments.ProxyTables(benchParams(), []int{10_000, 100_000})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "Table 10", cw.String())
		}
	}
}

// policyEvalCache shares the expensive policy matrix between the Table 11
// and Table 12 benches (like baselineCache).
var policyEvalCache *experiments.PolicyEval

func policyEval(b *testing.B) *experiments.PolicyEval {
	b.Helper()
	if policyEvalCache == nil {
		ev, err := experiments.RunPolicyEval(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		policyEvalCache = ev
	}
	return policyEvalCache
}

func BenchmarkTable11Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := policyEval(b)
		if i == 0 {
			report(b, "Table 11", ev.Table11().String())
		}
	}
}

func BenchmarkTable12Headline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := policyEval(b)
		hs := ev.Headlines()
		// Sanity: the CT controllers must not allow emergencies and
		// must beat toggle1's loss.
		for _, h := range hs {
			if (h.Policy == "PI" || h.Policy == "PID") && h.LossVsToggle1 >= 1 {
				b.Errorf("%s loss ratio %.2f >= toggle1", h.Policy, h.LossVsToggle1)
			}
		}
		if i == 0 {
			report(b, "Table 12", ev.Table12().String())
		}
	}
}

func BenchmarkTable13Setpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.SetpointStudy(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report(b, "Table 13", t.String())
		}
	}
}

func BenchmarkFigureTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Trace(benchParams(), "gcc", "PI", 2000)
		if err != nil {
			b.Fatal(err)
		}
		if res.TempTrace.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

func BenchmarkFigureStepResponse(b *testing.B) {
	plant := bench.Plant()
	for i := 0; i < b.N; i++ {
		g := control.MustTune(plant, control.Spec{Kind: control.KindPID})
		ctl := control.NewPID(g, 111.1, 0.2, 667e-9)
		tr := control.SimulateLoop(plant, ctl, control.LoopConfig{
			Ambient: 100, Duration: 3e-3, Levels: 8,
		})
		if tr.MaxTemp() > 111.3 {
			b.Errorf("step response exceeded emergency: %v", tr.MaxTemp())
		}
	}
}

// --- Ablations (DESIGN.md Section 5) ---

// BenchmarkAblationTangential quantifies the Figure 3B vs 3C question: how
// much does lateral coupling change the hottest-block temperature?
func BenchmarkAblationTangential(b *testing.B) {
	prof, err := bench.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		plain, err := sim.Run(sim.Config{Workload: prof, MaxInsts: 300_000})
		if err != nil {
			b.Fatal(err)
		}
		tang, err := sim.Run(sim.Config{Workload: prof, MaxInsts: 300_000, Tangential: true})
		if err != nil {
			b.Fatal(err)
		}
		var maxd float64
		for j := range plain.Blocks {
			d := plain.Blocks[j].MaxTemp - tang.Blocks[j].MaxTemp
			if d < 0 {
				d = -d
			}
			if d > maxd {
				maxd = d
			}
		}
		b.ReportMetric(maxd, "maxΔC")
	}
}

// BenchmarkAblationPolicyDelay sweeps toggle1's policy delay — too short
// re-triggers constantly, too long wastes performance (Section 2.1).
func BenchmarkAblationPolicyDelay(b *testing.B) {
	prof, err := bench.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	for _, delay := range []int{0, 2, 5, 20, 100} {
		b.Run(fmt.Sprintf("delay%d", delay), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mgr := dtm.NewManager(dtm.NewToggle1(bench.NonCTTrigger, delay))
				res, err := sim.Run(sim.Config{Workload: prof, MaxInsts: 400_000, Manager: mgr})
				if err != nil {
					b.Fatal(err)
				}
				if res.EmergencyCycles > 0 {
					b.Errorf("delay %d: %d emergencies", delay, res.EmergencyCycles)
				}
				b.ReportMetric(res.IPC, "IPC")
				b.ReportMetric(float64(res.Engagements), "engagements")
			}
		})
	}
}

// BenchmarkAblationWindup compares PI with and without the paper's
// anti-windup protection (Section 3.3) on the bursty benchmark.
func BenchmarkAblationWindup(b *testing.B) {
	prof, err := bench.ByName("art")
	if err != nil {
		b.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		name := "antiwindup"
		if disable {
			name = "windup"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pol, err := bench.NewPolicy("PI", 0)
				if err != nil {
					b.Fatal(err)
				}
				pol.(*dtm.CT).Controller().DisableAntiWindup = disable
				res, err := sim.Run(sim.Config{
					Workload: prof, MaxInsts: 2_000_000, Manager: dtm.NewManager(pol),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.EmergencyFrac(), "emerg%")
				b.ReportMetric(res.IPC, "IPC")
			}
		})
	}
}

// BenchmarkAblationSampling sweeps the controller sampling interval
// (Section 5.3 conjectures longer intervals would barely hurt).
func BenchmarkAblationSampling(b *testing.B) {
	prof, err := bench.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	for _, interval := range []uint64{250, 1000, 4000, 16000} {
		b.Run(fmt.Sprintf("every%d", interval), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pol, err := bench.NewPolicy("PI", 0)
				if err != nil {
					b.Fatal(err)
				}
				mgr := dtm.NewManager(pol)
				mgr.Interval = interval
				res, err := sim.Run(sim.Config{Workload: prof, MaxInsts: 400_000, Manager: mgr})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.EmergencyFrac(), "emerg%")
				b.ReportMetric(res.IPC, "IPC")
			}
		})
	}
}

// BenchmarkAblationGating compares clock-gating styles (Wattch cc0/cc2/cc3).
func BenchmarkAblationGating(b *testing.B) {
	prof, err := bench.ByName("mesa")
	if err != nil {
		b.Fatal(err)
	}
	for _, g := range []power.GatingStyle{power.GateResidual10, power.GateIdeal, power.GateNone} {
		b.Run(g.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{Workload: prof, MaxInsts: 300_000, Gating: g})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AvgChipPower, "W")
			}
		})
	}
}

// --- Component micro-benchmarks ---

func BenchmarkThermalStep(b *testing.B) {
	net := thermal.New(thermal.DefaultConfig())
	power := make([]float64, net.NumBlocks())
	for i := range power {
		power[i] = 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step(power)
	}
}

func BenchmarkPipelineCycle(b *testing.B) {
	prof, err := bench.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		b.Fatal(err)
	}
	core, err := pipeline.New(pipeline.DefaultConfig(), gen)
	if err != nil {
		b.Fatal(err)
	}
	var act pipeline.Activity
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Step(&act)
	}
}

func BenchmarkPowerModel(b *testing.B) {
	m, err := power.New(power.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	act := pipeline.Activity{WindowInserts: 3, WindowIssues: 4, WindowWakeups: 4,
		RegReads: 6, RegWrites: 3, IntOps: 3, DCacheAccess: 2, BPredAccess: 1}
	out := make([]float64, m.NumBlocks())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BlockPower(&act, out)
	}
}

func BenchmarkWorkloadGen(b *testing.B) {
	prof, err := bench.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next()
	}
}

func BenchmarkPIDUpdate(b *testing.B) {
	g := control.MustTune(bench.Plant(), control.Spec{Kind: control.KindPID})
	ctl := control.NewPID(g, 111.1, 0.2, 667e-9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.Update(110.9 + 0.3*float64(i%3))
	}
}

// BenchmarkBaselineBatch measures a full uncontrolled-suite regeneration
// through the parallel experiment engine, serial (1 worker) versus
// parallel (GOMAXPROCS workers). The ratio of the two is the engine's
// wall-time speedup on this host; cmd/benchrec records it to
// BENCH_runner.json.
func BenchmarkBaselineBatch(b *testing.B) {
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			p := benchParams()
			p.Insts = 200_000
			p.Workers = tc.workers
			for i := 0; i < b.N; i++ {
				res, err := experiments.Baseline(p)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != len(bench.Names()) {
					b.Fatalf("got %d results", len(res))
				}
			}
		})
	}
}

func BenchmarkFullSystemCyclesPerSecond(b *testing.B) {
	prof, err := bench.ByName("mesa")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Config{Workload: prof, MaxInsts: 200_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSensorPlacement answers the paper's deferred question
// (Section 4.2): how many well-placed sensors are needed? It selects
// optimal k-sensor placements from recorded per-block traces across hot
// benchmarks and reports the worst-case blind spot, then verifies that a
// PI controller restricted to the 3-sensor placement still prevents
// emergencies on the hottest benchmark.
func BenchmarkAblationSensorPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Record per-block temperature traces on three thermally
		// diverse benchmarks.
		var series [][]float64
		for _, name := range []string{"gcc", "equake", "art"} {
			res, err := experiments.Trace(experiments.Params{Insts: 600_000}, name, "none", 500)
			if err != nil {
				b.Fatal(err)
			}
			if series == nil {
				series = make([][]float64, len(res.BlockTrace))
			}
			for j, s := range res.BlockTrace {
				series[j] = append(series[j], s.Ys...)
			}
		}
		res3, err := sensor.SelectSensors(series, 3)
		if err != nil {
			b.Fatal(err)
		}
		res1, err := sensor.SelectSensors(series, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res1.MaxError, "blindspot1C")
		b.ReportMetric(res3.MaxError, "blindspot3C")
		if res3.MaxError > res1.MaxError {
			b.Error("more sensors increased the blind spot")
		}

		// Drive PI from only the selected 3 blocks on gcc.
		var monitored []floorplan.BlockID
		for _, idx := range res3.Blocks {
			monitored = append(monitored, floorplan.BlockID(idx))
		}
		prof, err := bench.ByName("gcc")
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.Config{Workload: prof, MaxInsts: 600_000, MonitoredBlocks: monitored}
		pol, err := bench.NewPolicy("PI", 0)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Manager = dtm.NewManager(pol)
		out, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*out.EmergencyFrac(), "emerg%@3sensors")
		if out.EmergencyFrac() > 0.001 {
			b.Errorf("3-sensor PI left %.2f%% emergencies", 100*out.EmergencyFrac())
		}
	}
}

// BenchmarkSeedSensitivity quantifies how much the headline metrics move
// across workload seeds — the synthetic-proxy analogue of simulating
// different program inputs.
func BenchmarkSeedSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st, err := experiments.SeedStudy(experiments.Params{Insts: 300_000}, "gcc", "none", 4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.IPCMean, "IPCmean")
		b.ReportMetric(st.IPCStd, "IPCstd")
		b.ReportMetric(100*st.EmergMean, "emerg%mean")
		if st.IPCStd > 0.25*st.IPCMean {
			b.Errorf("seed spread too large: %v vs %v", st.IPCStd, st.IPCMean)
		}
	}
}

// BenchmarkAblationIdealization bounds the timing model: perfect branch
// prediction and perfect D-cache, separately and together, on the hottest
// benchmark. Better prediction raises IPC — and with it activity and
// temperature, the classic thermal paradox of microarchitectural
// improvements.
func BenchmarkAblationIdealization(b *testing.B) {
	prof, err := bench.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name         string
		bpred, dcach bool
	}{
		{"real", false, false},
		{"perfectBP", true, false},
		{"perfectD$", false, true},
		{"perfectBoth", true, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pcfg := pipeline.DefaultConfig()
				pcfg.PerfectBPred = tc.bpred
				pcfg.PerfectDCache = tc.dcach
				res, err := sim.Run(sim.Config{
					Workload: prof, MaxInsts: 400_000, Pipeline: pcfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.IPC, "IPC")
				b.ReportMetric(100*res.EmergencyFrac(), "emerg%")
			}
		})
	}
}

// BenchmarkAblationPerBlockControl compares the single hottest-sensor PI
// against the per-block MultiCT refinement.
func BenchmarkAblationPerBlockControl(b *testing.B) {
	for _, polName := range []string{"PI", "mPI"} {
		b.Run(polName, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var ipcs []float64
				var emerg uint64
				for _, benchName := range []string{"gcc", "equake", "mesa"} {
					prof, err := bench.ByName(benchName)
					if err != nil {
						b.Fatal(err)
					}
					cfg := sim.Config{Workload: prof, MaxInsts: 400_000}
					if err := bench.ApplyPolicy(&cfg, polName, 0); err != nil {
						b.Fatal(err)
					}
					res, err := sim.Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					ipcs = append(ipcs, res.IPC)
					emerg += res.EmergencyCycles
				}
				if emerg > 0 {
					b.Errorf("%s left %d emergency cycles", polName, emerg)
				}
				var sum float64
				for _, v := range ipcs {
					sum += v
				}
				b.ReportMetric(sum/float64(len(ipcs)), "meanIPC")
			}
		})
	}
}

// BenchmarkAblationLeakage measures the cost of the leakage/temperature
// feedback loop with and without DTM.
func BenchmarkAblationLeakage(b *testing.B) {
	prof, err := bench.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		leak bool
		ctl  bool
	}{
		{"base", false, false},
		{"leak", true, false},
		{"leak+PI", true, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.Config{Workload: prof, MaxInsts: 400_000}
				if tc.leak {
					cfg.Leakage = power.DefaultLeakage()
				}
				if tc.ctl {
					if err := bench.ApplyPolicy(&cfg, "PI", 0); err != nil {
						b.Fatal(err)
					}
				}
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AvgChipPower, "W")
				b.ReportMetric(100*res.EmergencyFrac(), "emerg%")
			}
		})
	}
}

// BenchmarkResultStore compares the two persistent cache backends at the
// small-object regime the run cache lives in (a few hundred JSON bytes
// per entry): one-file-per-entry flat store vs the append-only
// pack-volume store. get lanes run against a pre-populated 10^5-entry
// store; rebuild times the pack store's cold-start needle-index scan
// over the same population. cmd/benchrec records the 10^6-entry numbers
// into BENCH_runner.json.
func BenchmarkResultStore(b *testing.B) {
	payload := []byte(`{"name":"gcc/PI","ipc":0.8732,"cycles":2290432,` +
		`"avg_power":42.17,"max_temp":111.84,"emergency_cycles":18320,` +
		`"temps":[110.2,109.7,108.9,111.1,107.3,109.9,110.6,108.1,109.2,` +
		`110.8,107.9,108.8,110.0]}`)
	key := func(i int) string { return fmt.Sprintf("bench%059d", i) }
	const population = 100_000

	type blobStore interface {
		Get(key string) ([]byte, error)
		Put(key string, data []byte) error
	}
	openFlat := func(b *testing.B, dir string) blobStore {
		s, err := runner.NewFlatStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	openPack := func(b *testing.B, dir string) blobStore {
		s, err := packstore.Open(dir, packstore.Options{NoAutoCompact: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		return s
	}
	populate := func(b *testing.B, s blobStore) {
		for i := 0; i < population; i++ {
			if err := s.Put(key(i), payload); err != nil {
				b.Fatal(err)
			}
		}
	}

	for _, backend := range []struct {
		name string
		open func(*testing.B, string) blobStore
	}{
		{"flat", openFlat},
		{"pack", openPack},
	} {
		b.Run(backend.name+"/put", func(b *testing.B) {
			s := backend.open(b, b.TempDir())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Put(key(i), payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(backend.name+"/get", func(b *testing.B) {
			s := backend.open(b, b.TempDir())
			populate(b, s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Get(key(i % population)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	b.Run("pack/rebuild", func(b *testing.B) {
		dir := b.TempDir()
		s, err := packstore.Open(dir, packstore.Options{NoAutoCompact: true})
		if err != nil {
			b.Fatal(err)
		}
		populate(b, s)
		s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := packstore.Open(dir, packstore.Options{NoAutoCompact: true})
			if err != nil {
				b.Fatal(err)
			}
			if s.Len() != population {
				b.Fatalf("rebuild lost entries: %d", s.Len())
			}
			s.Close()
		}
	})
}
