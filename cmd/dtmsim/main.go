// Command dtmsim runs one benchmark under one DTM policy and prints the
// run's performance and thermal metrics: the interactive front end to the
// reproduction (cmd/tables regenerates the paper's tables in bulk).
//
// Usage:
//
//	dtmsim -bench gcc -policy PI -insts 2000000
//	dtmsim -bench all -policy toggle1
//	dtmsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/sim"
)

func main() {
	var (
		benchName = flag.String("bench", "gcc", "benchmark name, or 'all'")
		policy    = flag.String("policy", "none", "DTM policy: none, toggle1, toggle2, M, P, PI, PID, throttle, specctl, fscale, vfscale")
		insts     = flag.Uint64("insts", 2_000_000, "committed instructions to simulate")
		setpoint  = flag.Float64("setpoint", 0, "override controller setpoint (0 = paper default)")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		trace     = flag.Uint64("trace", 0, "emit temperature/duty trace every N cycles")
		verbose   = flag.Bool("v", false, "print per-block detail")
	)
	flag.Parse()

	if *list {
		for _, p := range bench.All() {
			fmt.Printf("%-10s %s\n", p.Name, bench.CategoryOf(p.Name))
		}
		return
	}

	var names []string
	if *benchName == "all" {
		for _, p := range bench.All() {
			names = append(names, p.Name)
		}
	} else {
		names = []string{*benchName}
	}

	for _, name := range names {
		prof, err := bench.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg := sim.Config{
			Workload:    prof,
			MaxInsts:    *insts,
			TraceStride: *trace,
		}
		if err := bench.ApplyPolicy(&cfg, *policy, *setpoint); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s policy=%-8s IPC=%5.3f avgP=%5.1fW maxP=%5.1fW duty=%4.2f emerg=%s stress=%s stalls=%d\n",
			res.Benchmark, res.Policy, res.IPC, res.AvgChipPower, res.MaxChipPower,
			res.AvgDuty, pct(res.EmergencyFrac()), pct(res.StressFrac()), res.StallCycles)
		if *verbose {
			for _, b := range res.Blocks {
				fmt.Printf("    %-8s avgT=%7.3f maxT=%7.3f emerg=%s stress=%s\n",
					b.Name, b.AvgTemp, b.MaxTemp,
					pct(float64(b.EmergencyCycles)/float64(res.Cycles)),
					pct(float64(b.StressCycles)/float64(res.Cycles)))
			}
		}
		if *trace > 0 {
			fmt.Println("cycle,temp_hottest,duty")
			for i := range res.TempTrace.Xs {
				fmt.Printf("%d,%.4f,%.4f\n", res.TempTrace.Xs[i], res.TempTrace.Ys[i], res.DutyTrace.Ys[i])
			}
		}
	}
}

func pct(f float64) string { return fmt.Sprintf("%6.2f%%", f*100) }
