// Command serve runs experiment batches behind an HTTP interface with live
// telemetry: the shared metrics registry is exposed in Prometheus text
// format at /metrics while batches execute, so counters (cycles simulated,
// DTM samples, saturation events, runner queue depth) can be scraped or
// watched mid-run. Go runtime introspection rides along on the standard
// /debug/vars (expvar) and /debug/pprof endpoints.
//
//	serve -addr :8721
//	serve -cache-dir .runcache                       # replay identical /run requests
//	curl localhost:8721/run?bench=gcc&policy=PI      # one sim, JSON result
//	curl localhost:8721/batch?kind=baseline          # async suite batch
//	curl localhost:8721/batches                      # batch status
//	curl localhost:8721/metrics                      # Prometheus text
//
// SIGINT shuts the server down gracefully and cancels in-flight batches.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// batchState tracks one asynchronous batch for /batches.
type batchState struct {
	ID      int       `json:"id"`
	Kind    string    `json:"kind"`
	Started time.Time `json:"started"`
	Done    int       `json:"done"`
	Total   int       `json:"total"`
	Failed  int       `json:"failed"`
	Running bool      `json:"running"`
	Error   string    `json:"error,omitempty"`
}

// server owns the shared registry and the batch table.
type server struct {
	reg     *telemetry.Registry
	cache   *runner.Cache[*sim.Result] // nil = no run cache
	ctx     context.Context            // root context; cancelled on shutdown
	insts   uint64
	workers int

	mu      sync.Mutex
	batches map[int]*batchState
	nextID  int
}

func main() {
	var (
		addr     = flag.String("addr", ":8721", "HTTP listen address")
		insts    = flag.Uint64("insts", 1_000_000, "committed instructions per run")
		workers  = flag.Int("workers", 0, "parallel simulations per batch (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "persist /run results under this directory and replay identical requests (hit/miss counters on /metrics)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	s := &server{
		reg:     telemetry.NewRegistry(),
		ctx:     ctx,
		insts:   *insts,
		workers: *workers,
		batches: map[int]*batchState{},
	}
	if *cacheDir != "" {
		cache, err := runner.NewCache[*sim.Result](*cacheDir, telemetry.NewCacheMetrics(s.reg))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s.cache = cache
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/batches", s.handleBatches)
	// expvar and pprof register themselves on the default mux; forward the
	// whole /debug/ subtree there.
	mux.Handle("/debug/", http.DefaultServeMux)
	expvar.Publish("repro.batches", expvar.Func(func() any { return s.snapshot() }))

	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serving on %s (endpoints: /metrics /run /batch /batches /healthz /debug/vars /debug/pprof)\n", *addr)

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		fmt.Fprintln(os.Stderr, "shut down")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleRun executes one instrumented simulation synchronously and returns
// a JSON summary. The request context cancels the run if the client goes
// away.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	benchName := q.Get("bench")
	if benchName == "" {
		benchName = "gcc"
	}
	policy := q.Get("policy")
	if policy == "" {
		policy = "PI"
	}
	insts := s.insts
	if v := q.Get("insts"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad insts: "+err.Error(), http.StatusBadRequest)
			return
		}
		insts = n
	}
	prof, err := bench.ByName(benchName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cfg := sim.Config{Workload: prof, MaxInsts: insts}
	if err := bench.ApplyPolicy(&cfg, policy, 0); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The cache key is computed before the metrics bundle is attached:
	// live instrumentation never changes the simulated trajectory, so a
	// cached result answers the request exactly — a hit simply does not
	// re-stream that run's per-cycle metrics into /metrics.
	var key string
	if s.cache != nil {
		if k, ok := sim.CacheKey(cfg); ok {
			key = k
			if res, hit := s.cache.Get(key); hit {
				writeJSON(w, runSummary(res))
				return
			}
		}
	}
	cfg.Metrics = telemetry.NewSimMetrics(s.reg)
	res, err := sim.RunContext(r.Context(), cfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if key != "" {
		s.cache.Put(key, res)
	}
	writeJSON(w, runSummary(res))
}

func runSummary(res *sim.Result) map[string]any {
	return map[string]any{
		"benchmark":  res.Benchmark,
		"policy":     res.Policy,
		"ipc":        res.IPC,
		"cycles":     res.Cycles,
		"insts":      res.Insts,
		"avg_power":  res.AvgChipPower,
		"avg_duty":   res.AvgDuty,
		"emerg_frac": res.EmergencyFrac(),
	}
}

// handleBatch starts an asynchronous experiment batch and returns its ID
// immediately; progress is visible via /batches and /metrics.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	kind := r.URL.Query().Get("kind")
	if kind == "" {
		kind = "baseline"
	}
	p := experiments.DefaultParams()
	p.Insts = s.insts
	p.Workers = s.workers
	p.Context = s.ctx
	p.Registry = s.reg
	if pols := r.URL.Query().Get("policies"); pols != "" {
		p.Policies = strings.Split(pols, ",")
	}

	var run func(experiments.Params) error
	switch kind {
	case "baseline":
		run = func(p experiments.Params) error { _, err := experiments.Baseline(p); return err }
	case "policies":
		run = func(p experiments.Params) error { _, err := experiments.RunPolicyEval(p); return err }
	case "proxies":
		run = func(p experiments.Params) error { _, _, err := experiments.ProxyTables(p, nil); return err }
	default:
		http.Error(w, fmt.Sprintf("unknown batch kind %q (baseline | policies | proxies)", kind), http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	s.nextID++
	st := &batchState{ID: s.nextID, Kind: kind, Started: time.Now(), Running: true}
	s.batches[st.ID] = st
	s.mu.Unlock()

	p.Progress = func(pr runner.Progress) {
		s.mu.Lock()
		st.Done, st.Total, st.Failed = pr.Done, pr.Total, pr.Failed
		s.mu.Unlock()
	}
	go func() {
		err := run(p)
		s.mu.Lock()
		st.Running = false
		if err != nil {
			st.Error = err.Error()
		}
		s.mu.Unlock()
	}()
	s.mu.Lock()
	snap := *st // the batch goroutine mutates st concurrently
	s.mu.Unlock()
	writeJSON(w, snap)
}

func (s *server) handleBatches(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.snapshot())
}

// snapshot returns the batch table ordered by ID.
func (s *server) snapshot() []batchState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]batchState, 0, len(s.batches))
	for id := 1; id <= s.nextID; id++ {
		if st, ok := s.batches[id]; ok {
			out = append(out, *st)
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
